module djstar

go 1.22
