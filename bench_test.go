// Package djstar's root benchmark suite: one testing.B benchmark per
// table and figure of the paper's evaluation (see EXPERIMENTS.md for the
// mapping and djbench for the full-length reproduction with reports).
//
// Each benchmark measures the natural unit behind its artifact — an APC
// cycle under a given strategy/thread count for Table I and Figs. 8–11,
// a schedule simulation for Fig. 4/12 — so `go test -bench=. -benchmem`
// doubles as a regression harness for the hot paths (ns/op and 0 B/op).
package djstar

import (
	"fmt"
	"sync"
	"testing"

	"djstar/internal/admission"
	"djstar/internal/engine"
	"djstar/internal/exp"
	"djstar/internal/graph"
	"djstar/internal/obs"
	"djstar/internal/rescon"
	"djstar/internal/sched"
	"djstar/internal/stats"
)

// benchScale is the node-cost scale for benchmark engines. A small
// non-zero scale keeps the paper's cost *shape* (bimodal FX, long chains)
// while letting b.N iterations finish quickly on any host.
const benchScale = 0.1

func benchGraphConfig() graph.Config {
	cfg := graph.DefaultConfig()
	cfg.TrackBars = 4
	cfg.Scale = benchScale
	cfg.Calibration = exp.Calib()
	return cfg
}

func newBenchEngine(b *testing.B, strategy string, threads int) *engine.Engine {
	b.Helper()
	e, err := engine.New(engine.Config{
		Graph:    benchGraphConfig(),
		Strategy: strategy,
		Threads:  threads,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(e.Close)
	for i := 0; i < 20; i++ {
		e.Cycle(nil) // warm up delay lines, page in buffers
	}
	return e
}

// BenchmarkTable1 measures one APC cycle per iteration for every cell of
// Table I: the three parallel strategies across 1..4 threads, plus the
// sequential baseline the speedups are computed against.
func BenchmarkTable1(b *testing.B) {
	b.Run("seq/threads=1", func(b *testing.B) {
		e := newBenchEngine(b, sched.NameSequential, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Cycle(nil)
		}
	})
	for _, strategy := range []string{sched.NameBusyWait, sched.NameSleep, sched.NameWorkSteal} {
		for threads := 1; threads <= 4; threads++ {
			b.Run(fmt.Sprintf("%s/threads=%d", strategy, threads), func(b *testing.B) {
				e := newBenchEngine(b, strategy, threads)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.Cycle(nil)
				}
			})
		}
	}
}

// BenchmarkFig4 measures the §IV schedule computations: the earliest-start
// relaxation and the 4-processor list schedule over the standard graph.
func BenchmarkFig4(b *testing.B) {
	cfg := benchGraphConfig()
	durs, plan, err := engine.MeasureNodeDurations(cfg, 50)
	if err != nil {
		b.Fatal(err)
	}
	m, err := rescon.FromPlan(plan, durs)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("earliest-start", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := m.EarliestStart()
			if r.MakespanUS <= 0 {
				b.Fatal("zero makespan")
			}
		}
	})
	b.Run("list-schedule-4", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.ListSchedule(4); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig8 measures the speedup-relevant configurations of Fig. 8
// head to head: graph execution only (no TP/GP/VC), sequential vs the
// three strategies at 4 threads.
func BenchmarkFig8(b *testing.B) {
	for _, strategy := range sched.Strategies {
		threads := 4
		if strategy == sched.NameSequential {
			threads = 1
		}
		b.Run(fmt.Sprintf("graph-only/%s", strategy), func(b *testing.B) {
			session, g, err := graph.BuildDJStar(benchGraphConfig())
			if err != nil {
				b.Fatal(err)
			}
			plan, err := g.Compile()
			if err != nil {
				b.Fatal(err)
			}
			s, err := sched.New(strategy, plan, sched.Options{Threads: threads})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			session.Prepare()
			s.Execute()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				session.Prepare()
				s.Execute()
			}
		})
	}
}

// BenchmarkFig9Fig10 measures the per-cycle cost of the histogram
// collection path behind Figs. 9/10 (cycle + sample + bin).
func BenchmarkFig9Fig10(b *testing.B) {
	e := newBenchEngine(b, sched.NameBusyWait, 4)
	h := stats.MustHistogram(0, 10, 30)
	m := e.RunCycles(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Cycle(m)
		h.Add(m.Graph.Mean())
	}
}

// BenchmarkFig11 measures a fully traced cycle (the schedule-realization
// capture behind Fig. 11): the observability collector samples every
// cycle into its trace ring.
func BenchmarkFig11(b *testing.B) {
	for _, strategy := range []string{sched.NameBusyWait, sched.NameSleep, sched.NameWorkSteal} {
		b.Run(strategy, func(b *testing.B) {
			e, err := engine.New(engine.Config{
				Graph:    benchGraphConfig(),
				Strategy: strategy,
				Threads:  4,
				Obs:      engine.ObsOptions{TraceEvery: 1, TraceRing: 1},
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(e.Close)
			var ct obs.CycleTrace
			for i := 0; i < 20; i++ {
				e.Cycle(nil)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Cycle(nil)
				if !e.Collector().LatestTrace(&ct) || ct.MakespanNS() <= 0 {
					b.Fatal("empty trace")
				}
			}
		})
	}
}

// BenchmarkObsOverhead measures the same busy-wait APC cycle with each
// always-on instrumentation layer A/B'd against the full default:
// obs=on is the production configuration (observability collector AND
// telemetry collector live), obs=off removes only the obs collector,
// tel=off removes only the telemetry collector, adm=on adds the
// admission gate on top of the production configuration (all of its
// analysis runs off-cycle, so the contract is zero added cost and zero
// added allocations on the hot path). CI compares the ratios against
// checked-in baselines (scripts/check_obs_overhead.sh) — the contract
// is that always-on instrumentation stays within noise of free.
func BenchmarkObsOverhead(b *testing.B) {
	run := func(b *testing.B, obsOff, telOff, admOn bool) {
		cfg := engine.Config{
			Graph:     benchGraphConfig(),
			Strategy:  sched.NameBusyWait,
			Threads:   4,
			Obs:       engine.ObsOptions{Disable: obsOff},
			Telemetry: engine.TelemetryOptions{Disable: telOff},
		}
		if admOn {
			cfg.Admission = engine.AdmissionOptions{
				Enabled:      true,
				Config:       admission.Config{PeriodUS: 1e9},
				PredictEvery: -1, // measure the per-cycle path, not the monitor
			}
		}
		e, err := engine.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(e.Close)
		for i := 0; i < 20; i++ {
			e.Cycle(nil)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Cycle(nil)
		}
	}
	b.Run("obs=on", func(b *testing.B) { run(b, false, false, false) })
	b.Run("obs=off", func(b *testing.B) { run(b, true, false, false) })
	b.Run("tel=off", func(b *testing.B) { run(b, false, true, false) })
	b.Run("adm=on", func(b *testing.B) { run(b, false, false, true) })
}

// BenchmarkFig12 measures the BUSY/SLEEP strategy simulations of Fig. 12.
func BenchmarkFig12(b *testing.B) {
	cfg := benchGraphConfig()
	durs, plan, err := engine.MeasureNodeDurations(cfg, 50)
	if err != nil {
		b.Fatal(err)
	}
	m, err := rescon.FromPlan(plan, durs)
	if err != nil {
		b.Fatal(err)
	}
	ov := rescon.StrategyOverheads{CheckUS: 0.5, WakeUS: 10}
	b.Run("simulate-busy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.SimulateBusy(4, ov); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("simulate-sleep", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.SimulateSleep(4, ov); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDeadlines measures the full APC (TP+GP+Graph+VC) with deadline
// accounting — the unit behind the §VI miss-rate experiment.
func BenchmarkDeadlines(b *testing.B) {
	e := newBenchEngine(b, sched.NameBusyWait, 4)
	m := e.RunCycles(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Cycle(m)
	}
	b.StopTimer()
	b.ReportMetric(float64(m.Deadline.Missed()), "misses")
}

// BenchmarkProfile measures the sequential APC used for the §III-B/§VI
// component breakdown.
func BenchmarkProfile(b *testing.B) {
	e := newBenchEngine(b, sched.NameSequential, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Cycle(nil)
	}
}

// BenchmarkThreadSweep extends Table I beyond four threads (the paper's
// "more threads do not help" observation).
func BenchmarkThreadSweep(b *testing.B) {
	for _, threads := range []int{1, 2, 4, 6, 8} {
		b.Run(fmt.Sprintf("busy/threads=%d", threads), func(b *testing.B) {
			e := newBenchEngine(b, sched.NameBusyWait, threads)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Cycle(nil)
			}
		})
	}
}

// BenchmarkAblationWS measures the work-stealing design variants (§V-C):
// locality vs round-robin seeding, Chase-Lev vs locked deques.
func BenchmarkAblationWS(b *testing.B) {
	variants := map[string]sched.WSOptions{
		"locality-lockfree": {},
		"roundrobin-init":   {RoundRobinInit: true},
		"locked-deque":      {LockedDeque: true},
	}
	for name, opts := range variants {
		b.Run(name, func(b *testing.B) {
			session, g, err := graph.BuildDJStar(benchGraphConfig())
			if err != nil {
				b.Fatal(err)
			}
			plan, err := g.Compile()
			if err != nil {
				b.Fatal(err)
			}
			ws, err := sched.NewWorkSteal(plan, sched.Options{Threads: 4, WS: opts})
			if err != nil {
				b.Fatal(err)
			}
			defer ws.Close()
			session.Prepare()
			ws.Execute()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				session.Prepare()
				ws.Execute()
			}
		})
	}
}

// BenchmarkPoolSession measures one APC cycle of a session on a shared
// worker pool — the same unit as BenchmarkTable1's strategy cells, so
// the shared-core claim protocol's overhead over the private-pool
// strategies is directly comparable.
func BenchmarkPoolSession(b *testing.B) {
	e := newBenchEngine(b, sched.NamePool, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Cycle(nil)
	}
}

// BenchmarkMultiSession measures aggregate throughput of 4 concurrent
// sessions over one shared pool: one op is one cycle of EVERY session,
// driven concurrently — the multi-user capacity unit.
func BenchmarkMultiSession(b *testing.B) {
	const sessions = 4
	m, err := engine.NewMulti(engine.Config{Graph: benchGraphConfig()}, sessions, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(m.Close)
	for _, e := range m.Engines() {
		for i := 0; i < 20; i++ {
			e.Cycle(nil)
		}
	}
	var wg sync.WaitGroup
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range m.Engines() {
			wg.Add(1)
			go func(e *engine.Engine) {
				defer wg.Done()
				e.Cycle(nil)
			}(e)
		}
		wg.Wait()
	}
}

// BenchmarkPlanCompile measures the plan-compilation pipeline on the
// standard DJ Star graph: the CSR + rank compile itself, and the
// cost-guided fusion pass on top of it. Both run at engine start-up (or
// RecompileFused), never on the audio path, but regressions here delay
// session bring-up and plan swaps.
func BenchmarkPlanCompile(b *testing.B) {
	_, g, err := graph.BuildDJStar(benchGraphConfig())
	if err != nil {
		b.Fatal(err)
	}
	plan, err := g.Compile()
	if err != nil {
		b.Fatal(err)
	}
	costs := rescon.PaperCostsUS(plan)
	b.Run("compile", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := g.Compile(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fuse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := graph.Fuse(plan, costs, graph.FuseOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFusedCycle A/Bs one busy-wait APC cycle with chain fusion off
// (the default, the paper's configuration) and on. CI gates the on/off
// ratio (scripts/check_obs_overhead.sh): fusion must never make the
// cycle slower.
func BenchmarkFusedCycle(b *testing.B) {
	run := func(b *testing.B, fuse bool) {
		e, err := engine.New(engine.Config{
			Graph:    benchGraphConfig(),
			Strategy: sched.NameBusyWait,
			Threads:  4,
			FusePlan: fuse,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(e.Close)
		for i := 0; i < 20; i++ {
			e.Cycle(nil)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Cycle(nil)
		}
	}
	b.Run("fusion=off", func(b *testing.B) { run(b, false) })
	b.Run("fusion=on", func(b *testing.B) { run(b, true) })
}

// BenchmarkSubstrates measures the main DSP substrates per packet, the
// raw kernels the graph nodes are built from.
func BenchmarkSubstrates(b *testing.B) {
	b.Run("graph-compile", func(b *testing.B) {
		cfg := benchGraphConfig()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, g, err := graph.BuildDJStar(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := g.Compile(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
