#!/usr/bin/env sh
# check_obs_overhead.sh — CI gate for the observability collector's cost.
#
# Runs BenchmarkObsOverhead (the same APC cycle with the collector at the
# default sampling rate vs fully disabled), computes the on/off ns-per-op
# ratio, and fails when it regresses more than 5 percentage points over
# the checked-in baseline (scripts/obs_overhead_baseline.txt).
#
# Usage:
#   scripts/check_obs_overhead.sh            # gate against the baseline
#   scripts/check_obs_overhead.sh -update    # rewrite the baseline
set -eu

cd "$(dirname "$0")/.."
baseline_file=scripts/obs_overhead_baseline.txt
out=$(mktemp)
trap 'rm -f "$out"' EXIT

# -count 3: the gate uses the per-variant minimum, which strips scheduler
# and frequency noise better than a mean on shared CI runners.
go test -run '^$' -bench 'BenchmarkObsOverhead' -benchtime 200x -count 3 . | tee "$out"

ratio=$(awk '
	/BenchmarkObsOverhead\/obs=on/  { if (!on  || $3 < on)  on  = $3 }
	/BenchmarkObsOverhead\/obs=off/ { if (!off || $3 < off) off = $3 }
	END {
		if (!on || !off) { print "parse-error"; exit }
		printf "%.4f", on / off
	}' "$out")

if [ "$ratio" = "parse-error" ]; then
	echo "check_obs_overhead: could not parse benchmark output" >&2
	exit 2
fi
echo "obs on/off ratio: $ratio"

if [ "${1:-}" = "-update" ]; then
	printf '%s\n' "$ratio" >"$baseline_file"
	echo "baseline updated: $baseline_file"
	exit 0
fi

baseline=$(cat "$baseline_file")
awk -v r="$ratio" -v b="$baseline" 'BEGIN {
	limit = b + 0.05
	printf "baseline %.4f, limit %.4f\n", b, limit
	if (r > limit) {
		printf "FAIL: observability overhead ratio %.4f exceeds baseline %.4f by more than 5%%\n", r, b
		exit 1
	}
	print "OK: within 5% of baseline"
}'
