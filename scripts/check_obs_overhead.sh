#!/usr/bin/env sh
# check_obs_overhead.sh — CI gate for the always-on instrumentation cost
# and the chain-fusion hot path.
#
# Runs BenchmarkObsOverhead, which A/Bs the full default APC cycle
# (observability collector + telemetry collector both live) against the
# same cycle with each layer individually disabled and with the
# admission gate enabled on top, plus BenchmarkFusedCycle, which A/Bs
# the cycle with chain fusion on against the default off, and computes
# four ns-per-op ratios:
#
#   obs ratio — default / obs-collector-disabled
#   tel ratio — default / telemetry-collector-disabled
#   fus ratio — fusion-on / fusion-off (< 1 means fusion helps)
#   adm ratio — admission-gated / default (all analysis is off-cycle)
#
# Each ratio fails when it regresses more than 5 percentage points over
# its checked-in baseline (scripts/obs_overhead_baseline.txt). The
# admission gate additionally has a hard allocation contract, not a
# baseline: adm=on must allocate no more per cycle than the default —
# admission adds ZERO allocations to the hot path.
#
# Usage:
#   scripts/check_obs_overhead.sh            # gate against the baseline
#   scripts/check_obs_overhead.sh -update    # rewrite the baseline
set -eu

cd "$(dirname "$0")/.."
baseline_file=scripts/obs_overhead_baseline.txt
out=$(mktemp)
trap 'rm -f "$out"' EXIT

# -count 5: the gate uses the per-variant minimum, which strips scheduler
# and frequency noise better than a mean on shared CI runners.
go test -run '^$' -bench 'BenchmarkObsOverhead|BenchmarkFusedCycle' -benchtime 500x -count 5 . | tee "$out"

ratios=$(awk '
	/BenchmarkObsOverhead\/obs=on/     { if (!on     || $3 < on)     on     = $3
	                                     if (onal == "" || $7 < onal) onal  = $7 }
	/BenchmarkObsOverhead\/obs=off/    { if (!noobs  || $3 < noobs)  noobs  = $3 }
	/BenchmarkObsOverhead\/tel=off/    { if (!notel  || $3 < notel)  notel  = $3 }
	/BenchmarkObsOverhead\/adm=on/     { if (!adm    || $3 < adm)    adm    = $3
	                                     if (admal == "" || $7 < admal) admal = $7 }
	/BenchmarkFusedCycle\/fusion=off/  { if (!fusoff || $3 < fusoff) fusoff = $3 }
	/BenchmarkFusedCycle\/fusion=on/   { if (!fuson  || $3 < fuson)  fuson  = $3 }
	END {
		if (!on || !noobs || !notel || !adm || !fusoff || !fuson || onal == "" || admal == "") {
			print "parse-error"; exit
		}
		printf "obs %.4f\ntel %.4f\nfus %.4f\nadm %.4f\nadmallocs %d %d\n",
			on / noobs, on / notel, fuson / fusoff, adm / on, admal, onal
	}' "$out")

if [ "$ratios" = "parse-error" ]; then
	echo "check_obs_overhead: could not parse benchmark output" >&2
	exit 2
fi

# Hard gate first: the admission gate must not allocate on the hot path.
echo "$ratios" | awk '$1 == "admallocs" {
	printf "admission allocations: adm=on %d allocs/op, default %d allocs/op\n", $2, $3
	if ($2 > $3) {
		printf "FAIL: admission gate adds %d allocations per cycle to the hot path\n", $2 - $3
		exit 1
	}
	print "OK: admission adds zero allocations to the hot path"
}'

ratios=$(printf '%s\n' "$ratios" | awk '$1 != "admallocs"')
echo "$ratios"

if [ "${1:-}" = "-update" ]; then
	printf '%s\n' "$ratios" >"$baseline_file"
	echo "baseline updated: $baseline_file"
	exit 0
fi

printf '%s\n' "$ratios" | while read -r layer ratio; do
	baseline=$(awk -v l="$layer" '$1 == l { print $2 }' "$baseline_file")
	if [ -z "$baseline" ]; then
		echo "check_obs_overhead: no $layer baseline in $baseline_file (run with -update)" >&2
		exit 2
	fi
	awk -v layer="$layer" -v r="$ratio" -v b="$baseline" 'BEGIN {
		limit = b + 0.05
		printf "%s: ratio %.4f, baseline %.4f, limit %.4f\n", layer, r, b, limit
		if (r > limit) {
			printf "FAIL: %s overhead ratio %.4f exceeds baseline %.4f by more than 5%%\n", layer, r, b
			exit 1
		}
		printf "OK: %s within 5%% of baseline\n", layer
	}'
done
