#!/usr/bin/env sh
# djserve_smoke.sh — CI gate for the fleet control plane.
#
# Boots djserve with two shards and drives the whole /v1 lifecycle
# over HTTP: create (placement must be justified with candidate
# headrooms), retune, live-edit, a steady-state SLO window, then
# drain + undrain (the session must land on the other shard), a
# /metrics scrape (session/shard labels must survive the migration),
# and destroy. Exits non-zero if any step fails or if a shard breaches
# the 5-per-10k SLO during the observation window.
set -eu

cd "$(dirname "$0")/.."

addr=127.0.0.1:9147
bin=$(mktemp)
body=$(mktemp)
s2=$(mktemp)
trap 'kill "$pid" 2>/dev/null || true; rm -f "$bin" "$body" "$s2"' EXIT

go build -o "$bin" ./cmd/djserve
"$bin" -addr "$addr" -shards 2 -scale 0.05 -trackbars 4 -quiet &
pid=$!

ok=
for _ in $(seq 1 40); do
	if curl -fsS "http://$addr/v1/shards" -o "$body" 2>/dev/null; then
		ok=1
		break
	fi
	sleep 0.25
done
if [ -z "$ok" ]; then
	echo "djserve_smoke: control plane never came up on $addr" >&2
	exit 2
fi
jq -e '.shards | length == 2' "$body" >/dev/null
jq -e '.shards | all(.slo.target_per_10k == 5)' "$body" >/dev/null

# Create: 201, admitted, and the placement lists both candidates.
curl -fsS -X POST "http://$addr/v1/sessions" -d '{"id":"smoke-a"}' -o "$body"
jq -e '.session.verdict == "admit"' "$body" >/dev/null
jq -e '.placement.candidates | length == 2' "$body" >/dev/null
jq -e '.placement.headroom_us > 0' "$body" >/dev/null
src=$(jq -r '.placement.shard' "$body")
curl -fsS -X POST "http://$addr/v1/sessions" -d '{"id":"smoke-b"}' >/dev/null

# Retune and live-edit the running session.
curl -fsS -X POST "http://$addr/v1/sessions/smoke-a/retune" \
	-d '{"load_factor":1.25}' | jq -e '.ok and .load_factor == 1.25' >/dev/null
curl -fsS -X POST "http://$addr/v1/sessions/smoke-a/edits" \
	-d '{"patch":"insert-delay:B:2"}' | jq -e '.ok and .staged' >/dev/null

# SLO gate: with one session per shard (well below the knee), the
# steady-state misses per 10k over a quiet window must stay within the
# 5-per-10k objective on every shard. The window is a delta between two
# scrapes so the compile-cycle cold-start miss is excluded — the same
# way loadgen measures each load level. A ~1000-cycle window cannot
# statistically resolve a 5-per-10k rate (one OS preemption is already
# 10/10k), so the gate is budget plus one preempted cycle — the same
# noise allowance R7/`djanalyze -admit` apply; genuine overload blows
# misses an order of magnitude past it.
sleep 1
curl -fsS "http://$addr/v1/shards" -o "$body"
sleep 3
curl -fsS "http://$addr/v1/shards" -o "$s2"
if ! jq -s -e '
		[ .[0].shards[] as $a | .[1].shards[] | select(.id == $a.id)
		  | { dc: (.slo.cycles - $a.slo.cycles), dm: (.slo.misses - $a.slo.misses) } ]
		| all(.dc == 0 or .dm <= .dc * 5 / 10000 + 1)' "$body" "$s2" >/dev/null; then
	echo "djserve_smoke: SLO breached in steady state:" >&2
	jq '.shards[].slo' "$s2" >&2
	exit 1
fi

# Drain the shard hosting smoke-a: it must migrate, nothing may fail.
curl -fsS -X POST "http://$addr/v1/shards/$src/drain" -o "$body"
jq -e '.failed == 0 and .moved >= 1' "$body" >/dev/null
curl -fsS "http://$addr/v1/sessions/smoke-a" -o "$body"
jq -e --argjson src "$src" '.shard != $src' "$body" >/dev/null
dst=$(jq -r '.shard' "$body")
curl -fsS "http://$addr/v1/shards/$src" -o "$body"
jq -e '.draining == true and .sessions == 0' "$body" >/dev/null
curl -fsS -X DELETE "http://$addr/v1/shards/$src/drain" -o /dev/null

# The fleet exposition carries session/shard labels that followed the
# migrated session to its new shard.
curl -fsS "http://$addr/metrics" -o "$body"
grep -q '# EOF' "$body"
grep -q "session=\"smoke-a\",shard=\"$dst\"" "$body"

# Destroy and verify.
curl -fsS -X DELETE "http://$addr/v1/sessions/smoke-a" -o /dev/null
curl -fsS -X DELETE "http://$addr/v1/sessions/smoke-b" -o /dev/null
if curl -fsS "http://$addr/v1/sessions/smoke-a" -o /dev/null 2>/dev/null; then
	echo "djserve_smoke: deleted session still served" >&2
	exit 1
fi

echo "djserve_smoke: OK (drained shard $src -> $dst, SLO held on both shards)"
