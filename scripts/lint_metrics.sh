#!/usr/bin/env sh
# lint_metrics.sh — CI gate for the /metrics exposition.
#
# Boots djstar headless with the debug server, scrapes /metrics twice a
# couple of seconds apart, and lints the exposition the way a Prometheus
# scraper would:
#
#   - every sample belongs to a family announced by # HELP and # TYPE
#   - counter families end in _total and never decrease between scrapes
#   - histogram families expose _bucket/_sum/_count samples
#   - the document terminates with # EOF
#
# Also checks /api/slo serves the paper's 5-per-10k budget as JSON.
set -eu

cd "$(dirname "$0")/.."

addr=127.0.0.1:9143
bin=$(mktemp)
s1=$(mktemp)
s2=$(mktemp)
trap 'kill "$pid" 2>/dev/null || true; rm -f "$bin" "$s1" "$s2"' EXIT

go build -o "$bin" ./cmd/djstar
"$bin" -duration 20s -http "$addr" >/dev/null 2>&1 &
pid=$!

ok=
for _ in $(seq 1 40); do
	if curl -fsS "http://$addr/metrics" -o "$s1" 2>/dev/null; then
		ok=1
		break
	fi
	sleep 0.25
done
if [ -z "$ok" ]; then
	echo "lint_metrics: /metrics never came up on $addr" >&2
	exit 2
fi
sleep 2
curl -fsS "http://$addr/metrics" -o "$s2"
curl -fsS "http://$addr/api/slo" | jq -e '.[0].slo.target_per_10k == 5' >/dev/null

lint() {
	awk '
		$1 == "#" && $2 == "HELP" { help[$3] = 1; next }
		$1 == "#" && $2 == "TYPE" { type[$3] = $4; next }
		$1 == "#" && $2 == "EOF"  { eof = 1; next }
		eof { print "FAIL: content after # EOF: " $0; bad = 1 }
		/^$/ { next }
		{
			name = $1
			sub(/\{.*/, "", name)
			fam = name
			if (name ~ /_(bucket|sum|count)$/) {
				base = name
				sub(/_(bucket|sum|count)$/, "", base)
				if (type[base] == "histogram") fam = base
			}
			if (!(fam in type)) { print "FAIL: no # TYPE for " name; bad = 1 }
			if (!(fam in help)) { print "FAIL: no # HELP for " name; bad = 1 }
			if (type[fam] == "counter" && fam !~ /_total$/) {
				print "FAIL: counter family " fam " does not end in _total"; bad = 1
			}
			if (type[fam] == "histogram") histseen[fam] = 1
		}
		END {
			if (!eof) { print "FAIL: exposition does not end with # EOF"; bad = 1 }
			for (h in histseen)
				if (!((h "_ok") in dummy) && histseen[h] != 1) bad = 1
			exit bad
		}' "$1"
}

echo "lint_metrics: linting scrape 1 ($(grep -c . "$s1") lines)"
lint "$s1"
echo "lint_metrics: linting scrape 2"
lint "$s2"

# Counters must be monotone between the two scrapes.
awk '
	NR == FNR {
		if ($1 !~ /^#/ && $1 ~ /_total[{ ]/) first[$1] = $2
		next
	}
	$1 !~ /^#/ && ($1 in first) && $2 + 0 < first[$1] + 0 {
		print "FAIL: counter went backwards between scrapes: " $1 " " first[$1] " -> " $2
		bad = 1
	}
	END { exit bad }' "$s1" "$s2"

# The engine must actually be cycling: djstar_cycles_total grows.
awk '
	NR == FNR { if ($1 ~ /^djstar_cycles_total/) c1 += $2; next }
	{ if ($1 ~ /^djstar_cycles_total/) c2 += $2 }
	END {
		printf "lint_metrics: cycles %d -> %d\n", c1, c2
		if (c2 <= c1) { print "FAIL: cycle counter did not advance"; exit 1 }
	}' "$s1" "$s2"

echo "lint_metrics: OK"
