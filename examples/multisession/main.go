// Multi-session: run four independent DJ sessions concurrently over one
// shared worker pool — the scenario the shared execution core enables
// beyond the paper's single-app setting. Each session keeps its own
// 67-node graph, decks and mixer; only the pinned worker threads are
// shared, with per-session cycle serialization preserved.
//
//	go run ./examples/multisession
package main

import (
	"fmt"
	"log"

	"djstar/internal/audio"
	"djstar/internal/engine"
	"djstar/internal/graph"
)

func main() {
	// 1. One graph config shared by every session (scale 0: real DSP,
	//    no synthetic paper-scale load, fast everywhere).
	cfg := engine.Config{
		Graph:          graph.DefaultConfig(),
		CollectSamples: true,
	}

	// 2. Four sessions over a pool of three helper workers. Each
	//    session's driving goroutine executes nodes too, so the pool
	//    behaves like the paper's 4-thread configuration per cycle.
	//    Three come up with the shared defaults; the fourth shows the
	//    SessionSpec options struct — a named session whose zero-valued
	//    fields inherit the base config and whose set fields override it
	//    (here: a fused hot-path plan just for this session).
	const sessions = 4
	m, err := engine.NewMulti(cfg, sessions-1, 3)
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	if _, err := m.AddSession(engine.SessionSpec{ID: "guest-deck", Fuse: true}); err != nil {
		log.Fatal(err)
	}

	// 3. Run one second of audio on every session at once: each engine
	//    cycles independently; the pool multiplexes ready nodes from
	//    whichever sessions are mid-cycle onto the shared workers.
	cycles := int(1.0 / audio.StandardPacketPeriod.Seconds())
	metrics := m.RunCyclesConcurrent(cycles)

	// 4. Per-session results: every session produced its own audio and
	//    kept its own timing statistics.
	fmt.Printf("%d sessions × %d cycles over one shared pool (%d threads)\n\n",
		sessions, cycles, m.Engines()[0].Scheduler().Threads())
	for i, mm := range metrics {
		e := m.Engines()[i]
		fmt.Printf("session %-10s graph mean %.4f ms, worst %.4f ms | master peak %.3f\n",
			e.SessionID()+":", mm.Graph.Mean(), mm.Graph.Max(), e.Session().MasterOut().Peak())
	}
}
