// Quickstart: build the standard DJ Star graph, run it for one second of
// audio under the busy-waiting scheduler, and print what happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"djstar/internal/audio"
	"djstar/internal/engine"
	"djstar/internal/graph"
	"djstar/internal/sched"
)

func main() {
	// 1. Configure the standard 67-node graph (4 decks × 4 FX, mixer,
	//    master section). Scale 0 runs the real DSP without the synthetic
	//    paper-scale load, so this demo is fast everywhere.
	cfg := graph.DefaultConfig()

	// 2. Build an engine around it with the paper's winning strategy.
	e, err := engine.New(engine.Config{
		Graph:          cfg,
		Strategy:       sched.NameBusyWait,
		Threads:        4,
		CollectSamples: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer e.Close()

	// 3. Run one second of audio: 345 packets of 128 samples at 44.1 kHz.
	cycles := int(1.0 / audio.StandardPacketPeriod.Seconds())
	m := e.RunCycles(cycles)

	// 4. Inspect the results.
	fmt.Printf("ran %d audio processing cycles (%.1f ms of audio)\n",
		m.Cycles, float64(m.Cycles)*audio.StandardPacketPeriod.Seconds()*1e3)
	fmt.Printf("graph execution: mean %.4f ms, worst %.4f ms (budget %.1f ms)\n",
		m.Graph.Mean(), m.Graph.Max(), engine.GraphBudgetMS)
	fmt.Printf("full APC:        mean %.4f ms, worst %.4f ms (deadline %.3f ms)\n",
		m.APC.Mean(), m.APC.Max(), engine.DeadlineMS)
	fmt.Printf("deadline misses: %d / %d\n", m.Deadline.Missed(), m.Deadline.Total())

	// The session is live: the master output buffer holds the last packet.
	s := e.Session()
	fmt.Printf("master peak %.3f, loudness %.4f\n", s.MasterOut().Peak(), s.Loudness())
	for d, dk := range s.Decks {
		fmt.Printf("deck %c: %s at %.1fs, tempo %.2fx\n",
			'A'+d, dk.Track().Name, dk.Position()/audio.SampleRate, dk.Tempo())
	}
}
