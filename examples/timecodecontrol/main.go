// Timecode control: drive a deck from a simulated control vinyl. A
// virtual turntable generates the DVS signal; the decoder recovers speed,
// direction and absolute position every packet; the deck follows — the
// complete external-control path the paper's timecode decoder subsystem
// (16 % of APC run time) implements.
//
//	go run ./examples/timecodecontrol
package main

import (
	"fmt"

	"djstar/internal/audio"
	"djstar/internal/timecode"
)

func main() {
	const rate = audio.SampleRate
	seq := timecode.NewSequence()
	turntable := timecode.NewGenerator(seq, rate)
	decoder := timecode.NewDecoder(seq, rate)

	l := make([]float64, audio.PacketSize)
	r := make([]float64, audio.PacketSize)

	run := func(packets int, label string) {
		for i := 0; i < packets; i++ {
			turntable.Generate(l, r)
			decoder.Decode(l, r)
		}
		pos, locked := decoder.Position()
		lock := "searching"
		if locked {
			lock = fmt.Sprintf("locked @ %.2fs", timecode.PositionSeconds(pos))
		}
		dir := map[int]string{1: "fwd", -1: "rev", 0: "?"}[decoder.Direction()]
		fmt.Printf("%-34s needle %8.1f cyc  speed %5.2f %s  %s\n",
			label, turntable.Position(), decoder.Speed(), dir, lock)
	}

	fmt.Println("-- drop the needle, normal playback --")
	turntable.Seek(2500)
	turntable.SetSpeed(1.0)
	run(40, "play 1.0x")

	fmt.Println("-- pitch up (beatmatching) --")
	turntable.SetSpeed(1.08)
	run(60, "play 1.08x")

	fmt.Println("-- scratch: spin backwards --")
	turntable.SetSpeed(-2.0)
	run(30, "scratch -2.0x")

	fmt.Println("-- release: back to forward --")
	turntable.SetSpeed(1.0)
	run(60, "play 1.0x (relock)")

	fmt.Println("-- needle drop to a different groove --")
	turntable.Seek(48000)
	run(40, "after needle drop")

	fmt.Println("-- slow creep (half speed) --")
	turntable.SetSpeed(0.5)
	run(80, "play 0.5x")
}
