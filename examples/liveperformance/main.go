// Live performance: a scripted two-minute-of-audio DJ set on the
// reconstructed engine — beatmatching, EQ kills, crossfades, effect
// sweeps and sampler hits — while tracking the real-time deadline. This
// is the workload the paper's introduction motivates: "DJs often change
// effects or mixer parameters during their live performances", which is
// why only one packet is available at a time and the graph must be
// recomputed per packet.
//
//	go run ./examples/liveperformance
package main

import (
	"fmt"
	"log"

	"djstar/internal/audio"
	"djstar/internal/dsp"
	"djstar/internal/engine"
	"djstar/internal/graph"
	"djstar/internal/sched"
)

// cue is one scripted action at a given cycle.
type cue struct {
	atSecond float64
	desc     string
	apply    func(s *graph.Session)
}

func main() {
	cfg := graph.DefaultConfig()
	cfg.TrackBars = 32 // ~60 s tracks
	e, err := engine.New(engine.Config{
		Graph:          cfg,
		Strategy:       sched.NameBusyWait,
		Threads:        4,
		CollectSamples: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer e.Close()
	s := e.Session()

	// Opening state: deck A playing on the A side, deck B cued in the
	// headphones; decks C/D muted.
	s.Mix.SetCrossfade(0)
	s.Strips[1].SetCue(true)
	s.Strips[2].SetFader(0)
	s.Strips[3].SetFader(0)

	script := []cue{
		{5, "kill deck B lows for the blend", func(s *graph.Session) {
			s.Strips[1].SetEQ(dsp.EQGainMin, 0, 0)
		}},
		{10, "start crossfade A->B", func(s *graph.Session) {
			s.Mix.SetCrossfade(0.25)
		}},
		{15, "crossfade center, open B lows, kill A lows", func(s *graph.Session) {
			s.Mix.SetCrossfade(0.5)
			s.Strips[1].SetEQ(0, 0, 0)
			s.Strips[0].SetEQ(dsp.EQGainMin, 0, 0)
		}},
		{20, "sweep deck B filter", func(s *graph.Session) {
			s.Strips[1].SetFilter(dsp.HighPass, 400, 0.9, true)
		}},
		{25, "complete crossfade to B, uncue", func(s *graph.Session) {
			s.Mix.SetCrossfade(1)
			s.Strips[1].SetCue(false)
			s.Strips[1].SetFilter(dsp.AllPass, 0, 0, false)
		}},
		{30, "push echo macro on deck B", func(s *graph.Session) {
			for _, fx := range s.FX[1] {
				if fx.Name() == "echo" || fx.Name() == "flanger" {
					fx.SetMacro(0.8)
					fx.SetWet(0.5)
				}
			}
		}},
		{35, "sampler hit", func(s *graph.Session) {
			s.Sampler.Trigger()
		}},
		{40, "bring deck C in on the A side", func(s *graph.Session) {
			s.Strips[2].SetFader(1)
			s.Strips[2].SetCrossfadeSide(0) // through
			s.Mix.SetCrossfade(0.7)
		}},
		{50, "wind down: master to half", func(s *graph.Session) {
			s.Mix.SetMasterLevel(0.5)
		}},
	}

	const seconds = 60.0
	total := int(seconds / audio.StandardPacketPeriod.Seconds())
	m := e.RunCycles(0) // empty metrics container
	next := 0
	var peakHold float64

	// Mid-set live re-patch: at ~22 s a two-unit feedback-delay chain is
	// spliced into deck B's playing signal path (a whole-topology edit,
	// not a parameter change), then excised 200 cycles later. The audio
	// must stay continuous through both plan swaps — no silent packets in
	// the window around them.
	insertAt := int(22.0 / audio.StandardPacketPeriod.Seconds())
	const removeAfter = 200
	removeAt := insertAt + removeAfter
	baseNodes := e.Plan().Len()
	zeroInWindow := 0

	for i := 0; i < total; i++ {
		now := float64(i) * audio.StandardPacketPeriod.Seconds()
		for next < len(script) && now >= script[next].atSecond {
			fmt.Printf("%6.1fs  %s\n", now, script[next].desc)
			script[next].apply(s)
			next++
		}
		switch i {
		case insertAt:
			fmt.Printf("%6.1fs  LIVE RE-PATCH: insert 2-unit delay chain on deck B\n", now)
			if err := e.ApplyPatch("insert-delay:B:2"); err != nil {
				log.Fatalf("insert-delay: %v", err)
			}
		case removeAt:
			fmt.Printf("%6.1fs  LIVE RE-PATCH: remove the delay chain (200 cycles later)\n", now)
			if err := e.ApplyPatch("remove-delay:B"); err != nil {
				log.Fatalf("remove-delay: %v", err)
			}
		}
		e.Cycle(m)
		p := s.MasterOut().Peak()
		if p > peakHold {
			peakHold = p
		}
		if p == 0 && i >= insertAt-10 && i <= removeAt+100 {
			zeroInWindow++
		}
	}

	// The set must have adopted both edits and returned to the original
	// node count, without a single silent packet at either swap boundary.
	if got := e.PlanEpoch(); got != 2 {
		log.Fatalf("plan epoch = %d after the set, want 2 (insert + remove adopted)", got)
	}
	if got := e.Plan().Len(); got != baseNodes {
		log.Fatalf("node count = %d after excision, want %d", got, baseNodes)
	}
	if zeroInWindow > 0 {
		log.Fatalf("audio discontinuity: %d silent master packets around the re-patch window", zeroInWindow)
	}

	fmt.Printf("\nset complete: %d cycles (%.0f s of audio)\n", m.Cycles, seconds)
	fmt.Printf("re-patch: 2 topology edits adopted live (epoch %d), audio continuous through both swaps\n",
		e.PlanEpoch())
	fmt.Printf("graph: mean %.4f ms, worst %.4f ms\n", m.Graph.Mean(), m.Graph.Max())
	fmt.Printf("APC deadline misses: %d / %d (deadline %.3f ms)\n",
		m.Deadline.Missed(), m.Deadline.Total(), engine.DeadlineMS)
	fmt.Printf("output peak held at %.3f (limiter ceiling 0.98) — clipped samples: %d\n",
		peakHold, s.OutputStage().ClippedSamples())
}
