// Full application: all four layers of the paper's Fig. 2 wired together
// — the audio core with the busy-waiting scheduler, the event middleware
// a UI would subscribe to, the hardware layer with a simulated performer
// working the controls, and the analyzed track library. The program
// subscribes to the bus like a GUI would and prints what it receives.
//
//	go run ./examples/fullapp
package main

import (
	"fmt"
	"log"

	"djstar/internal/app"
	"djstar/internal/audio"
	"djstar/internal/engine"
	"djstar/internal/graph"
	"djstar/internal/middleware"
	"djstar/internal/sched"
	"djstar/internal/ui"
)

func main() {
	gc := graph.DefaultConfig()
	gc.TrackBars = 8
	a, err := app.New(app.Config{
		Engine: engine.Config{
			Graph:    gc,
			Strategy: sched.NameBusyWait,
			Threads:  4,
		},
		PerformerSeed:  2026,
		AnalyzeLibrary: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()

	// The library was analyzed at startup: print what the browser shows.
	fmt.Println("track library:")
	for _, name := range a.Library.Names() {
		e := a.Library.Get(name)
		fmt.Printf("  %-8s %6.1f BPM (conf %.2f)  key %-2s  %5.1fs  %d beats gridded\n",
			name, e.Analysis.BPM, e.Analysis.BPMConfidence,
			e.Analysis.KeyName, e.Analysis.DurationSeconds, len(e.Analysis.BeatGrid))
	}
	fmt.Println("\nwaveform overview (deck-a):")
	fmt.Print(a.Library.Get("deck-a").Analysis.Overview.Render(4))

	// Subscribe like a GUI.
	controls, _ := a.Bus.Subscribe(middleware.TopicControl, 256)
	beats, _ := a.Bus.Subscribe(middleware.TopicBeat, 256)
	misses, _ := a.Bus.Subscribe(middleware.TopicDeadlineMiss, 16)
	uiFeed, _ := a.Bus.Subscribe(middleware.TopicWildcard, 1024)
	view := ui.NewModel(4)

	// Run ten seconds of audio with the performer tweaking controls.
	seconds := 10.0
	cycles := int(seconds / audio.StandardPacketPeriod.Seconds())
	fmt.Printf("\nrunning %d cycles (%.0f s of audio) with a simulated performer...\n\n",
		cycles, seconds)
	m := a.RunCycles(cycles)

	nBeats, nCtl := 0, 0
	drain := func(ch <-chan middleware.Event, f func(middleware.Event)) {
		for {
			select {
			case ev := <-ch:
				f(ev)
			default:
				return
			}
		}
	}
	drain(beats.Events(), func(middleware.Event) { nBeats++ })
	var lastCtl []string
	drain(controls.Events(), func(ev middleware.Event) {
		nCtl++
		if len(lastCtl) < 8 {
			lastCtl = append(lastCtl, fmt.Sprint(ev.Payload))
		}
	})
	fmt.Printf("bus traffic: %d events published, %d beat events, %d control events\n",
		a.Bus.Published(), nBeats, nCtl)
	fmt.Printf("first control moves: %v\n", lastCtl)
	drain(misses.Events(), func(ev middleware.Event) {
		dm := ev.Payload.(middleware.DeadlineMiss)
		fmt.Printf("deadline miss at cycle %d: %.3f ms > %.3f ms\n",
			dm.Cycle, dm.DurationMS, dm.DeadlineMS)
	})

	// Render the UI layer's dashboard from the drained event stream.
	view.Drain(uiFeed)
	fmt.Printf("\nUI dashboard (from %d bus events):\n%s", view.Events(), view.Render(50))
	pos := a.Engine.Session().Decks[0].Position() /
		float64(a.Library.Get("deck-a").Track.Len())
	fmt.Printf("\ndeck-a waveform with playhead:\n%s",
		ui.WaveformCursor(a.Library.Get("deck-a").Analysis.Overview, pos, 3))

	fmt.Printf("\nengine: %s\n", m)
	fmt.Printf("mapping: %d control events applied, %d unknown\n",
		a.Mapping.Applied(), a.Mapping.Unknown())
}
