// Autopilot: an automatic DJ set. The library is filled with analyzed
// tracks; the autopilot picks harmonically and tempo-compatible
// successors, beat-syncs them and crossfades at each track's outro —
// exercising the analyzer, decks, sync and mixer end to end while the
// engine holds its 2.9 ms deadline.
//
//	go run ./examples/autopilot
package main

import (
	"fmt"
	"log"

	"djstar/internal/app"
	"djstar/internal/audio"
	"djstar/internal/engine"
	"djstar/internal/graph"
	"djstar/internal/sched"
	"djstar/internal/synth"
)

func main() {
	gc := graph.DefaultConfig()
	gc.TrackBars = 8 // ~15 s tracks keep the demo brisk
	a, err := app.New(app.Config{
		Engine: engine.Config{
			Graph:    gc,
			Strategy: sched.NameBusyWait,
			Threads:  4,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()

	// A small crate of mutually mixable tracks (close tempos, related
	// keys) plus one deliberate misfit.
	crate := []synth.TrackSpec{
		{Name: "opener", BPM: 125, Bars: 8, Seed: 11, Key: 0},
		{Name: "builder", BPM: 126, Bars: 8, Seed: 22, Key: 7},
		{Name: "peak", BPM: 127, Bars: 8, Seed: 33, Key: 0},
		{Name: "roller", BPM: 125, Bars: 8, Seed: 44, Key: 5},
		{Name: "misfit", BPM: 150, Bars: 8, Seed: 55, Key: 3},
	}
	fmt.Println("analyzing crate...")
	for _, spec := range crate {
		e, err := a.Library.Add(synth.GenerateTrack(spec))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %6.1f BPM  key %s\n",
			spec.Name, e.Analysis.BPM, e.Analysis.KeyName)
	}

	ap := app.NewAutopilot(a)
	ap.CrossfadeBeats = 16
	if err := ap.Start("opener"); err != nil {
		log.Fatal(err)
	}

	const seconds = 60
	cycles := int(seconds / audio.StandardPacketPeriod.Seconds())
	m := a.Engine.RunCycles(0)
	lastLive := ap.LiveDeck()
	fmt.Printf("\nrunning a %d-second set...\n", seconds)
	for i := 0; i < cycles; i++ {
		a.Cycle(m)
		ap.Cycle()
		if live := ap.LiveDeck(); live != lastLive {
			now := float64(i) * audio.StandardPacketPeriod.Seconds()
			hist := ap.History()
			fmt.Printf("%6.1fs  mixed into %q on deck %c\n",
				now, hist[len(hist)-1], 'A'+live)
			lastLive = live
		}
	}

	fmt.Printf("\nset: %v\n", ap.History())
	fmt.Printf("transitions: %d\n", ap.Transitions())
	fmt.Printf("engine: %s\n", m)
	for _, name := range ap.History() {
		if name == "misfit" {
			fmt.Println("warning: the misfit got played!? (should be excluded by BPM)")
		}
	}
}
