// Custom graph: the scheduling machinery is not tied to the DJ Star
// topology. This example builds a synthetic image-pipeline-style task
// graph by hand, runs it under all four strategies and compares their
// makespans — the way you would evaluate the strategies for your own
// stream-processing workload.
//
//	go run ./examples/customgraph
package main

import (
	"fmt"
	"log"
	"math"

	"djstar/internal/graph"
	"djstar/internal/sched"
	"djstar/internal/stats"
)

// stage simulates a compute kernel of roughly the given microseconds by
// doing real floating-point work (no sleeping — the schedulers are being
// measured).
func stage(us float64) func() {
	iters := int(us * 150) // rough: ~150 iterations per µs of math
	return func() {
		x := 1.7
		for i := 0; i < iters; i++ {
			x = math.Sqrt(x*x+1) * 0.99
		}
		sink = x
	}
}

var sink float64

func main() {
	// A fan-out/fan-in pipeline: 8 tile decoders feed 4 filter chains of
	// 3 stages each, merged by a compositor and finished by an encoder.
	g := graph.New()

	var decoders []int
	for i := 0; i < 8; i++ {
		decoders = append(decoders,
			g.AddNode(fmt.Sprintf("decode%d", i), graph.SectionControl, stage(20)))
	}
	var chains []int
	for c := 0; c < 4; c++ {
		prev := -1
		for s := 0; s < 3; s++ {
			id := g.AddNode(fmt.Sprintf("filter%d.%d", c, s), graph.DeckSection(c), stage(40))
			if s == 0 {
				// Each chain consumes two decoder tiles.
				must(g.AddEdge(decoders[2*c], id))
				must(g.AddEdge(decoders[2*c+1], id))
			} else {
				must(g.AddEdge(prev, id))
			}
			prev = id
		}
		chains = append(chains, prev)
	}
	compositor := g.AddNode("composite", graph.SectionMaster, stage(60))
	for _, c := range chains {
		must(g.AddEdge(c, compositor))
	}
	encoder := g.AddNode("encode", graph.SectionMaster, stage(30))
	must(g.AddEdge(compositor, encoder))

	plan, err := g.Compile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom graph: %d nodes, %d sources, critical path %d nodes\n\n",
		plan.Len(), len(plan.Sources()), plan.CriticalPathLen)

	const cycles = 400
	rows := [][]string{}
	var seqMean float64
	for _, name := range sched.Strategies {
		threads := 4
		if name == sched.NameSequential {
			threads = 1
		}
		tr := sched.NewTracer(plan.Len())
		s, err := sched.New(name, plan, sched.Options{Threads: threads, Observer: tr})
		if err != nil {
			log.Fatal(err)
		}
		sum := stats.NewSummary()
		for i := 0; i < cycles; i++ {
			s.Execute()
			sum.Add(float64(tr.Makespan()) / 1e3) // µs
		}
		s.Close()
		if name == sched.NameSequential {
			seqMean = sum.Mean()
		}
		speedup := "-"
		if seqMean > 0 && name != sched.NameSequential {
			speedup = fmt.Sprintf("%.2f", seqMean/sum.Mean())
		}
		rows = append(rows, []string{name, fmt.Sprintf("%d", threads),
			fmt.Sprintf("%.1f", sum.Mean()), fmt.Sprintf("%.1f", sum.Max()), speedup})
	}
	fmt.Print(stats.RenderTable(
		[]string{"strategy", "threads", "mean µs", "worst µs", "speedup"}, rows))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
