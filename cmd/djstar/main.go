// Command djstar runs the reconstructed DJ Star engine as a live session:
// four decks with synthetic tracks, effect chains, a mixer and the
// timecode front end, paced against the simulated sound card (one packet
// every 2.902 ms). It periodically prints a status line with deck
// positions, meters and deadline statistics — a terminal stand-in for the
// GUI layer of Fig. 2.
//
// Usage:
//
//	djstar -duration 10s -strategy busy -threads 4
//	djstar -chaos "panic:FXA2@100x3, stall:Mixer@500:200ms"
//	djstar -script patches.txt            # timed live graph edits
//	djstar -repl                          # patch specs from stdin
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"djstar/internal/admission"
	"djstar/internal/audio"
	"djstar/internal/engine"
	"djstar/internal/exp"
	"djstar/internal/faults"
	"djstar/internal/graph"
	"djstar/internal/obs"
	"djstar/internal/sched"
	"djstar/internal/settings"
	"djstar/internal/telemetry"
)

func main() {
	var (
		duration = flag.Duration("duration", 10*time.Second, "how long to run")
		strategy = flag.String("strategy", "busy",
			fmt.Sprintf("scheduling strategy (%s, %s)",
				strings.Join(sched.AllStrategies, ", "), sched.NamePool))
		threads  = flag.Int("threads", 4, "worker threads")
		sessions = flag.Int("sessions", 1, "concurrent DJ sessions sharing one worker pool (>1 forces the pool scheduler)")
		scale    = flag.Float64("scale", 1.0, "node cost scale (1.0 = paper scale)")
		dvs      = flag.Bool("dvs", true, "timecode (DVS) tempo control")
		chaos    = flag.String("chaos", "", `deterministic fault script, e.g. "panic:FXA2@100x3, stall:Mixer@500:200ms"`)
		watchdog = flag.Bool("watchdog", true, "stall watchdog (detects and names wedged nodes)")
		record   = flag.String("record", "", "write the record bus to this WAV file")
		loadSet  = flag.String("settings", "", "load mixer/deck settings from this JSON file")
		saveSet  = flag.String("save-settings", "", "save the final settings to this JSON file")
		traceOut = flag.String("trace", "", "write sampled schedule realizations to this file as Chrome trace JSON (load in chrome://tracing or ui.perfetto.dev)")
		httpAddr = flag.String("http", "", `serve live observability on this address (e.g. ":6060"): /debug/pprof/, /api/snapshot, /api/critpath, /api/trace, /metrics, /api/slo`)
		metrics  = flag.String("metrics", "", `serve just the telemetry endpoint on this address (e.g. ":9090"): /metrics (OpenMetrics), /api/slo`)
		incDir   = flag.String("incident-dir", "", "write flight-recorder incident bundles to this directory (replay with djanalyze -incident)")
		fuse     = flag.Bool("fuse", false, "compile the execution plan with cost-guided chain fusion (DESIGN.md §13)")
		script   = flag.String("script", "", `timed live graph edits: a file of "@<cycle> <patch>" lines, e.g. "@500 insert-delay:A:2" (see DESIGN.md §14)`)
		repl     = flag.Bool("repl", false, "read live patch specs from stdin, one per line (insert-delay:A:2, remove-delay:A, drop-node:<name>)")
		admit    = flag.Bool("admission", false, "deadline-aware admission gate: refuse or degrade sessions and edits whose analytical bound exceeds the packet period (DESIGN.md §15)")
	)
	flag.Parse()

	gc := graph.DefaultConfig()
	gc.Scale = *scale
	if *scale > 0 {
		gc.Calibration = exp.Calib()
	}
	if *chaos != "" {
		specs, err := faults.Parse(*chaos)
		if err != nil {
			fmt.Fprintf(os.Stderr, "djstar: -chaos: %v\n", err)
			os.Exit(2)
		}
		gc.Faults = faults.New(1, specs...)
	}
	cfg := engine.Config{
		Graph:          gc,
		Strategy:       *strategy,
		Threads:        *threads,
		FusePlan:       *fuse,
		DVS:            *dvs,
		CollectSamples: false,
		Watchdog:       *watchdog,
		Telemetry: engine.TelemetryOptions{
			IncidentDir: *incDir,
			OnIncident: func(path string, inc *telemetry.Incident) {
				fmt.Fprintf(os.Stderr, "INCIDENT %s: bundle written to %s\n", inc.Reason, path)
			},
		},
		Hooks: engine.Hooks{
			OnFault: func(r sched.FaultRecord) {
				q := ""
				if r.Quarantined {
					q = " — node quarantined"
				}
				fmt.Fprintf(os.Stderr, "FAULT contained: %s (cycle %d, worker %d): %v%s\n",
					r.Name, r.Cycle, r.Worker, r.Err, q)
			},
			OnStall: func(r engine.StallRecord) {
				fmt.Fprintf(os.Stderr, "STALL: cycle %d wedged %.0f ms in %s [%s]\n",
					r.Cycle, r.ElapsedMS, r.Name, r.Inflight)
			},
		},
	}
	if *traceOut != "" {
		// Keep a deeper ring so the export holds a representative spread
		// of sampled cycles, not just the last handful.
		cfg.Obs.TraceRing = 64
	}
	if *admit {
		cfg.Admission.Enabled = true
		// The envelope scales with the node costs, like the load does.
		cfg.Admission.Config.PeriodUS = admission.DefaultPeriodUS * *scale
	}

	// Multi-session mode: N full sessions share one worker pool; the
	// first session is the interactive one (status line, recording,
	// settings), the others run the same paced cycle loop in the
	// background — the "many concurrent users, one process" scenario.
	var (
		e      *engine.Engine
		multi  *engine.MultiEngine
		bgDone sync.WaitGroup
		bgStop = make(chan struct{})
		bgLate atomic.Int64
	)
	if *sessions > 1 {
		m, err := engine.NewMulti(cfg, *sessions, *threads-1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "djstar: %v\n", err)
			os.Exit(1)
		}
		multi = m
		e = m.Engines()[0]
		defer m.Close()
	} else {
		var err error
		e, err = engine.New(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "djstar: %v\n", err)
			os.Exit(1)
		}
		defer e.Close()
	}

	if *httpAddr != "" {
		srv, err := engine.StartDebugServer(*httpAddr, e)
		if err != nil {
			fmt.Fprintf(os.Stderr, "djstar: -http: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("live observability on http://%s (pprof, /api/snapshot, /api/critpath, /api/trace, /metrics, /api/slo)\n", srv.Addr())
	}

	if *metrics != "" {
		// The standalone telemetry endpoint covers every session under
		// -sessions; the debug server above stays per-engine.
		var reg *telemetry.Registry
		if multi != nil {
			reg = multi.TelemetryRegistry()
		} else {
			reg = telemetry.NewRegistry(e.Telemetry())
		}
		msrv, err := reg.Serve(*metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "djstar: -metrics: %v\n", err)
			os.Exit(1)
		}
		defer msrv.Close()
		fmt.Printf("telemetry on http://%s/metrics (OpenMetrics) and /api/slo\n", msrv.Addr())
	}

	if *loadSet != "" {
		f, err := os.Open(*loadSet)
		if err != nil {
			fmt.Fprintf(os.Stderr, "djstar: %v\n", err)
			os.Exit(1)
		}
		st, err := settings.Load(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "djstar: %v\n", err)
			os.Exit(1)
		}
		st.Apply(e.Session())
		fmt.Printf("loaded settings from %s\n", *loadSet)
	}
	if *saveSet != "" {
		defer func() {
			f, err := os.Create(*saveSet)
			if err != nil {
				fmt.Fprintf(os.Stderr, "djstar: %v\n", err)
				return
			}
			defer f.Close()
			st := settings.Capture(e.Session(), *strategy, *threads)
			if err := st.Save(f); err != nil {
				fmt.Fprintf(os.Stderr, "djstar: %v\n", err)
				return
			}
			fmt.Printf("saved settings to %s\n", *saveSet)
		}()
	}

	// Optional recorder on the record bus (the RecordBuffer node's
	// limited/clipped output, exactly what the real app would tape).
	var rec *audio.WAVWriter
	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintf(os.Stderr, "djstar: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		rec, err = audio.NewWAVWriter(f, audio.SampleRate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "djstar: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := rec.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "djstar: finalize recording: %v\n", err)
			}
			fmt.Printf("recorded %d frames (%.1f s) to %s\n",
				rec.Frames(), float64(rec.Frames())/audio.SampleRate, *record)
		}()
	}

	// SIGINT/SIGTERM stop the paced loop at the next cycle boundary; the
	// deferred cleanup then runs normally — engine Close (restoring the GC
	// setting), recording finalization, settings save — and the partial
	// metrics are printed before a clean exit 0.
	var interrupted atomic.Bool
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sigCh
		fmt.Fprintf(os.Stderr, "\ndjstar: %v — shutting down cleanly\n", s)
		interrupted.Store(true)
	}()

	// Live graph edits: -script schedules patches at cycle numbers; -repl
	// stages whatever patch specs arrive on stdin. Both go through
	// Engine.ApplyPatch, which is safe from any thread — the edit lands
	// at the next cycle boundary.
	var patches []timedPatch
	if *script != "" {
		var err error
		patches, err = loadPatchScript(*script)
		if err != nil {
			fmt.Fprintf(os.Stderr, "djstar: -script: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("loaded %d timed patches from %s\n", len(patches), *script)
	}
	if *repl {
		go func() {
			sc := bufio.NewScanner(os.Stdin)
			for sc.Scan() {
				spec := strings.TrimSpace(sc.Text())
				if spec == "" || strings.HasPrefix(spec, "#") {
					continue
				}
				if err := e.ApplyPatch(spec); err != nil {
					fmt.Fprintf(os.Stderr, "PATCH rejected %q: %v\n", spec, err)
				} else {
					fmt.Fprintf(os.Stderr, "PATCH staged: %s (lands next cycle)\n", spec)
				}
			}
		}()
		fmt.Println("repl: type patch specs on stdin (insert-delay:A:2, remove-delay:A, drop-node:<name>)")
	}

	totalCycles := int(duration.Seconds() / audio.StandardPacketPeriod.Seconds())
	statusEvery := int(0.5 / audio.StandardPacketPeriod.Seconds()) // twice a second

	fmt.Printf("DJ Star reproduction — %s scheduler, %d threads, %d cycles (%s)\n",
		e.Scheduler().Name(), *threads, totalCycles, *duration)
	fmt.Printf("packet: %d samples @ %d Hz, deadline %.3f ms\n",
		audio.PacketSize, audio.SampleRate, engine.DeadlineMS)
	if st := e.AdmissionState(); st != nil && st.Enabled && st.Report != nil {
		fmt.Printf("admission: %s — bound %.0f µs vs envelope %.0f µs (%s costs, headroom %.0f µs)\n",
			st.Verdict, st.Report.BoundUS, st.Report.EnvelopeUS,
			st.Report.Source, st.Report.HeadroomUS)
	}
	fmt.Println()

	// Launch the background sessions' paced cycle loops.
	if multi != nil {
		for _, bg := range multi.Engines()[1:] {
			bgDone.Add(1)
			go func(bg *engine.Engine) {
				defer bgDone.Done()
				period := audio.StandardPacketPeriod
				start := time.Now()
				for i := 0; ; i++ {
					select {
					case <-bgStop:
						return
					default:
					}
					due := start.Add(time.Duration(i+1) * period)
					bg.Cycle(nil)
					if time.Now().After(due) {
						bgLate.Add(1)
					} else {
						for time.Now().Before(due) {
							runtime.Gosched()
						}
					}
				}
			}(bg)
		}
		fmt.Printf("%d background sessions sharing the worker pool\n\n",
			len(multi.Engines())-1)
	}

	m := &engine.Metrics{}
	*m = *freshMetrics(e)
	period := audio.StandardPacketPeriod
	start := time.Now()
	late := 0
	done := 0
	for i := 0; i < totalCycles && !interrupted.Load(); i++ {
		done = i + 1
		due := start.Add(time.Duration(i+1) * period)
		for len(patches) > 0 && patches[0].cycle <= i {
			p := patches[0]
			patches = patches[1:]
			if err := e.ApplyPatch(p.spec); err != nil {
				fmt.Fprintf(os.Stderr, "PATCH @%d rejected %q: %v\n", p.cycle, p.spec, err)
			} else {
				fmt.Fprintf(os.Stderr, "PATCH @%d staged: %s\n", p.cycle, p.spec)
			}
		}
		e.Cycle(m)
		if rec != nil {
			if err := rec.WritePacket(e.Session().RecordOut()); err != nil {
				fmt.Fprintf(os.Stderr, "djstar: recording: %v\n", err)
				os.Exit(1)
			}
		}
		if time.Now().After(due) {
			late++
		} else {
			for time.Now().Before(due) {
			}
		}
		if (i+1)%statusEvery == 0 {
			printStatus(e, m, i+1, late)
		}
	}

	if multi != nil {
		close(bgStop)
		bgDone.Wait()
	}

	if interrupted.Load() && done < totalCycles {
		fmt.Printf("\ninterrupted after %d / %d cycles — partial metrics follow\n",
			done, totalCycles)
	}
	fmt.Printf("\nfinal: %s\n", m)
	fmt.Printf("late packets (missed sound card request): %d / %d\n", late, done)
	h := e.Health()
	if h.Faults.Recovered > 0 || h.Stalls > 0 || len(h.Quarantined) > 0 {
		fmt.Printf("health: %d faults contained, %d quarantines (%d restored), %d stalls detected\n",
			h.Faults.Recovered, h.Faults.Quarantined, h.Faults.Restored, h.Stalls)
	}
	if multi != nil {
		fmt.Printf("background sessions: %d, late packets: %d\n",
			len(multi.Engines())-1, bgLate.Load())
	}

	if *traceOut != "" {
		if err := writeTrace(*traceOut, e); err != nil {
			fmt.Fprintf(os.Stderr, "djstar: -trace: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeTrace exports the collector's sampled schedule realizations as
// Chrome trace_event JSON.
func writeTrace(path string, e *engine.Engine) error {
	col := e.Collector()
	if col == nil {
		return fmt.Errorf("observability collector is disabled")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	traces := col.Traces()
	if err := obs.WriteChromeTrace(f, e.Plan(), traces); err != nil {
		return err
	}
	fmt.Printf("wrote %d sampled cycles to %s (open in chrome://tracing)\n",
		len(traces), path)
	return nil
}

// timedPatch is one scheduled live graph edit from a -script file.
type timedPatch struct {
	cycle int
	spec  string
}

// loadPatchScript parses a -script file: one "@<cycle> <patch-spec>" per
// line ("@" optional), '#' comments and blank lines ignored. Patches are
// returned sorted by cycle.
func loadPatchScript(path string) ([]timedPatch, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []timedPatch
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want \"@<cycle> <patch>\", got %q", path, ln+1, line)
		}
		cyc, err := strconv.Atoi(strings.TrimPrefix(fields[0], "@"))
		if err != nil || cyc < 0 {
			return nil, fmt.Errorf("%s:%d: bad cycle %q", path, ln+1, fields[0])
		}
		out = append(out, timedPatch{cycle: cyc, spec: fields[1]})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].cycle < out[j].cycle })
	return out, nil
}

// freshMetrics builds an empty metrics container matching the engine.
func freshMetrics(e *engine.Engine) *engine.Metrics {
	// RunCycles(0) conveniently builds an initialized Metrics.
	return e.RunCycles(0)
}

// printStatus renders one status line per half second of audio.
func printStatus(e *engine.Engine, m *engine.Metrics, cycle, late int) {
	s := e.Session()
	var decks []string
	for d, dk := range s.Decks {
		lock := " "
		if e.TimecodeLocked(d) {
			lock = "*"
		}
		decks = append(decks, fmt.Sprintf("%c%s %5.1fs @%.2fx",
			'A'+d, lock, dk.Position()/float64(audio.SampleRate), dk.Tempo()))
	}
	health := ""
	if ep := e.PlanEpoch(); ep > 0 {
		health = fmt.Sprintf(" | epoch %d (%d nodes)", ep, e.Plan().Len())
	}
	if h := e.Health(); h.Faults.Recovered > 0 || h.Stalls > 0 {
		health += fmt.Sprintf(" | faults %d", h.Faults.Recovered)
		if len(h.Quarantined) > 0 {
			health += " q:" + strings.Join(h.Quarantined, ",")
		}
		if h.Stalls > 0 {
			health += fmt.Sprintf(" stalls %d", h.Stalls)
		}
	}
	fmt.Printf("cycle %6d | %s | out %5.2f | graph %.3f ms avg | late %d%s\n",
		cycle, strings.Join(decks, " | "), s.MasterOut().Peak(),
		m.Graph.Mean(), late, health)
}
