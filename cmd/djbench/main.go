// Command djbench regenerates every table and figure of the paper's
// evaluation (see EXPERIMENTS.md for the mapping).
//
// Usage:
//
//	djbench -experiment all                    # everything, paper settings
//	djbench -experiment table1 -cycles 10000   # Table I
//	djbench -experiment fig9 -quick            # fast smoke run
//
// Experiments: table1, fig4, fig8, fig9, fig10, fig11, fig12, deadlines,
// profile, threadsweep, ablation, staticvsonline, designspace, nodecosts,
// multisession, chaos, governor, critpath, obsoverhead, slo, fusion,
// editswap, admission, all.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"syscall"

	"djstar/internal/exp"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment to run (table1, fig4, fig8, fig9, fig10, fig11, fig12, deadlines, profile, threadsweep, ablation, staticvsonline, designspace, nodecosts, multisession, chaos, governor, critpath, obsoverhead, slo, fusion, editswap, admission, loadgen, all)")
		cycles     = flag.Int("cycles", 10000, "APC iterations per measurement (paper: 10000)")
		scale      = flag.Float64("scale", 1.0, "node cost scale (1.0 = paper scale, 0 = pure DSP)")
		threads    = flag.Int("threads", 4, "maximum thread count (paper: 4)")
		quick      = flag.Bool("quick", false, "fast smoke settings (300 cycles, scale 0.05)")
		csvDir     = flag.String("csv", "", "also write table1.csv and fig9_samples.csv to this directory")
		httpAddr   = flag.String("http", "", "serve net/http/pprof on this address (e.g. :6060) while benchmarking")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile covering the selected experiments to this file")
		memProfile = flag.String("memprofile", "", "write an allocation profile taken after the experiments to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "djbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "djbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Printf("(wrote %s)\n", *cpuProfile)
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "djbench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "djbench: -memprofile: %v\n", err)
				return
			}
			fmt.Printf("(wrote %s)\n", *memProfile)
		}()
	}

	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "djbench: -http %s: %v\n", *httpAddr, err)
			os.Exit(1)
		}
		fmt.Printf("djbench: pprof at http://%s/debug/pprof/\n", ln.Addr())
		go func() { _ = http.Serve(ln, nil) }()
	}

	opts := exp.Options{
		Out:        os.Stdout,
		Cycles:     *cycles,
		Scale:      *scale,
		MaxThreads: *threads,
		TrackBars:  16,
	}
	if *quick {
		opts = exp.Quick(os.Stdout)
	}

	fmt.Printf("djbench: %d cycles, scale %.2f, %d threads, GOMAXPROCS=%d NumCPU=%d\n",
		opts.Cycles, opts.Scale, opts.MaxThreads, runtime.GOMAXPROCS(0), runtime.NumCPU())
	if runtime.NumCPU() < opts.MaxThreads {
		fmt.Printf("WARNING: host has %d CPUs; parallel strategies cannot show real speedup\n", runtime.NumCPU())
	}
	fmt.Println()

	type driver struct {
		name string
		run  func(exp.Options) error
	}
	drivers := []driver{
		{"profile", wrap(exp.Profile)},
		{"fig4", wrap(exp.Fig4)},
		{"table1", func(o exp.Options) error {
			res, err := exp.Table1(o)
			if err != nil {
				return err
			}
			return writeCSV(*csvDir, "table1.csv", func(w io.Writer) error {
				return exp.WriteTable1CSV(w, res)
			})
		}},
		{"fig8", wrap(exp.Fig8)},
		{"fig9", func(o exp.Options) error {
			res, err := exp.Fig9(o)
			if err != nil {
				return err
			}
			return writeCSV(*csvDir, "fig9_samples.csv", func(w io.Writer) error {
				return exp.WriteSamplesCSV(w, res.Samples, exp.ParallelStrategies)
			})
		}},
		{"fig10", wrap(exp.Fig10)},
		{"fig11", wrap(exp.Fig11)},
		{"fig12", wrap(exp.Fig12)},
		{"deadlines", wrap(exp.Deadlines)},
		{"threadsweep", wrap(exp.ThreadSweep)},
		{"ablation", wrap(exp.Ablation)},
		{"staticvsonline", wrap(exp.StaticVsOnline)},
		{"designspace", wrap(exp.DesignSpace)},
		{"nodecosts", wrap(exp.NodeCosts)},
		{"multisession", wrap(exp.MultiSession)},
		{"chaos", wrap(exp.Chaos)},
		{"governor", wrap(exp.Governor)},
		{"critpath", wrap(exp.CritPath)},
		{"obsoverhead", wrap(exp.ObsOverhead)},
		{"slo", wrap(exp.SLO)},
		{"fusion", wrap(exp.Fusion)},
		{"editswap", wrap(exp.EditSwap)},
		{"admission", wrap(exp.Admission)},
		{"loadgen", wrap(exp.Loadgen)},
	}

	// Interrupts are honored at driver boundaries: the in-flight
	// experiment finishes (its engine Close restores the GC setting), the
	// remaining ones are skipped, and the exit is clean.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)

	ran := false
	for _, d := range drivers {
		select {
		case s := <-sig:
			fmt.Fprintf(os.Stderr, "djbench: %v — stopping after completed experiments\n", s)
			os.Exit(0)
		default:
		}
		if *experiment != "all" && *experiment != d.name {
			continue
		}
		ran = true
		fmt.Printf("=== %s ===\n", d.name)
		if err := d.run(opts); err != nil {
			fmt.Fprintf(os.Stderr, "djbench: %s: %v\n", d.name, err)
			os.Exit(1)
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "djbench: unknown experiment %q\n", *experiment)
		flag.Usage()
		os.Exit(2)
	}
}

// writeCSV writes one CSV artifact when a directory was requested.
func writeCSV(dir, name string, write func(io.Writer) error) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return err
	}
	fmt.Printf("(wrote %s)\n", filepath.Join(dir, name))
	return nil
}

// wrap adapts a typed experiment driver to a uniform signature.
func wrap[T any](f func(exp.Options) (T, error)) func(exp.Options) error {
	return func(o exp.Options) error {
		_, err := f(o)
		return err
	}
}
