// Command djanalyze is the track-preparation tool: it analyzes audio
// (tempo, key, beat grid) and prints a library report with waveform
// overviews — the offline "Track Preprocessing" path of the paper's
// Fig. 2 architecture. Without arguments it analyzes the built-in
// four-deck test set; given WAV files it imports and analyzes those.
//
// Usage:
//
//	djanalyze                       # analyze the synthetic deck tracks
//	djanalyze set.wav other.wav     # analyze 16-bit stereo 44.1 kHz WAVs
//	djanalyze -bars 32 -waveform    # longer tracks, draw waveforms
//	djanalyze -graph                # task-graph critical-path analysis
//	djanalyze -graph -fused         # ... plus the cost-guided fused topology
//	djanalyze -admit                # admission bound vs measured p99 audit
//	djanalyze -incident i.json      # replay a flight-recorder bundle
//
// With -graph it instead profiles the live task graph: per-node mean
// durations (measured sequentially), the critical path and RESCON bound
// they imply, and each parallel strategy's measured makespan against that
// bound — the offline counterpart of djstar's /api/critpath.
//
// With -admit it audits the admission gate's analytical response-time
// bound (internal/admission, DESIGN.md §15): every strategy runs at each
// thread count with measured node costs feeding the same Analyze call
// the engine's gate uses, and the measured p99 graph makespan is printed
// beside the bound. The bound is falsifiable — any row whose measured
// p99 exceeds its bound is flagged and the tool exits non-zero.
//
// With -incident it loads a flight-recorder bundle (djstar -incident-dir)
// and replays its analysis offline: the bundle's graph structure and node
// means are fed through the same critical-path computation the live
// engine used, and the result is checked against the bundle's own
// recorded path — a self-consistency proof that the incident is
// reproducible without the process that captured it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"djstar/internal/admission"
	"djstar/internal/audio"
	"djstar/internal/engine"
	"djstar/internal/graph"
	"djstar/internal/library"
	"djstar/internal/obs"
	"djstar/internal/sched"
	"djstar/internal/stats"
	"djstar/internal/synth"
	"djstar/internal/telemetry"
)

func main() {
	var (
		bars      = flag.Int("bars", 16, "bars per built-in synthetic track")
		waveform  = flag.Bool("waveform", false, "render waveform overviews")
		match     = flag.Float64("match", 0, "list tracks within this BPM percentage of the first track")
		graphMode = flag.Bool("graph", false, "analyze the task graph (critical path, bounds, strategy efficiency)")
		cycles    = flag.Int("cycles", 2000, "measurement cycles for -graph")
		scale     = flag.Float64("scale", 0.2, "node cost scale for -graph")
		threads   = flag.Int("threads", 4, "threads for -graph strategy runs")
		fused     = flag.Bool("fused", false, "with -graph: also print the cost-guided fused topology")
		admit     = flag.Bool("admit", false, "audit the admission bound against measured p99 per strategy/threads")
		incident  = flag.String("incident", "", "replay this flight-recorder incident bundle")
	)
	flag.Parse()

	if *incident != "" {
		if err := analyzeIncident(*incident); err != nil {
			fatal(err)
		}
		return
	}
	if *admit {
		if err := analyzeAdmit(*cycles, *scale, *threads); err != nil {
			fatal(err)
		}
		return
	}
	if *graphMode {
		if err := analyzeGraph(*cycles, *scale, *threads, *fused); err != nil {
			fatal(err)
		}
		return
	}

	lib := library.New(audio.SampleRate)

	if flag.NArg() == 0 {
		for _, tr := range synth.StandardDeckTracks(*bars) {
			if _, err := lib.Add(tr); err != nil {
				fatal(err)
			}
		}
	} else {
		for _, path := range flag.Args() {
			f, err := os.Open(path)
			if err != nil {
				fatal(err)
			}
			name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
			_, err = lib.ImportWAV(f, name)
			f.Close()
			if err != nil {
				fatal(err)
			}
		}
	}

	var rows [][]string
	for _, name := range lib.Names() {
		e := lib.Get(name)
		a := e.Analysis
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.1f", a.BPM),
			fmt.Sprintf("%.2f", a.BPMConfidence),
			a.KeyName,
			fmt.Sprintf("%.1fs", a.DurationSeconds),
			fmt.Sprintf("%d", len(a.BeatGrid)),
		})
	}
	fmt.Print(stats.RenderTable(
		[]string{"track", "bpm", "conf", "key", "length", "beats"}, rows))

	if *waveform {
		for _, name := range lib.Names() {
			fmt.Printf("\n%s\n", name)
			fmt.Print(lib.Get(name).Analysis.Overview.Render(3))
		}
	}

	if *match > 0 && lib.Len() > 1 {
		first := lib.Get(lib.Names()[0])
		fmt.Printf("\ntracks within %.0f%% of %s (%.1f BPM):\n",
			*match, first.Track.Name, first.Analysis.BPM)
		for _, e := range lib.CompatibleBPM(first.Analysis.BPM, *match) {
			if e != first {
				fmt.Printf("  %-10s %.1f BPM\n", e.Track.Name, e.Analysis.BPM)
			}
		}
	}
}

// analyzeGraph profiles the DJ Star task graph offline: sequentially
// measured node means feed the critical-path analyzer, then each parallel
// strategy runs with the collector and its measured makespan is compared
// to the RESCON-style bound. The critical path is a true lower bound, so
// cp ≤ measured must hold for every strategy; the tool exits non-zero if
// the measurement ever contradicts the theory.
func analyzeGraph(cycles int, scale float64, threads int, fused bool) error {
	cfg := graph.DefaultConfig()
	cfg.Scale = scale
	if scale > 0 {
		cfg.Calibration = graph.Calibrate()
	}
	means, plan, err := engine.MeasureNodeDurations(cfg, cycles)
	if err != nil {
		return err
	}
	ps := obs.CriticalPath(plan, means)
	fmt.Printf("task graph: %d nodes, total work %.1f µs (sequential means over %d cycles, scale %.2f)\n\n",
		plan.Len(), ps.TotalWorkUS, cycles, scale)
	fmt.Printf("critical path (%d nodes, %.1f µs):\n  %s\n\n", len(ps.Nodes), ps.LengthUS, ps.String())
	fmt.Printf("parallelism (work / critical path): %.2f\n", ps.Parallelism)
	fmt.Printf("bound at %d threads: %.1f µs\n\n", threads, ps.Bound(threads))

	printRankTable(plan, means)
	if fused {
		if err := printFusedTopology(plan, means); err != nil {
			return err
		}
	}

	var rows [][]string
	for _, name := range []string{sched.NameBusyWait, sched.NameSleep, sched.NameWorkSteal} {
		e, err := engine.New(engine.Config{Graph: cfg, Strategy: name, Threads: threads})
		if err != nil {
			return err
		}
		for i := 0; i < min(cycles/10+1, 200); i++ {
			e.Cycle(nil)
		}
		m := e.RunCycles(cycles)
		run, ok := e.CriticalPath()
		e.Close()
		if !ok {
			return fmt.Errorf("collector disabled during %s run", name)
		}
		measuredUS := m.Graph.Mean() * 1e3
		if run.LengthUS > measuredUS {
			return fmt.Errorf("%s: critical path %.1f µs exceeds measured makespan %.1f µs — measurement inconsistent",
				name, run.LengthUS, measuredUS)
		}
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.1f", measuredUS),
			fmt.Sprintf("%.1f", run.LengthUS),
			fmt.Sprintf("%.1f", run.Bound(threads)),
			fmt.Sprintf("%.0f%%", 100*run.Efficiency(measuredUS, threads)),
		})
	}
	fmt.Print(stats.RenderTable(
		[]string{"strategy", "measured µs", "critpath µs", "bound µs", "efficiency"}, rows))
	return nil
}

// analyzeAdmit audits the admission gate's bound derivation: per
// strategy and thread count it computes the analytical response-time
// bound from measured node means — exactly what the engine's gate does
// on a RefreshAdmission — then runs the strategy and compares the bound
// to the measured p99 graph makespan. The modeled parallelism is clamped
// to GOMAXPROCS (the hardware caps real concurrency no matter how many
// workers spin); busy/static rows oversubscribed past GOMAXPROCS are
// reported but not judged, since a descheduled owner of the next ready
// node voids the work-conserving premise behind every bound (DESIGN.md
// §15).
//
// The bound covers the schedule, not the operating system: on a loaded
// host, preemptions and timer interrupts land in the extreme tail even
// for the sequential loop, which has no scheduling at all, and at a few
// hundred samples p99 is just the handful of worst preemptions. The
// audit therefore judges p95 — a systematic scheduling pathology (1 in
// 20 cycles slow) still lands there, isolated preemption bursts mostly
// do not — and prints p99 for visibility. It also first measures a
// sequential null model and takes its p95 − mean spread as the host's
// noise allowance; a row is VIOLATED — and the tool exits non-zero —
// when measured p95 exceeds bound + allowance, i.e. when the excess
// tail cannot be blamed on the environment.
func analyzeAdmit(cycles int, scale float64, maxThreads int) error {
	cfg := graph.DefaultConfig()
	cfg.Scale = scale
	if scale > 0 {
		cfg.Calibration = graph.Calibrate()
	}
	means, plan, err := engine.MeasureNodeDurations(cfg, cycles)
	if err != nil {
		return err
	}
	acfg := admission.Config{BaseUS: -1} // graph alone: djanalyze measures graph makespans
	gomax := runtime.GOMAXPROCS(0)

	threadSet := []int{2}
	if maxThreads > 2 {
		threadSet = append(threadSet, maxThreads)
	}
	type combo struct {
		strategy string
		threads  int
	}
	combos := []combo{{sched.NameSequential, 1}}
	for _, th := range threadSet {
		for _, s := range []string{sched.NameBusyWait, sched.NameSleep,
			sched.NameSleepScan, sched.NameStatic, sched.NameWorkSteal} {
			combos = append(combos, combo{s, th})
		}
	}

	noiseUS, err := admitNoiseFloor(cfg, cycles)
	if err != nil {
		return err
	}
	fmt.Printf("admission audit: measured node costs over %d cycles, scale %.2f, GOMAXPROCS %d\n", cycles, scale, gomax)
	fmt.Printf("host noise allowance (sequential null model, p95 − mean): %.1f µs\n\n", noiseUS)
	var rows [][]string
	violations := 0
	for _, c := range combos {
		procs := c.threads
		if procs > gomax {
			procs = gomax
		}
		oversub := c.threads > gomax &&
			(c.strategy == sched.NameBusyWait || c.strategy == sched.NameStatic)
		rep, err := admission.Analyze(plan, means, c.strategy, procs, "measured", acfg)
		if err != nil {
			return err
		}
		e, err := engine.New(engine.Config{
			Graph: cfg, Strategy: c.strategy, Threads: c.threads,
			CollectSamples: true,
			DisableGC:      true, // GC pauses would land in p99 and falsify spuriously
		})
		if err != nil {
			return err
		}
		for i := 0; i < min(cycles/10+1, 200); i++ {
			e.Cycle(nil)
		}
		m := e.RunCycles(cycles)
		e.Close()
		pcts := stats.Percentiles(m.GraphSamplesMS, 0.95, 0.99)
		p95US, p99US := pcts[0]*1e3, pcts[1]*1e3
		meanUS := m.Graph.Mean() * 1e3

		verdict := "ok"
		switch {
		case oversub:
			verdict = "n/a (oversubscribed spin)"
		case p95US > rep.BoundUS+noiseUS:
			verdict = "VIOLATED"
			violations++
		}
		rows = append(rows, []string{
			c.strategy,
			fmt.Sprintf("%d", c.threads),
			fmt.Sprintf("%d", procs),
			fmt.Sprintf("%.1f", meanUS),
			fmt.Sprintf("%.1f", p95US),
			fmt.Sprintf("%.1f", p99US),
			fmt.Sprintf("%.1f", rep.GraphBoundUS),
			fmt.Sprintf("%.1f", rep.BoundUS),
			verdict,
		})
	}
	fmt.Print(stats.RenderTable(
		[]string{"strategy", "threads", "procs", "mean µs", "p95 µs", "p99 µs", "graph bound µs", "bound µs", "bound ≥ p95"}, rows))
	if violations > 0 {
		return fmt.Errorf("%d strategy rows measured past their analytical bound — the admission analysis is falsified on this host", violations)
	}
	fmt.Println("\nall judged rows hold: measured p95 ≤ analytical bound + noise allowance ✓")
	return nil
}

// admitNoiseFloor measures the host's timing-noise allowance from the
// sequential executor — the null model: with no scheduler in play, its
// p95 − mean spread is pure environment (preemption, interrupts, cache
// weather) that no schedule bound can or should cover.
func admitNoiseFloor(cfg graph.Config, cycles int) (float64, error) {
	e, err := engine.New(engine.Config{
		Graph: cfg, Strategy: sched.NameSequential, Threads: 1,
		CollectSamples: true,
		DisableGC:      true,
	})
	if err != nil {
		return 0, err
	}
	defer e.Close()
	for i := 0; i < min(cycles/10+1, 200); i++ {
		e.Cycle(nil)
	}
	m := e.RunCycles(cycles)
	noise := stats.Percentiles(m.GraphSamplesMS, 0.95)[0]*1e3 - m.Graph.Mean()*1e3
	if noise < 0 {
		noise = 0
	}
	return noise, nil
}

// printRankTable shows the head of the compile-time HEFT-style rank
// order — the priority the schedulers use for round-robin lists, deque
// seeding and claim order — alongside each node's measured mean.
func printRankTable(plan *graph.Plan, meansUS []float64) {
	const top = 12
	var rows [][]string
	for i, id := range plan.RankOrder {
		if i >= top {
			break
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", i),
			plan.Names[id],
			plan.Kinds[id].String(),
			fmt.Sprintf("%d", plan.Depth[id]),
			fmt.Sprintf("%.1f", plan.Rank[id]),
			fmt.Sprintf("%.1f", meansUS[id]),
		})
	}
	fmt.Printf("rank order (top %d of %d; upward rank, unit costs):\n", min(top, plan.Len()), plan.Len())
	fmt.Print(stats.RenderTable(
		[]string{"#", "node", "kind", "depth", "rank", "mean µs"}, rows))
	fmt.Println()
}

// printFusedTopology fuses the plan under its measured node means and
// prints the resulting super-node layout — what the engine would run
// with Config.FusePlan on.
func printFusedTopology(plan *graph.Plan, meansUS []float64) error {
	fp, err := graph.Fuse(plan, meansUS, graph.FuseOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("fused topology: %d nodes -> %d units (%d multi-member):\n",
		plan.Len(), fp.Len(), fp.FusedUnits())
	var rows [][]string
	for _, id := range fp.RankOrder {
		members := fp.MembersOf(id)
		var cost float64
		names := make([]string, len(members))
		for i, m := range members {
			cost += meansUS[m]
			names[i] = plan.Names[m]
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", len(members)),
			fmt.Sprintf("%.1f", cost),
			fmt.Sprintf("%.1f", fp.Rank[id]),
			strings.Join(names, " → "),
		})
	}
	fmt.Print(stats.RenderTable(
		[]string{"len", "cost µs", "rank", "members (rank order)"}, rows))
	fmt.Println()
	return nil
}

// analyzeIncident loads an incident bundle and replays its analysis: the
// reason, identity and SLO state; the retained events, traces and time
// series; and the critical path recomputed offline from the bundled
// graph structure + node means, verified against the path the live
// engine recorded into the bundle.
func analyzeIncident(path string) error {
	inc, err := telemetry.LoadIncident(path)
	if err != nil {
		return err
	}
	fmt.Printf("incident: %s at cycle %d (%s)\n", inc.Reason, inc.Cycle,
		time.Unix(0, inc.UnixNanos).Format(time.RFC3339))
	fmt.Printf("engine: strategy %s, %d threads, session %q\n\n",
		inc.Strategy, inc.Threads, inc.Session)

	s := inc.SLO
	fmt.Printf("SLO: %d/%d misses in window (budget %.1f, %.0f%% remaining",
		s.WindowMisses, s.WindowFilled, s.AllowedMisses, 100*s.BudgetRemaining)
	if s.Exhausted {
		fmt.Printf(", EXHAUSTED")
	}
	fmt.Printf(")\n")
	fmt.Printf("totals: %d cycles, %d misses, %d faults, %d quarantines, %d stalls, gov level %d\n\n",
		inc.Totals.Cycles, inc.Totals.DeadlineMisses, inc.Totals.Faults,
		inc.Totals.Quarantines, inc.Totals.Stalls, inc.Totals.GovLevel)

	if len(inc.Events) > 0 {
		fmt.Printf("events (%d retained):\n", len(inc.Events))
		for _, ev := range inc.Events {
			if ev.Detail != "" {
				fmt.Printf("  cycle %8d  %-16s %s\n", ev.Cycle, ev.Kind, ev.Detail)
			} else {
				fmt.Printf("  cycle %8d  %s\n", ev.Cycle, ev.Kind)
			}
		}
		fmt.Println()
	}
	if len(inc.Traces) > 0 {
		fmt.Printf("retained schedule realizations: %d (last makespan %.1f µs over %d workers)\n\n",
			len(inc.Traces),
			float64(inc.Traces[len(inc.Traces)-1].MakespanNS())/1e3,
			inc.Traces[len(inc.Traces)-1].Workers)
	}
	if n := len(inc.Series); n > 0 {
		var cyc, miss uint64
		for _, slot := range inc.Series {
			cyc += slot.Cycles
			miss += slot.Misses
		}
		fmt.Printf("time series: %d s bundled, %d cycles, %d misses\n\n", n, cyc, miss)
	}

	ps, err := inc.Replay()
	if err != nil {
		return err
	}
	fmt.Printf("replayed critical path (%d nodes, %.1f µs):\n  %s\n",
		len(ps.Nodes), ps.LengthUS, ps.String())
	if inc.CritPath == nil {
		fmt.Println("bundle carries no live critical path to verify against")
		return nil
	}
	if ps.LengthUS != inc.CritPath.LengthUS || len(ps.Nodes) != len(inc.CritPath.Nodes) {
		return fmt.Errorf("replay mismatch: offline path %.3f µs / %d nodes, live path %.3f µs / %d nodes — bundle is inconsistent",
			ps.LengthUS, len(ps.Nodes), inc.CritPath.LengthUS, len(inc.CritPath.Nodes))
	}
	fmt.Println("replay matches the live engine's recorded critical path ✓")
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "djanalyze: %v\n", err)
	os.Exit(1)
}
