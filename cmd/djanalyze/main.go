// Command djanalyze is the track-preparation tool: it analyzes audio
// (tempo, key, beat grid) and prints a library report with waveform
// overviews — the offline "Track Preprocessing" path of the paper's
// Fig. 2 architecture. Without arguments it analyzes the built-in
// four-deck test set; given WAV files it imports and analyzes those.
//
// Usage:
//
//	djanalyze                       # analyze the synthetic deck tracks
//	djanalyze set.wav other.wav     # analyze 16-bit stereo 44.1 kHz WAVs
//	djanalyze -bars 32 -waveform    # longer tracks, draw waveforms
//	djanalyze -graph                # task-graph critical-path analysis
//
// With -graph it instead profiles the live task graph: per-node mean
// durations (measured sequentially), the critical path and RESCON bound
// they imply, and each parallel strategy's measured makespan against that
// bound — the offline counterpart of djstar's /api/critpath.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"djstar/internal/audio"
	"djstar/internal/engine"
	"djstar/internal/graph"
	"djstar/internal/library"
	"djstar/internal/obs"
	"djstar/internal/sched"
	"djstar/internal/stats"
	"djstar/internal/synth"
)

func main() {
	var (
		bars      = flag.Int("bars", 16, "bars per built-in synthetic track")
		waveform  = flag.Bool("waveform", false, "render waveform overviews")
		match     = flag.Float64("match", 0, "list tracks within this BPM percentage of the first track")
		graphMode = flag.Bool("graph", false, "analyze the task graph (critical path, bounds, strategy efficiency)")
		cycles    = flag.Int("cycles", 2000, "measurement cycles for -graph")
		scale     = flag.Float64("scale", 0.2, "node cost scale for -graph")
		threads   = flag.Int("threads", 4, "threads for -graph strategy runs")
	)
	flag.Parse()

	if *graphMode {
		if err := analyzeGraph(*cycles, *scale, *threads); err != nil {
			fatal(err)
		}
		return
	}

	lib := library.New(audio.SampleRate)

	if flag.NArg() == 0 {
		for _, tr := range synth.StandardDeckTracks(*bars) {
			if _, err := lib.Add(tr); err != nil {
				fatal(err)
			}
		}
	} else {
		for _, path := range flag.Args() {
			f, err := os.Open(path)
			if err != nil {
				fatal(err)
			}
			name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
			_, err = lib.ImportWAV(f, name)
			f.Close()
			if err != nil {
				fatal(err)
			}
		}
	}

	var rows [][]string
	for _, name := range lib.Names() {
		e := lib.Get(name)
		a := e.Analysis
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.1f", a.BPM),
			fmt.Sprintf("%.2f", a.BPMConfidence),
			a.KeyName,
			fmt.Sprintf("%.1fs", a.DurationSeconds),
			fmt.Sprintf("%d", len(a.BeatGrid)),
		})
	}
	fmt.Print(stats.RenderTable(
		[]string{"track", "bpm", "conf", "key", "length", "beats"}, rows))

	if *waveform {
		for _, name := range lib.Names() {
			fmt.Printf("\n%s\n", name)
			fmt.Print(lib.Get(name).Analysis.Overview.Render(3))
		}
	}

	if *match > 0 && lib.Len() > 1 {
		first := lib.Get(lib.Names()[0])
		fmt.Printf("\ntracks within %.0f%% of %s (%.1f BPM):\n",
			*match, first.Track.Name, first.Analysis.BPM)
		for _, e := range lib.CompatibleBPM(first.Analysis.BPM, *match) {
			if e != first {
				fmt.Printf("  %-10s %.1f BPM\n", e.Track.Name, e.Analysis.BPM)
			}
		}
	}
}

// analyzeGraph profiles the DJ Star task graph offline: sequentially
// measured node means feed the critical-path analyzer, then each parallel
// strategy runs with the collector and its measured makespan is compared
// to the RESCON-style bound. The critical path is a true lower bound, so
// cp ≤ measured must hold for every strategy; the tool exits non-zero if
// the measurement ever contradicts the theory.
func analyzeGraph(cycles int, scale float64, threads int) error {
	cfg := graph.DefaultConfig()
	cfg.Scale = scale
	if scale > 0 {
		cfg.Calibration = graph.Calibrate()
	}
	means, plan, err := engine.MeasureNodeDurations(cfg, cycles)
	if err != nil {
		return err
	}
	ps := obs.CriticalPath(plan, means)
	fmt.Printf("task graph: %d nodes, total work %.1f µs (sequential means over %d cycles, scale %.2f)\n\n",
		plan.Len(), ps.TotalWorkUS, cycles, scale)
	fmt.Printf("critical path (%d nodes, %.1f µs):\n  %s\n\n", len(ps.Nodes), ps.LengthUS, ps.String())
	fmt.Printf("parallelism (work / critical path): %.2f\n", ps.Parallelism)
	fmt.Printf("bound at %d threads: %.1f µs\n\n", threads, ps.Bound(threads))

	var rows [][]string
	for _, name := range []string{sched.NameBusyWait, sched.NameSleep, sched.NameWorkSteal} {
		e, err := engine.New(engine.Config{Graph: cfg, Strategy: name, Threads: threads})
		if err != nil {
			return err
		}
		for i := 0; i < min(cycles/10+1, 200); i++ {
			e.Cycle(nil)
		}
		m := e.RunCycles(cycles)
		run, ok := e.CriticalPath()
		e.Close()
		if !ok {
			return fmt.Errorf("collector disabled during %s run", name)
		}
		measuredUS := m.Graph.Mean() * 1e3
		if run.LengthUS > measuredUS {
			return fmt.Errorf("%s: critical path %.1f µs exceeds measured makespan %.1f µs — measurement inconsistent",
				name, run.LengthUS, measuredUS)
		}
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.1f", measuredUS),
			fmt.Sprintf("%.1f", run.LengthUS),
			fmt.Sprintf("%.1f", run.Bound(threads)),
			fmt.Sprintf("%.0f%%", 100*run.Efficiency(measuredUS, threads)),
		})
	}
	fmt.Print(stats.RenderTable(
		[]string{"strategy", "measured µs", "critpath µs", "bound µs", "efficiency"}, rows))
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "djanalyze: %v\n", err)
	os.Exit(1)
}
