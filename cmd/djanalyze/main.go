// Command djanalyze is the track-preparation tool: it analyzes audio
// (tempo, key, beat grid) and prints a library report with waveform
// overviews — the offline "Track Preprocessing" path of the paper's
// Fig. 2 architecture. Without arguments it analyzes the built-in
// four-deck test set; given WAV files it imports and analyzes those.
//
// Usage:
//
//	djanalyze                       # analyze the synthetic deck tracks
//	djanalyze set.wav other.wav     # analyze 16-bit stereo 44.1 kHz WAVs
//	djanalyze -bars 32 -waveform    # longer tracks, draw waveforms
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"djstar/internal/audio"
	"djstar/internal/library"
	"djstar/internal/stats"
	"djstar/internal/synth"
)

func main() {
	var (
		bars     = flag.Int("bars", 16, "bars per built-in synthetic track")
		waveform = flag.Bool("waveform", false, "render waveform overviews")
		match    = flag.Float64("match", 0, "list tracks within this BPM percentage of the first track")
	)
	flag.Parse()

	lib := library.New(audio.SampleRate)

	if flag.NArg() == 0 {
		for _, tr := range synth.StandardDeckTracks(*bars) {
			if _, err := lib.Add(tr); err != nil {
				fatal(err)
			}
		}
	} else {
		for _, path := range flag.Args() {
			f, err := os.Open(path)
			if err != nil {
				fatal(err)
			}
			name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
			_, err = lib.ImportWAV(f, name)
			f.Close()
			if err != nil {
				fatal(err)
			}
		}
	}

	var rows [][]string
	for _, name := range lib.Names() {
		e := lib.Get(name)
		a := e.Analysis
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.1f", a.BPM),
			fmt.Sprintf("%.2f", a.BPMConfidence),
			a.KeyName,
			fmt.Sprintf("%.1fs", a.DurationSeconds),
			fmt.Sprintf("%d", len(a.BeatGrid)),
		})
	}
	fmt.Print(stats.RenderTable(
		[]string{"track", "bpm", "conf", "key", "length", "beats"}, rows))

	if *waveform {
		for _, name := range lib.Names() {
			fmt.Printf("\n%s\n", name)
			fmt.Print(lib.Get(name).Analysis.Overview.Render(3))
		}
	}

	if *match > 0 && lib.Len() > 1 {
		first := lib.Get(lib.Names()[0])
		fmt.Printf("\ntracks within %.0f%% of %s (%.1f BPM):\n",
			*match, first.Track.Name, first.Analysis.BPM)
		for _, e := range lib.CompatibleBPM(first.Analysis.BPM, *match) {
			if e != first {
				fmt.Printf("  %-10s %.1f BPM\n", e.Track.Name, e.Analysis.BPM)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "djanalyze: %v\n", err)
	os.Exit(1)
}
