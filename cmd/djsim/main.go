// Command djsim is the RESCON-style schedule simulator CLI (paper §IV).
// It measures the standard DJ Star graph's node durations, then prints
// the earliest-start schedule, resource-constrained schedules for a range
// of processor counts, and the BUSY/SLEEP strategy simulations.
//
// Usage:
//
//	djsim                       # paper-scale node durations
//	djsim -procs 8 -scale 0.5   # other configurations
//	djsim -paper-costs          # use the design targets instead of measuring
package main

import (
	"flag"
	"fmt"
	"os"

	"djstar/internal/engine"
	"djstar/internal/exp"
	"djstar/internal/graph"
	"djstar/internal/rescon"
	"djstar/internal/stats"
)

func main() {
	var (
		procs      = flag.Int("procs", 4, "processor count for the resource-constrained schedule")
		scale      = flag.Float64("scale", 1.0, "node cost scale when measuring")
		cycles     = flag.Int("cycles", 500, "cycles used to measure node durations")
		paperCosts = flag.Bool("paper-costs", false, "use the DESIGN.md cost targets instead of measuring")
		checkUS    = flag.Float64("check-us", 0.5, "per-node dependency check overhead in the strategy simulations (µs)")
		wakeUS     = flag.Float64("wake-us", 10, "thread wake-up latency in the SLEEP simulation (µs)")
		dot        = flag.Bool("dot", false, "print the task graph in Graphviz DOT format and exit")
	)
	flag.Parse()

	cfg := graph.DefaultConfig()
	cfg.Scale = *scale
	if *scale > 0 {
		cfg.Calibration = exp.Calib()
	}

	if *dot {
		_, g, err := graph.BuildDJStar(cfg)
		if err != nil {
			fatal(err)
		}
		if err := g.WriteDOT(os.Stdout, "djstar"); err != nil {
			fatal(err)
		}
		return
	}

	var durs []float64
	var plan *graph.Plan
	var err error
	if *paperCosts {
		_, g, berr := graph.BuildDJStar(cfg)
		if berr != nil {
			fatal(berr)
		}
		plan, err = g.Compile()
		if err != nil {
			fatal(err)
		}
		durs = rescon.PaperCostsUS(plan)
		fmt.Printf("djsim: using DESIGN.md cost targets\n\n")
	} else {
		fmt.Printf("djsim: measuring node durations over %d cycles at scale %.2f...\n\n", *cycles, *scale)
		durs, plan, err = engine.MeasureNodeDurations(cfg, *cycles)
		if err != nil {
			fatal(err)
		}
	}

	m, err := rescon.FromPlan(plan, durs)
	if err != nil {
		fatal(err)
	}

	es := m.EarliestStart()
	fmt.Printf("earliest start (infinite processors):\n")
	fmt.Printf("  makespan          %8.1f µs   (paper: 295 µs)\n", es.MakespanUS)
	fmt.Printf("  peak concurrency  %8d      (paper: 33)\n", es.PeakConcurrency)
	fmt.Printf("  total work        %8.1f µs\n\n", m.TotalWork())
	fmt.Print(stats.RenderProfile(rescon.ConcurrencyProfile(es, 100),
		"concurrency profile", 12))
	fmt.Println()

	for _, p := range []int{1, 2, *procs, 8} {
		r, err := m.ListSchedule(p)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("list schedule %d procs: %8.1f µs  (efficiency %.0f%%)\n",
			p, r.MakespanUS, 100*m.Efficiency(r))
	}
	fmt.Println()

	ov := rescon.StrategyOverheads{CheckUS: *checkUS, WakeUS: *wakeUS}
	busy, err := m.SimulateBusy(*procs, ov)
	if err != nil {
		fatal(err)
	}
	sleep, err := m.SimulateSleep(*procs, ov)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("strategy simulations on %d threads (check %.1f µs, wake %.1f µs):\n",
		*procs, *checkUS, *wakeUS)
	fmt.Printf("  BUSY   %8.1f µs   wait %8.1f µs   efficiency %.0f%%  (paper: 327 µs, 99%%)\n",
		busy.MakespanUS, busy.WaitUS, 100*m.Efficiency(busy))
	fmt.Printf("  SLEEP  %8.1f µs   wait %8.1f µs   efficiency %.0f%%\n\n",
		sleep.MakespanUS, sleep.WaitUS, 100*m.Efficiency(sleep))

	// Gantt of the simulated BUSY schedule (Fig. 12).
	var tasks []stats.GanttTask
	for i := 0; i < m.Len(); i++ {
		tasks = append(tasks, stats.GanttTask{
			Name:   m.Name(i),
			Worker: int(busy.Proc[i]),
			Start:  busy.Start[i],
			End:    busy.Finish[i],
		})
	}
	fmt.Print(stats.RenderGantt(tasks, "Fig. 12: simulated BUSY schedule (µs)", 100))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "djsim: %v\n", err)
	os.Exit(1)
}
