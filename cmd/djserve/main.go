// Command djserve runs the session fleet: N shards, each an independent
// worker pool with its own admission controller, optionally pinned to
// disjoint CPU sets, behind the versioned /v1 HTTP/JSON control plane.
// Sessions are created, retuned, edited and destroyed over HTTP while
// the fleet keeps every admitted session on the 2.902 ms packet clock;
// draining a shard migrates its sessions onto the rest of the fleet at
// cycle boundaries without losing a cycle.
//
// Usage:
//
//	djserve -addr :7070 -shards 2 -pin
//	curl -X POST localhost:7070/v1/sessions -d '{}'
//	curl localhost:7070/v1/shards
//	curl -X POST localhost:7070/v1/shards/0/drain
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"djstar/internal/engine"
	"djstar/internal/fleet"
	"djstar/internal/graph"
	"djstar/internal/hardware"
)

func main() {
	var (
		addr      = flag.String("addr", ":7070", "control-plane listen address")
		shards    = flag.Int("shards", 2, "shard count (independent pools + admission controllers)")
		workers   = flag.Int("workers", 0, "helper workers per shard (0 = from CPU split)")
		capacity  = flag.Int("capacity", 256, "max sessions per shard")
		pin       = flag.Bool("pin", false, "pin shard workers to disjoint CPU sets (Linux)")
		scale     = flag.Float64("scale", 0.05, "default node cost scale per session")
		trackBars = flag.Int("trackbars", 4, "synthetic track length in bars")
		sessions  = flag.Int("sessions", 0, "sessions to create at boot")
		periodMS  = flag.Float64("period", 0, "cycle pacing in ms (0 = 2.902 ms packet clock, <0 = unpaced)")
		quiet     = flag.Bool("quiet", false, "suppress placement logging")
	)
	flag.Parse()

	gcfg := graph.DefaultConfig()
	gcfg.Scale = *scale
	gcfg.TrackBars = *trackBars
	if *scale > 0 {
		gcfg.Calibration = graph.Calibrate()
	}

	cfg := fleet.Config{
		Shards:           *shards,
		WorkersPerShard:  *workers,
		SessionsPerShard: *capacity,
		Pin:              *pin,
	}
	cfg.Engine.Graph = gcfg
	// Fleets host many sessions per core: per-node observability rings
	// would multiply memory for data nobody scrapes, so only telemetry
	// (histograms, SLO budgets) stays on.
	cfg.Engine.Obs.Disable = true
	if !*quiet {
		cfg.Logf = log.Printf
	}
	if *periodMS != 0 {
		cfg.Period = time.Duration(*periodMS * float64(time.Millisecond))
	}

	f, err := fleet.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "djserve:", err)
		os.Exit(1)
	}
	defer f.Close()

	for i := 0; i < *sessions; i++ {
		if _, _, err := f.AddSession(engine.SessionSpec{}); err != nil {
			fmt.Fprintf(os.Stderr, "djserve: boot session %d refused: %v\n", i, err)
			break
		}
	}

	srv, err := f.Serve(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "djserve:", err)
		os.Exit(1)
	}
	defer srv.Close()
	log.Printf("djserve: %d shards on %d CPUs (pinning %v), control plane on %s",
		*shards, runtime.NumCPU(), *pin && hardware.PinningSupported(), srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("djserve: shutting down")
}
