package dsp

// ThreeBandEQ is the DJ-mixer style low/mid/high equalizer used by the
// channel strips ("ChannelX: Filter, EQ" in the paper's Fig. 3). Each band
// can be cut to -26 dB (a typical DJ "kill") or boosted up to +12 dB.
type ThreeBandEQ struct {
	low, mid, high *Biquad
	rate           int
	lowDB          float64
	midDB          float64
	highDB         float64
}

// EQ band crossover frequencies, matching common DJ mixer voicing.
const (
	eqLowFreq  = 250.0
	eqMidFreq  = 1200.0
	eqHighFreq = 6000.0

	// EQGainMin and EQGainMax bound the per-band gain in dB.
	EQGainMin = -26.0
	EQGainMax = +12.0
)

// NewThreeBandEQ returns a flat EQ for sampling rate hz.
func NewThreeBandEQ(hz int) *ThreeBandEQ {
	eq := &ThreeBandEQ{rate: hz}
	eq.low = NewBiquad(LowShelf, eqLowFreq, 0.9, 0, hz)
	eq.mid = NewBiquad(Peaking, eqMidFreq, 0.7, 0, hz)
	eq.high = NewBiquad(HighShelf, eqHighFreq, 0.9, 0, hz)
	return eq
}

// SetGains updates the three band gains in dB, clamped to
// [EQGainMin, EQGainMax]. Filter state is preserved so live tweaks do not
// click.
func (eq *ThreeBandEQ) SetGains(lowDB, midDB, highDB float64) {
	clamp := func(db float64) float64 {
		if db < EQGainMin {
			return EQGainMin
		}
		if db > EQGainMax {
			return EQGainMax
		}
		return db
	}
	eq.lowDB, eq.midDB, eq.highDB = clamp(lowDB), clamp(midDB), clamp(highDB)
	eq.low.Configure(LowShelf, eqLowFreq, 0.9, eq.lowDB, eq.rate)
	eq.mid.Configure(Peaking, eqMidFreq, 0.7, eq.midDB, eq.rate)
	eq.high.Configure(HighShelf, eqHighFreq, 0.9, eq.highDB, eq.rate)
}

// Gains returns the current low/mid/high gains in dB.
func (eq *ThreeBandEQ) Gains() (lowDB, midDB, highDB float64) {
	return eq.lowDB, eq.midDB, eq.highDB
}

// Process applies the three bands in series, in place.
func (eq *ThreeBandEQ) Process(buf []float64) {
	eq.low.Process(buf)
	eq.mid.Process(buf)
	eq.high.Process(buf)
}

// Reset clears all band filter state.
func (eq *ThreeBandEQ) Reset() {
	eq.low.Reset()
	eq.mid.Reset()
	eq.high.Reset()
}

// MagnitudeAt returns the combined magnitude response at freq Hz.
func (eq *ThreeBandEQ) MagnitudeAt(freq float64) float64 {
	return eq.low.MagnitudeAt(freq, eq.rate) *
		eq.mid.MagnitudeAt(freq, eq.rate) *
		eq.high.MagnitudeAt(freq, eq.rate)
}
