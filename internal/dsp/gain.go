package dsp

import "math"

// EqualPowerPan returns the left/right gains for pan position p in [-1, 1]
// (-1 hard left, 0 center, +1 hard right) using the constant-power law, so
// perceived loudness stays flat across the sweep.
func EqualPowerPan(p float64) (l, r float64) {
	if p < -1 {
		p = -1
	}
	if p > 1 {
		p = 1
	}
	ang := (p + 1) * math.Pi / 4 // 0..pi/2
	return math.Cos(ang), math.Sin(ang)
}

// CrossfadeGains returns the gains applied to the A and B sides of the DJ
// crossfader for position x in [0, 1] (0 full A, 1 full B) with an
// equal-power curve.
func CrossfadeGains(x float64) (a, b float64) {
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	ang := x * math.Pi / 2
	return math.Cos(ang), math.Sin(ang)
}

// FaderCurve maps a linear fader position in [0, 1] to a gain with the
// typical audio taper (x^2), giving finer control near the bottom.
func FaderCurve(x float64) float64 {
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	return x * x
}

// SmoothedGain ramps gain changes over a packet to avoid zipper noise.
// Apply writes buf[i] *= g(i) where g moves linearly from the previous gain
// to the target, then remembers the target.
type SmoothedGain struct {
	current float64
	first   bool
}

// NewSmoothedGain returns a smoother starting at the given gain.
func NewSmoothedGain(initial float64) *SmoothedGain {
	return &SmoothedGain{current: initial, first: true}
}

// Apply scales buf in place, ramping from the previous gain to target.
func (s *SmoothedGain) Apply(buf []float64, target float64) {
	if s.first {
		s.current = target
		s.first = false
	}
	n := len(buf)
	if n == 0 {
		s.current = target
		return
	}
	step := (target - s.current) / float64(n)
	g := s.current
	for i := range buf {
		g += step
		buf[i] *= g
	}
	s.current = target
}

// Current returns the present smoothed gain value.
func (s *SmoothedGain) Current() float64 { return s.current }
