package dsp

import (
	"math"
	"testing"
	"testing/quick"

	"djstar/internal/synth"
)

func TestNewFFTRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, 1, 3, 6, 100} {
		if _, err := NewFFT(n); err == nil {
			t.Fatalf("NewFFT(%d) succeeded, want error", n)
		}
	}
	for _, n := range []int{2, 4, 64, 1024} {
		if _, err := NewFFT(n); err != nil {
			t.Fatalf("NewFFT(%d) failed: %v", n, err)
		}
	}
}

func TestMustFFTPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustFFT(3) did not panic")
		}
	}()
	MustFFT(3)
}

func TestFFTSineBinPeak(t *testing.T) {
	const n = 1024
	f := MustFFT(n)
	// Bin-aligned sine at bin 37.
	re := make([]float64, n)
	im := make([]float64, n)
	for i := range re {
		re[i] = math.Sin(2 * math.Pi * 37 * float64(i) / n)
	}
	f.Transform(re, im)
	mags := make([]float64, n/2)
	Magnitudes(re, im, mags)
	best := 0
	for i, m := range mags {
		if m > mags[best] {
			best = i
		}
	}
	if best != 37 {
		t.Fatalf("peak bin = %d, want 37", best)
	}
	// Peak magnitude of a unit sine is n/2.
	if math.Abs(mags[37]-n/2) > 1e-6 {
		t.Fatalf("peak magnitude = %v, want %v", mags[37], n/2)
	}
}

func TestFFTRoundTripProperty(t *testing.T) {
	const n = 256
	f := MustFFT(n)
	check := func(seed uint64) bool {
		src := synth.WhiteNoise(n, 1, seed)
		re := make([]float64, n)
		im := make([]float64, n)
		copy(re, src)
		f.Transform(re, im)
		f.Inverse(re, im)
		for i := range re {
			if math.Abs(re[i]-src[i]) > 1e-9 || math.Abs(im[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTLinearity(t *testing.T) {
	const n = 128
	f := MustFFT(n)
	a := synth.WhiteNoise(n, 1, 1)
	b := synth.WhiteNoise(n, 1, 2)

	transform := func(x []float64) ([]float64, []float64) {
		re := make([]float64, n)
		im := make([]float64, n)
		copy(re, x)
		f.Transform(re, im)
		return re, im
	}
	sum := make([]float64, n)
	for i := range sum {
		sum[i] = 2*a[i] + 3*b[i]
	}
	aRe, aIm := transform(a)
	bRe, bIm := transform(b)
	sRe, sIm := transform(sum)
	for i := 0; i < n; i++ {
		if math.Abs(sRe[i]-(2*aRe[i]+3*bRe[i])) > 1e-8 ||
			math.Abs(sIm[i]-(2*aIm[i]+3*bIm[i])) > 1e-8 {
			t.Fatalf("linearity violated at bin %d", i)
		}
	}
}

func TestFFTParseval(t *testing.T) {
	const n = 512
	f := MustFFT(n)
	x := synth.WhiteNoise(n, 1, 77)
	re := make([]float64, n)
	im := make([]float64, n)
	copy(re, x)
	timeE := 0.0
	for _, s := range x {
		timeE += s * s
	}
	f.Transform(re, im)
	freqE := 0.0
	for i := 0; i < n; i++ {
		freqE += re[i]*re[i] + im[i]*im[i]
	}
	freqE /= n
	if math.Abs(timeE-freqE) > 1e-6*timeE {
		t.Fatalf("Parseval violated: time %v vs freq %v", timeE, freqE)
	}
}

func TestFFTWrongLengthPanics(t *testing.T) {
	f := MustFFT(64)
	defer func() {
		if recover() == nil {
			t.Fatal("Transform with wrong buffer length did not panic")
		}
	}()
	f.Transform(make([]float64, 32), make([]float64, 64))
}

func TestWindows(t *testing.T) {
	for _, kind := range []WindowKind{Rectangular, Hann, Hamming, Blackman} {
		w := make([]float64, 128)
		MakeWindow(kind, w)
		for i, v := range w {
			if v < -1e-12 || v > 1+1e-12 {
				t.Fatalf("window %d sample %d out of range: %v", kind, i, v)
			}
		}
		// Symmetry.
		for i := 0; i < len(w)/2; i++ {
			if math.Abs(w[i]-w[len(w)-1-i]) > 1e-12 {
				t.Fatalf("window %d asymmetric at %d", kind, i)
			}
		}
	}
	// Hann endpoints are 0, midpoint 1.
	w := make([]float64, 129)
	MakeWindow(Hann, w)
	if w[0] > 1e-12 || w[128] > 1e-12 || math.Abs(w[64]-1) > 1e-12 {
		t.Fatalf("Hann endpoints/mid wrong: %v %v %v", w[0], w[128], w[64])
	}
	// Degenerate sizes do not panic.
	MakeWindow(Hann, nil)
	one := make([]float64, 1)
	MakeWindow(Hann, one)
	if one[0] != 1 {
		t.Fatalf("size-1 window = %v, want 1", one[0])
	}
}

func TestFFTNoAllocSteadyState(t *testing.T) {
	f := MustFFT(256)
	re := make([]float64, 256)
	im := make([]float64, 256)
	allocs := testing.AllocsPerRun(50, func() {
		f.Transform(re, im)
		f.Inverse(re, im)
	})
	if allocs != 0 {
		t.Fatalf("FFT allocates %v per run", allocs)
	}
}

func TestFFTSizeGetter(t *testing.T) {
	if MustFFT(128).Size() != 128 {
		t.Fatal("Size wrong")
	}
}
