// Package dsp implements the digital signal processing primitives the
// DJ Star audio graph nodes are built from: biquad filters, a three-band
// equalizer, FFT, window functions, delay lines, dynamics processing
// (limiter, soft clip), gain/pan laws and a resampler.
//
// Everything here is allocation-free per sample/packet once constructed;
// graph nodes call these kernels inside the 2.9 ms audio processing cycle.
package dsp

import "math"

// FilterKind selects the response of a Biquad.
type FilterKind int

const (
	LowPass FilterKind = iota
	HighPass
	BandPass
	Notch
	AllPass
	LowShelf
	HighShelf
	Peaking
)

// String returns the conventional name of the filter kind.
func (k FilterKind) String() string {
	switch k {
	case LowPass:
		return "lowpass"
	case HighPass:
		return "highpass"
	case BandPass:
		return "bandpass"
	case Notch:
		return "notch"
	case AllPass:
		return "allpass"
	case LowShelf:
		return "lowshelf"
	case HighShelf:
		return "highshelf"
	case Peaking:
		return "peaking"
	default:
		return "unknown"
	}
}

// Biquad is a second-order IIR filter in transposed direct form II, with
// coefficients from the Audio EQ Cookbook (R. Bristow-Johnson). It is the
// workhorse behind the channel filters, EQ bands and the SP "Fltr" nodes.
type Biquad struct {
	b0, b1, b2, a1, a2 float64 // normalized coefficients (a0 == 1)
	z1, z2             float64 // state
}

// NewBiquad returns a filter of the given kind at center/corner frequency
// freq (Hz) for sampling rate hz, with quality factor q and shelf/peak gain
// gainDB (ignored for non-shelving, non-peaking kinds).
func NewBiquad(kind FilterKind, freq, q, gainDB float64, hz int) *Biquad {
	var f Biquad
	f.Configure(kind, freq, q, gainDB, hz)
	return &f
}

// Configure retunes the filter in place, preserving its state so parameter
// sweeps do not click. Frequencies are clamped to (0, hz/2).
func (f *Biquad) Configure(kind FilterKind, freq, q, gainDB float64, hz int) {
	nyq := float64(hz) / 2
	if freq <= 0 {
		freq = 1
	}
	if freq >= nyq {
		freq = nyq * 0.999
	}
	if q <= 0 {
		q = 0.7071
	}

	w0 := 2 * math.Pi * freq / float64(hz)
	cosW, sinW := math.Cos(w0), math.Sin(w0)
	alpha := sinW / (2 * q)
	a := math.Pow(10, gainDB/40)

	var b0, b1, b2, a0, a1, a2 float64
	switch kind {
	case LowPass:
		b0 = (1 - cosW) / 2
		b1 = 1 - cosW
		b2 = (1 - cosW) / 2
		a0 = 1 + alpha
		a1 = -2 * cosW
		a2 = 1 - alpha
	case HighPass:
		b0 = (1 + cosW) / 2
		b1 = -(1 + cosW)
		b2 = (1 + cosW) / 2
		a0 = 1 + alpha
		a1 = -2 * cosW
		a2 = 1 - alpha
	case BandPass: // constant 0 dB peak gain
		b0 = alpha
		b1 = 0
		b2 = -alpha
		a0 = 1 + alpha
		a1 = -2 * cosW
		a2 = 1 - alpha
	case Notch:
		b0 = 1
		b1 = -2 * cosW
		b2 = 1
		a0 = 1 + alpha
		a1 = -2 * cosW
		a2 = 1 - alpha
	case AllPass:
		b0 = 1 - alpha
		b1 = -2 * cosW
		b2 = 1 + alpha
		a0 = 1 + alpha
		a1 = -2 * cosW
		a2 = 1 - alpha
	case LowShelf:
		sq := 2 * math.Sqrt(a) * alpha
		b0 = a * ((a + 1) - (a-1)*cosW + sq)
		b1 = 2 * a * ((a - 1) - (a+1)*cosW)
		b2 = a * ((a + 1) - (a-1)*cosW - sq)
		a0 = (a + 1) + (a-1)*cosW + sq
		a1 = -2 * ((a - 1) + (a+1)*cosW)
		a2 = (a + 1) + (a-1)*cosW - sq
	case HighShelf:
		sq := 2 * math.Sqrt(a) * alpha
		b0 = a * ((a + 1) + (a-1)*cosW + sq)
		b1 = -2 * a * ((a - 1) + (a+1)*cosW)
		b2 = a * ((a + 1) + (a-1)*cosW - sq)
		a0 = (a + 1) - (a-1)*cosW + sq
		a1 = 2 * ((a - 1) - (a+1)*cosW)
		a2 = (a + 1) - (a-1)*cosW - sq
	case Peaking:
		b0 = 1 + alpha*a
		b1 = -2 * cosW
		b2 = 1 - alpha*a
		a0 = 1 + alpha/a
		a1 = -2 * cosW
		a2 = 1 - alpha/a
	default:
		// Identity.
		b0, a0 = 1, 1
	}

	inv := 1 / a0
	f.b0 = b0 * inv
	f.b1 = b1 * inv
	f.b2 = b2 * inv
	f.a1 = a1 * inv
	f.a2 = a2 * inv
}

// Reset clears the filter state (the coefficients are kept).
func (f *Biquad) Reset() { f.z1, f.z2 = 0, 0 }

// ProcessSample filters one sample.
func (f *Biquad) ProcessSample(x float64) float64 {
	y := f.b0*x + f.z1
	f.z1 = f.b1*x - f.a1*y + f.z2
	f.z2 = f.b2*x - f.a2*y
	return y
}

// Process filters buf in place.
func (f *Biquad) Process(buf []float64) {
	b0, b1, b2, a1, a2 := f.b0, f.b1, f.b2, f.a1, f.a2
	z1, z2 := f.z1, f.z2
	for i, x := range buf {
		y := b0*x + z1
		z1 = b1*x - a1*y + z2
		z2 = b2*x - a2*y
		buf[i] = y
	}
	f.z1, f.z2 = z1, z2
}

// MagnitudeAt returns the filter's magnitude response at frequency freq (Hz)
// for sampling rate hz. Used by tests and the spectrum display.
func (f *Biquad) MagnitudeAt(freq float64, hz int) float64 {
	w := 2 * math.Pi * freq / float64(hz)
	// Evaluate H(e^jw) = (b0 + b1 z^-1 + b2 z^-2) / (1 + a1 z^-1 + a2 z^-2).
	c1, s1 := math.Cos(w), math.Sin(w)
	c2, s2 := math.Cos(2*w), math.Sin(2*w)
	numRe := f.b0 + f.b1*c1 + f.b2*c2
	numIm := -f.b1*s1 - f.b2*s2
	denRe := 1 + f.a1*c1 + f.a2*c2
	denIm := -f.a1*s1 - f.a2*s2
	num := math.Hypot(numRe, numIm)
	den := math.Hypot(denRe, denIm)
	if den == 0 {
		return math.Inf(1)
	}
	return num / den
}

// IsStable reports whether the filter's poles are inside the unit circle.
func (f *Biquad) IsStable() bool {
	// Jury criterion for 1 + a1 z^-1 + a2 z^-2.
	return math.Abs(f.a2) < 1 && math.Abs(f.a1) < 1+f.a2
}
