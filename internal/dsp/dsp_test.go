package dsp

import (
	"math"
	"testing"
	"testing/quick"

	"djstar/internal/synth"
)

func TestThreeBandEQFlatByDefault(t *testing.T) {
	eq := NewThreeBandEQ(44100)
	for _, freq := range []float64{50, 500, 2000, 10000} {
		if m := eq.MagnitudeAt(freq); math.Abs(m-1) > 0.02 {
			t.Fatalf("flat EQ magnitude at %v Hz = %v", freq, m)
		}
	}
}

func TestThreeBandEQKill(t *testing.T) {
	eq := NewThreeBandEQ(44100)
	eq.SetGains(EQGainMin, 0, 0) // low kill
	if m := eq.MagnitudeAt(60); m > 0.12 {
		t.Fatalf("low kill leaves %v at 60 Hz", m)
	}
	if m := eq.MagnitudeAt(10000); math.Abs(m-1) > 0.1 {
		t.Fatalf("low kill affects highs: %v", m)
	}
}

func TestThreeBandEQClampsGain(t *testing.T) {
	eq := NewThreeBandEQ(44100)
	eq.SetGains(-100, +100, 0)
	l, m, h := eq.Gains()
	if l != EQGainMin || m != EQGainMax || h != 0 {
		t.Fatalf("Gains = %v %v %v, want clamped", l, m, h)
	}
}

func TestThreeBandEQProcessStable(t *testing.T) {
	eq := NewThreeBandEQ(44100)
	eq.SetGains(6, -6, 12)
	buf := synth.WhiteNoise(44100, 0.5, 3)
	eq.Process(buf)
	for i, s := range buf {
		if math.IsNaN(s) || math.Abs(s) > 20 {
			t.Fatalf("unstable EQ output at %d: %v", i, s)
		}
	}
	eq.Reset()
}

func TestDelayLineRead(t *testing.T) {
	d := NewDelayLine(8)
	for i := 1; i <= 8; i++ {
		d.Write(float64(i))
	}
	if got := d.Read(1); got != 8 {
		t.Fatalf("Read(1) = %v, want 8", got)
	}
	if got := d.Read(8); got != 1 {
		t.Fatalf("Read(8) = %v, want 1", got)
	}
	// Clamping.
	if got := d.Read(0); got != 8 {
		t.Fatalf("Read(0) clamps to 1, got %v", got)
	}
	if got := d.Read(100); got != 1 {
		t.Fatalf("Read(100) clamps to cap, got %v", got)
	}
}

func TestDelayLineFracInterpolates(t *testing.T) {
	d := NewDelayLine(8)
	d.Write(0)
	d.Write(10)
	// 1 step ago = 10, 2 steps ago = 0; 1.5 steps ago = 5.
	if got := d.ReadFrac(1.5); math.Abs(got-5) > 1e-12 {
		t.Fatalf("ReadFrac(1.5) = %v, want 5", got)
	}
}

func TestDelayLineCapacityRounding(t *testing.T) {
	if c := NewDelayLine(100).Capacity(); c != 128 {
		t.Fatalf("Capacity = %d, want 128", c)
	}
	if c := NewDelayLine(0).Capacity(); c < 1 {
		t.Fatalf("zero capacity line unusable: %d", c)
	}
}

func TestDelayLineResetAndString(t *testing.T) {
	d := NewDelayLine(4)
	d.Write(5)
	d.Reset()
	if d.Read(1) != 0 {
		t.Fatal("Reset did not clear history")
	}
	if d.String() == "" {
		t.Fatal("String empty")
	}
}

func TestCombImpulseResponse(t *testing.T) {
	c := NewComb(4, 0.5, 0)
	// Impulse: output is delayed copies with geometric decay.
	var out []float64
	out = append(out, c.ProcessSample(1))
	for i := 0; i < 15; i++ {
		out = append(out, c.ProcessSample(0))
	}
	// y[4] = 1, y[8] = 0.5, y[12] = 0.25.
	if math.Abs(out[4]-1) > 1e-12 || math.Abs(out[8]-0.5) > 1e-12 || math.Abs(out[12]-0.25) > 1e-12 {
		t.Fatalf("comb impulse response wrong: %v", out)
	}
	c.Reset()
	if c.ProcessSample(0) != 0 {
		t.Fatal("comb reset failed")
	}
}

func TestAllPassDelayEnergyPreserving(t *testing.T) {
	a := NewAllPassDelay(5, 0.5)
	in := synth.WhiteNoise(8192, 0.7, 4)
	inE := 0.0
	outE := 0.0
	for _, x := range in {
		inE += x * x
		y := a.ProcessSample(x)
		outE += y * y
	}
	// All-pass: asymptotically equal energy (allow a few percent for edge).
	if math.Abs(inE-outE)/inE > 0.05 {
		t.Fatalf("all-pass energy mismatch: in %v out %v", inE, outE)
	}
	a.Reset()
}

func TestLimiterCeiling(t *testing.T) {
	l := NewLimiter(0.5, 1, 1000, 44100)
	buf := make([]float64, 4096)
	for i := range buf {
		buf[i] = math.Sin(2*math.Pi*float64(i)/50) * 2 // peaks at 2.0
	}
	l.Process(buf)
	// After the 1-sample attack settles, nothing should exceed threshold
	// noticeably.
	for i := 64; i < len(buf); i++ {
		if math.Abs(buf[i]) > 0.55 {
			t.Fatalf("limited sample %d = %v, want <= ~0.5", i, buf[i])
		}
	}
	if g := l.Gain(); g <= 0 || g > 1 {
		t.Fatalf("limiter gain = %v", g)
	}
	l.Reset()
	if l.Gain() != 1 {
		t.Fatal("Reset did not restore unity gain")
	}
}

func TestLimiterTransparentBelowThreshold(t *testing.T) {
	l := NewLimiter(0.9, 8, 800, 44100)
	in := synth.SineBuffer(440, 2048, 44100)
	for i := range in {
		in[i] *= 0.3
	}
	buf := make([]float64, len(in))
	copy(buf, in)
	l.Process(buf)
	for i := range buf {
		if math.Abs(buf[i]-in[i]) > 1e-9 {
			t.Fatalf("limiter altered sub-threshold signal at %d: %v vs %v", i, buf[i], in[i])
		}
	}
}

func TestHardClip(t *testing.T) {
	buf := []float64{0.5, 1.5, -2, 0.9, -0.95}
	n := HardClip(buf, 1)
	if n != 2 {
		t.Fatalf("clipped count = %d, want 2", n)
	}
	want := []float64{0.5, 1, -1, 0.9, -0.95}
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("HardClip gave %v, want %v", buf, want)
		}
	}
}

func TestSoftClipBoundedAndMonotone(t *testing.T) {
	// Output is bounded by 1/tanh(drive) (unity is hit exactly at x = ±1).
	bound := 1/math.Tanh(2) + 1e-9
	f := func(x float64) bool {
		buf := []float64{x}
		SoftClip(buf, 2)
		return buf[0] >= -bound && buf[0] <= bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Unity at +-1 for normalized tanh drive.
	buf := []float64{1, -1, 0}
	SoftClip(buf, 3)
	if math.Abs(buf[0]-1) > 1e-12 || math.Abs(buf[1]+1) > 1e-12 || buf[2] != 0 {
		t.Fatalf("SoftClip normalization wrong: %v", buf)
	}
	// Zero drive falls back to 1.
	b2 := []float64{0.5}
	SoftClip(b2, 0)
	if math.IsNaN(b2[0]) {
		t.Fatal("SoftClip(0 drive) produced NaN")
	}
}

func TestEnvelopeFollower(t *testing.T) {
	e := NewEnvelopeFollower(4, 400)
	// Feed a constant 1: level should approach 1.
	for i := 0; i < 100; i++ {
		e.ProcessSample(1)
	}
	if l := e.Level(); l < 0.99 {
		t.Fatalf("attack level = %v, want ~1", l)
	}
	// Release: decays slowly.
	for i := 0; i < 100; i++ {
		e.ProcessSample(0)
	}
	if l := e.Level(); l < 0.5 || l >= 1 {
		t.Fatalf("release level after 100 samples = %v, want slow decay", l)
	}
	e.Reset()
	if e.Level() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestEqualPowerPan(t *testing.T) {
	l, r := EqualPowerPan(0)
	if math.Abs(l-r) > 1e-12 || math.Abs(l*l+r*r-1) > 1e-12 {
		t.Fatalf("center pan gains %v %v", l, r)
	}
	l, r = EqualPowerPan(-1)
	if math.Abs(l-1) > 1e-12 || math.Abs(r) > 1e-12 {
		t.Fatalf("hard left gains %v %v", l, r)
	}
	l, r = EqualPowerPan(2) // clamps to +1
	if math.Abs(r-1) > 1e-12 || math.Abs(l) > 1e-12 {
		t.Fatalf("hard right gains %v %v", l, r)
	}
}

func TestCrossfadeConstantPower(t *testing.T) {
	f := func(x float64) bool {
		x = math.Abs(math.Mod(x, 1))
		a, b := CrossfadeGains(x)
		return math.Abs(a*a+b*b-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	a, b := CrossfadeGains(0)
	if a != 1 || b != 0 {
		t.Fatalf("x=0 gains %v %v", a, b)
	}
	a, b = CrossfadeGains(5)
	if math.Abs(b-1) > 1e-12 || math.Abs(a) > 1e-12 {
		t.Fatalf("clamped x=5 gains %v %v", a, b)
	}
}

func TestFaderCurve(t *testing.T) {
	if FaderCurve(-1) != 0 || FaderCurve(2) != 1 {
		t.Fatal("FaderCurve clamp failed")
	}
	if FaderCurve(0.5) != 0.25 {
		t.Fatalf("FaderCurve(0.5) = %v", FaderCurve(0.5))
	}
}

func TestSmoothedGainRampsWithoutJump(t *testing.T) {
	s := NewSmoothedGain(0)
	buf := make([]float64, 100)
	for i := range buf {
		buf[i] = 1
	}
	s.Apply(buf, 1) // first call snaps to target
	if s.Current() != 1 {
		t.Fatalf("Current = %v, want 1", s.Current())
	}
	for i := range buf {
		buf[i] = 1
	}
	s.Apply(buf, 0) // ramp from 1 to 0
	// Monotone non-increasing ramp.
	for i := 1; i < len(buf); i++ {
		if buf[i] > buf[i-1]+1e-12 {
			t.Fatalf("ramp not monotone at %d: %v > %v", i, buf[i], buf[i-1])
		}
	}
	if math.Abs(buf[len(buf)-1]) > 0.02 {
		t.Fatalf("ramp end = %v, want ~0", buf[len(buf)-1])
	}
	// Empty buffer still updates the target.
	s.Apply(nil, 0.5)
	if s.Current() != 0.5 {
		t.Fatalf("Current after empty Apply = %v", s.Current())
	}
}

func TestLinearResampleUnityRate(t *testing.T) {
	src := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	dst := make([]float64, 4)
	pos := LinearResample(dst, src, 0, 1)
	if pos != 4 {
		t.Fatalf("pos = %v, want 4", pos)
	}
	for i := range dst {
		if dst[i] != float64(i) {
			t.Fatalf("dst = %v", dst)
		}
	}
}

func TestLinearResampleHalfRate(t *testing.T) {
	src := []float64{0, 2, 4, 6}
	dst := make([]float64, 6)
	LinearResample(dst, src, 0, 0.5)
	want := []float64{0, 1, 2, 3, 4, 5}
	for i := range want {
		if math.Abs(dst[i]-want[i]) > 1e-12 {
			t.Fatalf("dst = %v, want %v", dst, want)
		}
	}
}

func TestLinearResamplePastEnd(t *testing.T) {
	src := []float64{1, 1}
	dst := make([]float64, 5)
	LinearResample(dst, src, 0, 1)
	if dst[0] != 1 || dst[1] != 1 {
		t.Fatalf("in-range samples wrong: %v", dst)
	}
	for i := 2; i < 5; i++ {
		if dst[i] != 0 {
			t.Fatalf("past-end sample %d = %v, want 0", i, dst[i])
		}
	}
}

func TestCubicResampleInterpolatesLinearSignalExactly(t *testing.T) {
	// Catmull-Rom reproduces linear ramps exactly (away from edges).
	src := make([]float64, 32)
	for i := range src {
		src[i] = float64(i)
	}
	dst := make([]float64, 20)
	CubicResample(dst, src, 2, 0.75)
	for i := range dst {
		want := 2 + 0.75*float64(i)
		if math.Abs(dst[i]-want) > 1e-9 {
			t.Fatalf("dst[%d] = %v, want %v", i, dst[i], want)
		}
	}
}

func TestCubicResampleEdges(t *testing.T) {
	src := []float64{1, 2}
	dst := make([]float64, 6)
	CubicResample(dst, src, 0, 1)
	for i := 2; i < len(dst); i++ {
		if dst[i] != 0 {
			t.Fatalf("past-end cubic sample %d = %v", i, dst[i])
		}
	}
	// Empty source is safe.
	CubicResample(dst, nil, 0, 1)
}
