package dsp

import (
	"fmt"
	"math"
	"math/bits"
)

// FFT computes radix-2 decimation-in-time fast Fourier transforms on
// preallocated complex buffers (separate real/imag slices to avoid
// complex128 boxing in hot loops). The time-stretching phase vocoder and
// the spectrum analyzer node are built on it.
type FFT struct {
	n      int
	logN   int
	revIdx []int     // bit-reversal permutation
	cosTab []float64 // twiddle factors, quarter-wave resolution n/2
	sinTab []float64
}

// NewFFT returns a transform of size n, which must be a power of two >= 2.
func NewFFT(n int) (*FFT, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("dsp: FFT size %d is not a power of two >= 2", n)
	}
	logN := bits.TrailingZeros(uint(n))
	f := &FFT{
		n:      n,
		logN:   logN,
		revIdx: make([]int, n),
		cosTab: make([]float64, n/2),
		sinTab: make([]float64, n/2),
	}
	for i := 0; i < n; i++ {
		f.revIdx[i] = int(bits.Reverse(uint(i)) >> (bits.UintSize - logN))
	}
	for i := 0; i < n/2; i++ {
		ang := -2 * math.Pi * float64(i) / float64(n)
		f.cosTab[i] = math.Cos(ang)
		f.sinTab[i] = math.Sin(ang)
	}
	return f, nil
}

// MustFFT is NewFFT that panics on error; for compile-time-known sizes.
func MustFFT(n int) *FFT {
	f, err := NewFFT(n)
	if err != nil {
		panic(err)
	}
	return f
}

// Size returns the transform length.
func (f *FFT) Size() int { return f.n }

// Transform computes the in-place forward FFT of (re, im), both of which
// must have length Size().
func (f *FFT) Transform(re, im []float64) {
	f.transform(re, im, false)
}

// Inverse computes the in-place inverse FFT of (re, im), including the 1/n
// normalization.
func (f *FFT) Inverse(re, im []float64) {
	f.transform(re, im, true)
	inv := 1 / float64(f.n)
	for i := range re {
		re[i] *= inv
		im[i] *= inv
	}
}

func (f *FFT) transform(re, im []float64, inverse bool) {
	n := f.n
	if len(re) != n || len(im) != n {
		panic(fmt.Sprintf("dsp: FFT buffers have length %d/%d, want %d", len(re), len(im), n))
	}
	// Bit-reversal permutation.
	for i, j := range f.revIdx {
		if j > i {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	// Cooley–Tukey butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			k := 0
			for i := start; i < start+half; i++ {
				c := f.cosTab[k]
				s := f.sinTab[k]
				if inverse {
					s = -s
				}
				j := i + half
				tRe := re[j]*c - im[j]*s
				tIm := re[j]*s + im[j]*c
				re[j] = re[i] - tRe
				im[j] = im[i] - tIm
				re[i] += tRe
				im[i] += tIm
				k += step
			}
		}
	}
}

// Magnitudes writes sqrt(re^2+im^2) for the first len(dst) bins into dst.
func Magnitudes(re, im, dst []float64) {
	for i := range dst {
		dst[i] = math.Hypot(re[i], im[i])
	}
}

// WindowKind selects a window function shape.
type WindowKind int

const (
	Rectangular WindowKind = iota
	Hann
	Hamming
	Blackman
)

// MakeWindow fills dst with the window of the given kind.
func MakeWindow(kind WindowKind, dst []float64) {
	n := len(dst)
	if n == 0 {
		return
	}
	denom := float64(n - 1)
	if denom == 0 {
		dst[0] = 1
		return
	}
	for i := range dst {
		x := float64(i) / denom
		switch kind {
		case Hann:
			dst[i] = 0.5 - 0.5*math.Cos(2*math.Pi*x)
		case Hamming:
			dst[i] = 0.54 - 0.46*math.Cos(2*math.Pi*x)
		case Blackman:
			dst[i] = 0.42 - 0.5*math.Cos(2*math.Pi*x) + 0.08*math.Cos(4*math.Pi*x)
		default:
			dst[i] = 1
		}
	}
}
