package dsp

import (
	"math"
	"testing"
	"testing/quick"

	"djstar/internal/synth"
)

func TestBiquadLowPassAttenuatesHigh(t *testing.T) {
	const rate = 44100
	f := NewBiquad(LowPass, 1000, 0.707, 0, rate)
	// Magnitude well below cutoff ~1, well above strongly attenuated.
	if m := f.MagnitudeAt(100, rate); math.Abs(m-1) > 0.05 {
		t.Fatalf("LP magnitude at 100 Hz = %v, want ~1", m)
	}
	if m := f.MagnitudeAt(10000, rate); m > 0.05 {
		t.Fatalf("LP magnitude at 10 kHz = %v, want < 0.05", m)
	}
	// -3 dB near cutoff.
	if m := f.MagnitudeAt(1000, rate); math.Abs(m-math.Sqrt(0.5)) > 0.03 {
		t.Fatalf("LP magnitude at cutoff = %v, want ~0.707", m)
	}
}

func TestBiquadHighPassAttenuatesLow(t *testing.T) {
	const rate = 44100
	f := NewBiquad(HighPass, 1000, 0.707, 0, rate)
	if m := f.MagnitudeAt(10000, rate); math.Abs(m-1) > 0.05 {
		t.Fatalf("HP magnitude at 10 kHz = %v, want ~1", m)
	}
	if m := f.MagnitudeAt(50, rate); m > 0.01 {
		t.Fatalf("HP magnitude at 50 Hz = %v, want < 0.01", m)
	}
}

func TestBiquadNotchKillsCenter(t *testing.T) {
	const rate = 44100
	f := NewBiquad(Notch, 2000, 4, 0, rate)
	if m := f.MagnitudeAt(2000, rate); m > 0.02 {
		t.Fatalf("notch magnitude at center = %v, want ~0", m)
	}
	if m := f.MagnitudeAt(200, rate); math.Abs(m-1) > 0.05 {
		t.Fatalf("notch magnitude far away = %v, want ~1", m)
	}
}

func TestBiquadAllPassFlat(t *testing.T) {
	const rate = 44100
	f := NewBiquad(AllPass, 1500, 0.8, 0, rate)
	for _, freq := range []float64{100, 1000, 5000, 15000} {
		if m := f.MagnitudeAt(freq, rate); math.Abs(m-1) > 1e-6 {
			t.Fatalf("allpass magnitude at %v Hz = %v, want 1", freq, m)
		}
	}
}

func TestBiquadPeakingGain(t *testing.T) {
	const rate = 44100
	f := NewBiquad(Peaking, 1200, 0.7, 6, rate)
	want := math.Pow(10, 6.0/20)
	if m := f.MagnitudeAt(1200, rate); math.Abs(m-want) > 0.05 {
		t.Fatalf("peaking magnitude at center = %v, want %v", m, want)
	}
}

func TestBiquadShelves(t *testing.T) {
	const rate = 44100
	low := NewBiquad(LowShelf, 250, 0.9, -12, rate)
	if m := low.MagnitudeAt(40, rate); math.Abs(m-math.Pow(10, -12.0/20)) > 0.05 {
		t.Fatalf("low shelf at 40 Hz = %v, want ~0.25", m)
	}
	if m := low.MagnitudeAt(8000, rate); math.Abs(m-1) > 0.05 {
		t.Fatalf("low shelf at 8 kHz = %v, want ~1", m)
	}
	high := NewBiquad(HighShelf, 6000, 0.9, 6, rate)
	if m := high.MagnitudeAt(15000, rate); math.Abs(m-math.Pow(10, 6.0/20)) > 0.12 {
		t.Fatalf("high shelf at 15 kHz = %v, want ~2", m)
	}
}

func TestBiquadStabilityProperty(t *testing.T) {
	// All cookbook configurations within legal parameter ranges are stable.
	f := func(kindSeed uint8, freqFrac, qFrac, gainFrac float64) bool {
		kind := FilterKind(int(kindSeed) % 8)
		freq := 10 + math.Abs(math.Mod(freqFrac, 1))*20000
		q := 0.1 + math.Abs(math.Mod(qFrac, 1))*10
		gain := math.Mod(gainFrac, 1) * 24
		b := NewBiquad(kind, freq, q, gain, 44100)
		return b.IsStable()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBiquadImpulseDecays(t *testing.T) {
	f := NewBiquad(BandPass, 3000, 8, 0, 44100)
	buf := synth.Impulse(44100)
	f.Process(buf)
	tail := buf[len(buf)/2:]
	peak := 0.0
	for _, s := range tail {
		if a := math.Abs(s); a > peak {
			peak = a
		}
	}
	if peak > 1e-6 {
		t.Fatalf("impulse response tail peak = %v, want decayed", peak)
	}
}

func TestBiquadDefaultsAndClamping(t *testing.T) {
	// Invalid parameters must not produce an unstable or NaN filter.
	f := NewBiquad(LowPass, -5, -1, 0, 44100)
	if !f.IsStable() {
		t.Fatal("clamped filter unstable")
	}
	g := NewBiquad(HighPass, 1e9, 0.7, 0, 44100)
	if !g.IsStable() {
		t.Fatal("above-Nyquist clamped filter unstable")
	}
	buf := synth.WhiteNoise(1024, 1, 1)
	f.Process(buf)
	for i, s := range buf {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			t.Fatalf("sample %d is %v", i, s)
		}
	}
}

func TestBiquadProcessMatchesProcessSample(t *testing.T) {
	a := NewBiquad(LowPass, 500, 1, 0, 44100)
	b := NewBiquad(LowPass, 500, 1, 0, 44100)
	in := synth.WhiteNoise(256, 0.9, 5)
	bufA := make([]float64, len(in))
	copy(bufA, in)
	a.Process(bufA)
	for i, x := range in {
		y := b.ProcessSample(x)
		if math.Abs(y-bufA[i]) > 1e-12 {
			t.Fatalf("sample %d: block %v vs per-sample %v", i, bufA[i], y)
		}
	}
}

func TestBiquadResetClearsState(t *testing.T) {
	f := NewBiquad(LowPass, 500, 1, 0, 44100)
	f.ProcessSample(1)
	f.ProcessSample(-1)
	f.Reset()
	// After reset, processing zero input yields exactly zero.
	if y := f.ProcessSample(0); y != 0 {
		t.Fatalf("post-reset output = %v, want 0", y)
	}
}

func TestFilterKindString(t *testing.T) {
	names := map[FilterKind]string{
		LowPass: "lowpass", HighPass: "highpass", BandPass: "bandpass",
		Notch: "notch", AllPass: "allpass", LowShelf: "lowshelf",
		HighShelf: "highshelf", Peaking: "peaking", FilterKind(99): "unknown",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestBiquadProcessNoAlloc(t *testing.T) {
	f := NewBiquad(LowPass, 800, 0.7, 0, 44100)
	buf := make([]float64, 128)
	allocs := testing.AllocsPerRun(100, func() { f.Process(buf) })
	if allocs != 0 {
		t.Fatalf("Process allocates %v per run", allocs)
	}
}
