package dsp

import "math"

// Limiter is a feed-forward peak limiter with exponential attack/release
// gain smoothing, used by the AudioOut1 and RecordBuffer nodes ("Limiter,
// Clip" in Fig. 3) to guarantee the packet never exceeds the threshold by
// more than the attack lag allows.
type Limiter struct {
	// Threshold is the linear ceiling (e.g. 0.98).
	Threshold float64
	attack    float64 // per-sample smoothing coefficient when reducing gain
	release   float64 // per-sample smoothing coefficient when recovering
	gain      float64 // current smoothed gain
}

// NewLimiter returns a limiter with the given linear threshold and
// attack/release time constants in samples.
func NewLimiter(threshold float64, attackSamples, releaseSamples float64, _ int) *Limiter {
	l := &Limiter{Threshold: threshold, gain: 1}
	l.attack = coefForSamples(attackSamples)
	l.release = coefForSamples(releaseSamples)
	return l
}

// coefForSamples converts a time constant in samples to a one-pole
// smoothing coefficient.
func coefForSamples(samples float64) float64 {
	if samples <= 0 {
		return 0
	}
	return math.Exp(-1 / samples)
}

// Reset restores unity gain.
func (l *Limiter) Reset() { l.gain = 1 }

// Gain returns the current smoothed gain (for metering).
func (l *Limiter) Gain() float64 { return l.gain }

// Process limits buf in place.
func (l *Limiter) Process(buf []float64) {
	th := l.Threshold
	g := l.gain
	for i, x := range buf {
		target := 1.0
		if a := math.Abs(x); a*g > th && a > 0 {
			target = th / a
		}
		coef := l.release
		if target < g {
			coef = l.attack
		}
		g = target + (g-target)*coef
		buf[i] = x * g
	}
	l.gain = g
}

// HardClip clamps buf to [-ceiling, ceiling] in place and returns the
// number of clipped samples. This is the final safety stage after the
// limiter.
func HardClip(buf []float64, ceiling float64) int {
	clipped := 0
	for i, x := range buf {
		if x > ceiling {
			buf[i] = ceiling
			clipped++
		} else if x < -ceiling {
			buf[i] = -ceiling
			clipped++
		}
	}
	return clipped
}

// SoftClip applies a tanh-style saturator with the given drive, in place.
// Used by the bit-crusher and as a musical overload stage.
func SoftClip(buf []float64, drive float64) {
	if drive <= 0 {
		drive = 1
	}
	norm := math.Tanh(drive)
	for i, x := range buf {
		buf[i] = math.Tanh(x*drive) / norm
	}
}

// EnvelopeFollower tracks the rectified signal level with separate attack
// and release smoothing; drives meters and the gater effect.
type EnvelopeFollower struct {
	attack  float64
	release float64
	level   float64
}

// NewEnvelopeFollower returns a follower with the given attack and release
// time constants in samples.
func NewEnvelopeFollower(attackSamples, releaseSamples float64) *EnvelopeFollower {
	return &EnvelopeFollower{
		attack:  coefForSamples(attackSamples),
		release: coefForSamples(releaseSamples),
	}
}

// ProcessSample consumes one sample and returns the current level.
func (e *EnvelopeFollower) ProcessSample(x float64) float64 {
	a := math.Abs(x)
	coef := e.release
	if a > e.level {
		coef = e.attack
	}
	e.level = a + (e.level-a)*coef
	return e.level
}

// Level returns the current envelope value.
func (e *EnvelopeFollower) Level() float64 { return e.level }

// Reset zeroes the envelope.
func (e *EnvelopeFollower) Reset() { e.level = 0 }
