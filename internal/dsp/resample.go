package dsp

import "math"

// LinearResample reads len(dst) samples from src starting at fractional
// position pos with the given playback rate (1.0 = unity), writing linearly
// interpolated values into dst. It returns the new fractional position.
// Reads past the end of src produce 0 and do not advance further use of
// src; callers detect end-of-source by comparing the returned position to
// len(src).
func LinearResample(dst, src []float64, pos, rate float64) float64 {
	n := len(src)
	for i := range dst {
		idx := int(pos)
		if idx >= n-1 {
			if idx >= n {
				dst[i] = 0
			} else {
				dst[i] = src[n-1]
			}
			pos += rate
			continue
		}
		frac := pos - float64(idx)
		dst[i] = src[idx] + frac*(src[idx+1]-src[idx])
		pos += rate
	}
	return pos
}

// CubicResample is like LinearResample but uses 4-point Catmull–Rom
// interpolation, giving noticeably less aliasing for vinyl-style pitch
// bends. Positions outside src read as 0 (before) or the last sample.
func CubicResample(dst, src []float64, pos, rate float64) float64 {
	n := len(src)
	at := func(i int) float64 {
		if i < 0 {
			return 0
		}
		if i >= n {
			if n == 0 {
				return 0
			}
			return src[n-1]
		}
		return src[i]
	}
	for i := range dst {
		idx := int(math.Floor(pos))
		if idx >= n {
			dst[i] = 0
			pos += rate
			continue
		}
		t := pos - float64(idx)
		p0, p1, p2, p3 := at(idx-1), at(idx), at(idx+1), at(idx+2)
		// Catmull–Rom spline.
		a := -0.5*p0 + 1.5*p1 - 1.5*p2 + 0.5*p3
		b := p0 - 2.5*p1 + 2*p2 - 0.5*p3
		c := -0.5*p0 + 0.5*p2
		dst[i] = ((a*t+b)*t+c)*t + p1
		pos += rate
	}
	return pos
}
