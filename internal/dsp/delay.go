package dsp

import "fmt"

// DelayLine is a circular buffer supporting fixed and fractionally
// interpolated taps. Echo, flanger and phaser effects are built on it.
type DelayLine struct {
	buf  []float64
	pos  int // next write position
	mask int // len(buf)-1 when len is a power of two, else -1
}

// NewDelayLine returns a delay line holding capacity samples of history.
// Capacity is rounded up to the next power of two so taps can wrap with a
// mask instead of a modulo.
func NewDelayLine(capacity int) *DelayLine {
	if capacity < 1 {
		capacity = 1
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &DelayLine{buf: make([]float64, size), mask: size - 1}
}

// Capacity returns the usable history length in samples.
func (d *DelayLine) Capacity() int { return len(d.buf) }

// Reset zeroes the history.
func (d *DelayLine) Reset() {
	for i := range d.buf {
		d.buf[i] = 0
	}
	d.pos = 0
}

// Write pushes one sample into the line.
func (d *DelayLine) Write(x float64) {
	d.buf[d.pos] = x
	d.pos = (d.pos + 1) & d.mask
}

// Read returns the sample written delay steps ago. delay must be in
// [1, Capacity()]; it is clamped otherwise.
func (d *DelayLine) Read(delay int) float64 {
	if delay < 1 {
		delay = 1
	}
	if delay > len(d.buf) {
		delay = len(d.buf)
	}
	return d.buf[(d.pos-delay)&d.mask]
}

// ReadFrac returns the linearly interpolated sample delay (possibly
// fractional) steps in the past. Used by modulated effects (flanger).
func (d *DelayLine) ReadFrac(delay float64) float64 {
	if delay < 1 {
		delay = 1
	}
	maxDelay := float64(len(d.buf) - 1)
	if delay > maxDelay {
		delay = maxDelay
	}
	i := int(delay)
	frac := delay - float64(i)
	a := d.buf[(d.pos-i)&d.mask]
	b := d.buf[(d.pos-i-1)&d.mask]
	return a + frac*(b-a)
}

// String implements fmt.Stringer for debugging.
func (d *DelayLine) String() string {
	return fmt.Sprintf("DelayLine(cap=%d, pos=%d)", len(d.buf), d.pos)
}

// Comb is a feedback comb filter: y[n] = x[n-D] + g*y[n-D]. Building block
// of the Schroeder reverb.
type Comb struct {
	line  *DelayLine
	delay int
	// Feedback is the loop gain g; |g| < 1 for stability.
	Feedback float64
	// Damp low-pass filters the feedback path (0 = none, towards 1 = dark).
	Damp  float64
	state float64
}

// NewComb returns a comb filter with the given delay in samples.
func NewComb(delay int, feedback, damp float64) *Comb {
	return &Comb{
		line:     NewDelayLine(delay),
		delay:    delay,
		Feedback: feedback,
		Damp:     damp,
	}
}

// ProcessSample runs one sample through the comb.
func (c *Comb) ProcessSample(x float64) float64 {
	out := c.line.Read(c.delay)
	c.state = out*(1-c.Damp) + c.state*c.Damp
	c.line.Write(x + c.state*c.Feedback)
	return out
}

// Reset clears the comb's history.
func (c *Comb) Reset() {
	c.line.Reset()
	c.state = 0
}

// AllPassDelay is a Schroeder all-pass diffuser:
// y[n] = -g*x[n] + x[n-D] + g*y[n-D].
type AllPassDelay struct {
	line  *DelayLine
	delay int
	Gain  float64
}

// NewAllPassDelay returns an all-pass stage with the given delay in samples.
func NewAllPassDelay(delay int, gain float64) *AllPassDelay {
	return &AllPassDelay{line: NewDelayLine(delay), delay: delay, Gain: gain}
}

// ProcessSample runs one sample through the all-pass stage.
func (a *AllPassDelay) ProcessSample(x float64) float64 {
	delayed := a.line.Read(a.delay)
	y := -a.Gain*x + delayed
	a.line.Write(x + a.Gain*y)
	return y
}

// Reset clears the stage history.
func (a *AllPassDelay) Reset() { a.line.Reset() }
