// Package apiv1 defines the wire types of the versioned /v1 HTTP/JSON
// control plane, shared by the single-engine debug server (djstar
// -http) and the fleet control plane (djserve). Sessions are resources
// addressable by their stable ID; admission verdicts travel in the
// create response; shards expose per-shard SLO rollups.
//
// Versioning policy (DESIGN.md §16): additive changes (new fields, new
// endpoints) stay within /v1; a field removal or meaning change mints
// /v2 alongside /v1 for one deprecation cycle. The legacy flat /api/*
// endpoints are shims over /v1 and answer with a Deprecation header.
package apiv1

import (
	"djstar/internal/admission"
	"djstar/internal/telemetry"
)

// Version is the API version prefix.
const Version = "v1"

// Error is the uniform error body.
type Error struct {
	Error string `json:"error"`
}

// Session summarizes one session resource (GET /v1/sessions/{id}; the
// full Snapshot lives under /v1/sessions/{id}/snapshot).
type Session struct {
	ID       string `json:"id"`
	Shard    int    `json:"shard"` // -1 outside a fleet
	Strategy string `json:"strategy"`
	Threads  int    `json:"threads"`

	Cycles    uint64  `json:"cycles"`
	PlanEpoch uint64  `json:"plan_epoch"`
	APCMeanMS float64 `json:"apc_mean_ms"`
	MissRate  float64 `json:"miss_rate"`
	GovLevel  string  `json:"gov_level"`

	// SLO is the session's deadline-miss budget status (nil when
	// telemetry is disabled).
	SLO *telemetry.SLOStatus `json:"slo,omitempty"`

	// Verdict/BoundUS/HeadroomUS echo the admission decision that let
	// the session in ("" when no gate was involved).
	Verdict    string  `json:"verdict,omitempty"`
	BoundUS    float64 `json:"bound_us,omitempty"`
	HeadroomUS float64 `json:"headroom_us,omitempty"`
}

// SessionList is GET /v1/sessions.
type SessionList struct {
	Sessions []Session `json:"sessions"`
}

// CreateSessionRequest is POST /v1/sessions (fleet only — the
// single-engine server's session set is fixed at boot).
type CreateSessionRequest struct {
	// ID requests a specific session ID (must be unused); empty lets the
	// fleet assign one.
	ID string `json:"id,omitempty"`
	// Scale overrides the fleet's default node-cost scale for this
	// session (0 = fleet default).
	Scale float64 `json:"scale,omitempty"`
	// Fuse enables cost-guided chain fusion for this session.
	Fuse bool `json:"fuse,omitempty"`
	// AdmissionMargin overrides the placement safety margin (0 = fleet
	// default).
	AdmissionMargin float64 `json:"admission_margin,omitempty"`
}

// CreateSessionResponse carries the admitted session and the placement
// decision that justified its shard.
type CreateSessionResponse struct {
	Session   Session   `json:"session"`
	Placement Placement `json:"placement"`
}

// Placement records where a session landed and why: the shard chosen by
// analytical headroom, the post-admission minimum headroom of that
// shard, and every candidate considered.
type Placement struct {
	Shard int `json:"shard"`
	// HeadroomUS is the chosen shard's minimum aggregate headroom with
	// the session placed — the number that justified the choice.
	HeadroomUS float64 `json:"headroom_us"`
	// BoundUS is the session's own analytical bound.
	BoundUS float64 `json:"bound_us"`
	// Reason is "create" or "drain".
	Reason string `json:"reason,omitempty"`
	// Candidates are the per-shard probe results at decision time.
	Candidates []ShardHeadroom `json:"candidates,omitempty"`
}

// ShardHeadroom is one shard's probe result during placement.
type ShardHeadroom struct {
	Shard int `json:"shard"`
	// HeadroomUS is the shard's minimum aggregate headroom if the
	// candidate session were placed there.
	HeadroomUS float64 `json:"headroom_us"`
	Fits       bool    `json:"fits"`
	Sessions   int     `json:"sessions"`
}

// EditRequest is POST /v1/sessions/{id}/edits: one patch in the live
// topology patch language (see graph.ParsePatch).
type EditRequest struct {
	Patch string `json:"patch"`
}

// EditResponse reports the staging outcome; adoption happens at the
// session's next cycle boundary (watch plan_epoch in the snapshot).
type EditResponse struct {
	OK     bool   `json:"ok"`
	Staged bool   `json:"staged"`
	Epoch  uint64 `json:"epoch"`
	Error  string `json:"error,omitempty"`
}

// RetuneRequest is POST /v1/sessions/{id}/retune: live parameter
// changes that need no topology edit.
type RetuneRequest struct {
	// LoadFactor scales every node cost (1.0 = nominal; overload
	// experiments inflate it). Nil leaves it unchanged.
	LoadFactor *float64 `json:"load_factor,omitempty"`
	// TurntableSpeed sets virtual turntable speeds by deck index
	// (scratching / pitch bends over the control plane).
	TurntableSpeed map[int]float64 `json:"turntable_speed,omitempty"`
}

// RetuneResponse echoes the applied values.
type RetuneResponse struct {
	OK         bool    `json:"ok"`
	LoadFactor float64 `json:"load_factor"`
}

// Shard is one shard resource (GET /v1/shards/{id}), including the SLO
// rollup over its current sessions.
type Shard struct {
	ID       int   `json:"id"`
	CPUs     []int `json:"cpus,omitempty"`
	Workers  int   `json:"workers"`
	Pinned   bool  `json:"pinned"`
	Draining bool  `json:"draining"`
	Sessions int   `json:"sessions"`

	// HeadroomUS is the minimum aggregate headroom across the shard's
	// sessions (the full envelope when empty); Bounds lists each
	// session's aggregate bound.
	HeadroomUS float64                  `json:"headroom_us"`
	EnvelopeUS float64                  `json:"envelope_us"`
	Bounds     []admission.SessionBound `json:"bounds,omitempty"`

	SLO ShardSLO `json:"slo"`
}

// ShardSLO is the per-shard deadline-miss rollup.
type ShardSLO struct {
	Cycles       uint64  `json:"cycles"`
	Misses       uint64  `json:"misses"`
	MissPer10k   float64 `json:"miss_per_10k"`
	TargetPer10k float64 `json:"target_per_10k"`
	// Healthy is MissPer10k ≤ TargetPer10k over the whole run.
	Healthy bool `json:"healthy"`
	// WorstBurn1m is the worst 1-minute SLO burn rate across sessions.
	WorstBurn1m float64 `json:"worst_burn_1m"`
}

// ShardList is GET /v1/shards.
type ShardList struct {
	Shards []Shard `json:"shards"`
}

// DrainResponse is POST /v1/shards/{id}/drain: how many sessions moved
// off the shard and any per-session failures.
type DrainResponse struct {
	Shard  int      `json:"shard"`
	Moved  int      `json:"moved"`
	Failed int      `json:"failed"`
	Errors []string `json:"errors,omitempty"`
}
