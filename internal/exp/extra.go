package exp

import (
	"fmt"

	"djstar/internal/engine"
	"djstar/internal/graph"
	"djstar/internal/sched"
	"djstar/internal/stats"
)

// DeadlineResult holds the real-time miss accounting of §VI ("about five
// out of 10K APC executions exceed the deadline of 2.9 ms").
type DeadlineResult struct {
	// PerStrategy maps strategy to (missed, total) against the full APC
	// deadline.
	Missed map[string]int64
	Total  int64
	// WorstMS maps strategy to the worst APC time observed.
	WorstMS map[string]float64
}

// Deadlines measures full-APC deadline misses for each strategy at
// MaxThreads threads over Cycles iterations.
func Deadlines(opts Options) (*DeadlineResult, error) {
	opts.normalize()
	res := &DeadlineResult{
		Missed:  map[string]int64{},
		WorstMS: map[string]float64{},
	}
	var rows [][]string
	for _, name := range ParallelStrategies {
		m, err := opts.runEngine(name, opts.MaxThreads, false)
		if err != nil {
			return nil, err
		}
		res.Missed[name] = m.Deadline.Missed()
		res.Total = m.Deadline.Total()
		res.WorstMS[name] = m.Deadline.Worst()
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%d / %d", m.Deadline.Missed(), m.Deadline.Total()),
			fmt.Sprintf("%.4f", m.APC.Mean()),
			fmt.Sprintf("%.4f", m.Deadline.Worst()),
			fmt.Sprintf("%.4f", engine.DeadlineMS),
		})
	}
	fprintf(opts.Out, "§VI: APC deadline misses (%d cycles, %d threads)\n",
		opts.Cycles, opts.MaxThreads)
	fprintf(opts.Out, "%s\n", stats.RenderTable(
		[]string{"strategy", "missed", "mean ms", "worst ms", "deadline ms"}, rows))
	return res, nil
}

// ProfileResult is the APC component breakdown of §III-B / §VI.
type ProfileResult struct {
	// MeanMS per component.
	TPMS, GPMS, GraphMS, VCMS, APCMS float64
}

// Share returns a component's share of the APC in percent.
func (p *ProfileResult) Share(component string) float64 {
	if p.APCMS == 0 {
		return 0
	}
	var v float64
	switch component {
	case "tp":
		v = p.TPMS
	case "gp":
		v = p.GPMS
	case "graph":
		v = p.GraphMS
	case "vc":
		v = p.VCMS
	}
	return 100 * v / p.APCMS
}

// Profile reproduces the APC component breakdown. We target the paper's
// §VI decomposition — TP + GP + VC ≈ 0.8 ms, leaving a 2.1 ms graph
// budget within the 2.9 ms deadline — rather than the §III-B percentages
// (38 % graph, 16 % timecode), which are mutually inconsistent with §VI's
// own numbers (a 1.08 ms sequential graph next to 0.8 ms of TP+GP+VC
// makes the graph ~57 % of the APC, not 38 %). See EXPERIMENTS.md E9.
func Profile(opts Options) (*ProfileResult, error) {
	opts.normalize()
	m, err := opts.runEngine(sched.NameSequential, 1, false)
	if err != nil {
		return nil, err
	}
	res := &ProfileResult{
		TPMS:    m.TP.Mean(),
		GPMS:    m.GP.Mean(),
		GraphMS: m.Graph.Mean(),
		VCMS:    m.VC.Mean(),
		APCMS:   m.APC.Mean(),
	}
	fprintf(opts.Out, "§III-B / §VI: APC component profile (sequential, %d cycles)\n", opts.Cycles)
	rows := [][]string{
		{"timecode (TP)", fmt.Sprintf("%.4f", res.TPMS), fmt.Sprintf("%.1f%%", res.Share("tp"))},
		{"preprocessing (GP)", fmt.Sprintf("%.4f", res.GPMS), fmt.Sprintf("%.1f%%", res.Share("gp"))},
		{"task graph", fmt.Sprintf("%.4f", res.GraphMS), fmt.Sprintf("%.1f%%", res.Share("graph"))},
		{"various calc (VC)", fmt.Sprintf("%.4f", res.VCMS), fmt.Sprintf("%.1f%%", res.Share("vc"))},
		{"total APC", fmt.Sprintf("%.4f", res.APCMS), "100%"},
	}
	fprintf(opts.Out, "%s", stats.RenderTable([]string{"component", "mean ms", "share"}, rows))
	fprintf(opts.Out, "TP+GP+VC = %.4f ms; graph budget = %.4f ms (deadline %.4f ms)\n\n",
		res.TPMS+res.GPMS+res.VCMS, engine.DeadlineMS-(res.TPMS+res.GPMS+res.VCMS),
		engine.DeadlineMS)
	return res, nil
}

// ThreadSweepResult holds the >4-thread ablation (§VI: "increasing the
// thread count above four does not accelerate the computations any
// further").
type ThreadSweepResult struct {
	Threads []int
	MeanMS  []float64
	SeqMS   float64
}

// ThreadSweep measures the BUSY strategy from 1 to 8 threads.
func ThreadSweep(opts Options) (*ThreadSweepResult, error) {
	opts.normalize()
	seq, err := opts.runEngine(sched.NameSequential, 1, false)
	if err != nil {
		return nil, err
	}
	res := &ThreadSweepResult{SeqMS: seq.Graph.Mean()}
	var rows [][]string
	for t := 1; t <= 8; t++ {
		m, err := opts.runEngine(sched.NameBusyWait, t, false)
		if err != nil {
			return nil, err
		}
		res.Threads = append(res.Threads, t)
		res.MeanMS = append(res.MeanMS, m.Graph.Mean())
		rows = append(rows, []string{
			fmt.Sprintf("%d", t),
			fmt.Sprintf("%.4f", m.Graph.Mean()),
			fmt.Sprintf("%.2f", res.SeqMS/m.Graph.Mean()),
		})
	}
	fprintf(opts.Out, "§VI ablation: BUSY thread sweep (paper: no gain above 4 threads)\n")
	fprintf(opts.Out, "%s\n", stats.RenderTable([]string{"threads", "mean ms", "speedup"}, rows))
	return res, nil
}

// AblationResult compares work-stealing design choices.
type AblationResult struct {
	// MeanMS maps variant name to mean graph time.
	MeanMS map[string]float64
	// Steals and Parks map variant name to scheduler counters.
	Steals map[string]int64
	Parks  map[string]int64
}

// Ablation evaluates the paper's §V-C design choices: section-affine
// initial distribution vs round-robin, and lock-free Chase-Lev deques vs
// mutex deques.
func Ablation(opts Options) (*AblationResult, error) {
	opts.normalize()
	variants := []struct {
		name string
		opts sched.WSOptions
	}{
		{"ws (paper: locality+lockfree)", sched.WSOptions{}},
		{"ws round-robin init", sched.WSOptions{RoundRobinInit: true}},
		{"ws locked deque", sched.WSOptions{LockedDeque: true}},
	}
	res := &AblationResult{
		MeanMS: map[string]float64{},
		Steals: map[string]int64{},
		Parks:  map[string]int64{},
	}
	var rows [][]string
	for _, v := range variants {
		// Build the graph pieces directly (the engine's scheduler factory
		// cannot inject WS options).
		session, g, err := graph.BuildDJStar(opts.graphConfig())
		if err != nil {
			return nil, err
		}
		plan, err := g.Compile()
		if err != nil {
			return nil, err
		}
		ws, err := sched.NewWorkSteal(plan, sched.Options{Threads: opts.MaxThreads, WS: v.opts})
		if err != nil {
			return nil, err
		}
		sum := stats.NewSummary()
		for c := 0; c < opts.Cycles; c++ {
			session.Prepare()
			start := nowMS()
			ws.Execute()
			sum.Add(nowMS() - start)
		}
		res.MeanMS[v.name] = sum.Mean()
		res.Steals[v.name] = ws.Steals()
		res.Parks[v.name] = ws.Parks()
		ws.Close()
		rows = append(rows, []string{
			v.name,
			fmt.Sprintf("%.4f", sum.Mean()),
			fmt.Sprintf("%d", ws.Steals()),
			fmt.Sprintf("%d", ws.Parks()),
		})
	}
	// Sleep-family comparison: plain sleep vs the scanning variant the
	// paper sketches in §V-B ("it could look for other available nodes and
	// compute them") — measuring the early-starts vs queue-overhead trade.
	for _, name := range []string{sched.NameSleep, sched.NameSleepScan} {
		session, g, err := graph.BuildDJStar(opts.graphConfig())
		if err != nil {
			return nil, err
		}
		plan, err := g.Compile()
		if err != nil {
			return nil, err
		}
		s, err := sched.New(name, plan, sched.Options{Threads: opts.MaxThreads})
		if err != nil {
			return nil, err
		}
		sum := stats.NewSummary()
		for c := 0; c < opts.Cycles; c++ {
			session.Prepare()
			start := nowMS()
			s.Execute()
			sum.Add(nowMS() - start)
		}
		s.Close()
		res.MeanMS[name] = sum.Mean()
		rows = append(rows, []string{name, fmt.Sprintf("%.4f", sum.Mean()), "-", "-"})
	}

	fprintf(opts.Out, "§V-B/§V-C ablation: scheduling design choices (%d cycles, %d threads)\n",
		opts.Cycles, opts.MaxThreads)
	fprintf(opts.Out, "%s\n", stats.RenderTable(
		[]string{"variant", "mean ms", "steals", "parks"}, rows))
	return res, nil
}
