package exp

import (
	"djstar/internal/engine"
	"djstar/internal/obs"
)

// CritPathRow is one strategy's measured-vs-bound comparison.
type CritPathRow struct {
	Strategy string
	Threads  int
	// MeasuredUS is the mean measured graph execution time.
	MeasuredUS float64
	// CritPathUS is the critical path under the run's measured node means.
	CritPathUS float64
	// BoundUS is the RESCON-style lower bound max(CP, work/threads).
	BoundUS float64
	// Efficiency is BoundUS / MeasuredUS (1.0 = optimal schedule).
	Efficiency float64
}

// CritPathResult is the R3 efficiency table: how close each online
// strategy comes to the schedule-theoretic lower bound of its own run.
type CritPathResult struct {
	// Path is the critical path of the busy-wait run (the arms differ
	// only by measurement noise across strategies).
	Path obs.PathStat
	Rows []CritPathRow
}

// CritPath measures every parallel strategy with the always-on collector
// and compares the mean graph time against the critical-path bound
// computed from that same run's measured node means — the experiment
// behind EXPERIMENTS.md R3. The invariant CP ≤ Bound ≤ measured is also
// what cmd/djanalyze -graph and the property tests check.
func CritPath(o Options) (*CritPathResult, error) {
	o.normalize()
	res := &CritPathResult{}
	fprintf(o.Out, "Schedule efficiency against the critical-path bound (%d cycles, scale %.2f, %d threads)\n\n",
		o.Cycles, o.Scale, o.MaxThreads)
	fprintf(o.Out, "  %-10s %12s %12s %12s %11s\n", "strategy", "measured µs", "critpath µs", "bound µs", "efficiency")
	for _, name := range ParallelStrategies {
		cfg := engine.Config{
			Graph:     o.graphConfig(),
			Strategy:  name,
			Threads:   o.MaxThreads,
			DisableGC: o.Scale >= 0.5,
		}
		e, err := engine.New(cfg)
		if err != nil {
			return nil, err
		}
		for i := 0; i < min(o.Cycles/10+1, 200); i++ {
			e.Cycle(nil)
		}
		m := e.RunCycles(o.Cycles)
		ps, ok := e.CriticalPath()
		e.Close()
		if !ok {
			continue
		}
		row := CritPathRow{
			Strategy:   name,
			Threads:    o.MaxThreads,
			MeasuredUS: m.Graph.Mean() * 1e3,
			CritPathUS: ps.LengthUS,
			BoundUS:    ps.Bound(o.MaxThreads),
			Efficiency: ps.Efficiency(m.Graph.Mean()*1e3, o.MaxThreads),
		}
		res.Rows = append(res.Rows, row)
		if name == ParallelStrategies[0] {
			res.Path = ps
		}
		fprintf(o.Out, "  %-10s %12.1f %12.1f %12.1f %10.1f%%\n",
			row.Strategy, row.MeasuredUS, row.CritPathUS, row.BoundUS, 100*row.Efficiency)
	}
	fprintf(o.Out, "\ncritical path (busy-wait run): %s\n", res.Path.String())
	fprintf(o.Out, "parallelism (work / critical path): %.2f\n\n", res.Path.Parallelism)
	return res, nil
}

// ObsOverheadResult is the observability overhead A/B measurement.
type ObsOverheadResult struct {
	// OnMS / OffMS are mean APC times with the collector enabled at the
	// default sampling rate and fully disabled.
	OnMS, OffMS float64
	// Ratio is OnMS / OffMS (1.0 = free; the acceptance bar is < 1.02).
	Ratio float64
}

// ObsOverhead measures the cost of the always-on collector: two otherwise
// identical busy-wait runs, one with the collector at default sampling
// and one with Obs.Disable. CI gates on the same A/B through
// BenchmarkObsOverhead and scripts/check_obs_overhead.sh.
func ObsOverhead(o Options) (*ObsOverheadResult, error) {
	o.normalize()
	run := func(disable bool) (float64, error) {
		cfg := engine.Config{
			Graph:     o.graphConfig(),
			Strategy:  ParallelStrategies[0],
			Threads:   o.MaxThreads,
			DisableGC: o.Scale >= 0.5,
			Obs:       engine.ObsOptions{Disable: disable},
		}
		e, err := engine.New(cfg)
		if err != nil {
			return 0, err
		}
		defer e.Close()
		for i := 0; i < min(o.Cycles/10+1, 200); i++ {
			e.Cycle(nil)
		}
		return e.RunCycles(o.Cycles).APC.Mean(), nil
	}
	// Interleave off/on to share thermal and frequency conditions.
	off, err := run(true)
	if err != nil {
		return nil, err
	}
	on, err := run(false)
	if err != nil {
		return nil, err
	}
	res := &ObsOverheadResult{OnMS: on, OffMS: off, Ratio: on / off}
	fprintf(o.Out, "Observability overhead (%d cycles, busy-wait, %d threads)\n\n", o.Cycles, o.MaxThreads)
	fprintf(o.Out, "  collector off: %.4f ms mean APC\n", res.OffMS)
	fprintf(o.Out, "  collector on:  %.4f ms mean APC\n", res.OnMS)
	fprintf(o.Out, "  ratio:         %.4f (acceptance: < 1.02)\n\n", res.Ratio)
	return res, nil
}
