package exp

import (
	"fmt"
	"time"

	"djstar/internal/graph"
	"djstar/internal/sched"
	"djstar/internal/stats"
)

// Fusion measures per-cycle scheduling overhead with and without chain
// fusion. The workload is a spin-cycle benchmark graph shaped like the
// overhead-dominated part of DJ Star — long linear FX chains per deck
// feeding a mixer tail — with near-zero node cost, so the measured
// ns/node is almost pure scheduler machinery: claim, dependency release,
// wake-up. Fusion collapses each chain into a handful of fused units;
// the drop in ns/node is the per-hop handshake the fused hops no longer
// pay. Every parallel strategy is measured; ns/node is normalized by the
// ORIGINAL node count in both columns so the two are directly
// comparable.

// FusionRow is one strategy's fused-vs-unfused measurement.
type FusionRow struct {
	Strategy string
	Threads  int
	// OffNSPerNode / OnNSPerNode are mean per-cycle scheduling costs in
	// ns per original node, fusion off / on.
	OffNSPerNode float64
	OnNSPerNode  float64
	// Speedup is Off/On (>1 means fusion helped).
	Speedup float64
}

// FusionResult is the structured outcome of the fusion experiment.
type FusionResult struct {
	// Nodes / FusedNodes are the plan sizes before and after fusion;
	// FusedUnits counts multi-member units.
	Nodes      int
	FusedNodes int
	FusedUnits int
	Threads    int
	Cycles     int
	Rows       []FusionRow
}

// fusionGraphSpec shapes the spin-cycle benchmark graph.
const (
	fusionChains   = 8  // parallel FX chains (two per deck section)
	fusionChainLen = 12 // nodes per chain
	fusionSpinUnit = 2  // per-node work: ~a dozen ns, overhead-dominated
)

// fusionBenchGraph builds the spin-cycle benchmark graph: fusionChains
// linear same-kind chains (sources spread across the deck sections for
// WS seeding), all feeding a mixer node and a short master tail.
func fusionBenchGraph() (*graph.Graph, error) {
	g := graph.New()
	var tails []int
	for c := 0; c < fusionChains; c++ {
		sec := graph.DeckSection(c % 4)
		prev := -1
		for i := 0; i < fusionChainLen; i++ {
			id := g.AddNode(fmt.Sprintf("C%dN%d", c, i), sec, func() { graph.Spin(fusionSpinUnit) })
			g.Node(id).Kind = graph.KindFX
			if prev >= 0 {
				if err := g.AddEdge(prev, id); err != nil {
					return nil, err
				}
			}
			prev = id
		}
		tails = append(tails, prev)
	}
	mix := g.AddNode("Mix", graph.SectionMaster, func() { graph.Spin(fusionSpinUnit) })
	for _, t := range tails {
		if err := g.AddEdge(t, mix); err != nil {
			return nil, err
		}
	}
	limiter := g.AddNode("Limiter", graph.SectionMaster, func() { graph.Spin(fusionSpinUnit) })
	out := g.AddNode("Out", graph.SectionMaster, func() { graph.Spin(fusionSpinUnit) })
	if err := g.AddEdge(mix, limiter); err != nil {
		return nil, err
	}
	if err := g.AddEdge(limiter, out); err != nil {
		return nil, err
	}
	return g, nil
}

// fusionStrategies are measured in presentation order: the paper's
// parallel strategies plus the two extra executors.
var fusionStrategies = []string{
	sched.NameBusyWait, sched.NameStatic, sched.NameWorkSteal,
	sched.NameSleep, sched.NameSleepScan,
}

// measureNSPerNode runs cycles iterations of p under one strategy and
// returns the mean per-cycle cost in ns, divided by baseNodes.
func measureNSPerNode(strategy string, p *graph.Plan, threads, cycles, baseNodes int) (float64, error) {
	s, err := sched.New(strategy, p, sched.Options{Threads: threads})
	if err != nil {
		return 0, err
	}
	defer s.Close()
	warm := min(cycles/10+1, 200)
	for i := 0; i < warm; i++ {
		s.Execute()
	}
	t0 := time.Now()
	for i := 0; i < cycles; i++ {
		s.Execute()
	}
	dt := time.Since(t0)
	return float64(dt.Nanoseconds()) / float64(cycles) / float64(baseNodes), nil
}

// Fusion runs the chain-fusion overhead experiment (EXPERIMENTS.md R5).
func Fusion(o Options) (*FusionResult, error) {
	o.normalize()
	g, err := fusionBenchGraph()
	if err != nil {
		return nil, err
	}
	plan, err := g.Compile()
	if err != nil {
		return nil, err
	}
	// Shape-only fusion (unit costs, uncapped): each 12-node chain
	// collapses into ⌈12/8⌉ = 2 units, the mixer tail into one.
	fused, err := graph.Fuse(plan, nil, graph.FuseOptions{MaxCostUS: 1e12})
	if err != nil {
		return nil, err
	}

	res := &FusionResult{
		Nodes:      plan.Len(),
		FusedNodes: fused.Len(),
		FusedUnits: fused.FusedUnits(),
		Threads:    o.MaxThreads,
		Cycles:     o.Cycles,
	}
	fprintf(o.Out, "spin-cycle benchmark graph: %d nodes -> %d fused (%d multi-member units), %d chains x %d, %d threads, %d cycles\n\n",
		res.Nodes, res.FusedNodes, res.FusedUnits, fusionChains, fusionChainLen, res.Threads, res.Cycles)

	var rows [][]string
	for _, name := range fusionStrategies {
		off, err := measureNSPerNode(name, plan, o.MaxThreads, o.Cycles, plan.Len())
		if err != nil {
			return nil, err
		}
		on, err := measureNSPerNode(name, fused, o.MaxThreads, o.Cycles, plan.Len())
		if err != nil {
			return nil, err
		}
		row := FusionRow{
			Strategy:     name,
			Threads:      o.MaxThreads,
			OffNSPerNode: off,
			OnNSPerNode:  on,
			Speedup:      off / on,
		}
		res.Rows = append(res.Rows, row)
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.0f", row.OffNSPerNode),
			fmt.Sprintf("%.0f", row.OnNSPerNode),
			fmt.Sprintf("%.2fx", row.Speedup),
		})
	}
	fprintf(o.Out, "%s", stats.RenderTable(
		[]string{"strategy", "ns/node off", "ns/node on", "speedup"}, rows))
	fprintf(o.Out, "\nns/node = mean per-cycle scheduling cost over the %d original nodes; node work is ~constant, so the delta is pure scheduler overhead\n", res.Nodes)
	return res, nil
}
