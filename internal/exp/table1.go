package exp

import (
	"fmt"

	"djstar/internal/sched"
	"djstar/internal/stats"
)

// Table1Result holds the average task-graph response times (paper Table I)
// plus the sequential baseline used for the speedup figure.
type Table1Result struct {
	// SeqMeanMS is the sequential (1-thread FIFO queue) mean graph time.
	SeqMeanMS float64
	// MeanMS[strategy][t] is the mean graph time with t+1 threads.
	MeanMS map[string][]float64
	// Threads lists the evaluated thread counts (1..MaxThreads).
	Threads []int
}

// Speedup returns the strategy's speedup over sequential at the given
// thread count.
func (r *Table1Result) Speedup(strategy string, threads int) float64 {
	cells := r.MeanMS[strategy]
	for i, t := range r.Threads {
		if t == threads && i < len(cells) && cells[i] > 0 {
			return r.SeqMeanMS / cells[i]
		}
	}
	return 0
}

// Table1 reproduces Table I: average task-graph response times in
// milliseconds for BUSY, SLEEP and WS across 1..MaxThreads threads, over
// Cycles iterations each.
func Table1(opts Options) (*Table1Result, error) {
	opts.normalize()
	res := &Table1Result{MeanMS: map[string][]float64{}}
	for t := 1; t <= opts.MaxThreads; t++ {
		res.Threads = append(res.Threads, t)
	}

	seq, err := opts.runEngine(sched.NameSequential, 1, false)
	if err != nil {
		return nil, err
	}
	res.SeqMeanMS = seq.Graph.Mean()

	for _, name := range ParallelStrategies {
		for _, t := range res.Threads {
			m, err := opts.runEngine(name, t, false)
			if err != nil {
				return nil, err
			}
			res.MeanMS[name] = append(res.MeanMS[name], m.Graph.Mean())
		}
	}

	// Render the table in the paper's layout.
	header := []string{"Threads"}
	for _, t := range res.Threads {
		header = append(header, fmt.Sprintf("%d", t))
	}
	var rows [][]string
	display := map[string]string{
		sched.NameBusyWait: "BUSY", sched.NameSleep: "SLEEP", sched.NameWorkSteal: "WS",
	}
	for _, name := range ParallelStrategies {
		row := []string{display[name]}
		for _, v := range res.MeanMS[name] {
			row = append(row, fmt.Sprintf("%.4f", v))
		}
		rows = append(rows, row)
	}
	fprintf(opts.Out, "Table I: task graph average response times (ms), %d cycles\n", opts.Cycles)
	fprintf(opts.Out, "(sequential baseline: %.4f ms)\n", res.SeqMeanMS)
	fprintf(opts.Out, "%s\n", stats.RenderTable(header, rows))
	return res, nil
}

// Fig8Result holds the speedup curves of Fig. 8.
type Fig8Result struct {
	Table *Table1Result
}

// Fig8 reproduces Fig. 8: speedup of each strategy over the sequential
// execution for 1..MaxThreads threads (paper: up to 2.4 at four threads).
func Fig8(opts Options) (*Fig8Result, error) {
	opts.normalize()
	t1, err := Table1(opts)
	if err != nil {
		return nil, err
	}
	header := []string{"Threads"}
	for _, t := range t1.Threads {
		header = append(header, fmt.Sprintf("%d", t))
	}
	var rows [][]string
	for _, name := range ParallelStrategies {
		row := []string{name}
		for _, t := range t1.Threads {
			row = append(row, fmt.Sprintf("%.2f", t1.Speedup(name, t)))
		}
		rows = append(rows, row)
	}
	fprintf(opts.Out, "Fig. 8: speedup over sequential execution\n")
	fprintf(opts.Out, "%s\n", stats.RenderTable(header, rows))
	return &Fig8Result{Table: t1}, nil
}
