package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestMultiSessionShape(t *testing.T) {
	var buf bytes.Buffer
	res, err := MultiSession(quickOpts(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sessions) != 3 || res.Sessions[2] != 4 {
		t.Fatalf("sessions %v, want [1 2 4]", res.Sessions)
	}
	if res.SingleMS <= 0 {
		t.Fatalf("single-session baseline %v", res.SingleMS)
	}
	for i, v := range res.GraphMeanMS {
		if v <= 0 {
			t.Fatalf("row %d mean %v", i, v)
		}
		if res.GraphMaxMS[i] < v {
			t.Fatalf("row %d max %v < mean %v", i, res.GraphMaxMS[i], v)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "multi-session") || !strings.Contains(out, "sessions") {
		t.Fatalf("report missing content:\n%s", out)
	}
}
