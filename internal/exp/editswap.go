package exp

import (
	"fmt"
	"time"

	"djstar/internal/engine"
	"djstar/internal/graph"
	"djstar/internal/sched"
	"djstar/internal/stats"
)

// EditSwap measures the latency cost of a live topology edit
// (EXPERIMENTS.md R6): the paper's motivation is that "DJs often change
// effects or mixer parameters during their live performances" — this
// experiment changes the GRAPH itself mid-run and asks what the cycle
// that adopts the new plan costs relative to steady state. Each strategy
// runs the full DJ Star engine; a live delay chain is repeatedly
// inserted into and excised from a playing deck's signal path, and the
// duration of every cycle is recorded, split by whether that cycle
// adopted a staged swap (epoch advanced) or ran steady state. The
// headline number is the boundary-cycle p99 against the steady p99 —
// live editing is free exactly when the two are within noise of each
// other.

// EditSwapRow is one strategy's swap-boundary measurement.
type EditSwapRow struct {
	Strategy string
	Threads  int
	// Swaps is the number of adopted topology edits.
	Swaps int
	// SteadyP50US/SteadyP99US summarize non-boundary cycles (µs).
	SteadyP50US float64
	SteadyP99US float64
	// BoundaryP50US/BoundaryP99US/BoundaryMaxUS summarize the cycles
	// that adopted a staged swap.
	BoundaryP50US float64
	BoundaryP99US float64
	BoundaryMaxUS float64
	// P99Ratio is BoundaryP99US / SteadyP99US.
	P99Ratio float64
	// Misses counts deadline misses over the whole editing phase.
	Misses int64
}

// EditSwapResult is the structured outcome of the R6 experiment.
type EditSwapResult struct {
	Cycles    int
	SwapEvery int
	Rows      []EditSwapRow
}

// editSwapStrategies: the paper's parallel strategies, the two extra
// executors, and a pool-backed session — every configuration ApplyEdits
// supports.
var editSwapStrategies = []string{
	sched.NameBusyWait, sched.NameSleep, sched.NameWorkSteal,
	sched.NameSleepScan, sched.NameStatic, sched.NamePool,
}

// editSwapRun measures one strategy: steady warmup, then o.Cycles cycles
// with a patch staged every swapEvery cycles (alternating insert/remove
// so the graph oscillates between N and N+2 nodes).
func editSwapRun(name string, o Options, swapEvery int) (EditSwapRow, error) {
	gc := graph.DefaultConfig()
	gc.TrackBars = o.TrackBars
	threads := o.MaxThreads
	e, err := engine.New(engine.Config{
		Graph: gc, Strategy: name, Threads: threads,
		// Full-scale runs measure without GC noise, like the other latency
		// experiments: a GC assist landing on the one cycle that adopts a
		// swap would be indistinguishable from real adoption cost.
		DisableGC: o.Scale >= 0.5,
	})
	if err != nil {
		return EditSwapRow{}, err
	}
	defer e.Close()

	warm := min(o.Cycles/10+1, 500)
	for i := 0; i < warm; i++ {
		e.Cycle(nil)
	}

	var steady, boundary []float64
	var misses int64
	insert := true
	for i := 0; i < o.Cycles; i++ {
		if i%swapEvery == swapEvery-1 {
			spec := "insert-delay:B:2"
			if !insert {
				spec = "remove-delay:B"
			}
			insert = !insert
			if err := e.ApplyPatch(spec); err != nil {
				return EditSwapRow{}, fmt.Errorf("%s: %s: %w", name, spec, err)
			}
		}
		epochBefore := e.PlanEpoch()
		t0 := time.Now()
		e.Cycle(nil)
		us := float64(time.Since(t0).Nanoseconds()) / 1e3
		if us > engine.DeadlineMS*1e3 {
			misses++
		}
		if e.PlanEpoch() != epochBefore {
			boundary = append(boundary, us)
		} else {
			steady = append(steady, us)
		}
	}
	if len(boundary) == 0 {
		return EditSwapRow{}, fmt.Errorf("%s: no swap was adopted", name)
	}
	sp := stats.Percentiles(steady, 0.50, 0.99)
	bp := stats.Percentiles(boundary, 0.50, 0.99, 1.0)
	return EditSwapRow{
		Strategy:      name,
		Threads:       threads,
		Swaps:         len(boundary),
		SteadyP50US:   sp[0],
		SteadyP99US:   sp[1],
		BoundaryP50US: bp[0],
		BoundaryP99US: bp[1],
		BoundaryMaxUS: bp[2],
		P99Ratio:      bp[1] / sp[1],
		Misses:        misses,
	}, nil
}

// EditSwap runs the live-edit swap-boundary latency experiment (R6).
func EditSwap(o Options) (*EditSwapResult, error) {
	o.normalize()
	swapEvery := 50
	if o.Cycles < 500 {
		swapEvery = 20
	}
	res := &EditSwapResult{Cycles: o.Cycles, SwapEvery: swapEvery}
	fprintf(o.Out, "live-edit swap boundary: full DJ Star graph, one insert/remove of a 2-unit delay chain every %d cycles, %d cycles per strategy\n\n",
		swapEvery, o.Cycles)

	var rows [][]string
	for _, name := range editSwapStrategies {
		row, err := editSwapRun(name, o, swapEvery)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%d", row.Swaps),
			fmt.Sprintf("%.0f", row.SteadyP50US),
			fmt.Sprintf("%.0f", row.SteadyP99US),
			fmt.Sprintf("%.0f", row.BoundaryP50US),
			fmt.Sprintf("%.0f", row.BoundaryP99US),
			fmt.Sprintf("%.0f", row.BoundaryMaxUS),
			fmt.Sprintf("%.2fx", row.P99Ratio),
			fmt.Sprintf("%d", row.Misses),
		})
	}
	fprintf(o.Out, "%s", stats.RenderTable(
		[]string{"strategy", "swaps", "steady p50", "steady p99",
			"swap p50", "swap p99", "swap max", "p99 ratio", "misses"}, rows))
	fprintf(o.Out, "\nall times µs per cycle; 'swap' rows are the cycles that adopted a staged topology edit (state migration + scheduler replan + collector swap included)\n")
	return res, nil
}
