package exp

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"djstar/internal/sched"
)

// quickOpts returns small but meaningful settings for tests.
func quickOpts(buf *bytes.Buffer) Options {
	o := Quick(buf)
	o.Cycles = 120
	return o
}

// multicore reports whether wall-clock speedup assertions make sense on
// this host. On a single-core machine the parallel strategies measure
// scheduling overhead, not speedup (see EXPERIMENTS.md).
func multicore() bool { return runtime.NumCPU() >= 4 }

func TestCalibSingleton(t *testing.T) {
	a := Calib()
	b := Calib()
	if a != b {
		t.Fatal("Calib not cached")
	}
	if a.NanosPerUnit <= 0 {
		t.Fatalf("calibration %v", a)
	}
}

func TestTable1Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := Table1(quickOpts(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if res.SeqMeanMS <= 0 {
		t.Fatalf("seq mean %v", res.SeqMeanMS)
	}
	if len(res.Threads) != 4 {
		t.Fatalf("threads %v", res.Threads)
	}
	for _, name := range ParallelStrategies {
		if len(res.MeanMS[name]) != 4 {
			t.Fatalf("%s has %d cells", name, len(res.MeanMS[name]))
		}
		for i, v := range res.MeanMS[name] {
			if v <= 0 {
				t.Fatalf("%s cell %d = %v", name, i, v)
			}
		}
	}
	out := buf.String()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "BUSY") {
		t.Fatalf("report missing content:\n%s", out)
	}
	if multicore() {
		if sp := res.Speedup(sched.NameBusyWait, 4); sp < 1.2 {
			t.Errorf("BUSY 4-thread speedup %.2f < 1.2 on a %d-core host",
				sp, runtime.NumCPU())
		}
	}
	if res.Speedup("nope", 4) != 0 || res.Speedup(sched.NameBusyWait, 99) != 0 {
		t.Fatal("Speedup of unknown cell should be 0")
	}
}

func TestFig8Report(t *testing.T) {
	var buf bytes.Buffer
	o := quickOpts(&buf)
	o.Cycles = 60
	res, err := Fig8(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table == nil {
		t.Fatal("missing table")
	}
	if !strings.Contains(buf.String(), "speedup") {
		t.Fatal("report missing speedup")
	}
}

func TestFig9AndFig10(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig9(quickOpts(&buf))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range ParallelStrategies {
		h := res.Hist[name]
		if h == nil || h.Total() != 120 {
			t.Fatalf("%s histogram incomplete", name)
		}
		if len(res.Samples[name]) != 120 {
			t.Fatalf("%s has %d samples", name, len(res.Samples[name]))
		}
	}
	if !strings.Contains(buf.String(), "Fig. 9") {
		t.Fatal("missing title")
	}

	buf.Reset()
	res10, err := Fig10(quickOpts(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res10.Hist) != 3 || !strings.Contains(buf.String(), "cumulative") {
		t.Fatal("Fig10 incomplete")
	}
}

func TestFig11TracesAllStrategies(t *testing.T) {
	var buf bytes.Buffer
	o := quickOpts(&buf)
	o.Cycles = 40
	res, err := Fig11(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range ParallelStrategies {
		evs := res.Events[name]
		if len(evs) != 67 {
			t.Fatalf("%s traced %d events, want 67", name, len(evs))
		}
		if res.MakespanUS[name] <= 0 {
			t.Fatalf("%s makespan %v", name, res.MakespanUS[name])
		}
	}
	if !strings.Contains(buf.String(), "schedule realization") {
		t.Fatal("missing gantt")
	}
}

func TestFig4Numbers(t *testing.T) {
	var buf bytes.Buffer
	o := Quick(&buf)
	o.Cycles = 200
	o.Scale = 1.0 // node durations must be at paper scale for §IV numbers
	res, err := Fig4(o)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 295 µs critical path, 33 processors, 324 µs on 4 cores.
	// Measured durations inflate slightly over the targets (real DSP +
	// timer overhead), so accept a generous band around the paper values.
	if res.CriticalPathUS < 250 || res.CriticalPathUS > 420 {
		t.Errorf("critical path %v µs, want ~295", res.CriticalPathUS)
	}
	if res.PeakConcurrency != 33 {
		t.Errorf("peak concurrency %d, want 33", res.PeakConcurrency)
	}
	if res.FourCoreUS < res.CriticalPathUS {
		t.Error("4-core makespan beats critical path")
	}
	if res.FourCoreUS > res.CriticalPathUS*1.35 {
		t.Errorf("4-core %v too far above critical path %v (paper: +8%%)",
			res.FourCoreUS, res.CriticalPathUS)
	}
	if res.SequentialUS < 1000 || res.SequentialUS > 1700 {
		t.Errorf("sequential work %v µs, want ~1200", res.SequentialUS)
	}
	if len(res.Profile) != 100 {
		t.Fatalf("profile %d samples", len(res.Profile))
	}
	if !strings.Contains(buf.String(), "concurrency profile") {
		t.Fatal("missing profile render")
	}
}

func TestFig12Numbers(t *testing.T) {
	var buf bytes.Buffer
	o := Quick(&buf)
	o.Cycles = 150
	o.Scale = 1.0
	res, err := Fig12(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.SimBusyUS < res.OptimalUS {
		t.Error("simulated BUSY beats optimal")
	}
	// Paper: BUSY simulation within 8 % of optimal.
	if res.SimBusyUS > res.OptimalUS*1.3 {
		t.Errorf("sim BUSY %v too far above optimal %v", res.SimBusyUS, res.OptimalUS)
	}
	if res.SimSleepUS <= res.SimBusyUS {
		t.Error("simulated SLEEP not slower than BUSY")
	}
	if res.MeasuredBusyUS < res.SimBusyUS {
		// Measured includes thread management; paper: 452 vs 327 µs. On a
		// single-core host this holds trivially.
		t.Errorf("measured BUSY %v below simulation %v", res.MeasuredBusyUS, res.SimBusyUS)
	}
	if res.Efficiency <= 0 || res.Efficiency > 1.001 {
		t.Errorf("efficiency %v", res.Efficiency)
	}
}

func TestDeadlines(t *testing.T) {
	var buf bytes.Buffer
	res, err := Deadlines(quickOpts(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 120 {
		t.Fatalf("total %d", res.Total)
	}
	for _, name := range ParallelStrategies {
		if res.WorstMS[name] <= 0 {
			t.Fatalf("%s worst %v", name, res.WorstMS[name])
		}
	}
	if !strings.Contains(buf.String(), "deadline") {
		t.Fatal("missing report")
	}
}

func TestProfileSharesAtPaperScale(t *testing.T) {
	var buf bytes.Buffer
	o := Quick(&buf)
	o.Cycles = 150
	o.Scale = 1.0
	res, err := Profile(o)
	if err != nil {
		t.Fatal(err)
	}
	// We follow the paper's §VI decomposition: TP+GP+VC ≈ 0.8 ms with the
	// sequential graph at ~1.1-1.3 ms, i.e. graph ≈ 60 % of the APC, TP
	// ≈ 10 %, GP ≈ 20 %, VC ≈ 8 %. (The §III-B percentages — 38 % graph,
	// 16 % timecode — are inconsistent with §VI's own numbers; see
	// EXPERIMENTS.md E9.)
	checks := []struct {
		comp   string
		lo, hi float64
	}{
		{"tp", 6, 16},
		{"gp", 13, 30},
		{"graph", 48, 72},
		{"vc", 4, 14},
	}
	for _, c := range checks {
		got := res.Share(c.comp)
		if got < c.lo || got > c.hi {
			t.Errorf("%s share %.1f%%, want in [%v, %v]", c.comp, got, c.lo, c.hi)
		}
	}
	if res.Share("bogus") != 0 {
		t.Fatal("unknown component share")
	}
	sum := res.TPMS + res.GPMS + res.GraphMS + res.VCMS
	if sum > res.APCMS*1.05 || sum < res.APCMS*0.9 {
		t.Errorf("components %v don't sum to APC %v", sum, res.APCMS)
	}
}

func TestThreadSweep(t *testing.T) {
	var buf bytes.Buffer
	o := quickOpts(&buf)
	o.Cycles = 40
	res, err := ThreadSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Threads) != 8 || len(res.MeanMS) != 8 {
		t.Fatalf("sweep size %d", len(res.Threads))
	}
	if !strings.Contains(buf.String(), "thread sweep") {
		t.Fatal("missing report")
	}
}

func TestAblation(t *testing.T) {
	var buf bytes.Buffer
	o := quickOpts(&buf)
	o.Cycles = 60
	res, err := Ablation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MeanMS) != 5 {
		t.Fatalf("variants %d", len(res.MeanMS))
	}
	for name, v := range res.MeanMS {
		if v <= 0 {
			t.Fatalf("%s mean %v", name, v)
		}
	}
	if !strings.Contains(buf.String(), "scheduling design") {
		t.Fatal("missing report")
	}
}

func TestStaticVsOnline(t *testing.T) {
	var buf bytes.Buffer
	o := quickOpts(&buf)
	o.Cycles = 60
	res, err := StaticVsOnline(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.StaticMS <= 0 || res.BusyMS <= 0 || res.WSMS <= 0 {
		t.Fatalf("non-positive means: %+v", res)
	}
	if !strings.Contains(buf.String(), "offline") {
		t.Fatal("missing report")
	}
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{}
	o.normalize()
	if o.Cycles != 10000 || o.MaxThreads != 4 || o.Out == nil || o.TrackBars != 16 {
		t.Fatalf("normalize gave %+v", o)
	}
	neg := Options{Scale: -3}
	neg.normalize()
	if neg.Scale != 0 {
		t.Fatal("negative scale not clamped")
	}
}

func TestDefaultsSettings(t *testing.T) {
	var buf bytes.Buffer
	o := Defaults(&buf)
	if o.Cycles != 10000 || o.Scale != 1.0 || o.MaxThreads != 4 || o.Out == nil {
		t.Fatalf("Defaults = %+v", o)
	}
}

func TestDesignSpace(t *testing.T) {
	var buf bytes.Buffer
	o := Quick(&buf)
	o.Cycles = 150
	o.Scale = 1.0
	res, err := DesignSpace(o)
	if err != nil {
		t.Fatal(err)
	}
	// The chosen approach fits the deadline...
	if res.TaskLatencyUS > res.DeadlineUS {
		t.Errorf("task scheduling latency %v exceeds deadline %v",
			res.TaskLatencyUS, res.DeadlineUS)
	}
	// ...and both rejected approaches have worse per-packet latency, with
	// data parallelism necessarily missing the deadline (arrival wait).
	if res.Pipeline.LatencyUS <= res.TaskLatencyUS {
		t.Errorf("pipeline latency %v not above task scheduling %v",
			res.Pipeline.LatencyUS, res.TaskLatencyUS)
	}
	if res.DataParallel2.LatencyUS <= res.DeadlineUS {
		t.Errorf("batch-2 latency %v should exceed one packet period %v",
			res.DataParallel2.LatencyUS, res.DeadlineUS)
	}
	if res.DataParallel4.LatencyUS <= res.DataParallel2.LatencyUS {
		t.Errorf("batch-4 latency %v not above batch-2 %v",
			res.DataParallel4.LatencyUS, res.DataParallel2.LatencyUS)
	}
	if !strings.Contains(buf.String(), "design space") {
		t.Fatal("missing report")
	}
}

func TestNodeCostsAudit(t *testing.T) {
	var buf bytes.Buffer
	o := Quick(&buf)
	o.Cycles = 200
	o.Scale = 1.0
	res, err := NodeCosts(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 67 || len(res.MeasuredUS) != 67 {
		t.Fatalf("audit covers %d nodes", len(res.Names))
	}
	// Top-up loads keep measured costs near targets; generous bound for a
	// noisy shared host.
	if res.MeanAbsErrPct > 60 {
		t.Errorf("mean deviation %.1f%%, calibration badly off", res.MeanAbsErrPct)
	}
	if !strings.Contains(buf.String(), "node cost audit") {
		t.Fatal("missing report")
	}
}

func TestWriteSamplesCSV(t *testing.T) {
	var buf bytes.Buffer
	samples := map[string][]float64{
		"busy":  {1, 2, 3},
		"sleep": {4, 5},
	}
	if err := WriteSamplesCSV(&buf, samples, []string{"busy", "sleep"}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv has %d lines, want 4", len(lines))
	}
	if lines[0] != "busy,sleep" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[3] != "3," {
		t.Fatalf("short column not padded: %q", lines[3])
	}
}

func TestWriteTable1CSV(t *testing.T) {
	res := &Table1Result{
		SeqMeanMS: 1.1,
		Threads:   []int{1, 2},
		MeanMS: map[string][]float64{
			"busy": {1.0, 0.6}, "sleep": {1.1, 0.7}, "ws": {1.2, 0.8},
		},
	}
	var buf bytes.Buffer
	if err := WriteTable1CSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"strategy", "threads_1_ms", "seq,1.1", "busy,1,0.6"} {
		if !strings.Contains(out, want) {
			t.Fatalf("csv missing %q:\n%s", want, out)
		}
	}
}
