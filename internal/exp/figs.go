package exp

import (
	"fmt"
	"sort"

	"djstar/internal/engine"
	"djstar/internal/obs"
	"djstar/internal/sched"
	"djstar/internal/stats"
)

// HistResult holds the per-strategy execution-time distributions behind
// Fig. 9 (histograms) and Fig. 10 (cumulative histograms).
type HistResult struct {
	// Hist maps strategy name to its graph-time histogram (ms).
	Hist map[string]*stats.Histogram
	// Samples keeps the raw per-cycle graph times (ms) per strategy.
	Samples map[string][]float64
}

// collectHistograms runs the three strategies at MaxThreads threads with
// sample collection and bins the results into a common range.
func collectHistograms(opts Options) (*HistResult, error) {
	res := &HistResult{
		Hist:    map[string]*stats.Histogram{},
		Samples: map[string][]float64{},
	}
	var all []float64
	metrics := map[string]*engine.Metrics{}
	for _, name := range ParallelStrategies {
		m, err := opts.runEngine(name, opts.MaxThreads, true)
		if err != nil {
			return nil, err
		}
		metrics[name] = m
		res.Samples[name] = m.GraphSamplesMS
		all = append(all, m.GraphSamplesMS...)
	}
	// Common axis: [p0.5, p99.5] of the pooled samples, padded slightly,
	// mirroring the paper's 0.2–0.8 ms axis.
	ps := stats.Percentiles(all, 0.005, 0.995)
	lo, hi := ps[0]*0.9, ps[1]*1.1
	if !(hi > lo) {
		hi = lo + 1e-6
	}
	for _, name := range ParallelStrategies {
		h := stats.MustHistogram(lo, hi, 30)
		for _, x := range res.Samples[name] {
			h.Add(x)
		}
		res.Hist[name] = h
	}
	return res, nil
}

// Fig9 reproduces Fig. 9: histograms of the task-graph execution times of
// the three scheduling strategies over Cycles iterations.
func Fig9(opts Options) (*HistResult, error) {
	opts.normalize()
	res, err := collectHistograms(opts)
	if err != nil {
		return nil, err
	}
	fprintf(opts.Out, "Fig. 9: execution time distributions (ms), %d cycles, %d threads\n\n",
		opts.Cycles, opts.MaxThreads)
	for _, name := range ParallelStrategies {
		fprintf(opts.Out, "%s\n", stats.RenderHistogram(res.Hist[name], name, 50))
	}
	return res, nil
}

// Fig10 reproduces Fig. 10: cumulative histograms of the same data.
func Fig10(opts Options) (*HistResult, error) {
	opts.normalize()
	res, err := collectHistograms(opts)
	if err != nil {
		return nil, err
	}
	fprintf(opts.Out, "Fig. 10: cumulative execution time distributions (ms)\n\n")
	for _, name := range ParallelStrategies {
		fprintf(opts.Out, "%s\n", stats.RenderCumulative(res.Hist[name], name, 50))
	}
	return res, nil
}

// Fig11Result holds one traced schedule realization per strategy.
type Fig11Result struct {
	// Events maps strategy to the traced node executions of a typical
	// (near-median) cycle.
	Events map[string][]sched.TraceEvent
	// MakespanUS maps strategy to that cycle's makespan in µs.
	MakespanUS map[string]float64
}

// Fig11 reproduces Fig. 11: typical schedule realizations of the three
// strategies with four threads. For each strategy it samples every cycle
// through the engine's observability collector (Obs.TraceEvery=1 plus the
// OnTrace hook) and reports the one whose makespan is closest to the
// strategy's median.
func Fig11(opts Options) (*Fig11Result, error) {
	opts.normalize()
	res := &Fig11Result{
		Events:     map[string][]sched.TraceEvent{},
		MakespanUS: map[string]float64{},
	}
	traceCycles := min(opts.Cycles, 400)
	for _, name := range ParallelStrategies {
		type rec struct {
			makespan int64
			events   []sched.TraceEvent
		}
		var recs []rec
		cfg := engine.Config{
			Graph:    opts.graphConfig(),
			Strategy: name,
			Threads:  opts.MaxThreads,
			Obs:      engine.ObsOptions{TraceEvery: 1, TraceRing: 1},
			Hooks: engine.Hooks{OnTrace: func(t *obs.CycleTrace) {
				// The trace buffers are reused across cycles: copy into a
				// flat event list (one entry per node, like the Tracer).
				evs := make([]sched.TraceEvent, len(t.Worker))
				for id := range t.Worker {
					evs[id] = sched.TraceEvent{
						Node:   int32(id),
						Worker: t.Worker[id],
						Start:  t.StartNS[id],
						End:    t.EndNS[id],
					}
				}
				recs = append(recs, rec{t.MakespanNS(), evs})
			}},
		}
		e, err := engine.New(cfg)
		if err != nil {
			return nil, err
		}
		for c := 0; c < traceCycles; c++ {
			e.Cycle(nil)
		}
		e.Close()

		sort.Slice(recs, func(a, b int) bool { return recs[a].makespan < recs[b].makespan })
		median := recs[len(recs)/2]
		res.Events[name] = median.events
		res.MakespanUS[name] = float64(median.makespan) / 1e3

		// Render as a Gantt chart.
		plan := e.Plan()
		var tasks []stats.GanttTask
		for _, ev := range median.events {
			if ev.Worker < 0 {
				continue
			}
			tasks = append(tasks, stats.GanttTask{
				Name:   plan.Names[ev.Node],
				Worker: int(ev.Worker),
				Start:  float64(ev.Start) / 1e3,
				End:    float64(ev.End) / 1e3,
			})
		}
		fprintf(opts.Out, "%s\n", stats.RenderGantt(tasks,
			fmt.Sprintf("Fig. 11 (%s): typical schedule realization, µs", name), 100))
	}
	return res, nil
}
