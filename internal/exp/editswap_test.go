package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestEditSwapShape(t *testing.T) {
	var buf bytes.Buffer
	o := quickOpts(&buf)
	o.Cycles = 240
	res, err := EditSwap(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(editSwapStrategies) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(editSwapStrategies))
	}
	for _, r := range res.Rows {
		if r.Swaps < 2 {
			t.Fatalf("%s: only %d swaps adopted", r.Strategy, r.Swaps)
		}
		if r.SteadyP99US <= 0 || r.BoundaryP99US <= 0 {
			t.Fatalf("%s: non-positive percentile %+v", r.Strategy, r)
		}
		if r.P99Ratio <= 0 {
			t.Fatalf("%s: bad ratio %+v", r.Strategy, r)
		}
	}
	out := buf.String()
	for _, want := range []string{"live-edit swap boundary", "p99 ratio", "swap p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
