package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestFusionShape(t *testing.T) {
	var buf bytes.Buffer
	o := quickOpts(&buf)
	o.Cycles = 200
	res, err := Fusion(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != fusionChains*fusionChainLen+3 {
		t.Fatalf("Nodes = %d", res.Nodes)
	}
	if res.FusedNodes >= res.Nodes {
		t.Fatalf("fusion did not shrink the plan: %d -> %d", res.Nodes, res.FusedNodes)
	}
	if res.FusedUnits == 0 {
		t.Fatal("no multi-member fused units")
	}
	if len(res.Rows) != len(fusionStrategies) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(fusionStrategies))
	}
	for _, r := range res.Rows {
		if r.OffNSPerNode <= 0 || r.OnNSPerNode <= 0 {
			t.Fatalf("%s: non-positive measurement %+v", r.Strategy, r)
		}
	}
	out := buf.String()
	for _, want := range []string{"spin-cycle benchmark graph", "ns/node off", "speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
