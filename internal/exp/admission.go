package exp

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"djstar/internal/admission"
	"djstar/internal/engine"
	"djstar/internal/sched"
	"djstar/internal/stats"
)

// Admission runs the deadline-aware admission-control experiment
// (EXPERIMENTS.md R7): a session-count load sweep over one shared
// worker pool, gate off vs gate on, up to one session PAST the pool's
// analytical capacity. With the gate off, every session is attached and
// the overload shows up the only way it can — as blown cycle deadlines.
// With the gate on, the same offered load is held against the
// analytical schedulability bound first: sessions the pool can carry
// are admitted (possibly degraded, meters pre-shed), the excess is
// refused with a typed error, and the admitted sessions keep their
// deadlines. After each gate-on run the bound is recomputed from the
// LIVE measured cost model and printed beside the measured p95/p99 of
// every admitted session — the falsifiability contract: measured p95
// must stay below bound, bound must stay below the envelope.

// The sweep's SLO is two-sided: every session's p95 cycle time must fit
// the period envelope, and its p99 may exceed the envelope only by the
// bounded absolute cost of a stray OS preemption
// (admissionTailTolerance ×). A lone preemption displaces one cycle by
// roughly one scheduler timeslice (~2× the envelope here); sustained
// overload queues whole sessions behind each other and pushes p99 an
// order of magnitude past the envelope — which no single preemption
// can. Raw overruns per 10k are reported for context but not judged.

// admissionMinScale keeps the experiment's cost scale high enough that
// the calibrated spin work the analysis models dominates the fixed DSP
// work it cannot see; far below this the envelope (period × scale)
// shrinks under the un-scaled DSP floor and every row overruns
// trivially, gate or no gate.
const admissionMinScale = 0.35

// admissionTailTolerance is how far past the envelope a session's p99
// may sit before the SLO is judged blown. See the SLO note above: noise
// preemptions land around 2× the envelope, genuine overload around 20×.
const admissionTailTolerance = 4.0

// AdmissionSession is one admitted session's bound-vs-measured pair.
type AdmissionSession struct {
	ID string
	// Verdict is the gate's decision ("admit" or "degraded").
	Verdict string
	// BoundUS is the session's aggregate analytical bound on the shared
	// pool, recomputed from the live measured cost model after the run;
	// MeasuredP95US / MeasuredP99US are what the run actually showed.
	// The bound is falsified whenever measured p95 > bound — p95 for the
	// same reason djanalyze -admit judges it: the bound models the
	// schedule, not OS preemptions, and at a few hundred samples p99 is
	// just the worst couple of preemptions.
	BoundUS       float64
	MeasuredP95US float64
	MeasuredP99US float64
}

// AdmissionRow is one (sessions, gate) cell of the load sweep.
type AdmissionRow struct {
	Sessions int
	// Gate is "off" or "on".
	Gate string
	// Admitted/Degraded/Refused count the gate's verdicts (gate off:
	// everything is admitted).
	Admitted int
	Degraded int
	Refused  int
	// WorstP99US / WorstP95US are the worst per-session p99 and p95
	// cycle times (µs).
	WorstP99US float64
	WorstP95US float64
	// MaxBoundUS is the largest admitted session's live aggregate bound
	// after the run (gate on only).
	MaxBoundUS float64
	// OverrunsPer10k is the rate of cycles exceeding the period envelope
	// (context only; the SLO is judged on p95).
	OverrunsPer10k float64
	// SLOOK is WorstP95US <= the period envelope AND WorstP99US <=
	// admissionTailTolerance × the envelope. p95 alone misses overload
	// that shows up as a few enormous queued cycles; p99 alone is blown
	// by a single OS preemption, which no amount of admission control
	// prevents. The pair separates the two.
	SLOOK bool
	// Admittees are the sessions' individual bound-vs-measured pairs
	// (gate on only).
	Admittees []AdmissionSession
}

// AdmissionResult is the structured outcome of the R7 experiment.
type AdmissionResult struct {
	// PeriodUS is the deadline envelope used (the 2.902 ms packet period
	// at the experiment's cost scale).
	PeriodUS float64
	// Workers is the shared pool's helper worker count.
	Workers int
	// Capacity is the analytical session capacity of the pool: the
	// largest count the static aggregate bound admits. The sweep runs to
	// Capacity+1, so the gate always has something to refuse.
	Capacity int
	Rows     []AdmissionRow
	// KneeSessions is the first session count whose gate-off row blows
	// the SLO — the knee the gate exists to refuse.
	KneeSessions int
	// BoundViolations counts admitted sessions whose measured p95
	// exceeded their live analytical bound (falsifications; should be 0).
	BoundViolations int
}

// Admission runs the R7 load sweep.
func Admission(o Options) (*AdmissionResult, error) {
	o.normalize()
	if o.Scale < admissionMinScale {
		fprintf(o.Out, "(scale raised to %.2f: the analytical envelope scales with node costs and must dominate the fixed DSP work)\n",
			admissionMinScale)
		o.Scale = admissionMinScale
	}
	workers := o.MaxThreads - 1
	if workers < 1 {
		workers = 1
	}
	// The envelope is the paper's 2.902 ms packet period at the
	// experiment's cost scale, so the sweep crosses it at any scale.
	periodUS := admission.DefaultPeriodUS * o.Scale
	acfg := admission.Config{PeriodUS: periodUS}

	rep, err := admissionStaticReport(o, workers, acfg)
	if err != nil {
		return nil, err
	}
	procs := workers + 1
	if p := runtime.GOMAXPROCS(0); procs > p {
		procs = p
	}
	capacity := admissionCapacity(rep, procs, acfg)
	res := &AdmissionResult{PeriodUS: periodUS, Workers: workers, Capacity: capacity}

	fprintf(o.Out, "admission-gated shared pool: %d helper workers (%d effective processors), envelope %.0f µs = packet period × scale %.2f, analytical capacity %d sessions, SLO: p95 within envelope and p99 within %.0fx\n\n",
		workers, procs, periodUS, o.Scale, capacity, admissionTailTolerance)

	var rows [][]string
	for _, k := range admissionSweep(capacity) {
		// Gate OFF: attach everything, let the deadline misses tell the
		// story.
		off, err := engine.NewMulti(engine.Config{Graph: o.graphConfig()}, k, workers)
		if err != nil {
			return nil, fmt.Errorf("admission: gate-off %d sessions: %w", k, err)
		}
		p95s, p99s, over := admissionDrive(off.Engines(), o.Cycles, periodUS)
		off.Close()
		row := AdmissionRow{Sessions: k, Gate: "off", Admitted: k}
		for i := range p99s {
			row.WorstP99US = max(row.WorstP99US, p99s[i])
			row.WorstP95US = max(row.WorstP95US, p95s[i])
		}
		row.OverrunsPer10k = float64(over) / float64(k*o.Cycles) * 1e4
		row.SLOOK = admissionSLOOK(row.WorstP95US, row.WorstP99US, periodUS)
		if !row.SLOOK && res.KneeSessions == 0 {
			res.KneeSessions = k
		}
		res.Rows = append(res.Rows, row)
		rows = append(rows, admissionTableRow(row))

		// Gate ON: the same offered load through the analytical front door.
		onRow, err := admissionGateOn(o, k, workers, acfg, periodUS)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, *onRow)
		rows = append(rows, admissionTableRow(*onRow))
		for _, s := range onRow.Admittees {
			if s.MeasuredP95US > s.BoundUS {
				res.BoundViolations++
			}
		}
	}

	fprintf(o.Out, "%s", stats.RenderTable(
		[]string{"sessions", "gate", "admit", "degr", "refuse",
			"worst p95 µs", "worst p99 µs", "max bound µs", "over/10k", "SLO"}, rows))
	if res.KneeSessions > 0 {
		fprintf(o.Out, "\nknee at %d sessions: gate off blows the SLO there; gate on refuses or degrades the excess instead\n",
			res.KneeSessions)
	} else {
		fprintf(o.Out, "\nno gate-off SLO violation observed (machine has headroom past the analytical capacity)\n")
	}
	fprintf(o.Out, "bound-vs-measured (admitted sessions, gate on, live measured-cost bounds): %d violations of measured p95 <= bound\n",
		res.BoundViolations)
	return res, nil
}

// admissionStaticReport probes the gate's own construction-time
// analysis for one pool-attached session: build a throwaway admitted
// engine with an unbounded envelope and read the report it published.
func admissionStaticReport(o Options, workers int, acfg admission.Config) (*admission.Report, error) {
	pool, err := sched.NewPool(workers, 1)
	if err != nil {
		return nil, err
	}
	defer pool.Close()
	probeCfg := acfg
	probeCfg.PeriodUS = 1e12
	e, err := engine.New(engine.Config{
		Graph: o.graphConfig(),
		Pool:  pool,
		Admission: engine.AdmissionOptions{
			Enabled: true, Config: probeCfg, PredictEvery: -1,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("admission: probe session: %w", err)
	}
	defer e.Close()
	st := e.AdmissionState()
	if st == nil || st.Report == nil {
		return nil, fmt.Errorf("admission: probe session published no report")
	}
	return st.Report, nil
}

// admissionCapacity is the number of identical sessions the aggregate
// bound admits on procs effective processors.
func admissionCapacity(rep *admission.Report, procs int, acfg admission.Config) int {
	ctl := admission.NewController(procs, acfg)
	for k := 1; k <= 1024; k++ {
		if err := ctl.TryAdmit(fmt.Sprintf("cap%d", k), rep); err != nil {
			return k - 1
		}
	}
	return 1024
}

// admissionSweep picks the session counts to measure: the single-session
// baseline, the capacity edge, and one session past it — the row the
// gate must refuse.
func admissionSweep(capacity int) []int {
	ks := []int{1}
	for _, k := range []int{capacity, capacity + 1} {
		if k > ks[len(ks)-1] {
			ks = append(ks, k)
		}
	}
	return ks
}

// admissionDrive runs every engine concurrently for cycles cycles
// (after a warmup) and returns each session's p95 and p99 cycle times
// (µs) and the total count of cycles over periodUS.
func admissionDrive(engines []*engine.Engine, cycles int, periodUS float64) ([]float64, []float64, int64) {
	warm := min(cycles/10+1, 200)
	p95s := make([]float64, len(engines))
	p99s := make([]float64, len(engines))
	overruns := make([]int64, len(engines))
	var wg sync.WaitGroup
	for i, e := range engines {
		wg.Add(1)
		go func(i int, e *engine.Engine) {
			defer wg.Done()
			for c := 0; c < warm; c++ {
				e.Cycle(nil)
			}
			durs := make([]float64, 0, cycles)
			for c := 0; c < cycles; c++ {
				t0 := time.Now()
				e.Cycle(nil)
				us := float64(time.Since(t0).Nanoseconds()) / 1e3
				durs = append(durs, us)
				if us > periodUS {
					overruns[i]++
				}
			}
			pcts := stats.Percentiles(durs, 0.95, 0.99)
			p95s[i], p99s[i] = pcts[0], pcts[1]
		}(i, e)
	}
	wg.Wait()
	var total int64
	for _, o := range overruns {
		total += o
	}
	return p95s, p99s, total
}

// admissionGateOn offers k sessions to an admission-gated pool one at a
// time, runs whatever was admitted, refreshes each session's bound from
// its live measured cost model, and reports verdicts plus each admitted
// session's bound beside its measured p99.
func admissionGateOn(o Options, k, workers int, acfg admission.Config, periodUS float64) (*AdmissionRow, error) {
	pool, err := sched.NewPool(workers, k)
	if err != nil {
		return nil, err
	}
	defer pool.Close()
	procs := workers + 1
	if p := runtime.GOMAXPROCS(0); procs > p {
		procs = p
	}
	ctl := admission.NewController(procs, acfg)

	row := &AdmissionRow{Sessions: k, Gate: "on"}
	var engines []*engine.Engine
	defer func() {
		for _, e := range engines {
			e.Close()
		}
	}()
	for i := 0; i < k; i++ {
		cfg := engine.Config{
			Graph: o.graphConfig(),
			Pool:  pool,
			Admission: engine.AdmissionOptions{
				Enabled:      true,
				Config:       acfg,
				Controller:   ctl,
				PredictEvery: -1, // bounds refreshed explicitly after the run
			},
		}
		cfg.Telemetry.Session = fmt.Sprintf("s%d", i)
		e, err := engine.New(cfg)
		switch {
		case err == nil:
			engines = append(engines, e)
			if st := e.AdmissionState(); st != nil && st.Verdict == "degraded" {
				row.Degraded++
			} else {
				row.Admitted++
			}
		case errors.Is(err, admission.ErrOverBudget):
			row.Refused++
		default:
			return nil, fmt.Errorf("admission: gate-on session %d: %w", i, err)
		}
	}

	if len(engines) > 0 {
		p95s, p99s, over := admissionDrive(engines, o.Cycles, periodUS)
		// Recompute every session's bound from the costs the run just
		// measured — the strongest falsification the formula can face —
		// then read the aggregate bounds back from the controller.
		for _, e := range engines {
			e.RefreshAdmission()
		}
		bounds := map[string]float64{}
		for _, sb := range ctl.Sessions() {
			bounds[sb.ID] = sb.BoundUS
			if sb.BoundUS > row.MaxBoundUS {
				row.MaxBoundUS = sb.BoundUS
			}
		}
		for i, e := range engines {
			if p99s[i] > row.WorstP99US {
				row.WorstP99US = p99s[i]
			}
			if p95s[i] > row.WorstP95US {
				row.WorstP95US = p95s[i]
			}
			st := e.AdmissionState()
			id := fmt.Sprintf("s%d", i)
			row.Admittees = append(row.Admittees, AdmissionSession{
				ID:            id,
				Verdict:       st.Verdict,
				BoundUS:       bounds[id],
				MeasuredP95US: p95s[i],
				MeasuredP99US: p99s[i],
			})
		}
		row.OverrunsPer10k = float64(over) / float64(len(engines)*o.Cycles) * 1e4
	}
	row.SLOOK = admissionSLOOK(row.WorstP95US, row.WorstP99US, periodUS)
	return row, nil
}

// admissionSLOOK applies the two-sided SLO: the bulk of cycles (p95)
// fits the envelope and the tail (p99) stays within the stray-preemption
// tolerance of it.
func admissionSLOOK(p95, p99, periodUS float64) bool {
	return p95 <= periodUS && p99 <= admissionTailTolerance*periodUS
}

func admissionTableRow(r AdmissionRow) []string {
	slo := "ok"
	if !r.SLOOK {
		slo = "BLOWN"
	}
	bound := "-"
	if r.MaxBoundUS > 0 {
		bound = fmt.Sprintf("%.0f", r.MaxBoundUS)
	}
	return []string{
		fmt.Sprintf("%d", r.Sessions),
		r.Gate,
		fmt.Sprintf("%d", r.Admitted),
		fmt.Sprintf("%d", r.Degraded),
		fmt.Sprintf("%d", r.Refused),
		fmt.Sprintf("%.0f", r.WorstP95US),
		fmt.Sprintf("%.0f", r.WorstP99US),
		bound,
		fmt.Sprintf("%.1f", r.OverrunsPer10k),
		slo,
	}
}
