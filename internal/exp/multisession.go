package exp

import (
	"fmt"

	"djstar/internal/engine"
	"djstar/internal/stats"
)

// MultiSessionResult holds the shared-pool scaling experiment: K
// concurrent DJ sessions executing over one worker pool, against the
// baseline of one session owning all the workers.
type MultiSessionResult struct {
	// Sessions counts per row of the sweep.
	Sessions []int
	// GraphMeanMS[i] is the mean per-cycle graph time averaged across
	// the Sessions[i] concurrent sessions.
	GraphMeanMS []float64
	// GraphMaxMS[i] is the worst per-cycle graph time across sessions.
	GraphMaxMS []float64
	// SingleMS is the one-session baseline mean.
	SingleMS float64
}

// MultiSession measures shared-pool multi-session scheduling: 1, 2 and 4
// concurrent sessions over a pool of MaxThreads-1 helper workers (every
// session's driving goroutine participates too, so hardware parallelism
// matches the single-engine strategies). It answers the capacity
// question the paper's single-app setting never poses: how does
// per-session graph time degrade as sessions share the workers?
func MultiSession(opts Options) (*MultiSessionResult, error) {
	opts.normalize()
	res := &MultiSessionResult{}
	cfg := engine.Config{
		Graph: opts.graphConfig(),
	}
	var rows [][]string
	for _, sessions := range []int{1, 2, 4} {
		m, err := engine.NewMulti(cfg, sessions, opts.MaxThreads-1)
		if err != nil {
			return nil, err
		}
		// Warm-up fills delay lines and faults in per-session memory.
		for _, e := range m.Engines() {
			for i := 0; i < min(opts.Cycles/10+1, 200); i++ {
				e.Cycle(nil)
			}
		}
		metrics := m.RunCyclesConcurrent(opts.Cycles)
		m.Close()

		mean, worst := 0.0, 0.0
		for _, mm := range metrics {
			mean += mm.Graph.Mean()
			if mm.Graph.Max() > worst {
				worst = mm.Graph.Max()
			}
		}
		mean /= float64(len(metrics))
		res.Sessions = append(res.Sessions, sessions)
		res.GraphMeanMS = append(res.GraphMeanMS, mean)
		res.GraphMaxMS = append(res.GraphMaxMS, worst)
		if sessions == 1 {
			res.SingleMS = mean
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", sessions),
			fmt.Sprintf("%.4f", mean),
			fmt.Sprintf("%.4f", worst),
			fmt.Sprintf("%.2fx", mean/res.SingleMS),
		})
	}
	fprintf(opts.Out, "shared-pool multi-session scaling (%d helper workers + 1 caller per session)\n",
		opts.MaxThreads-1)
	fprintf(opts.Out, "%s", stats.RenderTable(
		[]string{"sessions", "mean graph ms", "worst ms", "vs 1 session"}, rows))
	fprintf(opts.Out, "per-session cycles stay serialized; sessions share one pinned worker pool\n\n")
	return res, nil
}
