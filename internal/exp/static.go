package exp

import (
	"fmt"

	"djstar/internal/engine"
	"djstar/internal/graph"
	"djstar/internal/rescon"
	"djstar/internal/sched"
	"djstar/internal/stats"
)

// StaticResult compares offline (MCFlow-style) scheduling against the
// paper's online strategies.
type StaticResult struct {
	// StaticMS is the mean graph time of the offline executor whose
	// assignment comes from a list schedule over *average* durations.
	StaticMS float64
	// BusyMS and WSMS are the online references.
	BusyMS float64
	WSMS   float64
	// StaticWorstMS vs BusyWorstMS expose the tail behaviour, where the
	// inability of the static assignment to adapt to data-dependent node
	// costs shows up first.
	StaticWorstMS float64
	BusyWorstMS   float64
}

// StaticVsOnline implements the paper's related-work comparison (§VII):
// MCFlow takes scheduling decisions offline, while DJ Star schedules
// online "because the work is very imbalanced and a static procedure
// cannot take this into account". We compute an offline 4-core list
// schedule from measured average node durations, replay it with the
// Static executor, and compare against BUSY and WS on the same workload.
func StaticVsOnline(opts Options) (*StaticResult, error) {
	opts.normalize()

	// Offline phase: average durations -> list schedule -> worker lists.
	durs, _, err := engine.MeasureNodeDurations(opts.graphConfig(), min(opts.Cycles, 500))
	if err != nil {
		return nil, err
	}

	run := func(build func(p *graph.Plan) (sched.Scheduler, error)) (*stats.Summary, error) {
		session, g, err := graph.BuildDJStar(opts.graphConfig())
		if err != nil {
			return nil, err
		}
		plan, err := g.Compile()
		if err != nil {
			return nil, err
		}
		s, err := build(plan)
		if err != nil {
			return nil, err
		}
		defer s.Close()
		sum := stats.NewSummary()
		for c := 0; c < opts.Cycles; c++ {
			session.Prepare()
			start := nowMS()
			s.Execute()
			sum.Add(nowMS() - start)
		}
		return sum, nil
	}

	staticSum, err := run(func(p *graph.Plan) (sched.Scheduler, error) {
		model, err := rescon.FromPlan(p, durs)
		if err != nil {
			return nil, err
		}
		schedule, err := model.ListSchedule(opts.MaxThreads)
		if err != nil {
			return nil, err
		}
		lists, err := sched.FromScheduleOrder(p, schedule.Proc, schedule.Start, opts.MaxThreads)
		if err != nil {
			return nil, err
		}
		return sched.NewStatic(p, lists, sched.Options{})
	})
	if err != nil {
		return nil, err
	}
	busySum, err := run(func(p *graph.Plan) (sched.Scheduler, error) {
		return sched.NewBusyWait(p, sched.Options{Threads: opts.MaxThreads})
	})
	if err != nil {
		return nil, err
	}
	wsSum, err := run(func(p *graph.Plan) (sched.Scheduler, error) {
		return sched.NewWorkSteal(p, sched.Options{Threads: opts.MaxThreads})
	})
	if err != nil {
		return nil, err
	}

	res := &StaticResult{
		StaticMS:      staticSum.Mean(),
		BusyMS:        busySum.Mean(),
		WSMS:          wsSum.Mean(),
		StaticWorstMS: staticSum.Max(),
		BusyWorstMS:   busySum.Max(),
	}
	fprintf(opts.Out, "§VII extension: offline (MCFlow-style) vs online scheduling (%d cycles, %d threads)\n",
		opts.Cycles, opts.MaxThreads)
	fprintf(opts.Out, "%s\n", stats.RenderTable(
		[]string{"executor", "mean ms", "worst ms"},
		[][]string{
			{"static offline list schedule", fmt.Sprintf("%.4f", res.StaticMS), fmt.Sprintf("%.4f", res.StaticWorstMS)},
			{"busy-wait (online)", fmt.Sprintf("%.4f", res.BusyMS), fmt.Sprintf("%.4f", res.BusyWorstMS)},
			{"work-stealing (online)", fmt.Sprintf("%.4f", res.WSMS), fmt.Sprintf("%.4f", wsSum.Max())},
		}))
	return res, nil
}
