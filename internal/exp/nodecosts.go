package exp

import (
	"fmt"
	"sort"
	"strings"

	"djstar/internal/engine"
	"djstar/internal/rescon"
	"djstar/internal/stats"
)

// NodeCostsResult compares measured per-node durations against the
// DESIGN.md cost targets — the calibration audit behind every simulated
// number in the reproduction.
type NodeCostsResult struct {
	// Names, MeasuredUS and TargetUS are indexed by node ID.
	Names      []string
	MeasuredUS []float64
	TargetUS   []float64
	// MeanAbsErrPct is the mean |measured-target|/target over nodes with
	// a nonzero target.
	MeanAbsErrPct float64
}

// NodeCosts measures each node's average execution time and reports it
// next to the design target (rescon.PaperCostsUS). Large deviations mean
// the calibration (graph.Calibrate + Load.RunSince) is off on this host,
// which would undermine the Fig. 4 / Fig. 12 comparisons.
func NodeCosts(opts Options) (*NodeCostsResult, error) {
	opts.normalize()
	durs, plan, err := engine.MeasureNodeDurations(opts.graphConfig(), min(opts.Cycles, 2000))
	if err != nil {
		return nil, err
	}
	targets := rescon.PaperCostsUS(plan)

	res := &NodeCostsResult{
		Names:      plan.Names,
		MeasuredUS: durs,
		TargetUS:   targets,
	}
	var errSum float64
	var errN int
	for i := range durs {
		if targets[i] <= 0 {
			continue
		}
		e := (durs[i] - targets[i]) / targets[i]
		if e < 0 {
			e = -e
		}
		errSum += e
		errN++
	}
	if errN > 0 {
		res.MeanAbsErrPct = errSum / float64(errN) * 100
	}

	// Report grouped by node-name prefix (SP, FX, Channel, ...), sorted.
	type group struct {
		name         string
		n            int
		meas, target float64
	}
	groups := map[string]*group{}
	for i, name := range plan.Names {
		key := prefixOf(name)
		g := groups[key]
		if g == nil {
			g = &group{name: key}
			groups[key] = g
		}
		g.n++
		g.meas += durs[i]
		g.target += targets[i]
	}
	var keys []string
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var rows [][]string
	for _, k := range keys {
		g := groups[k]
		rows = append(rows, []string{
			g.name,
			fmt.Sprintf("%d", g.n),
			fmt.Sprintf("%.1f", g.target/float64(g.n)),
			fmt.Sprintf("%.1f", g.meas/float64(g.n)),
			fmt.Sprintf("%+.0f%%", (g.meas/g.target-1)*100),
		})
	}
	fprintf(opts.Out, "node cost audit: measured vs DESIGN.md targets (scale %.2f, %d cycles)\n",
		opts.Scale, min(opts.Cycles, 2000))
	fprintf(opts.Out, "%s", stats.RenderTable(
		[]string{"node class", "count", "target µs", "measured µs", "dev"}, rows))
	fprintf(opts.Out, "mean per-node deviation: %.1f%%\n", res.MeanAbsErrPct)
	fprintf(opts.Out, "(short nodes carry ~1 µs of fixed tracer overhead, which dominates the\n")
	fprintf(opts.Out, " 2-4 µs control/meter targets; the audio nodes are the ones that matter)\n\n")
	return res, nil
}

// prefixOf groups node names into classes.
func prefixOf(name string) string {
	switch {
	case strings.HasPrefix(name, "SP"):
		return "SP filter"
	case strings.HasPrefix(name, "FX"):
		return "FX unit"
	case strings.HasPrefix(name, "Channel"):
		return "Channel"
	case strings.HasPrefix(name, "Ctrl"):
		return "Control"
	case strings.HasPrefix(name, "Meter"), name == "MasterVU", name == "CueVU",
		name == "Spectrum", name == "Loudness":
		return "Meter"
	default:
		return name
	}
}
