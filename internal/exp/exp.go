// Package exp implements the evaluation harness: one driver per table and
// figure of the paper (§IV and §VI). The drivers are shared between the
// djbench command and the repository's bench_test.go, and each one both
// returns a structured result (asserted by tests) and writes a human
// report (the regenerated table/figure) to the configured writer.
//
// Experiment index (see DESIGN.md §5):
//
//	Table1      — average task-graph response times, 3 strategies × 1–4 threads
//	Fig4        — simulated optimal schedules (earliest start, 4-core)
//	Fig8        — speedup over sequential
//	Fig9/Fig10  — execution-time histograms and cumulative histograms
//	Fig11       — typical schedule realizations (Gantt)
//	Fig12       — BUSY strategy simulated vs measured
//	Deadlines   — misses of the 2.9 ms APC deadline over 10k cycles
//	Profile     — APC component breakdown (TP/GP/Graph/VC)
//	ThreadSweep — thread counts beyond four
//	Ablation    — work-stealing design choices
package exp

import (
	"fmt"
	"io"
	"sync"

	"djstar/internal/engine"
	"djstar/internal/graph"
	"djstar/internal/sched"
)

// Options configure an experiment run.
type Options struct {
	// Out receives the rendered report. Required.
	Out io.Writer
	// Cycles is the APC iteration count per measurement (paper: 10,000).
	Cycles int
	// Scale is the node-cost scale (1.0 = paper scale).
	Scale float64
	// MaxThreads bounds the thread sweep for Table 1 (paper: 4).
	MaxThreads int
	// TrackBars sizes the synthetic tracks.
	TrackBars int
}

// Defaults returns the paper's evaluation settings: 10k cycles at full
// scale, threads 1..4.
func Defaults(out io.Writer) Options {
	return Options{Out: out, Cycles: 10000, Scale: 1.0, MaxThreads: 4, TrackBars: 16}
}

// Quick returns reduced settings for smoke tests and CI: fewer cycles at
// a small scale.
func Quick(out io.Writer) Options {
	return Options{Out: out, Cycles: 300, Scale: 0.05, MaxThreads: 4, TrackBars: 4}
}

func (o *Options) normalize() {
	if o.Cycles <= 0 {
		o.Cycles = 10000
	}
	if o.Scale < 0 {
		o.Scale = 0
	}
	if o.MaxThreads <= 0 {
		o.MaxThreads = 4
	}
	if o.TrackBars <= 0 {
		o.TrackBars = 16
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
}

// calibration is measured once per process.
var (
	calOnce sync.Once
	calVal  graph.Calibration
)

// Calib returns the process-wide spin calibration.
func Calib() graph.Calibration {
	calOnce.Do(func() { calVal = graph.Calibrate() })
	return calVal
}

// graphConfig builds the standard graph config for the options.
func (o *Options) graphConfig() graph.Config {
	cfg := graph.DefaultConfig()
	cfg.Scale = o.Scale
	cfg.TrackBars = o.TrackBars
	if o.Scale > 0 {
		cfg.Calibration = Calib()
	}
	return cfg
}

// runEngine measures one (strategy, threads) cell.
func (o *Options) runEngine(strategy string, threads int, collect bool) (*engine.Metrics, error) {
	cfg := engine.Config{
		Graph:          o.graphConfig(),
		Strategy:       strategy,
		Threads:        threads,
		CollectSamples: collect,
		DisableGC:      o.Scale >= 0.5, // full-scale runs measure without GC noise
	}
	e, err := engine.New(cfg)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	// Warm-up cycles fill delay lines and fault in all memory.
	for i := 0; i < min(o.Cycles/10+1, 200); i++ {
		e.Cycle(nil)
	}
	return e.RunCycles(o.Cycles), nil
}

// ParallelStrategies are the three strategies the paper evaluates.
var ParallelStrategies = []string{sched.NameBusyWait, sched.NameSleep, sched.NameWorkSteal}

// fprintf writes to the report, ignoring errors (reports go to terminals
// or buffers; a failed diagnostic write must not fail an experiment).
func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}
