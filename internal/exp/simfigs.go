package exp

import (
	"djstar/internal/engine"
	"djstar/internal/rescon"
	"djstar/internal/sched"
	"djstar/internal/stats"
)

// Fig4Result holds the schedule simulation outcomes of §IV.
type Fig4Result struct {
	// CriticalPathUS is the earliest-start (infinite processor) makespan
	// — the paper reports 295 µs.
	CriticalPathUS float64
	// PeakConcurrency is the maximum parallelism — the paper reports 33.
	PeakConcurrency int
	// FourCoreUS is the 4-processor resource-constrained makespan — the
	// paper reports 324 µs.
	FourCoreUS float64
	// SequentialUS is the total work (1-processor makespan).
	SequentialUS float64
	// Profile is the concurrency-over-time curve (Fig. 4's shape).
	Profile []int
}

// Fig4 reproduces the paper's §IV simulation: measure average node
// durations over many cycles, then compute the earliest-start schedule
// (critical path, peak concurrency) and the 4-core optimal schedule.
func Fig4(opts Options) (*Fig4Result, error) {
	opts.normalize()
	durs, plan, err := engine.MeasureNodeDurations(opts.graphConfig(), min(opts.Cycles, 2000))
	if err != nil {
		return nil, err
	}
	m, err := rescon.FromPlan(plan, durs)
	if err != nil {
		return nil, err
	}
	es := m.EarliestStart()
	four, err := m.ListSchedule(4)
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{
		CriticalPathUS:  es.MakespanUS,
		PeakConcurrency: es.PeakConcurrency,
		FourCoreUS:      four.MakespanUS,
		SequentialUS:    m.TotalWork(),
		Profile:         rescon.ConcurrencyProfile(es, 100),
	}

	fprintf(opts.Out, "Fig. 4 / §IV: simulated optimal scheduling (measured node durations)\n")
	fprintf(opts.Out, "  earliest start (infinite procs): %8.1f µs makespan, peak concurrency %d\n",
		res.CriticalPathUS, res.PeakConcurrency)
	fprintf(opts.Out, "  resource constrained (4 procs):  %8.1f µs makespan (+%.0f%% vs critical path)\n",
		res.FourCoreUS, 100*(res.FourCoreUS/res.CriticalPathUS-1))
	fprintf(opts.Out, "  sequential total work:           %8.1f µs\n\n", res.SequentialUS)
	fprintf(opts.Out, "%s\n", stats.RenderProfile(res.Profile,
		"Fig. 4: concurrency profile (earliest-start schedule)", 12))
	return res, nil
}

// Fig12Result compares the BUSY strategy's simulation with measurement.
type Fig12Result struct {
	// OptimalUS is the 4-core list schedule makespan (paper: 324 µs).
	OptimalUS float64
	// SimBusyUS is the simulated BUSY makespan (paper: 327 µs).
	SimBusyUS float64
	// SimSleepUS is the simulated SLEEP makespan (our extension).
	SimSleepUS float64
	// MeasuredBusyUS is the measured mean graph time (paper: 452 µs).
	MeasuredBusyUS float64
	// EfficiencyVsOptimal is SimBusy relative to the lower bound (the
	// paper's 99 % / "within 8 % of optimal" claim).
	Efficiency float64
}

// Fig12 reproduces Fig. 12 and the §VI comparison: simulate the BUSY
// schedule in the RESCON model and compare it with both the 4-core
// optimum and the real measurement (which additionally pays thread
// management, node assignment and dependency checking).
func Fig12(opts Options) (*Fig12Result, error) {
	opts.normalize()
	durs, plan, err := engine.MeasureNodeDurations(opts.graphConfig(), min(opts.Cycles, 2000))
	if err != nil {
		return nil, err
	}
	m, err := rescon.FromPlan(plan, durs)
	if err != nil {
		return nil, err
	}
	four, err := m.ListSchedule(4)
	if err != nil {
		return nil, err
	}
	ov := rescon.StrategyOverheads{CheckUS: 0.5 * opts.Scale, WakeUS: 10 * opts.Scale}
	simBusy, err := m.SimulateBusy(4, ov)
	if err != nil {
		return nil, err
	}
	simSleep, err := m.SimulateSleep(4, ov)
	if err != nil {
		return nil, err
	}
	meas, err := opts.runEngine(sched.NameBusyWait, 4, false)
	if err != nil {
		return nil, err
	}

	res := &Fig12Result{
		OptimalUS:      four.MakespanUS,
		SimBusyUS:      simBusy.MakespanUS,
		SimSleepUS:     simSleep.MakespanUS,
		MeasuredBusyUS: meas.Graph.Mean() * 1e3,
		Efficiency:     m.Efficiency(simBusy),
	}
	fprintf(opts.Out, "Fig. 12 / §VI: BUSY schedule — simulation vs measurement (4 threads)\n")
	fprintf(opts.Out, "  optimal 4-core schedule:   %8.1f µs\n", res.OptimalUS)
	fprintf(opts.Out, "  simulated BUSY schedule:   %8.1f µs (+%.1f%% vs optimal, efficiency %.0f%%)\n",
		res.SimBusyUS, 100*(res.SimBusyUS/res.OptimalUS-1), 100*res.Efficiency)
	fprintf(opts.Out, "  simulated SLEEP schedule:  %8.1f µs\n", res.SimSleepUS)
	fprintf(opts.Out, "  measured BUSY mean:        %8.1f µs (simulation excludes thread mgmt / dependency checks)\n\n",
		res.MeasuredBusyUS)
	return res, nil
}
