package exp

import (
	"fmt"
	"sync"
	"time"

	"djstar/internal/engine"
	"djstar/internal/faults"
	"djstar/internal/sched"
	"djstar/internal/stats"
)

// Chaos and Governor are the robustness experiments: where the rest of
// the harness reproduces the paper's performance evaluation, these two
// demonstrate the fault model of DESIGN.md §10 end to end — a panicking
// node is contained and quarantined without dropping a cycle, a wedged
// node is detected and named by the stall watchdog, and the deadline
// governor sheds load under overload and restores it afterwards.

// ChaosResult is the outcome of the scripted-fault containment run.
type ChaosResult struct {
	Metrics *engine.Metrics
	// Injected are the injector's counters (what the script fired).
	Injected faults.Stats
	// SilentPackets counts the packets rendered from a flushed (silenced)
	// deck buffer — the audible cost of containment, exactly one per
	// recovered fault. FaultRMS/CleanRMS are the faulted deck's mean
	// output level on those packets vs all others: the flush zeroes the
	// buffer mid-graph, so only the channel strip's filter ring-out
	// remains (the ratio quantifies the attenuation; exact digital
	// silence would require resetting the strip's IIR state too).
	SilentPackets int
	FaultRMS      float64
	CleanRMS      float64
	// Quarantined reports the panicking node entered quarantine, and
	// Restored that a later probe lifted it.
	Quarantined bool
	Restored    bool
	// StallDetected reports the watchdog caught the injected stall;
	// StallNode is the node it blamed.
	StallDetected bool
	StallNode     string
	// Health is the engine's final health snapshot.
	Health engine.Health
}

// chaos scenario coordinates.
const (
	chaosPanicNode  = "FXA2" // in-place FX unit on deck A
	chaosPanicCycle = 100
	chaosStallNode  = "Mixer"
	chaosStallMS    = 85 // injected stall length
	chaosWallMS     = 40 // watchdog wall (< stall, >> any honest cycle)
	chaosProbeEvery = 100
)

// Chaos runs o.Cycles APCs with a scripted node panic (chaosPanicNode,
// QuarantineAfter consecutive cycles — so the quarantine trips and the
// first probe afterwards succeeds and lifts it) and a scripted mid-run
// stall (chaosStallNode at o.Cycles/2, long enough to trip the
// watchdog). The run must complete every cycle: containment, not
// crashing, is the result under test.
func Chaos(o Options) (*ChaosResult, error) {
	o.normalize()
	stallCycle := o.Cycles / 2
	if stallCycle <= chaosPanicCycle+chaosProbeEvery {
		stallCycle = chaosPanicCycle + chaosProbeEvery + 10
	}
	script := fmt.Sprintf("panic:%s@%dx%d, stall:%s@%d:%dms",
		chaosPanicNode, chaosPanicCycle, sched.DefaultQuarantineAfter,
		chaosStallNode, stallCycle, chaosStallMS)
	inj := faults.New(1, faults.MustParse(script)...)

	var (
		mu     sync.Mutex
		stalls []engine.StallRecord
		recs   []sched.FaultRecord
	)
	gcfg := o.graphConfig()
	gcfg.Faults = inj
	e, err := engine.New(engine.Config{
		Graph:          gcfg,
		Strategy:       sched.NameBusyWait,
		Threads:        o.MaxThreads,
		FaultPolicy:    sched.FaultPolicy{ProbeEvery: chaosProbeEvery},
		Watchdog:       true,
		WatchdogWallMS: chaosWallMS,
		Hooks: engine.Hooks{
			OnFault: func(r sched.FaultRecord) {
				mu.Lock()
				recs = append(recs, r)
				mu.Unlock()
			},
			OnStall: func(r engine.StallRecord) {
				mu.Lock()
				stalls = append(stalls, r)
				mu.Unlock()
			},
		},
	})
	if err != nil {
		return nil, err
	}
	defer e.Close()

	res := &ChaosResult{Metrics: e.NewMetrics()}
	var (
		prevRecovered          int64
		faultSum, cleanSum     float64
		faultCount, cleanCount int
	)
	for i := 0; i < o.Cycles; i++ {
		e.Cycle(res.Metrics)
		rms := e.Session().DeckMixRMS(0)
		if rec := e.Scheduler().Faults().Recovered; rec > prevRecovered {
			prevRecovered = rec
			res.SilentPackets++
			faultSum += rms
			faultCount++
		} else {
			cleanSum += rms
			cleanCount++
		}
	}
	e.StampMetrics(res.Metrics)
	if faultCount > 0 {
		res.FaultRMS = faultSum / float64(faultCount)
	}
	if cleanCount > 0 {
		res.CleanRMS = cleanSum / float64(cleanCount)
	}

	res.Injected = inj.Stats()
	res.Health = e.Health()
	fs := res.Metrics.Faults
	res.Quarantined = fs.Quarantined >= 1
	res.Restored = fs.Restored >= 1
	mu.Lock()
	if len(stalls) > 0 {
		res.StallDetected = true
		res.StallNode = stalls[0].Name
	}
	nrecs := len(recs)
	mu.Unlock()

	w := o.Out
	fprintf(w, "Chaos containment (%d cycles, %s/%d threads)\n",
		res.Metrics.Cycles, res.Metrics.Strategy, res.Metrics.Threads)
	fprintf(w, "  script             : %s\n", script)
	fprintf(w, "  injected           : %d panics, %d stalls\n",
		res.Injected.Panics, res.Injected.Stalls)
	fprintf(w, "  recovered faults   : %d (handler saw %d)\n", fs.Recovered, nrecs)
	fprintf(w, "  quarantined        : %v (restored by probe: %v, probes %d)\n",
		res.Quarantined, res.Restored, fs.Probes)
	fprintf(w, "  silenced packets   : %d (bound: faults+1 = %d), deck RMS %.5f vs %.5f clean\n",
		res.SilentPackets, fs.Recovered+1, res.FaultRMS, res.CleanRMS)
	fprintf(w, "  stall detected     : %v (node %q, %d total)\n",
		res.StallDetected, res.StallNode, res.Metrics.Stalls)
	fprintf(w, "  cycles completed   : %d/%d — no crash, no hang\n",
		res.Metrics.Cycles, o.Cycles)
	return res, nil
}

// GovernorResult is the outcome of the overload/degradation run.
type GovernorResult struct {
	// DemoDeadlineMS is the APC deadline derived from the measured
	// baseline (the paper-scale 2.902 ms only binds at Scale 1 on paper
	// hardware; the demo derives one that binds on this host).
	DemoDeadlineMS float64
	// Overload-phase miss rates with and without the governor.
	GovernedMissRate   float64
	UngovernedMissRate float64
	// MaxLevel is the deepest degradation level reached under overload;
	// FinalLevel the level after the recovery phase (GovNormal expected).
	MaxLevel   engine.GovLevel
	FinalLevel engine.GovLevel
	// OverloadFactor is the load multiplier applied during overload.
	OverloadFactor float64
}

// governor demo shape (in evaluation windows of govWindow cycles).
// Recovery needs CleanWindows consecutive clean windows per level to
// walk back from critical, and any window dirtied by an OS preemption
// resets that counter — on a shared 1-CPU host one stray preemption per
// ~10 windows is routine, so the recovery phase budgets well past the
// noise-free minimum.
const (
	govWindow        = 32
	govBaseWindows   = 2
	govOverWindows   = 10
	govRecoatWindows = 24
)

// Governor demonstrates graceful degradation: the same three-phase run —
// baseline, overload (load factor inflated ~3×), recovery — executed
// with and without the deadline governor. The governed engine must shed
// into a degraded level within the overload phase, miss less than the
// ungoverned one, and return to normal after the overload is removed.
// Cycle counts are fixed by the window shape, not o.Cycles: the state
// machine needs whole evaluation windows, not raw iterations.
func Governor(o Options) (*GovernorResult, error) {
	o.normalize()
	if o.Scale <= 0 {
		return nil, fmt.Errorf("exp: governor demo needs Scale > 0 (the load factor scales spin cost)")
	}

	// Derive the demo deadline: mean APC at nominal load vs under the
	// overload factor; the midpoint separates the two phases cleanly on
	// any host speed.
	overload := 3.0
	base, over, err := probeAPC(o, overload)
	if err != nil {
		return nil, err
	}
	if over < base*1.2 {
		// Tiny scales leave spin cost (the only load-factor-sensitive
		// part) too small next to the real DSP; push harder.
		overload = 10.0
		if base, over, err = probeAPC(o, overload); err != nil {
			return nil, err
		}
	}
	deadline := (base + over) / 2

	res := &GovernorResult{
		DemoDeadlineMS: deadline,
		OverloadFactor: overload,
		FinalLevel:     engine.GovNormal,
	}
	run := func(governed bool) (overRate float64, err error) {
		cfg := engine.Config{
			Graph:    o.graphConfig(),
			Strategy: sched.NameBusyWait,
			Threads:  o.MaxThreads,
		}
		if governed {
			cfg.Governor = engine.GovernorConfig{
				Enabled:          true,
				DeadlineMS:       deadline,
				GraphBudgetMS:    1e6, // the demo escalates on APC misses only
				Window:           govWindow,
				EscalateMissRate: 0.2,
				CleanWindows:     2,
				// Tolerate a few preemption-dirtied cycles per window so
				// recovery on a noisy shared host reflects the removed
				// overload, not the neighbours' timeslices.
				RecoverMissRate: 0.1,
			}
			cfg.Hooks.OnGovChange = func(_, to engine.GovLevel) {
				if to > res.MaxLevel {
					res.MaxLevel = to
				}
			}
		}
		e, err := engine.New(cfg)
		if err != nil {
			return 0, err
		}
		defer e.Close()

		phase := func(n int, track *stats.DeadlineTracker) {
			for i := 0; i < n; i++ {
				t := time.Now()
				e.Cycle(nil)
				if track != nil {
					track.Add(time.Since(t).Seconds() * 1e3)
				}
			}
		}
		phase(50, nil) // warm-up
		phase(govBaseWindows*govWindow, nil)
		e.SetLoadFactor(overload)
		tr := stats.NewDeadlineTracker(deadline)
		phase(govOverWindows*govWindow, tr)
		e.SetLoadFactor(1.0)
		phase(govRecoatWindows*govWindow, nil)
		if governed {
			res.FinalLevel = e.GovLevel()
		}
		return tr.MissRate(), nil
	}

	if res.UngovernedMissRate, err = run(false); err != nil {
		return nil, err
	}
	if res.GovernedMissRate, err = run(true); err != nil {
		return nil, err
	}

	w := o.Out
	fprintf(w, "Deadline governor (busy/%d threads, %d-cycle windows)\n", o.MaxThreads, govWindow)
	fprintf(w, "  demo deadline      : %.3f ms (baseline mean %.3f ms, %.0fx overload mean %.3f ms)\n",
		deadline, base, overload, over)
	fprintf(w, "  overload miss rate : ungoverned %.1f%%  governed %.1f%%\n",
		100*res.UngovernedMissRate, 100*res.GovernedMissRate)
	fprintf(w, "  degradation        : max level %s, final level %s\n",
		res.MaxLevel, res.FinalLevel)
	return res, nil
}

// probeAPC measures the mean APC time (ms) at load factor 1 and at the
// given overload factor, on a short throwaway engine.
func probeAPC(o Options, overload float64) (base, over float64, err error) {
	e, err := engine.New(engine.Config{
		Graph:    o.graphConfig(),
		Strategy: sched.NameBusyWait,
		Threads:  o.MaxThreads,
	})
	if err != nil {
		return 0, 0, err
	}
	defer e.Close()
	const n = 100
	for i := 0; i < 30; i++ {
		e.Cycle(nil)
	}
	m := e.NewMetrics()
	for i := 0; i < n; i++ {
		e.Cycle(m)
	}
	e.SetLoadFactor(overload)
	m2 := e.NewMetrics()
	for i := 0; i < n; i++ {
		e.Cycle(m2)
	}
	return m.APC.Mean(), m2.APC.Mean(), nil
}
