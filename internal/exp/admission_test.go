package exp

import (
	"bytes"
	"strings"
	"testing"
)

// TestAdmissionShape: the R7 sweep produces a gate-off and a gate-on row
// per session count, sweeps to one session past the analytical capacity,
// and the gate-on row there refuses at least one session — the refusal
// is analytical (static costs, deterministic controller), so this holds
// on any host. Timing-sensitive outcomes (SLO verdicts, bound
// violations) are reported by the experiment but deliberately not
// asserted here.
func TestAdmissionShape(t *testing.T) {
	var buf bytes.Buffer
	o := quickOpts(&buf)
	o.Cycles = 60
	res, err := Admission(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Capacity < 1 {
		t.Fatalf("capacity = %d, want >= 1", res.Capacity)
	}
	if res.PeriodUS <= 0 {
		t.Fatalf("period = %v, want > 0", res.PeriodUS)
	}
	if len(res.Rows) < 4 || len(res.Rows)%2 != 0 {
		t.Fatalf("rows = %d, want even count >= 4", len(res.Rows))
	}
	var sawRefusal bool
	for i, r := range res.Rows {
		wantGate := "off"
		if i%2 == 1 {
			wantGate = "on"
		}
		if r.Gate != wantGate {
			t.Fatalf("row %d gate = %q, want %q", i, r.Gate, wantGate)
		}
		if r.Gate == "off" {
			if r.Admitted != r.Sessions || r.Refused != 0 {
				t.Fatalf("gate-off row %+v: gate decisions without a gate", r)
			}
			continue
		}
		if got := r.Admitted + r.Degraded + r.Refused; got != r.Sessions {
			t.Fatalf("gate-on row %+v: verdicts sum to %d, want %d", r, got, r.Sessions)
		}
		if len(r.Admittees) != r.Admitted+r.Degraded {
			t.Fatalf("gate-on row %+v: %d admittee reports", r, len(r.Admittees))
		}
		for _, s := range r.Admittees {
			if s.BoundUS <= 0 || s.MeasuredP95US <= 0 || s.MeasuredP99US <= 0 {
				t.Fatalf("admittee %+v: non-positive bound or percentile", s)
			}
			if s.MeasuredP95US > s.MeasuredP99US {
				t.Fatalf("admittee %+v: p95 > p99", s)
			}
		}
		if r.Sessions > res.Capacity {
			if r.Refused < r.Sessions-res.Capacity {
				t.Fatalf("row %+v: %d sessions over capacity %d but only %d refused",
					r, r.Sessions, res.Capacity, r.Refused)
			}
			sawRefusal = r.Refused > 0
		}
	}
	if !sawRefusal {
		t.Fatal("sweep never refused a session past capacity")
	}
	out := buf.String()
	for _, want := range []string{"analytical capacity", "bound-vs-measured", "refuse"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
