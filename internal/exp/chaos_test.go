package exp

import (
	"io"
	"testing"

	"djstar/internal/engine"
)

// TestChaos asserts the containment invariants of the scripted-fault run:
// every injected panic is recovered (never escapes), the panicking node is
// quarantined and later restored by a probe, the audible cost is bounded
// by one silent packet per fault, the stall watchdog names the wedged
// node, and — above all — every cycle completes.
func TestChaos(t *testing.T) {
	o := Quick(io.Discard)
	res, err := Chaos(o)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := int(res.Metrics.Cycles), o.Cycles; got != want {
		t.Errorf("cycles completed = %d, want %d", got, want)
	}
	fs := res.Metrics.Faults
	if res.Injected.Panics == 0 {
		t.Fatal("no panics injected — script did not arm")
	}
	if fs.Recovered != int64(res.Injected.Panics) {
		t.Errorf("recovered = %d, want %d (every injected panic, no more)",
			fs.Recovered, res.Injected.Panics)
	}
	if !res.Quarantined {
		t.Error("panicking node was never quarantined")
	}
	if !res.Restored {
		t.Error("quarantine was never lifted by a probe")
	}
	if bound := int(fs.Recovered) + 1; res.SilentPackets > bound {
		t.Errorf("silenced packets = %d, want <= %d (one per recovered fault)",
			res.SilentPackets, bound)
	}
	if res.FaultRMS >= res.CleanRMS {
		t.Errorf("faulted-packet RMS %.5f not attenuated vs clean %.5f",
			res.FaultRMS, res.CleanRMS)
	}
	if res.Injected.Stalls == 0 {
		t.Fatal("no stall injected — script did not arm")
	}
	if !res.StallDetected {
		t.Error("watchdog did not detect the injected stall")
	} else if res.StallNode != chaosStallNode {
		t.Errorf("watchdog blamed %q, want %q", res.StallNode, chaosStallNode)
	}
	if res.Health.Level != engine.GovNormal {
		t.Errorf("final level = %v, want normal (no governor in this run)", res.Health.Level)
	}
	if len(res.Health.Quarantined) != 0 {
		t.Errorf("nodes still quarantined at end: %v", res.Health.Quarantined)
	}
}

// TestGovernor asserts the degradation demo: under a synthetic overload
// the governed engine sheds into a degraded level, misses the derived
// deadline less often than the ungoverned one, and returns to normal
// once the overload is removed.
func TestGovernor(t *testing.T) {
	res, err := Governor(Quick(io.Discard))
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLevel <= engine.GovNormal {
		t.Errorf("max level = %v, want a degraded level under overload", res.MaxLevel)
	}
	if res.FinalLevel != engine.GovNormal {
		t.Errorf("final level = %v, want normal after recovery", res.FinalLevel)
	}
	if res.UngovernedMissRate == 0 {
		t.Fatal("ungoverned run missed nothing — the demo deadline does not bind")
	}
	if res.GovernedMissRate >= res.UngovernedMissRate {
		t.Errorf("governed miss rate %.3f >= ungoverned %.3f — shedding bought nothing",
			res.GovernedMissRate, res.UngovernedMissRate)
	}
}
