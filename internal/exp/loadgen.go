package exp

import (
	"fmt"
	"runtime"
	"time"

	"djstar/internal/apiv1"
	"djstar/internal/engine"
	"djstar/internal/fleet"
	"djstar/internal/stats"
)

// LoadgenResult holds the fleet load-generation experiment (R8): churn
// thousands of sessions through a sharded fleet and find the
// sessions-per-core knee — the largest concurrency at which every
// shard's deadline-miss rollup stays within the 5-per-10k SLO.
type LoadgenResult struct {
	Shards int
	Cores  int

	// Levels is the concurrency ladder; per level the dwell-window
	// per-shard miss rates (per 10k) and whether all shards held SLO.
	Levels      []int
	MissPer10k  [][]float64
	Healthy     []bool
	// AdmitLimited[i] records that the fleet's analytical gate refused
	// further sessions at this level (the level ran below target).
	AdmitLimited []bool

	// KneeSessions is the largest all-shards-healthy level reached;
	// KneePerCore is that divided by the core count.
	KneeSessions int
	KneePerCore  float64

	// Created counts every session constructed over the whole run
	// (churn included); Refused counts analytical refusals.
	Created int
	Refused int

	// Placements counts placement decisions; MaxHeadroomWins counts
	// those that went to a strict-best-headroom shard (the rest are
	// ties broken by session count).
	Placements      int
	MaxHeadroomWins int

	// DrainMoved is the mid-run shard-drain demo: sessions migrated off
	// shard 0 with zero cycles lost.
	DrainMoved  int
	DrainFailed int
}

// Loadgen drives the fleet the way a session frontend would: ramp
// concurrency up a doubling ladder, churn sessions at every level
// (destroy + create, exercising placement), watch per-shard SLO
// rollups, and drain a shard mid-run. Pacing follows the 2.902 ms
// packet clock, so misses mean real interference, not backlog.
func Loadgen(opts Options) (*LoadgenResult, error) {
	opts.normalize()
	quick := opts.Cycles < 1000

	shards := 2
	cores := runtime.NumCPU()
	res := &LoadgenResult{Shards: shards, Cores: cores}

	gcfg := opts.graphConfig()
	if opts.Scale <= 0 || opts.Scale > 0.1 {
		// Fleet capacity, not kernel fidelity, is under test: a small
		// scale keeps per-session work tiny so the knee is sessions per
		// core, not cycles per session.
		gcfg.Scale = 0.05
		gcfg.Calibration = Calib()
	}
	gcfg.TrackBars = min(opts.TrackBars, 4)

	cfg := fleet.Config{
		Shards:           shards,
		SessionsPerShard: 1024,
	}
	cfg.Engine.Graph = gcfg
	cfg.Engine.Obs.Disable = true // thousands of sessions: no per-node rings
	var placements []apiv1.Placement
	cfg.OnPlacement = func(p apiv1.Placement) { placements = append(placements, p) }

	f, err := fleet.New(cfg)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	w := opts.Out
	fprintf(w, "R8 — fleet load generation: %d shards over %d cores, scale %.2f, paced at %s\n\n",
		shards, cores, gcfg.Scale, f.Period())

	create := func() bool {
		_, _, err := f.AddSession(engine.SessionSpec{})
		if err != nil {
			res.Refused++
			return false
		}
		res.Created++
		return true
	}

	// sloWindow samples every shard's rollup, dwells, and returns the
	// per-shard miss-per-10k over just the dwell window.
	dwell := 400 * time.Millisecond
	maxLevel := 512
	churnPerLevel := 8
	target := 1200 // cumulative created sessions the churn must reach
	if quick {
		dwell = 120 * time.Millisecond
		maxLevel = 32
		churnPerLevel = 2
		target = 48
	}
	sloWindow := func() []float64 {
		type cm struct{ c, m uint64 }
		before := make([]cm, shards)
		for i := 0; i < shards; i++ {
			st, _ := f.ShardStatus(i)
			before[i] = cm{st.SLO.Cycles, st.SLO.Misses}
		}
		time.Sleep(dwell)
		out := make([]float64, shards)
		for i := 0; i < shards; i++ {
			st, _ := f.ShardStatus(i)
			dc := st.SLO.Cycles - before[i].c
			dm := st.SLO.Misses - before[i].m
			if dc > 0 {
				out[i] = float64(dm) / float64(dc) * 1e4
			}
		}
		return out
	}

	// Ramp: double the live-session target until the SLO breaks or the
	// gate refuses growth.
	live := 0
	rows := [][]string{}
	for level := min(4, maxLevel); level <= maxLevel; level *= 2 {
		admitLimited := false
		for live < level {
			if !create() {
				admitLimited = true
				break
			}
			live++
		}
		// Churn at this level: destroy the oldest few, create anew —
		// placement decisions under asymmetric residual load.
		for i := 0; i < churnPerLevel; i++ {
			ss := f.Sessions()
			if len(ss) == 0 {
				break
			}
			_ = f.RemoveSession(ss[0].ID())
			live--
			if create() {
				live++
			}
		}
		miss := sloWindow()
		healthy := true
		for _, m := range miss {
			if m > 5 {
				healthy = false
			}
		}
		res.Levels = append(res.Levels, live)
		res.MissPer10k = append(res.MissPer10k, miss)
		res.Healthy = append(res.Healthy, healthy)
		res.AdmitLimited = append(res.AdmitLimited, admitLimited)
		if healthy && live > res.KneeSessions {
			res.KneeSessions = live
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", live),
			fmt.Sprintf("%.2f", float64(live)/float64(cores)),
			fmt.Sprintf("%.1f", miss[0]),
			fmt.Sprintf("%.1f", miss[1]),
			map[bool]string{true: "yes", false: "NO"}[healthy],
			map[bool]string{true: "yes", false: ""}[admitLimited],
		})
		if !healthy || admitLimited {
			break
		}
	}
	fprintf(w, "%s", stats.RenderTable([]string{"sessions", "per core", "shard0 miss/10k", "shard1 miss/10k", "SLO held", "admit-limited"}, rows))
	res.KneePerCore = float64(res.KneeSessions) / float64(cores)
	fprintf(w, "\nknee: %d sessions (%.2f per core) with every shard within 5/10k\n",
		res.KneeSessions, res.KneePerCore)

	// Drain demo: move everything off shard 0 at cycle boundaries, then
	// reopen it. Cycle counts keep advancing through the move.
	pre := map[string]uint64{}
	for _, s := range f.Sessions() {
		pre[s.ID()] = s.Engine().Cycles()
	}
	dr, err := f.Drain(0)
	if err != nil {
		return nil, err
	}
	res.DrainMoved, res.DrainFailed = dr.Moved, dr.Failed
	time.Sleep(dwell / 2)
	lost := 0
	for _, s := range f.Sessions() {
		if s.Engine().Cycles() < pre[s.ID()] {
			lost++
		}
	}
	_ = f.Undrain(0)
	fprintf(w, "drain shard 0: %d sessions migrated (%d failed), %d sessions lost cycles\n",
		res.DrainMoved, res.DrainFailed, lost)

	// Churn to the cumulative-creation target at a comfortable level
	// (half the knee), proving placement and ID hygiene at volume.
	hold := res.KneeSessions / 2
	if hold < shards {
		hold = shards
	}
	for live > hold {
		ss := f.Sessions()
		_ = f.RemoveSession(ss[0].ID())
		live--
	}
	for res.Created < target {
		ss := f.Sessions()
		if len(ss) > 0 {
			_ = f.RemoveSession(ss[0].ID())
			live--
		}
		if create() {
			live++
		} else {
			break
		}
	}

	res.Placements = len(placements)
	for _, p := range placements {
		strict := true
		for _, c := range p.Candidates {
			if c.Shard != p.Shard && c.Fits && c.HeadroomUS > p.HeadroomUS+1e-6 {
				strict = false
			}
		}
		if strict {
			res.MaxHeadroomWins++
		}
	}
	fprintf(w, "churn: %d sessions created in total (%d analytical refusals), %d placements, %d to the max-headroom shard\n",
		res.Created, res.Refused, res.Placements, res.MaxHeadroomWins)
	if res.Created < target {
		fprintf(w, "NOTE: churn stopped early at %d/%d creations (admission-limited fleet)\n", res.Created, target)
	}
	return res, nil
}
