package exp

import (
	"djstar/internal/engine"
	"djstar/internal/sched"
)

// SLORow is one strategy's deadline-miss budget outcome.
type SLORow struct {
	Strategy string
	Threads  int
	Cycles   uint64
	Misses   uint64
	// MissesPer10k normalizes to the paper's measurement unit (§V
	// reports ~5/10,000 for the four-thread parallel strategies).
	MissesPer10k float64
	// BudgetRemaining is the unspent fraction of the rolling window
	// budget at run end; Exhausted whether it blew the budget.
	BudgetRemaining float64
	Exhausted       bool
	// APCp50MS / APCp99MS / APCp999MS are telemetry-histogram quantiles
	// of the APC latency in milliseconds.
	APCp50MS, APCp99MS, APCp999MS float64
}

// SLOResult is the R4 table: per-strategy deadline-miss distributions
// against the paper's 5-per-10k budget.
type SLOResult struct {
	TargetPer10k float64
	Rows         []SLORow
}

// SLO runs every parallel strategy with the telemetry collector at its
// default budget (the paper's 5 misses per 10,000 cycles) and reports
// how each strategy's miss distribution spends it — the experiment
// behind EXPERIMENTS.md R4. Sequential runs too, as the overload
// reference point.
func SLO(o Options) (*SLOResult, error) {
	o.normalize()
	res := &SLOResult{TargetPer10k: 5}
	fprintf(o.Out, "Deadline-miss SLO budget per strategy (%d cycles, scale %.2f, budget 5/10k)\n\n",
		o.Cycles, o.Scale)
	fprintf(o.Out, "  %-10s %8s %7s %10s %9s %9s %9s %9s\n",
		"strategy", "cycles", "misses", "per 10k", "budget", "p50 ms", "p99 ms", "p99.9 ms")
	strategies := append([]string{sched.NameSequential}, ParallelStrategies...)
	for _, name := range strategies {
		threads := o.MaxThreads
		if name == sched.NameSequential {
			threads = 1
		}
		e, err := engine.New(engine.Config{
			Graph:     o.graphConfig(),
			Strategy:  name,
			Threads:   threads,
			DisableGC: o.Scale >= 0.5,
		})
		if err != nil {
			return nil, err
		}
		for i := 0; i < min(o.Cycles/10+1, 200); i++ {
			e.Cycle(nil)
		}
		e.RunCycles(o.Cycles)
		tel := e.Telemetry()
		slo := tel.SLO()
		row := SLORow{
			Strategy:        e.Scheduler().Name(),
			Threads:         e.Scheduler().Threads(),
			Cycles:          slo.TotalCycles,
			Misses:          slo.TotalMisses,
			BudgetRemaining: slo.BudgetRemaining,
			Exhausted:       slo.Exhausted,
			APCp50MS:        tel.APC.QuantileSeconds(0.50) * 1e3,
			APCp99MS:        tel.APC.QuantileSeconds(0.99) * 1e3,
			APCp999MS:       tel.APC.QuantileSeconds(0.999) * 1e3,
		}
		if row.Cycles > 0 {
			row.MissesPer10k = float64(row.Misses) / float64(row.Cycles) * 1e4
		}
		e.Close()
		res.Rows = append(res.Rows, row)
		budget := "ok"
		if row.Exhausted {
			budget = "BLOWN"
		}
		fprintf(o.Out, "  %-10s %8d %7d %10.1f %9s %9.3f %9.3f %9.3f\n",
			row.Strategy, row.Cycles, row.Misses, row.MissesPer10k, budget,
			row.APCp50MS, row.APCp99MS, row.APCp999MS)
	}
	fprintf(o.Out, "\npaper reference: ~5 misses / 10,000 cycles for the 4-thread parallel strategies (§V)\n\n")
	return res, nil
}
