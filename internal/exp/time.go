package exp

import "time"

// nowMS returns a monotonic timestamp in milliseconds.
func nowMS() float64 { return time.Since(expBase).Seconds() * 1e3 }

var expBase = time.Now()
