package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV export so the regenerated figures can be re-plotted with external
// tooling (gnuplot, matplotlib, a spreadsheet).

// WriteSamplesCSV writes per-strategy sample columns (e.g. the Fig. 9/10
// graph times): header row of strategy names, then one row per cycle.
// Strategies with fewer samples leave trailing cells empty.
func WriteSamplesCSV(w io.Writer, samples map[string][]float64, order []string) error {
	cw := csv.NewWriter(w)
	header := append([]string(nil), order...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("exp: csv header: %w", err)
	}
	maxLen := 0
	for _, name := range order {
		if len(samples[name]) > maxLen {
			maxLen = len(samples[name])
		}
	}
	row := make([]string, len(order))
	for i := 0; i < maxLen; i++ {
		for c, name := range order {
			if i < len(samples[name]) {
				row[c] = strconv.FormatFloat(samples[name][i], 'g', 9, 64)
			} else {
				row[c] = ""
			}
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("exp: csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable1CSV writes the Table I matrix: one row per strategy, one
// column per thread count, preceded by the sequential baseline.
func WriteTable1CSV(w io.Writer, res *Table1Result) error {
	cw := csv.NewWriter(w)
	header := []string{"strategy"}
	for _, t := range res.Threads {
		header = append(header, fmt.Sprintf("threads_%d_ms", t))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	seqRow := []string{"seq", strconv.FormatFloat(res.SeqMeanMS, 'g', 9, 64)}
	for range res.Threads[1:] {
		seqRow = append(seqRow, "")
	}
	if err := cw.Write(seqRow); err != nil {
		return err
	}
	for _, name := range ParallelStrategies {
		row := []string{name}
		for _, v := range res.MeanMS[name] {
			row = append(row, strconv.FormatFloat(v, 'g', 9, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
