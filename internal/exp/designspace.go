package exp

import (
	"fmt"

	"djstar/internal/audio"
	"djstar/internal/engine"
	"djstar/internal/rescon"
	"djstar/internal/stats"
)

// DesignSpaceResult quantifies the §V strategy-selection argument: task
// scheduling vs software pipelining vs data parallelism under DJ Star's
// per-packet latency constraint.
type DesignSpaceResult struct {
	DeadlineUS float64
	// TaskLatencyUS is the per-packet latency of the chosen approach
	// (BUSY task scheduling, simulated on 4 threads).
	TaskLatencyUS float64
	// Pipeline is the software-pipelining model.
	Pipeline *rescon.PipelineResult
	// DataParallel2 and DataParallel4 are batch data-parallel models.
	DataParallel2 *rescon.DataParallelResult
	DataParallel4 *rescon.DataParallelResult
}

// DesignSpace reproduces the paper's §V design-space argument with
// numbers: the task graph "cannot be executed with a data parallel
// strategy on different audio packets, because the packets are not
// available in advance", and "the same argument holds for transforming
// the task graph into a pipeline". Both alternatives achieve competitive
// *throughput* but their per-packet *latency* is dominated by waiting for
// future packets or pipeline fill — with a 2.9 ms deadline per packet,
// only direct task scheduling fits.
func DesignSpace(opts Options) (*DesignSpaceResult, error) {
	opts.normalize()
	durs, plan, err := engine.MeasureNodeDurations(opts.graphConfig(), min(opts.Cycles, 1000))
	if err != nil {
		return nil, err
	}
	m, err := rescon.FromPlan(plan, durs)
	if err != nil {
		return nil, err
	}

	busy, err := m.SimulateBusy(opts.MaxThreads, rescon.StrategyOverheads{CheckUS: 0.5 * opts.Scale})
	if err != nil {
		return nil, err
	}
	pipe, err := m.SimulatePipeline(plan.Depth, opts.MaxThreads)
	if err != nil {
		return nil, err
	}
	period := audio.StandardPacketPeriod.Seconds() * 1e6
	dp2, err := m.SimulateDataParallel(2, opts.MaxThreads, period)
	if err != nil {
		return nil, err
	}
	dp4, err := m.SimulateDataParallel(4, opts.MaxThreads, period)
	if err != nil {
		return nil, err
	}

	res := &DesignSpaceResult{
		DeadlineUS:    period,
		TaskLatencyUS: busy.MakespanUS,
		Pipeline:      pipe,
		DataParallel2: dp2,
		DataParallel4: dp4,
	}

	verdict := func(latency float64) string {
		if latency <= period {
			return "meets deadline"
		}
		return fmt.Sprintf("MISSES deadline (%.1fx)", latency/period)
	}
	fprintf(opts.Out, "§V design space: per-packet latency under the %.0f µs packet deadline\n", period)
	fprintf(opts.Out, "%s\n", stats.RenderTable(
		[]string{"approach", "latency µs", "throughput µs/pkt", "verdict"},
		[][]string{
			{
				fmt.Sprintf("task scheduling (BUSY, %d threads)", opts.MaxThreads),
				fmt.Sprintf("%.1f", busy.MakespanUS),
				fmt.Sprintf("%.1f", busy.MakespanUS),
				verdict(busy.MakespanUS),
			},
			{
				fmt.Sprintf("software pipeline (%d stages)", pipe.Stages),
				fmt.Sprintf("%.1f", pipe.LatencyUS),
				fmt.Sprintf("%.1f", pipe.InitiationIntervalUS),
				verdict(pipe.LatencyUS),
			},
			{
				"data parallel (batch 2)",
				fmt.Sprintf("%.1f", dp2.LatencyUS),
				fmt.Sprintf("%.1f", dp2.ThroughputIntervalUS),
				verdict(dp2.LatencyUS),
			},
			{
				"data parallel (batch 4)",
				fmt.Sprintf("%.1f", dp4.LatencyUS),
				fmt.Sprintf("%.1f", dp4.ThroughputIntervalUS),
				verdict(dp4.LatencyUS),
			},
		}))
	return res, nil
}
