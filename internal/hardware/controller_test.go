package hardware

import (
	"math"
	"strings"
	"testing"

	"djstar/internal/graph"
)

func testSession(t *testing.T) *graph.Session {
	t.Helper()
	cfg := graph.DefaultConfig()
	cfg.TrackBars = 2
	s, _, err := graph.BuildDJStar(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMappingFadersAndCrossfader(t *testing.T) {
	s := testSession(t)
	m := NewMapping(s)
	m.Apply(ControlEvent{Control: "crossfader", Kind: KindFader, Value: 0.25})
	if s.Mix.Crossfade() != 0.25 {
		t.Fatalf("crossfade = %v", s.Mix.Crossfade())
	}
	m.Apply(ControlEvent{Control: "ch2.fader", Kind: KindFader, Value: 0.5})
	if s.Strips[2].Fader() != 0.5 {
		t.Fatalf("ch2 fader = %v", s.Strips[2].Fader())
	}
	m.Apply(ControlEvent{Control: "master.level", Kind: KindKnob, Value: 0.5})
	if s.Mix.MasterLevel() != 1.0 {
		t.Fatalf("master = %v", s.Mix.MasterLevel())
	}
	if m.Applied() != 3 || m.Unknown() != 0 {
		t.Fatalf("applied/unknown = %d/%d", m.Applied(), m.Unknown())
	}
}

func TestMappingEQ(t *testing.T) {
	s := testSession(t)
	m := NewMapping(s)
	m.Apply(ControlEvent{Control: "ch0.eq.low", Kind: KindKnob, Value: 0}) // kill
	low, mid, high := s.Strips[0].EQGains()
	if math.Abs(low-(-26)) > 1e-9 || mid != 0 || high != 0 {
		t.Fatalf("gains = %v %v %v", low, mid, high)
	}
	m.Apply(ControlEvent{Control: "ch0.eq.high", Kind: KindKnob, Value: 1}) // full boost
	low, _, high = s.Strips[0].EQGains()
	if math.Abs(high-12) > 1e-9 {
		t.Fatalf("high = %v", high)
	}
	// Low band setting preserved.
	if math.Abs(low-(-26)) > 1e-9 {
		t.Fatalf("low clobbered: %v", low)
	}
	// Center detent.
	m.Apply(ControlEvent{Control: "ch0.eq.mid", Kind: KindKnob, Value: 0.5})
	_, mid, _ = s.Strips[0].EQGains()
	if mid != 0 {
		t.Fatalf("mid at detent = %v", mid)
	}
}

func TestMappingDeckControls(t *testing.T) {
	s := testSession(t)
	m := NewMapping(s)

	m.Apply(ControlEvent{Control: "deck1.tempo", Kind: KindFader, Value: 1})
	if got := s.Decks[1].Tempo(); math.Abs(got-1.08) > 1e-9 {
		t.Fatalf("tempo = %v, want 1.08", got)
	}

	before := s.Decks[0].Position()
	m.Apply(ControlEvent{Control: "deck0.jog", Kind: KindJog, Value: 2})
	if got := s.Decks[0].Position(); math.Abs(got-(before+256)) > 1e-9 {
		t.Fatalf("jog moved to %v, want %v", got, before+256)
	}

	// Play toggles.
	wasPlaying := s.Decks[3].Playing()
	m.Apply(ControlEvent{Control: "deck3.play", Kind: KindButton, Value: 1})
	if s.Decks[3].Playing() == wasPlaying {
		t.Fatal("play did not toggle")
	}
	m.Apply(ControlEvent{Control: "deck3.play", Kind: KindButton, Value: 1})
	if s.Decks[3].Playing() != wasPlaying {
		t.Fatal("play did not toggle back")
	}
	// Release (value 0) does not toggle.
	m.Apply(ControlEvent{Control: "deck3.play", Kind: KindButton, Value: 0})
	if s.Decks[3].Playing() != wasPlaying {
		t.Fatal("button release toggled")
	}
}

func TestMappingFXAndSampler(t *testing.T) {
	s := testSession(t)
	m := NewMapping(s)
	m.Apply(ControlEvent{Control: "deck2.fx1.macro", Kind: KindKnob, Value: 0.9})
	if got := s.FX[2][1].Macro(); math.Abs(got-0.9) > 1e-9 {
		t.Fatalf("macro = %v", got)
	}
	m.Apply(ControlEvent{Control: "deck2.fx0.wet", Kind: KindKnob, Value: 0.7})
	m.Apply(ControlEvent{Control: "sampler.trigger", Kind: KindButton, Value: 1})
	if !s.Sampler.Playing() {
		t.Fatal("sampler not triggered")
	}
	m.Apply(ControlEvent{Control: "ch1.cue", Kind: KindButton, Value: 1})
	if !s.Strips[1].Cue() {
		t.Fatal("cue not set")
	}
}

func TestMappingUnknownControls(t *testing.T) {
	s := testSession(t)
	m := NewMapping(s)
	for _, ctl := range []string{"bogus", "ch9.fader", "deck7.tempo", "deck0.fx9.macro", ""} {
		m.Apply(ControlEvent{Control: ctl, Value: 0.5})
	}
	if m.Applied() != 0 {
		t.Fatalf("applied = %d, want 0", m.Applied())
	}
	if m.Unknown() != 5 {
		t.Fatalf("unknown = %d, want 5", m.Unknown())
	}
}

func TestControlEventString(t *testing.T) {
	s := ControlEvent{Control: "crossfader", Value: 0.5}.String()
	if !strings.Contains(s, "crossfader") || !strings.Contains(s, "0.500") {
		t.Fatalf("String = %q", s)
	}
}

func TestKnobToDB(t *testing.T) {
	cases := []struct{ v, want float64 }{
		{0, -26}, {0.5, 0}, {1, 12}, {-1, -26}, {2, 12}, {0.25, -13}, {0.75, 6},
	}
	for _, c := range cases {
		if got := knobToDB(c.v); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("knobToDB(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestPerformerDeterministicAndApplicable(t *testing.T) {
	a := NewPerformer(99, 4)
	b := NewPerformer(99, 4)
	s := testSession(t)
	m := NewMapping(s)
	events := 0
	for cycle := 0; cycle < 5000; cycle++ {
		evA := a.Next()
		evB := b.Next()
		if len(evA) != len(evB) {
			t.Fatal("performer not deterministic")
		}
		for i, ev := range evA {
			if ev != evB[i] {
				t.Fatal("performer events differ")
			}
			m.Apply(ev)
			events++
		}
	}
	if events == 0 {
		t.Fatal("performer emitted nothing in 5000 cycles")
	}
	// Every generated control must be recognized by the mapping.
	if m.Unknown() != 0 {
		t.Fatalf("performer produced %d unknown controls", m.Unknown())
	}
	if m.Applied() != int64(events) {
		t.Fatalf("applied %d of %d", m.Applied(), events)
	}
}

func TestPerformerDensity(t *testing.T) {
	p := NewPerformer(7, 4)
	p.EventsPerCycle = 0.5
	total := 0
	const cycles = 10000
	for i := 0; i < cycles; i++ {
		total += len(p.Next())
	}
	rate := float64(total) / cycles
	if rate < 0.3 || rate > 0.7 {
		t.Fatalf("event rate %v, want ~0.5", rate)
	}
	// Degenerate decks count.
	if NewPerformer(1, 0) == nil {
		t.Fatal("nil performer")
	}
}
