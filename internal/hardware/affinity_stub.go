//go:build !linux

package hardware

// PinningSupported reports whether PinThread can bind threads here.
func PinningSupported() bool { return false }

// PinThread is a no-op outside Linux: the fleet still partitions
// admission capacity per shard, it just cannot enforce the partition on
// the cores.
func PinThread(cpus []int) error { return nil }
