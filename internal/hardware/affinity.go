// CPU affinity: shard layers pin each worker pool to a disjoint CPU set
// so sessions on one shard never preempt another shard's workers — the
// capacity-isolation half of server-based multiprocessor scheduling.
// Linux binds threads with sched_setaffinity; every other platform is a
// documented no-op (the fleet still partitions admission capacity, it
// just cannot enforce the partition on the cores).
package hardware

import "fmt"

// SplitCPUs partitions CPUs 0..total-1 into n disjoint, contiguous,
// near-equal sets — one per shard. When total < n the trailing sets are
// empty (those shards run unpinned); the remainder CPUs go to the
// leading sets so no set differs from another by more than one CPU.
func SplitCPUs(total, n int) [][]int {
	if n <= 0 {
		return nil
	}
	sets := make([][]int, n)
	if total <= 0 {
		return sets
	}
	base, rem := total/n, total%n
	cpu := 0
	for i := 0; i < n; i++ {
		size := base
		if i < rem {
			size++
		}
		for j := 0; j < size; j++ {
			sets[i] = append(sets[i], cpu)
			cpu++
		}
	}
	return sets
}

// cpuMask builds a sched_setaffinity bitmask (1024 CPUs) from a CPU list.
func cpuMask(cpus []int) ([16]uint64, error) {
	var mask [16]uint64
	for _, c := range cpus {
		if c < 0 || c >= len(mask)*64 {
			return mask, fmt.Errorf("hardware: cpu %d out of range [0, %d)", c, len(mask)*64)
		}
		mask[c/64] |= 1 << (uint(c) % 64)
	}
	return mask, nil
}
