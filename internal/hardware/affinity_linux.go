//go:build linux

package hardware

import (
	"fmt"
	"syscall"
	"unsafe"
)

// PinningSupported reports whether PinThread can bind threads here.
func PinningSupported() bool { return true }

// PinThread binds the calling OS thread to the given CPU set. The caller
// must hold the thread (runtime.LockOSThread) or the binding applies to
// whatever thread the goroutine happens to occupy. An empty set is a
// no-op.
func PinThread(cpus []int) error {
	if len(cpus) == 0 {
		return nil
	}
	mask, err := cpuMask(cpus)
	if err != nil {
		return err
	}
	// tid 0 = the calling thread.
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, uintptr(len(mask)*8), uintptr(unsafe.Pointer(&mask[0])))
	if errno != 0 {
		return fmt.Errorf("hardware: sched_setaffinity(%v): %v", cpus, errno)
	}
	return nil
}
