package hardware

import (
	"runtime"
	"testing"
)

func TestSplitCPUsPartition(t *testing.T) {
	for _, tc := range []struct{ total, n int }{
		{8, 2}, {7, 2}, {4, 4}, {3, 4}, {1, 2}, {16, 3},
	} {
		sets := SplitCPUs(tc.total, tc.n)
		if len(sets) != tc.n {
			t.Fatalf("SplitCPUs(%d,%d): %d sets", tc.total, tc.n, len(sets))
		}
		seen := make(map[int]bool)
		count := 0
		for i, s := range sets {
			for _, c := range s {
				if c < 0 || c >= tc.total {
					t.Fatalf("SplitCPUs(%d,%d): cpu %d out of range", tc.total, tc.n, c)
				}
				if seen[c] {
					t.Fatalf("SplitCPUs(%d,%d): cpu %d in two sets", tc.total, tc.n, c)
				}
				seen[c] = true
				count++
			}
			// Near-equal: no set larger than another by more than one.
			if j := (i + 1) % tc.n; len(sets[i]) < len(sets[j])-1 || len(sets[i]) > len(sets[j])+1 {
				t.Fatalf("SplitCPUs(%d,%d): uneven sets %v", tc.total, tc.n, sets)
			}
		}
		if count != tc.total {
			t.Fatalf("SplitCPUs(%d,%d): covered %d cpus", tc.total, tc.n, count)
		}
	}
}

func TestPinThread(t *testing.T) {
	if !PinningSupported() {
		if err := PinThread([]int{0}); err != nil {
			t.Fatalf("stub PinThread: %v", err)
		}
		return
	}
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	if err := PinThread([]int{0}); err != nil {
		t.Fatalf("PinThread([0]): %v", err)
	}
	// Restore the full mask so the test thread is not left confined.
	all := make([]int, runtime.NumCPU())
	for i := range all {
		all[i] = i
	}
	if err := PinThread(all); err != nil {
		t.Fatalf("PinThread(all): %v", err)
	}
	if err := PinThread([]int{-1}); err == nil {
		t.Fatal("PinThread([-1]) accepted an invalid cpu")
	}
}
