// Package hardware implements the Hardware Access layer of DJ Star's
// architecture (paper Fig. 2): "A second task of this layer is to connect
// to external control devices via USB." Since no physical controller is
// attached, the package provides both sides: a MIDI-style control-surface
// protocol with a Mapping that applies control changes to the audio
// session, and a simulated performer device that generates realistic
// control traffic (the substitution for a human DJ on a USB controller).
package hardware

import (
	"fmt"

	"djstar/internal/audio"
	"djstar/internal/graph"
	"djstar/internal/synth"
)

// ControlKind classifies a control on the surface.
type ControlKind int

const (
	// KindFader is an absolute 0..1 control (channel faders, crossfader).
	KindFader ControlKind = iota
	// KindKnob is an absolute 0..1 rotary (EQ, FX macros).
	KindKnob
	// KindButton is a momentary trigger (cue, sampler); Value 1 = press.
	KindButton
	// KindJog is a relative control; Value is a signed nudge amount.
	KindJog
)

// ControlEvent is one input from the control surface.
type ControlEvent struct {
	// Control identifies the physical control ("ch0.fader",
	// "crossfader", "deck1.jog", "deck2.fx1.macro", ...).
	Control string
	// Kind classifies the control.
	Kind ControlKind
	// Value is the control position (absolute kinds) or delta (jog).
	Value float64
}

// String renders the event for logs.
func (e ControlEvent) String() string {
	return fmt.Sprintf("%s=%.3f", e.Control, e.Value)
}

// Mapping routes control events onto a live session, the way the real
// application's hardware layer drives the Core. It is intended to be
// called between audio cycles (the engine mutates session state only
// there).
type Mapping struct {
	session *graph.Session
	applied int64
	unknown int64
}

// NewMapping returns a mapping bound to a session.
func NewMapping(s *graph.Session) *Mapping {
	return &Mapping{session: s}
}

// Applied returns how many events were recognized and applied.
func (m *Mapping) Applied() int64 { return m.applied }

// Unknown returns how many events had no mapping.
func (m *Mapping) Unknown() int64 { return m.unknown }

// Apply routes one event. Unknown controls are counted and ignored (a
// real controller sends plenty of controls a given mapping doesn't use).
func (m *Mapping) Apply(ev ControlEvent) {
	s := m.session
	var chan_, deck, fx int
	switch {
	case ev.Control == "crossfader":
		s.Mix.SetCrossfade(ev.Value)
	case ev.Control == "master.level":
		s.Mix.SetMasterLevel(ev.Value * 2)
	case ev.Control == "sampler.trigger":
		if ev.Value > 0.5 {
			s.Sampler.Trigger()
		}
	case scan1(ev.Control, "ch%d.fader", &chan_) && chan_ < len(s.Strips):
		s.Strips[chan_].SetFader(ev.Value)
	case scan1(ev.Control, "ch%d.cue", &chan_) && chan_ < len(s.Strips):
		s.Strips[chan_].SetCue(ev.Value > 0.5)
	case scan1(ev.Control, "ch%d.eq.low", &chan_) && chan_ < len(s.Strips):
		m.setEQBand(chan_, 0, ev.Value)
	case scan1(ev.Control, "ch%d.eq.mid", &chan_) && chan_ < len(s.Strips):
		m.setEQBand(chan_, 1, ev.Value)
	case scan1(ev.Control, "ch%d.eq.high", &chan_) && chan_ < len(s.Strips):
		m.setEQBand(chan_, 2, ev.Value)
	case scan1(ev.Control, "deck%d.tempo", &deck) && deck < len(s.Decks):
		// Fader 0..1 maps to a ±8 % pitch range around unity.
		s.Decks[deck].SetTempo(0.92 + ev.Value*0.16)
	case scan1(ev.Control, "deck%d.jog", &deck) && deck < len(s.Decks):
		// Relative nudge in packets worth of frames.
		s.Decks[deck].Seek(s.Decks[deck].Position() + ev.Value*audio.PacketSize)
	case scan1(ev.Control, "deck%d.play", &deck) && deck < len(s.Decks):
		if ev.Value > 0.5 {
			if s.Decks[deck].Playing() {
				s.Decks[deck].Pause()
			} else {
				s.Decks[deck].Play()
			}
		}
	case scan2(ev.Control, "deck%d.fx%d.macro", &deck, &fx) &&
		deck < len(s.FX) && fx < len(s.FX[deck]):
		s.FX[deck][fx].SetMacro(ev.Value)
	case scan2(ev.Control, "deck%d.fx%d.wet", &deck, &fx) &&
		deck < len(s.FX) && fx < len(s.FX[deck]):
		s.FX[deck][fx].SetWet(ev.Value)
	default:
		m.unknown++
		return
	}
	m.applied++
}

// setEQBand adjusts one band, mapping 0..1 to [EQGainMin, +12] with the
// usual center detent at 0 dB.
func (m *Mapping) setEQBand(ch, band int, v float64) {
	db := knobToDB(v)
	low, mid, high := m.session.Strips[ch].EQGains()
	switch band {
	case 0:
		low = db
	case 1:
		mid = db
	case 2:
		high = db
	}
	m.session.Strips[ch].SetEQ(low, mid, high)
}

// knobToDB maps 0..1 to dB: 0 → -26 (kill), 0.5 → 0, 1 → +12.
func knobToDB(v float64) float64 {
	v = audio.Clamp(v, 0, 1)
	if v < 0.5 {
		return -26 * (0.5 - v) * 2
	}
	return 12 * (v - 0.5) * 2
}

// scan1 and scan2 parse fixed patterns without regexp.
func scan1(s, pattern string, a *int) bool {
	n, err := fmt.Sscanf(s, pattern, a)
	return err == nil && n == 1 && *a >= 0
}

func scan2(s, pattern string, a, b *int) bool {
	n, err := fmt.Sscanf(s, pattern, a, b)
	return err == nil && n == 2 && *a >= 0 && *b >= 0
}

// Performer simulates a DJ working a controller: it emits plausible
// control traffic (fader rides, EQ cuts, jog nudges, FX tweaks) at a
// configurable density. Deterministic for a given seed.
type Performer struct {
	rng   *synth.Rand
	decks int
	// EventsPerCycle is the expected number of control events per audio
	// cycle (DJs tweak a few controls per second; the default 0.05 at
	// 344 cycles/s is ~17 events per second).
	EventsPerCycle float64
}

// NewPerformer returns a deterministic simulated performer.
func NewPerformer(seed uint64, decks int) *Performer {
	if decks < 1 {
		decks = 1
	}
	return &Performer{rng: synth.NewRand(seed), decks: decks, EventsPerCycle: 0.05}
}

// Next returns the control events for one audio cycle (often none).
// The returned slice is only valid until the next call.
func (p *Performer) Next() []ControlEvent {
	var out []ControlEvent
	// Poisson-ish: emit while the dice keep succeeding.
	chance := p.EventsPerCycle
	for chance > 0 && p.rng.Float64() < chance {
		out = append(out, p.randomEvent())
		chance -= 1
	}
	return out
}

func (p *Performer) randomEvent() ControlEvent {
	deck := p.rng.Intn(p.decks)
	switch p.rng.Intn(8) {
	case 0:
		return ControlEvent{Control: "crossfader", Kind: KindFader, Value: p.rng.Float64()}
	case 1:
		return ControlEvent{Control: fmt.Sprintf("ch%d.fader", deck), Kind: KindFader, Value: p.rng.Float64()}
	case 2:
		band := []string{"low", "mid", "high"}[p.rng.Intn(3)]
		return ControlEvent{Control: fmt.Sprintf("ch%d.eq.%s", deck, band), Kind: KindKnob, Value: p.rng.Float64()}
	case 3:
		return ControlEvent{Control: fmt.Sprintf("deck%d.tempo", deck), Kind: KindFader, Value: 0.4 + 0.2*p.rng.Float64()}
	case 4:
		return ControlEvent{Control: fmt.Sprintf("deck%d.jog", deck), Kind: KindJog, Value: (p.rng.Float64() - 0.5) * 2}
	case 5:
		fx := p.rng.Intn(4)
		return ControlEvent{Control: fmt.Sprintf("deck%d.fx%d.macro", deck, fx), Kind: KindKnob, Value: p.rng.Float64()}
	case 6:
		return ControlEvent{Control: fmt.Sprintf("ch%d.cue", deck), Kind: KindButton, Value: float64(p.rng.Intn(2))}
	default:
		return ControlEvent{Control: "sampler.trigger", Kind: KindButton, Value: 1}
	}
}
