// Package mixer implements the DJ Star mixer and master section: channel
// strips (filter + EQ + fader + cue switch), the crossfader, the master
// mix, the cue/monitor bus and the record path (Fig. 3's right half). The
// audio-graph nodes for ChannelA..D, Mixer, MasterBuffer, CueBuffer,
// MonitorBuffer, AudioOut1 and RecordBuffer are thin wrappers over the
// types here.
package mixer

import (
	"fmt"

	"djstar/internal/audio"
	"djstar/internal/dsp"
)

// CrossfadeSide assigns a channel to one side of the crossfader.
type CrossfadeSide int

const (
	// CrossfadeThru bypasses the crossfader (center channels, samplers).
	CrossfadeThru CrossfadeSide = iota
	// CrossfadeA routes the channel through the A side.
	CrossfadeA
	// CrossfadeB routes the channel through the B side.
	CrossfadeB
)

// ChannelStrip processes one deck's post-FX signal: a sweepable filter,
// three-band EQ, smoothed channel fader, cue switch and crossfader
// assignment.
type ChannelStrip struct {
	name string
	rate int

	filterL, filterR *dsp.Biquad
	filterOn         bool
	eqL, eqR         *dsp.ThreeBandEQ
	gainL, gainR     *dsp.SmoothedGain
	fader            float64
	cue              bool
	side             CrossfadeSide

	peak float64 // post-fader peak of the last packet, for metering
}

// NewChannelStrip returns a strip with a flat EQ, open fader and no cue.
func NewChannelStrip(name string, rate int) *ChannelStrip {
	return &ChannelStrip{
		name:    name,
		rate:    rate,
		filterL: dsp.NewBiquad(dsp.AllPass, 1000, 0.9, 0, rate),
		filterR: dsp.NewBiquad(dsp.AllPass, 1000, 0.9, 0, rate),
		eqL:     dsp.NewThreeBandEQ(rate),
		eqR:     dsp.NewThreeBandEQ(rate),
		gainL:   dsp.NewSmoothedGain(1),
		gainR:   dsp.NewSmoothedGain(1),
		fader:   1,
	}
}

// Name returns the strip label.
func (c *ChannelStrip) Name() string { return c.name }

// SetFilter configures the strip filter; kind AllPass with on=false
// bypasses it.
func (c *ChannelStrip) SetFilter(kind dsp.FilterKind, freq, q float64, on bool) {
	c.filterOn = on
	if on {
		c.filterL.Configure(kind, freq, q, 0, c.rate)
		c.filterR.Configure(kind, freq, q, 0, c.rate)
	}
}

// SetEQ sets the strip's three-band EQ gains in dB.
func (c *ChannelStrip) SetEQ(lowDB, midDB, highDB float64) {
	c.eqL.SetGains(lowDB, midDB, highDB)
	c.eqR.SetGains(lowDB, midDB, highDB)
}

// EQGains returns the strip's current low/mid/high EQ gains in dB.
func (c *ChannelStrip) EQGains() (lowDB, midDB, highDB float64) {
	return c.eqL.Gains()
}

// SetFader positions the channel fader in [0, 1] (audio taper applied).
func (c *ChannelStrip) SetFader(x float64) {
	c.fader = audio.Clamp(x, 0, 1)
}

// Fader returns the raw fader position.
func (c *ChannelStrip) Fader() float64 { return c.fader }

// SetCue routes the channel to the headphone bus.
func (c *ChannelStrip) SetCue(on bool) { c.cue = on }

// Cue reports whether the channel feeds the cue bus.
func (c *ChannelStrip) Cue() bool { return c.cue }

// SetCrossfadeSide assigns the channel to a crossfader side.
func (c *ChannelStrip) SetCrossfadeSide(s CrossfadeSide) { c.side = s }

// CrossfadeSide returns the channel's crossfader assignment.
func (c *ChannelStrip) CrossfadeSide() CrossfadeSide { return c.side }

// Peak returns the post-fader peak of the most recent packet.
func (c *ChannelStrip) Peak() float64 { return c.peak }

// Process runs the strip over one stereo packet in place.
func (c *ChannelStrip) Process(buf audio.Stereo) {
	if c.filterOn {
		c.filterL.Process(buf.L)
		c.filterR.Process(buf.R)
	}
	c.eqL.Process(buf.L)
	c.eqR.Process(buf.R)
	g := dsp.FaderCurve(c.fader)
	c.gainL.Apply(buf.L, g)
	c.gainR.Apply(buf.R, g)
	c.peak = buf.Peak()
}

// Reset clears all strip DSP state.
func (c *ChannelStrip) Reset() {
	c.filterL.Reset()
	c.filterR.Reset()
	c.eqL.Reset()
	c.eqR.Reset()
	c.peak = 0
}

// Mixer combines the channel outputs (through the crossfader) and the
// sampler into the master bus and derives the cue bus.
type Mixer struct {
	crossfade   float64 // 0 = full A, 1 = full B
	masterLevel float64
	cueMix      float64 // headphone blend: 0 = pure cue, 1 = master
}

// NewMixer returns a mixer with the crossfader centered and unity master.
func NewMixer() *Mixer {
	return &Mixer{crossfade: 0.5, masterLevel: 1, cueMix: 0}
}

// SetCrossfade positions the crossfader in [0, 1].
func (m *Mixer) SetCrossfade(x float64) { m.crossfade = audio.Clamp(x, 0, 1) }

// Crossfade returns the crossfader position.
func (m *Mixer) Crossfade() float64 { return m.crossfade }

// SetMasterLevel sets the master output gain in [0, 2].
func (m *Mixer) SetMasterLevel(g float64) { m.masterLevel = audio.Clamp(g, 0, 2) }

// MasterLevel returns the master output gain.
func (m *Mixer) MasterLevel() float64 { return m.masterLevel }

// SetCueMix blends the headphone output between cue (0) and master (1).
func (m *Mixer) SetCueMix(x float64) { m.cueMix = audio.Clamp(x, 0, 1) }

// ChannelInput couples a strip with its processed packet for mixing.
type ChannelInput struct {
	Strip  *ChannelStrip
	Packet audio.Stereo
}

// MixInto sums the channels and sampler into master (which is zeroed
// first), applying crossfader gains and the master level.
func (m *Mixer) MixInto(master audio.Stereo, channels []ChannelInput, sampler audio.Stereo) {
	master.Zero()
	ga, gb := dsp.CrossfadeGains(m.crossfade)
	for _, ch := range channels {
		g := 1.0
		switch ch.Strip.CrossfadeSide() {
		case CrossfadeA:
			g = ga
		case CrossfadeB:
			g = gb
		}
		master.AddFrom(ch.Packet, g)
	}
	if sampler.Len() > 0 {
		master.AddFrom(sampler, 1)
	}
	master.Scale(m.masterLevel)
}

// CueInto builds the headphone bus: the sum of cued channels, blended with
// the master according to the cue mix. dst is zeroed first.
func (m *Mixer) CueInto(dst audio.Stereo, channels []ChannelInput, master audio.Stereo) {
	dst.Zero()
	any := false
	for _, ch := range channels {
		if ch.Strip.Cue() {
			dst.AddFrom(ch.Packet, 1)
			any = true
		}
	}
	if !any && m.cueMix == 0 {
		// Nothing cued: headphones get the master so they are never dead.
		dst.AddFrom(master, 1)
		return
	}
	if m.cueMix > 0 {
		dst.Scale(1 - m.cueMix)
		dst.AddFrom(master, m.cueMix)
	}
}

// OutputStage is the limiter + hard clip applied by AudioOut1 and
// RecordBuffer before samples leave the engine.
type OutputStage struct {
	limiterL, limiterR *dsp.Limiter
	ceiling            float64
	clipped            int64 // total clipped samples, for diagnostics
}

// NewOutputStage returns an output stage with the given linear ceiling.
func NewOutputStage(ceiling float64, rate int) *OutputStage {
	attack := float64(rate) * 0.0002 // 0.2 ms
	release := float64(rate) * 0.05  // 50 ms
	return &OutputStage{
		limiterL: dsp.NewLimiter(ceiling*0.97, attack, release, rate),
		limiterR: dsp.NewLimiter(ceiling*0.97, attack, release, rate),
		ceiling:  ceiling,
	}
}

// Process limits and clips one packet in place.
func (o *OutputStage) Process(buf audio.Stereo) {
	o.limiterL.Process(buf.L)
	o.limiterR.Process(buf.R)
	o.clipped += int64(dsp.HardClip(buf.L, o.ceiling))
	o.clipped += int64(dsp.HardClip(buf.R, o.ceiling))
}

// ClippedSamples returns the running count of hard-clipped samples.
func (o *OutputStage) ClippedSamples() int64 { return o.clipped }

// Reset clears limiter state and the clip counter.
func (o *OutputStage) Reset() {
	o.limiterL.Reset()
	o.limiterR.Reset()
	o.clipped = 0
}

// Sampler plays one-shot audio clips into the mix ("Audio Sampler" in
// Fig. 3). Triggering restarts the clip.
type Sampler struct {
	clip    audio.Stereo
	pos     int
	playing bool
	gain    float64
}

// NewSampler returns an empty sampler at unity gain.
func NewSampler() *Sampler { return &Sampler{gain: 1} }

// LoadClip installs the clip the sampler plays.
func (s *Sampler) LoadClip(clip audio.Stereo) {
	s.clip = clip
	s.pos = 0
	s.playing = false
}

// SetGain sets the sampler level in [0, 2].
func (s *Sampler) SetGain(g float64) { s.gain = audio.Clamp(g, 0, 2) }

// Trigger (re)starts clip playback; a no-op when no clip is loaded.
func (s *Sampler) Trigger() {
	if s.clip.Len() > 0 {
		s.pos = 0
		s.playing = true
	}
}

// Playing reports whether the sampler is sounding.
func (s *Sampler) Playing() bool { return s.playing }

// ReadPacket fills dst with the next stretch of the clip (zero padded) and
// advances; playback stops at the clip end.
func (s *Sampler) ReadPacket(dst audio.Stereo) {
	dst.Zero()
	if !s.playing {
		return
	}
	n := dst.Len()
	remain := s.clip.Len() - s.pos
	if remain <= 0 {
		s.playing = false
		return
	}
	cnt := min(n, remain)
	for i := 0; i < cnt; i++ {
		dst.L[i] = s.clip.L[s.pos+i] * s.gain
		dst.R[i] = s.clip.R[s.pos+i] * s.gain
	}
	s.pos += cnt
	if s.pos >= s.clip.Len() {
		s.playing = false
	}
}

// VUMeter tracks peak and RMS with ballistic decay for the metering nodes.
type VUMeter struct {
	peak  float64
	rms   float64
	decay float64
}

// NewVUMeter returns a meter whose peak decays by the given factor per
// packet (e.g. 0.95).
func NewVUMeter(decay float64) *VUMeter {
	if decay <= 0 || decay >= 1 {
		decay = 0.95
	}
	return &VUMeter{decay: decay}
}

// Update feeds one packet into the meter.
func (v *VUMeter) Update(buf audio.Stereo) {
	p := buf.Peak()
	if p > v.peak {
		v.peak = p
	} else {
		v.peak *= v.decay
	}
	v.rms = buf.RMS()
}

// Levels returns the current peak and RMS readings.
func (v *VUMeter) Levels() (peak, rms float64) { return v.peak, v.rms }

// String renders the meter as a compact status string.
func (v *VUMeter) String() string {
	return fmt.Sprintf("peak %.2f dB / rms %.2f dB",
		audio.LinearToDB(v.peak), audio.LinearToDB(v.rms))
}
