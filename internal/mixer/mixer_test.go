package mixer

import (
	"math"
	"testing"

	"djstar/internal/audio"
	"djstar/internal/dsp"
	"djstar/internal/synth"
)

const rate = audio.SampleRate

func tonePacket(freq float64, n int) audio.Stereo {
	s := audio.NewStereo(n)
	copy(s.L, synth.SineBuffer(freq, n, rate))
	copy(s.R, s.L)
	return s
}

func TestChannelStripFlatPassThrough(t *testing.T) {
	c := NewChannelStrip("ch-a", rate)
	in := tonePacket(1000, 4096)
	buf := audio.NewStereo(4096)
	buf.CopyFrom(in)
	c.Process(buf)
	// Flat EQ, no filter, unity fader: RMS preserved in steady state.
	before := audio.Buffer(in.L[2048:]).RMS()
	after := audio.Buffer(buf.L[2048:]).RMS()
	if math.Abs(after-before)/before > 0.05 {
		t.Fatalf("flat strip altered level: %v -> %v", before, after)
	}
	if c.Name() != "ch-a" {
		t.Fatalf("Name = %q", c.Name())
	}
	if c.Peak() == 0 {
		t.Fatal("Peak not updated")
	}
}

func TestChannelStripFaderCloses(t *testing.T) {
	c := NewChannelStrip("c", rate)
	c.SetFader(0)
	buf := tonePacket(1000, audio.PacketSize)
	c.Process(buf) // first packet ramps down
	buf2 := tonePacket(1000, audio.PacketSize)
	c.Process(buf2) // second packet fully closed
	if p := buf2.Peak(); p > 1e-9 {
		t.Fatalf("closed fader leaks: %v", p)
	}
	if c.Fader() != 0 {
		t.Fatalf("Fader = %v", c.Fader())
	}
}

func TestChannelStripFaderClamped(t *testing.T) {
	c := NewChannelStrip("c", rate)
	c.SetFader(5)
	if c.Fader() != 1 {
		t.Fatalf("fader = %v, want 1", c.Fader())
	}
	c.SetFader(-1)
	if c.Fader() != 0 {
		t.Fatalf("fader = %v, want 0", c.Fader())
	}
}

func TestChannelStripFilterLP(t *testing.T) {
	c := NewChannelStrip("c", rate)
	c.SetFilter(dsp.LowPass, 500, 0.9, true)
	buf := tonePacket(8000, 4096)
	c.Process(buf)
	if p := audio.Buffer(buf.L[2048:]).Peak(); p > 0.05 {
		t.Fatalf("LP filter left high tone at %v", p)
	}
	c.SetFilter(dsp.AllPass, 0, 0, false) // bypass again
	buf2 := tonePacket(8000, 4096)
	c.Process(buf2)
	if p := audio.Buffer(buf2.L[2048:]).Peak(); p < 0.5 {
		t.Fatalf("bypassed filter still filtering: %v", p)
	}
}

func TestChannelStripEQKill(t *testing.T) {
	c := NewChannelStrip("c", rate)
	c.SetEQ(dsp.EQGainMin, 0, 0)
	buf := tonePacket(60, 8192)
	c.Process(buf)
	if p := audio.Buffer(buf.L[4096:]).Peak(); p > 0.15 {
		t.Fatalf("low kill leaves %v", p)
	}
}

func TestChannelStripCueAndSide(t *testing.T) {
	c := NewChannelStrip("c", rate)
	c.SetCue(true)
	if !c.Cue() {
		t.Fatal("cue not set")
	}
	c.SetCrossfadeSide(CrossfadeB)
	if c.CrossfadeSide() != CrossfadeB {
		t.Fatal("side not set")
	}
	c.Reset()
	if c.Peak() != 0 {
		t.Fatal("Reset did not clear peak")
	}
}

func makeInputs(n int, level float64) []ChannelInput {
	var ins []ChannelInput
	for i := 0; i < n; i++ {
		p := audio.NewStereo(audio.PacketSize)
		for j := range p.L {
			p.L[j] = level
			p.R[j] = level
		}
		ins = append(ins, ChannelInput{Strip: NewChannelStrip("c", rate), Packet: p})
	}
	return ins
}

func TestMixerSumsThruChannels(t *testing.T) {
	m := NewMixer()
	ins := makeInputs(2, 0.25) // both CrossfadeThru by default
	master := audio.NewStereo(audio.PacketSize)
	m.MixInto(master, ins, audio.Stereo{})
	if math.Abs(master.L[10]-0.5) > 1e-9 {
		t.Fatalf("master sample = %v, want 0.5", master.L[10])
	}
}

func TestMixerCrossfadeEnds(t *testing.T) {
	m := NewMixer()
	ins := makeInputs(2, 0.5)
	ins[0].Strip.SetCrossfadeSide(CrossfadeA)
	ins[1].Strip.SetCrossfadeSide(CrossfadeB)
	master := audio.NewStereo(audio.PacketSize)

	m.SetCrossfade(0) // full A
	m.MixInto(master, ins, audio.Stereo{})
	if math.Abs(master.L[5]-0.5) > 1e-9 {
		t.Fatalf("full-A master = %v, want 0.5", master.L[5])
	}

	m.SetCrossfade(1) // full B: A side silent, B at unity
	m.MixInto(master, ins, audio.Stereo{})
	if math.Abs(master.L[5]-0.5) > 1e-9 {
		t.Fatalf("full-B master = %v, want 0.5", master.L[5])
	}

	m.SetCrossfade(0.5) // center: both at cos(pi/4) ~ 0.707
	m.MixInto(master, ins, audio.Stereo{})
	want := 0.5 * math.Sqrt2
	if math.Abs(master.L[5]-want) > 1e-9 {
		t.Fatalf("center master = %v, want %v", master.L[5], want)
	}
}

func TestMixerMasterLevelAndSampler(t *testing.T) {
	m := NewMixer()
	m.SetMasterLevel(0.5)
	ins := makeInputs(1, 0.4)
	smp := audio.NewStereo(audio.PacketSize)
	for i := range smp.L {
		smp.L[i] = 0.2
		smp.R[i] = 0.2
	}
	master := audio.NewStereo(audio.PacketSize)
	m.MixInto(master, ins, smp)
	if math.Abs(master.L[3]-0.3) > 1e-9 { // (0.4+0.2)*0.5
		t.Fatalf("master = %v, want 0.3", master.L[3])
	}
	if m.MasterLevel() != 0.5 {
		t.Fatal("MasterLevel getter wrong")
	}
}

func TestMixerSettersClamped(t *testing.T) {
	m := NewMixer()
	m.SetCrossfade(7)
	if m.Crossfade() != 1 {
		t.Fatalf("crossfade = %v", m.Crossfade())
	}
	m.SetMasterLevel(9)
	if m.MasterLevel() != 2 {
		t.Fatalf("master level = %v", m.MasterLevel())
	}
}

func TestCueBusSelectsCuedChannels(t *testing.T) {
	m := NewMixer()
	ins := makeInputs(2, 0.3)
	ins[0].Strip.SetCue(true)
	master := audio.NewStereo(audio.PacketSize)
	cue := audio.NewStereo(audio.PacketSize)
	m.MixInto(master, ins, audio.Stereo{})
	m.CueInto(cue, ins, master)
	if math.Abs(cue.L[7]-0.3) > 1e-9 {
		t.Fatalf("cue bus = %v, want only channel 0 (0.3)", cue.L[7])
	}
}

func TestCueBusFallsBackToMaster(t *testing.T) {
	m := NewMixer()
	ins := makeInputs(2, 0.3)
	master := audio.NewStereo(audio.PacketSize)
	cue := audio.NewStereo(audio.PacketSize)
	m.MixInto(master, ins, audio.Stereo{})
	m.CueInto(cue, ins, master)
	for i := range cue.L {
		if cue.L[i] != master.L[i] {
			t.Fatalf("cue fallback differs from master at %d", i)
		}
	}
}

func TestCueMixBlends(t *testing.T) {
	m := NewMixer()
	m.SetCueMix(0.5)
	ins := makeInputs(2, 0.4)
	ins[0].Strip.SetCue(true)
	master := audio.NewStereo(audio.PacketSize)
	cue := audio.NewStereo(audio.PacketSize)
	m.MixInto(master, ins, audio.Stereo{}) // master = 0.8
	m.CueInto(cue, ins, master)
	want := 0.4*0.5 + 0.8*0.5
	if math.Abs(cue.L[2]-want) > 1e-9 {
		t.Fatalf("blended cue = %v, want %v", cue.L[2], want)
	}
}

func TestOutputStageLimitsAndClips(t *testing.T) {
	o := NewOutputStage(1.0, rate)
	buf := audio.NewStereo(4096)
	for i := range buf.L {
		buf.L[i] = 3 * math.Sin(2*math.Pi*float64(i)/64)
		buf.R[i] = buf.L[i]
	}
	o.Process(buf)
	if p := buf.Peak(); p > 1.0+1e-12 {
		t.Fatalf("output exceeds ceiling: %v", p)
	}
	o.Reset()
	if o.ClippedSamples() != 0 {
		t.Fatal("Reset did not clear clip counter")
	}
}

func TestSamplerLifecycle(t *testing.T) {
	s := NewSampler()
	dst := audio.NewStereo(audio.PacketSize)
	s.Trigger() // no clip: no-op
	if s.Playing() {
		t.Fatal("empty sampler playing")
	}
	clip := audio.NewStereo(200)
	for i := range clip.L {
		clip.L[i] = 1
		clip.R[i] = 1
	}
	s.LoadClip(clip)
	s.SetGain(0.5)
	s.Trigger()
	if !s.Playing() {
		t.Fatal("sampler not playing after trigger")
	}
	s.ReadPacket(dst)
	if math.Abs(dst.L[0]-0.5) > 1e-12 {
		t.Fatalf("sampler output %v, want 0.5", dst.L[0])
	}
	s.ReadPacket(dst) // 200-sample clip ends inside packet 2
	if s.Playing() {
		t.Fatal("sampler still playing past clip end")
	}
	// Tail zero-padded.
	if dst.L[100] != 0 {
		t.Fatalf("tail not padded: %v", dst.L[100])
	}
	// Re-trigger restarts.
	s.Trigger()
	s.ReadPacket(dst)
	if dst.L[0] != 0.5 {
		t.Fatal("re-trigger did not restart clip")
	}
}

func TestVUMeter(t *testing.T) {
	v := NewVUMeter(0.5)
	buf := tonePacket(1000, audio.PacketSize)
	v.Update(buf)
	peak1, rms1 := v.Levels()
	if peak1 == 0 || rms1 == 0 {
		t.Fatal("meter stayed at zero")
	}
	silent := audio.NewStereo(audio.PacketSize)
	v.Update(silent)
	peak2, rms2 := v.Levels()
	if peak2 >= peak1 || rms2 != 0 {
		t.Fatalf("decay wrong: peak %v->%v rms %v", peak1, peak2, rms2)
	}
	if v.String() == "" {
		t.Fatal("String empty")
	}
	// Invalid decay falls back to default.
	if NewVUMeter(7) == nil {
		t.Fatal("NewVUMeter(7) nil")
	}
}

func TestMixHotPathNoAlloc(t *testing.T) {
	m := NewMixer()
	ins := makeInputs(4, 0.2)
	smp := audio.NewStereo(audio.PacketSize)
	master := audio.NewStereo(audio.PacketSize)
	cue := audio.NewStereo(audio.PacketSize)
	strip := NewChannelStrip("c", rate)
	buf := tonePacket(500, audio.PacketSize)
	out := NewOutputStage(1, rate)
	allocs := testing.AllocsPerRun(100, func() {
		strip.Process(buf)
		m.MixInto(master, ins, smp)
		m.CueInto(cue, ins, master)
		out.Process(master)
	})
	if allocs != 0 {
		t.Fatalf("mix hot path allocates %v per packet", allocs)
	}
}
