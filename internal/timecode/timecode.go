// Package timecode simulates and decodes DVS (digital vinyl system)
// control signals.
//
// DJ Star interprets external control signals from timecode vinyl; the
// paper's profile attributes 16 % of APC run time to this "timecode
// decoder". Since we have no turntable hardware, this package provides
// both sides: a Generator that synthesizes the control signal a turntable
// would produce (the hardware substitution) and a Decoder that recovers
// playback speed, direction and absolute position from it (the subsystem
// under test, executed every cycle by the engine's TP stage).
//
// Signal design, modeled on commercial DVS media: a quadrature sine
// carrier (left = sin, right = cos) whose instantaneous frequency encodes
// playback speed and whose channel ordering encodes direction; each
// carrier cycle is amplitude-modulated with one bit of a maximal-length
// LFSR sequence, so any window of PositionBits consecutive bits uniquely
// identifies the absolute position on the record.
package timecode

import (
	"fmt"
	"math"
)

const (
	// CarrierHz is the nominal carrier frequency at unity playback speed.
	CarrierHz = 1000.0

	// PositionBits is the LFSR window length; 16 bits give 65535 uniquely
	// addressable carrier cycles (~65 s of "vinyl" at unity speed).
	PositionBits = 16

	// bitHigh and bitLow are the cycle amplitudes for 1 and 0 bits.
	bitHigh = 1.0
	bitLow  = 0.55
)

// lfsrNext advances a 16-bit Fibonacci LFSR with taps 16,15,13,4
// (primitive polynomial x^16+x^15+x^13+x^4+1, period 65535).
func lfsrNext(s uint16) uint16 {
	bit := ((s >> 0) ^ (s >> 1) ^ (s >> 3) ^ (s >> 12)) & 1
	return (s >> 1) | (bit << 15)
}

// Sequence holds the precomputed LFSR bitstream and the window → index
// lookup used to resolve absolute positions.
type Sequence struct {
	bits   []uint8           // bit per carrier cycle, length 65535
	lookup map[uint16]uint32 // window of PositionBits bits → cycle index
}

// NewSequence builds the canonical position sequence. It is deterministic
// and somewhat expensive (65535 entries), so callers typically share one
// instance across decks.
func NewSequence() *Sequence {
	const period = 1<<PositionBits - 1
	s := &Sequence{
		bits:   make([]uint8, period),
		lookup: make(map[uint16]uint32, period),
	}
	state := uint16(0xACE1)
	for i := 0; i < period; i++ {
		s.bits[i] = uint8(state & 1)
		state = lfsrNext(state)
	}
	// Window ending at cycle i (inclusive) maps to position i.
	var win uint16
	for i := 0; i < period+PositionBits; i++ {
		bit := s.bits[i%period]
		win = win<<1 | uint16(bit)
		if i >= PositionBits-1 {
			s.lookup[win] = uint32(i % period)
		}
	}
	return s
}

// Len returns the number of cycles in the sequence.
func (s *Sequence) Len() int { return len(s.bits) }

// Bit returns the bit for carrier cycle i (wrapping).
func (s *Sequence) Bit(i int) uint8 {
	n := len(s.bits)
	i %= n
	if i < 0 {
		i += n
	}
	return s.bits[i]
}

// Find resolves a window of the most recent PositionBits bits (oldest bit
// in the highest position) to the cycle index of its last bit. The second
// return is false if the window does not occur, which for a maximal LFSR
// only happens for the all-zero window.
func (s *Sequence) Find(window uint16) (uint32, bool) {
	idx, ok := s.lookup[window]
	return idx, ok
}

// Generator synthesizes the stereo control signal of a turntable playing
// timecode vinyl at a variable speed.
type Generator struct {
	seq   *Sequence
	rate  int
	phase float64 // carrier phase in cycles (absolute record position)
	speed float64 // playback speed; negative plays backwards
}

// NewGenerator returns a generator at unity speed positioned at cycle 0.
func NewGenerator(seq *Sequence, rate int) *Generator {
	return &Generator{seq: seq, rate: rate, speed: 1}
}

// SetSpeed sets the playback speed (1 = normal, 0 = stopped, negative =
// reverse scratch).
func (g *Generator) SetSpeed(v float64) { g.speed = v }

// Speed returns the current playback speed.
func (g *Generator) Speed() float64 { return g.speed }

// Position returns the absolute record position in carrier cycles.
func (g *Generator) Position() float64 { return g.phase }

// Seek jumps the needle to the given absolute cycle position.
func (g *Generator) Seek(cycles float64) {
	n := float64(g.seq.Len())
	g.phase = math.Mod(cycles, n)
	if g.phase < 0 {
		g.phase += n
	}
}

// Generate fills the stereo buffers l and r (equal length) with the next
// packet of control signal and advances the needle.
func (g *Generator) Generate(l, r []float64) {
	if len(l) != len(r) {
		panic(fmt.Sprintf("timecode: channel length mismatch %d != %d", len(l), len(r)))
	}
	inc := CarrierHz / float64(g.rate) * g.speed
	n := float64(g.seq.Len())
	for i := range l {
		cycle := int(math.Floor(g.phase))
		amp := bitLow
		if g.seq.Bit(cycle) == 1 {
			amp = bitHigh
		}
		ang := 2 * math.Pi * g.phase
		l[i] = amp * math.Sin(ang)
		r[i] = amp * math.Cos(ang)
		g.phase += inc
		if g.phase >= n {
			g.phase -= n
		} else if g.phase < 0 {
			g.phase += n
		}
	}
}

// Decoder recovers speed, direction and absolute position from the control
// signal, packet by packet. It is stateful across packets: carrier cycles
// usually straddle packet boundaries.
type Decoder struct {
	seq  *Sequence
	rate int

	prevL      float64
	havePrev   bool
	cyclePeak  float64 // max |L| seen within the current carrier cycle
	cycleLen   int     // samples since the last upward zero crossing
	recentPeak float64 // slow-decaying amplitude reference for bit slicing

	window   uint16 // shift register of decoded bits
	bitsIn   int    // bits accumulated since last sync loss
	position uint32 // last resolved absolute position (cycle index)
	locked   bool

	speedEMA float64 // smoothed speed estimate
	dir      int     // +1 forward, -1 reverse, 0 unknown
	samples  int     // total samples consumed (for diagnostics)
}

// NewDecoder returns a decoder for the given shared sequence and rate.
func NewDecoder(seq *Sequence, rate int) *Decoder {
	return &Decoder{seq: seq, rate: rate}
}

// Reset drops all decoder state (lock, speed estimate, bit register).
func (d *Decoder) Reset() {
	*d = Decoder{seq: d.seq, rate: d.rate}
}

// Locked reports whether the decoder currently has an absolute position
// fix.
func (d *Decoder) Locked() bool { return d.locked }

// Position returns the last resolved absolute position in carrier cycles
// and whether it is valid.
func (d *Decoder) Position() (uint32, bool) { return d.position, d.locked }

// Speed returns the smoothed playback speed estimate (1 = unity). The
// estimate is unsigned magnitude; combine with Direction for sign.
func (d *Decoder) Speed() float64 { return d.speedEMA }

// Direction returns +1 for forward, -1 for reverse, 0 while unknown.
func (d *Decoder) Direction() int { return d.dir }

// Decode consumes one stereo control packet. It returns the number of
// complete carrier cycles observed in the packet.
func (d *Decoder) Decode(l, r []float64) int {
	if len(l) != len(r) {
		panic(fmt.Sprintf("timecode: channel length mismatch %d != %d", len(l), len(r)))
	}
	cycles := 0
	for i := range l {
		s := l[i]
		d.samples++
		d.cycleLen++
		if a := math.Abs(s); a > d.cyclePeak {
			d.cyclePeak = a
		}
		if d.havePrev && d.prevL < 0 && s >= 0 {
			// Upward zero crossing: one carrier cycle completed.
			cycles++
			d.completeCycle(r[i])
		}
		d.prevL = s
		d.havePrev = true
	}
	return cycles
}

// completeCycle processes the cycle that just ended; rSample is the right
// channel at the crossing instant, whose sign encodes direction.
func (d *Decoder) completeCycle(rSample float64) {
	// Direction: at an upward L (sin) zero crossing, R (cos) is positive
	// when playing forward and negative in reverse.
	if rSample > 0 {
		d.dir = 1
	} else if rSample < 0 {
		d.dir = -1
	}

	// Speed: nominal cycle length is rate/CarrierHz samples.
	if d.cycleLen > 0 {
		nominal := float64(d.rate) / CarrierHz
		inst := nominal / float64(d.cycleLen)
		if d.speedEMA == 0 {
			d.speedEMA = inst
		} else {
			d.speedEMA += 0.25 * (inst - d.speedEMA)
		}
	}

	// Bit slicing: compare the cycle's peak against the running amplitude
	// reference. A high cycle refreshes the reference.
	if d.cyclePeak > d.recentPeak {
		d.recentPeak = d.cyclePeak
	} else {
		d.recentPeak *= 0.999 // slow decay tracks level changes
	}
	threshold := d.recentPeak * (bitLow + (bitHigh-bitLow)/2)
	bit := uint16(0)
	if d.cyclePeak > threshold {
		bit = 1
	}
	d.window = d.window<<1 | bit
	d.bitsIn++
	d.cyclePeak = 0
	d.cycleLen = 0

	// Position fix: resolve once the register holds a full window. Only
	// meaningful when playing forward; scratching backwards reverses the
	// bit order, so we drop lock and wait for forward motion.
	if d.dir < 0 {
		d.locked = false
		d.bitsIn = 0
		return
	}
	if d.bitsIn >= PositionBits {
		if pos, ok := d.seq.Find(d.window); ok {
			d.position = pos
			d.locked = true
		} else {
			d.locked = false
		}
	}
}

// PositionSeconds converts a cycle position to seconds of record time at
// unity speed.
func PositionSeconds(cycles uint32) float64 {
	return float64(cycles) / CarrierHz
}
