package timecode

import (
	"math"
	"testing"

	"djstar/internal/audio"
)

// FuzzDecoder feeds arbitrary byte-derived signals into the decoder: it
// must never panic and never report a nonsensical speed, no matter how
// garbled the "vinyl" signal is (a real deck sees dust, scratches and
// unplugged inputs).
func FuzzDecoder(f *testing.F) {
	// Seeds: silence, a valid signal, random noise.
	valid := make([]byte, 64)
	for i := range valid {
		valid[i] = byte(i * 37)
	}
	f.Add(make([]byte, 32))
	f.Add(valid)
	f.Add([]byte{255, 0, 255, 0, 128})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(sharedSeq, audio.SampleRate)
		l := make([]float64, audio.PacketSize)
		r := make([]float64, audio.PacketSize)
		// Expand fuzz bytes into a few packets of signal in [-1, 1].
		for p := 0; p < 4; p++ {
			for i := range l {
				idx := p*audio.PacketSize + i
				var b byte
				if len(data) > 0 {
					b = data[idx%len(data)]
				}
				l[i] = (float64(b)/127.5 - 1)
				r[i] = (float64(b^0x55)/127.5 - 1)
			}
			d.Decode(l, r)
		}
		if sp := d.Speed(); math.IsNaN(sp) || math.IsInf(sp, 0) || sp < 0 {
			t.Fatalf("speed = %v", sp)
		}
		if dir := d.Direction(); dir < -1 || dir > 1 {
			t.Fatalf("direction = %d", dir)
		}
		if pos, ok := d.Position(); ok && int(pos) >= sharedSeq.Len() {
			t.Fatalf("position %d out of range", pos)
		}
	})
}
