package timecode

import (
	"math"
	"testing"
	"testing/quick"

	"djstar/internal/audio"
)

// sharedSeq is built once; NewSequence is deliberately expensive.
var sharedSeq = NewSequence()

func TestLFSRPeriod(t *testing.T) {
	start := uint16(0xACE1)
	s := start
	for i := 0; i < 1<<16-1; i++ {
		s = lfsrNext(s)
		if s == 0 {
			t.Fatal("LFSR reached the all-zero lock-up state")
		}
		if s == start && i != 1<<16-2 {
			t.Fatalf("LFSR period %d, want 65535", i+1)
		}
	}
	if s != start {
		t.Fatal("LFSR did not return to seed after full period")
	}
}

func TestSequenceWindowsUnique(t *testing.T) {
	// A maximal LFSR guarantees every non-zero 16-bit window appears
	// exactly once per period.
	if got := len(sharedSeq.lookup); got != 1<<16-1 {
		t.Fatalf("lookup has %d windows, want 65535 (collision?)", got)
	}
}

func TestSequenceFindMatchesBits(t *testing.T) {
	f := func(startRaw uint16) bool {
		start := int(startRaw) % sharedSeq.Len()
		var win uint16
		for i := 0; i < PositionBits; i++ {
			win = win<<1 | uint16(sharedSeq.Bit(start+i))
		}
		pos, ok := sharedSeq.Find(win)
		return ok && int(pos) == (start+PositionBits-1)%sharedSeq.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSequenceBitWrapsNegative(t *testing.T) {
	if sharedSeq.Bit(-1) != sharedSeq.Bit(sharedSeq.Len()-1) {
		t.Fatal("negative index does not wrap")
	}
}

func TestGeneratorSeekWraps(t *testing.T) {
	g := NewGenerator(sharedSeq, audio.SampleRate)
	g.Seek(-10)
	if p := g.Position(); p < 0 || p >= float64(sharedSeq.Len()) {
		t.Fatalf("Seek(-10) position %v out of range", p)
	}
	g.Seek(float64(sharedSeq.Len()) + 5)
	if math.Abs(g.Position()-5) > 1e-9 {
		t.Fatalf("Seek wrap gave %v, want 5", g.Position())
	}
}

func TestGeneratorMismatchPanics(t *testing.T) {
	g := NewGenerator(sharedSeq, audio.SampleRate)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched channels")
		}
	}()
	g.Generate(make([]float64, 4), make([]float64, 8))
}

// runDVS streams packets from a generator into a decoder.
func runDVS(g *Generator, d *Decoder, packets int) {
	l := make([]float64, audio.PacketSize)
	r := make([]float64, audio.PacketSize)
	for i := 0; i < packets; i++ {
		g.Generate(l, r)
		d.Decode(l, r)
	}
}

func TestDecoderLocksAndTracksPosition(t *testing.T) {
	g := NewGenerator(sharedSeq, audio.SampleRate)
	d := NewDecoder(sharedSeq, audio.SampleRate)
	g.Seek(1234)
	runDVS(g, d, 30) // ~87 carrier cycles: ample for a 16-bit lock

	if !d.Locked() {
		t.Fatal("decoder did not lock")
	}
	pos, ok := d.Position()
	if !ok {
		t.Fatal("Position not valid despite lock")
	}
	// The generator has advanced; decoded position must be within a couple
	// of cycles of the true needle position.
	truePos := g.Position()
	diff := math.Abs(float64(pos) - truePos)
	if diff > 3 {
		t.Fatalf("decoded position %d vs true %v (diff %v)", pos, truePos, diff)
	}
}

func TestDecoderSpeedEstimate(t *testing.T) {
	for _, speed := range []float64{0.5, 1.0, 1.5} {
		g := NewGenerator(sharedSeq, audio.SampleRate)
		d := NewDecoder(sharedSeq, audio.SampleRate)
		g.SetSpeed(speed)
		runDVS(g, d, 60)
		if got := d.Speed(); math.Abs(got-speed)/speed > 0.1 {
			t.Fatalf("speed %v decoded as %v", speed, got)
		}
		if d.Direction() != 1 {
			t.Fatalf("forward playback decoded direction %d", d.Direction())
		}
	}
}

func TestDecoderReverseDirection(t *testing.T) {
	g := NewGenerator(sharedSeq, audio.SampleRate)
	d := NewDecoder(sharedSeq, audio.SampleRate)
	g.Seek(5000)
	g.SetSpeed(-1)
	runDVS(g, d, 60)
	if d.Direction() != -1 {
		t.Fatalf("reverse playback decoded direction %d", d.Direction())
	}
	if d.Locked() {
		t.Fatal("decoder claims position lock while scratching backwards")
	}
}

func TestDecoderRelockAfterScratch(t *testing.T) {
	g := NewGenerator(sharedSeq, audio.SampleRate)
	d := NewDecoder(sharedSeq, audio.SampleRate)
	runDVS(g, d, 30)
	if !d.Locked() {
		t.Fatal("no initial lock")
	}
	// Backwards scratch drops the lock...
	g.SetSpeed(-2)
	runDVS(g, d, 30)
	if d.Locked() {
		t.Fatal("lock survived reverse scratch")
	}
	// ...and forward play restores it.
	g.SetSpeed(1)
	runDVS(g, d, 40)
	if !d.Locked() {
		t.Fatal("decoder did not relock after scratch")
	}
	pos, _ := d.Position()
	if diff := math.Abs(float64(pos) - g.Position()); diff > 3 {
		t.Fatalf("relocked position off by %v cycles", diff)
	}
}

func TestDecoderHandlesLevelDrop(t *testing.T) {
	// A quieter signal (worn needle) must still decode: thresholds are
	// relative, not absolute.
	g := NewGenerator(sharedSeq, audio.SampleRate)
	d := NewDecoder(sharedSeq, audio.SampleRate)
	l := make([]float64, audio.PacketSize)
	r := make([]float64, audio.PacketSize)
	for i := 0; i < 60; i++ {
		g.Generate(l, r)
		for j := range l {
			l[j] *= 0.4
			r[j] *= 0.4
		}
		d.Decode(l, r)
	}
	if !d.Locked() {
		t.Fatal("decoder failed on attenuated signal")
	}
}

func TestDecoderReset(t *testing.T) {
	g := NewGenerator(sharedSeq, audio.SampleRate)
	d := NewDecoder(sharedSeq, audio.SampleRate)
	runDVS(g, d, 30)
	d.Reset()
	if d.Locked() || d.Speed() != 0 || d.Direction() != 0 {
		t.Fatal("Reset left state behind")
	}
}

func TestDecoderMismatchPanics(t *testing.T) {
	d := NewDecoder(sharedSeq, audio.SampleRate)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched channels")
		}
	}()
	d.Decode(make([]float64, 4), make([]float64, 8))
}

func TestDecodeReportsCycleCount(t *testing.T) {
	g := NewGenerator(sharedSeq, audio.SampleRate)
	d := NewDecoder(sharedSeq, audio.SampleRate)
	l := make([]float64, audio.SampleRate) // 1 s
	r := make([]float64, audio.SampleRate)
	g.Generate(l, r)
	cycles := d.Decode(l, r)
	if math.Abs(float64(cycles)-CarrierHz) > 2 {
		t.Fatalf("observed %d cycles in 1 s, want ~%v", cycles, CarrierHz)
	}
}

func TestPositionSeconds(t *testing.T) {
	if s := PositionSeconds(1000); math.Abs(s-1) > 1e-12 {
		t.Fatalf("PositionSeconds(1000) = %v, want 1", s)
	}
}

func TestDecodeNoAlloc(t *testing.T) {
	g := NewGenerator(sharedSeq, audio.SampleRate)
	d := NewDecoder(sharedSeq, audio.SampleRate)
	l := make([]float64, audio.PacketSize)
	r := make([]float64, audio.PacketSize)
	g.Generate(l, r)
	allocs := testing.AllocsPerRun(100, func() { d.Decode(l, r) })
	if allocs != 0 {
		t.Fatalf("Decode allocates %v per packet", allocs)
	}
}

func TestDecoderSpeedGetterBeforeSignal(t *testing.T) {
	d := NewDecoder(sharedSeq, audio.SampleRate)
	if d.Speed() != 0 {
		t.Fatalf("initial speed = %v", d.Speed())
	}
}
