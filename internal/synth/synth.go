// Package synth generates deterministic test audio.
//
// The original DJ Star evaluation ran "four decks with different audio
// tracks" of licensed music that we cannot ship. This package substitutes
// procedurally generated dance-music-like tracks: a kick/bass/lead pattern
// arranged in bars, with alternating loud and quiet sections. The loud/quiet
// alternation matters for the reproduction: the paper's execution-time
// histograms (Fig. 9) are bimodal because node cost depends on the audio
// data, and signal-energy-dependent effect load reproduces exactly that.
package synth

import (
	"math"

	"djstar/internal/audio"
)

// Rand is a tiny deterministic xorshift64* PRNG so that track generation is
// reproducible across runs and platforms without math/rand global state.
type Rand struct{ state uint64 }

// NewRand returns a PRNG seeded with seed (0 is replaced by a fixed odd
// constant so the generator never sticks at zero).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns an approximately standard-normal value using the sum
// of 12 uniforms (Irwin–Hall); plenty for audio noise and jitter purposes.
func (r *Rand) NormFloat64() float64 {
	s := 0.0
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return s - 6
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("synth: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Oscillator shapes supported by Osc.
type Waveform int

const (
	Sine Waveform = iota
	Saw
	Square
	Triangle
)

// Osc is a phase-accumulating oscillator producing one sample per Next call.
type Osc struct {
	Shape Waveform
	phase float64
	inc   float64
}

// NewOsc returns an oscillator of the given shape at freq Hz for sampling
// rate hz.
func NewOsc(shape Waveform, freq float64, hz int) *Osc {
	return &Osc{Shape: shape, inc: freq / float64(hz)}
}

// SetFreq retunes the oscillator without resetting phase.
func (o *Osc) SetFreq(freq float64, hz int) { o.inc = freq / float64(hz) }

// Next returns the next sample in [-1, 1].
func (o *Osc) Next() float64 {
	p := o.phase
	o.phase += o.inc
	if o.phase >= 1 {
		o.phase -= math.Floor(o.phase)
	}
	switch o.Shape {
	case Saw:
		return 2*p - 1
	case Square:
		if p < 0.5 {
			return 1
		}
		return -1
	case Triangle:
		if p < 0.5 {
			return 4*p - 1
		}
		return 3 - 4*p
	default:
		return math.Sin(2 * math.Pi * p)
	}
}

// ADSR is a simple attack/decay/sustain/release envelope expressed in
// samples. Gate length controls when release begins.
type ADSR struct {
	Attack, Decay, Release int
	Sustain                float64
}

// Level returns the envelope level at sample i of a note whose gate is held
// for gateLen samples.
func (e ADSR) Level(i, gateLen int) float64 {
	switch {
	case i < 0:
		return 0
	case i < e.Attack:
		return float64(i) / float64(max(e.Attack, 1))
	case i < e.Attack+e.Decay:
		t := float64(i-e.Attack) / float64(max(e.Decay, 1))
		return 1 - t*(1-e.Sustain)
	case i < gateLen:
		return e.Sustain
	case i < gateLen+e.Release:
		t := float64(i-gateLen) / float64(max(e.Release, 1))
		return e.Sustain * (1 - t)
	default:
		return 0
	}
}

// Track is a generated stereo audio clip with tempo metadata.
type Track struct {
	Name string
	BPM  float64
	// Audio holds the full rendered clip.
	Audio audio.Stereo
	// LoudBars marks, per bar, whether the bar was rendered in the loud
	// (full arrangement) or quiet (sparse) section. Used by tests.
	LoudBars []bool
	// FramesPerBar is the length of one 4/4 bar in frames.
	FramesPerBar int
}

// Len returns the number of frames in the track.
func (t *Track) Len() int { return t.Audio.Len() }

// TrackSpec configures GenerateTrack.
type TrackSpec struct {
	Name string
	BPM  float64 // beats per minute; default 126
	Bars int     // number of 4/4 bars; default 16
	Seed uint64  // PRNG seed; same seed, same track
	Rate int     // sampling rate; default audio.SampleRate
	// QuietEvery renders every n-th group of 2 bars at low level to create
	// the loud/quiet alternation. 0 disables quiet sections.
	QuietEvery int
	// Key shifts the root note in semitones relative to A (55 Hz bass).
	Key int
}

func (s *TrackSpec) defaults() {
	if s.BPM == 0 {
		s.BPM = 126
	}
	if s.Bars == 0 {
		s.Bars = 16
	}
	if s.Rate == 0 {
		s.Rate = audio.SampleRate
	}
	if s.QuietEvery == 0 {
		s.QuietEvery = 2
	}
}

// GenerateTrack renders a deterministic dance-style track: four-on-the-floor
// kick, off-beat bass, a simple lead arpeggio and hat noise, arranged into
// alternating loud and quiet two-bar groups.
func GenerateTrack(spec TrackSpec) *Track {
	spec.defaults()
	rng := NewRand(spec.Seed)

	framesPerBeat := int(math.Round(60 / spec.BPM * float64(spec.Rate)))
	framesPerBar := 4 * framesPerBeat
	total := spec.Bars * framesPerBar

	tr := &Track{
		Name:         spec.Name,
		BPM:          spec.BPM,
		Audio:        audio.NewStereo(total),
		LoudBars:     make([]bool, spec.Bars),
		FramesPerBar: framesPerBar,
	}

	root := 55.0 * math.Pow(2, float64(spec.Key)/12)
	bass := NewOsc(Saw, root, spec.Rate)
	lead := NewOsc(Square, root*4, spec.Rate)
	kickEnv := ADSR{Attack: 8, Decay: spec.Rate / 8, Sustain: 0, Release: 64}
	bassEnv := ADSR{Attack: 32, Decay: spec.Rate / 6, Sustain: 0.3, Release: 256}
	leadEnv := ADSR{Attack: 64, Decay: spec.Rate / 10, Sustain: 0.2, Release: 512}

	// Arpeggio pattern in semitones over the root, regenerated per track.
	arp := make([]int, 8)
	scale := []int{0, 3, 5, 7, 10, 12}
	for i := range arp {
		arp[i] = scale[rng.Intn(len(scale))]
	}

	for bar := 0; bar < spec.Bars; bar++ {
		loud := true
		if spec.QuietEvery > 0 && (bar/2)%spec.QuietEvery == spec.QuietEvery-1 {
			loud = false
		}
		tr.LoudBars[bar] = loud
		level := 1.0
		if !loud {
			level = 0.18
		}
		barStart := bar * framesPerBar
		for beat := 0; beat < 4; beat++ {
			beatStart := barStart + beat*framesPerBeat
			renderBeat(tr, spec, beatStart, framesPerBeat, level, loud,
				bass, lead, kickEnv, bassEnv, leadEnv, arp, bar*4+beat, rng)
		}
	}
	normalize(tr.Audio, 0.95)
	return tr
}

// renderBeat renders one beat of the arrangement in place.
func renderBeat(tr *Track, spec TrackSpec, start, frames int, level float64,
	loud bool, bass, lead *Osc, kickEnv, bassEnv, leadEnv ADSR,
	arp []int, beatIndex int, rng *Rand) {

	rate := spec.Rate
	half := frames / 2
	root := 55.0 * math.Pow(2, float64(spec.Key)/12)
	leadStep := arp[beatIndex%len(arp)]
	lead.SetFreq(root*4*math.Pow(2, float64(leadStep)/12), rate)

	for i := 0; i < frames; i++ {
		idx := start + i
		if idx >= tr.Audio.Len() {
			return
		}
		var l, r float64

		// Kick: pitch-swept sine on the beat, always present (even quiet
		// bars keep a faint pulse so beat tracking stays possible). The
		// sweep is tuned to the track key so the kick reinforces the root.
		kt := float64(i) / float64(rate)
		kick := math.Sin(2*math.Pi*(root+90*math.Exp(-kt*30))*kt) * kickEnv.Level(i, frames/4)
		kAmp := 0.9 * level
		if !loud {
			kAmp = 0.25
		}
		l += kick * kAmp
		r += kick * kAmp

		if loud {
			// Off-beat bass stab.
			bi := i - half
			b := bass.Next() * bassEnv.Level(bi, frames/3)
			l += b * 0.5 * level
			r += b * 0.5 * level

			// Lead arpeggio, slightly panned right.
			ld := lead.Next() * leadEnv.Level(i, frames/2)
			l += ld * 0.18 * level
			r += ld * 0.26 * level

			// Hats: short noise bursts on eighth notes.
			eighth := frames / 2
			hi := i % max(eighth, 1)
			if hi < rate/200 {
				h := rng.NormFloat64() * 0.12 * level *
					(1 - float64(hi)/float64(max(rate/200, 1)))
				l += h
				r += h * 0.8
			}
		} else {
			// Quiet section: keep the oscillators running so their phase
			// advances consistently, but render only a faint pad.
			b := bass.Next()
			ld := lead.Next()
			pad := (b*0.3 + ld*0.1) * 0.12
			l += pad
			r += pad
		}

		tr.Audio.L[idx] += l
		tr.Audio.R[idx] += r
	}
}

// normalize scales the clip so its peak equals target (if non-silent).
func normalize(s audio.Stereo, target float64) {
	p := s.Peak()
	if p <= 0 {
		return
	}
	s.Scale(target / p)
}

// StandardDeckTracks renders the four-deck test set used by the evaluation:
// four distinct tracks (different keys, seeds and tempi near 126 BPM), the
// "realistic input data (four decks with different audio tracks)" of the
// paper's conclusion.
func StandardDeckTracks(bars int) [4]*Track {
	if bars <= 0 {
		bars = 16
	}
	specs := [4]TrackSpec{
		{Name: "deck-a", BPM: 126, Bars: bars, Seed: 0xA11CE, Key: 0},
		{Name: "deck-b", BPM: 128, Bars: bars, Seed: 0xB0B42, Key: 5},
		{Name: "deck-c", BPM: 124, Bars: bars, Seed: 0xC4A7, Key: -4},
		{Name: "deck-d", BPM: 127, Bars: bars, Seed: 0xD06E, Key: 7},
	}
	var out [4]*Track
	for i, s := range specs {
		out[i] = GenerateTrack(s)
	}
	return out
}

// Sine renders a pure sine test buffer (useful in DSP unit tests).
func SineBuffer(freq float64, n, hz int) audio.Buffer {
	b := audio.NewBuffer(n)
	for i := range b {
		b[i] = math.Sin(2 * math.Pi * freq * float64(i) / float64(hz))
	}
	return b
}

// Impulse returns a unit impulse buffer of length n.
func Impulse(n int) audio.Buffer {
	b := audio.NewBuffer(n)
	if n > 0 {
		b[0] = 1
	}
	return b
}

// WhiteNoise returns n samples of deterministic white noise with the given
// seed, scaled to amp.
func WhiteNoise(n int, amp float64, seed uint64) audio.Buffer {
	rng := NewRand(seed)
	b := audio.NewBuffer(n)
	for i := range b {
		b[i] = (2*rng.Float64() - 1) * amp
	}
	return b
}
