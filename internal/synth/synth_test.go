package synth

import (
	"math"
	"testing"
	"testing/quick"

	"djstar/internal/audio"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestRandZeroSeedUsable(t *testing.T) {
	r := NewRand(0)
	seen := map[uint64]bool{}
	for i := 0; i < 50; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 50 {
		t.Fatalf("zero-seeded PRNG repeated values: %d unique of 50", len(seen))
	}
}

func TestRandFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		for i := 0; i < 20; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestOscSineFrequency(t *testing.T) {
	// Count zero crossings of a 441 Hz sine over one second: expect ~882.
	o := NewOsc(Sine, 441, audio.SampleRate)
	crossings := 0
	prev := o.Next()
	for i := 1; i < audio.SampleRate; i++ {
		s := o.Next()
		if (prev < 0 && s >= 0) || (prev > 0 && s <= 0) {
			crossings++
		}
		prev = s
	}
	if crossings < 878 || crossings > 886 {
		t.Fatalf("441 Hz sine produced %d zero crossings, want ~882", crossings)
	}
}

func TestOscShapesBounded(t *testing.T) {
	for _, shape := range []Waveform{Sine, Saw, Square, Triangle} {
		o := NewOsc(shape, 997, audio.SampleRate)
		for i := 0; i < 10000; i++ {
			s := o.Next()
			if s < -1.0001 || s > 1.0001 {
				t.Fatalf("shape %d sample %d out of range: %v", shape, i, s)
			}
		}
	}
}

func TestOscTriangleShape(t *testing.T) {
	// A triangle at 1/4 of the rate visits -1, 0-ish, 1 cyclically.
	o := NewOsc(Triangle, float64(audio.SampleRate)/4, audio.SampleRate)
	vals := make([]float64, 8)
	for i := range vals {
		vals[i] = o.Next()
	}
	// Period of 4 samples: values repeat.
	for i := 0; i < 4; i++ {
		if math.Abs(vals[i]-vals[i+4]) > 1e-9 {
			t.Fatalf("triangle not periodic: %v", vals)
		}
	}
}

func TestADSREnvelope(t *testing.T) {
	e := ADSR{Attack: 10, Decay: 10, Sustain: 0.5, Release: 10}
	if l := e.Level(-1, 100); l != 0 {
		t.Fatalf("pre-note level = %v", l)
	}
	if l := e.Level(0, 100); l != 0 {
		t.Fatalf("attack start = %v, want 0", l)
	}
	if l := e.Level(10, 100); math.Abs(l-1) > 0.11 {
		t.Fatalf("attack peak = %v, want ~1", l)
	}
	if l := e.Level(20, 100); math.Abs(l-0.5) > 1e-9 {
		t.Fatalf("post-decay = %v, want 0.5", l)
	}
	if l := e.Level(50, 100); l != 0.5 {
		t.Fatalf("sustain = %v, want 0.5", l)
	}
	if l := e.Level(105, 100); math.Abs(l-0.25) > 1e-9 {
		t.Fatalf("mid release = %v, want 0.25", l)
	}
	if l := e.Level(200, 100); l != 0 {
		t.Fatalf("post release = %v, want 0", l)
	}
}

func TestADSRMonotoneAttack(t *testing.T) {
	e := ADSR{Attack: 100, Decay: 50, Sustain: 0.6, Release: 20}
	prev := -1.0
	for i := 0; i < 100; i++ {
		l := e.Level(i, 1000)
		if l < prev {
			t.Fatalf("attack not monotone at %d: %v < %v", i, l, prev)
		}
		prev = l
	}
}

func TestGenerateTrackDeterministic(t *testing.T) {
	spec := TrackSpec{Name: "x", Bars: 2, Seed: 7}
	a := GenerateTrack(spec)
	b := GenerateTrack(spec)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.Audio.L[i] != b.Audio.L[i] || a.Audio.R[i] != b.Audio.R[i] {
			t.Fatalf("tracks diverge at frame %d", i)
		}
	}
}

func TestGenerateTrackShape(t *testing.T) {
	tr := GenerateTrack(TrackSpec{Name: "t", BPM: 120, Bars: 4, Seed: 3})
	framesPerBar := 4 * int(math.Round(60.0/120*audio.SampleRate))
	if tr.FramesPerBar != framesPerBar {
		t.Fatalf("FramesPerBar = %d, want %d", tr.FramesPerBar, framesPerBar)
	}
	if tr.Len() != 4*framesPerBar {
		t.Fatalf("Len = %d, want %d", tr.Len(), 4*framesPerBar)
	}
	if p := tr.Audio.Peak(); math.Abs(p-0.95) > 1e-6 {
		t.Fatalf("peak = %v, want normalized to 0.95", p)
	}
	if len(tr.LoudBars) != 4 {
		t.Fatalf("LoudBars length %d", len(tr.LoudBars))
	}
}

func TestGenerateTrackLoudQuietContrast(t *testing.T) {
	tr := GenerateTrack(TrackSpec{Bars: 8, Seed: 11, QuietEvery: 2})
	var loudE, quietE float64
	var loudN, quietN int
	for bar, loud := range tr.LoudBars {
		start := bar * tr.FramesPerBar
		seg := tr.Audio.L[start : start+tr.FramesPerBar]
		e := audio.Buffer(seg).Energy()
		if loud {
			loudE += e
			loudN++
		} else {
			quietE += e
			quietN++
		}
	}
	if loudN == 0 || quietN == 0 {
		t.Fatalf("expected both loud and quiet bars, got %d/%d", loudN, quietN)
	}
	if loudE/float64(loudN) < 4*(quietE/float64(quietN)) {
		t.Fatalf("loud bars not clearly louder: loud=%v quiet=%v", loudE/float64(loudN), quietE/float64(quietN))
	}
}

func TestStandardDeckTracksDistinct(t *testing.T) {
	tracks := StandardDeckTracks(2)
	for i := range tracks {
		if tracks[i] == nil || tracks[i].Len() == 0 {
			t.Fatalf("track %d empty", i)
		}
	}
	// Different seeds/keys must give different audio.
	same := 0
	n := min(tracks[0].Len(), tracks[1].Len())
	for i := 0; i < n; i++ {
		if tracks[0].Audio.L[i] == tracks[1].Audio.L[i] {
			same++
		}
	}
	if float64(same) > 0.5*float64(n) {
		t.Fatalf("deck A and B audio suspiciously similar: %d/%d equal", same, n)
	}
}

func TestSineBufferAndImpulse(t *testing.T) {
	s := SineBuffer(1000, 64, audio.SampleRate)
	if len(s) != 64 || s[0] != 0 {
		t.Fatalf("SineBuffer bad start: len=%d s[0]=%v", len(s), s[0])
	}
	im := Impulse(16)
	if im[0] != 1 {
		t.Fatal("Impulse[0] != 1")
	}
	for i := 1; i < len(im); i++ {
		if im[i] != 0 {
			t.Fatalf("Impulse[%d] = %v", i, im[i])
		}
	}
	if b := Impulse(0); len(b) != 0 {
		t.Fatal("Impulse(0) not empty")
	}
}

func TestWhiteNoiseBoundedAndSeeded(t *testing.T) {
	a := WhiteNoise(256, 0.5, 9)
	b := WhiteNoise(256, 0.5, 9)
	c := WhiteNoise(256, 0.5, 10)
	diff := false
	for i := range a {
		if math.Abs(a[i]) > 0.5 {
			t.Fatalf("noise sample %d out of range: %v", i, a[i])
		}
		if a[i] != b[i] {
			t.Fatal("same seed produced different noise")
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical noise")
	}
}
