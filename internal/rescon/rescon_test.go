package rescon

import (
	"math"
	"testing"
	"testing/quick"

	"djstar/internal/graph"
)

// diamond builds a -> {b, c} -> d with the given durations.
func diamond(t *testing.T, durs [4]float64) (*Model, *graph.Plan) {
	t.Helper()
	g := graph.New()
	a := g.AddNode("a", graph.SectionDeckA, nil)
	b := g.AddNode("b", graph.SectionDeckA, nil)
	c := g.AddNode("c", graph.SectionDeckA, nil)
	d := g.AddNode("d", graph.SectionDeckA, nil)
	for _, e := range [][2]int{{a, b}, {a, c}, {b, d}, {c, d}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	p, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromPlan(p, durs[:])
	if err != nil {
		t.Fatal(err)
	}
	return m, p
}

func TestFromPlanValidation(t *testing.T) {
	g := graph.New()
	g.AddNode("a", graph.SectionDeckA, nil)
	p, _ := g.Compile()
	if _, err := FromPlan(p, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FromPlan(p, []float64{-1}); err == nil {
		t.Fatal("negative duration accepted")
	}
	if _, err := FromPlan(p, []float64{math.NaN()}); err == nil {
		t.Fatal("NaN duration accepted")
	}
	m, err := FromPlan(p, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 || m.Name(0) != "a" || m.Duration(0) != 5 || m.TotalWork() != 5 {
		t.Fatal("accessors wrong")
	}
}

func TestEarliestStartDiamond(t *testing.T) {
	m, _ := diamond(t, [4]float64{10, 20, 30, 5})
	r := m.EarliestStart()
	// a: 0-10, b: 10-30, c: 10-40, d: 40-45.
	if r.Start[3] != 40 || r.Finish[3] != 45 {
		t.Fatalf("d window = %v-%v", r.Start[3], r.Finish[3])
	}
	if r.MakespanUS != 45 {
		t.Fatalf("makespan = %v, want 45", r.MakespanUS)
	}
	if r.PeakConcurrency != 2 {
		t.Fatalf("peak = %d, want 2 (b and c overlap)", r.PeakConcurrency)
	}
}

func TestListScheduleRespectsResourceLimit(t *testing.T) {
	m, _ := diamond(t, [4]float64{10, 20, 30, 5})
	r, err := m.ListSchedule(1)
	if err != nil {
		t.Fatal(err)
	}
	// One processor: makespan = total work.
	if r.MakespanUS != 65 {
		t.Fatalf("1-proc makespan = %v, want 65", r.MakespanUS)
	}
	if r.PeakConcurrency != 1 {
		t.Fatalf("1-proc peak = %d", r.PeakConcurrency)
	}

	r2, err := m.ListSchedule(2)
	if err != nil {
		t.Fatal(err)
	}
	// Two processors: b and c run in parallel -> 10 + 30 + 5 = 45.
	if r2.MakespanUS != 45 {
		t.Fatalf("2-proc makespan = %v, want 45", r2.MakespanUS)
	}
	if _, err := m.ListSchedule(0); err == nil {
		t.Fatal("0 procs accepted")
	}
}

func TestListScheduleNeverBeatsCriticalPath(t *testing.T) {
	f := func(seed uint64) bool {
		g, _ := graph.RandomDAG(graph.RandomSpec{Nodes: 30, EdgeProb: 0.15, Seed: seed})
		p, err := g.Compile()
		if err != nil {
			return false
		}
		rng := seed
		durs := make([]float64, p.Len())
		for i := range durs {
			rng = rng*6364136223846793005 + 1442695040888963407
			durs[i] = 1 + float64(rng%97)
		}
		m, err := FromPlan(p, durs)
		if err != nil {
			return false
		}
		cp := m.EarliestStart().MakespanUS
		for _, procs := range []int{1, 2, 4} {
			r, err := m.ListSchedule(procs)
			if err != nil {
				return false
			}
			lower := math.Max(cp, m.TotalWork()/float64(procs))
			if r.MakespanUS < lower-1e-9 {
				return false // impossible schedule
			}
			if err := checkScheduleValid(m, r, procs); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// checkScheduleValid asserts dependency and resource feasibility.
func checkScheduleValid(m *Model, r *Result, procs int) error {
	for i := 0; i < m.Len(); i++ {
		for _, d := range m.preds[i] {
			if r.Start[i] < r.Finish[d]-1e-9 {
				return errf("task %d starts before pred %d finishes", i, d)
			}
		}
		if int(r.Proc[i]) >= procs {
			return errf("task %d on proc %d of %d", i, r.Proc[i], procs)
		}
	}
	// No two tasks overlap on one processor.
	for i := 0; i < m.Len(); i++ {
		for j := i + 1; j < m.Len(); j++ {
			if r.Proc[i] != r.Proc[j] {
				continue
			}
			if r.Start[i] < r.Finish[j]-1e-9 && r.Start[j] < r.Finish[i]-1e-9 {
				if m.dur[i] > 0 && m.dur[j] > 0 {
					return errf("tasks %d and %d overlap on proc %d", i, j, r.Proc[i])
				}
			}
		}
	}
	return nil
}

func errf(format string, args ...any) error {
	return &scheduleError{msg: format, args: args}
}

type scheduleError struct {
	msg  string
	args []any
}

func (e *scheduleError) Error() string { return e.msg }

func TestSimulateBusyDiamond(t *testing.T) {
	m, _ := diamond(t, [4]float64{10, 20, 30, 5})
	// Queue order: a, b, c, d. Two threads: T0 gets a, c; T1 gets b, d.
	r, err := m.SimulateBusy(2, StrategyOverheads{})
	if err != nil {
		t.Fatal(err)
	}
	// T0: a 0-10, c 10-40. T1: b waits for a: 10-30; d waits for c: 40-45.
	if r.Start[1] != 10 || r.Finish[2] != 40 || r.Finish[3] != 45 {
		t.Fatalf("schedule: b %v-%v c %v-%v d %v-%v",
			r.Start[1], r.Finish[1], r.Start[2], r.Finish[2], r.Start[3], r.Finish[3])
	}
	// T1 waited 10 (for a) + 10 (d at 30, c finishes 40).
	if math.Abs(r.WaitUS-20) > 1e-9 {
		t.Fatalf("wait = %v, want 20", r.WaitUS)
	}
	if _, err := m.SimulateBusy(0, StrategyOverheads{}); err == nil {
		t.Fatal("0 threads accepted")
	}
}

func TestSimulateSleepAddsWakeLatency(t *testing.T) {
	m, _ := diamond(t, [4]float64{10, 20, 30, 5})
	busy, _ := m.SimulateBusy(2, StrategyOverheads{})
	sleep, err := m.SimulateSleep(2, StrategyOverheads{WakeUS: 7})
	if err != nil {
		t.Fatal(err)
	}
	if sleep.MakespanUS <= busy.MakespanUS {
		t.Fatalf("sleep %v not slower than busy %v", sleep.MakespanUS, busy.MakespanUS)
	}
	// Two stalls on thread 1 -> +7 each propagating: b starts 17, d waits
	// for c (40) then +7 -> 47, finish 52.
	if math.Abs(sleep.MakespanUS-52) > 1e-9 {
		t.Fatalf("sleep makespan = %v, want 52", sleep.MakespanUS)
	}
}

func TestSimulateBusyCheckOverhead(t *testing.T) {
	m, _ := diamond(t, [4]float64{10, 20, 30, 5})
	r, _ := m.SimulateBusy(1, StrategyOverheads{CheckUS: 1})
	// Sequential with 1 µs per node check: 65 + 4.
	if math.Abs(r.MakespanUS-69) > 1e-9 {
		t.Fatalf("makespan = %v, want 69", r.MakespanUS)
	}
}

func TestSimulationsRespectDependenciesProperty(t *testing.T) {
	f := func(seed uint64, threadsRaw uint8) bool {
		threads := 1 + int(threadsRaw)%6
		g, _ := graph.RandomDAG(graph.RandomSpec{Nodes: 25, EdgeProb: 0.2, Seed: seed})
		p, err := g.Compile()
		if err != nil {
			return false
		}
		durs := make([]float64, p.Len())
		rng := seed | 1
		for i := range durs {
			rng = rng*2862933555777941757 + 3037000493
			durs[i] = float64(rng % 50)
		}
		m, err := FromPlan(p, durs)
		if err != nil {
			return false
		}
		for _, sim := range []func() (*Result, error){
			func() (*Result, error) { return m.SimulateBusy(threads, StrategyOverheads{CheckUS: 0.5}) },
			func() (*Result, error) {
				return m.SimulateSleep(threads, StrategyOverheads{CheckUS: 0.5, WakeUS: 3})
			},
		} {
			r, err := sim()
			if err != nil {
				return false
			}
			if checkScheduleValid(m, r, threads) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrencyProfile(t *testing.T) {
	m, _ := diamond(t, [4]float64{10, 20, 30, 5})
	r := m.EarliestStart()
	prof := ConcurrencyProfile(r, 45)
	if len(prof) != 45 {
		t.Fatalf("profile length %d", len(prof))
	}
	// During (10, 30) both b and c run.
	if prof[15] != 2 {
		t.Fatalf("profile[15] = %d, want 2", prof[15])
	}
	// During (30, 40) only c.
	if prof[35] != 1 {
		t.Fatalf("profile[35] = %d, want 1", prof[35])
	}
	if ConcurrencyProfile(r, 0) != nil {
		t.Fatal("0 samples should give nil")
	}
}

func TestEfficiency(t *testing.T) {
	m, _ := diamond(t, [4]float64{10, 20, 30, 5})
	r, _ := m.ListSchedule(2)
	e := m.Efficiency(r)
	// Makespan 45 == critical path 45: efficiency 1.
	if math.Abs(e-1) > 1e-9 {
		t.Fatalf("efficiency = %v, want 1", e)
	}
	busy, _ := m.SimulateBusy(2, StrategyOverheads{CheckUS: 2})
	if eb := m.Efficiency(busy); eb >= 1 || eb <= 0 {
		t.Fatalf("busy efficiency = %v, want in (0,1)", eb)
	}
}

// TestStandardGraphNumbers checks the paper's §IV simulation numbers on
// the standard 67-node graph with the DESIGN.md cost targets: makespan
// ~295 µs at infinite processors with peak concurrency 33, ~324 µs on 4
// processors, and a BUSY simulation within ~10 % of the optimum.
func TestStandardGraphNumbers(t *testing.T) {
	cfg := graph.DefaultConfig()
	cfg.TrackBars = 2
	_, g, err := graph.BuildDJStar(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	durs := PaperCostsUS(p)
	m, err := FromPlan(p, durs)
	if err != nil {
		t.Fatal(err)
	}

	es := m.EarliestStart()
	if es.MakespanUS < 270 || es.MakespanUS > 320 {
		t.Fatalf("critical path = %v µs, want ~295", es.MakespanUS)
	}
	if es.PeakConcurrency != 33 {
		t.Fatalf("peak concurrency = %d, want 33", es.PeakConcurrency)
	}

	four, err := m.ListSchedule(4)
	if err != nil {
		t.Fatal(err)
	}
	if four.MakespanUS < es.MakespanUS-1e-9 {
		t.Fatal("4-proc schedule beats critical path")
	}
	// Paper: 324 µs, i.e. within ~8 % of the unconstrained optimum.
	if four.MakespanUS > es.MakespanUS*1.25 {
		t.Fatalf("4-proc makespan %v too far above critical path %v",
			four.MakespanUS, es.MakespanUS)
	}

	busy, err := m.SimulateBusy(4, StrategyOverheads{CheckUS: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if busy.MakespanUS < four.MakespanUS-1e-9 {
		t.Fatal("BUSY simulation beats the list schedule")
	}
	if busy.MakespanUS > four.MakespanUS*1.35 {
		t.Fatalf("BUSY simulation %v too far above optimum %v",
			busy.MakespanUS, four.MakespanUS)
	}
	if m.TotalWork() < 1000 || m.TotalWork() > 1250 {
		t.Fatalf("total work = %v µs, want ~1090 (Table I sequential)", m.TotalWork())
	}
}

func TestSimulatePipelineModel(t *testing.T) {
	m, p := diamond(t, [4]float64{10, 20, 30, 5})
	res, err := m.SimulatePipeline(p.Depth, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Depths: a=0, b/c=1, d=2 -> 3 stages with work 10, 50, 5.
	if res.Stages != 3 {
		t.Fatalf("stages = %d", res.Stages)
	}
	// Stage 1 (b+c) dominates; with its processor share it still cannot
	// beat its longest node (30).
	if res.InitiationIntervalUS < 25 {
		t.Fatalf("II = %v, impossibly low", res.InitiationIntervalUS)
	}
	if res.LatencyUS != float64(res.Stages)*res.InitiationIntervalUS {
		t.Fatalf("latency %v != stages*II", res.LatencyUS)
	}
	if _, err := m.SimulatePipeline(p.Depth, 0); err == nil {
		t.Fatal("0 procs accepted")
	}
	if _, err := m.SimulatePipeline(nil, 4); err == nil {
		t.Fatal("bad depth accepted")
	}
}

func TestSimulateDataParallelModel(t *testing.T) {
	m, _ := diamond(t, [4]float64{10, 20, 30, 5})
	res, err := m.SimulateDataParallel(2, 4, 2902)
	if err != nil {
		t.Fatal(err)
	}
	// The first packet waits one packet period for its batch partner.
	if res.LatencyUS < 2902 {
		t.Fatalf("latency %v below the arrival wait", res.LatencyUS)
	}
	if res.ComputeUS <= 0 {
		t.Fatal("no compute time")
	}
	// Throughput per packet is below the latency (that is the pitch of
	// batching).
	if res.ThroughputIntervalUS >= res.LatencyUS {
		t.Fatalf("throughput %v not better than latency %v",
			res.ThroughputIntervalUS, res.LatencyUS)
	}
	if _, err := m.SimulateDataParallel(0, 4, 2902); err == nil {
		t.Fatal("batch 0 accepted")
	}
}
