package rescon

import (
	"strings"

	"djstar/internal/graph"
)

// PaperCostsUS returns the DESIGN.md §4 per-node cost targets (in µs,
// paper scale) for a standard DJ Star plan, identifying nodes by their
// names. Effect nodes get their expected average (base plus half the
// data-dependent part, since the synthetic tracks are loud about half the
// time), which is how the paper's "average vertex computation time over
// 10k APC executions" feeds the RESCON simulation.
func PaperCostsUS(p *graph.Plan) []float64 {
	out := make([]float64, p.Len())
	for i, name := range p.Names {
		out[i] = paperCostFor(name)
	}
	return out
}

func paperCostFor(name string) float64 {
	avg := func(c graph.Cost) float64 { return c.BaseUS + c.DataUS/2 }
	switch {
	case strings.HasPrefix(name, "SP"):
		return avg(graph.CostSP)
	case strings.HasPrefix(name, "FX"):
		return avg(graph.CostFX)
	case strings.HasPrefix(name, "Channel"):
		return avg(graph.CostChannel)
	case name == "Mixer":
		return avg(graph.CostMixer)
	case name == "MasterBuffer":
		return avg(graph.CostMaster)
	case name == "AudioOut1":
		return avg(graph.CostOut)
	case name == "RecordBuffer":
		return avg(graph.CostRecord)
	case name == "CueBuffer":
		return avg(graph.CostCue)
	case name == "MonitorBuffer":
		return avg(graph.CostMonitor)
	case name == "Sampler":
		return avg(graph.CostSampler)
	case strings.HasPrefix(name, "Ctrl"):
		return avg(graph.CostControl)
	default: // metering nodes
		return avg(graph.CostMeter)
	}
}
