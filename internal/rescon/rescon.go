// Package rescon is a discrete-event schedule simulator standing in for
// the RESCON project-scheduling tool the paper uses (§IV and Fig. 12).
// Given the task graph and per-node durations it computes:
//
//   - the earliest-start schedule with infinite processors (critical path
//     and the maximum-concurrency profile of Fig. 4, where the paper
//     reports 295 µs and 33 processors),
//   - a resource-constrained list schedule for k processors (the paper's
//     optimal 4-core schedule of 324 µs),
//   - simulations of the BUSY and SLEEP strategies with explicit overhead
//     parameters (the paper simulated BUSY and obtained 327 µs, within
//     8 % of the optimum).
package rescon

import (
	"fmt"
	"math"
	"sort"

	"djstar/internal/graph"
)

// Model is an immutable scheduling problem: tasks with durations and
// dependencies, plus the queue order used by the static strategies.
type Model struct {
	names []string
	dur   []float64 // microseconds
	preds [][]int32
	succs [][]int32
	order []int32
}

// FromPlan builds a model from a compiled graph plan and per-node
// durations in microseconds (indexed by node ID).
func FromPlan(p *graph.Plan, durUS []float64) (*Model, error) {
	if len(durUS) != p.Len() {
		return nil, fmt.Errorf("rescon: %d durations for %d nodes", len(durUS), p.Len())
	}
	for i, d := range durUS {
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return nil, fmt.Errorf("rescon: bad duration %v for node %d (%s)", d, i, p.Names[i])
		}
	}
	return &Model{
		names: p.Names,
		dur:   append([]float64(nil), durUS...),
		preds: p.PredLists(),
		succs: p.SuccLists(),
		order: p.Order,
	}, nil
}

// Len returns the task count.
func (m *Model) Len() int { return len(m.dur) }

// Name returns task i's name.
func (m *Model) Name(i int) string { return m.names[i] }

// Duration returns task i's duration in µs.
func (m *Model) Duration(i int) float64 { return m.dur[i] }

// TotalWork returns the sum of all durations (the 1-processor makespan).
func (m *Model) TotalWork() float64 {
	sum := 0.0
	for _, d := range m.dur {
		sum += d
	}
	return sum
}

// Result is a computed schedule.
type Result struct {
	// Strategy identifies how the schedule was produced.
	Strategy string
	// Threads is the processor count (0 = unbounded).
	Threads int
	// MakespanUS is the completion time of the last task.
	MakespanUS float64
	// Start and Finish give each task's window in µs.
	Start, Finish []float64
	// Proc is each task's processor (always assigned; for the unbounded
	// schedule it is a greedy labeling used only for display).
	Proc []int32
	// PeakConcurrency is the maximum number of simultaneously running
	// tasks.
	PeakConcurrency int
	// WaitUS is the total time threads spent waiting on dependencies
	// (spinning for BUSY, sleeping for SLEEP); 0 for the relaxations.
	WaitUS float64
}

// computeMakespanAndPeak fills the derived fields of r.
func (m *Model) finishResult(r *Result) {
	mk := 0.0
	for _, f := range r.Finish {
		if f > mk {
			mk = f
		}
	}
	r.MakespanUS = mk
	// Peak concurrency by sweeping start/finish events.
	type ev struct {
		t     float64
		delta int
	}
	evs := make([]ev, 0, 2*len(r.Start))
	for i := range r.Start {
		evs = append(evs, ev{r.Start[i], +1}, ev{r.Finish[i], -1})
	}
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].t != evs[b].t {
			return evs[a].t < evs[b].t
		}
		return evs[a].delta < evs[b].delta // finish before start at ties
	})
	cur, peak := 0, 0
	for _, e := range evs {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	r.PeakConcurrency = peak
}

// EarliestStart computes the infinite-processor earliest-start schedule:
// every task starts the moment its last dependency finishes. The makespan
// equals the critical-path length; the peak concurrency is the paper's
// "maximum concurrency in the graph" (33 for the standard graph).
func (m *Model) EarliestStart() *Result {
	n := m.Len()
	r := &Result{
		Strategy: "earliest-start",
		Threads:  0,
		Start:    make([]float64, n),
		Finish:   make([]float64, n),
		Proc:     make([]int32, n),
	}
	// Process in a dependency-respecting order (the queue order is one).
	for _, id := range m.order {
		st := 0.0
		for _, d := range m.preds[id] {
			if f := r.Finish[d]; f > st {
				st = f
			}
		}
		r.Start[id] = st
		r.Finish[id] = st + m.dur[id]
	}
	m.labelProcs(r)
	m.finishResult(r)
	return r
}

// labelProcs greedily assigns display processors so overlapping tasks get
// distinct rows (interval-graph coloring by start time).
func (m *Model) labelProcs(r *Result) {
	ids := make([]int, m.Len())
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool { return r.Start[ids[a]] < r.Start[ids[b]] })
	var procFree []float64
	const eps = 1e-9
	for _, id := range ids {
		placed := false
		for p := range procFree {
			if procFree[p] <= r.Start[id]+eps {
				r.Proc[id] = int32(p)
				procFree[p] = r.Finish[id]
				placed = true
				break
			}
		}
		if !placed {
			r.Proc[id] = int32(len(procFree))
			procFree = append(procFree, r.Finish[id])
		}
	}
}

// ListSchedule computes a resource-constrained schedule for the given
// processor count using priority list scheduling with upward-rank
// (critical-path-to-sink) priorities — the standard heuristic for RCPSP
// relaxations and a tight stand-in for RESCON's optimal schedules on
// graphs of this shape.
func (m *Model) ListSchedule(procs int) (*Result, error) {
	if procs < 1 {
		return nil, fmt.Errorf("rescon: procs = %d, want >= 1", procs)
	}
	n := m.Len()
	rank := m.upwardRank()

	// Priority order: higher rank first, ties by queue position.
	pos := make([]int, n)
	for i, id := range m.order {
		pos[id] = i
	}
	prio := make([]int, n)
	for i := range prio {
		prio[i] = i
	}
	sort.Slice(prio, func(a, b int) bool {
		if rank[prio[a]] != rank[prio[b]] {
			return rank[prio[a]] > rank[prio[b]]
		}
		return pos[prio[a]] < pos[prio[b]]
	})

	r := &Result{
		Strategy: "list-schedule",
		Threads:  procs,
		Start:    make([]float64, n),
		Finish:   make([]float64, n),
		Proc:     make([]int32, n),
	}
	scheduled := make([]bool, n)
	unresolved := make([]int, n)
	for i := range unresolved {
		unresolved[i] = len(m.preds[i])
	}
	procFree := make([]float64, procs)

	for count := 0; count < n; count++ {
		// Pick the highest-priority ready task.
		pick := -1
		for _, id := range prio {
			if !scheduled[id] && unresolved[id] == 0 {
				pick = id
				break
			}
		}
		if pick == -1 {
			return nil, fmt.Errorf("rescon: no ready task (cycle in model?)")
		}
		ready := 0.0
		for _, d := range m.preds[pick] {
			if f := r.Finish[d]; f > ready {
				ready = f
			}
		}
		// Processor giving the earliest start.
		best := 0
		for p := 1; p < procs; p++ {
			if procFree[p] < procFree[best] {
				best = p
			}
		}
		st := math.Max(ready, procFree[best])
		r.Start[pick] = st
		r.Finish[pick] = st + m.dur[pick]
		r.Proc[pick] = int32(best)
		procFree[best] = r.Finish[pick]
		scheduled[pick] = true
		for _, s := range m.succs[pick] {
			unresolved[s]--
		}
	}
	m.finishResult(r)
	return r, nil
}

// upwardRank returns, per task, the longest duration path from the task
// (inclusive) to any sink.
func (m *Model) upwardRank() []float64 {
	n := m.Len()
	rank := make([]float64, n)
	// Process in reverse queue order: successors before predecessors.
	for i := n - 1; i >= 0; i-- {
		id := m.order[i]
		best := 0.0
		for _, s := range m.succs[id] {
			if rank[s] > best {
				best = rank[s]
			}
		}
		rank[id] = best + m.dur[id]
	}
	return rank
}

// StrategyOverheads parameterizes the strategy simulations.
type StrategyOverheads struct {
	// CheckUS is the per-node cost of dequeuing and dependency checking
	// ("the small space between node executions", Fig. 11).
	CheckUS float64
	// WakeUS is the sleep/wake penalty paid by the SLEEP strategy each
	// time a thread blocks on an unmet dependency.
	WakeUS float64
}

// SimulateBusy models the busy-waiting strategy: the depth-ordered queue
// is split round-robin over the threads, each thread runs its list in
// order and spins until the current node's dependencies are met. This is
// the simulation the paper ran in RESCON and reported at 327 µs.
func (m *Model) SimulateBusy(threads int, ov StrategyOverheads) (*Result, error) {
	return m.simulateStatic("busy-sim", threads, ov, false)
}

// SimulateSleep models the thread-sleeping strategy: identical assignment,
// but each dependency stall additionally pays the wake-up latency.
func (m *Model) SimulateSleep(threads int, ov StrategyOverheads) (*Result, error) {
	return m.simulateStatic("sleep-sim", threads, ov, true)
}

func (m *Model) simulateStatic(name string, threads int, ov StrategyOverheads, sleep bool) (*Result, error) {
	if threads < 1 {
		return nil, fmt.Errorf("rescon: threads = %d, want >= 1", threads)
	}
	n := m.Len()
	r := &Result{
		Strategy: name,
		Threads:  threads,
		Start:    make([]float64, n),
		Finish:   make([]float64, n),
		Proc:     make([]int32, n),
	}
	threadTime := make([]float64, threads)
	// Nodes in global queue order: every predecessor of a node appears
	// earlier, so its finish time is already known when we reach the node.
	for i, id := range m.order {
		w := i % threads
		ready := 0.0
		for _, d := range m.preds[id] {
			if f := r.Finish[d]; f > ready {
				ready = f
			}
		}
		st := threadTime[w] + ov.CheckUS
		if ready > st {
			// The thread stalls on a dependency.
			wait := ready - st
			r.WaitUS += wait
			st = ready
			if sleep {
				st += ov.WakeUS
			}
		}
		r.Start[id] = st
		r.Finish[id] = st + m.dur[id]
		r.Proc[id] = int32(w)
		threadTime[w] = r.Finish[id]
	}
	m.finishResult(r)
	return r, nil
}

// ConcurrencyProfile samples how many tasks run concurrently at uniform
// time steps across the schedule (the curve shape of Fig. 4). It returns
// the sample vector; sample i covers time [i*dt, (i+1)*dt).
func ConcurrencyProfile(r *Result, samples int) []int {
	if samples < 1 || r.MakespanUS <= 0 {
		return nil
	}
	dt := r.MakespanUS / float64(samples)
	out := make([]int, samples)
	for i := range r.Start {
		s := int(r.Start[i] / dt)
		f := int(math.Ceil(r.Finish[i]/dt)) - 1
		if f >= samples {
			f = samples - 1
		}
		if r.Finish[i] <= r.Start[i] {
			continue // zero-duration task
		}
		for k := s; k <= f; k++ {
			if k >= 0 && k < samples {
				out[k]++
			}
		}
	}
	return out
}

// Efficiency returns how close schedule r is to the resource-constrained
// lower bound max(TotalWork/threads, criticalPath): 1.0 means optimal.
func (m *Model) Efficiency(r *Result) float64 {
	if r.MakespanUS <= 0 || r.Threads < 1 {
		return 0
	}
	cp := m.EarliestStart().MakespanUS
	lower := math.Max(m.TotalWork()/float64(r.Threads), cp)
	return lower / r.MakespanUS
}

// CriticalPathUS returns the earliest-start makespan — the critical
// path length at unbounded parallelism, the absolute lower bound on any
// execution of the model.
func (m *Model) CriticalPathUS() float64 {
	return m.EarliestStart().MakespanUS
}

// GrahamBound is Graham's greedy-scheduling upper bound for any
// work-conserving executor on procs identical workers:
//
//	makespan ≤ CP + (W − CP) / m
//
// At every instant before the critical path finishes, either the path
// is progressing or all m workers are busy on surplus work, of which
// there is at most W − CP. The bound is monotone in both W and CP under
// added nodes and edges — the property the admission monotonicity suite
// pins down.
func GrahamBound(totalWorkUS, critPathUS float64, procs int) float64 {
	if procs < 1 {
		procs = 1
	}
	surplus := totalWorkUS - critPathUS
	if surplus < 0 {
		surplus = 0
	}
	return critPathUS + surplus/float64(procs)
}
