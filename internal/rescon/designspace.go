package rescon

import (
	"fmt"
	"math"
)

// Design-space models for the parallelization strategies the paper rules
// out in §V: software pipelining and data parallelism both raise
// throughput but fundamentally cannot meet DJ Star's latency constraint,
// because "only one audio packet at a time is available" — the next
// packet does not exist until the DJ's live tweaks are applied to it.
// These models quantify that argument.

// PipelineResult models a software pipeline over the task graph.
type PipelineResult struct {
	// Stages is the number of pipeline stages (depth classes).
	Stages int
	// InitiationIntervalUS is the time between packet completions once
	// the pipeline is full (the throughput bound).
	InitiationIntervalUS float64
	// LatencyUS is the per-packet latency through the full pipeline.
	LatencyUS float64
	// StageUS holds each stage's makespan on its processor share.
	StageUS []float64
}

// SimulatePipeline partitions the graph into depth stages, assigns each
// stage a processor share, and computes the initiation interval (the
// slowest stage) and the per-packet latency of a synchronous pipeline
// (stages advance in lockstep every interval, so latency = stages ×
// interval). procs is the total processor count shared by the stages.
func (m *Model) SimulatePipeline(depth []int32, procs int) (*PipelineResult, error) {
	if procs < 1 {
		return nil, fmt.Errorf("rescon: procs = %d, want >= 1", procs)
	}
	if len(depth) != m.Len() {
		return nil, fmt.Errorf("rescon: depth array has %d entries for %d tasks", len(depth), m.Len())
	}
	stages := 0
	for _, d := range depth {
		if int(d)+1 > stages {
			stages = int(d) + 1
		}
	}
	if stages == 0 {
		return nil, fmt.Errorf("rescon: empty model")
	}

	// Stage work: sum of node durations per depth class.
	work := make([]float64, stages)
	maxNode := make([]float64, stages)
	for i := 0; i < m.Len(); i++ {
		s := int(depth[i])
		work[s] += m.dur[i]
		if m.dur[i] > maxNode[s] {
			maxNode[s] = m.dur[i]
		}
	}

	// Processor shares proportional to stage work (at least 1 each when
	// possible; with fewer procs than stages, stages share processors and
	// the effective interval is bounded by total work / procs).
	stageUS := make([]float64, stages)
	total := 0.0
	for _, w := range work {
		total += w
	}
	for s := range stageUS {
		share := 1.0
		if total > 0 && procs > 0 {
			share = math.Max(1, math.Floor(work[s]/total*float64(procs)+0.5))
		}
		// A stage cannot run faster than its longest node, nor faster
		// than its work divided across its share.
		stageUS[s] = math.Max(maxNode[s], work[s]/share)
	}

	ii := 0.0
	for _, t := range stageUS {
		if t > ii {
			ii = t
		}
	}
	// Fewer processors than stages: intervals serialize further.
	if procs < stages {
		if lower := total / float64(procs); lower > ii {
			ii = lower
		}
	}
	return &PipelineResult{
		Stages:               stages,
		InitiationIntervalUS: ii,
		LatencyUS:            float64(stages) * ii,
		StageUS:              stageUS,
	}, nil
}

// DataParallelResult models processing a batch of packets concurrently.
type DataParallelResult struct {
	// Batch is the number of packets processed together.
	Batch int
	// ThroughputIntervalUS is the average time per packet.
	ThroughputIntervalUS float64
	// LatencyUS is the worst per-packet latency: the first packet of a
	// batch must wait for the whole batch to arrive (live input arrives
	// one packet period apart) and then for the batch to compute.
	LatencyUS float64
	// ComputeUS is the batch computation time.
	ComputeUS float64
}

// SimulateDataParallel models batch data parallelism: batch packets are
// collected (arriving packetPeriodUS apart, because the audio source is
// live), then each packet's graph runs on procs/batch processors (at
// least 1). The latency of the first packet includes the arrival wait for
// the rest of its batch — the term that makes data parallelism a
// non-starter for live audio no matter how many processors exist.
func (m *Model) SimulateDataParallel(batch, procs int, packetPeriodUS float64) (*DataParallelResult, error) {
	if batch < 1 || procs < 1 {
		return nil, fmt.Errorf("rescon: batch %d / procs %d, want >= 1", batch, procs)
	}
	per := procs / batch
	if per < 1 {
		per = 1
	}
	sched, err := m.ListSchedule(per)
	if err != nil {
		return nil, err
	}
	// Packets beyond procs capacity serialize in waves.
	waves := 1
	if batch*per > procs {
		waves = int(math.Ceil(float64(batch) * float64(per) / float64(procs)))
	}
	compute := sched.MakespanUS * float64(waves)
	arrivalWait := float64(batch-1) * packetPeriodUS
	return &DataParallelResult{
		Batch:                batch,
		ThroughputIntervalUS: (arrivalWait + compute) / float64(batch),
		LatencyUS:            arrivalWait + compute,
		ComputeUS:            compute,
	}, nil
}
