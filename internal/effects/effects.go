// Package effects implements the DJ Star effect units: the FX1–FX4 blocks
// in each deck's effect chain (paper Fig. 3). Every effect processes a
// stereo packet in place, exposes a single macro parameter (the "knob" a DJ
// tweaks live) plus a dry/wet control, and is allocation-free per packet.
//
// The effect set mirrors what commercial DJ software ships: echo, flanger,
// phaser, reverb, bit crusher, gater, beatmasher and a filter sweep.
package effects

import (
	"math"

	"djstar/internal/audio"
	"djstar/internal/dsp"
)

// Effect is the interface implemented by all FX units.
type Effect interface {
	// Name returns a short identifier such as "echo".
	Name() string
	// SetMacro positions the unit's macro knob; v is clamped to [0, 1].
	SetMacro(v float64)
	// Macro returns the current macro knob position.
	Macro() float64
	// SetWet sets the dry/wet mix; w is clamped to [0, 1].
	SetWet(w float64)
	// Process transforms one stereo packet in place.
	Process(buf audio.Stereo)
	// Reset clears all internal state (delay lines, phases, envelopes).
	Reset()
}

// base provides the shared macro/wet plumbing for the effect units.
type base struct {
	name  string
	macro float64
	wet   float64
}

func (b *base) Name() string   { return b.name }
func (b *base) Macro() float64 { return b.macro }

func (b *base) SetMacro(v float64) { b.macro = audio.Clamp(v, 0, 1) }
func (b *base) SetWet(w float64)   { b.wet = audio.Clamp(w, 0, 1) }

// mix blends dry and wet samples by the unit's wet fraction.
func (b *base) mix(dry, wet float64) float64 {
	return dry*(1-b.wet) + wet*b.wet
}

// Echo is a tempo-style stereo delay with feedback. The macro knob morphs
// the delay time between 1/16 and 1/2 note at 126 BPM.
type Echo struct {
	base
	lineL, lineR *dsp.DelayLine
	feedback     float64
	rate         int
}

// NewEcho returns an echo for sampling rate hz.
func NewEcho(hz int) *Echo {
	maxDelay := hz // up to 1 s
	e := &Echo{
		base:     base{name: "echo", macro: 0.5, wet: 0.5},
		lineL:    dsp.NewDelayLine(maxDelay),
		lineR:    dsp.NewDelayLine(maxDelay),
		feedback: 0.45,
		rate:     hz,
	}
	return e
}

// delaySamples converts the macro position to a delay length.
func (e *Echo) delaySamples() int {
	beat := 60.0 / 126 * float64(e.rate)
	frac := 1.0/16 + e.macro*(1.0/2-1.0/16)
	d := int(beat * 4 * frac)
	if d < 1 {
		d = 1
	}
	if d > e.lineL.Capacity() {
		d = e.lineL.Capacity()
	}
	return d
}

// Process implements Effect.
func (e *Echo) Process(buf audio.Stereo) {
	d := e.delaySamples()
	for i := range buf.L {
		wl := e.lineL.Read(d)
		wr := e.lineR.Read(d)
		// Ping-pong: cross-feed the feedback path.
		e.lineL.Write(buf.L[i] + wr*e.feedback)
		e.lineR.Write(buf.R[i] + wl*e.feedback)
		buf.L[i] = e.mix(buf.L[i], wl)
		buf.R[i] = e.mix(buf.R[i], wr)
	}
}

// Reset implements Effect.
func (e *Echo) Reset() {
	e.lineL.Reset()
	e.lineR.Reset()
}

// Flanger sweeps a short modulated delay across the signal. The macro knob
// controls the LFO rate.
type Flanger struct {
	base
	lineL, lineR *dsp.DelayLine
	phase        float64
	rate         int
	depth        float64 // modulation depth in samples
	center       float64 // center delay in samples
	feedback     float64
}

// NewFlanger returns a flanger for sampling rate hz.
func NewFlanger(hz int) *Flanger {
	return &Flanger{
		base:     base{name: "flanger", macro: 0.3, wet: 0.5},
		lineL:    dsp.NewDelayLine(hz / 50),
		lineR:    dsp.NewDelayLine(hz / 50),
		rate:     hz,
		depth:    float64(hz) * 0.002, // ±2 ms
		center:   float64(hz) * 0.005, // 5 ms
		feedback: 0.3,
	}
}

// Process implements Effect.
func (f *Flanger) Process(buf audio.Stereo) {
	lfoHz := 0.05 + f.macro*2 // 0.05..2.05 Hz
	inc := lfoHz / float64(f.rate)
	for i := range buf.L {
		mod := math.Sin(2 * math.Pi * f.phase)
		f.phase += inc
		if f.phase >= 1 {
			f.phase -= 1
		}
		dl := f.center + f.depth*mod
		dr := f.center + f.depth*-mod // inverted on the right for width
		wl := f.lineL.ReadFrac(dl)
		wr := f.lineR.ReadFrac(dr)
		f.lineL.Write(buf.L[i] + wl*f.feedback)
		f.lineR.Write(buf.R[i] + wr*f.feedback)
		buf.L[i] = f.mix(buf.L[i], wl)
		buf.R[i] = f.mix(buf.R[i], wr)
	}
}

// Reset implements Effect.
func (f *Flanger) Reset() {
	f.lineL.Reset()
	f.lineR.Reset()
	f.phase = 0
}

// Phaser cascades four all-pass biquads whose center frequency is swept by
// an LFO. The macro knob controls sweep rate.
type Phaser struct {
	base
	stagesL [4]*dsp.Biquad
	stagesR [4]*dsp.Biquad
	phase   float64
	rate    int
}

// NewPhaser returns a phaser for sampling rate hz.
func NewPhaser(hz int) *Phaser {
	p := &Phaser{base: base{name: "phaser", macro: 0.3, wet: 0.5}, rate: hz}
	for i := range p.stagesL {
		p.stagesL[i] = dsp.NewBiquad(dsp.AllPass, 800, 0.7, 0, hz)
		p.stagesR[i] = dsp.NewBiquad(dsp.AllPass, 800, 0.7, 0, hz)
	}
	return p
}

// Process implements Effect.
func (p *Phaser) Process(buf audio.Stereo) {
	lfoHz := 0.05 + p.macro*1.5
	// Retune once per packet: cheap enough and inaudible at 2.9 ms packets.
	mod := math.Sin(2 * math.Pi * p.phase)
	p.phase += lfoHz * float64(buf.Len()) / float64(p.rate)
	if p.phase >= 1 {
		p.phase -= math.Floor(p.phase)
	}
	center := 800 * math.Pow(2, mod*1.5) // sweep ~±1.5 octaves
	for i := range p.stagesL {
		f := center * math.Pow(1.6, float64(i))
		p.stagesL[i].Configure(dsp.AllPass, f, 0.7, 0, p.rate)
		p.stagesR[i].Configure(dsp.AllPass, f, 0.7, 0, p.rate)
	}
	for i := range buf.L {
		wl, wr := buf.L[i], buf.R[i]
		for s := range p.stagesL {
			wl = p.stagesL[s].ProcessSample(wl)
			wr = p.stagesR[s].ProcessSample(wr)
		}
		buf.L[i] = p.mix(buf.L[i], wl)
		buf.R[i] = p.mix(buf.R[i], wr)
	}
}

// Reset implements Effect.
func (p *Phaser) Reset() {
	for i := range p.stagesL {
		p.stagesL[i].Reset()
		p.stagesR[i].Reset()
	}
	p.phase = 0
}

// Reverb is a compact Schroeder reverberator: four parallel combs into two
// series all-pass diffusers per channel. The macro knob scales decay.
type Reverb struct {
	base
	combsL [4]*dsp.Comb
	combsR [4]*dsp.Comb
	apL    [2]*dsp.AllPassDelay
	apR    [2]*dsp.AllPassDelay
}

// NewReverb returns a reverb for sampling rate hz.
func NewReverb(hz int) *Reverb {
	r := &Reverb{base: base{name: "reverb", macro: 0.5, wet: 0.3}}
	// Mutually prime comb delays, classic Schroeder choices scaled to hz.
	combMs := [4]float64{29.7, 37.1, 41.1, 43.7}
	for i, ms := range combMs {
		d := int(ms / 1000 * float64(hz))
		r.combsL[i] = dsp.NewComb(d, 0.78, 0.2)
		r.combsR[i] = dsp.NewComb(d+23, 0.78, 0.2) // detuned right for width
	}
	apMs := [2]float64{5.0, 1.7}
	for i, ms := range apMs {
		d := int(ms / 1000 * float64(hz))
		r.apL[i] = dsp.NewAllPassDelay(d, 0.7)
		r.apR[i] = dsp.NewAllPassDelay(d+7, 0.7)
	}
	return r
}

// Process implements Effect.
func (r *Reverb) Process(buf audio.Stereo) {
	fb := 0.6 + r.macro*0.35 // decay control
	for i := range r.combsL {
		r.combsL[i].Feedback = fb
		r.combsR[i].Feedback = fb
	}
	// Input attenuation keeps the parallel comb bank's resonant gain near
	// unity (Freeverb does the same with a fixed 0.015 input gain).
	const inGain = 0.2
	for i := range buf.L {
		inL, inR := buf.L[i], buf.R[i]
		var wl, wr float64
		for c := range r.combsL {
			wl += r.combsL[c].ProcessSample(inL * inGain)
			wr += r.combsR[c].ProcessSample(inR * inGain)
		}
		wl *= 0.5
		wr *= 0.5
		for a := range r.apL {
			wl = r.apL[a].ProcessSample(wl)
			wr = r.apR[a].ProcessSample(wr)
		}
		buf.L[i] = r.mix(inL, wl)
		buf.R[i] = r.mix(inR, wr)
	}
}

// Reset implements Effect.
func (r *Reverb) Reset() {
	for i := range r.combsL {
		r.combsL[i].Reset()
		r.combsR[i].Reset()
	}
	for i := range r.apL {
		r.apL[i].Reset()
		r.apR[i].Reset()
	}
}

// BitCrusher reduces bit depth and sample rate for a lo-fi effect, followed
// by a soft clip. The macro knob increases destruction.
type BitCrusher struct {
	base
	holdL, holdR float64
	counter      float64
}

// NewBitCrusher returns a bit crusher (rate independent).
func NewBitCrusher(int) *BitCrusher {
	return &BitCrusher{base: base{name: "bitcrusher", macro: 0.3, wet: 1}}
}

// Process implements Effect.
func (c *BitCrusher) Process(buf audio.Stereo) {
	bits := 16 - c.macro*13 // 16 .. 3 bits
	levels := math.Pow(2, bits)
	decim := 1 + c.macro*15 // keep every n-th sample
	for i := range buf.L {
		c.counter++
		if c.counter >= decim {
			c.counter -= decim
			c.holdL = math.Round(buf.L[i]*levels) / levels
			c.holdR = math.Round(buf.R[i]*levels) / levels
		}
		buf.L[i] = c.mix(buf.L[i], c.holdL)
		buf.R[i] = c.mix(buf.R[i], c.holdR)
	}
}

// Reset implements Effect.
func (c *BitCrusher) Reset() {
	c.holdL, c.holdR, c.counter = 0, 0, 0
}

// Gater rhythmically chops the signal with a smoothed square LFO. The macro
// knob selects the gate rate.
type Gater struct {
	base
	phase float64
	env   float64
	rate  int
}

// NewGater returns a gater for sampling rate hz.
func NewGater(hz int) *Gater {
	return &Gater{base: base{name: "gater", macro: 0.5, wet: 1}, rate: hz}
}

// Process implements Effect.
func (g *Gater) Process(buf audio.Stereo) {
	// 1..16 Hz gate.
	gateHz := 1 + g.macro*15
	inc := gateHz / float64(g.rate)
	const smooth = 0.995
	for i := range buf.L {
		g.phase += inc
		if g.phase >= 1 {
			g.phase -= 1
		}
		target := 0.0
		if g.phase < 0.5 {
			target = 1
		}
		g.env = target + (g.env-target)*smooth
		buf.L[i] = g.mix(buf.L[i], buf.L[i]*g.env)
		buf.R[i] = g.mix(buf.R[i], buf.R[i]*g.env)
	}
}

// Reset implements Effect.
func (g *Gater) Reset() { g.phase, g.env = 0, 0 }

// BeatMasher grabs a short loop of the incoming audio and stutters it,
// DJ-style. The macro knob selects the slice length.
type BeatMasher struct {
	base
	bufL, bufR []float64
	writePos   int
	readPos    int
	capturing  bool
	rate       int
}

// NewBeatMasher returns a beat masher for sampling rate hz.
func NewBeatMasher(hz int) *BeatMasher {
	n := hz / 2 // up to 500 ms slice
	return &BeatMasher{
		base:      base{name: "beatmasher", macro: 0.4, wet: 1},
		bufL:      make([]float64, n),
		bufR:      make([]float64, n),
		capturing: true,
		rate:      hz,
	}
}

// sliceLen returns the active loop length in samples.
func (m *BeatMasher) sliceLen() int {
	minLen := m.rate / 64
	n := minLen + int(m.macro*float64(len(m.bufL)-minLen))
	if n < 1 {
		n = 1
	}
	if n > len(m.bufL) {
		n = len(m.bufL)
	}
	return n
}

// Process implements Effect.
func (m *BeatMasher) Process(buf audio.Stereo) {
	n := m.sliceLen()
	for i := range buf.L {
		if m.capturing {
			m.bufL[m.writePos] = buf.L[i]
			m.bufR[m.writePos] = buf.R[i]
			m.writePos++
			if m.writePos >= n {
				m.capturing = false
				m.readPos = 0
			}
			// While capturing, pass dry through.
			continue
		}
		wl := m.bufL[m.readPos]
		wr := m.bufR[m.readPos]
		m.readPos++
		if m.readPos >= n {
			m.readPos = 0
		}
		buf.L[i] = m.mix(buf.L[i], wl)
		buf.R[i] = m.mix(buf.R[i], wr)
	}
}

// Reset implements Effect and re-arms the capture.
func (m *BeatMasher) Reset() {
	m.writePos, m.readPos = 0, 0
	m.capturing = true
	for i := range m.bufL {
		m.bufL[i] = 0
		m.bufR[i] = 0
	}
}

// FilterSweep is the classic DJ filter: below 0.5 the macro knob low-passes,
// above 0.5 it high-passes, with a dead zone at noon.
type FilterSweep struct {
	base
	fL, fR *dsp.Biquad
	rate   int
	last   float64
}

// NewFilterSweep returns a filter sweep for sampling rate hz.
func NewFilterSweep(hz int) *FilterSweep {
	fs := &FilterSweep{
		base: base{name: "filtersweep", macro: 0.5, wet: 1},
		fL:   dsp.NewBiquad(AllKindPassThrough(), 1000, 0.9, 0, hz),
		fR:   dsp.NewBiquad(AllKindPassThrough(), 1000, 0.9, 0, hz),
		rate: hz,
		last: math.NaN(),
	}
	return fs
}

// AllKindPassThrough returns the filter kind used when the sweep sits in
// its center dead zone (an all-pass, i.e. audibly transparent).
func AllKindPassThrough() dsp.FilterKind { return dsp.AllPass }

// Process implements Effect.
func (fs *FilterSweep) Process(buf audio.Stereo) {
	const dead = 0.04
	m := fs.macro
	if m != fs.last {
		fs.last = m
		switch {
		case m < 0.5-dead:
			// Low-pass sweeping 80 Hz .. 18 kHz as knob approaches center.
			t := m / (0.5 - dead)
			freq := 80 * math.Pow(18000.0/80, t)
			fs.fL.Configure(dsp.LowPass, freq, 0.9, 0, fs.rate)
			fs.fR.Configure(dsp.LowPass, freq, 0.9, 0, fs.rate)
		case m > 0.5+dead:
			t := (m - (0.5 + dead)) / (0.5 - dead)
			freq := 30 * math.Pow(16000.0/30, t)
			fs.fL.Configure(dsp.HighPass, freq, 0.9, 0, fs.rate)
			fs.fR.Configure(dsp.HighPass, freq, 0.9, 0, fs.rate)
		default:
			fs.fL.Configure(dsp.AllPass, 1000, 0.9, 0, fs.rate)
			fs.fR.Configure(dsp.AllPass, 1000, 0.9, 0, fs.rate)
		}
	}
	fs.fL.Process(buf.L)
	fs.fR.Process(buf.R)
}

// Reset implements Effect.
func (fs *FilterSweep) Reset() {
	fs.fL.Reset()
	fs.fR.Reset()
}

// Registry lists the available effect constructors by name, used by the
// graph builder and the examples to assemble FX chains.
var Registry = map[string]func(hz int) Effect{
	"echo":        func(hz int) Effect { return NewEcho(hz) },
	"flanger":     func(hz int) Effect { return NewFlanger(hz) },
	"phaser":      func(hz int) Effect { return NewPhaser(hz) },
	"reverb":      func(hz int) Effect { return NewReverb(hz) },
	"bitcrusher":  func(hz int) Effect { return NewBitCrusher(hz) },
	"gater":       func(hz int) Effect { return NewGater(hz) },
	"beatmasher":  func(hz int) Effect { return NewBeatMasher(hz) },
	"filtersweep": func(hz int) Effect { return NewFilterSweep(hz) },
	"autopan":     func(hz int) Effect { return NewAutoPan(hz) },
	"brake":       func(hz int) Effect { return NewBrake(hz) },
}

// StandardChain returns the default 4-unit chain (FX1..FX4) used by the
// paper-scale graph: echo, flanger, reverb, filter sweep. Deck index d
// rotates the assignment so the four decks carry different chains, like a
// real performance.
func StandardChain(d, hz int) [4]Effect {
	order := []string{"echo", "flanger", "reverb", "filtersweep",
		"phaser", "gater", "bitcrusher", "beatmasher"}
	var out [4]Effect
	for i := 0; i < 4; i++ {
		name := order[(d*2+i)%len(order)]
		out[i] = Registry[name](hz)
	}
	return out
}
