package effects

import (
	"math"
	"testing"

	"djstar/internal/audio"
	"djstar/internal/synth"
)

func TestAutoPanSweepsChannels(t *testing.T) {
	a := NewAutoPan(rate)
	a.SetWet(1)
	a.SetMacro(1) // fastest sweep (~8 Hz)
	// Feed a constant mono tone for half a second; track per-packet
	// channel energy — both sides must win at some point.
	var leftWins, rightWins bool
	for p := 0; p < rate/2/audio.PacketSize; p++ {
		buf := audio.NewStereo(audio.PacketSize)
		for i := range buf.L {
			buf.L[i] = 0.5
			buf.R[i] = 0.5
		}
		a.Process(buf)
		le := audio.Buffer(buf.L).Energy()
		re := audio.Buffer(buf.R).Energy()
		if le > re*2 {
			leftWins = true
		}
		if re > le*2 {
			rightWins = true
		}
	}
	if !leftWins || !rightWins {
		t.Fatalf("pan never reached both sides (left %v right %v)", leftWins, rightWins)
	}
	a.Reset()
}

func TestAutoPanPreservesPowerRoughly(t *testing.T) {
	a := NewAutoPan(rate)
	a.SetWet(1)
	a.SetMacro(0.5)
	var inE, outE float64
	for p := 0; p < 200; p++ {
		buf := audio.NewStereo(audio.PacketSize)
		tone := synth.SineBuffer(440, audio.PacketSize, rate)
		copy(buf.L, tone)
		copy(buf.R, tone)
		inE += buf.L.Energy() + buf.R.Energy()
		a.Process(buf)
		outE += buf.L.Energy() + buf.R.Energy()
	}
	if math.Abs(outE-inE)/inE > 0.25 {
		t.Fatalf("autopan power drifted: in %v out %v", inE, outE)
	}
}

func TestBrakeWindsDownToSilence(t *testing.T) {
	b := NewBrake(rate)
	b.SetMacro(1) // fastest stop (~0.1 s)
	b.SetWet(1)   // engage
	tone := func() audio.Stereo {
		s := audio.NewStereo(audio.PacketSize)
		copy(s.L, synth.SineBuffer(880, audio.PacketSize, rate))
		copy(s.R, s.L)
		return s
	}
	var first, last float64
	packets := rate / 4 / audio.PacketSize // 250 ms, past the stop time
	for p := 0; p < packets; p++ {
		buf := tone()
		b.Process(buf)
		if p == 0 {
			first = buf.RMS()
		}
		if p == packets-1 {
			last = buf.RMS()
		}
	}
	if first == 0 {
		t.Fatal("brake silenced audio immediately")
	}
	if last > first/20 {
		t.Fatalf("brake did not stop: first RMS %v, last %v", first, last)
	}
}

func TestBrakeDropsPitchWhileStopping(t *testing.T) {
	b := NewBrake(rate)
	b.SetMacro(0) // slow 2 s stop: pitch glides down
	b.SetWet(1)
	var out []float64
	for p := 0; p < rate/2/audio.PacketSize; p++ {
		buf := audio.NewStereo(audio.PacketSize)
		copy(buf.L, synth.SineBuffer(880, audio.PacketSize, rate))
		copy(buf.R, buf.L)
		b.Process(buf)
		out = append(out, buf.L...)
	}
	freqOf := func(seg []float64) float64 {
		crossings := 0
		for i := 1; i < len(seg); i++ {
			if (seg[i-1] < 0 && seg[i] >= 0) || (seg[i-1] > 0 && seg[i] <= 0) {
				crossings++
			}
		}
		return float64(crossings) / 2 / (float64(len(seg)) / rate)
	}
	early := freqOf(out[:len(out)/4])
	late := freqOf(out[3*len(out)/4:])
	if late >= early*0.95 {
		t.Fatalf("pitch did not drop: early %v Hz, late %v Hz", early, late)
	}
}

func TestBrakeReleasesBackToLive(t *testing.T) {
	b := NewBrake(rate)
	b.SetMacro(1)
	b.SetWet(1)
	feed := func(packets int) float64 {
		var rms float64
		for p := 0; p < packets; p++ {
			buf := audio.NewStereo(audio.PacketSize)
			copy(buf.L, synth.SineBuffer(440, audio.PacketSize, rate))
			copy(buf.R, buf.L)
			b.Process(buf)
			rms = buf.RMS()
		}
		return rms
	}
	stopped := feed(rate / 4 / audio.PacketSize)
	if stopped > 0.01 {
		t.Fatalf("not stopped: %v", stopped)
	}
	b.SetWet(0) // release
	playing := feed(rate / 4 / audio.PacketSize)
	if playing < 0.1 {
		t.Fatalf("did not spin back up: RMS %v", playing)
	}
}
