package effects

import (
	"math"
	"testing"

	"djstar/internal/audio"
	"djstar/internal/synth"
)

const rate = audio.SampleRate

// allEffects constructs one of each registered effect.
func allEffects(t *testing.T) []Effect {
	t.Helper()
	var out []Effect
	for name, ctor := range Registry {
		e := ctor(rate)
		if e == nil {
			t.Fatalf("constructor %q returned nil", name)
		}
		out = append(out, e)
	}
	return out
}

func makeTestPacket() audio.Stereo {
	s := audio.NewStereo(audio.PacketSize)
	copy(s.L, synth.SineBuffer(440, audio.PacketSize, rate))
	copy(s.R, synth.SineBuffer(660, audio.PacketSize, rate))
	return s
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"echo", "flanger", "phaser", "reverb", "bitcrusher",
		"gater", "beatmasher", "filtersweep", "autopan", "brake"}
	for _, name := range want {
		ctor, ok := Registry[name]
		if !ok {
			t.Fatalf("effect %q missing from registry", name)
		}
		if got := ctor(rate).Name(); got != name {
			t.Fatalf("effect name = %q, want %q", got, name)
		}
	}
	if len(Registry) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(Registry), len(want))
	}
}

func TestEffectsProduceFiniteBoundedOutput(t *testing.T) {
	for _, e := range allEffects(t) {
		e.SetMacro(0.7)
		e.SetWet(1)
		src := makeTestPacket()
		buf := audio.NewStereo(audio.PacketSize)
		// Run enough packets to fill delay lines and exercise feedback.
		for p := 0; p < 2000; p++ {
			buf.CopyFrom(src)
			e.Process(buf)
			for i := range buf.L {
				if math.IsNaN(buf.L[i]) || math.IsInf(buf.L[i], 0) {
					t.Fatalf("%s produced non-finite output at packet %d", e.Name(), p)
				}
			}
			if peak := buf.Peak(); peak > 50 {
				t.Fatalf("%s output blew up: peak %v at packet %d", e.Name(), peak, p)
			}
		}
	}
}

func TestMacroAndWetClamped(t *testing.T) {
	for _, e := range allEffects(t) {
		e.SetMacro(-5)
		if e.Macro() != 0 {
			t.Fatalf("%s Macro after -5 = %v, want 0", e.Name(), e.Macro())
		}
		e.SetMacro(7)
		if e.Macro() != 1 {
			t.Fatalf("%s Macro after 7 = %v, want 1", e.Name(), e.Macro())
		}
		e.SetWet(2) // must not panic; effect remains usable
		buf := makeTestPacket()
		e.Process(buf)
	}
}

func TestDryWetZeroIsTransparentForMixEffects(t *testing.T) {
	// Effects built on base.mix must pass dry through at wet = 0.
	for _, name := range []string{"echo", "flanger", "phaser", "reverb", "bitcrusher", "gater"} {
		e := Registry[name](rate)
		e.SetWet(0)
		in := makeTestPacket()
		buf := audio.NewStereo(audio.PacketSize)
		buf.CopyFrom(in)
		e.Process(buf)
		for i := range buf.L {
			if math.Abs(buf.L[i]-in.L[i]) > 1e-9 {
				t.Fatalf("%s not transparent at wet=0: sample %d %v vs %v",
					name, i, buf.L[i], in.L[i])
			}
		}
	}
}

func TestEchoDelaysSignal(t *testing.T) {
	e := NewEcho(rate)
	e.SetWet(1)
	e.SetMacro(0) // shortest delay
	d := e.delaySamples()

	// Feed an impulse then silence; the echo must reappear after d samples.
	total := d + 256
	nPackets := (total + audio.PacketSize - 1) / audio.PacketSize
	var out []float64
	for p := 0; p < nPackets; p++ {
		buf := audio.NewStereo(audio.PacketSize)
		if p == 0 {
			buf.L[0] = 1
			buf.R[0] = 1
		}
		e.Process(buf)
		out = append(out, buf.L...)
	}
	// Find first nonzero output sample: should be at index d.
	first := -1
	for i, s := range out {
		if math.Abs(s) > 1e-9 {
			first = i
			break
		}
	}
	if first != d {
		t.Fatalf("echo appeared at sample %d, want %d", first, d)
	}
}

func TestEchoMacroChangesDelay(t *testing.T) {
	e := NewEcho(rate)
	e.SetMacro(0)
	short := e.delaySamples()
	e.SetMacro(1)
	long := e.delaySamples()
	if long <= short {
		t.Fatalf("macro did not lengthen delay: %d vs %d", short, long)
	}
}

func TestGaterChopsSignal(t *testing.T) {
	g := NewGater(rate)
	g.SetWet(1)
	g.SetMacro(1) // fastest gate (16 Hz)
	// Feed constant 1.0 for half a second and observe both open and closed
	// phases.
	var minEnv, maxEnv = math.Inf(1), math.Inf(-1)
	for p := 0; p < rate/2/audio.PacketSize; p++ {
		buf := audio.NewStereo(audio.PacketSize)
		for i := range buf.L {
			buf.L[i] = 1
			buf.R[i] = 1
		}
		g.Process(buf)
		for _, s := range buf.L {
			if s < minEnv {
				minEnv = s
			}
			if s > maxEnv {
				maxEnv = s
			}
		}
	}
	if maxEnv < 0.8 {
		t.Fatalf("gate never opened: max %v", maxEnv)
	}
	if minEnv > 0.2 {
		t.Fatalf("gate never closed: min %v", minEnv)
	}
}

func TestBitCrusherQuantizes(t *testing.T) {
	c := NewBitCrusher(rate)
	c.SetWet(1)
	c.SetMacro(1) // 3 bits, heavy decimation
	buf := makeTestPacket()
	c.Process(buf)
	// With 3 bits there are only 2^3 = 8 levels; count distinct values.
	seen := map[float64]bool{}
	for _, s := range buf.L {
		seen[s] = true
	}
	if len(seen) > 16 {
		t.Fatalf("crushed signal has %d distinct levels, want few", len(seen))
	}
}

func TestBeatMasherLoops(t *testing.T) {
	m := NewBeatMasher(rate)
	m.SetWet(1)
	m.SetMacro(0) // shortest slice
	n := m.sliceLen()

	// Feed a ramp long enough to finish capture, then silence.
	fill := (n/audio.PacketSize + 2) * audio.PacketSize
	idx := 0
	for idx < fill {
		buf := audio.NewStereo(audio.PacketSize)
		for i := range buf.L {
			buf.L[i] = float64(idx+i) / float64(fill)
		}
		m.Process(buf)
		idx += audio.PacketSize
	}
	// Now feed silence; output should repeat the captured slice (nonzero).
	buf := audio.NewStereo(audio.PacketSize)
	m.Process(buf)
	if buf.Peak() == 0 {
		t.Fatal("beatmasher produced silence after capture")
	}
	m.Reset()
	buf2 := audio.NewStereo(audio.PacketSize)
	m.Process(buf2)
	if buf2.Peak() != 0 {
		t.Fatal("after Reset the masher should capture (pass dry silence)")
	}
}

func TestFilterSweepModes(t *testing.T) {
	// Low setting: low-pass kills a high sine.
	fs := NewFilterSweep(rate)
	fs.SetMacro(0.05)
	high := audio.NewStereo(4096)
	copy(high.L, synth.SineBuffer(10000, 4096, rate))
	copy(high.R, high.L)
	fs.Process(high)
	if p := audio.Buffer(high.L[2048:]).Peak(); p > 0.1 {
		t.Fatalf("LP mode left high content: %v", p)
	}

	// High setting: high-pass kills a low sine.
	fs2 := NewFilterSweep(rate)
	fs2.SetMacro(0.95)
	low := audio.NewStereo(4096)
	copy(low.L, synth.SineBuffer(60, 4096, rate))
	copy(low.R, low.L)
	fs2.Process(low)
	if p := audio.Buffer(low.L[2048:]).Peak(); p > 0.1 {
		t.Fatalf("HP mode left low content: %v", p)
	}

	// Center: transparent in magnitude (all-pass).
	fs3 := NewFilterSweep(rate)
	fs3.SetMacro(0.5)
	mid := audio.NewStereo(8192)
	copy(mid.L, synth.SineBuffer(1000, 8192, rate))
	copy(mid.R, mid.L)
	before := audio.Buffer(mid.L).RMS()
	fs3.Process(mid)
	after := audio.Buffer(mid.L[4096:]).RMS()
	if math.Abs(after-before)/before > 0.1 {
		t.Fatalf("center position not transparent: RMS %v -> %v", before, after)
	}
}

func TestReverbTailDecays(t *testing.T) {
	r := NewReverb(rate)
	r.SetWet(1)
	r.SetMacro(0.2)
	// One loud packet, then silence; tail must be nonzero then decay.
	buf := makeTestPacket()
	r.Process(buf)
	// The shortest comb delay is ~29.7 ms (~10 packets), so sample the tail
	// just after the first echo and again much later.
	var tail0, tail1 float64
	for p := 0; p < 120; p++ {
		s := audio.NewStereo(audio.PacketSize)
		r.Process(s)
		if p == 12 {
			tail0 = s.RMS()
		}
		if p == 119 {
			tail1 = s.RMS()
		}
	}
	if tail0 == 0 {
		t.Fatal("reverb has no tail")
	}
	if tail1 >= tail0 {
		t.Fatalf("reverb tail not decaying: %v -> %v", tail0, tail1)
	}
}

func TestResetRestoresSilence(t *testing.T) {
	for _, e := range allEffects(t) {
		e.SetWet(1)
		buf := makeTestPacket()
		for i := 0; i < 50; i++ {
			e.Process(buf)
		}
		e.Reset()
		silent := audio.NewStereo(audio.PacketSize)
		e.Process(silent)
		// After reset, silence in means silence out (beatmasher recaptures,
		// gater envelope restarts — all must be quiet).
		if p := silent.Peak(); p > 1e-9 {
			t.Fatalf("%s not silent after Reset: peak %v", e.Name(), p)
		}
	}
}

func TestStandardChainsDiffer(t *testing.T) {
	a := StandardChain(0, rate)
	b := StandardChain(1, rate)
	for i := range a {
		if a[i] == nil || b[i] == nil {
			t.Fatalf("nil effect in chain at %d", i)
		}
	}
	if a[0].Name() == b[0].Name() && a[1].Name() == b[1].Name() &&
		a[2].Name() == b[2].Name() && a[3].Name() == b[3].Name() {
		t.Fatal("deck chains 0 and 1 identical; expected rotation")
	}
}

func TestEffectsProcessNoAlloc(t *testing.T) {
	for _, e := range allEffects(t) {
		buf := makeTestPacket()
		e.Process(buf) // warm up state
		allocs := testing.AllocsPerRun(50, func() { e.Process(buf) })
		if allocs != 0 {
			t.Fatalf("%s allocates %v per packet", e.Name(), allocs)
		}
	}
}
