package effects

import (
	"math"

	"djstar/internal/audio"
	"djstar/internal/dsp"
)

// AutoPan sweeps the signal between the left and right channels with an
// equal-power LFO. The macro knob controls the sweep rate.
type AutoPan struct {
	base
	phase float64
	rate  int
}

// NewAutoPan returns an auto-panner for sampling rate hz.
func NewAutoPan(hz int) *AutoPan {
	return &AutoPan{base: base{name: "autopan", macro: 0.3, wet: 1}, rate: hz}
}

// Process implements Effect.
func (a *AutoPan) Process(buf audio.Stereo) {
	lfoHz := 0.1 + a.macro*8 // 0.1..8.1 Hz
	inc := lfoHz / float64(a.rate)
	for i := range buf.L {
		pan := math.Sin(2 * math.Pi * a.phase) // -1..1
		a.phase += inc
		if a.phase >= 1 {
			a.phase -= 1
		}
		gl, gr := dsp.EqualPowerPan(pan)
		// Mono-ize the pan source so the sweep is audible on any input,
		// then spread with the constant-power gains.
		mid := 0.5 * (buf.L[i] + buf.R[i])
		buf.L[i] = a.mix(buf.L[i], mid*gl*math.Sqrt2)
		buf.R[i] = a.mix(buf.R[i], mid*gr*math.Sqrt2)
	}
}

// Reset implements Effect.
func (a *AutoPan) Reset() { a.phase = 0 }

// Brake emulates powering a turntable off: on each trigger the audio
// winds down from full speed to a stop (with the matching pitch drop),
// like hitting stop on a spinning deck. The macro knob controls how fast
// the platter stops; setting the wet control to 0 releases the brake.
type Brake struct {
	base
	line  *dsp.DelayLine
	delay float64 // how far behind real time the read tap has fallen
	speed float64 // current platter speed, 1 -> 0 while braking
	rate  int
}

// NewBrake returns a brake effect for sampling rate hz.
func NewBrake(hz int) *Brake {
	return &Brake{
		base:  base{name: "brake", macro: 0.5, wet: 0},
		line:  dsp.NewDelayLine(hz * 2),
		speed: 1,
		rate:  hz,
	}
}

// Process implements Effect. The wet control arms the brake: wet > 0.5
// engages (speed ramps to 0), wet <= 0.5 spins back up.
func (b *Brake) Process(buf audio.Stereo) {
	// Stop time between 0.1 s (macro 1) and 2 s (macro 0).
	stopSec := 2 - b.macro*1.9
	accel := 1 / (stopSec * float64(b.rate))
	engaged := b.wet > 0.5
	maxDelay := float64(b.line.Capacity() - 2)
	for i := range buf.L {
		// Track platter speed.
		if engaged {
			b.speed -= accel
			if b.speed < 0 {
				b.speed = 0
			}
		} else {
			b.speed += accel * 2 // spin-up is quicker than stop
			if b.speed > 1 {
				b.speed = 1
			}
		}
		// Write real time, read at platter speed: the tap falls behind by
		// (1 - speed) samples per sample.
		mid := 0.5 * (buf.L[i] + buf.R[i])
		b.line.Write(mid)
		b.delay += 1 - b.speed
		if b.delay > maxDelay {
			b.delay = maxDelay
		}
		if !engaged && b.speed >= 1 && b.delay > 0 {
			// Fully spun up: reel the tap back in gently (slightly fast
			// playback) until we are live again.
			b.delay -= 0.2
			if b.delay < 0 {
				b.delay = 0
			}
		}
		out := b.line.ReadFrac(1+b.delay) * b.speed
		buf.L[i] = out
		buf.R[i] = out
	}
}

// Reset implements Effect.
func (b *Brake) Reset() {
	b.line.Reset()
	b.delay = 0
	b.speed = 1
}
