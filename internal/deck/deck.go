// Package deck implements the DJ Star track players ("Decks" in the
// paper's architecture, Fig. 2). A Deck streams audio packets out of a
// loaded track with variable tempo (vinyl-style resampling), optional
// key lock (granular pitch compensation so tempo changes do not change
// pitch), loops and cue points. Four Decks feed the audio graph.
package deck

import (
	"fmt"
	"math"

	"djstar/internal/audio"
	"djstar/internal/dsp"
	"djstar/internal/synth"
)

// MaxCues is the number of hot-cue slots per deck.
const MaxCues = 8

// Deck is a single track player. It is not safe for concurrent use; the
// engine mutates decks only between graph executions (in the GP stage).
type Deck struct {
	name  string
	rate  int
	track *synth.Track

	pos     float64 // playhead in track frames
	playing bool
	tempo   float64 // playback rate, 1 = original tempo
	keyLock bool

	loopStart, loopEnd float64
	loopOn             bool

	cues [MaxCues]float64

	shifterL, shifterR *PitchShifter
}

// New returns a stopped, empty deck for the given sampling rate.
func New(name string, rate int) *Deck {
	return &Deck{
		name:     name,
		rate:     rate,
		tempo:    1,
		shifterL: NewPitchShifter(rate),
		shifterR: NewPitchShifter(rate),
	}
}

// Name returns the deck's label ("deck-a", ...).
func (d *Deck) Name() string { return d.name }

// Load puts a track on the deck and rewinds to the start.
func (d *Deck) Load(t *synth.Track) {
	d.track = t
	d.pos = 0
	d.playing = false
	d.loopOn = false
	d.shifterL.Reset()
	d.shifterR.Reset()
}

// Track returns the loaded track, or nil.
func (d *Deck) Track() *synth.Track { return d.track }

// Play starts playback (no-op without a track).
func (d *Deck) Play() {
	if d.track != nil {
		d.playing = true
	}
}

// Pause stops playback, keeping the playhead.
func (d *Deck) Pause() { d.playing = false }

// Playing reports whether the deck is rolling.
func (d *Deck) Playing() bool { return d.playing }

// Position returns the playhead in track frames.
func (d *Deck) Position() float64 { return d.pos }

// Seek moves the playhead, clamped to the track bounds.
func (d *Deck) Seek(frames float64) {
	if d.track == nil {
		return
	}
	d.pos = audio.Clamp(frames, 0, float64(d.track.Len()))
}

// SetTempo sets the playback rate; clamped to the ±50 % range a wide DJ
// pitch fader offers.
func (d *Deck) SetTempo(rate float64) {
	d.tempo = audio.Clamp(rate, 0.5, 1.5)
}

// Tempo returns the playback rate.
func (d *Deck) Tempo() float64 { return d.tempo }

// SetKeyLock enables or disables pitch compensation.
func (d *Deck) SetKeyLock(on bool) { d.keyLock = on }

// KeyLock reports whether pitch compensation is active.
func (d *Deck) KeyLock() bool { return d.keyLock }

// SetCue stores the current playhead in cue slot i.
func (d *Deck) SetCue(i int) error {
	if i < 0 || i >= MaxCues {
		return fmt.Errorf("deck: cue slot %d out of range [0,%d)", i, MaxCues)
	}
	d.cues[i] = d.pos
	return nil
}

// JumpCue moves the playhead to cue slot i.
func (d *Deck) JumpCue(i int) error {
	if i < 0 || i >= MaxCues {
		return fmt.Errorf("deck: cue slot %d out of range [0,%d)", i, MaxCues)
	}
	d.pos = d.cues[i]
	return nil
}

// SetLoop arms a loop between start and end (frames). An end at or before
// start disables the loop.
func (d *Deck) SetLoop(start, end float64) {
	if end <= start {
		d.loopOn = false
		return
	}
	d.loopStart, d.loopEnd = start, end
	d.loopOn = true
}

// ClearLoop disables the loop.
func (d *Deck) ClearLoop() { d.loopOn = false }

// LoopActive reports whether a loop is armed.
func (d *Deck) LoopActive() bool { return d.loopOn }

// BeatPhase returns the playhead's position within the current bar in
// [0, 1), or 0 if no track is loaded. Used by the beat-grid control nodes.
func (d *Deck) BeatPhase() float64 {
	if d.track == nil || d.track.FramesPerBar == 0 {
		return 0
	}
	bar := math.Mod(d.pos, float64(d.track.FramesPerBar))
	return bar / float64(d.track.FramesPerBar)
}

// ReadPacket fills dst with the next packet of deck output and advances
// the playhead. A stopped or empty deck writes silence. When the playhead
// passes the end of the track, the deck stops.
func (d *Deck) ReadPacket(dst audio.Stereo) {
	if !d.playing || d.track == nil {
		dst.Zero()
		return
	}
	n := dst.Len()
	trackLen := float64(d.track.Len())

	// Read with resampling, honoring the loop one sample at a time so the
	// wrap lands exactly on the loop boundary.
	pos := d.pos
	for i := 0; i < n; i++ {
		if d.loopOn && pos >= d.loopEnd {
			pos = d.loopStart + math.Mod(pos-d.loopEnd, d.loopEnd-d.loopStart)
		}
		if pos >= trackLen {
			// End of track: silence the rest and stop.
			for ; i < n; i++ {
				dst.L[i] = 0
				dst.R[i] = 0
			}
			d.playing = false
			d.pos = trackLen
			return
		}
		dst.L[i] = sampleCubic(d.track.Audio.L, pos)
		dst.R[i] = sampleCubic(d.track.Audio.R, pos)
		pos += d.tempo
	}
	d.pos = pos

	// Key lock: the resample above shifted pitch by tempo; shift it back
	// by 1/tempo so the key is preserved.
	if d.keyLock && math.Abs(d.tempo-1) > 1e-6 {
		shift := 1 / d.tempo
		d.shifterL.Process(dst.L, shift)
		d.shifterR.Process(dst.R, shift)
	}
}

// sampleCubic reads one Catmull-Rom interpolated sample at fractional
// position pos.
func sampleCubic(src []float64, pos float64) float64 {
	n := len(src)
	idx := int(pos)
	t := pos - float64(idx)
	at := func(i int) float64 {
		if i < 0 || i >= n {
			return 0
		}
		return src[i]
	}
	p0, p1, p2, p3 := at(idx-1), at(idx), at(idx+1), at(idx+2)
	a := -0.5*p0 + 1.5*p1 - 1.5*p2 + 0.5*p3
	b := p0 - 2.5*p1 + 2*p2 - 0.5*p3
	c := -0.5*p0 + 0.5*p2
	return ((a*t+b)*t+c)*t + p1
}

// PitchShifter is a classic dual-tap delay-line pitch shifter: two read
// taps sweep through a short window at a rate offset of (shift-1), each
// faded by a triangular window and crossfaded against the other, which
// hides the tap resets. It is the per-packet granular kernel behind key
// lock — the "time stretching, phase alignment" preprocessing work the
// paper measures at 33 % of the APC.
type PitchShifter struct {
	line   *dsp.DelayLine
	window float64 // sweep window in samples
	phase  float64 // tap sweep phase in [0, 1)
}

// NewPitchShifter returns a shifter with a ~32 ms grain window.
func NewPitchShifter(rate int) *PitchShifter {
	w := float64(rate) * 0.032
	return &PitchShifter{
		line:   dsp.NewDelayLine(int(w) * 2),
		window: w,
	}
}

// Reset clears the shifter history.
func (p *PitchShifter) Reset() {
	p.line.Reset()
	p.phase = 0
}

// Process pitch-shifts buf in place by the given ratio (2 = up an octave).
func (p *PitchShifter) Process(buf []float64, shift float64) {
	if shift <= 0 {
		shift = 1
	}
	// Tap sweep rate: delay ramps at (1 - shift) samples per sample.
	rate := (1 - shift) / p.window
	for i, x := range buf {
		p.line.Write(x)
		p.phase += rate
		p.phase -= math.Floor(p.phase)

		d1 := p.phase * p.window
		d2 := math.Mod(p.phase+0.5, 1) * p.window
		// Triangular crossfade: tap gain peaks mid-window.
		g1 := 1 - math.Abs(2*p.phase-1)
		g2 := 1 - g1
		buf[i] = p.line.ReadFrac(1+d1)*g1 + p.line.ReadFrac(1+d2)*g2
	}
}
