package deck

import (
	"math"
	"testing"

	"djstar/internal/audio"
	"djstar/internal/synth"
)

func testTrack() *synth.Track {
	return synth.GenerateTrack(synth.TrackSpec{Name: "test", Bars: 2, Seed: 1})
}

func TestDeckSilentWhenStopped(t *testing.T) {
	d := New("deck-a", audio.SampleRate)
	dst := audio.NewStereo(audio.PacketSize)
	dst.L[0] = 99 // must be overwritten
	d.ReadPacket(dst)
	if dst.Peak() != 0 {
		t.Fatal("stopped deck produced audio")
	}
	if d.Name() != "deck-a" {
		t.Fatalf("Name = %q", d.Name())
	}
}

func TestDeckPlayWithoutTrackIsNoop(t *testing.T) {
	d := New("x", audio.SampleRate)
	d.Play()
	if d.Playing() {
		t.Fatal("deck playing without a track")
	}
}

func TestDeckPlaysTrackAudio(t *testing.T) {
	d := New("x", audio.SampleRate)
	tr := testTrack()
	d.Load(tr)
	d.Play()
	dst := audio.NewStereo(audio.PacketSize)
	d.ReadPacket(dst)
	want := tr.Audio.L[:audio.PacketSize]
	for i := 0; i < audio.PacketSize; i++ {
		if math.Abs(dst.L[i]-want[i]) > 1e-9 {
			t.Fatalf("unity playback differs at %d: %v vs %v", i, dst.L[i], want[i])
		}
	}
	if p := d.Position(); math.Abs(p-audio.PacketSize) > 1e-9 {
		t.Fatalf("position = %v, want %v", p, audio.PacketSize)
	}
}

func TestDeckTempoAdvancesFaster(t *testing.T) {
	d := New("x", audio.SampleRate)
	d.Load(testTrack())
	d.SetTempo(1.25)
	d.Play()
	dst := audio.NewStereo(audio.PacketSize)
	d.ReadPacket(dst)
	if p := d.Position(); math.Abs(p-1.25*audio.PacketSize) > 1e-6 {
		t.Fatalf("position = %v, want %v", p, 1.25*audio.PacketSize)
	}
}

func TestDeckTempoClamped(t *testing.T) {
	d := New("x", audio.SampleRate)
	d.SetTempo(10)
	if d.Tempo() != 1.5 {
		t.Fatalf("tempo = %v, want 1.5", d.Tempo())
	}
	d.SetTempo(0.01)
	if d.Tempo() != 0.5 {
		t.Fatalf("tempo = %v, want 0.5", d.Tempo())
	}
}

func TestDeckStopsAtEndOfTrack(t *testing.T) {
	d := New("x", audio.SampleRate)
	tr := testTrack()
	d.Load(tr)
	d.Seek(float64(tr.Len()) - 10)
	d.Play()
	dst := audio.NewStereo(audio.PacketSize)
	d.ReadPacket(dst)
	if d.Playing() {
		t.Fatal("deck still playing past end of track")
	}
	// Tail of the packet must be silence.
	for i := 20; i < audio.PacketSize; i++ {
		if dst.L[i] != 0 {
			t.Fatalf("sample %d past end = %v", i, dst.L[i])
		}
	}
}

func TestDeckLoopWraps(t *testing.T) {
	d := New("x", audio.SampleRate)
	tr := testTrack()
	d.Load(tr)
	d.SetLoop(100, 200)
	if !d.LoopActive() {
		t.Fatal("loop not armed")
	}
	d.Seek(150)
	d.Play()
	dst := audio.NewStereo(audio.PacketSize)
	d.ReadPacket(dst)
	// After 128 frames from 150 we would be at 278; the loop wraps us back
	// into [100, 200).
	if p := d.Position(); p < 100 || p >= 200 {
		t.Fatalf("position %v escaped loop [100,200)", p)
	}
	d.ClearLoop()
	if d.LoopActive() {
		t.Fatal("ClearLoop failed")
	}
}

func TestDeckLoopDegenerateDisables(t *testing.T) {
	d := New("x", audio.SampleRate)
	d.SetLoop(200, 100)
	if d.LoopActive() {
		t.Fatal("degenerate loop armed")
	}
}

func TestDeckCues(t *testing.T) {
	d := New("x", audio.SampleRate)
	d.Load(testTrack())
	d.Seek(500)
	if err := d.SetCue(3); err != nil {
		t.Fatal(err)
	}
	d.Seek(900)
	if err := d.JumpCue(3); err != nil {
		t.Fatal(err)
	}
	if d.Position() != 500 {
		t.Fatalf("position after JumpCue = %v, want 500", d.Position())
	}
	if err := d.SetCue(-1); err == nil {
		t.Fatal("SetCue(-1) accepted")
	}
	if err := d.JumpCue(MaxCues); err == nil {
		t.Fatal("JumpCue out of range accepted")
	}
}

func TestDeckSeekClamped(t *testing.T) {
	d := New("x", audio.SampleRate)
	tr := testTrack()
	d.Load(tr)
	d.Seek(-100)
	if d.Position() != 0 {
		t.Fatalf("Seek(-100) = %v", d.Position())
	}
	d.Seek(1e12)
	if d.Position() != float64(tr.Len()) {
		t.Fatalf("Seek(huge) = %v, want %v", d.Position(), tr.Len())
	}
	// Seeking an empty deck is a no-op.
	e := New("y", audio.SampleRate)
	e.Seek(100)
	if e.Position() != 0 {
		t.Fatal("seek on empty deck moved playhead")
	}
}

func TestDeckBeatPhase(t *testing.T) {
	d := New("x", audio.SampleRate)
	if d.BeatPhase() != 0 {
		t.Fatal("empty deck BeatPhase != 0")
	}
	tr := testTrack()
	d.Load(tr)
	d.Seek(float64(tr.FramesPerBar) / 2)
	if p := d.BeatPhase(); math.Abs(p-0.5) > 1e-9 {
		t.Fatalf("BeatPhase = %v, want 0.5", p)
	}
}

func TestDeckLoadRewinds(t *testing.T) {
	d := New("x", audio.SampleRate)
	d.Load(testTrack())
	d.Play()
	d.Seek(1000)
	d.Load(testTrack())
	if d.Position() != 0 || d.Playing() {
		t.Fatal("Load did not rewind/stop")
	}
}

func TestKeyLockPreservesPitch(t *testing.T) {
	// Build a pure-tone track so pitch is measurable.
	const rate = audio.SampleRate
	const freq = 440.0
	tone := synth.SineBuffer(freq, rate, rate)
	tr := &synth.Track{
		Name:         "tone",
		BPM:          120,
		Audio:        audio.Stereo{L: tone, R: append(audio.Buffer(nil), tone...)},
		FramesPerBar: rate,
		LoudBars:     []bool{true},
	}

	measure := func(keylock bool) float64 {
		d := New("x", rate)
		d.Load(tr)
		d.SetTempo(1.3)
		d.SetKeyLock(keylock)
		d.Play()
		var out []float64
		dst := audio.NewStereo(audio.PacketSize)
		for i := 0; i < 120; i++ {
			d.ReadPacket(dst)
			out = append(out, dst.L...)
		}
		// Count zero crossings over the middle stretch.
		mid := out[len(out)/4 : 3*len(out)/4]
		crossings := 0
		for i := 1; i < len(mid); i++ {
			if (mid[i-1] < 0 && mid[i] >= 0) || (mid[i-1] > 0 && mid[i] <= 0) {
				crossings++
			}
		}
		return float64(crossings) / 2 / (float64(len(mid)) / rate)
	}

	raw := measure(false)
	locked := measure(true)
	if math.Abs(raw-freq*1.3) > 20 {
		t.Fatalf("raw playback freq %v, want ~%v", raw, freq*1.3)
	}
	if math.Abs(locked-freq) > 25 {
		t.Fatalf("keylocked freq %v, want ~%v", locked, freq)
	}
}

func TestKeyLockUnityTempoBypasses(t *testing.T) {
	d := New("x", audio.SampleRate)
	tr := testTrack()
	d.Load(tr)
	d.SetKeyLock(true)
	d.Play()
	dst := audio.NewStereo(audio.PacketSize)
	d.ReadPacket(dst)
	for i := 0; i < audio.PacketSize; i++ {
		if math.Abs(dst.L[i]-tr.Audio.L[i]) > 1e-9 {
			t.Fatalf("keylock at unity tempo altered audio at %d", i)
		}
	}
}

func TestPitchShifterIdentityAtUnity(t *testing.T) {
	p := NewPitchShifter(audio.SampleRate)
	// The shifter has ~half-window latency; feed enough signal to flush it.
	in := synth.SineBuffer(440, 4096, audio.SampleRate)
	buf := make([]float64, len(in))
	copy(buf, in)
	p.Process(buf, 1)
	// Unity shift: output is a delayed/crossfaded copy; require bounded,
	// non-silent steady-state output.
	if audio.Buffer(buf[2048:]).Peak() == 0 {
		t.Fatal("unity shift silenced signal")
	}
	for i, s := range buf {
		if math.Abs(s) > 1.5 {
			t.Fatalf("sample %d = %v", i, s)
		}
	}
	p.Process(buf, 0) // invalid shift treated as unity, no panic
}

func TestReadPacketNoAlloc(t *testing.T) {
	d := New("x", audio.SampleRate)
	d.Load(testTrack())
	d.SetTempo(1.1)
	d.SetKeyLock(true)
	d.Play()
	dst := audio.NewStereo(audio.PacketSize)
	d.ReadPacket(dst)
	allocs := testing.AllocsPerRun(100, func() { d.ReadPacket(dst) })
	if allocs != 0 {
		t.Fatalf("ReadPacket allocates %v per packet", allocs)
	}
}
