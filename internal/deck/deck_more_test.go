package deck

import (
	"testing"

	"djstar/internal/audio"
)

func TestDeckPauseAndGetters(t *testing.T) {
	d := New("x", audio.SampleRate)
	tr := testTrack()
	d.Load(tr)
	if d.Track() != tr {
		t.Fatal("Track getter wrong")
	}
	d.Play()
	if !d.Playing() {
		t.Fatal("not playing")
	}
	d.Pause()
	if d.Playing() {
		t.Fatal("Pause did not stop playback")
	}
	// Position survives pause.
	d.Seek(123)
	d.Pause()
	if d.Position() != 123 {
		t.Fatalf("position after pause = %v", d.Position())
	}
	d.SetKeyLock(true)
	if !d.KeyLock() {
		t.Fatal("KeyLock getter wrong")
	}
	d.SetKeyLock(false)
	if d.KeyLock() {
		t.Fatal("KeyLock not cleared")
	}
}
