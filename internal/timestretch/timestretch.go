// Package timestretch implements tempo manipulation without pitch change.
//
// In DJ Star the "audio stream preprocessing (time stretching, phase
// alignment, buffer overhead)" accounts for 33 % of APC run time (paper
// §III-B); the authors deliberately leave it sequential because good
// parallel versions of the underlying algorithms exist. We implement the
// two standard algorithms — a phase vocoder (FFT-based, high quality) and
// WSOLA (time-domain, cheap) — so the engine's preprocessing stage performs
// the same class of work at the same structural position in the cycle.
package timestretch

import (
	"fmt"
	"math"

	"djstar/internal/dsp"
)

// Stretcher is implemented by both algorithms. A Stretcher is a pull-style
// stream processor: Process consumes from its input via the read callback
// and fills out with exactly len(out) stretched samples.
type Stretcher interface {
	// Name identifies the algorithm ("pvoc" or "wsola").
	Name() string
	// Ratio returns the current stretch ratio (output/input duration;
	// 2.0 plays at half speed, 0.5 at double speed).
	Ratio() float64
	// SetRatio changes the stretch ratio; values are clamped to
	// [MinRatio, MaxRatio].
	SetRatio(r float64)
	// Reset clears internal history.
	Reset()
}

// Ratio limits. DJ pitch faders are typically ±8..±50 %; we allow a broad
// 4x range either way.
const (
	MinRatio = 0.25
	MaxRatio = 4.0
)

func clampRatio(r float64) float64 {
	if r < MinRatio {
		return MinRatio
	}
	if r > MaxRatio {
		return MaxRatio
	}
	return r
}

// PhaseVocoder is an STFT-based time stretcher with phase propagation.
// Frame size and hops are fixed at construction; the analysis hop is
// derived from the synthesis hop and the ratio.
type PhaseVocoder struct {
	ratio   float64
	frame   int
	synHop  int
	fft     *dsp.FFT
	window  []float64
	winGain float64 // overlap-add normalization
}

// NewPhaseVocoder returns a vocoder with the given FFT frame size (power of
// two, e.g. 1024) and stretch ratio.
func NewPhaseVocoder(frame int, ratio float64) (*PhaseVocoder, error) {
	if frame < 64 || frame&(frame-1) != 0 {
		return nil, fmt.Errorf("timestretch: frame %d must be a power of two >= 64", frame)
	}
	fft, err := dsp.NewFFT(frame)
	if err != nil {
		return nil, err
	}
	pv := &PhaseVocoder{
		ratio:  clampRatio(ratio),
		frame:  frame,
		synHop: frame / 4,
		fft:    fft,
		window: make([]float64, frame),
	}
	dsp.MakeWindow(dsp.Hann, pv.window)
	// Squared-window overlap-add normalization: for a Hann window at 75 %
	// overlap this evaluates to 1.5.
	sum := 0.0
	for _, w := range pv.window {
		sum += w * w
	}
	pv.winGain = sum / float64(pv.synHop)
	return pv, nil
}

// Name implements Stretcher.
func (pv *PhaseVocoder) Name() string { return "pvoc" }

// Ratio implements Stretcher.
func (pv *PhaseVocoder) Ratio() float64 { return pv.ratio }

// SetRatio implements Stretcher.
func (pv *PhaseVocoder) SetRatio(r float64) { pv.ratio = clampRatio(r) }

// Reset implements Stretcher. The offline Stretch entry point keeps its
// phase state in locals, so Reset has nothing to clear; it exists to
// satisfy the Stretcher contract symmetrically with WSOLA.
func (pv *PhaseVocoder) Reset() {}

// Stretch processes the whole src clip and returns the stretched result of
// approximately len(src)*ratio samples. This is the offline entry point
// used by track preparation; the engine's per-packet preprocessing uses
// WSOLA (cheaper) via StretchInto.
func (pv *PhaseVocoder) Stretch(src []float64) []float64 {
	frame := pv.frame
	anaHop := float64(pv.synHop) / pv.ratio
	outLen := int(float64(len(src)) * pv.ratio)
	out := make([]float64, outLen+2*frame)

	winRe := make([]float64, frame)
	winIm := make([]float64, frame)
	prevPha := make([]float64, frame/2+1)
	synPha := make([]float64, frame/2+1)
	first := true

	outPos := 0
	for pos := 0.0; int(pos)+frame <= len(src); pos += anaHop {
		start := int(pos)
		for i := 0; i < frame; i++ {
			winRe[i] = src[start+i] * pv.window[i]
			winIm[i] = 0
		}
		pv.fft.Transform(winRe, winIm)

		// Phase propagation over the positive-frequency bins.
		for k := 0; k <= frame/2; k++ {
			mag := math.Hypot(winRe[k], winIm[k])
			pha := math.Atan2(winIm[k], winRe[k])
			if first {
				synPha[k] = pha
			} else {
				omega := 2 * math.Pi * float64(k) / float64(frame)
				expected := omega * anaHop
				delta := pha - prevPha[k] - expected
				// Wrap to [-pi, pi].
				delta -= 2 * math.Pi * math.Round(delta/(2*math.Pi))
				trueFreq := omega + delta/anaHop
				synPha[k] += trueFreq * float64(pv.synHop)
			}
			prevPha[k] = pha
			winRe[k] = mag * math.Cos(synPha[k])
			winIm[k] = mag * math.Sin(synPha[k])
			// Hermitian symmetry for the negative bins.
			if k > 0 && k < frame/2 {
				winRe[frame-k] = winRe[k]
				winIm[frame-k] = -winIm[k]
			}
		}
		first = false

		pv.fft.Inverse(winRe, winIm)
		for i := 0; i < frame && outPos+i < len(out); i++ {
			out[outPos+i] += winRe[i] * pv.window[i] / pv.winGain
		}
		outPos += pv.synHop
	}
	if outLen > len(out) {
		outLen = len(out)
	}
	return out[:outLen]
}

// WSOLA implements waveform-similarity overlap-add time stretching: cheap,
// time-domain, well suited to per-packet streaming, which is how the
// engine's preprocessing stage uses it.
type WSOLA struct {
	ratio    float64
	frame    int // segment length
	hop      int // synthesis hop
	seek     int // similarity search half-window
	window   []float64
	prevEnd  []float64 // tail of the previous synthesis segment for matching
	havePrev bool
}

// NewWSOLA returns a WSOLA stretcher with the given segment length (e.g.
// 512 samples) and ratio.
func NewWSOLA(frame int, ratio float64) (*WSOLA, error) {
	if frame < 32 {
		return nil, fmt.Errorf("timestretch: WSOLA frame %d too small", frame)
	}
	w := &WSOLA{
		ratio:   clampRatio(ratio),
		frame:   frame,
		hop:     frame / 2,
		seek:    frame / 4,
		window:  make([]float64, frame),
		prevEnd: make([]float64, frame/2),
	}
	dsp.MakeWindow(dsp.Hann, w.window)
	return w, nil
}

// Name implements Stretcher.
func (w *WSOLA) Name() string { return "wsola" }

// Ratio implements Stretcher.
func (w *WSOLA) Ratio() float64 { return w.ratio }

// SetRatio implements Stretcher.
func (w *WSOLA) SetRatio(r float64) { w.ratio = clampRatio(r) }

// Reset implements Stretcher.
func (w *WSOLA) Reset() {
	for i := range w.prevEnd {
		w.prevEnd[i] = 0
	}
	w.havePrev = false
}

// Stretch processes the whole src clip and returns the stretched result.
func (w *WSOLA) Stretch(src []float64) []float64 {
	outLen := int(float64(len(src)) * w.ratio)
	out := make([]float64, outLen+w.frame)
	norm := make([]float64, len(out))
	anaHop := float64(w.hop) / w.ratio

	outPos := 0
	for pos := 0.0; outPos < outLen; pos += anaHop {
		nominal := int(pos)
		start := w.bestOffset(src, nominal)
		if start+w.frame > len(src) {
			break
		}
		for i := 0; i < w.frame && outPos+i < len(out); i++ {
			out[outPos+i] += src[start+i] * w.window[i]
			norm[outPos+i] += w.window[i]
		}
		// Remember the continuation tail for the next match.
		copy(w.prevEnd, src[start+w.hop:start+w.hop+len(w.prevEnd)])
		w.havePrev = true
		outPos += w.hop
	}
	for i := range out {
		if norm[i] > 1e-9 {
			out[i] /= norm[i]
		}
	}
	if outLen > len(out) {
		outLen = len(out)
	}
	w.havePrev = false
	return out[:outLen]
}

// bestOffset searches ±seek around nominal for the segment whose start best
// matches the expected continuation of the previous output segment
// (normalized cross-correlation).
func (w *WSOLA) bestOffset(src []float64, nominal int) int {
	if !w.havePrev {
		return clampIndex(nominal, 0, len(src)-w.frame)
	}
	lo := nominal - w.seek
	hi := nominal + w.seek
	lo = clampIndex(lo, 0, len(src)-w.frame)
	hi = clampIndex(hi, 0, len(src)-w.frame)
	best := lo
	bestScore := math.Inf(-1)
	n := len(w.prevEnd)
	for cand := lo; cand <= hi; cand++ {
		if cand+n > len(src) {
			break
		}
		score := 0.0
		for i := 0; i < n; i++ {
			score += w.prevEnd[i] * src[cand+i]
		}
		if score > bestScore {
			bestScore = score
			best = cand
		}
	}
	return best
}

func clampIndex(x, lo, hi int) int {
	if hi < lo {
		hi = lo
	}
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
