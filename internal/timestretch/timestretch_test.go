package timestretch

import (
	"math"
	"testing"

	"djstar/internal/audio"
	"djstar/internal/synth"
)

// dominantFreq estimates the dominant frequency of buf by counting zero
// crossings.
func dominantFreq(buf []float64, rate int) float64 {
	crossings := 0
	for i := 1; i < len(buf); i++ {
		if (buf[i-1] < 0 && buf[i] >= 0) || (buf[i-1] > 0 && buf[i] <= 0) {
			crossings++
		}
	}
	return float64(crossings) / 2 / (float64(len(buf)) / float64(rate))
}

func TestNewPhaseVocoderValidation(t *testing.T) {
	if _, err := NewPhaseVocoder(1000, 1); err == nil {
		t.Fatal("non-power-of-two frame accepted")
	}
	if _, err := NewPhaseVocoder(32, 1); err == nil {
		t.Fatal("too-small frame accepted")
	}
	if _, err := NewPhaseVocoder(1024, 1.5); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
}

func TestRatioClamping(t *testing.T) {
	pv, _ := NewPhaseVocoder(256, 100)
	if pv.Ratio() != MaxRatio {
		t.Fatalf("ratio = %v, want clamped to %v", pv.Ratio(), MaxRatio)
	}
	pv.SetRatio(0.001)
	if pv.Ratio() != MinRatio {
		t.Fatalf("ratio = %v, want clamped to %v", pv.Ratio(), MinRatio)
	}
	w, _ := NewWSOLA(512, 0)
	if w.Ratio() != MinRatio {
		t.Fatalf("WSOLA ratio = %v, want %v", w.Ratio(), MinRatio)
	}
}

func TestStretcherNames(t *testing.T) {
	pv, _ := NewPhaseVocoder(256, 1)
	w, _ := NewWSOLA(256, 1)
	if pv.Name() != "pvoc" || w.Name() != "wsola" {
		t.Fatalf("names: %q %q", pv.Name(), w.Name())
	}
	var _ Stretcher = pv
	var _ Stretcher = w
}

func TestPhaseVocoderLength(t *testing.T) {
	const rate = audio.SampleRate
	src := synth.SineBuffer(440, rate, rate) // 1 s
	for _, ratio := range []float64{0.5, 1.0, 2.0} {
		pv, _ := NewPhaseVocoder(1024, ratio)
		out := pv.Stretch(src)
		want := int(float64(len(src)) * ratio)
		if math.Abs(float64(len(out)-want)) > float64(want)/20+2048 {
			t.Fatalf("ratio %v: out length %d, want ~%d", ratio, len(out), want)
		}
	}
}

func TestPhaseVocoderPreservesPitch(t *testing.T) {
	const rate = audio.SampleRate
	src := synth.SineBuffer(440, rate, rate)
	for _, ratio := range []float64{0.75, 1.5, 2.0} {
		pv, _ := NewPhaseVocoder(1024, ratio)
		out := pv.Stretch(src)
		// Skip the edges where overlap-add is partial.
		mid := out[len(out)/4 : 3*len(out)/4]
		f := dominantFreq(mid, rate)
		if math.Abs(f-440) > 15 {
			t.Fatalf("ratio %v: dominant freq %v Hz, want ~440", ratio, f)
		}
	}
}

func TestPhaseVocoderUnityRoughlyTransparent(t *testing.T) {
	const rate = audio.SampleRate
	src := synth.SineBuffer(440, rate/2, rate)
	pv, _ := NewPhaseVocoder(1024, 1)
	out := pv.Stretch(src)
	// Compare RMS over the stable middle region.
	srcMid := audio.Buffer(src[len(src)/4 : 3*len(src)/4]).RMS()
	outMid := audio.Buffer(out[len(out)/4 : 3*len(out)/4]).RMS()
	if math.Abs(outMid-srcMid)/srcMid > 0.15 {
		t.Fatalf("unity stretch RMS changed: %v -> %v", srcMid, outMid)
	}
}

func TestWSOLALength(t *testing.T) {
	const rate = audio.SampleRate
	src := synth.SineBuffer(220, rate, rate)
	for _, ratio := range []float64{0.5, 1.0, 1.8} {
		w, _ := NewWSOLA(512, ratio)
		out := w.Stretch(src)
		want := int(float64(len(src)) * ratio)
		if math.Abs(float64(len(out)-want)) > float64(want)/10+1024 {
			t.Fatalf("ratio %v: out length %d, want ~%d", ratio, len(out), want)
		}
	}
}

func TestWSOLAPreservesPitch(t *testing.T) {
	const rate = audio.SampleRate
	src := synth.SineBuffer(330, rate, rate)
	for _, ratio := range []float64{0.7, 1.4} {
		w, _ := NewWSOLA(512, ratio)
		out := w.Stretch(src)
		mid := out[len(out)/4 : 3*len(out)/4]
		f := dominantFreq(mid, rate)
		if math.Abs(f-330) > 20 {
			t.Fatalf("ratio %v: dominant freq %v, want ~330", ratio, f)
		}
	}
}

func TestWSOLAOutputBounded(t *testing.T) {
	src := synth.WhiteNoise(44100, 0.9, 5)
	w, _ := NewWSOLA(512, 1.3)
	out := w.Stretch(src)
	for i, s := range out {
		if math.IsNaN(s) || math.Abs(s) > 2 {
			t.Fatalf("sample %d = %v", i, s)
		}
	}
}

func TestWSOLAValidation(t *testing.T) {
	if _, err := NewWSOLA(8, 1); err == nil {
		t.Fatal("tiny frame accepted")
	}
}

func TestWSOLAResetAndReuse(t *testing.T) {
	src := synth.SineBuffer(440, 22050, 44100)
	w, _ := NewWSOLA(512, 1.2)
	a := w.Stretch(src)
	w.Reset()
	b := w.Stretch(src)
	if len(a) != len(b) {
		t.Fatalf("reuse changed output length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reuse not deterministic at %d", i)
		}
	}
}

func TestStretchEmptyAndShortInputs(t *testing.T) {
	pv, _ := NewPhaseVocoder(256, 1.5)
	if out := pv.Stretch(nil); len(out) != 0 {
		t.Fatalf("empty input gave %d samples", len(out))
	}
	if out := pv.Stretch(make([]float64, 100)); len(out) > 150 {
		t.Fatalf("short input gave %d samples", len(out))
	}
	w, _ := NewWSOLA(512, 1.5)
	if out := w.Stretch(make([]float64, 10)); len(out) > 15 {
		t.Fatalf("short WSOLA input gave %d samples", len(out))
	}
}

func TestWSOLASetRatioAndPvocReset(t *testing.T) {
	w, _ := NewWSOLA(256, 1)
	w.SetRatio(2)
	if w.Ratio() != 2 {
		t.Fatalf("SetRatio gave %v", w.Ratio())
	}
	pv, _ := NewPhaseVocoder(256, 1)
	pv.Reset() // no state; must be a safe no-op
}
