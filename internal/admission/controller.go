// Shared-pool aggregate admission: when several sessions multiplex one
// worker pool, each session's bound must account for the others'
// work competing for the same m workers.
package admission

import (
	"fmt"
	"sort"
	"sync"
)

// Controller tracks the sessions attached to one shared worker pool and
// admits a new one only when every session's aggregate response-time
// bound — its own critical path plus its share of everyone's remaining
// work — still fits the envelope.
//
// For session j on a pool of m workers shared with sessions k≠j, the
// work-conserving bound generalizes Graham's argument: along j's
// critical path, any instant where j is not progressing has all m
// workers busy on surplus work, of which there is at most
// (W_j − CP_j) + Σ_{k≠j} W_k. Hence
//
//	R_j ≤ margin × (Base_j + CP_j + (W_j − CP_j + Σ_{k≠j} W_k)/m)
//
// and admission requires R_j ≤ period for ALL sessions including the
// candidate — an existing session can be the one pushed over budget by
// a newcomer, and that too is a refusal.
type Controller struct {
	mu       sync.Mutex
	cfg      Config
	workers  int
	sessions map[string]*sessionLoad
}

type sessionLoad struct {
	workUS float64
	cpUS   float64
	baseUS float64
}

// SessionBound is one session's aggregate analysis inside the pool.
type SessionBound struct {
	ID      string  `json:"id"`
	BoundUS float64 `json:"bound_us"`
	Fits    bool    `json:"fits"`
}

// NewController builds a controller for a pool exposing `workers`
// effective workers (sched.Pool.Workers()+1: attached clients lend
// their Execute goroutine).
func NewController(workers int, cfg Config) *Controller {
	if workers < 1 {
		workers = 1
	}
	return &Controller{
		cfg:      cfg.withDefaults(),
		workers:  workers,
		sessions: make(map[string]*sessionLoad),
	}
}

// Workers returns the effective parallelism the controller assumes.
func (c *Controller) Workers() int { return c.workers }

// TryAdmit checks whether adding a session with the given per-session
// report keeps every attached session (and the candidate) within the
// envelope, and registers it if so. The returned error wraps
// ErrOverBudget on refusal and names the first session pushed over.
func (c *Controller) TryAdmit(id string, rep *Report) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.sessions[id]; ok {
		return fmt.Errorf("admission: session %q already admitted", id)
	}
	cand := &sessionLoad{workUS: rep.TotalWorkUS, cpUS: rep.CritPathUS, baseUS: rep.BaseUS}
	bounds := c.boundsLocked(id, cand)
	for _, b := range bounds {
		if !b.Fits {
			return fmt.Errorf("admission: pool of %d workers cannot fit session %q (session %q bound %.0f µs > envelope %.0f µs with %d sessions): %w",
				c.workers, id, b.ID, b.BoundUS, c.cfg.PeriodUS, len(bounds), ErrOverBudget)
		}
	}
	c.sessions[id] = cand
	return nil
}

// Update replaces a session's registered load (after an adopted edit or
// a cost-model refresh) without re-gating it; the predictive monitor is
// responsible for flagging an over-budget aggregate.
func (c *Controller) Update(id string, rep *Report) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.sessions[id]; ok {
		c.sessions[id] = &sessionLoad{workUS: rep.TotalWorkUS, cpUS: rep.CritPathUS, baseUS: rep.BaseUS}
	}
}

// Release removes a session (engine Close, failed construction).
func (c *Controller) Release(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.sessions, id)
}

// Probe computes the aggregate bounds with a hypothetical candidate
// mixed in — the fleet's placement query. It returns the minimum
// envelope headroom across every session including the candidate
// (negative when something would leave the envelope) and whether all of
// them still fit. Nothing is registered.
func (c *Controller) Probe(rep *Report) (minHeadroomUS float64, fits bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cand := &sessionLoad{workUS: rep.TotalWorkUS, cpUS: rep.CritPathUS, baseUS: rep.BaseUS}
	minHeadroomUS = c.cfg.PeriodUS
	fits = true
	for _, b := range c.boundsLocked("\x00probe", cand) {
		if h := c.cfg.PeriodUS - b.BoundUS; h < minHeadroomUS {
			minHeadroomUS = h
		}
		if !b.Fits {
			fits = false
		}
	}
	return minHeadroomUS, fits
}

// Headroom returns the minimum envelope headroom across the registered
// sessions (the full envelope when none are registered).
func (c *Controller) Headroom() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.cfg.PeriodUS
	for _, b := range c.boundsLocked("", nil) {
		if v := c.cfg.PeriodUS - b.BoundUS; v < h {
			h = v
		}
	}
	return h
}

// Len returns the number of registered sessions.
func (c *Controller) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sessions)
}

// Envelope returns the controller's deadline envelope in µs.
func (c *Controller) Envelope() float64 { return c.cfg.PeriodUS }

// Sessions returns the aggregate bound of every registered session,
// sorted by ID.
func (c *Controller) Sessions() []SessionBound {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.boundsLocked("", nil)
}

// boundsLocked computes every session's aggregate bound with an
// optional extra candidate mixed in. Caller holds c.mu.
func (c *Controller) boundsLocked(candID string, cand *sessionLoad) []SessionBound {
	total := 0.0
	for _, s := range c.sessions {
		total += s.workUS
	}
	if cand != nil {
		total += cand.workUS
	}
	m := float64(c.workers)
	bound := func(id string, s *sessionLoad) SessionBound {
		surplus := total - s.cpUS // W_j − CP_j plus all other sessions' work
		if surplus < 0 {
			surplus = 0
		}
		b := c.cfg.Margin * (s.baseUS + s.cpUS + surplus/m)
		return SessionBound{ID: id, BoundUS: b, Fits: b <= c.cfg.PeriodUS}
	}
	out := make([]SessionBound, 0, len(c.sessions)+1)
	for id, s := range c.sessions {
		out = append(out, bound(id, s))
	}
	if cand != nil {
		out = append(out, bound(candID, cand))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
