// Package admission computes analytical schedulability bounds for
// compiled task-graph plans and turns them into admission decisions —
// the front door the engine consults before a session, a live edit or a
// cost drift is allowed to consume the 2.902 ms packet period.
//
// The paper's ~5-per-10,000 deadline-miss guarantee is otherwise only
// *observed* (by the telemetry SLO window) after misses have already
// happened. This package makes the compile-time cost and rank machinery
// load-bearing instead: from per-node cost estimates (live measured
// means when available, the static design table otherwise) it derives a
// response-time upper bound per strategy and refuses or degrades work
// whose bound does not fit the deadline envelope — response-time
// analysis in the spirit of Lupu & Goossens for multi-thread periodic
// tasks, specialized to the DJ Star graph.
//
// Bound derivation (DESIGN.md §15). Let W be the total work, CP the
// critical path and m the parallelism. For the work-conserving
// executors (work-stealing, the shared pool) Graham's greedy-scheduling
// theorem gives makespan ≤ CP + (W − CP)/m; per-node dispatch overhead
// adds n·check/m. The static round-robin executors (busy, sleep,
// sleepscan, static) are NOT work-conserving — their fixed assignment
// can stall arbitrarily past Graham's bound — so their bound is the
// deterministic rescon strategy simulation of the exact assignment
// discipline, which includes the per-node check cost and (for the
// sleepers) the wake-up penalty. The sequential baseline is W + n·check
// exactly. Every bound is then inflated by a safety margin covering
// mean-vs-tail spread and timing noise, and compared against the
// envelope: margin × (base + graphBound) ≤ period, where base is the
// non-graph APC work (TP + GP + VC). The bound is falsifiable: the
// property suite asserts measured makespans never exceed it, and
// djanalyze -admit prints it beside measured p99 per strategy.
package admission

import (
	"errors"
	"fmt"

	"djstar/internal/graph"
	"djstar/internal/rescon"
)

// ErrOverBudget is the sentinel wrapped by every refusal: the analytical
// response-time bound exceeds the deadline envelope even after the
// degradation ladder. Callers distinguish refuse-vs-retry with
// errors.Is.
var ErrOverBudget = errors.New("admission: analytical bound exceeds the deadline envelope")

// DefaultPeriodUS is the APC deadline envelope in microseconds: one
// 2.902 ms packet period.
const DefaultPeriodUS = 2902.3

// DefaultMargin is the safety factor applied to the mean-cost bound.
// The bound models mean node costs; the 5-per-10k miss budget tolerates
// only the tail, so the margin must cover the mean→p99 spread of the
// measured distributions (≈1.1–1.2× for the spin-calibrated kernels)
// plus scheduler noise.
const DefaultMargin = 1.25

// Config parameterizes the analysis. The zero value takes the paper's
// deadline and the default margin/overheads.
type Config struct {
	// PeriodUS is the deadline envelope in µs (default the 2.902 ms
	// packet period).
	PeriodUS float64
	// Margin is the safety factor on the mean-cost bound (default 1.25).
	Margin float64
	// Overheads are the per-node dispatch and wake costs fed to the
	// strategy simulations (zero fields default to 0.5 µs check / 10 µs
	// wake, the values EXPERIMENTS.md A2 calibrated for Fig. 12).
	Overheads rescon.StrategyOverheads
	// BaseUS is the non-graph APC work (TP + GP + VC) in µs at the
	// running scale; the engine fills it from its component targets.
	// Negative means explicitly zero (analysis of the graph alone).
	BaseUS float64
}

func (c Config) withDefaults() Config {
	if c.PeriodUS <= 0 {
		c.PeriodUS = DefaultPeriodUS
	}
	if c.Margin <= 0 {
		c.Margin = DefaultMargin
	}
	if c.Overheads.CheckUS <= 0 {
		c.Overheads.CheckUS = 0.5
	}
	if c.Overheads.WakeUS <= 0 {
		c.Overheads.WakeUS = 10
	}
	if c.BaseUS < 0 {
		c.BaseUS = 0
	}
	return c
}

// Report is one plan's schedulability analysis under one (strategy,
// threads) configuration. All times are microseconds.
type Report struct {
	Strategy string `json:"strategy"`
	Threads  int    `json:"threads"`
	Nodes    int    `json:"nodes"`
	// Source records where the node costs came from: "measured" (live
	// collector means) or "static" (the design-cost table).
	Source string `json:"source"`

	// TotalWorkUS is the sequential sum of node costs; CritPathUS the
	// earliest-start makespan (the absolute lower bound at any
	// parallelism); ListUS the HEFT upward-rank list schedule's makespan
	// (the near-optimal reference, not a bound).
	TotalWorkUS float64 `json:"total_work_us"`
	CritPathUS  float64 `json:"crit_path_us"`
	ListUS      float64 `json:"list_us"`

	// GrahamUS is CP + (W − CP)/m + n·check/m, the work-conserving upper
	// bound; SimUS the strategy simulation's makespan (0 when the
	// strategy has no static simulation); GraphBoundUS the bound actually
	// used: max of the applicable components.
	GrahamUS     float64 `json:"graham_us"`
	SimUS        float64 `json:"sim_us,omitempty"`
	GraphBoundUS float64 `json:"graph_bound_us"`

	// BaseUS is the non-graph APC work; BoundUS the final response-time
	// bound margin × (BaseUS + GraphBoundUS); EnvelopeUS the deadline it
	// is held against; HeadroomUS = EnvelopeUS − BoundUS (negative when
	// over budget); UtilRatio = BoundUS / EnvelopeUS.
	BaseUS     float64 `json:"base_us"`
	BoundUS    float64 `json:"bound_us"`
	EnvelopeUS float64 `json:"envelope_us"`
	HeadroomUS float64 `json:"headroom_us"`
	UtilRatio  float64 `json:"util_ratio"`
}

// Fits reports whether the bound is inside the envelope.
func (r *Report) Fits() bool { return r.BoundUS <= r.EnvelopeUS }

// String renders the report one-line, for logs and flight events.
func (r *Report) String() string {
	return fmt.Sprintf("%s/%d: bound %.0f µs vs envelope %.0f µs (graph %.0f, cp %.0f, work %.0f, %s costs, util %.2f)",
		r.Strategy, r.Threads, r.BoundUS, r.EnvelopeUS,
		r.GraphBoundUS, r.CritPathUS, r.TotalWorkUS, r.Source, r.UtilRatio)
}

// Analyze computes the schedulability report for a compiled plan under
// per-node costs (µs, execution scale), a strategy name and an
// effective parallelism. source labels the cost provenance ("measured"
// or "static").
func Analyze(plan *graph.Plan, costsUS []float64, strategy string, threads int, source string, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if threads < 1 {
		threads = 1
	}
	m, err := rescon.FromPlan(plan, costsUS)
	if err != nil {
		return nil, err
	}
	r := &Report{
		Strategy:   strategy,
		Threads:    threads,
		Nodes:      plan.Len(),
		Source:     source,
		EnvelopeUS: cfg.PeriodUS,
		BaseUS:     cfg.BaseUS,
	}
	r.TotalWorkUS = m.TotalWork()
	r.CritPathUS = m.EarliestStart().MakespanUS
	if ls, err := m.ListSchedule(threads); err == nil {
		r.ListUS = ls.MakespanUS
	}
	n := float64(plan.Len())
	r.GrahamUS = rescon.GrahamBound(r.TotalWorkUS, r.CritPathUS, threads) +
		n*cfg.Overheads.CheckUS/float64(threads)

	switch strategy {
	case "seq":
		r.GraphBoundUS = r.TotalWorkUS + n*cfg.Overheads.CheckUS
	case "sleep", "sleepscan":
		sim, err := m.SimulateSleep(threads, cfg.Overheads)
		if err != nil {
			return nil, err
		}
		r.SimUS = sim.MakespanUS
		r.GraphBoundUS = maxf(r.GrahamUS, r.SimUS)
	case "busy", "static":
		sim, err := m.SimulateBusy(threads, cfg.Overheads)
		if err != nil {
			return nil, err
		}
		r.SimUS = sim.MakespanUS
		r.GraphBoundUS = maxf(r.GrahamUS, r.SimUS)
	default: // work-conserving: ws, pool
		r.GraphBoundUS = r.GrahamUS
	}
	r.BoundUS = cfg.Margin * (cfg.BaseUS + r.GraphBoundUS)
	r.HeadroomUS = r.EnvelopeUS - r.BoundUS
	if r.EnvelopeUS > 0 {
		r.UtilRatio = r.BoundUS / r.EnvelopeUS
	}
	return r, nil
}

// ShedCosts returns a copy of costsUS with the shed node kinds zeroed —
// the cost model of the governor ladder's degraded modes (rung 1 sheds
// meters and control, rung 2 additionally bypasses FX). Shed nodes
// still dispatch (the bypass stand-in runs), so the per-node check
// overhead in the analysis is unchanged; only the kernel cost vanishes.
func ShedCosts(plan *graph.Plan, costsUS []float64, shedUI, shedFX bool) []float64 {
	out := append([]float64(nil), costsUS...)
	for i, k := range plan.Kinds {
		if i >= len(out) {
			break
		}
		switch k {
		case graph.KindMeter, graph.KindControl:
			if shedUI {
				out[i] = 0
			}
		case graph.KindFX:
			if shedFX {
				out[i] = 0
			}
		}
	}
	return out
}

// Verdict is the outcome of the admission ladder.
type Verdict int

const (
	// VerdictAdmit: the full graph's bound fits the envelope.
	VerdictAdmit Verdict = iota
	// VerdictDegraded: the full graph does not fit, but a pre-shed
	// configuration (meters/control, then FX) does — admit at that rung.
	VerdictDegraded
	// VerdictRefuse: no rung fits; the session must be refused.
	VerdictRefuse
)

// String returns the verdict label.
func (v Verdict) String() string {
	switch v {
	case VerdictAdmit:
		return "admit"
	case VerdictDegraded:
		return "degraded"
	case VerdictRefuse:
		return "refuse"
	default:
		return "unknown"
	}
}

// Decision is one walk down the admission ladder.
type Decision struct {
	Verdict Verdict `json:"verdict"`
	// Full is the full-graph analysis; Admitted the analysis of the
	// configuration actually admitted (== Full on VerdictAdmit, the
	// fitting shed rung on VerdictDegraded, the deepest rung tried on
	// VerdictRefuse).
	Full     *Report `json:"full"`
	Admitted *Report `json:"admitted"`
	// ShedUI / ShedFX describe the pre-shed rung of a degraded admission.
	ShedUI bool `json:"shed_ui,omitempty"`
	ShedFX bool `json:"shed_fx,omitempty"`
	// Reason is a human-readable summary of the decision.
	Reason string `json:"reason"`
}

// PreShed names the degradation rung ("" when nothing is shed).
func (d *Decision) PreShed() string {
	switch {
	case d.ShedFX:
		return "meters+control+fx"
	case d.ShedUI:
		return "meters+control"
	}
	return ""
}

// Decide walks the admission ladder for one plan: full graph, then the
// governor's degradation rungs (shed meters+control, then also FX). The
// error is non-nil only for malformed inputs, never for an over-budget
// plan — that is VerdictRefuse.
func Decide(plan *graph.Plan, costsUS []float64, strategy string, threads int, source string, cfg Config) (*Decision, error) {
	full, err := Analyze(plan, costsUS, strategy, threads, source, cfg)
	if err != nil {
		return nil, err
	}
	d := &Decision{Full: full, Admitted: full}
	if full.Fits() {
		d.Verdict = VerdictAdmit
		d.Reason = fmt.Sprintf("bound %.0f µs within envelope %.0f µs", full.BoundUS, full.EnvelopeUS)
		return d, nil
	}
	rungs := []struct {
		ui, fx bool
		label  string
	}{
		{true, false, "shed meters+control"},
		{true, true, "shed meters+control+fx"},
	}
	for _, rung := range rungs {
		rep, err := Analyze(plan, ShedCosts(plan, costsUS, rung.ui, rung.fx), strategy, threads, source, cfg)
		if err != nil {
			return nil, err
		}
		d.Admitted = rep
		if rep.Fits() {
			d.Verdict = VerdictDegraded
			d.ShedUI, d.ShedFX = rung.ui, rung.fx
			d.Reason = fmt.Sprintf("full bound %.0f µs over envelope %.0f µs; fits at %.0f µs after %s",
				full.BoundUS, full.EnvelopeUS, rep.BoundUS, rung.label)
			return d, nil
		}
	}
	d.Verdict = VerdictRefuse
	d.ShedUI, d.ShedFX = true, true
	d.Reason = fmt.Sprintf("bound %.0f µs (%.0f µs fully shed) exceeds envelope %.0f µs",
		full.BoundUS, d.Admitted.BoundUS, full.EnvelopeUS)
	return d, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
