package admission

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"djstar/internal/graph"
	"djstar/internal/obs"
	"djstar/internal/rescon"
	"djstar/internal/sched"
)

// The falsifiability contract of the analytical bound: on seeded random
// DAGs executed for real by every parallel strategy, the measured mean
// makespan must never exceed the bound computed from the measured node
// costs. The overhead parameters are deliberately generous (the suite
// runs under -race, which inflates every dispatch), but the formula is
// exactly the production one — a modelling error in Graham's argument
// or the strategy simulations fails this suite, not just a dashboard.
//
// Note: this builds its own random DAGs with graph.Spin bodies instead
// of graph.RandomDAG — RandomDAG's nodes record an ExecTrace that
// panics on re-execution, so it cannot be cycled repeatedly.

var calOnce sync.Once
var calVal graph.Calibration

func calib() graph.Calibration {
	calOnce.Do(func() { calVal = graph.Calibrate() })
	return calVal
}

// randomSpinDAG builds a seeded random DAG of n nodes whose bodies spin
// for the returned per-node costs (µs). Edges go low ID → high ID, so
// the graph is acyclic by construction.
func randomSpinDAG(t *testing.T, rng *rand.Rand, n int) (*graph.Graph, []float64) {
	t.Helper()
	cal := calib()
	g := graph.New()
	costs := make([]float64, n)
	for i := 0; i < n; i++ {
		us := 10 + rng.Float64()*20 // 10–30 µs: work dominates dispatch
		costs[i] = us
		units := cal.UnitsForMicros(us)
		g.AddNode(fmt.Sprintf("R%d", i), graph.SectionMaster, func() { graph.Spin(units) })
	}
	for i := 1; i < n; i++ {
		// Each node gets 1–3 predecessors among earlier nodes, giving a
		// connected mix of chains and fan-outs.
		for _, p := range rng.Perm(i)[:min(1+rng.Intn(3), i)] {
			if err := g.AddEdge(p, i); err != nil {
				t.Fatal(err)
			}
		}
	}
	return g, costs
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestBoundNeverExceededByMeasuredMakespan(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time property suite")
	}
	strategies := []string{
		sched.NameBusyWait, sched.NameSleep, sched.NameSleepScan,
		sched.NameStatic, sched.NameWorkSteal,
	}
	// Generous dispatch/wake overheads: the suite runs under -race,
	// which multiplies every atomic claim and futex wake.
	cfg := Config{
		PeriodUS: 1e9, // the assertion is against BoundUS, not the envelope
		Margin:   1.5,
		BaseUS:   -1,
		Overheads: rescon.StrategyOverheads{
			CheckUS: 3,
			WakeUS:  60,
		},
	}
	const warmup, measured = 10, 60
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, _ := randomSpinDAG(t, rng, 8+rng.Intn(25))
		plan, err := g.Compile()
		if err != nil {
			t.Fatal(err)
		}
		for _, strat := range strategies {
			for _, threads := range []int{2, 4} {
				// Graham's argument is about processors, not workers: on a
				// machine with fewer cores than workers the excess workers
				// time-slice, so the model's m is what the hardware gives.
				// This mirrors the clamp the engine's gate applies.
				procs := threads
				if p := runtime.GOMAXPROCS(0); procs > p {
					procs = p
					// Static-assignment strategies lose their premise when
					// oversubscribed: a spinning worker occupies the core
					// while the worker that owns the next ready node is
					// descheduled, so neither Graham nor the dedicated-
					// processor simulation bounds the makespan. The gate
					// never promises a bound for that regime; neither does
					// this suite.
					if strat == sched.NameBusyWait || strat == sched.NameStatic {
						continue
					}
				}
				name := fmt.Sprintf("seed%d/%s/%d", seed, strat, threads)
				col := obs.NewCollector(plan, obs.Config{Workers: threads, TraceEvery: -1})
				s, err := sched.New(strat, plan, sched.Options{Threads: threads, Observer: col})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				for i := 0; i < warmup; i++ {
					s.Execute()
				}
				var total time.Duration
				for i := 0; i < measured; i++ {
					t0 := time.Now()
					s.Execute()
					total += time.Since(t0)
				}
				meanUS := total.Seconds() * 1e6 / measured
				// The bound from the very costs this run measured: the
				// strongest falsification the formula can face.
				rep, err := Analyze(plan, col.NodeMeansUS(), strat, procs, "measured", cfg)
				s.Close()
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if meanUS > rep.BoundUS {
					t.Errorf("%s: measured mean makespan %.1f µs EXCEEDS analytical bound %.1f µs (cp %.1f, work %.1f, graham %.1f, sim %.1f)",
						name, meanUS, rep.BoundUS, rep.CritPathUS, rep.TotalWorkUS, rep.GrahamUS, rep.SimUS)
				}
				// Internal consistency regardless of the machine.
				if rep.GraphBoundUS < rep.CritPathUS {
					t.Errorf("%s: bound %v below critical path %v", name, rep.GraphBoundUS, rep.CritPathUS)
				}
			}
		}
	}
}

// TestGrahamBoundMonotone pins down the structural property the edit
// gate relies on: adding nodes or edges to a DAG can only increase (or
// keep) the Graham bound — so a rejected edit cannot become admissible
// by adding MORE work. The strategy simulations are deliberately not
// covered: a round-robin assignment can shift favourably when the node
// order changes, which is exactly why the production bound takes
// max(Graham, Sim).
func TestGrahamBoundMonotone(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		n := 6 + rng.Intn(20)
		g := graph.New()
		costs := make([]float64, 0, n+1)
		for i := 0; i < n; i++ {
			g.AddNode(fmt.Sprintf("M%d", i), graph.SectionMaster, nil)
			costs = append(costs, 1+rng.Float64()*30)
		}
		for i := 1; i < n; i++ {
			if err := g.AddEdge(rng.Intn(i), i); err != nil {
				t.Fatal(err)
			}
		}
		bound := func(threads int) float64 {
			t.Helper()
			plan, err := g.Compile()
			if err != nil {
				t.Fatal(err)
			}
			m, err := rescon.FromPlan(plan, costs)
			if err != nil {
				t.Fatal(err)
			}
			return rescon.GrahamBound(m.TotalWork(), m.CriticalPathUS(), threads)
		}
		for _, threads := range []int{1, 2, 4} {
			before := bound(threads)

			// Added edge: work unchanged, critical path can only grow.
			from, to := rng.Intn(n-1), 0
			to = from + 1 + rng.Intn(n-1-from)
			if err := g.AddEdge(from, to); err != nil {
				t.Fatal(err)
			}
			afterEdge := bound(threads)
			if afterEdge < before-1e-9 {
				t.Fatalf("seed %d m=%d: bound shrank after added edge: %v -> %v", seed, threads, before, afterEdge)
			}

			// Added node: both work and (possibly) the critical path grow.
			id := g.AddNode("extra", graph.SectionMaster, nil)
			costs = append(costs, 5+rng.Float64()*20)
			if err := g.AddEdge(rng.Intn(id), id); err != nil {
				t.Fatal(err)
			}
			afterNode := bound(threads)
			if afterNode < afterEdge-1e-9 {
				t.Fatalf("seed %d m=%d: bound shrank after added node: %v -> %v", seed, threads, afterEdge, afterNode)
			}
			n = id + 1
		}
	}
}
