package admission

import (
	"errors"
	"math"
	"testing"

	"djstar/internal/graph"
	"djstar/internal/rescon"
)

// buildChain compiles a linear chain with the given per-node costs; the
// costs are returned alongside (node i costs costsUS[i]).
func buildChain(t *testing.T, costsUS []float64) (*graph.Plan, []float64) {
	t.Helper()
	g := graph.New()
	prev := -1
	for range costsUS {
		id := g.AddNode("N", graph.SectionMaster, nil)
		if prev >= 0 {
			if err := g.AddEdge(prev, id); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	p, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return p, costsUS
}

// buildDiamond compiles A -> {B, C} -> D with costs 10, 20, 30, 10.
func buildDiamond(t *testing.T) (*graph.Plan, []float64) {
	t.Helper()
	g := graph.New()
	a := g.AddNode("A", graph.SectionMaster, nil)
	b := g.AddNode("B", graph.SectionMaster, nil)
	c := g.AddNode("C", graph.SectionMaster, nil)
	d := g.AddNode("D", graph.SectionMaster, nil)
	for _, e := range [][2]int{{a, b}, {a, c}, {b, d}, {c, d}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	p, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return p, []float64{10, 20, 30, 10}
}

func TestAnalyzeSequential(t *testing.T) {
	plan, costs := buildChain(t, []float64{10, 20, 30, 40})
	cfg := Config{PeriodUS: 1000, Margin: 1, BaseUS: -1, Overheads: rescon.StrategyOverheads{CheckUS: 0.5, WakeUS: 10}}
	r, err := Analyze(plan, costs, "seq", 1, "static", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalWorkUS != 100 || r.CritPathUS != 100 {
		t.Fatalf("W=%v CP=%v, want 100/100", r.TotalWorkUS, r.CritPathUS)
	}
	want := 100 + 4*0.5 // W + n·check
	if math.Abs(r.GraphBoundUS-want) > 1e-9 || math.Abs(r.BoundUS-want) > 1e-9 {
		t.Fatalf("seq bound = %v (graph %v), want %v", r.BoundUS, r.GraphBoundUS, want)
	}
	if !r.Fits() || r.HeadroomUS <= 0 {
		t.Fatalf("bound %v should fit envelope %v (headroom %v)", r.BoundUS, r.EnvelopeUS, r.HeadroomUS)
	}
}

func TestAnalyzeGrahamForWorkConserving(t *testing.T) {
	plan, costs := buildDiamond(t)
	cfg := Config{PeriodUS: 1000, Margin: 1, BaseUS: -1, Overheads: rescon.StrategyOverheads{CheckUS: 0.5, WakeUS: 10}}
	r, err := Analyze(plan, costs, "ws", 2, "static", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// W = 70, CP = A+C+D = 50; Graham = 50 + 20/2 + 4·0.5/2 = 61.
	if r.CritPathUS != 50 {
		t.Fatalf("CP = %v, want 50", r.CritPathUS)
	}
	if math.Abs(r.GrahamUS-61) > 1e-9 || r.GraphBoundUS != r.GrahamUS {
		t.Fatalf("graham = %v, graph bound = %v, want 61", r.GrahamUS, r.GraphBoundUS)
	}
	// The bound must dominate the near-optimal list schedule.
	if r.ListUS > r.GraphBoundUS {
		t.Fatalf("list schedule %v exceeds bound %v", r.ListUS, r.GraphBoundUS)
	}
}

func TestAnalyzeStaticStrategiesUseSimulation(t *testing.T) {
	plan, costs := buildDiamond(t)
	cfg := Config{PeriodUS: 1000, Margin: 1, BaseUS: -1}
	for _, strat := range []string{"busy", "static", "sleep", "sleepscan"} {
		r, err := Analyze(plan, costs, strat, 2, "static", cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.SimUS == 0 {
			t.Fatalf("%s: no simulation makespan", strat)
		}
		if r.GraphBoundUS < r.GrahamUS || r.GraphBoundUS < r.SimUS {
			t.Fatalf("%s: bound %v must be max(graham %v, sim %v)", strat, r.GraphBoundUS, r.GrahamUS, r.SimUS)
		}
		// The simulated round-robin makespan can never beat the critical path.
		if r.SimUS < r.CritPathUS {
			t.Fatalf("%s: sim %v below critical path %v", strat, r.SimUS, r.CritPathUS)
		}
	}
}

func TestMarginAndBaseEnterBound(t *testing.T) {
	plan, costs := buildChain(t, []float64{100})
	cfg := Config{PeriodUS: 1000, Margin: 2, BaseUS: 50, Overheads: rescon.StrategyOverheads{CheckUS: 1, WakeUS: 10}}
	r, err := Analyze(plan, costs, "seq", 1, "static", cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * (50 + 101.0)
	if math.Abs(r.BoundUS-want) > 1e-9 {
		t.Fatalf("bound = %v, want %v", r.BoundUS, want)
	}
	if math.Abs(r.UtilRatio-want/1000) > 1e-9 {
		t.Fatalf("util = %v, want %v", r.UtilRatio, want/1000)
	}
}

func TestShedCostsZeroesKinds(t *testing.T) {
	g := graph.New()
	audio := g.AddNode("Mix", graph.SectionMaster, nil)
	fx := g.AddNode("FX", graph.SectionMaster, nil)
	meter := g.AddNode("VU", graph.SectionMaster, nil)
	ctrl := g.AddNode("Beat", graph.SectionControl, nil)
	g.Node(fx).Kind = graph.KindFX
	g.Node(meter).Kind = graph.KindMeter
	g.Node(ctrl).Kind = graph.KindControl
	plan, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	costs := []float64{10, 20, 30, 40}
	ui := ShedCosts(plan, costs, true, false)
	if ui[audio] != 10 || ui[fx] != 20 || ui[meter] != 0 || ui[ctrl] != 0 {
		t.Fatalf("shed-UI costs = %v", ui)
	}
	both := ShedCosts(plan, costs, true, true)
	if both[audio] != 10 || both[fx] != 0 || both[meter] != 0 || both[ctrl] != 0 {
		t.Fatalf("shed-UI+FX costs = %v", both)
	}
	if costs[2] != 30 {
		t.Fatal("ShedCosts must not mutate its input")
	}
}

func TestDecideLadder(t *testing.T) {
	g := graph.New()
	mix := g.AddNode("Mix", graph.SectionMaster, nil)
	meter := g.AddNode("VU", graph.SectionMaster, nil)
	fx := g.AddNode("FX", graph.SectionMaster, nil)
	g.Node(meter).Kind = graph.KindMeter
	g.Node(fx).Kind = graph.KindFX
	if err := g.AddEdge(mix, meter); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(mix, fx); err != nil {
		t.Fatal(err)
	}
	plan, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	costs := []float64{100, 80, 60} // full seq work 240, minus meter 160, minus meter+fx 100
	base := Config{Margin: 1, BaseUS: -1, Overheads: rescon.StrategyOverheads{CheckUS: 1e-9, WakeUS: 1e-9}}

	cfg := base
	cfg.PeriodUS = 500
	d, err := Decide(plan, costs, "seq", 1, "static", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Verdict != VerdictAdmit || d.PreShed() != "" {
		t.Fatalf("envelope 500: verdict %v preshed %q, want admit", d.Verdict, d.PreShed())
	}

	cfg.PeriodUS = 200 // full 240 over; shed meters 160 fits
	d, err = Decide(plan, costs, "seq", 1, "static", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Verdict != VerdictDegraded || !d.ShedUI || d.ShedFX {
		t.Fatalf("envelope 200: verdict %v ui=%v fx=%v, want degraded meters-only", d.Verdict, d.ShedUI, d.ShedFX)
	}
	if d.Admitted.BoundUS >= d.Full.BoundUS {
		t.Fatalf("degraded bound %v must undercut full bound %v", d.Admitted.BoundUS, d.Full.BoundUS)
	}

	cfg.PeriodUS = 120 // meters+fx shed leaves 100 — deepest rung fits
	d, err = Decide(plan, costs, "seq", 1, "static", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Verdict != VerdictDegraded || !d.ShedFX {
		t.Fatalf("envelope 120: verdict %v fx=%v, want degraded with fx shed", d.Verdict, d.ShedFX)
	}

	cfg.PeriodUS = 50 // nothing fits
	d, err = Decide(plan, costs, "seq", 1, "static", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Verdict != VerdictRefuse {
		t.Fatalf("envelope 50: verdict %v, want refuse", d.Verdict)
	}
}

func TestControllerAggregate(t *testing.T) {
	plan, costs := buildDiamond(t) // W = 70, CP = 50
	cfg := Config{PeriodUS: 150, Margin: 1, BaseUS: -1, Overheads: rescon.StrategyOverheads{CheckUS: 1e-9, WakeUS: 1e-9}}
	rep, err := Analyze(plan, costs, "pool", 2, "static", cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl := NewController(2, cfg)
	// Session A alone: 50 + 20/2 = 60 ≤ 150.
	if err := ctl.TryAdmit("a", rep); err != nil {
		t.Fatalf("first session refused: %v", err)
	}
	// Session B: each session now bounds at 50 + (140-50)/2 = 95 ≤ 150.
	if err := ctl.TryAdmit("b", rep); err != nil {
		t.Fatalf("second session refused: %v", err)
	}
	// Session C: 50 + (210-50)/2 = 130 ≤ 150 still fits.
	if err := ctl.TryAdmit("c", rep); err != nil {
		t.Fatalf("third session refused: %v", err)
	}
	// Session D: 50 + (280-50)/2 = 165 > 150 — refused, and the sentinel
	// must be recoverable with errors.Is.
	err = ctl.TryAdmit("d", rep)
	if err == nil {
		t.Fatal("fourth session admitted, want refusal")
	}
	if !errors.Is(err, ErrOverBudget) {
		t.Fatalf("refusal = %v, want errors.Is(_, ErrOverBudget)", err)
	}
	if got := len(ctl.Sessions()); got != 3 {
		t.Fatalf("sessions = %d, want 3", got)
	}
	// Releasing one makes room again.
	ctl.Release("b")
	if err := ctl.TryAdmit("d", rep); err != nil {
		t.Fatalf("post-release admit refused: %v", err)
	}
	// Duplicate IDs are rejected without disturbing the registration.
	if err := ctl.TryAdmit("a", rep); err == nil {
		t.Fatal("duplicate session ID admitted")
	}
	for _, s := range ctl.Sessions() {
		if !s.Fits {
			t.Fatalf("admitted session %q over budget: %+v", s.ID, s)
		}
	}
}

func TestGrahamBoundBasics(t *testing.T) {
	if b := rescon.GrahamBound(100, 40, 2); b != 70 {
		t.Fatalf("GrahamBound(100,40,2) = %v, want 70", b)
	}
	if b := rescon.GrahamBound(100, 100, 4); b != 100 {
		t.Fatalf("pure chain: %v, want 100", b)
	}
	// Defensive: CP larger than W (inconsistent inputs) must not go
	// below CP.
	if b := rescon.GrahamBound(50, 80, 2); b != 80 {
		t.Fatalf("clamped surplus: %v, want 80", b)
	}
}
