package graph

import (
	"math"
	"sync/atomic"
	"time"
)

// Workload modeling.
//
// Our DSP kernels on a 2026 machine finish a 128-sample packet in a few
// microseconds, while the paper's 2015 laptop-class nodes take tens of
// microseconds. To reproduce the paper's *scale* (sequential sum ~1.1 ms,
// critical path ~295 µs) and its data-dependent cost variation, every
// audio node runs its real DSP kernel and then a calibrated spin workload
// topping the node up to a target cost. Spin work is pure deterministic
// arithmetic — no allocation, no syscalls, no sharing — exactly the
// busy-CPU behaviour of a heavier effect kernel.

// spinSink defeats dead-code elimination of the spin loop.
var spinSink atomic.Uint64

// SpinUnit is the amount of arithmetic performed per work unit (iterations
// of the inner loop). One unit is a few nanoseconds on current hardware.
const SpinUnit = 16

// Spin performs `units` work units of deterministic arithmetic.
func Spin(units int64) {
	var acc uint64 = 0x9E3779B97F4A7C15
	for i := int64(0); i < units; i++ {
		for j := 0; j < SpinUnit; j++ {
			acc ^= acc << 13
			acc ^= acc >> 7
			acc ^= acc << 17
		}
	}
	spinSink.Store(acc)
}

// Calibration converts between wall-clock node cost targets and spin work
// units on the current machine.
type Calibration struct {
	// NanosPerUnit is the measured cost of one spin unit in nanoseconds.
	NanosPerUnit float64
}

// Calibrate measures the spin loop. It runs for a few milliseconds and is
// intended to be called once per process (the engine caches it).
func Calibrate() Calibration {
	// Warm up.
	Spin(20000)
	const units = 200000
	best := float64(1 << 62)
	for trial := 0; trial < 3; trial++ {
		start := time.Now()
		Spin(units)
		el := float64(time.Since(start).Nanoseconds()) / units
		if el < best {
			best = el
		}
	}
	if best <= 0 {
		best = 1
	}
	return Calibration{NanosPerUnit: best}
}

// UnitsForMicros returns the spin units approximating us microseconds.
func (c Calibration) UnitsForMicros(us float64) int64 {
	if c.NanosPerUnit <= 0 || us <= 0 {
		return 0
	}
	return int64(us * 1000 / c.NanosPerUnit)
}

// Cost describes a node's target execution cost in microseconds at scale
// 1.0 (paper scale). Base is always spent; Data is spent only when the
// node's input signal is active (loud), which is what makes the paper's
// execution-time histograms bimodal.
type Cost struct {
	BaseUS float64
	DataUS float64
}

// Standard node cost targets (µs, paper scale). Derived in DESIGN.md §4 to
// reproduce the paper's sequential sum (~1.09 ms), critical path (~295 µs)
// and 4-core optimum (~324 µs).
var (
	CostSP      = Cost{BaseUS: 8}
	CostFX      = Cost{BaseUS: 40, DataUS: 16}
	CostChannel = Cost{BaseUS: 25}
	CostMixer   = Cost{BaseUS: 35}
	CostMaster  = Cost{BaseUS: 20}
	CostOut     = Cost{BaseUS: 15}
	CostRecord  = Cost{BaseUS: 15}
	CostCue     = Cost{BaseUS: 10}
	CostMonitor = Cost{BaseUS: 8}
	CostSampler = Cost{BaseUS: 10}
	CostControl = Cost{BaseUS: 2}
	CostMeter   = Cost{BaseUS: 4}
)

// LoadFactor is a shared, runtime-adjustable multiplier on node cost
// targets. The engine's deadline governor uses it to shed load under
// overload (Critical level halves it), and overload experiments inflate
// it to simulate a machine suddenly too slow for the graph. It is read
// by every Load on every node execution, so it is a single atomic.
type LoadFactor struct {
	bits atomic.Uint64
}

// NewLoadFactor returns a factor initialized to 1.0.
func NewLoadFactor() *LoadFactor {
	lf := &LoadFactor{}
	lf.Set(1.0)
	return lf
}

// Set stores the factor (values < 0 clamp to 0).
func (lf *LoadFactor) Set(f float64) {
	if f < 0 {
		f = 0
	}
	lf.bits.Store(math.Float64bits(f))
}

// Get loads the factor.
func (lf *LoadFactor) Get() float64 { return math.Float64frombits(lf.bits.Load()) }

// Load converts cost targets to concrete spin work for a node.
type Load struct {
	baseUnits int64
	dataUnits int64
	baseNs    int64
	dataNs    int64
	chunk     int64 // spin units per top-up probe (~0.5 µs)
	// factor, when non-nil, scales the target at run time (governor /
	// overload control); nil means a fixed 1.0.
	factor *LoadFactor
}

// NewLoad builds a Load from a cost target, a calibration and a global
// scale factor (1.0 = paper scale; tests use much smaller values).
func NewLoad(c Cost, cal Calibration, scale float64) Load {
	chunk := cal.UnitsForMicros(0.5)
	if chunk < 1 {
		chunk = 1
	}
	return Load{
		baseUnits: cal.UnitsForMicros(c.BaseUS * scale),
		dataUnits: cal.UnitsForMicros(c.DataUS * scale),
		baseNs:    int64(c.BaseUS * scale * 1000),
		dataNs:    int64(c.DataUS * scale * 1000),
		chunk:     chunk,
	}
}

// WithFactor attaches a runtime load factor to the load (nil detaches).
func (l Load) WithFactor(lf *LoadFactor) Load {
	l.factor = lf
	return l
}

// Run spends the load's base work, plus the data work when active, as a
// fixed amount of spin work on top of whatever the caller already did.
func (l Load) Run(active bool) {
	u := l.baseUnits
	if active {
		u += l.dataUnits
	}
	if l.factor != nil {
		u = int64(float64(u) * l.factor.Get())
	}
	Spin(u)
}

// RunSince tops the caller's elapsed time up to the load's target: the
// node's real DSP kernel started at startNs (from NowNanos); RunSince
// spins until the total node cost reaches the target, so node cost is
// max(real kernel, target) rather than their sum. This keeps the
// paper-scale cost model accurate across hosts of very different speeds.
func (l Load) RunSince(startNs int64, active bool) {
	target := l.baseNs
	if active {
		target += l.dataNs
	}
	if l.factor != nil {
		target = int64(float64(target) * l.factor.Get())
	}
	if target == 0 {
		return
	}
	deadline := startNs + target
	for nowNanos() < deadline {
		Spin(l.chunk)
	}
}

// Enabled reports whether the load has any work target (false at scale 0).
func (l Load) Enabled() bool { return l.baseNs > 0 || l.dataNs > 0 }

// NowNanos exposes the package's monotonic clock for RunSince callers.
func NowNanos() int64 { return nowNanos() }
