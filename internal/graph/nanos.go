package graph

import "time"

// nowNanos returns a monotonic nanosecond timestamp. time.Now in Go reads
// the monotonic clock; subtracting two calls is safe against wall-clock
// steps. Kept as a helper so measurement call sites stay terse.
func nowNanos() int64 { return int64(time.Since(timeBase)) }

// timeBase anchors the monotonic clock.
var timeBase = time.Now()
