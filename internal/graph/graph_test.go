package graph

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddNodeAndEdges(t *testing.T) {
	g := New()
	a := g.AddNode("a", SectionDeckA, nil)
	b := g.AddNode("b", SectionMaster, nil)
	if a != 0 || b != 1 {
		t.Fatalf("IDs = %d,%d", a, b)
	}
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	// Duplicate is silently ignored.
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if got := g.Node(b).Deps(); len(got) != 1 || got[0] != a {
		t.Fatalf("deps = %v", got)
	}
	if got := g.Node(a).Succs(); len(got) != 1 || got[0] != b {
		t.Fatalf("succs = %v", got)
	}
	if g.Len() != 2 || len(g.Nodes()) != 2 {
		t.Fatal("Len/Nodes wrong")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New()
	a := g.AddNode("a", SectionDeckA, nil)
	if err := g.AddEdge(a, a); err == nil {
		t.Fatal("self-edge accepted")
	}
	if err := g.AddEdge(a, 7); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if err := g.AddEdge(-1, a); err == nil {
		t.Fatal("negative edge accepted")
	}
}

func TestCompileEmptyGraphFails(t *testing.T) {
	if _, err := New().Compile(); err == nil {
		t.Fatal("empty graph compiled")
	}
}

func TestCompileDetectsCycle(t *testing.T) {
	g := New()
	a := g.AddNode("a", SectionDeckA, nil)
	b := g.AddNode("b", SectionDeckA, nil)
	c := g.AddNode("c", SectionDeckA, nil)
	for _, e := range [][2]int{{a, b}, {b, c}, {c, a}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	_, err := g.Compile()
	if !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
}

func TestCompileDepthAndOrder(t *testing.T) {
	// Diamond: a -> b,c -> d, plus isolated e.
	g := New()
	a := g.AddNode("a", SectionDeckA, nil)
	b := g.AddNode("b", SectionDeckA, nil)
	c := g.AddNode("c", SectionDeckA, nil)
	d := g.AddNode("d", SectionDeckA, nil)
	e := g.AddNode("e", SectionControl, nil)
	mustEdge(g, a, b)
	mustEdge(g, a, c)
	mustEdge(g, b, d)
	mustEdge(g, c, d)

	p, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	wantDepth := []int32{0, 1, 1, 2, 0}
	for i, w := range wantDepth {
		if p.Depth[i] != w {
			t.Fatalf("depth[%d] = %d, want %d", i, p.Depth[i], w)
		}
	}
	// Order: depth 0 first (a, e by ID), then b, c, then d.
	want := []int32{int32(a), int32(e), int32(b), int32(c), int32(d)}
	for i, w := range want {
		if p.Order[i] != w {
			t.Fatalf("order = %v, want %v", p.Order, want)
		}
	}
	if p.CriticalPathLen != 3 {
		t.Fatalf("CriticalPathLen = %d, want 3", p.CriticalPathLen)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	srcs := p.Sources()
	if len(srcs) != 2 || srcs[0] != int32(a) || srcs[1] != int32(e) {
		t.Fatalf("Sources = %v", srcs)
	}
	if got := p.SourcesBySection[SectionControl]; len(got) != 1 || got[0] != int32(e) {
		t.Fatalf("SourcesBySection = %v", p.SourcesBySection)
	}
}

func TestValidateCatchesBadOrder(t *testing.T) {
	g := New()
	a := g.AddNode("a", SectionDeckA, nil)
	b := g.AddNode("b", SectionDeckA, nil)
	mustEdge(g, a, b)
	p, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	p.Order[0], p.Order[1] = p.Order[1], p.Order[0]
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted dependency-violating order")
	}
}

func TestOrderRespectsDepsProperty(t *testing.T) {
	f := func(seed uint64, sizeRaw uint8, probRaw uint8) bool {
		size := 1 + int(sizeRaw)%60
		prob := float64(probRaw) / 255 * 0.4
		g, _ := RandomDAG(RandomSpec{Nodes: size, EdgeProb: prob, Seed: seed})
		p, err := g.Compile()
		if err != nil {
			return false
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDepthIsLongestPathProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g, _ := RandomDAG(RandomSpec{Nodes: 40, EdgeProb: 0.15, Seed: seed})
		p, err := g.Compile()
		if err != nil {
			return false
		}
		// depth(n) = 0 for sources, else 1 + max(depth(pred)).
		for i := 0; i < p.Len(); i++ {
			if len(p.PredsOf(int32(i))) == 0 {
				if p.Depth[i] != 0 {
					return false
				}
				continue
			}
			maxPred := int32(-1)
			for _, d := range p.PredsOf(int32(i)) {
				if p.Depth[d] > maxPred {
					maxPred = p.Depth[d]
				}
			}
			if p.Depth[i] != maxPred+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSectionStrings(t *testing.T) {
	names := []string{"deck-a", "deck-b", "deck-c", "deck-d", "master", "control"}
	for i, want := range names {
		if got := Section(i).String(); got != want {
			t.Fatalf("Section(%d) = %q, want %q", i, got, want)
		}
	}
	if Section(99).String() != "unknown" {
		t.Fatal("unknown section name")
	}
	if DeckSection(2) != SectionDeckC {
		t.Fatal("DeckSection(2) wrong")
	}
}

func TestExecTraceDetectsDoubleRun(t *testing.T) {
	tr := NewExecTrace(2)
	tr.Record(0)
	defer func() {
		if recover() == nil {
			t.Fatal("double Record did not panic")
		}
	}()
	tr.Record(0)
}

func TestExecTraceCheck(t *testing.T) {
	g := New()
	a := g.AddNode("a", SectionDeckA, nil)
	b := g.AddNode("b", SectionDeckA, nil)
	mustEdge(g, a, b)
	p, _ := g.Compile()

	tr := NewExecTrace(2)
	// Missing node.
	if err := tr.Check(p); err == nil {
		t.Fatal("Check accepted unexecuted nodes")
	}
	// Wrong order.
	tr.Record(b)
	tr.Record(a)
	if err := tr.Check(p); err == nil || !strings.Contains(err.Error(), "before dependency") {
		t.Fatalf("Check = %v, want dependency violation", err)
	}
	// Correct order.
	tr.Reset()
	tr.Record(a)
	tr.Record(b)
	if err := tr.Check(p); err != nil {
		t.Fatal(err)
	}
}

func TestSpinAndCalibration(t *testing.T) {
	Spin(0) // no-op
	cal := Calibrate()
	if cal.NanosPerUnit <= 0 {
		t.Fatalf("NanosPerUnit = %v", cal.NanosPerUnit)
	}
	units := cal.UnitsForMicros(100)
	if units <= 0 {
		t.Fatalf("UnitsForMicros(100) = %d", units)
	}
	if cal.UnitsForMicros(0) != 0 || cal.UnitsForMicros(-5) != 0 {
		t.Fatal("non-positive targets must give 0 units")
	}
	if (Calibration{}).UnitsForMicros(10) != 0 {
		t.Fatal("uncalibrated UnitsForMicros must give 0")
	}
}

func TestLoadRunActiveCostsMore(t *testing.T) {
	cal := Calibrate()
	l := NewLoad(Cost{BaseUS: 50, DataUS: 200}, cal, 1)
	timeIt := func(active bool) float64 {
		const reps = 20
		best := 1e18
		for r := 0; r < reps; r++ {
			start := nowNanos()
			l.Run(active)
			if el := float64(nowNanos() - start); el < best {
				best = el
			}
		}
		return best
	}
	idle := timeIt(false)
	active := timeIt(true)
	if active < idle*2 {
		t.Fatalf("active load %.0fns not clearly above idle %.0fns", active, idle)
	}
}

func TestZeroScaleLoadIsFree(t *testing.T) {
	l := NewLoad(CostFX, Calibration{NanosPerUnit: 10}, 0)
	// Must not spin at all; just ensure it runs instantly and untimed.
	l.Run(true)
	l.Run(false)
}

func TestWriteDOT(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TrackBars = 2
	_, g, err := BuildDJStar(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := g.WriteDOT(&sb, "djstar"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", "cluster_deck-a", "Mixer", "->", "}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q", want)
		}
	}
	// One edge line per dependency.
	edges := strings.Count(out, "->")
	p, _ := g.Compile()
	wantEdges := len(p.PredList)
	if edges != wantEdges {
		t.Fatalf("DOT has %d edges, want %d", edges, wantEdges)
	}
}
