package graph

import (
	"errors"
	"fmt"
)

// Live topology editing (ROADMAP item 5): plans become versioned values.
// An EditSet is a batch of structural edits against a built Graph;
// Graph.Apply materializes it into a NEW graph and compiled Plan plus a
// Remap that relates the two node-ID spaces, so a running engine can
// swap the plan in at a cycle boundary while surviving nodes keep their
// identity (quarantine bits, shed state, observer history) and their
// audio state (the Run closures are carried over verbatim; see also
// Node.State / Node.Migrate for state that must cross node boundaries,
// e.g. a ReplaceChain that hands a delay line to its successor).
//
// Apply never mutates the receiver: a failed edit leaves the live graph
// untouched, which is what makes staging + rollback on the engine safe.

// ErrBadEdit wraps every EditSet validation failure (dangling refs,
// duplicate removes/edges, missing edges, broken chains). Cycles are
// reported as ErrCycle by the embedded Compile.
var ErrBadEdit = errors.New("graph: invalid edit")

// NodeRef names a node inside an EditSet: a value >= 0 is an existing
// node ID of the graph the set will be applied to; negative values are
// returned by EditSet.AddNode / ReplaceChain and name nodes the same
// set is adding.
type NodeRef int

// Added reports whether the ref names a node added by this EditSet.
func (r NodeRef) Added() bool { return r < 0 }

// NodeSpec describes a node an EditSet adds. Zero-value Kind is
// KindAudio; a nil Run becomes a no-op (like Graph.AddNode).
type NodeSpec struct {
	Name    string
	Section Section
	Kind    NodeKind
	Run     func()
	Bypass  func()
	Flush   func()
	// State and Migrate seed the new node's migratable state (see Node).
	State   any
	Migrate func(prev any)
}

// Edit op kinds.
type editKind int

const (
	opAddNode editKind = iota
	opRemoveNode
	opAddEdge
	opRemoveEdge
	opReplaceChain
)

// editOp is one recorded edit.
type editOp struct {
	kind  editKind
	a, b  NodeRef // node target / edge endpoints
	spec  NodeSpec
	chain []NodeRef
	specs []NodeSpec
}

// EditSet is an ordered batch of topology edits. Build it with the
// methods below, then apply it with Graph.Apply. The zero value is an
// empty set. An EditSet is single-use: applying it to a graph other
// than the one its refs were chosen against yields an error or
// nonsense, and it must not be applied twice.
type EditSet struct {
	ops  []editOp
	adds int
}

// Len returns the number of recorded edit operations.
func (es *EditSet) Len() int { return len(es.ops) }

// AddNode records the addition of a node and returns its ref for use in
// subsequent AddEdge/RemoveNode calls of the same set.
func (es *EditSet) AddNode(spec NodeSpec) NodeRef {
	es.ops = append(es.ops, editOp{kind: opAddNode, spec: spec})
	es.adds++
	return NodeRef(-es.adds)
}

// RemoveNode records the removal of a node. All incident edges are
// detached with it; removing the same node twice is an error at Apply.
func (es *EditSet) RemoveNode(n NodeRef) {
	es.ops = append(es.ops, editOp{kind: opRemoveNode, a: n})
}

// AddEdge records a new dependency edge from -> to. Adding an edge that
// already exists (or twice in one set) is an error at Apply.
func (es *EditSet) AddEdge(from, to NodeRef) {
	es.ops = append(es.ops, editOp{kind: opAddEdge, a: from, b: to})
}

// RemoveEdge records the removal of the edge from -> to, which must
// exist at the point the op applies.
func (es *EditSet) RemoveEdge(from, to NodeRef) {
	es.ops = append(es.ops, editOp{kind: opRemoveEdge, a: from, b: to})
}

// ReplaceChain swaps a linear chain of nodes for a freshly specced one:
// the chain's external predecessors feed the first new node, the last
// new node feeds the chain's external successors. The chain entries
// must be connected head-to-tail and its interior nodes must have no
// other edges. With no specs the chain is simply excised and its
// neighbors bridged (every external predecessor of the head gains an
// edge to every external successor of the tail).
//
// State pairing: new node i inherits chain[i]'s State (for i within
// both lists) — its Migrate hook, if any, receives that state at
// adoption time. The refs of the new nodes are returned.
func (es *EditSet) ReplaceChain(chain []NodeRef, specs ...NodeSpec) []NodeRef {
	op := editOp{
		kind:  opReplaceChain,
		chain: append([]NodeRef(nil), chain...),
		specs: append([]NodeSpec(nil), specs...),
	}
	es.ops = append(es.ops, op)
	refs := make([]NodeRef, len(specs))
	for i := range specs {
		es.adds++
		refs[i] = NodeRef(-es.adds)
	}
	return refs
}

// Remap relates the node-ID spaces of two plan epochs.
type Remap struct {
	// OldToNew[oldID] is the node's ID in the new plan, or -1 if the
	// edit removed it.
	OldToNew []int32
	// NewToOld[newID] is the node's ID in the old plan, or -1 if the
	// edit added it.
	NewToOld []int32
	// StateSrc[newID] is the old node whose State the new node inherits
	// (its Migrate hook's argument), or -1 for none. For surviving nodes
	// this equals NewToOld; ReplaceChain pairs new specs with the chain
	// nodes they replace.
	StateSrc []int32
}

// IdentityRemap returns the n-node identity mapping (used when a plan
// is recompiled without structural change, e.g. re-fusion).
func IdentityRemap(n int) *Remap {
	r := &Remap{
		OldToNew: make([]int32, n),
		NewToOld: make([]int32, n),
		StateSrc: make([]int32, n),
	}
	for i := range r.OldToNew {
		r.OldToNew[i] = int32(i)
		r.NewToOld[i] = int32(i)
		r.StateSrc[i] = int32(i)
	}
	return r
}

// Compose chains two remaps: r maps epoch A->B, next maps B->C; the
// result maps A->C. Used when several EditSets are staged before one
// cycle boundary adopts them all.
func (r *Remap) Compose(next *Remap) *Remap {
	out := &Remap{
		OldToNew: make([]int32, len(r.OldToNew)),
		NewToOld: make([]int32, len(next.NewToOld)),
		StateSrc: make([]int32, len(next.NewToOld)),
	}
	for a, b := range r.OldToNew {
		if b < 0 {
			out.OldToNew[a] = -1
		} else {
			out.OldToNew[a] = next.OldToNew[b]
		}
	}
	for c, b := range next.NewToOld {
		if b < 0 {
			out.NewToOld[c] = -1
		} else {
			out.NewToOld[c] = r.NewToOld[b]
		}
	}
	for c, b := range next.StateSrc {
		if b < 0 {
			out.StateSrc[c] = -1
		} else {
			out.StateSrc[c] = r.StateSrc[b]
		}
	}
	return out
}

// editState is the working set of one Apply: a mutable copy of the
// graph's adjacency with tombstones for removals.
type editState struct {
	origN int
	nodes []*Node // shallow clones; index = working ID
	// removed marks tombstoned working IDs.
	removed []bool
	// addedFrom[i] is, for working IDs >= origN, the old node whose
	// State the added node inherits (-1 = none).
	addedFrom []int32
}

// Apply materializes the edit set against g: it validates every op,
// produces a new compacted Graph, compiles it, and returns the compiled
// Plan together with the Remap between g's IDs and the new plan's. g is
// never mutated; on any error the returned values are nil and the live
// topology is untouched.
func (g *Graph) Apply(es *EditSet) (*Graph, *Plan, *Remap, error) {
	st := &editState{origN: len(g.nodes)}
	st.nodes = make([]*Node, len(g.nodes))
	for i, n := range g.nodes {
		c := *n // shallow copy; Run/Bypass/Flush/State are shared handles
		c.deps = append([]int(nil), n.deps...)
		c.succs = append([]int(nil), n.succs...)
		st.nodes[i] = &c
	}
	st.removed = make([]bool, len(g.nodes))

	for i := range es.ops {
		if err := st.apply(&es.ops[i]); err != nil {
			return nil, nil, nil, fmt.Errorf("%w: op %d: %v", ErrBadEdit, i, err)
		}
	}
	return st.compact()
}

// resolve turns a NodeRef into a working ID.
func (st *editState) resolve(r NodeRef) (int, error) {
	var id int
	if r >= 0 {
		id = int(r)
		if id >= st.origN {
			return 0, fmt.Errorf("node ref %d out of range [0,%d)", id, st.origN)
		}
	} else {
		idx := -int(r) - 1
		if idx >= len(st.addedFrom) {
			return 0, fmt.Errorf("added-node ref %d not defined yet", r)
		}
		id = st.origN + idx
	}
	if st.removed[id] {
		return 0, fmt.Errorf("node %d (%s) was removed earlier in this edit", id, st.nodes[id].Name)
	}
	return id, nil
}

// addNode appends a working node from a spec.
func (st *editState) addNode(spec NodeSpec, from int32) int {
	run := spec.Run
	if run == nil {
		run = func() {}
	}
	n := &Node{
		ID:      len(st.nodes),
		Name:    spec.Name,
		Section: spec.Section,
		Kind:    spec.Kind,
		Run:     run,
		Bypass:  spec.Bypass,
		Flush:   spec.Flush,
		State:   spec.State,
		Migrate: spec.Migrate,
	}
	st.nodes = append(st.nodes, n)
	st.removed = append(st.removed, false)
	st.addedFrom = append(st.addedFrom, from)
	return n.ID
}

// hasEdge reports whether from -> to exists in the working graph.
func (st *editState) hasEdge(from, to int) bool {
	for _, d := range st.nodes[to].deps {
		if d == from {
			return true
		}
	}
	return false
}

// addEdge inserts from -> to, rejecting self-edges and duplicates.
func (st *editState) addEdge(from, to int) error {
	if from == to {
		return fmt.Errorf("self-edge on node %d (%s)", from, st.nodes[from].Name)
	}
	if st.hasEdge(from, to) {
		return fmt.Errorf("duplicate edge %s -> %s", st.nodes[from].Name, st.nodes[to].Name)
	}
	st.nodes[to].deps = append(st.nodes[to].deps, from)
	st.nodes[from].succs = append(st.nodes[from].succs, to)
	return nil
}

// removeEdge deletes from -> to, which must exist.
func (st *editState) removeEdge(from, to int) error {
	if !st.hasEdge(from, to) {
		return fmt.Errorf("edge %s -> %s does not exist", st.nodes[from].Name, st.nodes[to].Name)
	}
	st.nodes[to].deps = cutInt(st.nodes[to].deps, from)
	st.nodes[from].succs = cutInt(st.nodes[from].succs, to)
	return nil
}

// removeNode tombstones a node and detaches its incident edges.
func (st *editState) removeNode(id int) {
	n := st.nodes[id]
	for _, d := range n.deps {
		st.nodes[d].succs = cutInt(st.nodes[d].succs, id)
	}
	for _, s := range n.succs {
		st.nodes[s].deps = cutInt(st.nodes[s].deps, id)
	}
	n.deps, n.succs = nil, nil
	st.removed[id] = true
}

func (st *editState) apply(op *editOp) error {
	switch op.kind {
	case opAddNode:
		if op.spec.Name == "" {
			return errors.New("added node needs a name")
		}
		st.addNode(op.spec, -1)
		return nil
	case opRemoveNode:
		id, err := st.resolve(op.a)
		if err != nil {
			return err
		}
		st.removeNode(id)
		return nil
	case opAddEdge:
		from, err := st.resolve(op.a)
		if err != nil {
			return err
		}
		to, err := st.resolve(op.b)
		if err != nil {
			return err
		}
		return st.addEdge(from, to)
	case opRemoveEdge:
		from, err := st.resolve(op.a)
		if err != nil {
			return err
		}
		to, err := st.resolve(op.b)
		if err != nil {
			return err
		}
		return st.removeEdge(from, to)
	case opReplaceChain:
		return st.replaceChain(op)
	default:
		return fmt.Errorf("unknown op kind %d", op.kind)
	}
}

// replaceChain validates and applies a chain replacement.
func (st *editState) replaceChain(op *editOp) error {
	if len(op.chain) == 0 {
		return errors.New("empty chain")
	}
	ids := make([]int, len(op.chain))
	inChain := make(map[int]bool, len(op.chain))
	for i, r := range op.chain {
		id, err := st.resolve(r)
		if err != nil {
			return err
		}
		if inChain[id] {
			return fmt.Errorf("node %s listed twice in chain", st.nodes[id].Name)
		}
		ids[i] = id
		inChain[id] = true
	}
	for i := 0; i+1 < len(ids); i++ {
		if !st.hasEdge(ids[i], ids[i+1]) {
			return fmt.Errorf("chain break: no edge %s -> %s",
				st.nodes[ids[i]].Name, st.nodes[ids[i+1]].Name)
		}
	}
	// Interior nodes must be pure chain links.
	for i := 1; i+1 < len(ids); i++ {
		n := st.nodes[ids[i]]
		if len(n.deps) != 1 || len(n.succs) != 1 {
			return fmt.Errorf("chain interior node %s has external edges", n.Name)
		}
	}
	head, tail := ids[0], ids[len(ids)-1]
	var preds, succs []int
	for _, d := range st.nodes[head].deps {
		if !inChain[d] {
			preds = append(preds, d)
		}
	}
	for _, s := range st.nodes[tail].succs {
		if !inChain[s] {
			succs = append(succs, s)
		}
	}
	// With one chain node, head == tail: it may have both external preds
	// and succs; verify no OTHER external edges dangle off interior ends.
	if len(ids) > 1 {
		for _, s := range st.nodes[head].succs {
			if !inChain[s] {
				return fmt.Errorf("chain head %s has an external successor %s",
					st.nodes[head].Name, st.nodes[s].Name)
			}
		}
		for _, d := range st.nodes[tail].deps {
			if !inChain[d] {
				return fmt.Errorf("chain tail %s has an external predecessor %s",
					st.nodes[tail].Name, st.nodes[d].Name)
			}
		}
	}
	for _, id := range ids {
		st.removeNode(id)
	}
	if len(op.specs) == 0 {
		// Pure excision: bridge the neighbors (skip edges that already
		// exist — e.g. a parallel path around the chain).
		for _, p := range preds {
			for _, s := range succs {
				if p != s && !st.hasEdge(p, s) {
					if err := st.addEdge(p, s); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	newIDs := make([]int, len(op.specs))
	for i, spec := range op.specs {
		if spec.Name == "" {
			return errors.New("replacement node needs a name")
		}
		from := int32(-1)
		if i < len(ids) {
			from = int32(ids[i])
		}
		newIDs[i] = st.addNode(spec, from)
		if i > 0 {
			if err := st.addEdge(newIDs[i-1], newIDs[i]); err != nil {
				return err
			}
		}
	}
	for _, p := range preds {
		if err := st.addEdge(p, newIDs[0]); err != nil {
			return err
		}
	}
	for _, s := range succs {
		if err := st.addEdge(newIDs[len(newIDs)-1], s); err != nil {
			return err
		}
	}
	return nil
}

// compact builds the new graph from the working set (survivors keep
// relative order, added nodes follow) and compiles it.
func (st *editState) compact() (*Graph, *Plan, *Remap, error) {
	workToNew := make([]int32, len(st.nodes))
	out := New()
	for id, n := range st.nodes {
		if st.removed[id] {
			workToNew[id] = -1
			continue
		}
		newID := out.AddNode(n.Name, n.Section, n.Run)
		nn := out.Node(newID)
		nn.Kind = n.Kind
		nn.Bypass = n.Bypass
		nn.Flush = n.Flush
		nn.State = n.State
		nn.Migrate = n.Migrate
		workToNew[id] = int32(newID)
	}
	for id, n := range st.nodes {
		if st.removed[id] {
			continue
		}
		for _, s := range n.succs {
			if err := out.AddEdge(int(workToNew[id]), int(workToNew[s])); err != nil {
				return nil, nil, nil, fmt.Errorf("%w: %v", ErrBadEdit, err)
			}
		}
	}
	plan, err := out.Compile()
	if err != nil {
		return nil, nil, nil, err // ErrCycle or empty graph
	}
	r := &Remap{
		OldToNew: workToNew[:st.origN:st.origN],
		NewToOld: make([]int32, out.Len()),
		StateSrc: make([]int32, out.Len()),
	}
	for i := range r.NewToOld {
		r.NewToOld[i] = -1
		r.StateSrc[i] = -1
	}
	for old := 0; old < st.origN; old++ {
		if n := r.OldToNew[old]; n >= 0 {
			r.NewToOld[n] = int32(old)
			r.StateSrc[n] = int32(old)
		}
	}
	for idx, from := range st.addedFrom {
		if from < 0 || from >= int32(st.origN) {
			continue
		}
		work := st.origN + idx
		if n := workToNew[work]; n >= 0 {
			r.StateSrc[n] = from
		}
	}
	return out, plan, r, nil
}

// cutInt removes the first occurrence of v from xs.
func cutInt(xs []int, v int) []int {
	for i, x := range xs {
		if x == v {
			return append(xs[:i:i], xs[i+1:]...)
		}
	}
	return xs
}
