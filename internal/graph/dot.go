package graph

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format, clustered by mixer
// section — a machine-readable Fig. 3. Render with:
//
//	go run ./cmd/djsim -dot | dot -Tsvg > graph.svg
func (g *Graph) WriteDOT(w io.Writer, title string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", title)
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontsize=10];\n")

	bySection := map[Section][]*Node{}
	for _, n := range g.nodes {
		bySection[n.Section] = append(bySection[n.Section], n)
	}
	for sec := Section(0); sec < numSections; sec++ {
		nodes := bySection[sec]
		if len(nodes) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  subgraph \"cluster_%s\" {\n    label=%q;\n", sec, sec.String())
		for _, n := range nodes {
			fmt.Fprintf(&b, "    n%d [label=%q];\n", n.ID, n.Name)
		}
		b.WriteString("  }\n")
	}
	for _, n := range g.nodes {
		for _, s := range n.succs {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", n.ID, s)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
