package graph

import (
	"testing"
	"time"
)

func TestRunSinceTopsUpToTarget(t *testing.T) {
	cal := Calibrate()
	l := NewLoad(Cost{BaseUS: 300, DataUS: 300}, cal, 1)
	if !l.Enabled() {
		t.Fatal("load with targets not enabled")
	}

	measure := func(active bool, burnUS float64) time.Duration {
		start := time.Now()
		startNs := NowNanos()
		// Simulate the "real kernel" burning some time first.
		Spin(cal.UnitsForMicros(burnUS))
		l.RunSince(startNs, active)
		return time.Since(start)
	}

	// Kernel cheaper than target: total ≈ target.
	got := measure(false, 20)
	if got < 250*time.Microsecond || got > 3*time.Millisecond {
		t.Fatalf("top-up to 300 µs took %v", got)
	}
	// Active adds the data part.
	gotActive := measure(true, 20)
	if gotActive < got {
		t.Fatalf("active %v not above idle %v", gotActive, got)
	}
	// Kernel more expensive than target: no extra spin beyond the kernel.
	expensive := measure(false, 600)
	if expensive > 4*time.Millisecond {
		t.Fatalf("RunSince added work beyond an already-late kernel: %v", expensive)
	}
}

func TestRunSinceZeroTargetReturnsImmediately(t *testing.T) {
	l := NewLoad(Cost{}, Calibration{NanosPerUnit: 10}, 1)
	if l.Enabled() {
		t.Fatal("zero-cost load enabled")
	}
	start := time.Now()
	l.RunSince(NowNanos(), true)
	if time.Since(start) > time.Millisecond {
		t.Fatal("zero-target RunSince did not return promptly")
	}
}

func TestNowNanosMonotone(t *testing.T) {
	a := NowNanos()
	b := NowNanos()
	if b < a {
		t.Fatalf("clock went backwards: %d -> %d", a, b)
	}
}
