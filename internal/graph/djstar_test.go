package graph

import (
	"strings"
	"testing"

	"djstar/internal/synth"
)

// buildDefault compiles the standard graph at zero scale (no spin work).
func buildDefault(t *testing.T) (*Session, *Plan) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.TrackBars = 4 // keep test setup fast
	s, g, err := BuildDJStar(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return s, p
}

// runSequential executes the plan in queue order (the reference executor).
func runSequential(p *Plan) {
	for _, id := range p.Order {
		p.Run[id]()
	}
}

func TestDJStarGraphShape(t *testing.T) {
	_, p := buildDefault(t)
	// Paper §IV: 67 nodes, 33 dependency-free sources.
	if p.Len() != 67 {
		t.Fatalf("node count = %d, want 67", p.Len())
	}
	if got := len(p.Sources()); got != 33 {
		t.Fatalf("source count = %d, want 33", got)
	}
	// Longest chain: SP -> FX1..FX4 -> Channel -> Mixer -> Master -> Out.
	if p.CriticalPathLen != 9 {
		t.Fatalf("critical path = %d nodes, want 9", p.CriticalPathLen)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDJStarNodeNamesUnique(t *testing.T) {
	_, p := buildDefault(t)
	seen := map[string]bool{}
	for _, n := range p.Names {
		if seen[n] {
			t.Fatalf("duplicate node name %q", n)
		}
		seen[n] = true
	}
	// Spot-check the Fig. 3 nodes exist.
	for _, want := range []string{"SPA1", "SPD4", "FXA1", "FXD4", "ChannelA",
		"ChannelD", "Mixer", "CueBuffer", "MonitorBuffer", "MasterBuffer",
		"AudioOut1", "RecordBuffer", "Sampler"} {
		if !seen[want] {
			t.Fatalf("node %q missing", want)
		}
	}
}

func TestDJStarSectionsAssigned(t *testing.T) {
	_, p := buildDefault(t)
	bySection := map[Section]int{}
	for _, s := range p.Sections {
		bySection[s]++
	}
	// 4 SP + 4 FX + 1 channel + 1 meter per deck = 10.
	for d := 0; d < 4; d++ {
		if got := bySection[DeckSection(d)]; got != 10 {
			t.Fatalf("section %v has %d nodes, want 10", DeckSection(d), got)
		}
	}
	if bySection[SectionControl] != 16 {
		t.Fatalf("control nodes = %d, want 16", bySection[SectionControl])
	}
	// 7 master-chain + 4 master meters = 11.
	if bySection[SectionMaster] != 11 {
		t.Fatalf("master nodes = %d, want 11", bySection[SectionMaster])
	}
}

func TestDJStarProducesAudio(t *testing.T) {
	s, p := buildDefault(t)
	var sawAudio bool
	for cycle := 0; cycle < 40; cycle++ {
		s.Prepare()
		runSequential(p)
		if s.MasterOut().Peak() > 0.01 {
			sawAudio = true
		}
	}
	if !sawAudio {
		t.Fatal("40 cycles produced no master output")
	}
	if s.Cycles() != 40 {
		t.Fatalf("Cycles = %d", s.Cycles())
	}
	// The monitor bus follows the cue/master path.
	if s.MonitorOut() == nil {
		t.Fatal("monitor buffer nil")
	}
}

func TestDJStarOutputIsBounded(t *testing.T) {
	s, p := buildDefault(t)
	for cycle := 0; cycle < 200; cycle++ {
		s.Prepare()
		runSequential(p)
		if peak := s.MasterOut().Peak(); peak > 0.98+1e-9 {
			t.Fatalf("cycle %d: output %v exceeds clip ceiling", cycle, peak)
		}
		if peak := s.RecordOut().Peak(); peak > 0.98+1e-9 {
			t.Fatalf("cycle %d: record %v exceeds clip ceiling", cycle, peak)
		}
	}
}

func TestDJStarActivityTracksLoudness(t *testing.T) {
	s, p := buildDefault(t)
	counts := map[bool]int{}
	// Run ~14 s of audio: the synthetic tracks alternate loud/quiet every
	// two bars, so both states must appear on deck A.
	for cycle := 0; cycle < 5000; cycle++ {
		s.Prepare()
		counts[s.DeckActive(0)]++
		_ = p
	}
	if counts[true] == 0 || counts[false] == 0 {
		t.Fatalf("activity never toggled: %v", counts)
	}
}

func TestDJStarSpectrumAndMeters(t *testing.T) {
	s, p := buildDefault(t)
	for cycle := 0; cycle < 50; cycle++ {
		s.Prepare()
		runSequential(p)
	}
	spec := s.Spectrum()
	if len(spec) != 64 {
		t.Fatalf("spectrum bins = %d", len(spec))
	}
	var nonZero bool
	for _, m := range spec {
		if m > 0 {
			nonZero = true
		}
	}
	if !nonZero {
		t.Fatal("spectrum all zero after 50 cycles")
	}
	if s.Loudness() <= 0 {
		t.Fatal("loudness meter never moved")
	}
}

func TestDJStarConfigVariants(t *testing.T) {
	for _, decks := range []int{1, 2, 3, 4} {
		cfg := DefaultConfig()
		cfg.Decks = decks
		cfg.TrackBars = 2
		s, g, err := BuildDJStar(cfg)
		if err != nil {
			t.Fatalf("decks=%d: %v", decks, err)
		}
		p, err := g.Compile()
		if err != nil {
			t.Fatalf("decks=%d: %v", decks, err)
		}
		want := decks*10 + 7 + 16 + 4
		if p.Len() != want {
			t.Fatalf("decks=%d: %d nodes, want %d", decks, p.Len(), want)
		}
		s.Prepare()
		runSequential(p)
	}
}

func TestDJStarNoFXVariant(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FXPerDeck = 0
	cfg.Meters = false
	cfg.ControlNodes = 0
	cfg.TrackBars = 2
	s, g, err := BuildDJStar(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	// 4*(4 SP + 1 channel) + 7 master nodes.
	if p.Len() != 27 {
		t.Fatalf("node count = %d, want 27", p.Len())
	}
	for i := 0; i < 20; i++ {
		s.Prepare()
		runSequential(p)
	}
	if s.MasterOut().Peak() == 0 {
		t.Fatal("no output without FX")
	}
}

func TestDJStarConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Decks = 0 },
		func(c *Config) { c.Decks = 5 },
		func(c *Config) { c.SPPerDeck = 0 },
		func(c *Config) { c.FXPerDeck = 9 },
		func(c *Config) { c.ControlNodes = -1 },
		func(c *Config) { c.Scale = -1 },
		func(c *Config) { c.Scale = 1 }, // without calibration
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, _, err := BuildDJStar(cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestDJStarCustomTracks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TrackBars = 2
	tr := synth.GenerateTrack(synth.TrackSpec{Name: "custom", Bars: 2, Seed: 42})
	cfg.Tracks = []*synth.Track{tr}
	s, _, err := BuildDJStar(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Decks[0].Track() != tr {
		t.Fatal("custom track not loaded on deck A")
	}
	if s.Decks[1].Track() == tr {
		t.Fatal("custom track leaked to deck B")
	}
}

func TestDJStarGraphExecutionNoAlloc(t *testing.T) {
	s, p := buildDefault(t)
	// Warm up (fills delay lines etc.).
	for i := 0; i < 5; i++ {
		s.Prepare()
		runSequential(p)
	}
	allocs := testing.AllocsPerRun(50, func() {
		s.Prepare()
		runSequential(p)
	})
	if allocs != 0 {
		t.Fatalf("graph cycle allocates %v per run, want 0", allocs)
	}
}

func TestDJStarControlNodeNames(t *testing.T) {
	_, p := buildDefault(t)
	var ctrl int
	for _, n := range p.Names {
		if strings.HasPrefix(n, "Ctrl") {
			ctrl++
		}
	}
	if ctrl != 16 {
		t.Fatalf("control nodes = %d, want 16", ctrl)
	}
}
