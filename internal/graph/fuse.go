package graph

import (
	"errors"
	"fmt"
	"strings"
)

// FuseOptions tunes the chain-fusion pass.
type FuseOptions struct {
	// MaxCostUS caps the summed estimated cost of one fused unit. Fusing
	// a linear chain can never lengthen the critical path (the members
	// were already sequential), but an over-large unit becomes an
	// indivisible lump the schedulers cannot balance across workers, so
	// the cap bounds granularity. 0 means automatic: a quarter of the
	// cost-weighted critical path, but never below twice the most
	// expensive single node (so uniform-cost chains still fuse in pairs).
	MaxCostUS float64
	// MaxLen caps the number of members per fused unit (0 = 8).
	MaxLen int
}

const defaultFuseMaxLen = 8

// Fuse compiles a lower-overhead execution plan from p by collapsing
// single-pred/single-succ chains of same-kind nodes into fused units. A
// chain carries no scheduling decision — its interior nodes have exactly
// one producer and one consumer — yet the unfused plan still pays one
// dependency-release handshake (atomic decrement, done-flag publish,
// possibly a deque push or wakeup) per hop. A fused unit is claimed once
// and runs its members back-to-back on one worker.
//
// costUS supplies per-node cost estimates in µs (from
// obs.Collector.CostModel or a static design table); nil means unit
// costs, which fuses purely by shape. The returned plan carries the
// original as Base and per-unit member lists in Members; the scheduler
// executes, times and fault-isolates each member individually under its
// base ID, so observability and quarantine semantics are unchanged.
//
// Fusing an already-fused plan is an error — re-fuse from the Base plan.
func Fuse(p *Plan, costUS []float64, o FuseOptions) (*Plan, error) {
	if p == nil || p.Len() == 0 {
		return nil, errors.New("graph: fuse of empty plan")
	}
	if p.IsFused() {
		return nil, errors.New("graph: plan is already fused (fuse the Base plan)")
	}
	n := p.Len()
	if costUS != nil && len(costUS) != n {
		return nil, fmt.Errorf("graph: fuse cost table has %d entries for %d nodes", len(costUS), n)
	}
	cost := func(id int32) float64 {
		if costUS == nil {
			return 1
		}
		return costUS[id]
	}

	maxLen := o.MaxLen
	if maxLen <= 0 {
		maxLen = defaultFuseMaxLen
	}
	maxCost := o.MaxCostUS
	if maxCost <= 0 {
		// Cost-weighted critical path (longest path by summed cost) and
		// the most expensive single node, via a reverse topological sweep.
		down := make([]float64, n)
		maxNode := 0.0
		for i := n - 1; i >= 0; i-- {
			id := p.Order[i]
			best := 0.0
			for _, s := range p.SuccsOf(id) {
				if down[s] > best {
					best = down[s]
				}
			}
			down[id] = cost(id) + best
			if c := cost(id); c > maxNode {
				maxNode = c
			}
		}
		cpUS := 0.0
		for _, d := range down {
			if d > cpUS {
				cpUS = d
			}
		}
		maxCost = cpUS / 4
		if floor := 2 * maxNode; maxCost < floor {
			maxCost = floor
		}
	}

	// Greedy chain extraction in queue order: each unassigned node heads
	// a unit, then the unit swallows its successor while the link is a
	// pure chain hop (single succ, single pred, same kind) and the caps
	// allow. Heads are visited topologically, so a swallowed node is
	// always claimed before its own Order slot comes up.
	assigned := make([]bool, n)
	var chains [][]int32
	memberOf := make([]int32, n)
	for _, head := range p.Order {
		if assigned[head] {
			continue
		}
		chain := []int32{head}
		assigned[head] = true
		sum := cost(head)
		tail := head
		for len(chain) < maxLen {
			succs := p.SuccsOf(tail)
			if len(succs) != 1 {
				break
			}
			next := succs[0]
			if assigned[next] || len(p.PredsOf(next)) != 1 || p.Kinds[next] != p.Kinds[head] {
				break
			}
			if sum+cost(next) > maxCost {
				break
			}
			chain = append(chain, next)
			assigned[next] = true
			sum += cost(next)
			tail = next
		}
		for _, m := range chain {
			memberOf[m] = int32(len(chains))
		}
		chains = append(chains, chain)
	}

	// Build the contracted graph. Contracting chains whose interior nodes
	// have no other edges cannot create a cycle (any fused edge lifts a
	// base path), so Compile's cycle check is a pure sanity net.
	super := New()
	for _, chain := range chains {
		head := chain[0]
		name := p.Names[head]
		if len(chain) > 1 {
			parts := make([]string, len(chain))
			for i, m := range chain {
				parts[i] = p.Names[m]
			}
			name = strings.Join(parts, "+")
		}
		members := chain
		sid := super.AddNode(name, p.Sections[head], func() {
			for _, m := range members {
				p.Run[m]()
			}
		})
		super.Node(sid).Kind = p.Kinds[head]
	}
	for v := int32(0); v < int32(n); v++ {
		for _, u := range p.PredsOf(v) {
			if su, sv := memberOf[u], memberOf[v]; su != sv {
				if err := super.AddEdge(int(su), int(sv)); err != nil {
					return nil, err
				}
			}
		}
	}
	fp, err := super.Compile()
	if err != nil {
		return nil, err
	}
	fp.Base = p
	fp.Members = chains

	// Re-rank the contracted plan with real unit costs (sum of members)
	// so RankOrder is critical-path-first under the supplied estimates.
	unitCost := make([]float64, len(chains))
	for i, chain := range chains {
		for _, m := range chain {
			unitCost[i] += cost(m)
		}
	}
	fp.computeRanks(unitCost)
	return fp, nil
}

// FusedUnits returns how many fused nodes contain more than one member
// (0 for an unfused plan).
func (p *Plan) FusedUnits() int {
	count := 0
	for _, m := range p.Members {
		if len(m) > 1 {
			count++
		}
	}
	return count
}
