package graph

import (
	"errors"
	"fmt"
	"testing"
)

// lineGraph builds a -> b -> c with per-node run counters.
func lineGraph(t *testing.T) (*Graph, []int) {
	t.Helper()
	g := New()
	runs := make([]int, 3)
	for i, name := range []string{"a", "b", "c"} {
		i := i
		g.AddNode(name, SectionMaster, func() { runs[i]++ })
	}
	mustEdge(g, 0, 1)
	mustEdge(g, 1, 2)
	return g, runs
}

// graphShape snapshots a graph's names and edge set for mutation checks.
func graphShape(g *Graph) string {
	s := ""
	for i := 0; i < g.Len(); i++ {
		s += fmt.Sprintf("%d:%s%v;", i, g.Node(i).Name, g.Node(i).Succs())
	}
	return s
}

func TestEditSetAddNodeAndEdges(t *testing.T) {
	g, _ := lineGraph(t)
	before := graphShape(g)

	es := &EditSet{}
	ran := 0
	x := es.AddNode(NodeSpec{Name: "x", Run: func() { ran++ }})
	es.AddEdge(NodeRef(0), x)
	es.AddEdge(x, NodeRef(2))

	g2, plan, r, err := g.Apply(es)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Len() != 4 || plan.Len() != 4 {
		t.Fatalf("got %d nodes, want 4", g2.Len())
	}
	// Survivors keep their IDs in order; the added node follows.
	for old := 0; old < 3; old++ {
		if r.OldToNew[old] != int32(old) {
			t.Fatalf("OldToNew[%d] = %d, want %d", old, r.OldToNew[old], old)
		}
	}
	newX := g2.NodeByName("x")
	if newX < 0 || r.NewToOld[newX] != -1 || r.StateSrc[newX] != -1 {
		t.Fatalf("added node remap wrong: id=%d NewToOld=%v StateSrc=%v", newX, r.NewToOld, r.StateSrc)
	}
	// The new node's edges made it into the plan.
	preds := plan.PredsOf(int32(newX))
	if len(preds) != 1 || preds[0] != 0 {
		t.Fatalf("x preds = %v, want [0]", preds)
	}
	if got := graphShape(g); got != before {
		t.Fatalf("Apply mutated the source graph:\n before %s\n after  %s", before, got)
	}
}

func TestEditSetRemoveNode(t *testing.T) {
	g, _ := lineGraph(t)
	es := &EditSet{}
	es.RemoveNode(NodeRef(1))

	g2, plan, r, err := g.Apply(es)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Len() != 2 {
		t.Fatalf("got %d nodes, want 2", plan.Len())
	}
	if r.OldToNew[1] != -1 {
		t.Fatalf("removed node still mapped: %v", r.OldToNew)
	}
	// a and c survive, compacted, and the b edges are gone (RemoveNode
	// detaches, it does not bridge).
	ia, ic := g2.NodeByName("a"), g2.NodeByName("c")
	if ia < 0 || ic < 0 {
		t.Fatalf("survivors missing: %v %v", ia, ic)
	}
	if len(plan.PredsOf(int32(ic))) != 0 {
		t.Fatalf("c should be orphaned after removing b, preds=%v", plan.PredsOf(int32(ic)))
	}
}

func TestEditSetReplaceChainStatePairing(t *testing.T) {
	// p -> d1 -> d2 -> s, replace [d1 d2] with one new node that should
	// inherit d1's state via StateSrc.
	g := New()
	g.AddNode("p", SectionMaster, nil)
	g.AddNode("d1", SectionMaster, nil)
	g.AddNode("d2", SectionMaster, nil)
	g.AddNode("s", SectionMaster, nil)
	g.Node(1).State = "state-d1"
	g.Node(2).State = "state-d2"
	mustEdge(g, 0, 1)
	mustEdge(g, 1, 2)
	mustEdge(g, 2, 3)

	var migrated any
	es := &EditSet{}
	refs := es.ReplaceChain([]NodeRef{1, 2}, NodeSpec{
		Name:    "dNew",
		Migrate: func(prev any) { migrated = prev },
	})
	if len(refs) != 1 || !refs[0].Added() {
		t.Fatalf("refs = %v", refs)
	}

	g2, plan, r, err := g.Apply(es)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Len() != 3 {
		t.Fatalf("got %d nodes, want 3", plan.Len())
	}
	nn := g2.NodeByName("dNew")
	if nn < 0 {
		t.Fatal("dNew missing")
	}
	if r.StateSrc[nn] != 1 {
		t.Fatalf("StateSrc[dNew] = %d, want 1 (d1)", r.StateSrc[nn])
	}
	// Rewiring: p -> dNew -> s.
	if preds := plan.PredsOf(int32(nn)); len(preds) != 1 || g2.Node(int(preds[0])).Name != "p" {
		t.Fatalf("dNew preds = %v", preds)
	}
	ns := g2.NodeByName("s")
	if preds := plan.PredsOf(int32(ns)); len(preds) != 1 || int(preds[0]) != nn {
		t.Fatalf("s preds = %v, want [dNew]", preds)
	}
	// Simulate the engine's migration step.
	if fn := plan.Migrate[nn]; fn != nil {
		fn(g.Node(int(r.StateSrc[nn])).State)
	}
	if migrated != "state-d1" {
		t.Fatalf("migrated = %v, want state-d1", migrated)
	}
	_ = migrated
}

func TestEditSetReplaceChainExcision(t *testing.T) {
	g, _ := lineGraph(t)
	es := &EditSet{}
	es.ReplaceChain([]NodeRef{1}) // excise b, bridge a -> c

	g2, plan, _, err := g.Apply(es)
	if err != nil {
		t.Fatal(err)
	}
	ia, ic := g2.NodeByName("a"), g2.NodeByName("c")
	if preds := plan.PredsOf(int32(ic)); len(preds) != 1 || int(preds[0]) != ia {
		t.Fatalf("bridge missing: c preds = %v", preds)
	}
}

func TestEditSetErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func(es *EditSet)
	}{
		{"dangling ref", func(es *EditSet) { es.RemoveNode(99) }},
		{"undefined added ref", func(es *EditSet) { es.AddEdge(NodeRef(-5), NodeRef(0)) }},
		{"duplicate edge", func(es *EditSet) { es.AddEdge(0, 1) }},
		{"self edge", func(es *EditSet) { es.AddEdge(1, 1) }},
		{"missing edge", func(es *EditSet) { es.RemoveEdge(0, 2) }},
		{"use after remove", func(es *EditSet) {
			es.RemoveNode(1)
			es.AddEdge(0, 1)
		}},
		{"nameless add", func(es *EditSet) { es.AddNode(NodeSpec{}) }},
		{"chain break", func(es *EditSet) { es.ReplaceChain([]NodeRef{0, 2}) }},
		{"chain dup", func(es *EditSet) { es.ReplaceChain([]NodeRef{1, 1}) }},
		{"empty chain", func(es *EditSet) { es.ReplaceChain(nil) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, _ := lineGraph(t)
			before := graphShape(g)
			es := &EditSet{}
			tc.build(es)
			if _, _, _, err := g.Apply(es); !errors.Is(err, ErrBadEdit) {
				t.Fatalf("err = %v, want ErrBadEdit", err)
			}
			if got := graphShape(g); got != before {
				t.Fatalf("failed Apply mutated the graph")
			}
		})
	}
}

func TestEditSetCycleRejected(t *testing.T) {
	g, _ := lineGraph(t)
	es := &EditSet{}
	es.AddEdge(NodeRef(2), NodeRef(0)) // closes a -> b -> c -> a
	if _, _, _, err := g.Apply(es); err == nil {
		t.Fatal("cycle-closing edit accepted")
	}
}

func TestEditSetRemoveAllRejected(t *testing.T) {
	g, _ := lineGraph(t)
	es := &EditSet{}
	for i := 0; i < 3; i++ {
		es.RemoveNode(NodeRef(i))
	}
	if _, _, _, err := g.Apply(es); err == nil {
		t.Fatal("edit emptying the graph accepted")
	}
}

func TestRemapCompose(t *testing.T) {
	g, _ := lineGraph(t)

	// Epoch A -> B: remove b.
	es1 := &EditSet{}
	es1.RemoveNode(NodeRef(1))
	g2, _, r1, err := g.Apply(es1)
	if err != nil {
		t.Fatal(err)
	}
	// Epoch B -> C: add x feeding c.
	es2 := &EditSet{}
	x := es2.AddNode(NodeSpec{Name: "x"})
	es2.AddEdge(x, NodeRef(g2.NodeByName("c")))
	g3, _, r2, err := g2.Apply(es2)
	if err != nil {
		t.Fatal(err)
	}

	r := r1.Compose(r2)
	if len(r.OldToNew) != 3 || len(r.NewToOld) != g3.Len() {
		t.Fatalf("composed sizes: %d/%d", len(r.OldToNew), len(r.NewToOld))
	}
	if r.OldToNew[1] != -1 {
		t.Fatalf("b should stay removed across composition: %v", r.OldToNew)
	}
	// a and c map A -> C directly and invert correctly.
	for _, name := range []string{"a", "c"} {
		oldID := g.NodeByName(name)
		newID := r.OldToNew[oldID]
		if newID < 0 || g3.Node(int(newID)).Name != name {
			t.Fatalf("%s lost across composition: %v", name, r.OldToNew)
		}
		if r.NewToOld[newID] != int32(oldID) || r.StateSrc[newID] != int32(oldID) {
			t.Fatalf("%s inverse mapping wrong", name)
		}
	}
	if nx := g3.NodeByName("x"); r.NewToOld[nx] != -1 || r.StateSrc[nx] != -1 {
		t.Fatalf("x should have no A-epoch source: %v %v", r.NewToOld, r.StateSrc)
	}
}

func TestIdentityRemap(t *testing.T) {
	r := IdentityRemap(4)
	for i := 0; i < 4; i++ {
		if r.OldToNew[i] != int32(i) || r.NewToOld[i] != int32(i) || r.StateSrc[i] != int32(i) {
			t.Fatalf("identity broken at %d: %+v", i, r)
		}
	}
}

// checkRemapInvariants verifies the structural contract between a source
// graph, an edit result and its remap. Shared by the fuzz target.
func checkRemapInvariants(g, g2 *Graph, plan *Plan, r *Remap) error {
	if g2.Len() != plan.Len() {
		return fmt.Errorf("graph/plan size mismatch: %d vs %d", g2.Len(), plan.Len())
	}
	if len(r.OldToNew) != g.Len() || len(r.NewToOld) != g2.Len() || len(r.StateSrc) != g2.Len() {
		return fmt.Errorf("remap sizes wrong: %d/%d/%d for %d->%d",
			len(r.OldToNew), len(r.NewToOld), len(r.StateSrc), g.Len(), g2.Len())
	}
	for old, nn := range r.OldToNew {
		if nn < 0 {
			continue
		}
		if int(nn) >= g2.Len() {
			return fmt.Errorf("OldToNew[%d] = %d out of range", old, nn)
		}
		if r.NewToOld[nn] != int32(old) {
			return fmt.Errorf("OldToNew/NewToOld not inverse at old %d", old)
		}
		if g.Node(old).Name != g2.Node(int(nn)).Name {
			return fmt.Errorf("survivor renamed: %q -> %q", g.Node(old).Name, g2.Node(int(nn)).Name)
		}
	}
	for nn, old := range r.NewToOld {
		if old >= 0 && r.OldToNew[old] != int32(nn) {
			return fmt.Errorf("NewToOld/OldToNew not inverse at new %d", nn)
		}
	}
	for nn, src := range r.StateSrc {
		if src >= 0 && int(src) >= g.Len() {
			return fmt.Errorf("StateSrc[%d] = %d out of range", nn, src)
		}
	}
	return nil
}

// FuzzEditSet drives random op sequences (decoded from the fuzz input)
// against a seeded random DAG and checks that Apply either rejects the
// set or produces a compiled plan whose remap satisfies the epoch
// contract — and never mutates the source graph either way.
func FuzzEditSet(f *testing.F) {
	f.Add([]byte{1, 0, 1, 2}, uint64(1))
	f.Add([]byte{0, 3, 2, 0, 4, 1}, uint64(7))
	f.Add([]byte{4, 2, 1, 3, 0, 0, 5}, uint64(42))
	f.Fuzz(func(t *testing.T, data []byte, seed uint64) {
		g, _ := RandomDAG(RandomSpec{Nodes: 8, EdgeProb: 0.3, Seed: seed})
		before := graphShape(g)

		es := &EditSet{}
		adds := 0
		// ref decodes one operand byte into a NodeRef over the base nodes
		// plus any nodes this set has added so far.
		ref := func(b byte) NodeRef {
			total := g.Len() + adds
			v := int(b) % total
			if v < g.Len() {
				return NodeRef(v)
			}
			return NodeRef(-(v - g.Len() + 1))
		}
		for i := 0; i+1 < len(data) && es.Len() < 16; {
			op := data[i] % 5
			switch op {
			case 0:
				es.AddNode(NodeSpec{Name: fmt.Sprintf("add%d", adds)})
				adds++
				i++
			case 1:
				es.RemoveNode(ref(data[i+1]))
				i += 2
			case 2, 3:
				if i+2 >= len(data) {
					i = len(data)
					break
				}
				if op == 2 {
					es.AddEdge(ref(data[i+1]), ref(data[i+2]))
				} else {
					es.RemoveEdge(ref(data[i+1]), ref(data[i+2]))
				}
				i += 3
			case 4:
				n := int(data[i+1])%3 + 1
				chain := make([]NodeRef, 0, n)
				for j := 0; j < n && i+2+j < len(data); j++ {
					chain = append(chain, ref(data[i+2+j]))
				}
				if len(chain) > 0 {
					r := es.ReplaceChain(chain, NodeSpec{Name: fmt.Sprintf("rep%d", adds)})
					adds += len(r)
				}
				i += 2 + n
			}
		}

		g2, plan, r, err := g.Apply(es)
		if err != nil {
			if g2 != nil || plan != nil || r != nil {
				t.Fatalf("failed Apply returned non-nil results: %v", err)
			}
		} else if ierr := checkRemapInvariants(g, g2, plan, r); ierr != nil {
			t.Fatal(ierr)
		}
		if got := graphShape(g); got != before {
			t.Fatalf("Apply mutated the source graph:\n before %s\n after  %s", before, got)
		}
	})
}
