package graph

import (
	"fmt"

	"djstar/internal/audio"
	"djstar/internal/deck"
	"djstar/internal/dsp"
	"djstar/internal/effects"
	"djstar/internal/faults"
	"djstar/internal/mixer"
	"djstar/internal/synth"
)

// Config parameterizes the standard DJ Star graph. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// Rate is the sampling rate (audio.SampleRate by default).
	Rate int
	// Decks is the number of active decks, 1..4.
	Decks int
	// SPPerDeck is the number of sample-player filter sources per deck.
	SPPerDeck int
	// FXPerDeck is the effect chain length per deck, 0..4.
	FXPerDeck int
	// ControlNodes is the number of short dependency-free control nodes.
	ControlNodes int
	// Meters enables the eight metering nodes.
	Meters bool
	// Scale is the global node cost scale: 1.0 reproduces the paper's
	// microsecond-scale node costs via calibrated spin work; 0 disables
	// spin work entirely (pure DSP, used by fast unit tests).
	Scale float64
	// Calibration converts cost targets to spin units. Required when
	// Scale > 0.
	Calibration Calibration
	// Tracks provides the deck audio. Missing entries are filled with the
	// standard synthetic tracks.
	Tracks []*synth.Track
	// TrackBars sizes the default synthetic tracks (16 bars ≈ 30 s).
	TrackBars int
	// Faults, when set, wraps every node with the injector so failure
	// scenarios (panic, stall, slow, jitter) fire at scripted cycles.
	// Session.Prepare advances the injector's cycle counter.
	Faults *faults.Injector
	// LoadFactor, when set, scales every node's spin cost target at run
	// time (shared with the engine's TP/GP/VC loads); the engine's
	// deadline governor and overload experiments drive it.
	LoadFactor *LoadFactor
}

// DefaultConfig returns the paper's evaluation configuration: 4 decks,
// 4 SP sources and 4 effects each, 16 control nodes, meters on — the
// 67-node graph with 33 sources.
func DefaultConfig() Config {
	return Config{
		Rate:         audio.SampleRate,
		Decks:        4,
		SPPerDeck:    4,
		FXPerDeck:    4,
		ControlNodes: 16,
		Meters:       true,
		Scale:        0,
		TrackBars:    16,
	}
}

func (c *Config) normalize() error {
	if c.Rate <= 0 {
		c.Rate = audio.SampleRate
	}
	if c.Decks < 1 || c.Decks > 4 {
		return fmt.Errorf("graph: Decks = %d, want 1..4", c.Decks)
	}
	if c.SPPerDeck < 1 || c.SPPerDeck > 4 {
		return fmt.Errorf("graph: SPPerDeck = %d, want 1..4", c.SPPerDeck)
	}
	if c.FXPerDeck < 0 || c.FXPerDeck > 4 {
		return fmt.Errorf("graph: FXPerDeck = %d, want 0..4", c.FXPerDeck)
	}
	if c.ControlNodes < 0 {
		return fmt.Errorf("graph: ControlNodes = %d, want >= 0", c.ControlNodes)
	}
	if c.Scale < 0 {
		return fmt.Errorf("graph: Scale = %v, want >= 0", c.Scale)
	}
	if c.Scale > 0 && c.Calibration.NanosPerUnit <= 0 {
		return fmt.Errorf("graph: Scale %v requires a Calibration", c.Scale)
	}
	if c.TrackBars <= 0 {
		c.TrackBars = 16
	}
	return nil
}

// Session owns the audio state the DJ Star graph operates on: decks,
// effect racks, mixer, buses and all packet buffers. All buffers are
// preallocated; executing the graph does not allocate.
type Session struct {
	cfg Config

	// Decks are the track players feeding the graph.
	Decks []*deck.Deck
	// Strips are the mixer channel strips, one per deck.
	Strips []*mixer.ChannelStrip
	// Mix is the crossfader/master/cue mixer.
	Mix *mixer.Mixer
	// Sampler is the one-shot clip player mixed into the master.
	Sampler *mixer.Sampler

	// FX holds each deck's effect chain; FX[d][j] is unit j of deck d.
	FX [][]effects.Effect

	deckIn     []audio.Stereo // per deck: preprocessed input packet (GP)
	active     []bool         // per deck: loud input this cycle
	spBuf      [][]audio.Stereo
	spFiltL    [][]*dsp.Biquad
	spFiltR    [][]*dsp.Biquad
	deckMix    []audio.Stereo
	chanInputs []mixer.ChannelInput

	samplerBuf  audio.Stereo
	masterMix   audio.Stereo
	masterBuf   audio.Stereo
	masterMono  audio.Buffer
	cueBuf      audio.Stereo
	monitorMono audio.Buffer
	outBuf      audio.Stereo
	recordBuf   audio.Stereo

	outStage *mixer.OutputStage
	recStage *mixer.OutputStage

	deckMeters []*mixer.VUMeter
	masterVU   *mixer.VUMeter
	cueVU      *mixer.VUMeter
	spectrum   *dsp.FFT
	specRe     []float64
	specIm     []float64
	specMag    []float64
	loudness   float64

	controlState []float64

	cycles int64 // Prepare invocations
}

// Cycles returns how many times Prepare has run.
func (s *Session) Cycles() int64 { return s.cycles }

// MasterOut returns the buffer written by the AudioOut1 node (valid after
// a graph execution).
func (s *Session) MasterOut() audio.Stereo { return s.outBuf }

// MonitorOut returns the mono monitor buffer.
func (s *Session) MonitorOut() audio.Buffer { return s.monitorMono }

// RecordOut returns the record-path buffer.
func (s *Session) RecordOut() audio.Stereo { return s.recordBuf }

// Spectrum returns the magnitude spectrum computed by the Spectrum node.
func (s *Session) Spectrum() []float64 { return s.specMag }

// Loudness returns the smoothed master loudness.
func (s *Session) Loudness() float64 { return s.loudness }

// DeckActive reports whether deck d's input was above the activity
// threshold in the last prepared cycle.
func (s *Session) DeckActive(d int) bool { return s.active[d] }

// DeckMixRMS returns the RMS of deck d's post-FX mix buffer from the last
// graph execution; chaos experiments use it to count silent packets after
// a fault flush.
func (s *Session) DeckMixRMS(d int) float64 { return s.deckMix[d].RMS() }

// OutputStage exposes the AudioOut1 limiter/clipper for diagnostics.
func (s *Session) OutputStage() *mixer.OutputStage { return s.outStage }

// activityThreshold is the RMS above which a deck's packet counts as
// "loud", switching its FX nodes onto the expensive path. The synthetic
// tracks' loud bars sit well above it, quiet bars well below.
const activityThreshold = 0.05

// Prepare runs the per-cycle preprocessing stage (GP in the paper's APC
// decomposition): it pulls one packet from every deck through the time
// stretcher, updates the activity flags and advances the sampler state.
// It must be called before each graph execution and never concurrently
// with one.
func (s *Session) Prepare() {
	if s.cfg.Faults != nil {
		s.cfg.Faults.BeginCycle()
	}
	for d, dk := range s.Decks {
		dk.ReadPacket(s.deckIn[d])
		s.active[d] = s.deckIn[d].RMS() > activityThreshold
	}
	s.cycles++
}

// BuildDJStar constructs the standard DJ Star task graph and its session
// state. The returned Graph is ready to Compile; the Session must have
// Prepare called once per cycle before executing the compiled plan.
func BuildDJStar(cfg Config) (*Session, *Graph, error) {
	if err := cfg.normalize(); err != nil {
		return nil, nil, err
	}
	s := newSession(cfg)
	g := New()

	// add registers a node whose cost is topped up to the target: the
	// kernel runs the real DSP and returns whether the node's input was
	// "active" (loud), which selects the data-dependent extra cost. The
	// meta carries the node's degradation classification and its
	// quarantine/shed bypass and fault-flush hooks; the fault injector
	// (when configured) wraps the finished run function so scripted
	// failures fire inside the node, under the scheduler's recovery.
	type meta struct {
		kind   NodeKind
		bypass func()
		flush  func()
	}
	addMeta := func(name string, sec Section, c Cost, kernel func() bool, x meta) int {
		l := NewLoad(c, cfg.Calibration, cfg.Scale).WithFactor(cfg.LoadFactor)
		var run func()
		if !l.Enabled() {
			run = func() { kernel() }
		} else {
			run = func() {
				start := nowNanos()
				active := kernel()
				l.RunSince(start, active)
			}
		}
		if cfg.Faults != nil {
			run = cfg.Faults.Wrap(name, run)
		}
		id := g.AddNode(name, sec, run)
		n := g.Node(id)
		n.Kind = x.kind
		n.Bypass = x.bypass
		n.Flush = x.flush
		return id
	}

	deckNames := []string{"A", "B", "C", "D"}
	channelIDs := make([]int, cfg.Decks)

	for d := 0; d < cfg.Decks; d++ {
		d := d
		sec := DeckSection(d)
		spIDs := make([]int, cfg.SPPerDeck)

		// SP sources: per-band filters over the deck's input packet.
		for i := 0; i < cfg.SPPerDeck; i++ {
			i := i
			spIDs[i] = addMeta(fmt.Sprintf("SP%s%d", deckNames[d], i+1), sec, CostSP, func() bool {
				buf := s.spBuf[d][i]
				buf.CopyFrom(s.deckIn[d])
				s.spFiltL[d][i].Process(buf.L)
				s.spFiltR[d][i].Process(buf.R)
				return s.active[d]
			}, meta{
				kind:   KindAudio,
				bypass: func() { s.spBuf[d][i].CopyFrom(s.deckIn[d]) },
				flush:  func() { s.spBuf[d][i].Zero() },
			})
		}

		// FX chain: FX1 gathers the SP bands, FX2..FXn process in place.
		// FX1's bypass gathers the dry mix without the effect so the chain
		// stays fed while FX1 is quarantined or shed; the in-place units'
		// nil bypass means "skip", which passes the dry signal through.
		gather := func() {
			mix := s.deckMix[d]
			mix.Zero()
			gain := 1 / float64(cfg.SPPerDeck)
			for _, sp := range s.spBuf[d] {
				mix.AddFrom(sp, gain)
			}
		}
		prev := -1
		for j := 0; j < cfg.FXPerDeck; j++ {
			j := j
			var kernel func() bool
			x := meta{
				kind:  KindFX,
				flush: func() { s.deckMix[d].Zero() },
			}
			if j == 0 {
				kernel = func() bool {
					gather()
					s.FX[d][0].Process(s.deckMix[d])
					return s.active[d]
				}
				x.bypass = gather
			} else {
				kernel = func() bool {
					s.FX[d][j].Process(s.deckMix[d])
					return s.active[d]
				}
			}
			id := addMeta(fmt.Sprintf("FX%s%d", deckNames[d], j+1), sec, CostFX, kernel, x)
			if j == 0 {
				for _, sp := range spIDs {
					mustEdge(g, sp, id)
				}
			} else {
				mustEdge(g, prev, id)
			}
			prev = id
		}

		// Channel strip.
		{
			x := meta{
				kind:  KindAudio,
				flush: func() { s.deckMix[d].Zero() },
			}
			if cfg.FXPerDeck == 0 {
				// Without FX the channel gathers the SP bands itself, so a
				// quarantined channel must still gather or the deck goes
				// stale; with FX the strip is in-place and skipping it
				// passes the deck mix through.
				x.bypass = gather
			}
			id := addMeta("Channel"+deckNames[d], sec, CostChannel, func() bool {
				if cfg.FXPerDeck == 0 {
					gather()
				}
				s.Strips[d].Process(s.deckMix[d])
				return s.active[d]
			}, x)
			if prev >= 0 {
				mustEdge(g, prev, id)
			} else {
				for _, sp := range spIDs {
					mustEdge(g, sp, id)
				}
			}
			channelIDs[d] = id
		}
	}

	// Sampler source.
	samplerID := addMeta("Sampler", SectionMaster, CostSampler, func() bool {
		s.Sampler.ReadPacket(s.samplerBuf)
		return s.Sampler.Playing()
	}, meta{
		kind:   KindAudio,
		bypass: func() { s.samplerBuf.Zero() },
		flush:  func() { s.samplerBuf.Zero() },
	})

	// Mixer: all channels + sampler.
	mixerID := addMeta("Mixer", SectionMaster, CostMixer, func() bool {
		s.Mix.MixInto(s.masterMix, s.chanInputs, s.samplerBuf)
		return true
	}, meta{
		kind:   KindAudio,
		bypass: func() { s.masterMix.Zero() },
		flush:  func() { s.masterMix.Zero() },
	})
	for _, ch := range channelIDs {
		mustEdge(g, ch, mixerID)
	}
	mustEdge(g, samplerID, mixerID)

	// Cue buffer (needs the channels and the mixed master for blending).
	cueID := addMeta("CueBuffer", SectionMaster, CostCue, func() bool {
		s.Mix.CueInto(s.cueBuf, s.chanInputs, s.masterMix)
		return true
	}, meta{
		kind:   KindAudio,
		bypass: func() { s.cueBuf.Zero() },
		flush:  func() { s.cueBuf.Zero() },
	})
	mustEdge(g, mixerID, cueID)

	// Monitor buffer: mono downmix of the cue bus.
	monitorID := addMeta("MonitorBuffer", SectionMaster, CostMonitor, func() bool {
		s.cueBuf.Mono(s.monitorMono)
		return true
	}, meta{
		kind:   KindAudio,
		bypass: func() { s.monitorMono.Zero() },
		flush:  func() { s.monitorMono.Zero() },
	})
	mustEdge(g, cueID, monitorID)

	// Master buffer: snapshot + mono reference of the mix.
	masterID := addMeta("MasterBuffer", SectionMaster, CostMaster, func() bool {
		s.masterBuf.CopyFrom(s.masterMix)
		s.masterBuf.Mono(s.masterMono)
		return true
	}, meta{
		kind: KindAudio,
		bypass: func() {
			s.masterBuf.Zero()
			s.masterMono.Zero()
		},
		flush: func() {
			s.masterBuf.Zero()
			s.masterMono.Zero()
		},
	})
	mustEdge(g, mixerID, masterID)

	// Output and record paths.
	outID := addMeta("AudioOut1", SectionMaster, CostOut, func() bool {
		s.outBuf.CopyFrom(s.masterBuf)
		s.outStage.Process(s.outBuf)
		return true
	}, meta{
		kind:   KindAudio,
		bypass: func() { s.outBuf.Zero() },
		flush:  func() { s.outBuf.Zero() },
	})
	mustEdge(g, masterID, outID)

	recordID := addMeta("RecordBuffer", SectionMaster, CostRecord, func() bool {
		s.recordBuf.CopyFrom(s.masterBuf)
		s.recStage.Process(s.recordBuf)
		return true
	}, meta{
		kind:   KindAudio,
		bypass: func() { s.recordBuf.Zero() },
		flush:  func() { s.recordBuf.Zero() },
	})
	mustEdge(g, masterID, recordID)

	// Control sources: short, dependency-free, do not modify audio
	// (paper: "some have no dependencies and do not modify the audio
	// packets ... we also included them for a fair average").
	ctrlKinds := []string{"BeatGrid", "TempoSync", "KeyDisplay", "PhaseMeter"}
	for i := 0; i < cfg.ControlNodes; i++ {
		i := i
		kind := ctrlKinds[i%len(ctrlKinds)]
		d := i % cfg.Decks
		addMeta(fmt.Sprintf("Ctrl%s%s", kind, deckNames[d]+suffix(i/len(ctrlKinds))),
			SectionControl, CostControl, func() bool {
				// Tiny deterministic state update (beat phase tracking).
				s.controlState[i] = 0.9*s.controlState[i] + 0.1*s.Decks[d].BeatPhase()
				return false
			}, meta{kind: KindControl})
	}

	// Metering nodes.
	if cfg.Meters {
		for d := 0; d < cfg.Decks; d++ {
			d := d
			id := addMeta("Meter"+deckNames[d], DeckSection(d), CostMeter, func() bool {
				s.deckMeters[d].Update(s.deckMix[d])
				return false
			}, meta{kind: KindMeter})
			mustEdge(g, channelIDs[d], id)
		}
		id := addMeta("MasterVU", SectionMaster, CostMeter, func() bool {
			s.masterVU.Update(s.masterBuf)
			return false
		}, meta{kind: KindMeter})
		mustEdge(g, masterID, id)

		id = addMeta("CueVU", SectionMaster, CostMeter, func() bool {
			s.cueVU.Update(s.cueBuf)
			return false
		}, meta{kind: KindMeter})
		mustEdge(g, cueID, id)

		id = addMeta("Spectrum", SectionMaster, CostMeter, func() bool {
			n := s.spectrum.Size()
			for i := 0; i < n; i++ {
				if i < len(s.masterMono) {
					s.specRe[i] = s.masterMono[i]
				} else {
					s.specRe[i] = 0
				}
				s.specIm[i] = 0
			}
			s.spectrum.Transform(s.specRe, s.specIm)
			dsp.Magnitudes(s.specRe, s.specIm, s.specMag)
			return false
		}, meta{kind: KindMeter})
		mustEdge(g, masterID, id)

		id = addMeta("Loudness", SectionMaster, CostMeter, func() bool {
			s.loudness = 0.95*s.loudness + 0.05*s.masterBuf.RMS()
			return false
		}, meta{kind: KindMeter})
		mustEdge(g, masterID, id)
	}

	return s, g, nil
}

// suffix distinguishes repeated control nodes ("", "2", "3", ...).
func suffix(i int) string {
	if i == 0 {
		return ""
	}
	return fmt.Sprintf("%d", i+1)
}

func mustEdge(g *Graph, from, to int) {
	if err := g.AddEdge(from, to); err != nil {
		panic(err) // builder bug: indices are generated locally
	}
}

// newSession allocates all state and buffers for the configuration.
func newSession(cfg Config) *Session {
	n := audio.PacketSize
	s := &Session{
		cfg:          cfg,
		Mix:          mixer.NewMixer(),
		Sampler:      mixer.NewSampler(),
		samplerBuf:   audio.NewStereo(n),
		masterMix:    audio.NewStereo(n),
		masterBuf:    audio.NewStereo(n),
		masterMono:   audio.NewBuffer(n),
		cueBuf:       audio.NewStereo(n),
		monitorMono:  audio.NewBuffer(n),
		outBuf:       audio.NewStereo(n),
		recordBuf:    audio.NewStereo(n),
		outStage:     mixer.NewOutputStage(0.98, cfg.Rate),
		recStage:     mixer.NewOutputStage(0.98, cfg.Rate),
		masterVU:     mixer.NewVUMeter(0.95),
		cueVU:        mixer.NewVUMeter(0.95),
		spectrum:     dsp.MustFFT(128),
		controlState: make([]float64, max(cfg.ControlNodes, 1)),
	}
	s.specRe = make([]float64, 128)
	s.specIm = make([]float64, 128)
	s.specMag = make([]float64, 64)

	deckNames := []string{"deck-a", "deck-b", "deck-c", "deck-d"}
	tempos := []float64{1.0, 0.97, 1.03, 0.99}
	var defaultTracks [4]*synth.Track
	haveDefaults := false

	for d := 0; d < cfg.Decks; d++ {
		dk := deck.New(deckNames[d], cfg.Rate)
		var tr *synth.Track
		if d < len(cfg.Tracks) && cfg.Tracks[d] != nil {
			tr = cfg.Tracks[d]
		} else {
			if !haveDefaults {
				defaultTracks = synth.StandardDeckTracks(cfg.TrackBars)
				haveDefaults = true
			}
			tr = defaultTracks[d]
		}
		dk.Load(tr)
		dk.SetLoop(0, float64(tr.Len())) // loop forever for long runs
		dk.SetTempo(tempos[d])
		dk.SetKeyLock(d%2 == 1) // two decks exercise the pitch shifter
		dk.Play()
		s.Decks = append(s.Decks, dk)

		strip := mixer.NewChannelStrip("channel-"+deckNames[d], cfg.Rate)
		if d%2 == 0 {
			strip.SetCrossfadeSide(mixer.CrossfadeA)
		} else {
			strip.SetCrossfadeSide(mixer.CrossfadeB)
		}
		s.Strips = append(s.Strips, strip)

		s.deckIn = append(s.deckIn, audio.NewStereo(n))
		s.deckMix = append(s.deckMix, audio.NewStereo(n))
		s.active = append(s.active, false)

		// SP band filters: split the spectrum into SPPerDeck bands.
		bands := []struct {
			kind dsp.FilterKind
			freq float64
		}{
			{dsp.LowPass, 200},
			{dsp.BandPass, 800},
			{dsp.BandPass, 3000},
			{dsp.HighPass, 8000},
		}
		var bufs []audio.Stereo
		var fl, fr []*dsp.Biquad
		for i := 0; i < cfg.SPPerDeck; i++ {
			b := bands[i%len(bands)]
			bufs = append(bufs, audio.NewStereo(n))
			fl = append(fl, dsp.NewBiquad(b.kind, b.freq, 0.8, 0, cfg.Rate))
			fr = append(fr, dsp.NewBiquad(b.kind, b.freq, 0.8, 0, cfg.Rate))
		}
		s.spBuf = append(s.spBuf, bufs)
		s.spFiltL = append(s.spFiltL, fl)
		s.spFiltR = append(s.spFiltR, fr)

		// Effect chain.
		chain := effects.StandardChain(d, cfg.Rate)
		units := make([]effects.Effect, cfg.FXPerDeck)
		for j := 0; j < cfg.FXPerDeck; j++ {
			units[j] = chain[j]
			units[j].SetWet(0.25)
		}
		s.FX = append(s.FX, units)

		s.chanInputs = append(s.chanInputs, mixer.ChannelInput{
			Strip:  strip,
			Packet: s.deckMix[d],
		})

		s.deckMeters = append(s.deckMeters, mixer.NewVUMeter(0.95))
	}

	// A short sampler clip (air-horn-ish burst).
	clipLen := cfg.Rate / 4
	clip := audio.NewStereo(clipLen)
	osc := synth.NewOsc(synth.Saw, 880, cfg.Rate)
	for i := 0; i < clipLen; i++ {
		env := 1 - float64(i)/float64(clipLen)
		v := osc.Next() * env * 0.5
		clip.L[i] = v
		clip.R[i] = v
	}
	s.Sampler.LoadClip(clip)

	return s
}
