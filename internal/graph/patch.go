package graph

import (
	"fmt"
	"strconv"
	"strings"

	"djstar/internal/audio"
)

// Live-performance patch vocabulary: a small, serializable set of
// topology edits a performer can apply mid-set (djstar stdin, -script
// timed cues, POST /api/edit). Each spec compiles to an EditSet against
// the engine's current graph:
//
//	insert-delay:<deck>[:units]  insert a chain of in-place stereo
//	                             delay nodes between Channel<deck> and
//	                             all of its successors
//	remove-delay:<deck>          excise that chain again, bridging the
//	                             channel back to its old successors
//	drop-node:<name>             remove a sink node (no successors),
//	                             e.g. a meter
//
// The delay nodes carry their delay lines in Node.State with a Migrate
// hook, so re-patching around them (or re-inserting after a remove)
// preserves the audible tail instead of clicking.

// liveDelayMS is the delay time of one inserted delay unit.
const liveDelayMS = 120

// liveDelayState is the migratable state of one live delay node: the
// circular delay lines and write position.
type liveDelayState struct {
	bufL, bufR []float64
	pos        int
}

func newLiveDelayState(rate int) *liveDelayState {
	n := rate * liveDelayMS / 1000
	if n < audio.PacketSize {
		n = audio.PacketSize
	}
	return &liveDelayState{bufL: make([]float64, n), bufR: make([]float64, n)}
}

// adopt carries a previous epoch's delay line over. Differing lengths
// (e.g. a config change) copy the newest samples.
func (st *liveDelayState) adopt(prev *liveDelayState) {
	if prev == nil || len(prev.bufL) == 0 {
		return
	}
	if len(prev.bufL) == len(st.bufL) {
		copy(st.bufL, prev.bufL)
		copy(st.bufR, prev.bufR)
		st.pos = prev.pos
		return
	}
	for i := range st.bufL {
		j := (prev.pos - 1 - i + 2*len(prev.bufL)) % len(prev.bufL)
		k := (st.pos - 1 - i + 2*len(st.bufL)) % len(st.bufL)
		st.bufL[k] = prev.bufL[j]
		st.bufR[k] = prev.bufR[j]
		if i >= len(prev.bufL)-1 {
			break
		}
	}
}

// process runs the feedback delay in place over one packet.
func (st *liveDelayState) process(pkt audio.Stereo, feedback, wet float64) {
	n := len(st.bufL)
	for i := 0; i < pkt.Len(); i++ {
		dl, dr := st.bufL[st.pos], st.bufR[st.pos]
		st.bufL[st.pos] = pkt.L[i] + dl*feedback
		st.bufR[st.pos] = pkt.R[i] + dr*feedback
		pkt.L[i] += dl * wet
		pkt.R[i] += dr * wet
		st.pos++
		if st.pos >= n {
			st.pos = 0
		}
	}
}

// NodeByName returns the ID of the node with the given name, or -1.
func (g *Graph) NodeByName(name string) int {
	for _, n := range g.nodes {
		if n.Name == name {
			return n.ID
		}
	}
	return -1
}

// liveDelayName names unit i (1-based) of deck's live delay chain.
func liveDelayName(deck string, i int) string {
	return fmt.Sprintf("LiveDelay%s%d", deck, i)
}

// BuildPatch compiles a patch spec into an EditSet against g, which
// must be (a descendant of) the graph this session was built with. The
// session owns the audio buffers the patched nodes process, so specs
// are resolved against it (deck count, sample rate, mix buffers).
func (s *Session) BuildPatch(g *Graph, spec string) (*EditSet, error) {
	parts := strings.Split(strings.TrimSpace(spec), ":")
	switch parts[0] {
	case "insert-delay":
		if len(parts) < 2 {
			return nil, fmt.Errorf("graph: patch %q: want insert-delay:<deck>[:units]", spec)
		}
		units := 1
		if len(parts) >= 3 {
			u, err := strconv.Atoi(parts[2])
			if err != nil || u < 1 || u > 8 {
				return nil, fmt.Errorf("graph: patch %q: units must be 1..8", spec)
			}
			units = u
		}
		return s.buildInsertDelay(g, parts[1], units)
	case "remove-delay":
		if len(parts) != 2 {
			return nil, fmt.Errorf("graph: patch %q: want remove-delay:<deck>", spec)
		}
		return s.buildRemoveDelay(g, parts[1])
	case "drop-node":
		if len(parts) != 2 || parts[1] == "" {
			return nil, fmt.Errorf("graph: patch %q: want drop-node:<name>", spec)
		}
		return buildDropNode(g, parts[1])
	default:
		return nil, fmt.Errorf("graph: unknown patch %q", spec)
	}
}

// deckIndex resolves "A".."D" against the session's configured decks.
func (s *Session) deckIndex(deck string) (int, error) {
	names := []string{"A", "B", "C", "D"}
	for d := 0; d < s.cfg.Decks; d++ {
		if names[d] == deck {
			return d, nil
		}
	}
	return 0, fmt.Errorf("graph: no deck %q (have %d decks)", deck, s.cfg.Decks)
}

// buildInsertDelay inserts `units` chained delay nodes downstream of
// Channel<deck>: every current successor of the channel is retargeted
// to the chain tail. Retargeting ALL successors (mixer and meter alike)
// matters — the delays process s.deckMix[deck] in place, so any old
// direct successor still reading that buffer would race with them.
func (s *Session) buildInsertDelay(g *Graph, deck string, units int) (*EditSet, error) {
	d, err := s.deckIndex(deck)
	if err != nil {
		return nil, err
	}
	chID := g.NodeByName("Channel" + deck)
	if chID < 0 {
		return nil, fmt.Errorf("graph: patch: no Channel%s node", deck)
	}
	if g.NodeByName(liveDelayName(deck, 1)) >= 0 {
		return nil, fmt.Errorf("graph: patch: deck %s already has a live delay", deck)
	}
	succs := append([]int(nil), g.Node(chID).Succs()...)

	es := &EditSet{}
	prev := NodeRef(chID)
	for i := 1; i <= units; i++ {
		st := newLiveDelayState(s.cfg.Rate)
		mix := s.deckMix[d]
		ref := es.AddNode(NodeSpec{
			Name:    liveDelayName(deck, i),
			Section: DeckSection(d),
			Kind:    KindFX,
			Run:     func() { st.process(mix, 0.45, 0.5) },
			Flush:   func() { mix.Zero() },
			State:   st,
			Migrate: func(prev any) {
				if p, ok := prev.(*liveDelayState); ok {
					st.adopt(p)
				}
			},
		})
		es.AddEdge(prev, ref)
		prev = ref
	}
	for _, succ := range succs {
		es.RemoveEdge(NodeRef(chID), NodeRef(succ))
		es.AddEdge(prev, NodeRef(succ))
	}
	return es, nil
}

// buildRemoveDelay excises deck's live delay chain; ReplaceChain with
// no specs bridges Channel<deck> back to the chain's successors.
func (s *Session) buildRemoveDelay(g *Graph, deck string) (*EditSet, error) {
	if _, err := s.deckIndex(deck); err != nil {
		return nil, err
	}
	var chain []NodeRef
	for i := 1; ; i++ {
		id := g.NodeByName(liveDelayName(deck, i))
		if id < 0 {
			break
		}
		chain = append(chain, NodeRef(id))
	}
	if len(chain) == 0 {
		return nil, fmt.Errorf("graph: patch: deck %s has no live delay", deck)
	}
	es := &EditSet{}
	es.ReplaceChain(chain)
	return es, nil
}

// buildDropNode removes a sink node (no successors) by name — dropping
// a node something depends on would silently unfeed it.
func buildDropNode(g *Graph, name string) (*EditSet, error) {
	id := g.NodeByName(name)
	if id < 0 {
		return nil, fmt.Errorf("graph: patch: no node %q", name)
	}
	if len(g.Node(id).Succs()) > 0 {
		return nil, fmt.Errorf("graph: patch: %q has successors; only sinks can be dropped", name)
	}
	es := &EditSet{}
	es.RemoveNode(NodeRef(id))
	return es, nil
}
