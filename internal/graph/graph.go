// Package graph implements DJ Star's central data structure: the audio
// task graph (paper §IV). Nodes are audio computations, edges are data
// dependencies. The package provides the DAG builder, validation, the
// depth-ordered queue ("nodes are inserted column by column and from left
// to right"), a compiled execution Plan consumed by the schedulers in
// package sched, the standard 67-node DJ Star graph, and a random-DAG
// generator for property tests.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Section labels the region of the mixer a node belongs to. Work stealing
// uses it to seed worker-local queues with same-section sources ("we
// categorize the source nodes as Deck A/B/C/D or Master", paper §V-C).
type Section int

const (
	SectionDeckA Section = iota
	SectionDeckB
	SectionDeckC
	SectionDeckD
	SectionMaster
	SectionControl
	numSections
)

// String returns the section label.
func (s Section) String() string {
	switch s {
	case SectionDeckA:
		return "deck-a"
	case SectionDeckB:
		return "deck-b"
	case SectionDeckC:
		return "deck-c"
	case SectionDeckD:
		return "deck-d"
	case SectionMaster:
		return "master"
	case SectionControl:
		return "control"
	default:
		return "unknown"
	}
}

// DeckSection returns the section constant for deck index d (0..3).
func DeckSection(d int) Section {
	return Section(int(SectionDeckA) + d%4)
}

// NodeKind classifies a node for the engine's graceful-degradation
// ladder: under deadline pressure the governor sheds KindMeter and
// KindControl nodes first (invisible to the audio path), then bypasses
// KindFX nodes (audible but intact), and never sheds KindAudio nodes.
type NodeKind int

const (
	// KindAudio nodes are load-bearing for the signal path (SP sources,
	// channels, mixer, output); they are never shed.
	KindAudio NodeKind = iota
	// KindFX nodes are effect units with a safe pass-through bypass.
	KindFX
	// KindMeter nodes compute UI-only metering (VU, spectrum, loudness).
	KindMeter
	// KindControl nodes are short UI/sync computations (beat grids etc.).
	KindControl
)

// String returns the kind label.
func (k NodeKind) String() string {
	switch k {
	case KindAudio:
		return "audio"
	case KindFX:
		return "fx"
	case KindMeter:
		return "meter"
	case KindControl:
		return "control"
	default:
		return "unknown"
	}
}

// Node is one vertex of the task graph.
type Node struct {
	// ID is the node's index in the graph, assigned by AddNode.
	ID int
	// Name is a short label ("SPA1", "FXB2", "Mixer").
	Name string
	// Section locates the node in the mixer topology.
	Section Section
	// Kind classifies the node for load shedding (KindAudio by default).
	Kind NodeKind
	// Run executes the node's computation. It must be safe to call from
	// any worker thread; mutual exclusion between nodes sharing buffers is
	// provided by the dependency edges.
	Run func()
	// Bypass, when non-nil, is the cheap stand-in the scheduler runs
	// instead of Run while the node is quarantined or shed (e.g. gather
	// the dry mix without the effect). A nil Bypass means the node is
	// simply skipped — correct for in-place processors, whose input
	// buffer then passes through untouched.
	Bypass func()
	// Flush, when non-nil, silences the node's output buffer after Run
	// panicked mid-write, so a half-written packet is never audible.
	Flush func()
	// State is the node's migratable state handle (filter memories, delay
	// lines, meter accumulators). The graph never touches it; it exists so
	// a live edit (Graph.Apply) can hand it to a successor node's Migrate
	// hook when the topology is swapped under a running engine.
	State any
	// Migrate, when non-nil, is invoked once when a plan containing this
	// node is adopted by a live engine, with the State of the node it
	// descends from in the previous epoch (nil for a brand-new node). It
	// runs on the cycle thread between two cycles, so it may touch audio
	// state freely.
	Migrate func(prev any)

	deps  []int
	succs []int
}

// Deps returns the IDs of the node's predecessors (do not modify).
func (n *Node) Deps() []int { return n.deps }

// Succs returns the IDs of the node's successors (do not modify).
func (n *Node) Succs() []int { return n.succs }

// Graph is a mutable task-graph builder. Build the graph with AddNode and
// AddEdge, then Compile it into an immutable Plan for execution.
type Graph struct {
	nodes []*Node
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// Node returns the node with the given ID.
func (g *Graph) Node(id int) *Node { return g.nodes[id] }

// Nodes returns all nodes in ID order (do not modify the slice).
func (g *Graph) Nodes() []*Node { return g.nodes }

// AddNode appends a node and returns its ID. A nil run function is
// replaced with a no-op so structural tests can build shape-only graphs.
func (g *Graph) AddNode(name string, section Section, run func()) int {
	if run == nil {
		run = func() {}
	}
	n := &Node{ID: len(g.nodes), Name: name, Section: section, Run: run}
	g.nodes = append(g.nodes, n)
	return n.ID
}

// AddEdge adds a dependency: to cannot run before from has finished.
// Duplicate edges are ignored.
func (g *Graph) AddEdge(from, to int) error {
	if from < 0 || from >= len(g.nodes) || to < 0 || to >= len(g.nodes) {
		return fmt.Errorf("graph: edge %d->%d out of range [0,%d)", from, to, len(g.nodes))
	}
	if from == to {
		return fmt.Errorf("graph: self-edge on node %d (%s)", from, g.nodes[from].Name)
	}
	for _, d := range g.nodes[to].deps {
		if d == from {
			return nil
		}
	}
	g.nodes[to].deps = append(g.nodes[to].deps, from)
	g.nodes[from].succs = append(g.nodes[from].succs, to)
	return nil
}

// ErrCycle is returned by Compile when the graph is not acyclic.
var ErrCycle = errors.New("graph: dependency cycle")

// Plan is the immutable, execution-ready form of a graph. All index slices
// use int32 to keep the scheduler's hot data compact.
type Plan struct {
	// Names and Sections are per-node metadata (indexed by node ID).
	Names    []string
	Sections []Section
	// Kinds classifies each node for the degradation ladder.
	Kinds []NodeKind
	// Run holds each node's work function.
	Run []func()
	// Bypass holds each node's quarantine/shed stand-in (nil = skip).
	Bypass []func()
	// Flush holds each node's output-silencing hook (nil = nothing to
	// silence), run after a recovered node panic.
	Flush []func()
	// States holds each node's migratable state handle (nil = stateless);
	// Migrate the per-node adoption hooks. Both are consulted only when a
	// live edit swaps this plan in under a running engine (see Node.State
	// and Node.Migrate).
	States  []any
	Migrate []func(prev any)
	// Order is the queue insertion order: ascending depth, ties broken by
	// node ID ("column by column and from left to right", paper §IV).
	Order []int32
	// Dependency adjacency in CSR (compressed sparse row) form: the
	// predecessors of node i are PredList[PredIdx[i]:PredIdx[i+1]], its
	// successors SuccList[SuccIdx[i]:SuccIdx[i+1]]. One flat array per
	// direction keeps the per-cycle release walk on contiguous cache
	// lines instead of chasing one heap slice per node. Use PredsOf /
	// SuccsOf; do not modify.
	PredIdx, PredList []int32
	SuccIdx, SuccList []int32
	// Indegree is the predecessor count per node, precomputed for the
	// schedulers' pending-counter reset.
	Indegree []int32
	// Depth is the longest path (in edges) from any source to the node.
	Depth []int32
	// Rank is the HEFT-style upward rank: the node's cost plus the most
	// expensive downstream path to a sink. Compile fills it with unit
	// costs (rank = longest hop count below, a pure structure metric);
	// Fuse recomputes it from real per-node cost estimates.
	Rank []float64
	// RankOrder lists all node IDs by descending Rank, ties broken by
	// Order position. Because every edge u→v implies Rank(u) > Rank(v)
	// for positive costs, RankOrder is itself a valid topological order —
	// the schedulers use it so critical-path nodes are claimed first.
	RankOrder []int32
	// SourceIDs lists all dependency-free nodes in ID order, precomputed
	// so Sources() on the per-cycle path never allocates.
	SourceIDs []int32
	// SourcesBySection lists dependency-free nodes grouped by section, in
	// ID order; used by work stealing's locality-aware initial fill.
	SourcesBySection map[Section][]int32
	// CriticalPathLen is the number of nodes on the longest path.
	CriticalPathLen int

	// Base and Members are set only on plans produced by Fuse: Base is
	// the original unfused plan and Members[i] lists the base-plan node
	// IDs executed (in dependency order) by fused node i. Observability
	// and fault isolation stay per-member: the scheduler runs, times and
	// quarantines each member individually under its base ID.
	Base    *Plan
	Members [][]int32
}

// Len returns the number of nodes in the plan.
func (p *Plan) Len() int { return len(p.Run) }

// BaseLen returns the node count of the original plan: Len() for a
// regular plan, Base.Len() for a fused one. Observer and fault-state
// arrays are sized by BaseLen because they are indexed by base node IDs.
func (p *Plan) BaseLen() int {
	if p.Base != nil {
		return p.Base.Len()
	}
	return p.Len()
}

// IsFused reports whether the plan was produced by Fuse.
func (p *Plan) IsFused() bool { return p.Base != nil }

// MembersOf returns the base-plan node IDs fused into node id, or nil if
// the plan is unfused (execute id directly).
func (p *Plan) MembersOf(id int32) []int32 {
	if p.Members == nil {
		return nil
	}
	return p.Members[id]
}

// PredsOf returns the predecessor IDs of node id (do not modify).
func (p *Plan) PredsOf(id int32) []int32 {
	return p.PredList[p.PredIdx[id]:p.PredIdx[id+1]]
}

// SuccsOf returns the successor IDs of node id (do not modify).
func (p *Plan) SuccsOf(id int32) []int32 {
	return p.SuccList[p.SuccIdx[id]:p.SuccIdx[id+1]]
}

// PredLists materializes the per-node predecessor lists (always non-nil,
// so they serialize as [] rather than null). It allocates; use it for
// serialization and offline analysis, not on the cycle path.
func (p *Plan) PredLists() [][]int32 {
	out := make([][]int32, p.Len())
	for i := range out {
		seg := p.PredsOf(int32(i))
		out[i] = make([]int32, len(seg))
		copy(out[i], seg)
	}
	return out
}

// SuccLists materializes the per-node successor lists (allocates;
// entries are always non-nil, like PredLists).
func (p *Plan) SuccLists() [][]int32 {
	out := make([][]int32, p.Len())
	for i := range out {
		seg := p.SuccsOf(int32(i))
		out[i] = make([]int32, len(seg))
		copy(out[i], seg)
	}
	return out
}

// Sources returns all dependency-free node IDs in ID order. The slice is
// precomputed at compile time (do not modify).
func (p *Plan) Sources() []int32 { return p.SourceIDs }

// Compile validates the graph (non-empty, acyclic) and produces a Plan.
func (g *Graph) Compile() (*Plan, error) {
	n := len(g.nodes)
	if n == 0 {
		return nil, errors.New("graph: empty graph")
	}

	// Kahn's algorithm: topological order + cycle detection.
	indeg := make([]int32, n)
	for _, node := range g.nodes {
		indeg[node.ID] = int32(len(node.deps))
	}
	queue := make([]int, 0, n)
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	depth := make([]int32, n)
	seen := 0
	work := append([]int32(nil), indeg...)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		seen++
		for _, s := range g.nodes[id].succs {
			if d := depth[id] + 1; d > depth[s] {
				depth[s] = d
			}
			work[s]--
			if work[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if seen != n {
		return nil, fmt.Errorf("%w: %d of %d nodes reachable in topological order", ErrCycle, seen, n)
	}

	// Queue order: by depth, then ID.
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		if depth[order[a]] != depth[order[b]] {
			return depth[order[a]] < depth[order[b]]
		}
		return order[a] < order[b]
	})

	p := &Plan{
		Names:            make([]string, n),
		Sections:         make([]Section, n),
		Kinds:            make([]NodeKind, n),
		Run:              make([]func(), n),
		Bypass:           make([]func(), n),
		Flush:            make([]func(), n),
		States:           make([]any, n),
		Migrate:          make([]func(prev any), n),
		Order:            order,
		Indegree:         indeg,
		Depth:            depth,
		SourcesBySection: make(map[Section][]int32),
	}
	maxDepth := int32(0)
	edges := 0
	for _, node := range g.nodes {
		i := node.ID
		p.Names[i] = node.Name
		p.Sections[i] = node.Section
		p.Kinds[i] = node.Kind
		p.Run[i] = node.Run
		p.Bypass[i] = node.Bypass
		p.Flush[i] = node.Flush
		p.States[i] = node.State
		p.Migrate[i] = node.Migrate
		edges += len(node.deps)
		if depth[i] > maxDepth {
			maxDepth = depth[i]
		}
		if len(node.deps) == 0 {
			p.SourceIDs = append(p.SourceIDs, int32(i))
			p.SourcesBySection[node.Section] = append(p.SourcesBySection[node.Section], int32(i))
		}
	}
	p.CriticalPathLen = int(maxDepth) + 1

	// CSR adjacency: one offset array plus one flat ID array per
	// direction, so the scheduler's dependency walks touch contiguous
	// memory.
	p.PredIdx = make([]int32, n+1)
	p.SuccIdx = make([]int32, n+1)
	p.PredList = make([]int32, 0, edges)
	p.SuccList = make([]int32, 0, edges)
	for _, node := range g.nodes {
		p.PredList = append(p.PredList, toInt32(node.deps)...)
		p.PredIdx[node.ID+1] = int32(len(p.PredList))
		p.SuccList = append(p.SuccList, toInt32(node.succs)...)
		p.SuccIdx[node.ID+1] = int32(len(p.SuccList))
	}

	p.computeRanks(nil)
	return p, nil
}

// computeRanks fills Rank and RankOrder from per-node costs in µs (nil =
// unit costs) and sorts each node's successor segment by descending rank
// so the release walk wakes the most critical successor first. Rank is
// the classic HEFT upward rank on a single machine class:
//
//	rank(i) = cost(i) + max over successors s of rank(s)
//
// Every edge u→v therefore gives Rank(u) ≥ Rank(v) + cost(u) > Rank(v)
// when costs are positive, so descending rank is a topological order and
// the list-based schedulers can substitute RankOrder for Order without
// touching their deadlock-freedom argument.
func (p *Plan) computeRanks(costUS []float64) {
	n := p.Len()
	p.Rank = make([]float64, n)
	cost := func(id int32) float64 {
		if costUS == nil {
			return 1
		}
		return costUS[id]
	}
	// Order is topological, so a reverse sweep sees all successors first.
	for i := n - 1; i >= 0; i-- {
		id := p.Order[i]
		best := 0.0
		for _, s := range p.SuccsOf(id) {
			if p.Rank[s] > best {
				best = p.Rank[s]
			}
		}
		p.Rank[id] = cost(id) + best
	}

	posOf := make([]int32, n)
	for pos, id := range p.Order {
		posOf[id] = int32(pos)
	}
	p.RankOrder = make([]int32, n)
	for i := range p.RankOrder {
		p.RankOrder[i] = int32(i)
	}
	sort.SliceStable(p.RankOrder, func(a, b int) bool {
		x, y := p.RankOrder[a], p.RankOrder[b]
		if p.Rank[x] != p.Rank[y] {
			return p.Rank[x] > p.Rank[y]
		}
		return posOf[x] < posOf[y]
	})
	for id := int32(0); id < int32(n); id++ {
		seg := p.SuccList[p.SuccIdx[id]:p.SuccIdx[id+1]]
		sort.SliceStable(seg, func(a, b int) bool {
			return p.Rank[seg[a]] > p.Rank[seg[b]]
		})
	}
}

// PlanFromLists rebuilds a structural Plan (names, order, CSR adjacency,
// no-op run functions) from per-node predecessor lists — the shape a
// flight-recorder bundle serializes. The result supports the offline
// analyses (Validate, critical path) but is not executable.
func PlanFromLists(names []string, order []int32, preds [][]int32) *Plan {
	n := len(names)
	p := &Plan{
		Names:    append([]string(nil), names...),
		Sections: make([]Section, n),
		Kinds:    make([]NodeKind, n),
		Run:      make([]func(), n),
		Bypass:   make([]func(), n),
		Flush:    make([]func(), n),
		States:   make([]any, n),
		Migrate:  make([]func(prev any), n),
		Order:    append([]int32(nil), order...),
		Indegree: make([]int32, n),
		Depth:    make([]int32, n),
	}
	for i := range p.Run {
		p.Run[i] = func() {}
	}
	succs := make([][]int32, n)
	p.PredIdx = make([]int32, n+1)
	p.SuccIdx = make([]int32, n+1)
	for i := 0; i < n; i++ {
		p.PredList = append(p.PredList, preds[i]...)
		p.PredIdx[i+1] = int32(len(p.PredList))
		p.Indegree[i] = int32(len(preds[i]))
		for _, d := range preds[i] {
			succs[d] = append(succs[d], int32(i))
		}
		if len(preds[i]) == 0 {
			p.SourceIDs = append(p.SourceIDs, int32(i))
		}
	}
	for i := 0; i < n; i++ {
		p.SuccList = append(p.SuccList, succs[i]...)
		p.SuccIdx[i+1] = int32(len(p.SuccList))
	}
	p.computeRanks(nil)
	return p
}

func toInt32(xs []int) []int32 {
	out := make([]int32, len(xs))
	for i, x := range xs {
		out[i] = int32(x)
	}
	return out
}

// Validate checks the queue-order invariant the sequential implementation
// relies on ("nodes in the same column do not carry dependencies to other
// nodes in the same column"): every dependency must appear strictly
// earlier in Order. Compile output always satisfies this; the check exists
// for tests and for hand-built plans.
func (p *Plan) Validate() error {
	posOf := make([]int32, p.Len())
	for pos, id := range p.Order {
		posOf[id] = int32(pos)
	}
	for id := int32(0); id < int32(p.Len()); id++ {
		for _, d := range p.PredsOf(id) {
			if posOf[d] >= posOf[id] {
				return fmt.Errorf("graph: order violates dependency %s -> %s",
					p.Names[d], p.Names[id])
			}
		}
	}
	return nil
}
