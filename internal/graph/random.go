package graph

import (
	"fmt"
	"sync/atomic"

	"djstar/internal/synth"
)

// RandomSpec configures RandomDAG.
type RandomSpec struct {
	// Nodes is the graph size (>= 1).
	Nodes int
	// EdgeProb is the probability of an edge between each earlier/later
	// node pair, in [0, 1].
	EdgeProb float64
	// MaxDeps caps the indegree per node (0 = unlimited).
	MaxDeps int
	// Seed makes the graph reproducible.
	Seed uint64
}

// RandomDAG generates a random acyclic task graph whose node Run functions
// record execution into the returned Trace. Edges always point from a
// lower to a higher ID, guaranteeing acyclicity by construction; Compile's
// cycle check is exercised separately.
func RandomDAG(spec RandomSpec) (*Graph, *ExecTrace) {
	if spec.Nodes < 1 {
		spec.Nodes = 1
	}
	rng := synth.NewRand(spec.Seed)
	g := New()
	tr := NewExecTrace(spec.Nodes)
	for i := 0; i < spec.Nodes; i++ {
		i := i
		sec := Section(rng.Intn(int(numSections)))
		g.AddNode(fmt.Sprintf("n%d", i), sec, func() { tr.Record(i) })
	}
	for to := 1; to < spec.Nodes; to++ {
		deps := 0
		for from := 0; from < to; from++ {
			if spec.MaxDeps > 0 && deps >= spec.MaxDeps {
				break
			}
			if rng.Float64() < spec.EdgeProb {
				if err := g.AddEdge(from, to); err != nil {
					panic(err)
				}
				deps++
			}
		}
	}
	return g, tr
}

// ExecTrace records, thread-safely, the global order in which nodes ran.
// Property tests use it to assert that every scheduler executes each node
// exactly once and never before its dependencies.
type ExecTrace struct {
	seq   atomic.Int64
	stamp []atomic.Int64 // 0 = not run; otherwise 1-based sequence number
}

// NewExecTrace returns a trace for n nodes.
func NewExecTrace(n int) *ExecTrace {
	return &ExecTrace{stamp: make([]atomic.Int64, n)}
}

// Record marks node id as executed now. It panics on double execution,
// which is always a scheduler bug.
func (t *ExecTrace) Record(id int) {
	s := t.seq.Add(1)
	if !t.stamp[id].CompareAndSwap(0, s) {
		panic(fmt.Sprintf("graph: node %d executed twice", id))
	}
}

// Reset clears the trace for the next iteration.
func (t *ExecTrace) Reset() {
	t.seq.Store(0)
	for i := range t.stamp {
		t.stamp[i].Store(0)
	}
}

// Stamp returns node id's 1-based execution sequence number (0 = not run).
func (t *ExecTrace) Stamp(id int) int64 { return t.stamp[id].Load() }

// Check verifies that every node ran exactly once and no node ran before
// one of its dependencies. It returns a descriptive error on violation.
func (t *ExecTrace) Check(p *Plan) error {
	for i := 0; i < p.Len(); i++ {
		if t.Stamp(i) == 0 {
			return fmt.Errorf("graph: node %d (%s) never executed", i, p.Names[i])
		}
	}
	for i := 0; i < p.Len(); i++ {
		for _, d := range p.PredsOf(int32(i)) {
			if t.Stamp(int(d)) > t.Stamp(i) {
				return fmt.Errorf("graph: node %d (%s) ran before dependency %d (%s)",
					i, p.Names[i], d, p.Names[d])
			}
		}
	}
	return nil
}
