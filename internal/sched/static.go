package sched

import (
	"fmt"

	"djstar/internal/graph"
)

// Static executes a precomputed offline schedule: each worker runs a
// fixed, externally supplied node list in order, busy-waiting on
// dependencies exactly like BusyWait. It models the MCFlow-style
// offline-scheduling alternative the paper's related work contrasts with
// ("the scheduling decision in MCFlow is taken offline while we use an
// online scheduling which enables us to dynamically load-balance"): with
// imbalanced, data-dependent node costs a static assignment computed from
// average durations cannot adapt, which is measurable in the ablation
// harness.
//
// Static shares the listSpinPolicy with BusyWait — the strategies are
// identical at run time and differ only in where the lists come from.
type Static struct {
	*core
}

// NameStatic is the strategy identifier for the offline executor.
const NameStatic = "static"

// NewStatic returns a scheduler executing the given per-worker node
// lists. Every node must appear exactly once across the lists, and each
// list must be dependency-consistent with the plan's queue order in the
// sense that execution can always make progress (any assignment is safe
// for liveness here because workers busy-wait on cross-list dependencies;
// a poor assignment only costs time — but an assignment where two workers
// wait on each other's *later* nodes would deadlock, so lists must be
// consistent with some global topological order; assignments derived from
// a schedule, e.g. rescon.Result, always are).
func NewStatic(p *graph.Plan, lists [][]int32, o Options) (*Static, error) {
	if p == nil || p.Len() == 0 {
		return nil, fmt.Errorf("sched: empty plan")
	}
	if len(lists) < 1 {
		return nil, fmt.Errorf("sched: static schedule needs at least one worker list")
	}
	seen := make([]bool, p.Len())
	count := 0
	for _, l := range lists {
		for _, id := range l {
			if id < 0 || int(id) >= p.Len() {
				return nil, fmt.Errorf("sched: static schedule references node %d of %d", id, p.Len())
			}
			if seen[id] {
				return nil, fmt.Errorf("sched: node %d (%s) assigned twice", id, p.Names[id])
			}
			seen[id] = true
			count++
		}
	}
	if count != p.Len() {
		return nil, fmt.Errorf("sched: static schedule covers %d of %d nodes", count, p.Len())
	}
	pol := &listSpinPolicy{strategy: NameStatic, lists: lists}
	return &Static{core: newCore(p, len(lists), o.Observer, pol, waitSpin)}, nil
}

// FromScheduleOrder builds per-worker lists from a processor assignment
// and start times (e.g. a rescon.Result): worker w's list is its assigned
// nodes sorted by scheduled start.
func FromScheduleOrder(p *graph.Plan, proc []int32, start []float64, workers int) ([][]int32, error) {
	if len(proc) != p.Len() || len(start) != p.Len() {
		return nil, fmt.Errorf("sched: schedule arrays have length %d/%d, want %d",
			len(proc), len(start), p.Len())
	}
	lists := make([][]int32, workers)
	// Insert nodes in global start order so each list is start-sorted.
	order := make([]int32, p.Len())
	for i := range order {
		order[i] = int32(i)
	}
	// Stable insertion sort by start time (n = 67; simplicity wins).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && start[order[j]] < start[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, id := range order {
		w := int(proc[id])
		if w < 0 || w >= workers {
			return nil, fmt.Errorf("sched: node %d assigned to processor %d of %d", id, w, workers)
		}
		lists[w] = append(lists[w], id)
	}
	return lists, nil
}
