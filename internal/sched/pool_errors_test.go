package sched

import (
	"errors"
	"testing"

	"djstar/internal/graph"
)

// TestPoolTypedSentinels: Attach failures are distinguishable with
// errors.Is — callers (the engine's admission gate, MultiEngine) branch
// on pool-full vs pool-closed instead of string matching.
func TestPoolTypedSentinels(t *testing.T) {
	p, err := NewPool(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := graph.RandomDAG(graph.RandomSpec{Nodes: 5, EdgeProb: 0.2, Seed: 7})
	plan, _ := g.Compile()
	s, err := p.Attach(plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Attach(plan, Options{})
	if !errors.Is(err, ErrPoolFull) {
		t.Fatalf("full pool err = %v, want ErrPoolFull", err)
	}
	if errors.Is(err, ErrPoolClosed) {
		t.Fatal("full and closed sentinels overlap")
	}
	s.Close()
	p.Close()
	if _, err := p.Attach(plan, Options{}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("closed pool err = %v, want ErrPoolClosed", err)
	}
}
