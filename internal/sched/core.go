package sched

import (
	"runtime"
	"sync/atomic"

	"djstar/internal/graph"
)

// policy is the strategy-specific part of a scheduler: how one worker
// selects and runs its share of a cycle, and how per-cycle policy state
// is reset. Everything else — worker spawning, OS-thread pinning, cycle
// dispatch, completion signaling, observer plumbing, teardown — lives in
// core and is shared by every strategy.
//
// A policy's runCycle must execute only nodes whose dependencies have
// completed this cycle, using the core's done stamps (spin disciplines)
// or pending counters (blocking disciplines), and must return once the
// worker's share of the iteration is finished.
type policy interface {
	// name is the strategy identifier returned by Scheduler.Name.
	name() string
	// beginCycle resets per-cycle policy state. It runs on the Execute
	// caller before any worker is released.
	beginCycle(c *core)
	// runCycle is worker w's participation in the iteration gen.
	runCycle(c *core, w int32, gen uint64)
	// prestage builds the policy's per-plan state (node lists, deques)
	// for a staged plan. It runs on the STAGING goroutine, possibly
	// concurrent with a cycle in flight, so it must only read immutable
	// policy configuration — never the live per-cycle state.
	prestage(p *graph.Plan, threads int) any
	// replan installs per-plan state after a topology swap: pre is the
	// prestage result (rebuilt inline when nil). It runs on the adoption
	// thread between cycles (see core.AdoptStaged).
	replan(c *core, pre any)
	// closing is called once when the core shuts down, before workers
	// are released from their between-cycle wait.
	closing(c *core)
}

// waitMode is a policy's between-cycle worker discipline.
type waitMode int

const (
	// waitSpin keeps idle workers spinning on the generation counter
	// across cycle boundaries (BUSY, STATIC): zero wake-up cost.
	waitSpin waitMode = iota
	// waitBlock parks idle workers on a channel between cycles (SLEEP,
	// SLEEPSCAN, WS): no idle CPU burn, pays wake-up latency.
	waitBlock
)

// cacheLine is the coherence granularity the hot cross-worker state is
// padded to. 64 bytes covers x86-64 and current arm64 server cores.
const cacheLine = 64

// padUint64 is an atomic.Uint64 alone on its cache line: the leading pad
// separates it from whatever field precedes it in the enclosing struct,
// the trailing pad from whatever follows.
type padUint64 struct {
	_ [cacheLine]byte
	v atomic.Uint64
	_ [cacheLine - 8]byte
}

// padInt32 is an atomic.Int32 alone on its cache line.
type padInt32 struct {
	_ [cacheLine]byte
	v atomic.Int32
	_ [cacheLine - 4]byte
}

// doneStamp is one node's done generation, striped to a full cache line
// so a worker publishing node i's completion never invalidates the line
// a neighbor is spinning on for node i±1.
type doneStamp struct {
	v atomic.Uint64
	_ [cacheLine - 8]byte
}

// depCount is one node's pending-dependency counter, striped like
// doneStamp: different workers decrement different nodes' counters
// concurrently on every cycle.
type depCount struct {
	v atomic.Int32
	_ [cacheLine - 4]byte
}

// core owns the worker pool and per-cycle machinery shared by all
// parallel strategies: persistent OS-thread-pinned workers, the
// generation/epoch dispatch that starts a cycle, completion signaling,
// the per-node done/pending state, and the observer hook. All of it is
// allocation-free in steady state, per the package contract.
type core struct {
	// faultState provides panic recovery, quarantine and load shedding
	// for every node execution (promoted Scheduler methods).
	*faultState

	plan    *graph.Plan
	threads int
	// obs is the construction-time observer (nil = none); fixed for the
	// scheduler's lifetime, so workers read it without synchronization.
	obs  Observer
	pol  policy
	mode waitMode

	// done[i] stores the generation in which node i last completed; a
	// node is done for the current cycle when done[i] == generation.
	// Used by spin-discipline policies. One cache line per node.
	done []doneStamp
	// pending[i] counts node i's unfinished dependencies this cycle.
	// Used by block-discipline policies; reset via resetPending. One
	// cache line per node.
	pending []depCount

	// generation is the cycle counter; waitSpin workers spin on it.
	// Padded: every worker reads it in its spin loop while worker 0
	// writes finished-adjacent state, so it must not share a line with
	// finished or the channels below.
	generation padUint64
	// finished counts workers that completed the cycle (waitSpin); all
	// workers write it at the cycle tail while worker 0 spins reading
	// it. Padded for the same reason as generation.
	finished padInt32
	// start and doneCh dispatch and collect cycles (waitBlock).
	start  []chan struct{}
	doneCh chan struct{}

	// staged holds a pending topology swap plus everything adoption will
	// need pre-allocated (see swap.go); published by StageSwap from any
	// goroutine, consumed by AdoptStaged between cycles on the Execute
	// thread.
	staged atomic.Pointer[stagedSwap]

	closed atomic.Bool
}

// newCore builds the shared runtime for a policy and starts threads-1
// persistent workers; the Execute caller acts as worker 0. The caller
// must have validated the plan/thread combination already.
func newCore(p *graph.Plan, threads int, obs Observer, pol policy, mode waitMode) *core {
	c := &core{
		faultState: newFaultState(p, threads),
		plan:       p,
		threads:    threads,
		obs:        obs,
		pol:        pol,
		mode:       mode,
		done:       make([]doneStamp, p.Len()),
		pending:    make([]depCount, p.Len()),
	}
	if mode == waitBlock {
		c.start = make([]chan struct{}, threads)
		c.doneCh = make(chan struct{}, threads)
		for w := 0; w < threads; w++ {
			c.start[w] = make(chan struct{}, 1)
		}
	}
	for w := 1; w < threads; w++ {
		go c.worker(int32(w))
	}
	return c
}

// resetPending reloads every pending counter from the plan's indegrees.
// Policies that use the pending counters call this from beginCycle,
// before any worker is released.
func (c *core) resetPending() {
	for i := range c.pending {
		c.pending[i].v.Store(c.plan.Indegree[i])
	}
}

// worker is the persistent loop for workers 1..threads-1.
func (c *core) worker(w int32) {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	switch c.mode {
	case waitSpin:
		lastGen := uint64(0)
		for {
			// Spin until the next cycle begins (or shutdown).
			var gen uint64
			spinWait(func() bool {
				if c.closed.Load() {
					return true
				}
				gen = c.generation.v.Load()
				return gen != lastGen
			})
			if c.closed.Load() {
				return
			}
			lastGen = gen
			c.pol.runCycle(c, w, gen)
			c.finished.v.Add(1)
		}
	case waitBlock:
		for range c.start[w] {
			if c.closed.Load() {
				return
			}
			c.pol.runCycle(c, w, c.generation.v.Load())
			c.doneCh <- struct{}{}
		}
	}
}

// Name implements Scheduler.
func (c *core) Name() string { return c.pol.name() }

// Threads implements Scheduler.
func (c *core) Threads() int { return c.threads }

// Execute implements Scheduler. The caller participates as worker 0.
// Execute panics if the scheduler has been closed.
func (c *core) Execute() {
	if c.closed.Load() {
		panic("sched: Execute called after Close")
	}
	if c.staged.Load() != nil {
		c.AdoptStaged()
	}
	if c.obs != nil {
		c.obs.BeginCycle()
	}
	c.pol.beginCycle(c)
	switch c.mode {
	case waitSpin:
		c.finished.v.Store(0)
		gen := c.generation.v.Add(1) // releases the spinning workers
		c.pol.runCycle(c, 0, gen)
		want := int32(c.threads - 1)
		spinWait(func() bool { return c.finished.v.Load() == want })
	case waitBlock:
		gen := c.generation.v.Add(1)
		for w := 1; w < c.threads; w++ {
			c.start[w] <- struct{}{}
		}
		c.pol.runCycle(c, 0, gen)
		for w := 1; w < c.threads; w++ {
			<-c.doneCh
		}
	}
	if c.obs != nil {
		c.obs.EndCycle()
	}
}

// Close implements Scheduler. It is idempotent; the worker goroutines
// exit and the scheduler must not be used afterwards.
func (c *core) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	c.pol.closing(c)
	if c.mode == waitBlock {
		for w := 1; w < c.threads; w++ {
			close(c.start[w])
		}
	}
}

// noClose is embedded by policies with no shutdown work of their own.
type noClose struct{}

func (noClose) closing(*core) {}
