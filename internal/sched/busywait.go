package sched

import (
	"djstar/internal/graph"
)

// BusyWait implements the paper's winning strategy (§V-A): nodes from the
// depth-sorted queue are assigned to threads round-robin; each thread
// processes its nodes in queue order and spins ("busy-waits") until every
// dependency of the next node is done. Workers are persistent and spin
// across cycle boundaries too, so starting a cycle costs no wake-up — the
// property that gives BUSY its strong early-start behaviour (Fig. 9/10).
//
// BusyWait is a listSpinPolicy over the shared execution core: the
// round-robin split supplies the lists, the core supplies the workers.
type BusyWait struct {
	*core
}

// NewBusyWait returns a busy-waiting scheduler with o.Threads workers.
// The calling goroutine acts as worker 0 during Execute; threads-1
// persistent spinning workers are started immediately.
func NewBusyWait(p *graph.Plan, o Options) (*BusyWait, error) {
	o = o.withDefaults()
	if err := checkThreads(p, o.Threads); err != nil {
		return nil, err
	}
	pol := &listSpinPolicy{strategy: NameBusyWait, lists: roundRobinLists(p, o.Threads)}
	return &BusyWait{core: newCore(p, o.Threads, o.Observer, pol, waitSpin)}, nil
}

// roundRobinLists splits the compile-time rank order across threads:
// worker w gets RankOrder[w], RankOrder[w+T], RankOrder[w+2T], ...
// Dealing by descending upward rank hands out critical-path nodes first,
// so the longest chains start as early as the dependencies allow.
// RankOrder is itself a topological order (see graph.Plan.RankOrder), so
// the deadlock-freedom argument for the spin lists is unchanged: every
// worker's list is a subsequence of one global topological order, and a
// busy-wait can only wait on a node earlier in that order.
func roundRobinLists(p *graph.Plan, threads int) [][]int32 {
	lists := make([][]int32, threads)
	for i, id := range p.RankOrder {
		w := i % threads
		lists[w] = append(lists[w], id)
	}
	return lists
}

// listSpinPolicy runs fixed per-worker node lists in order, busy-waiting
// on unfinished dependencies via the core's generation-stamped done
// flags. It backs both BusyWait (round-robin lists) and Static
// (externally supplied lists); the two differ only in how the lists are
// produced.
type listSpinPolicy struct {
	noClose
	strategy string
	// lists[w] holds worker w's assigned node IDs in queue order.
	lists [][]int32
}

func (pol *listSpinPolicy) name() string { return pol.strategy }

// beginCycle: the generation stamp makes the previous cycle's done flags
// stale automatically, so there is nothing to reset.
func (pol *listSpinPolicy) beginCycle(*core) {}

// runCycle executes worker w's node list for the given generation,
// spinning on unfinished dependencies.
func (pol *listSpinPolicy) runCycle(c *core, w int32, gen uint64) {
	obs := c.obs
	for _, id := range pol.lists[w] {
		// Dependency check with busy-waiting (paper Fig. 5).
		for _, d := range c.plan.PredsOf(id) {
			d := d
			spinWait(func() bool { return c.done[d].v.Load() == gen })
		}
		c.exec(c.plan, obs, id, w, gen)
		c.done[id].v.Store(gen)
	}
}
