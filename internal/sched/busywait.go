package sched

import (
	"runtime"
	"sync/atomic"

	"djstar/internal/graph"
)

// BusyWait implements the paper's winning strategy (§V-A): nodes from the
// depth-sorted queue are assigned to threads round-robin; each thread
// processes its nodes in queue order and spins ("busy-waits") until every
// dependency of the next node is done. Workers are persistent and spin
// across cycle boundaries too, so starting a cycle costs no wake-up — the
// property that gives BUSY its strong early-start behaviour (Fig. 9/10).
type BusyWait struct {
	plan    *graph.Plan
	threads int
	tracer  *Tracer

	// lists[w] holds worker w's assigned node IDs in queue order.
	lists [][]int32

	// done[i] stores the generation in which node i last completed. A
	// node is done for the current cycle when done[i] == generation.
	done []atomic.Uint64
	// generation is the cycle counter; workers spin on it to start.
	generation atomic.Uint64
	// finished counts workers that completed their list this cycle.
	finished atomic.Int32
	// closed tells the workers to exit.
	closed atomic.Bool
}

// NewBusyWait returns a busy-waiting scheduler with the given thread
// count. The calling goroutine acts as worker 0 during Execute; threads-1
// persistent spinning workers are started immediately.
func NewBusyWait(p *graph.Plan, threads int) (*BusyWait, error) {
	if err := checkThreads(p, threads); err != nil {
		return nil, err
	}
	s := &BusyWait{
		plan:    p,
		threads: threads,
		lists:   roundRobinLists(p, threads),
		done:    make([]atomic.Uint64, p.Len()),
	}
	for w := 1; w < threads; w++ {
		go s.worker(int32(w))
	}
	return s, nil
}

// roundRobinLists splits the queue order across threads: worker w gets
// Order[w], Order[w+T], Order[w+2T], ...
func roundRobinLists(p *graph.Plan, threads int) [][]int32 {
	lists := make([][]int32, threads)
	for i, id := range p.Order {
		w := i % threads
		lists[w] = append(lists[w], id)
	}
	return lists
}

// Name implements Scheduler.
func (s *BusyWait) Name() string { return NameBusyWait }

// Threads implements Scheduler.
func (s *BusyWait) Threads() int { return s.threads }

// SetTracer implements Scheduler.
func (s *BusyWait) SetTracer(t *Tracer) { s.tracer = t }

// worker is the persistent spin loop for workers 1..T-1.
func (s *BusyWait) worker(w int32) {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	lastGen := uint64(0)
	for {
		// Spin until the next cycle begins (or shutdown).
		var gen uint64
		spinWait(func() bool {
			if s.closed.Load() {
				return true
			}
			gen = s.generation.Load()
			return gen != lastGen
		})
		if s.closed.Load() {
			return
		}
		lastGen = gen
		s.runList(w, gen)
		s.finished.Add(1)
	}
}

// runList executes worker w's node list for the given generation,
// spinning on unfinished dependencies.
func (s *BusyWait) runList(w int32, gen uint64) {
	tr := s.tracer
	for _, id := range s.lists[w] {
		// Dependency check with busy-waiting (paper Fig. 5).
		for _, d := range s.plan.Preds[id] {
			d := d
			spinWait(func() bool { return s.done[d].Load() == gen })
		}
		runNode(s.plan, tr, id, w)
		s.done[id].Store(gen)
	}
}

// Execute implements Scheduler. The caller participates as worker 0.
func (s *BusyWait) Execute() {
	if s.tracer != nil {
		s.tracer.BeginCycle()
	}
	s.finished.Store(0)
	gen := s.generation.Add(1) // releases the workers
	s.runList(0, gen)
	// Spin until the other workers drained their lists.
	want := int32(s.threads - 1)
	spinWait(func() bool { return s.finished.Load() == want })
}

// Close implements Scheduler.
func (s *BusyWait) Close() {
	s.closed.Store(true)
}
