package sched

import (
	"fmt"
	"math"
	"testing"

	"djstar/internal/graph"
)

// newEach builds one scheduler of every strategy for the plan.
func newEach(t *testing.T, p *graph.Plan, threads int) []Scheduler {
	t.Helper()
	var out []Scheduler
	for _, name := range Strategies {
		th := threads
		if name == NameSequential {
			th = 1
		}
		s, err := New(name, p, Options{Threads: th})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		out = append(out, s)
	}
	return out
}

func TestFactoryRejectsUnknown(t *testing.T) {
	g, _ := graph.RandomDAG(graph.RandomSpec{Nodes: 3, Seed: 1})
	p, _ := g.Compile()
	if _, err := New("bogus", p, Options{Threads: 2}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestThreadValidation(t *testing.T) {
	g, _ := graph.RandomDAG(graph.RandomSpec{Nodes: 3, Seed: 1})
	p, _ := g.Compile()
	for _, name := range []string{NameBusyWait, NameSleep, NameWorkSteal} {
		if _, err := New(name, p, Options{Threads: -1}); err == nil {
			t.Fatalf("%s accepted negative threads", name)
		}
		if _, err := New(name, p, Options{Threads: 99}); err == nil {
			t.Fatalf("%s accepted more threads than nodes", name)
		}
	}
	if _, err := NewBusyWait(nil, Options{Threads: 1}); err == nil {
		t.Fatal("nil plan accepted")
	}
}

func TestNamesAndThreads(t *testing.T) {
	g, _ := graph.RandomDAG(graph.RandomSpec{Nodes: 10, EdgeProb: 0.2, Seed: 2})
	p, _ := g.Compile()
	for _, s := range newEach(t, p, 3) {
		wantThreads := 3
		if s.Name() == NameSequential {
			wantThreads = 1
		}
		if s.Threads() != wantThreads {
			t.Fatalf("%s Threads = %d, want %d", s.Name(), s.Threads(), wantThreads)
		}
		s.Close()
	}
}

// TestAllStrategiesRespectDependencies is the central correctness
// property: on randomized DAGs, every strategy runs every node exactly
// once and never before its dependencies, across repeated cycles.
func TestAllStrategiesRespectDependencies(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5, 42, 99, 12345}
	for _, threads := range []int{1, 2, 3, 4, 8} {
		for _, seed := range seeds {
			spec := graph.RandomSpec{
				Nodes:    16 + int(seed%50),
				EdgeProb: 0.12,
				Seed:     seed,
			}
			g, tr := graph.RandomDAG(spec)
			p, err := g.Compile()
			if err != nil {
				t.Fatal(err)
			}
			if threads > p.Len() {
				continue
			}
			for _, name := range Strategies {
				th := threads
				if name == NameSequential {
					th = 1
				}
				s, err := New(name, p, Options{Threads: th})
				if err != nil {
					t.Fatal(err)
				}
				for cycle := 0; cycle < 5; cycle++ {
					tr.Reset()
					s.Execute()
					if err := tr.Check(p); err != nil {
						t.Fatalf("%s threads=%d seed=%d cycle=%d: %v",
							name, threads, seed, cycle, err)
					}
				}
				s.Close()
			}
		}
	}
}

// TestDJStarGraphAllStrategies runs the real 67-node graph under every
// strategy for many cycles, checking dependency-order correctness via an
// overlay trace is unnecessary here — instead we check the stronger
// property that the audio output matches the sequential execution
// bit-for-bit (dataflow determinism).
func TestDJStarGraphAllStrategies(t *testing.T) {
	const cycles = 120

	runStrategy := func(name string, threads int) []float64 {
		cfg := graph.DefaultConfig()
		cfg.TrackBars = 2
		sess, g, err := graph.BuildDJStar(cfg)
		if err != nil {
			t.Fatal(err)
		}
		p, err := g.Compile()
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(name, p, Options{Threads: threads})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		var sums []float64
		for c := 0; c < cycles; c++ {
			sess.Prepare()
			s.Execute()
			sum := 0.0
			for _, v := range sess.MasterOut().L {
				sum += v
			}
			sums = append(sums, sum)
		}
		return sums
	}

	ref := runStrategy(NameSequential, 1)
	var refNonZero bool
	for _, v := range ref {
		if v != 0 {
			refNonZero = true
		}
	}
	if !refNonZero {
		t.Fatal("sequential reference produced all-zero audio")
	}

	for _, name := range []string{NameBusyWait, NameSleep, NameWorkSteal} {
		for _, threads := range []int{2, 4} {
			got := runStrategy(name, threads)
			for c := range ref {
				if math.Abs(got[c]-ref[c]) > 1e-12 {
					t.Fatalf("%s threads=%d: cycle %d output %v differs from sequential %v",
						name, threads, c, got[c], ref[c])
				}
			}
		}
	}
}

func TestWorkStealVariants(t *testing.T) {
	g, tr := graph.RandomDAG(graph.RandomSpec{Nodes: 40, EdgeProb: 0.15, Seed: 7})
	p, _ := g.Compile()
	for _, opts := range []WSOptions{
		{},
		{RoundRobinInit: true},
		{LockedDeque: true},
		{RoundRobinInit: true, LockedDeque: true},
	} {
		s, err := NewWorkSteal(p, Options{Threads: 4, WS: opts})
		if err != nil {
			t.Fatal(err)
		}
		for cycle := 0; cycle < 10; cycle++ {
			tr.Reset()
			s.Execute()
			if err := tr.Check(p); err != nil {
				t.Fatalf("opts %+v: %v", opts, err)
			}
		}
		s.Close()
	}
}

func TestWorkStealCounters(t *testing.T) {
	// A long chain forces steals: all work migrates from one seed worker.
	g := graph.New()
	prev := -1
	var tr *graph.ExecTrace
	tr = graph.NewExecTrace(64)
	for i := 0; i < 64; i++ {
		i := i
		id := g.AddNode(fmt.Sprintf("n%d", i), graph.SectionDeckA, func() { tr.Record(i) })
		if prev >= 0 {
			if err := g.AddEdge(prev, id); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	p, _ := g.Compile()
	s, err := NewWorkSteal(p, Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for cycle := 0; cycle < 20; cycle++ {
		tr.Reset()
		s.Execute()
		if err := tr.Check(p); err != nil {
			t.Fatal(err)
		}
	}
	// Counters are diagnostics; just make sure they are readable and sane.
	if s.Steals() < 0 || s.Parks() < 0 {
		t.Fatal("negative counters")
	}
}

func TestTracerRecordsFullSchedule(t *testing.T) {
	cfg := graph.DefaultConfig()
	cfg.TrackBars = 2
	sess, g, err := graph.BuildDJStar(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := g.Compile()
	for _, name := range Strategies {
		threads := 4
		if name == NameSequential {
			threads = 1
		}
		tr := NewTracer(p.Len())
		s, err := New(name, p, Options{Threads: threads, Observer: tr})
		if err != nil {
			t.Fatal(err)
		}
		sess.Prepare()
		s.Execute()
		events := tr.Events()
		if len(events) != p.Len() {
			t.Fatalf("%s: %d events, want %d", name, len(events), p.Len())
		}
		for i, e := range events {
			if e.Worker < 0 {
				t.Fatalf("%s: node %d not traced", name, i)
			}
			if int(e.Worker) >= threads {
				t.Fatalf("%s: node %d on worker %d of %d", name, i, e.Worker, threads)
			}
			if e.End < e.Start {
				t.Fatalf("%s: node %d end before start", name, i)
			}
			// Trace must respect dependencies: preds end before node ends.
			for _, d := range p.PredsOf(int32(i)) {
				if events[d].Start > e.End {
					t.Fatalf("%s: node %s started after successor %s finished",
						name, p.Names[d], p.Names[i])
				}
			}
		}
		if tr.Makespan() <= 0 {
			t.Fatalf("%s: makespan %d", name, tr.Makespan())
		}
		s.Close()
	}
}

func TestSchedulersReusableAfterManyCycles(t *testing.T) {
	// Soak test: a small graph, many iterations, exercising the cycle
	// barriers and cross-cycle state reset of each strategy.
	g, tr := graph.RandomDAG(graph.RandomSpec{Nodes: 30, EdgeProb: 0.2, Seed: 3})
	p, _ := g.Compile()
	for _, name := range []string{NameBusyWait, NameSleep, NameWorkSteal} {
		s, err := New(name, p, Options{Threads: 4})
		if err != nil {
			t.Fatal(err)
		}
		for cycle := 0; cycle < 500; cycle++ {
			tr.Reset()
			s.Execute()
			if err := tr.Check(p); err != nil {
				t.Fatalf("%s cycle %d: %v", name, cycle, err)
			}
		}
		s.Close()
	}
}

func TestSingleThreadParallelStrategies(t *testing.T) {
	// threads=1 degenerates to sequential semantics for every strategy.
	g, tr := graph.RandomDAG(graph.RandomSpec{Nodes: 25, EdgeProb: 0.25, Seed: 9})
	p, _ := g.Compile()
	for _, name := range []string{NameBusyWait, NameSleep, NameWorkSteal} {
		s, err := New(name, p, Options{Threads: 1})
		if err != nil {
			t.Fatal(err)
		}
		tr.Reset()
		s.Execute()
		if err := tr.Check(p); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s.Close()
	}
}

func TestRoundRobinListsCoverAllNodes(t *testing.T) {
	g, _ := graph.RandomDAG(graph.RandomSpec{Nodes: 23, EdgeProb: 0.1, Seed: 5})
	p, _ := g.Compile()
	lists := roundRobinLists(p, 4)
	seen := map[int32]bool{}
	for _, l := range lists {
		for _, id := range l {
			if seen[id] {
				t.Fatalf("node %d assigned twice", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != p.Len() {
		t.Fatalf("%d nodes assigned, want %d", len(seen), p.Len())
	}
	// Balanced within 1.
	for _, l := range lists {
		if len(l) < p.Len()/4 || len(l) > p.Len()/4+1 {
			t.Fatalf("unbalanced list size %d for %d nodes", len(l), p.Len())
		}
	}
}

func TestInitialSourcesLocality(t *testing.T) {
	cfg := graph.DefaultConfig()
	cfg.TrackBars = 2
	_, g, err := graph.BuildDJStar(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := g.Compile()

	local := initialSources(p, 4, false)
	// Every deck's SP sources must sit on a single worker.
	workerOf := map[int32]int{}
	for w, l := range local {
		for _, id := range l {
			workerOf[id] = w
		}
	}
	total := 0
	for _, l := range local {
		total += len(l)
	}
	if total != 33 {
		t.Fatalf("distributed %d sources, want 33", total)
	}
	for sec, srcs := range p.SourcesBySection {
		w := -1
		for _, id := range srcs {
			if w == -1 {
				w = workerOf[id]
			} else if workerOf[id] != w {
				t.Fatalf("section %v sources split across workers", sec)
			}
		}
	}

	rr := initialSources(p, 4, true)
	totalRR := 0
	for _, l := range rr {
		totalRR += len(l)
	}
	if totalRR != 33 {
		t.Fatalf("round-robin distributed %d sources, want 33", totalRR)
	}
}
