package sched

import (
	"runtime"
	"sync/atomic"

	"djstar/internal/graph"
)

// SleepScan is the improved sleeping strategy the paper sketches but does
// not build (§V-B): "Instead of putting the executor thread to sleep
// because its node is currently blocked, it could look for other
// available nodes and compute them." A worker whose next node has open
// dependencies first scans the rest of its own list for any ready node
// and runs that instead; it sleeps only when nothing on its list is
// runnable. The paper predicts this trades earlier start times for more
// queue-management overhead — the scan — which is exactly what the
// ablation harness measures against plain Sleep and WS.
type SleepScan struct {
	plan    *graph.Plan
	threads int
	tracer  *Tracer

	lists [][]int32

	pending  []atomic.Int32
	executor []atomic.Int32
	wake     []chan struct{}

	// done tracks per-worker which of its own list entries already ran
	// (only the owning worker touches its row).
	done [][]bool

	start  []chan struct{}
	doneCh chan struct{}
	closed atomic.Bool
}

// NameSleepScan is the strategy identifier for the improved sleeper.
const NameSleepScan = "sleepscan"

// NewSleepScan returns the scanning sleep scheduler.
func NewSleepScan(p *graph.Plan, threads int) (*SleepScan, error) {
	if err := checkThreads(p, threads); err != nil {
		return nil, err
	}
	s := &SleepScan{
		plan:     p,
		threads:  threads,
		lists:    roundRobinLists(p, threads),
		pending:  make([]atomic.Int32, p.Len()),
		executor: make([]atomic.Int32, p.Len()),
		wake:     make([]chan struct{}, threads),
		done:     make([][]bool, threads),
		start:    make([]chan struct{}, threads),
		doneCh:   make(chan struct{}, threads),
	}
	for w := 0; w < threads; w++ {
		s.wake[w] = make(chan struct{}, 1)
		s.start[w] = make(chan struct{}, 1)
		s.done[w] = make([]bool, len(s.lists[w]))
	}
	for w := 1; w < threads; w++ {
		go s.worker(int32(w))
	}
	return s, nil
}

// Name implements Scheduler.
func (s *SleepScan) Name() string { return NameSleepScan }

// Threads implements Scheduler.
func (s *SleepScan) Threads() int { return s.threads }

// SetTracer implements Scheduler.
func (s *SleepScan) SetTracer(t *Tracer) { s.tracer = t }

func (s *SleepScan) worker(w int32) {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	for range s.start[w] {
		if s.closed.Load() {
			return
		}
		s.runList(w)
		s.doneCh <- struct{}{}
	}
}

// runList executes worker w's list, preferring the earliest queued node
// but running any later ready node rather than sleeping.
func (s *SleepScan) runList(w int32) {
	list := s.lists[w]
	done := s.done[w]
	for i := range done {
		done[i] = false
	}
	remaining := len(list)
	for remaining > 0 {
		ran := false
		first := -1 // earliest not-yet-run entry, the sleep anchor
		for i, id := range list {
			if done[i] {
				continue
			}
			if first == -1 {
				first = i
			}
			if s.pending[id].Load() == 0 {
				s.execute(id, w)
				done[i] = true
				remaining--
				ran = true
				// Restart the scan: completing a node may have readied
				// an earlier list entry on this worker.
				break
			}
		}
		if ran || remaining == 0 {
			continue
		}
		// Nothing runnable: sleep on the earliest blocked node, exactly
		// like plain Sleep (register-then-recheck closes the race).
		anchor := list[first]
		for s.pending[anchor].Load() > 0 {
			s.executor[anchor].Store(w + 1)
			if s.pending[anchor].Load() > 0 {
				<-s.wake[w]
			}
		}
	}
}

// execute runs a node and resolves successors, waking sleepers.
func (s *SleepScan) execute(id, w int32) {
	runNode(s.plan, s.tracer, id, w)
	for _, succ := range s.plan.Succs[id] {
		if s.pending[succ].Add(-1) == 0 {
			if e := s.executor[succ].Load(); e != 0 {
				select {
				case s.wake[e-1] <- struct{}{}:
				default:
				}
			}
		}
	}
}

// Execute implements Scheduler.
func (s *SleepScan) Execute() {
	if s.tracer != nil {
		s.tracer.BeginCycle()
	}
	for i := range s.pending {
		s.pending[i].Store(s.plan.Indegree[i])
	}
	for w := 1; w < s.threads; w++ {
		s.start[w] <- struct{}{}
	}
	s.runList(0)
	for w := 1; w < s.threads; w++ {
		<-s.doneCh
	}
}

// Close implements Scheduler.
func (s *SleepScan) Close() {
	s.closed.Store(true)
	for w := 1; w < s.threads; w++ {
		close(s.start[w])
	}
}
