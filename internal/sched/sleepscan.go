package sched

import (
	"djstar/internal/graph"
)

// SleepScan is the improved sleeping strategy the paper sketches but does
// not build (§V-B): "Instead of putting the executor thread to sleep
// because its node is currently blocked, it could look for other
// available nodes and compute them." A worker whose next node has open
// dependencies first scans the rest of its own list for any ready node
// and runs that instead; it sleeps only when nothing on its list is
// runnable. The paper predicts this trades earlier start times for more
// queue-management overhead — the scan — which is exactly what the
// ablation harness measures against plain Sleep and WS.
type SleepScan struct {
	*core
}

// NameSleepScan is the strategy identifier for the improved sleeper.
const NameSleepScan = "sleepscan"

// NewSleepScan returns the scanning sleep scheduler.
func NewSleepScan(p *graph.Plan, o Options) (*SleepScan, error) {
	o = o.withDefaults()
	if err := checkThreads(p, o.Threads); err != nil {
		return nil, err
	}
	pol := &sleepScanPolicy{sleepPolicy: newSleepPolicy(p, o.Threads)}
	pol.ran = make([][]bool, o.Threads)
	for w := 0; w < o.Threads; w++ {
		pol.ran[w] = make([]bool, len(pol.lists[w]))
	}
	return &SleepScan{core: newCore(p, o.Threads, o.Observer, pol, waitBlock)}, nil
}

// sleepScanPolicy extends sleepPolicy with the scan-before-sleeping
// discipline; it reuses its lists, executor registrations and wake
// channels and overrides only the per-cycle loop.
type sleepScanPolicy struct {
	*sleepPolicy

	// ran tracks per-worker which of its own list entries already ran
	// this cycle (only the owning worker touches its row).
	ran [][]bool
}

func (pol *sleepScanPolicy) name() string { return NameSleepScan }

// runCycle executes worker w's list, preferring the earliest queued node
// but running any later ready node rather than sleeping.
func (pol *sleepScanPolicy) runCycle(c *core, w int32, gen uint64) {
	list := pol.lists[w]
	ran := pol.ran[w]
	for i := range ran {
		ran[i] = false
	}
	remaining := len(list)
	for remaining > 0 {
		progressed := false
		first := -1 // earliest not-yet-run entry, the sleep anchor
		for i, id := range list {
			if ran[i] {
				continue
			}
			if first == -1 {
				first = i
			}
			if c.pending[id].v.Load() == 0 {
				pol.execute(c, id, w, gen)
				ran[i] = true
				remaining--
				progressed = true
				// Restart the scan: completing a node may have readied
				// an earlier list entry on this worker.
				break
			}
		}
		if progressed || remaining == 0 {
			continue
		}
		// Nothing runnable: sleep on the earliest blocked node, exactly
		// like plain Sleep (register-then-recheck closes the race).
		anchor := list[first]
		for c.pending[anchor].v.Load() > 0 {
			pol.executor[anchor].Store(w + 1)
			if c.pending[anchor].v.Load() > 0 {
				<-pol.wake[w]
			}
		}
	}
}

// execute runs a node and resolves successors, waking sleepers.
func (pol *sleepScanPolicy) execute(c *core, id, w int32, gen uint64) {
	c.exec(c.plan, c.obs, id, w, gen)
	for _, succ := range c.plan.SuccsOf(id) {
		if c.pending[succ].v.Add(-1) == 0 {
			if e := pol.executor[succ].Load(); e != 0 {
				select {
				case pol.wake[e-1] <- struct{}{}:
				default:
				}
			}
		}
	}
}
