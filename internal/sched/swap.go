package sched

import (
	"fmt"
	"sync/atomic"

	"djstar/internal/graph"
)

// Topology swaps (live graph editing).
//
// A Scheduler's plan is not fixed for its lifetime: StageSwap stages a
// new compiled plan, and AdoptStaged adopts it atomically between two
// cycles. This generalizes the engine's old private re-fusion swap —
// which rebuilt a whole scheduler — into a scheduler-level operation
// every strategy and sched.Pool supports: the worker pool, its OS-thread
// pinning, the fault counters and the quarantine/shed bits all survive
// the swap; only the per-plan structures (node lists, dependency
// counters, deques) are rebuilt.
//
// Protocol: StageSwap may be called from any goroutine at any time (it
// only publishes a pointer; a second call replaces an unadopted stage).
// AdoptStaged must be called from the Execute thread with no cycle in
// flight — the same serialization every Scheduler already demands of
// Execute itself. Execute also adopts any staged swap at its top, so a
// standalone scheduler picks up swaps without extra plumbing; the engine
// instead calls AdoptStaged explicitly so it can run state-migration
// hooks at a known point between cycles.
//
// Every allocation adoption needs — fresh done stamps and pending
// counters, the fault arrays of the new epoch, and the policy's per-plan
// state (node lists, deques) — is performed at STAGING time, on the
// staging goroutine, off the audio path. The adopting cycle boundary
// only installs the prebuilt structures and copies surviving per-node
// state, keeping the swap-boundary cycle close to steady-state cost.

// Swap describes a staged topology change.
type Swap struct {
	// Plan is the new compiled plan to adopt. Required.
	Plan *graph.Plan
	// OldToNew maps the current plan's BASE node IDs to the new plan's
	// (-1 = node removed); quarantine/shed/fault state follows it. A nil
	// map means the base topology is unchanged (e.g. a re-fusion of the
	// same graph) and per-node state is carried by identity.
	OldToNew []int32
	// Observer, when non-nil, replaces the scheduler's observer at
	// adoption (a new topology usually means a new collector sized for
	// it). Nil keeps the current observer.
	Observer Observer
}

func (sw Swap) validate(threads int) error {
	if sw.Plan == nil || sw.Plan.Len() == 0 {
		return fmt.Errorf("sched: swap with empty plan")
	}
	if threads > sw.Plan.Len() {
		return fmt.Errorf("sched: %d workers exceed new plan's %d nodes",
			threads, sw.Plan.Len())
	}
	return nil
}

// stagedSwap bundles a validated Swap with everything its adoption would
// otherwise allocate. It is built by StageSwap on the staging goroutine;
// the atomic staged-pointer publication makes every write here visible
// to the adopting thread.
type stagedSwap struct {
	sw Swap
	// pre is the policy's prestaged per-plan state (see policy.prestage).
	pre any
	// done and pending are fresh per-node arrays for the new plan. Fresh
	// stamps read as generation 0 — stale for every future cycle, exactly
	// like a freshly built core's.
	done    []doneStamp
	pending []depCount
	// faults is a pre-sized fault-array set for the new plan; adoption
	// copies the surviving quarantine/shed/fault state into it through
	// the remap (see faultState.adoptInto).
	faults *faultArrays
}

// StageSwap implements Scheduler for all core-based strategies.
func (c *core) StageSwap(sw Swap) error {
	if c.closed.Load() {
		return fmt.Errorf("sched: StageSwap after Close")
	}
	if err := sw.validate(c.threads); err != nil {
		return err
	}
	c.staged.Store(&stagedSwap{
		sw:      sw,
		pre:     c.pol.prestage(sw.Plan, c.threads),
		done:    make([]doneStamp, sw.Plan.Len()),
		pending: make([]depCount, sw.Plan.Len()),
		faults:  newFaultArrays(sw.Plan),
	})
	return nil
}

// AdoptStaged implements Scheduler for all core-based strategies: it
// adopts the most recently staged swap, if any, and reports whether one
// was adopted. Must be called from the Execute thread between cycles;
// workers are parked or spinning on the generation counter then, and the
// atomic cycle dispatch publishes every plain write made here.
func (c *core) AdoptStaged() bool {
	st := c.staged.Swap(nil)
	if st == nil || c.closed.Load() {
		return false
	}
	sw := st.sw
	c.faultState.adoptInto(st.faults, sw.OldToNew)
	c.plan = sw.Plan
	if sw.Observer != nil {
		c.obs = sw.Observer
	}
	c.done = st.done
	c.pending = st.pending
	c.pol.replan(c, st.pre)
	return true
}

// Policy prestage/replan pairs: prestage builds the per-plan strategy
// state on the staging goroutine (immutable inputs only); replan
// installs it on the adoption thread between cycles, rebuilding inline
// when no prestaged state is available (defensive fallback — StageSwap
// always provides one).

// prestage for the list-spinning strategies (BUSY and STATIC) re-deals
// the new plan's rank order round-robin. For STATIC this means an
// offline schedule does not survive a topology edit — the old assignment
// names nodes that no longer exist — so the strategy degrades to
// BusyWait's dealing until a new schedule is installed via a subsequent
// swap.
func (pol *listSpinPolicy) prestage(p *graph.Plan, threads int) any {
	return roundRobinLists(p, threads)
}

func (pol *listSpinPolicy) replan(c *core, pre any) {
	if lists, ok := pre.([][]int32); ok {
		pol.lists = lists
		return
	}
	pol.lists = roundRobinLists(c.plan, c.threads)
}

// sleepPre is the prestaged per-plan state of SLEEP: fresh lists and
// zeroed executor registrations (stale registrations would name nodes of
// the old epoch).
type sleepPre struct {
	lists    [][]int32
	executor []atomic.Int32
}

func (pol *sleepPolicy) prestage(p *graph.Plan, threads int) any {
	return &sleepPre{
		lists:    roundRobinLists(p, threads),
		executor: make([]atomic.Int32, p.Len()),
	}
}

func (pol *sleepPolicy) replan(c *core, pre any) {
	if sp, ok := pre.(*sleepPre); ok {
		pol.lists = sp.lists
		pol.executor = sp.executor
		return
	}
	pol.lists = roundRobinLists(c.plan, c.threads)
	if len(pol.executor) != c.plan.Len() {
		pol.executor = make([]atomic.Int32, c.plan.Len())
		return
	}
	for i := range pol.executor {
		pol.executor[i].Store(0)
	}
}

// sleepScanPre extends sleepPre with fresh ran rows matching the new
// list lengths.
type sleepScanPre struct {
	sleep *sleepPre
	ran   [][]bool
}

func (pol *sleepScanPolicy) prestage(p *graph.Plan, threads int) any {
	sp := pol.sleepPolicy.prestage(p, threads).(*sleepPre)
	ran := make([][]bool, threads)
	for w := range ran {
		ran[w] = make([]bool, len(sp.lists[w]))
	}
	return &sleepScanPre{sleep: sp, ran: ran}
}

func (pol *sleepScanPolicy) replan(c *core, pre any) {
	if ssp, ok := pre.(*sleepScanPre); ok {
		pol.sleepPolicy.replan(c, ssp.sleep)
		pol.ran = ssp.ran
		return
	}
	pol.sleepPolicy.replan(c, nil)
	for w := range pol.ran {
		pol.ran[w] = make([]bool, len(pol.lists[w]))
	}
}

// wsPre is the prestaged per-plan state of WS: fresh plan-sized deques
// and the per-worker source seed lists. Deques are empty between cycles,
// so dropping the old ones at adoption loses nothing.
type wsPre struct {
	deques  []dequeIface
	initial [][]int32
}

func (pol *wsPolicy) prestage(p *graph.Plan, threads int) any {
	deques := make([]dequeIface, threads)
	for w := range deques {
		if pol.opts.LockedDeque {
			deques[w] = NewLockedDeque(p.Len() + 1)
		} else {
			deques[w] = NewDeque(p.Len() + 1)
		}
	}
	return &wsPre{
		deques:  deques,
		initial: initialSources(p, threads, pol.opts.RoundRobinInit),
	}
}

func (pol *wsPolicy) replan(c *core, pre any) {
	if wp, ok := pre.(*wsPre); ok {
		pol.deques = wp.deques
		pol.initial = wp.initial
		return
	}
	for w := 0; w < pol.threads; w++ {
		if pol.opts.LockedDeque {
			pol.deques[w] = NewLockedDeque(c.plan.Len() + 1)
		} else {
			pol.deques[w] = NewDeque(c.plan.Len() + 1)
		}
	}
	pol.initial = initialSources(c.plan, pol.threads, pol.opts.RoundRobinInit)
}
