package sched

import "djstar/internal/graph"

// Sequential executes the node queue in order on the calling thread —
// DJ Star's original implementation ("single nodes can simply be removed
// from the queue in the same order (FIFO) during graph execution and
// processed sequentially", paper §IV) and the baseline for all speedup
// numbers. It has no worker pool, but follows the same lifecycle
// contract as the pooled strategies: Close is idempotent and Execute
// panics after Close.
type Sequential struct {
	// faultState provides panic recovery and quarantine (promoted
	// Scheduler methods), same as the pooled strategies.
	*faultState

	plan   *graph.Plan
	obs    Observer
	gen    uint64
	closed bool
}

// NewSequential returns the sequential baseline executor. Only
// o.Observer is honoured (a sequential run has exactly one worker).
func NewSequential(p *graph.Plan, o Options) *Sequential {
	return &Sequential{faultState: newFaultState(p, 1), plan: p, obs: o.Observer}
}

// Name implements Scheduler.
func (s *Sequential) Name() string { return NameSequential }

// Threads implements Scheduler.
func (s *Sequential) Threads() int { return 1 }

// Execute implements Scheduler.
func (s *Sequential) Execute() {
	if s.closed {
		panic("sched: Execute called after Close")
	}
	if s.obs != nil {
		s.obs.BeginCycle()
	}
	s.gen++
	for _, id := range s.plan.Order {
		s.exec(s.plan, s.obs, id, 0, s.gen)
	}
	if s.obs != nil {
		s.obs.EndCycle()
	}
}

// Close implements Scheduler (no worker pool to stop).
func (s *Sequential) Close() { s.closed = true }
