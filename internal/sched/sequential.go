package sched

import (
	"fmt"
	"sync/atomic"

	"djstar/internal/graph"
)

// Sequential executes the node queue in order on the calling thread —
// DJ Star's original implementation ("single nodes can simply be removed
// from the queue in the same order (FIFO) during graph execution and
// processed sequentially", paper §IV) and the baseline for all speedup
// numbers. It has no worker pool, but follows the same lifecycle
// contract as the pooled strategies: Close is idempotent and Execute
// panics after Close.
type Sequential struct {
	// faultState provides panic recovery and quarantine (promoted
	// Scheduler methods), same as the pooled strategies.
	*faultState

	plan   *graph.Plan
	obs    Observer
	staged atomic.Pointer[seqStaged]
	gen    uint64
	closed bool
}

// seqStaged is a staged swap plus the fault arrays adoption will
// install, pre-sized at staging time.
type seqStaged struct {
	sw     Swap
	faults *faultArrays
}

// NewSequential returns the sequential baseline executor. Only
// o.Observer is honoured (a sequential run has exactly one worker).
func NewSequential(p *graph.Plan, o Options) *Sequential {
	return &Sequential{faultState: newFaultState(p, 1), plan: p, obs: o.Observer}
}

// Name implements Scheduler.
func (s *Sequential) Name() string { return NameSequential }

// Threads implements Scheduler.
func (s *Sequential) Threads() int { return 1 }

// StageSwap implements Scheduler.
func (s *Sequential) StageSwap(sw Swap) error {
	if s.closed {
		return fmt.Errorf("sched: StageSwap after Close")
	}
	if err := sw.validate(1); err != nil {
		return err
	}
	s.staged.Store(&seqStaged{sw: sw, faults: newFaultArrays(sw.Plan)})
	return nil
}

// AdoptStaged implements Scheduler: adopt the staged swap, if any,
// between cycles on the Execute thread.
func (s *Sequential) AdoptStaged() bool {
	st := s.staged.Swap(nil)
	if st == nil || s.closed {
		return false
	}
	sw := st.sw
	s.faultState.adoptInto(st.faults, sw.OldToNew)
	s.plan = sw.Plan
	if sw.Observer != nil {
		s.obs = sw.Observer
	}
	return true
}

// Execute implements Scheduler.
func (s *Sequential) Execute() {
	if s.closed {
		panic("sched: Execute called after Close")
	}
	if s.staged.Load() != nil {
		s.AdoptStaged()
	}
	if s.obs != nil {
		s.obs.BeginCycle()
	}
	s.gen++
	for _, id := range s.plan.Order {
		s.exec(s.plan, s.obs, id, 0, s.gen)
	}
	if s.obs != nil {
		s.obs.EndCycle()
	}
}

// Close implements Scheduler (no worker pool to stop).
func (s *Sequential) Close() { s.closed = true }
