package sched

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"djstar/internal/graph"
)

// fusePlan compiles g and fuses it shape-only (unit costs, uncapped) so
// chains collapse regardless of cost — the adversarial setting for the
// scheduler, maximizing multi-member units.
func fusePlan(t *testing.T, g *graph.Graph) (*graph.Plan, *graph.Plan) {
	t.Helper()
	p, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	fp, err := graph.Fuse(p, nil, graph.FuseOptions{MaxCostUS: 1e12})
	if err != nil {
		t.Fatal(err)
	}
	return p, fp
}

// TestFusionPropertyAllStrategies is the fusion correctness property
// test: over seeded random DAGs and every strategy, executing the FUSED
// plan must (a) run every ORIGINAL node exactly once per cycle, (b)
// respect every original edge's happens-before, and (c) report every
// original node to the observer with a consistent window. (a) and (b)
// are exactly ExecTrace.Check against the base plan; (c) uses a Tracer
// sized for the base plan, which fused execution records into per
// member.
func TestFusionPropertyAllStrategies(t *testing.T) {
	for _, seed := range []uint64{2, 4, 8} {
		// MaxDeps 1 keeps indegrees low enough that the random DAGs
		// reliably contain fusable chains (several multi-member units).
		g, tr := graph.RandomDAG(graph.RandomSpec{Nodes: 24, EdgeProb: 0.1, MaxDeps: 1, Seed: seed})
		base, fp := fusePlan(t, g)
		if fp.FusedUnits() == 0 {
			t.Fatalf("seed %d: no multi-member units — property test would be vacuous", seed)
		}
		for _, name := range AllStrategies {
			t.Run(fmt.Sprintf("seed%d/%s", seed, name), func(t *testing.T) {
				threads := 3
				if name == NameSequential {
					threads = 1
				}
				trace := NewTracer(fp.BaseLen())
				s, err := New(name, fp, Options{Threads: threads, Observer: trace})
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				for cycle := 0; cycle < 6; cycle++ {
					tr.Reset()
					s.Execute()
					if err := tr.Check(base); err != nil {
						t.Fatalf("cycle %d: %v", cycle, err)
					}
					ev := trace.Events()
					for i := 0; i < base.Len(); i++ {
						if ev[i].Worker < 0 {
							t.Fatalf("cycle %d: base node %d unobserved", cycle, i)
						}
						if ev[i].End < ev[i].Start {
							t.Fatalf("cycle %d: node %d window inverted", cycle, i)
						}
					}
					for v := 0; v < base.Len(); v++ {
						for _, u := range base.PredsOf(int32(v)) {
							if ev[v].Start < ev[u].End {
								t.Fatalf("cycle %d: edge %d->%d violated: succ started %d before pred ended %d",
									cycle, u, v, ev[v].Start, ev[u].End)
							}
						}
					}
				}
			})
		}
	}
}

// fusionFaultChain builds a five-node linear chain whose middle node
// panics while armed. Shape-only fusion collapses it into one
// multi-member unit, so the victim is an INNER member — the hard case
// for panic isolation and quarantine on fused plans.
func fusionFaultChain(t *testing.T) (*graph.Graph, []*atomic.Int64, *atomic.Int32) {
	t.Helper()
	const n = 5
	g := graph.New()
	runs := make([]*atomic.Int64, n)
	armed := &atomic.Int32{}
	prev := -1
	for i := 0; i < n; i++ {
		i := i
		runs[i] = &atomic.Int64{}
		run := func() { runs[i].Add(1) }
		if i == fusionVictim {
			run = func() {
				if armed.Load() > 0 {
					armed.Add(-1)
					panic("injected: fused inner member down")
				}
				runs[i].Add(1)
			}
		}
		id := g.AddNode(fmt.Sprintf("n%d", i), graph.SectionDeckA, run)
		if prev >= 0 {
			if err := g.AddEdge(prev, id); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	return g, runs, armed
}

const fusionVictim = 2

// faultPhases drives a scheduler through the canonical fault lifecycle
// (clean, faulting to quarantine, quarantined, probe restore, clean) and
// returns the observable outcomes: fault stats, whether the victim was
// quarantined mid-run, and per-node run counts.
type faultOutcome struct {
	stats       FaultStats
	quarantined bool
	records     int
	runs        []int64
}

func runFaultPhases(t *testing.T, s Scheduler, runs []*atomic.Int64, armed *atomic.Int32) faultOutcome {
	t.Helper()
	const quarantineAfter, probeEvery = 3, 6
	s.SetFaultPolicy(FaultPolicy{QuarantineAfter: quarantineAfter, ProbeEvery: probeEvery})
	var mu sync.Mutex
	records := 0
	s.SetFaultHandler(func(r FaultRecord) {
		mu.Lock()
		records++
		mu.Unlock()
		if r.Node != fusionVictim {
			t.Errorf("fault record names node %d, want %d", r.Node, fusionVictim)
		}
	})

	s.Execute()
	s.Execute()
	armed.Store(quarantineAfter)
	for i := 0; i < quarantineAfter; i++ {
		s.Execute()
	}
	out := faultOutcome{quarantined: s.Quarantined(fusionVictim)}
	for i := 0; i < probeEvery+1; i++ {
		s.Execute()
	}
	s.Execute()
	out.stats = s.Faults()
	out.runs = make([]int64, len(runs))
	for i, r := range runs {
		out.runs[i] = r.Load()
	}
	mu.Lock()
	out.records = records
	mu.Unlock()
	return out
}

// TestFusionQuarantineParity: an inner member of a fused chain panicking
// must behave EXACTLY like the same node in the unfused plan — same
// fault counts, same quarantine trip, same probe restoration, same
// handler records, and the same run counts for every healthy node.
func TestFusionQuarantineParity(t *testing.T) {
	for _, name := range AllStrategies {
		t.Run(name, func(t *testing.T) {
			threads := 3
			if name == NameSequential {
				threads = 1
			}
			outcomes := make([]faultOutcome, 2)
			for variant := 0; variant < 2; variant++ {
				g, runs, armed := fusionFaultChain(t)
				base, fp := fusePlan(t, g)
				plan := base
				if variant == 1 {
					plan = fp
					if fp.Len() != 1 || len(fp.MembersOf(0)) != base.Len() {
						t.Fatalf("chain did not fuse into one unit: %d units", fp.Len())
					}
				}
				s, err := New(name, plan, Options{Threads: min(threads, plan.Len())})
				if err != nil {
					t.Fatal(err)
				}
				outcomes[variant] = runFaultPhases(t, s, runs, armed)
				s.Close()
			}
			un, fu := outcomes[0], outcomes[1]
			if un.stats != fu.stats {
				t.Fatalf("fault stats diverge: unfused %+v, fused %+v", un.stats, fu.stats)
			}
			if un.quarantined != fu.quarantined || !fu.quarantined {
				t.Fatalf("quarantine diverges: unfused %v, fused %v", un.quarantined, fu.quarantined)
			}
			if un.records != fu.records {
				t.Fatalf("handler records diverge: unfused %d, fused %d", un.records, fu.records)
			}
			for i := range un.runs {
				if un.runs[i] != fu.runs[i] {
					t.Fatalf("node %d run counts diverge: unfused %d, fused %d", i, un.runs[i], fu.runs[i])
				}
			}
		})
	}
}

// TestFusedExecuteNoAllocSteadyState extends the package's zero-alloc
// contract to fused plans on every strategy and on a pool session.
func TestFusedExecuteNoAllocSteadyState(t *testing.T) {
	p := noopPlan(t, 67)
	fp, err := graph.Fuse(p, nil, graph.FuseOptions{MaxCostUS: 1e12})
	if err != nil {
		t.Fatal(err)
	}
	if fp.FusedUnits() == 0 {
		t.Fatal("noop plan produced no fused units")
	}
	for _, name := range AllStrategies {
		t.Run(name, func(t *testing.T) {
			threads := min(4, fp.Len())
			if name == NameSequential {
				threads = 1
			}
			s, err := New(name, fp, Options{Threads: threads})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			s.Execute()
			if allocs := testing.AllocsPerRun(100, func() { s.Execute() }); allocs != 0 {
				t.Fatalf("%s: fused Execute allocates %v per cycle", name, allocs)
			}
		})
	}
	t.Run(NamePool, func(t *testing.T) {
		pool, err := NewPool(2, 1)
		if err != nil {
			t.Fatal(err)
		}
		defer pool.Close()
		s, err := pool.Attach(fp, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		s.Execute()
		if allocs := testing.AllocsPerRun(100, func() { s.Execute() }); allocs != 0 {
			t.Fatalf("pool: fused Execute allocates %v per cycle", allocs)
		}
	})
}
