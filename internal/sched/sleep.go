package sched

import (
	"sync/atomic"

	"djstar/internal/graph"
)

// Sleep implements the thread-sleeping strategy (paper §V-B): the node
// queue is split round-robin exactly like BusyWait, but a thread whose
// next node still has open dependencies registers itself as that node's
// executor and goes to sleep; the predecessor that resolves the last
// dependency wakes it. This saves the CPU cycles BUSY burns spinning, at
// the price of wake-up latency — visible in the paper's histograms as the
// complete absence of sub-0.4 ms graph executions for SLEEP.
//
// Sleep is a sleepPolicy over the shared execution core: the core owns
// the workers and the pending counters; the policy owns the per-node
// executor registrations and wake channels.
type Sleep struct {
	*core
}

// NewSleep returns a thread-sleeping scheduler. The calling goroutine is
// worker 0; threads-1 persistent workers are started immediately and
// sleep between cycles.
func NewSleep(p *graph.Plan, o Options) (*Sleep, error) {
	o = o.withDefaults()
	if err := checkThreads(p, o.Threads); err != nil {
		return nil, err
	}
	pol := newSleepPolicy(p, o.Threads)
	return &Sleep{core: newCore(p, o.Threads, o.Observer, pol, waitBlock)}, nil
}

// sleepPolicy runs round-robin node lists with the register-then-sleep
// wait discipline.
type sleepPolicy struct {
	noClose
	lists [][]int32

	// executor[i] holds 1+worker of the thread sleeping on node i (0 =
	// nobody registered).
	executor []atomic.Int32
	// wake[w] delivers wake-up tokens to worker w. Capacity 1: at most
	// one wake can be outstanding, and spurious tokens (from a
	// registration that resolved itself) are absorbed by re-checking the
	// pending counter in a loop.
	wake []chan struct{}
}

func newSleepPolicy(p *graph.Plan, threads int) *sleepPolicy {
	pol := &sleepPolicy{
		lists:    roundRobinLists(p, threads),
		executor: make([]atomic.Int32, p.Len()),
		wake:     make([]chan struct{}, threads),
	}
	for w := 0; w < threads; w++ {
		pol.wake[w] = make(chan struct{}, 1)
	}
	return pol
}

func (pol *sleepPolicy) name() string { return NameSleep }

// beginCycle resets the dependency counters before workers are released.
func (pol *sleepPolicy) beginCycle(c *core) { c.resetPending() }

// runCycle executes worker w's nodes, sleeping on open dependencies.
func (pol *sleepPolicy) runCycle(c *core, w int32, gen uint64) {
	obs := c.obs
	for _, id := range pol.lists[w] {
		// Register-then-recheck avoids the lost-wakeup race: either the
		// final predecessor sees our registration and sends a token, or
		// our recheck observes pending == 0 and we never sleep. Spurious
		// tokens from earlier self-resolved registrations are absorbed by
		// looping.
		for c.pending[id].v.Load() > 0 {
			pol.executor[id].Store(w + 1)
			if c.pending[id].v.Load() > 0 {
				<-pol.wake[w]
			}
		}
		c.exec(c.plan, obs, id, w, gen)
		// Notify successors; wake the executor of any that became ready.
		for _, succ := range c.plan.SuccsOf(id) {
			if c.pending[succ].v.Add(-1) == 0 {
				if e := pol.executor[succ].Load(); e != 0 {
					select {
					case pol.wake[e-1] <- struct{}{}:
					default:
					}
				}
			}
		}
	}
}
