package sched

import (
	"runtime"
	"sync/atomic"

	"djstar/internal/graph"
)

// Sleep implements the thread-sleeping strategy (paper §V-B): the node
// queue is split round-robin exactly like BusyWait, but a thread whose
// next node still has open dependencies registers itself as that node's
// executor and goes to sleep; the predecessor that resolves the last
// dependency wakes it. This saves the CPU cycles BUSY burns spinning, at
// the price of wake-up latency — visible in the paper's histograms as the
// complete absence of sub-0.4 ms graph executions for SLEEP.
type Sleep struct {
	plan    *graph.Plan
	threads int
	tracer  *Tracer

	lists [][]int32

	// pending[i] counts node i's unfinished dependencies this cycle.
	pending []atomic.Int32
	// executor[i] holds 1+worker of the thread sleeping on node i (0 =
	// nobody registered).
	executor []atomic.Int32
	// wake[w] delivers wake-up tokens to worker w. Capacity 1: at most
	// one wake can be outstanding, and spurious tokens (from a
	// registration that resolved itself) are absorbed by re-checking the
	// pending counter in a loop.
	wake []chan struct{}

	start  []chan struct{} // per-worker cycle start signal
	doneCh chan struct{}   // workers report list completion
	closed atomic.Bool
}

// NewSleep returns a thread-sleeping scheduler. The calling goroutine is
// worker 0; threads-1 persistent workers are started immediately and
// sleep between cycles.
func NewSleep(p *graph.Plan, threads int) (*Sleep, error) {
	if err := checkThreads(p, threads); err != nil {
		return nil, err
	}
	s := &Sleep{
		plan:     p,
		threads:  threads,
		lists:    roundRobinLists(p, threads),
		pending:  make([]atomic.Int32, p.Len()),
		executor: make([]atomic.Int32, p.Len()),
		wake:     make([]chan struct{}, threads),
		start:    make([]chan struct{}, threads),
		doneCh:   make(chan struct{}, threads),
	}
	for w := 0; w < threads; w++ {
		s.wake[w] = make(chan struct{}, 1)
		s.start[w] = make(chan struct{}, 1)
	}
	for w := 1; w < threads; w++ {
		go s.worker(int32(w))
	}
	return s, nil
}

// Name implements Scheduler.
func (s *Sleep) Name() string { return NameSleep }

// Threads implements Scheduler.
func (s *Sleep) Threads() int { return s.threads }

// SetTracer implements Scheduler.
func (s *Sleep) SetTracer(t *Tracer) { s.tracer = t }

// worker sleeps between cycles and runs its list when signalled.
func (s *Sleep) worker(w int32) {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	for range s.start[w] {
		if s.closed.Load() {
			return
		}
		s.runList(w)
		s.doneCh <- struct{}{}
	}
}

// runList executes worker w's nodes, sleeping on open dependencies.
func (s *Sleep) runList(w int32) {
	tr := s.tracer
	for _, id := range s.lists[w] {
		// Register-then-recheck avoids the lost-wakeup race: either the
		// final predecessor sees our registration and sends a token, or
		// our recheck observes pending == 0 and we never sleep. Spurious
		// tokens from earlier self-resolved registrations are absorbed by
		// looping.
		for s.pending[id].Load() > 0 {
			s.executor[id].Store(w + 1)
			if s.pending[id].Load() > 0 {
				<-s.wake[w]
			}
		}
		runNode(s.plan, tr, id, w)
		// Notify successors; wake the executor of any that became ready.
		for _, succ := range s.plan.Succs[id] {
			if s.pending[succ].Add(-1) == 0 {
				if e := s.executor[succ].Load(); e != 0 {
					select {
					case s.wake[e-1] <- struct{}{}:
					default:
					}
				}
			}
		}
	}
}

// Execute implements Scheduler. The caller acts as worker 0.
func (s *Sleep) Execute() {
	if s.tracer != nil {
		s.tracer.BeginCycle()
	}
	// Reset dependency counters before releasing anyone.
	for i := range s.pending {
		s.pending[i].Store(s.plan.Indegree[i])
	}
	for w := 1; w < s.threads; w++ {
		s.start[w] <- struct{}{}
	}
	s.runList(0)
	for w := 1; w < s.threads; w++ {
		<-s.doneCh
	}
}

// Close implements Scheduler.
func (s *Sleep) Close() {
	s.closed.Store(true)
	for w := 1; w < s.threads; w++ {
		close(s.start[w])
	}
}
