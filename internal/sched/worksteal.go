package sched

import (
	"runtime"
	"sync"
	"sync/atomic"

	"djstar/internal/graph"
)

// WSOptions tune the work-stealing scheduler; the zero value is the
// paper's configuration. The alternatives exist for the design-choice
// ablations in the evaluation harness.
type WSOptions struct {
	// RoundRobinInit distributes source nodes round-robin instead of by
	// mixer section (ablation for the paper's locality argument, §V-C).
	RoundRobinInit bool
	// LockedDeque replaces the lock-free Chase–Lev deques with mutex
	// deques of identical policy (ablation for lock-free-ness).
	LockedDeque bool
}

// WorkSteal implements the work-stealing strategy (paper §V-C): every
// worker owns a deque holding only *ready* nodes (all dependencies met).
// Owners push and pop at the bottom (LIFO, cache-warm), thieves steal
// from the top (FIFO, oldest node — the one most likely to unlock further
// work). At cycle start each worker seeds its deque with the source nodes
// of "its" mixer sections; when a worker finishes a node it resolves the
// successors' dependency counters and pushes newly ready nodes locally.
// A worker with an empty deque steals; it sleeps only when every deque is
// empty and nodes remain blocked — exactly the behaviour in Fig. 11.
type WorkSteal struct {
	plan    *graph.Plan
	threads int
	tracer  *Tracer
	opts    WSOptions

	deques  []dequeIface
	initial [][]int32 // per-worker source nodes, seeded each cycle

	pending   []atomic.Int32
	remaining atomic.Int32

	// Parking: a worker that finds no work takes mu, re-verifies under
	// the lock, and waits on cond; pushers bump pushEpoch and broadcast
	// when idlers are present.
	mu        sync.Mutex
	cond      *sync.Cond
	pushEpoch uint64
	idlers    atomic.Int32

	start  []chan struct{}
	doneCh chan struct{}
	closed atomic.Bool

	// steals counts successful steals (diagnostics/ablation output).
	steals atomic.Int64
	// parks counts times a worker actually slept mid-cycle.
	parks atomic.Int64
}

// NewWorkSteal returns a work-stealing scheduler with the paper's
// configuration.
func NewWorkSteal(p *graph.Plan, threads int) (*WorkSteal, error) {
	return NewWorkStealOpts(p, threads, WSOptions{})
}

// NewWorkStealOpts returns a work-stealing scheduler with explicit
// options.
func NewWorkStealOpts(p *graph.Plan, threads int, opts WSOptions) (*WorkSteal, error) {
	if err := checkThreads(p, threads); err != nil {
		return nil, err
	}
	s := &WorkSteal{
		plan:    p,
		threads: threads,
		opts:    opts,
		deques:  make([]dequeIface, threads),
		pending: make([]atomic.Int32, p.Len()),
		start:   make([]chan struct{}, threads),
		doneCh:  make(chan struct{}, threads),
	}
	s.cond = sync.NewCond(&s.mu)
	for w := 0; w < threads; w++ {
		if opts.LockedDeque {
			s.deques[w] = NewLockedDeque(p.Len() + 1)
		} else {
			s.deques[w] = NewDeque(p.Len() + 1)
		}
		s.start[w] = make(chan struct{}, 1)
	}
	s.initial = initialSources(p, threads, opts.RoundRobinInit)
	for w := 1; w < threads; w++ {
		go s.worker(int32(w))
	}
	return s, nil
}

// initialSources assigns the dependency-free nodes to workers. With
// locality (default), all sources of one mixer section land on the same
// worker ("this supports data locality as nodes from the same section
// work on the same audio data"); otherwise plain round-robin.
func initialSources(p *graph.Plan, threads int, roundRobin bool) [][]int32 {
	out := make([][]int32, threads)
	if roundRobin {
		for i, id := range p.Sources() {
			w := i % threads
			out[w] = append(out[w], id)
		}
		return out
	}
	// Deterministic section order: decks A..D, master, control.
	sections := []graph.Section{
		graph.SectionDeckA, graph.SectionDeckB, graph.SectionDeckC,
		graph.SectionDeckD, graph.SectionMaster, graph.SectionControl,
	}
	w := 0
	for _, sec := range sections {
		srcs := p.SourcesBySection[sec]
		if len(srcs) == 0 {
			continue
		}
		out[w%threads] = append(out[w%threads], srcs...)
		w++
	}
	return out
}

// Name implements Scheduler.
func (s *WorkSteal) Name() string { return NameWorkSteal }

// Threads implements Scheduler.
func (s *WorkSteal) Threads() int { return s.threads }

// SetTracer implements Scheduler.
func (s *WorkSteal) SetTracer(t *Tracer) { s.tracer = t }

// Steals returns the cumulative successful steal count.
func (s *WorkSteal) Steals() int64 { return s.steals.Load() }

// Parks returns the cumulative mid-cycle sleep count.
func (s *WorkSteal) Parks() int64 { return s.parks.Load() }

// worker sleeps between cycles and joins the stealing pool when
// signalled.
func (s *WorkSteal) worker(w int32) {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	for range s.start[w] {
		if s.closed.Load() {
			return
		}
		s.runCycle(w)
		s.doneCh <- struct{}{}
	}
}

// runCycle is one worker's participation in a graph iteration.
func (s *WorkSteal) runCycle(w int32) {
	// Seed the local deque with this worker's sources. Each worker seeds
	// its own deque, keeping deque pushes owner-only.
	for _, id := range s.initial[w] {
		s.deques[w].PushBottom(id)
	}
	failedRounds := 0
	for s.remaining.Load() > 0 {
		id, ok := s.deques[w].PopBottom()
		if !ok {
			id, ok = s.trySteal(w)
		}
		if !ok {
			failedRounds++
			if failedRounds < 64 {
				runtime.Gosched()
				continue
			}
			s.park()
			failedRounds = 0
			continue
		}
		failedRounds = 0
		s.execute(id, w)
	}
}

// execute runs node id and resolves its successors.
func (s *WorkSteal) execute(id, w int32) {
	runNode(s.plan, s.tracer, id, w)
	pushed := false
	for _, succ := range s.plan.Succs[id] {
		if s.pending[succ].Add(-1) == 0 {
			// Newly ready: keep it local (LIFO, cache-warm).
			s.deques[w].PushBottom(succ)
			pushed = true
		}
	}
	if s.remaining.Add(-1) == 0 {
		s.wakeAll() // cycle complete: release any sleepers
		return
	}
	if pushed && s.idlers.Load() > 0 {
		s.wakeAll()
	}
}

// trySteal scans the other workers' deques starting after w.
func (s *WorkSteal) trySteal(w int32) (int32, bool) {
	for i := 1; i < s.threads; i++ {
		v := (int(w) + i) % s.threads
		if id, ok := s.deques[v].Steal(); ok {
			s.steals.Add(1)
			return id, true
		}
	}
	return 0, false
}

// park sleeps until new work is published or the cycle completes. The
// re-verification under the lock closes the race against concurrent
// pushers: a pusher either sees our idler registration and broadcasts, or
// we see its pushed node in the deque scan.
func (s *WorkSteal) park() {
	s.mu.Lock()
	// Register as idle BEFORE scanning the deques: a concurrent pusher
	// either loads idlers >= 1 after its push (and broadcasts), or its
	// push completed before our registration and the scan below sees it.
	s.idlers.Add(1)
	epoch := s.pushEpoch
	if s.remaining.Load() == 0 || s.anyWork() {
		s.idlers.Add(-1)
		s.mu.Unlock()
		return
	}
	s.parks.Add(1)
	for s.pushEpoch == epoch && s.remaining.Load() > 0 {
		s.cond.Wait()
	}
	s.idlers.Add(-1)
	s.mu.Unlock()
}

// anyWork reports whether any deque currently has a stealable node.
func (s *WorkSteal) anyWork() bool {
	for _, d := range s.deques {
		if !d.Empty() {
			return true
		}
	}
	return false
}

// wakeAll bumps the push epoch and wakes all parked workers.
func (s *WorkSteal) wakeAll() {
	s.mu.Lock()
	s.pushEpoch++
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Execute implements Scheduler. The caller acts as worker 0.
func (s *WorkSteal) Execute() {
	if s.tracer != nil {
		s.tracer.BeginCycle()
	}
	for i := range s.pending {
		s.pending[i].Store(s.plan.Indegree[i])
	}
	s.remaining.Store(int32(s.plan.Len()))
	for w := 1; w < s.threads; w++ {
		s.start[w] <- struct{}{}
	}
	s.runCycle(0)
	for w := 1; w < s.threads; w++ {
		<-s.doneCh
	}
}

// Close implements Scheduler.
func (s *WorkSteal) Close() {
	s.closed.Store(true)
	for w := 1; w < s.threads; w++ {
		close(s.start[w])
	}
}
