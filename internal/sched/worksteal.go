package sched

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"djstar/internal/graph"
)

// WSOptions tune the work-stealing scheduler; the zero value is the
// paper's configuration. The alternatives exist for the design-choice
// ablations in the evaluation harness.
type WSOptions struct {
	// RoundRobinInit distributes source nodes round-robin instead of by
	// mixer section (ablation for the paper's locality argument, §V-C).
	RoundRobinInit bool
	// LockedDeque replaces the lock-free Chase–Lev deques with mutex
	// deques of identical policy (ablation for lock-free-ness).
	LockedDeque bool
}

// WorkSteal implements the work-stealing strategy (paper §V-C): every
// worker owns a deque holding only *ready* nodes (all dependencies met).
// Owners push and pop at the bottom (LIFO, cache-warm), thieves steal
// from the top (FIFO, oldest node — the one most likely to unlock further
// work). At cycle start each worker seeds its deque with the source nodes
// of "its" mixer sections; when a worker finishes a node it resolves the
// successors' dependency counters and pushes newly ready nodes locally.
// A worker with an empty deque steals; it sleeps only when every deque is
// empty and nodes remain blocked — exactly the behaviour in Fig. 11.
//
// WorkSteal is a wsPolicy over the shared execution core: the core owns
// the workers and the pending counters; the policy owns the deques and
// the mid-cycle parking machinery.
type WorkSteal struct {
	*core
	pol *wsPolicy
}

// NewWorkSteal returns a work-stealing scheduler; o.WS selects the
// design-choice variants (zero value = the paper's configuration).
func NewWorkSteal(p *graph.Plan, o Options) (*WorkSteal, error) {
	o = o.withDefaults()
	if err := checkThreads(p, o.Threads); err != nil {
		return nil, err
	}
	threads := o.Threads
	pol := &wsPolicy{
		threads: threads,
		opts:    o.WS,
		deques:  make([]dequeIface, threads),
	}
	pol.cond = sync.NewCond(&pol.mu)
	for w := 0; w < threads; w++ {
		if o.WS.LockedDeque {
			pol.deques[w] = NewLockedDeque(p.Len() + 1)
		} else {
			pol.deques[w] = NewDeque(p.Len() + 1)
		}
	}
	pol.initial = initialSources(p, threads, o.WS.RoundRobinInit)
	return &WorkSteal{core: newCore(p, threads, o.Observer, pol, waitBlock), pol: pol}, nil
}

// initialSources assigns the dependency-free nodes to workers. With
// locality (default), all sources of one mixer section land on the same
// worker ("this supports data locality as nodes from the same section
// work on the same audio data"); otherwise plain round-robin.
//
// Each worker's seed list is then sorted by ascending upward rank. The
// lists are pushed bottom-first at cycle start, so the owner's first
// PopBottom (LIFO) takes its highest-rank source — critical-path-first —
// while thieves stealing from the top take the lowest-rank source, the
// one the owner would get to last.
func initialSources(p *graph.Plan, threads int, roundRobin bool) [][]int32 {
	out := make([][]int32, threads)
	if roundRobin {
		for i, id := range p.Sources() {
			w := i % threads
			out[w] = append(out[w], id)
		}
	} else {
		// Deterministic section order: decks A..D, master, control.
		sections := []graph.Section{
			graph.SectionDeckA, graph.SectionDeckB, graph.SectionDeckC,
			graph.SectionDeckD, graph.SectionMaster, graph.SectionControl,
		}
		w := 0
		for _, sec := range sections {
			srcs := p.SourcesBySection[sec]
			if len(srcs) == 0 {
				continue
			}
			out[w%threads] = append(out[w%threads], srcs...)
			w++
		}
	}
	for _, list := range out {
		list := list
		sort.SliceStable(list, func(a, b int) bool {
			return p.Rank[list[a]] < p.Rank[list[b]]
		})
	}
	return out
}

// Steals returns the cumulative successful steal count.
func (s *WorkSteal) Steals() int64 { return s.pol.steals.Load() }

// Parks returns the cumulative mid-cycle sleep count.
func (s *WorkSteal) Parks() int64 { return s.pol.parks.Load() }

// wsPolicy holds the strategy state of WorkSteal: per-worker deques of
// ready nodes, the cycle seed lists, and the mid-cycle parking machinery.
type wsPolicy struct {
	noClose
	threads int
	opts    WSOptions

	deques  []dequeIface
	initial [][]int32 // per-worker source nodes, seeded each cycle

	remaining atomic.Int32

	// Parking: a worker that finds no work takes mu, re-verifies under
	// the lock, and waits on cond; pushers bump pushEpoch and broadcast
	// when idlers are present.
	mu        sync.Mutex
	cond      *sync.Cond
	pushEpoch uint64
	idlers    atomic.Int32

	// steals counts successful steals (diagnostics/ablation output).
	steals atomic.Int64
	// parks counts times a worker actually slept mid-cycle.
	parks atomic.Int64
}

func (pol *wsPolicy) name() string { return NameWorkSteal }

// beginCycle resets the dependency and completion counters.
func (pol *wsPolicy) beginCycle(c *core) {
	c.resetPending()
	pol.remaining.Store(int32(c.plan.Len()))
}

// runCycle is one worker's participation in a graph iteration.
func (pol *wsPolicy) runCycle(c *core, w int32, gen uint64) {
	// Seed the local deque with this worker's sources. Each worker seeds
	// its own deque, keeping deque pushes owner-only.
	for _, id := range pol.initial[w] {
		pol.deques[w].PushBottom(id)
	}
	failedRounds := 0
	for pol.remaining.Load() > 0 {
		id, ok := pol.deques[w].PopBottom()
		if !ok {
			id, ok = pol.trySteal(w)
		}
		if !ok {
			failedRounds++
			if failedRounds < 64 {
				runtime.Gosched()
				continue
			}
			pol.park()
			failedRounds = 0
			continue
		}
		failedRounds = 0
		pol.execute(c, id, w, gen)
	}
}

// execute runs node id and resolves its successors.
func (pol *wsPolicy) execute(c *core, id, w int32, gen uint64) {
	c.exec(c.plan, c.obs, id, w, gen)
	pushed := false
	for _, succ := range c.plan.SuccsOf(id) {
		if c.pending[succ].v.Add(-1) == 0 {
			// Newly ready: keep it local (LIFO, cache-warm).
			pol.deques[w].PushBottom(succ)
			pushed = true
		}
	}
	if pol.remaining.Add(-1) == 0 {
		pol.wakeAll() // cycle complete: release any sleepers
		return
	}
	if pushed && pol.idlers.Load() > 0 {
		pol.wakeAll()
	}
}

// trySteal scans the other workers' deques starting after w.
func (pol *wsPolicy) trySteal(w int32) (int32, bool) {
	for i := 1; i < pol.threads; i++ {
		v := (int(w) + i) % pol.threads
		if id, ok := pol.deques[v].Steal(); ok {
			pol.steals.Add(1)
			return id, true
		}
	}
	return 0, false
}

// park sleeps until new work is published or the cycle completes. The
// re-verification under the lock closes the race against concurrent
// pushers: a pusher either sees our idler registration and broadcasts, or
// we see its pushed node in the deque scan.
func (pol *wsPolicy) park() {
	pol.mu.Lock()
	// Register as idle BEFORE scanning the deques: a concurrent pusher
	// either loads idlers >= 1 after its push (and broadcasts), or its
	// push completed before our registration and the scan below sees it.
	pol.idlers.Add(1)
	epoch := pol.pushEpoch
	if pol.remaining.Load() == 0 || pol.anyWork() {
		pol.idlers.Add(-1)
		pol.mu.Unlock()
		return
	}
	pol.parks.Add(1)
	for pol.pushEpoch == epoch && pol.remaining.Load() > 0 {
		pol.cond.Wait()
	}
	pol.idlers.Add(-1)
	pol.mu.Unlock()
}

// anyWork reports whether any deque currently has a stealable node.
func (pol *wsPolicy) anyWork() bool {
	for _, d := range pol.deques {
		if !d.Empty() {
			return true
		}
	}
	return false
}

// wakeAll bumps the push epoch and wakes all parked workers.
func (pol *wsPolicy) wakeAll() {
	pol.mu.Lock()
	pol.pushEpoch++
	pol.cond.Broadcast()
	pol.mu.Unlock()
}
