package sched

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"djstar/internal/graph"
)

// schedulerCase builds one scheduler of each kind for the conformance
// suite. The cleanup func tears down supporting state (e.g. the shared
// pool behind a session) and must be safe to call after Close.
type schedulerCase struct {
	name  string
	build func(t *testing.T, p *graph.Plan, o Options) (Scheduler, func())
}

func conformanceCases() []schedulerCase {
	none := func() {}
	cases := []schedulerCase{
		{NameSequential, func(t *testing.T, p *graph.Plan, o Options) (Scheduler, func()) {
			return NewSequential(p, o), none
		}},
	}
	for _, name := range []string{NameBusyWait, NameSleep, NameWorkSteal, NameSleepScan, NameStatic} {
		name := name
		cases = append(cases, schedulerCase{name, func(t *testing.T, p *graph.Plan, o Options) (Scheduler, func()) {
			o.Threads = 3
			s, err := New(name, p, o)
			if err != nil {
				t.Fatal(err)
			}
			return s, none
		}})
	}
	cases = append(cases, schedulerCase{NamePool, func(t *testing.T, p *graph.Plan, o Options) (Scheduler, func()) {
		pool, err := NewPool(2, 1)
		if err != nil {
			t.Fatal(err)
		}
		s, err := pool.Attach(p, o)
		if err != nil {
			t.Fatal(err)
		}
		return s, pool.Close
	}})
	return cases
}

// conformancePlan returns a fresh plan plus its execution trace.
func conformancePlan(t *testing.T) (*graph.Plan, *graph.ExecTrace) {
	t.Helper()
	g, tr := graph.RandomDAG(graph.RandomSpec{Nodes: 18, EdgeProb: 0.2, Seed: 77})
	p, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return p, tr
}

// TestLifecycleCloseIdempotent: calling Close twice (or more) must be a
// no-op the second time for every strategy.
func TestLifecycleCloseIdempotent(t *testing.T) {
	for _, c := range conformanceCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			p, tr := conformancePlan(t)
			s, cleanup := c.build(t, p, Options{})
			defer cleanup()
			tr.Reset()
			s.Execute()
			if err := tr.Check(p); err != nil {
				t.Fatal(err)
			}
			s.Close()
			s.Close() // must not panic, deadlock or double-close channels
			s.Close()
		})
	}
}

// TestLifecycleExecuteAfterClosePanics: the uniform contract is a panic
// with a recognizable message, never a hang or a silent no-op.
func TestLifecycleExecuteAfterClosePanics(t *testing.T) {
	for _, c := range conformanceCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			p, _ := conformancePlan(t)
			s, cleanup := c.build(t, p, Options{})
			defer cleanup()
			s.Execute()
			s.Close()
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("Execute after Close did not panic")
				}
				if msg, ok := r.(string); !ok || msg != "sched: Execute called after Close" {
					t.Fatalf("unexpected panic value %v", r)
				}
			}()
			s.Execute()
		})
	}
}

// TestLifecycleObserverConformance: an Observer fixed at construction
// must see every node of every cycle on every strategy — BeginCycle and
// EndCycle bracketing each Execute, one Record per node — without
// disturbing execution.
func TestLifecycleObserverConformance(t *testing.T) {
	for _, c := range conformanceCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			p, tr := conformancePlan(t)
			trace := NewTracer(p.Len())
			s, cleanup := c.build(t, p, Options{Observer: trace})
			defer cleanup()
			defer s.Close()

			for cycle := 0; cycle < 5; cycle++ {
				tr.Reset()
				s.Execute()
				if err := tr.Check(p); err != nil {
					t.Fatalf("cycle %d: %v", cycle, err)
				}
				for i, e := range trace.Events() {
					if e.Worker < 0 {
						t.Fatalf("cycle %d: node %d unobserved", cycle, i)
					}
					if int(e.Worker) >= s.Threads() {
						t.Fatalf("cycle %d: node %d observed on worker %d of %d",
							cycle, i, e.Worker, s.Threads())
					}
					if e.End < e.Start {
						t.Fatalf("cycle %d: node %d has end %d < start %d",
							cycle, i, e.End, e.Start)
					}
				}
				if trace.Makespan() <= 0 {
					t.Fatalf("cycle %d: no makespan", cycle)
				}
			}
		})
	}
}

// TestLifecycleFactoryStaticRegistered: the doc/behaviour mismatch
// regression — New must accept NameStatic (round-robin default
// assignment) and list every known strategy in its error message.
func TestLifecycleFactoryStaticRegistered(t *testing.T) {
	p, tr := conformancePlan(t)
	s, err := New(NameStatic, p, Options{Threads: 4})
	if err != nil {
		t.Fatalf("New(%q): %v", NameStatic, err)
	}
	defer s.Close()
	if s.Name() != NameStatic || s.Threads() != 4 {
		t.Fatalf("Name/Threads = %s/%d", s.Name(), s.Threads())
	}
	for cycle := 0; cycle < 20; cycle++ {
		tr.Reset()
		s.Execute()
		if err := tr.Check(p); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
	// Thread validation applies to the factory's static path too
	// (Threads 0 means "default to 1"; negative is invalid).
	if _, err := New(NameStatic, p, Options{Threads: -1}); err == nil {
		t.Fatal("static accepted negative threads")
	}
	if _, err := New(NameStatic, p, Options{Threads: p.Len() + 1}); err == nil {
		t.Fatal("static accepted more threads than nodes")
	}
	// Unknown strategies name every accepted one.
	_, err = New("bogus", p, Options{Threads: 2})
	if err == nil {
		t.Fatal("unknown strategy accepted")
	}
	for _, name := range AllStrategies {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not mention strategy %q", err, name)
		}
	}
}

// --- fault-tolerance conformance -------------------------------------

// faultDAG builds a fixed DAG whose victim node panics while the armed
// counter is positive (one decrement per execution, so arming with K
// injects exactly K consecutive faults). The victim sits mid-graph with
// predecessors (1, 2) and successors (8, 9 — and 11 transitively), so a
// contained panic must still release downstream nodes or the cycle
// never completes.
func faultDAG(t *testing.T) (*graph.Plan, *graph.ExecTrace, *atomic.Int32) {
	t.Helper()
	const n = 12
	g := graph.New()
	tr := graph.NewExecTrace(n)
	armed := &atomic.Int32{}
	for i := 0; i < n; i++ {
		i := i
		run := func() { tr.Record(i) }
		if i == faultVictim {
			run = func() {
				if armed.Load() > 0 {
					armed.Add(-1)
					panic("injected: victim down")
				}
				tr.Record(i)
			}
		}
		g.AddNode(fmt.Sprintf("n%d", i), graph.DeckSection(i), run)
	}
	for _, e := range [][2]int{
		{0, 1}, {0, 2}, {0, 3}, {0, 4},
		{1, 5}, {2, 5}, {5, 8}, {5, 9},
		{3, 6}, {4, 7}, {6, 10}, {7, 10},
		{8, 11}, {9, 11},
	} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	p, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return p, tr, armed
}

const faultVictim = 5

// checkTolerant verifies a cycle in which the victim was allowed to
// fault or be skipped: every other node ran exactly once, dependency
// order holds among the nodes that did run.
func checkTolerant(p *graph.Plan, tr *graph.ExecTrace) error {
	for i := 0; i < p.Len(); i++ {
		if i == faultVictim {
			continue
		}
		if tr.Stamp(i) == 0 {
			return fmt.Errorf("node %d (%s) never executed", i, p.Names[i])
		}
	}
	for i := 0; i < p.Len(); i++ {
		if tr.Stamp(i) == 0 {
			continue
		}
		for _, d := range p.PredsOf(int32(i)) {
			if s := tr.Stamp(int(d)); s != 0 && s > tr.Stamp(i) {
				return fmt.Errorf("node %d ran before dependency %d", i, d)
			}
		}
	}
	return nil
}

// TestFaultToleranceConformance: every strategy must contain an injected
// mid-cycle node panic — the cycle completes with all other nodes run
// exactly once, the node is quarantined after QuarantineAfter
// consecutive faults, a probe restores it, and subsequent cycles are
// fully clean.
func TestFaultToleranceConformance(t *testing.T) {
	const quarantineAfter, probeEvery = 3, 8
	for _, c := range conformanceCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			p, tr, armed := faultDAG(t)
			s, cleanup := c.build(t, p, Options{})
			defer cleanup()
			defer s.Close()
			s.SetFaultPolicy(FaultPolicy{QuarantineAfter: quarantineAfter, ProbeEvery: probeEvery})
			var mu sync.Mutex
			var recs []FaultRecord
			s.SetFaultHandler(func(r FaultRecord) {
				mu.Lock()
				recs = append(recs, r)
				mu.Unlock()
			})

			cycle := func(tolerant bool) {
				t.Helper()
				tr.Reset()
				s.Execute()
				var err error
				if tolerant {
					err = checkTolerant(p, tr)
				} else {
					err = tr.Check(p)
				}
				if err != nil {
					t.Fatal(err)
				}
			}

			cycle(false) // clean warm-up
			cycle(false)

			armed.Store(quarantineAfter)
			for i := 0; i < quarantineAfter; i++ {
				cycle(true) // faulting: victim dies, cycle still completes
			}
			if got := s.Faults().Recovered; got != quarantineAfter {
				t.Fatalf("recovered = %d, want %d", got, quarantineAfter)
			}
			if !s.Quarantined(faultVictim) {
				t.Fatal("victim not quarantined after consecutive faults")
			}
			mu.Lock()
			if len(recs) != quarantineAfter {
				t.Fatalf("handler saw %d records, want %d", len(recs), quarantineAfter)
			}
			for _, r := range recs {
				if r.Node != faultVictim || r.Name != p.Names[faultVictim] || r.Err == nil {
					t.Fatalf("bad fault record %+v", r)
				}
			}
			if !recs[len(recs)-1].Quarantined {
				t.Fatal("last fault record did not report the quarantine trip")
			}
			mu.Unlock()

			// Quarantined cycles skip the victim; everything else runs.
			// After ProbeEvery cycles a probe re-runs it (now healthy),
			// lifting the quarantine.
			for i := 0; i < probeEvery+1; i++ {
				cycle(true)
			}
			if s.Quarantined(faultVictim) {
				t.Fatal("probe did not lift the quarantine")
			}
			if fs := s.Faults(); fs.Restored != 1 || fs.Probes < 1 {
				t.Fatalf("fault stats after probe = %+v", fs)
			}

			cycle(false) // fully clean again
			cycle(false)
			if got := s.Faults().Recovered; got != quarantineAfter {
				t.Fatalf("recovered grew to %d after restoration", got)
			}
		})
	}
}

// TestPoolFaultIsolationAcrossSessions: three sessions share one pool;
// one session's node panics repeatedly. Its siblings must never observe
// a fault, and every session's every cycle must complete correctly.
func TestPoolFaultIsolationAcrossSessions(t *testing.T) {
	const sessions, cycles = 3, 60
	pool, err := NewPool(2, sessions)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	type sess struct {
		s     *PoolSession
		plan  *graph.Plan
		tr    *graph.ExecTrace
		armed *atomic.Int32
	}
	var ss []sess
	for i := 0; i < sessions; i++ {
		p, tr, armed := faultDAG(t)
		s, err := pool.Attach(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		s.SetFaultPolicy(FaultPolicy{QuarantineAfter: 3, ProbeEvery: 8})
		ss = append(ss, sess{s, p, tr, armed})
	}

	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i := range ss {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			x := ss[i]
			for c := 0; c < cycles; c++ {
				if i == 0 && c == 10 {
					x.armed.Store(3) // session 0 faults mid-run
				}
				x.tr.Reset()
				x.s.Execute()
				if err := checkTolerant(x.plan, x.tr); err != nil {
					errs[i] = fmt.Errorf("session %d cycle %d: %w", i, c, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	if got := ss[0].s.Faults().Recovered; got != 3 {
		t.Fatalf("faulting session recovered = %d, want 3", got)
	}
	if ss[0].s.Quarantined(faultVictim) {
		t.Fatal("faulting session's victim still quarantined (probe never ran)")
	}
	for i := 1; i < sessions; i++ {
		if fs := ss[i].s.Faults(); fs.Recovered != 0 || fs.Quarantined != 0 {
			t.Fatalf("innocent session %d has fault stats %+v", i, fs)
		}
		if ss[i].s.Quarantined(faultVictim) {
			t.Fatalf("innocent session %d quarantined its victim", i)
		}
	}
}
