package sched

import (
	"strings"
	"testing"

	"djstar/internal/graph"
)

// schedulerCase builds one scheduler of each kind for the conformance
// suite. The cleanup func tears down supporting state (e.g. the shared
// pool behind a session) and must be safe to call after Close.
type schedulerCase struct {
	name  string
	build func(t *testing.T, p *graph.Plan) (Scheduler, func())
}

func conformanceCases() []schedulerCase {
	none := func() {}
	cases := []schedulerCase{
		{NameSequential, func(t *testing.T, p *graph.Plan) (Scheduler, func()) {
			return NewSequential(p), none
		}},
	}
	for _, name := range []string{NameBusyWait, NameSleep, NameWorkSteal, NameSleepScan, NameStatic} {
		name := name
		cases = append(cases, schedulerCase{name, func(t *testing.T, p *graph.Plan) (Scheduler, func()) {
			s, err := New(name, p, 3)
			if err != nil {
				t.Fatal(err)
			}
			return s, none
		}})
	}
	cases = append(cases, schedulerCase{NamePool, func(t *testing.T, p *graph.Plan) (Scheduler, func()) {
		pool, err := NewPool(2, 1)
		if err != nil {
			t.Fatal(err)
		}
		s, err := pool.Attach(p)
		if err != nil {
			t.Fatal(err)
		}
		return s, pool.Close
	}})
	return cases
}

// conformancePlan returns a fresh plan plus its execution trace.
func conformancePlan(t *testing.T) (*graph.Plan, *graph.ExecTrace) {
	t.Helper()
	g, tr := graph.RandomDAG(graph.RandomSpec{Nodes: 18, EdgeProb: 0.2, Seed: 77})
	p, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return p, tr
}

// TestLifecycleCloseIdempotent: calling Close twice (or more) must be a
// no-op the second time for every strategy.
func TestLifecycleCloseIdempotent(t *testing.T) {
	for _, c := range conformanceCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			p, tr := conformancePlan(t)
			s, cleanup := c.build(t, p)
			defer cleanup()
			tr.Reset()
			s.Execute()
			if err := tr.Check(p); err != nil {
				t.Fatal(err)
			}
			s.Close()
			s.Close() // must not panic, deadlock or double-close channels
			s.Close()
		})
	}
}

// TestLifecycleExecuteAfterClosePanics: the uniform contract is a panic
// with a recognizable message, never a hang or a silent no-op.
func TestLifecycleExecuteAfterClosePanics(t *testing.T) {
	for _, c := range conformanceCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			p, _ := conformancePlan(t)
			s, cleanup := c.build(t, p)
			defer cleanup()
			s.Execute()
			s.Close()
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("Execute after Close did not panic")
				}
				if msg, ok := r.(string); !ok || msg != "sched: Execute called after Close" {
					t.Fatalf("unexpected panic value %v", r)
				}
			}()
			s.Execute()
		})
	}
}

// TestLifecycleSetTracerMidRun: installing a tracer, removing it with
// nil, and re-installing it between cycles must work for every strategy
// without disturbing execution.
func TestLifecycleSetTracerMidRun(t *testing.T) {
	for _, c := range conformanceCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			p, tr := conformancePlan(t)
			s, cleanup := c.build(t, p)
			defer cleanup()
			defer s.Close()

			cycle := func() {
				tr.Reset()
				s.Execute()
				if err := tr.Check(p); err != nil {
					t.Fatal(err)
				}
			}

			cycle() // untraced

			trace := NewTracer(p.Len())
			s.SetTracer(trace)
			cycle() // traced
			for i, e := range trace.Events() {
				if e.Worker < 0 {
					t.Fatalf("node %d untraced with tracer installed", i)
				}
			}

			s.SetTracer(nil)
			cycle() // untraced again; must not touch the old tracer
			s.SetTracer(trace)
			cycle()
			if trace.Makespan() <= 0 {
				t.Fatal("re-installed tracer recorded nothing")
			}
		})
	}
}

// TestLifecycleFactoryStaticRegistered: the doc/behaviour mismatch
// regression — New must accept NameStatic (round-robin default
// assignment) and list every known strategy in its error message.
func TestLifecycleFactoryStaticRegistered(t *testing.T) {
	p, tr := conformancePlan(t)
	s, err := New(NameStatic, p, 4)
	if err != nil {
		t.Fatalf("New(%q): %v", NameStatic, err)
	}
	defer s.Close()
	if s.Name() != NameStatic || s.Threads() != 4 {
		t.Fatalf("Name/Threads = %s/%d", s.Name(), s.Threads())
	}
	for cycle := 0; cycle < 20; cycle++ {
		tr.Reset()
		s.Execute()
		if err := tr.Check(p); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
	// Thread validation applies to the factory's static path too.
	if _, err := New(NameStatic, p, 0); err == nil {
		t.Fatal("static accepted 0 threads")
	}
	if _, err := New(NameStatic, p, p.Len()+1); err == nil {
		t.Fatal("static accepted more threads than nodes")
	}
	// Unknown strategies name every accepted one.
	_, err = New("bogus", p, 2)
	if err == nil {
		t.Fatal("unknown strategy accepted")
	}
	for _, name := range AllStrategies {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not mention strategy %q", err, name)
		}
	}
}
