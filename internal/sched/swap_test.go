package sched

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"djstar/internal/graph"
)

// Property tests for live topology swaps (StageSwap/AdoptStaged): random
// EditSets applied against running schedulers of every strategy and
// against pool sessions, checking that every epoch's cycles run each
// live node exactly once, in dependency order, with no cycle lost or
// doubled at the swap boundary, and that quarantine/shed state follows
// surviving nodes through the remap.

// liveCell tracks one node identity across plan epochs: its run count
// and the global sequence stamp of its latest run.
type liveCell struct {
	count atomic.Int64
	stamp atomic.Int64
}

// editable is a mutable test graph whose nodes record into liveCells,
// letting the test follow identities across any number of edits.
type editable struct {
	g     *graph.Graph
	cells []*liveCell // index = current graph node ID
	seq   atomic.Int64
	next  int // added-node name counter
}

func (e *editable) newCell() (*liveCell, func()) {
	c := &liveCell{}
	return c, func() {
		c.count.Add(1)
		c.stamp.Store(e.seq.Add(1))
	}
}

// newEditable builds a random base DAG (edges always low ID -> high ID,
// an invariant every mutation below preserves, so edits never create
// cycles by construction).
func newEditable(nodes int, edgeProb float64, rng *rand.Rand) *editable {
	e := &editable{g: graph.New()}
	for i := 0; i < nodes; i++ {
		c, run := e.newCell()
		e.g.AddNode(fmt.Sprintf("base%d", i), graph.SectionMaster, run)
		e.cells = append(e.cells, c)
	}
	for to := 1; to < nodes; to++ {
		for from := 0; from < to; from++ {
			if rng.Float64() < edgeProb {
				if err := e.g.AddEdge(from, to); err != nil {
					panic(err)
				}
			}
		}
	}
	return e
}

// pickSurvivor returns a random node ID not yet removed by this set.
func pickSurvivor(rng *rand.Rand, n int, removed map[int]bool) int {
	for tries := 0; tries < 8; tries++ {
		id := rng.Intn(n)
		if !removed[id] {
			return id
		}
	}
	return -1
}

// mutate applies one random EditSet (1-3 ops) to the editable. It
// reports false when the generated set was rejected (e.g. a duplicate
// edge) — the graph is then unchanged, exactly the rollback contract.
func (e *editable) mutate(rng *rand.Rand, minNodes int) (*graph.Plan, *graph.Remap, bool) {
	es := &graph.EditSet{}
	var added []*liveCell
	removed := map[int]bool{}
	n := e.g.Len()
	ops := 1 + rng.Intn(3)
	for k := 0; k < ops; k++ {
		op := rng.Intn(4)
		if op == 1 && n-len(removed) <= minNodes {
			op = 0
		}
		switch op {
		case 0: // add a node fed by a random survivor
			c, run := e.newCell()
			ref := es.AddNode(graph.NodeSpec{Name: fmt.Sprintf("live%d", e.next), Run: run})
			e.next++
			if from := pickSurvivor(rng, n, removed); from >= 0 {
				es.AddEdge(graph.NodeRef(from), ref)
			}
			added = append(added, c)
		case 1: // remove a node
			id := pickSurvivor(rng, n, removed)
			if id < 0 {
				continue
			}
			es.RemoveNode(graph.NodeRef(id))
			removed[id] = true
		case 2: // add a low->high edge between survivors
			i, j := rng.Intn(n), rng.Intn(n)
			if i > j {
				i, j = j, i
			}
			if i == j || removed[i] || removed[j] {
				continue
			}
			es.AddEdge(graph.NodeRef(i), graph.NodeRef(j))
		case 3: // remove an existing edge between survivors
			i := pickSurvivor(rng, n, removed)
			if i < 0 {
				continue
			}
			succs := e.g.Node(i).Succs()
			if len(succs) == 0 {
				continue
			}
			j := succs[rng.Intn(len(succs))]
			if removed[j] {
				continue
			}
			es.RemoveEdge(graph.NodeRef(i), graph.NodeRef(j))
		}
	}
	if es.Len() == 0 {
		return nil, nil, false
	}
	g2, plan, r, err := e.g.Apply(es)
	if err != nil {
		return nil, nil, false
	}
	cells := make([]*liveCell, g2.Len())
	ai := 0
	for newID := range cells {
		if old := r.NewToOld[newID]; old >= 0 {
			cells[newID] = e.cells[old]
		} else {
			cells[newID] = added[ai]
			ai++
		}
	}
	e.g, e.cells = g2, cells
	return plan, r, true
}

// runAndCheck executes `cycles` cycles and verifies each live node ran
// exactly once per cycle, after all of its current-plan predecessors.
func (e *editable) runAndCheck(t *testing.T, s Scheduler, plan *graph.Plan, cycles int, tag string) {
	t.Helper()
	for c := 0; c < cycles; c++ {
		before := make([]int64, len(e.cells))
		for i, cell := range e.cells {
			before[i] = cell.count.Load()
		}
		s.Execute()
		for i, cell := range e.cells {
			if got := cell.count.Load() - before[i]; got != 1 {
				t.Fatalf("%s cycle %d: node %d (%s) ran %d times, want exactly once",
					tag, c, i, plan.Names[i], got)
			}
		}
		for i := 0; i < plan.Len(); i++ {
			for _, d := range plan.PredsOf(int32(i)) {
				if e.cells[d].stamp.Load() > e.cells[i].stamp.Load() {
					t.Fatalf("%s cycle %d: node %s ran before dependency %s",
						tag, c, plan.Names[i], plan.Names[d])
				}
			}
		}
	}
}

// TestSwapPropertyAllStrategies drives >100 random EditSets across every
// strategy: each staged swap must be adopted at the next Execute with no
// cycle lost or doubled on either side of the boundary.
func TestSwapPropertyAllStrategies(t *testing.T) {
	const editsPerRun, cyclesPerEpoch = 5, 3
	seeds := []int64{1, 2, 7, 42}
	for _, name := range AllStrategies {
		for _, seed := range seeds {
			tag := fmt.Sprintf("%s/seed%d", name, seed)
			rng := rand.New(rand.NewSource(seed))
			e := newEditable(12, 0.25, rng)
			plan, err := e.g.Compile()
			if err != nil {
				t.Fatal(err)
			}
			threads := 3
			if name == NameSequential {
				threads = 1
			}
			s, err := New(name, plan, Options{Threads: threads})
			if err != nil {
				t.Fatalf("%s: %v", tag, err)
			}
			e.runAndCheck(t, s, plan, cyclesPerEpoch, tag)
			for edits := 0; edits < editsPerRun; {
				plan2, r, ok := e.mutate(rng, threads+2)
				if !ok {
					continue
				}
				if err := s.StageSwap(Swap{Plan: plan2, OldToNew: r.OldToNew}); err != nil {
					t.Fatalf("%s: StageSwap: %v", tag, err)
				}
				edits++
				plan = plan2
				// Execute adopts the staged swap at its top.
				e.runAndCheck(t, s, plan, cyclesPerEpoch, fmt.Sprintf("%s/edit%d", tag, edits))
			}
			s.Close()
		}
	}
}

// TestSwapPropertyPoolSessions runs the same property against two
// concurrent pool sessions: each session's swaps are independent and
// must not disturb the other session's cycles.
func TestSwapPropertyPoolSessions(t *testing.T) {
	p, err := NewPool(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for _, seed := range []int64{5, 17} {
		rng := rand.New(rand.NewSource(seed))
		a := newEditable(10, 0.25, rng)
		b := newEditable(14, 0.2, rng)
		planA, _ := a.g.Compile()
		planB, _ := b.g.Compile()
		sa, err := p.Attach(planA, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sb, err := p.Attach(planB, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for edits := 0; edits < 6; {
			a.runAndCheck(t, sa, planA, 2, "poolA")
			b.runAndCheck(t, sb, planB, 2, "poolB")
			// Edit one session per round, alternating.
			e, s, plan := a, sa, &planA
			if edits%2 == 1 {
				e, s, plan = b, sb, &planB
			}
			plan2, r, ok := e.mutate(rng, 6)
			if !ok {
				continue
			}
			if err := s.StageSwap(Swap{Plan: plan2, OldToNew: r.OldToNew}); err != nil {
				t.Fatalf("pool StageSwap: %v", err)
			}
			*plan = plan2
			edits++
		}
		a.runAndCheck(t, sa, planA, 3, "poolA/final")
		b.runAndCheck(t, sb, planB, 3, "poolB/final")
		sa.Close()
		sb.Close()
	}
}

// TestSwapPreservesQuarantineAndShed: a quarantined node and a shed node
// must keep their state across a topology swap, under their new IDs.
func TestSwapPreservesQuarantineAndShed(t *testing.T) {
	e := &editable{g: graph.New()}
	cBoom, _ := e.newCell()
	boomArmed := true
	e.g.AddNode("boom", graph.SectionMaster, func() {
		if boomArmed {
			panic("kernel fault")
		}
		cBoom.count.Add(1)
	})
	e.cells = append(e.cells, cBoom)
	cShed, runShed := e.newCell()
	e.g.AddNode("sheddable", graph.SectionMaster, runShed)
	e.cells = append(e.cells, cShed)
	cOK, runOK := e.newCell()
	e.g.AddNode("ok", graph.SectionMaster, runOK)
	e.cells = append(e.cells, cOK)
	plan, err := e.g.Compile()
	if err != nil {
		t.Fatal(err)
	}

	s, err := New(NameBusyWait, plan, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetFaultPolicy(FaultPolicy{QuarantineAfter: 1, ProbeEvery: 1 << 30})
	boomID := int32(e.g.NodeByName("boom"))
	shedID := int32(e.g.NodeByName("sheddable"))
	s.Execute()
	if !s.Quarantined(boomID) {
		t.Fatal("boom not quarantined after fault")
	}
	s.SetNodeShed(shedID, true)
	s.Execute()
	shedRuns := cShed.count.Load()

	// Edit: add a node downstream of ok; everything survives.
	es := &graph.EditSet{}
	cNew, runNew := e.newCell()
	ref := es.AddNode(graph.NodeSpec{Name: "joined", Run: runNew})
	es.AddEdge(graph.NodeRef(e.g.NodeByName("ok")), ref)
	g2, plan2, r, err := e.g.Apply(es)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.StageSwap(Swap{Plan: plan2, OldToNew: r.OldToNew}); err != nil {
		t.Fatal(err)
	}
	s.Execute()

	newBoom := int32(g2.NodeByName("boom"))
	newShed := int32(g2.NodeByName("sheddable"))
	if !s.Quarantined(newBoom) {
		t.Fatal("quarantine lost across swap")
	}
	if got := cShed.count.Load(); got != shedRuns {
		t.Fatalf("shed node ran across swap: %d -> %d", shedRuns, got)
	}
	if cNew.count.Load() != 1 {
		t.Fatalf("added node ran %d times, want 1", cNew.count.Load())
	}
	// Un-shed under the NEW ID and disarm the kernel: the shed node runs
	// again; the quarantined node stays bypassed until its probe.
	s.SetNodeShed(newShed, false)
	boomArmed = false
	s.Execute()
	if got := cShed.count.Load(); got != shedRuns+1 {
		t.Fatalf("un-shed node did not run: %d -> %d", shedRuns, got)
	}
	if cBoom.count.Load() != 0 {
		t.Fatal("quarantined node ran before its probe window")
	}
}

// TestStageSwapValidation covers the refusal paths: empty plans, worker
// counts exceeding the new plan, and staging after Close.
func TestStageSwapValidation(t *testing.T) {
	g, _ := graph.RandomDAG(graph.RandomSpec{Nodes: 6, EdgeProb: 0.3, Seed: 3})
	plan, _ := g.Compile()
	s, err := New(NameWorkSteal, plan, Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.StageSwap(Swap{}); err == nil {
		t.Fatal("empty swap accepted")
	}
	small, _ := graph.RandomDAG(graph.RandomSpec{Nodes: 2, Seed: 3})
	smallPlan, _ := small.Compile()
	if err := s.StageSwap(Swap{Plan: smallPlan}); err == nil {
		t.Fatal("swap shrinking below worker count accepted")
	}
	// A staged-but-never-adopted swap must not leak or wedge Close.
	if err := s.StageSwap(Swap{Plan: plan}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.StageSwap(Swap{Plan: plan}); err == nil {
		t.Fatal("StageSwap after Close accepted")
	}
}
