package sched

import (
	"runtime"
	"testing"
	"time"

	"djstar/internal/graph"
)

// TestWorkStealParkPath forces the mid-cycle sleep path: a graph that is
// one long chain of slow nodes gives the three non-executing workers
// nothing to pop or steal for the whole cycle, so they exhaust their spin
// budget and park; the chain worker's completions and the cycle end must
// wake them (no deadlock, correct execution).
func TestWorkStealParkPath(t *testing.T) {
	g := graph.New()
	const n = 48
	tr := graph.NewExecTrace(n)
	prev := -1
	for i := 0; i < n; i++ {
		i := i
		id := g.AddNode("chain", graph.SectionDeckA, func() {
			// Slow enough that idle workers burn through their 64
			// failed steal rounds while the chain is still running.
			deadline := time.Now().Add(200 * time.Microsecond)
			for time.Now().Before(deadline) {
				runtime.Gosched()
			}
			tr.Record(i)
		})
		if prev >= 0 {
			if err := g.AddEdge(prev, id); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	p, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWorkSteal(p, Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for cycle := 0; cycle < 5; cycle++ {
		tr.Reset()
		done := make(chan struct{})
		go func() {
			s.Execute()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("Execute deadlocked with parked workers")
		}
		if err := tr.Check(p); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
	if s.Parks() == 0 {
		t.Log("note: no worker parked (host scheduling kept everyone busy); path not exercised")
	} else {
		t.Logf("parks=%d steals=%d", s.Parks(), s.Steals())
	}
}

// TestWorkStealStealPath forces actual steals: all sources seeded on one
// worker via section affinity (every node in one section), so the other
// workers can only obtain work by stealing. Verify Steals() advances on
// multicore hosts; on any host, execution must stay correct.
func TestWorkStealStealPath(t *testing.T) {
	g := graph.New()
	const n = 64
	tr := graph.NewExecTrace(n)
	for i := 0; i < n; i++ {
		i := i
		g.AddNode("src", graph.SectionDeckA, func() {
			x := 1.0
			for j := 0; j < 2000; j++ {
				x = x*1.0000001 + 0.5
			}
			_ = x
			tr.Record(i)
		})
	}
	p, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWorkSteal(p, Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for cycle := 0; cycle < 20; cycle++ {
		tr.Reset()
		s.Execute()
		if err := tr.Check(p); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("steals=%d parks=%d (64 sources all seeded on one worker)", s.Steals(), s.Parks())
	if runtime.NumCPU() >= 4 && s.Steals() == 0 {
		t.Error("no steals despite single-worker seeding on a multicore host")
	}
}
