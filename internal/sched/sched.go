// Package sched implements the paper's three parallelization strategies
// for the DJ Star task graph — busy-waiting, thread-sleeping and
// work-stealing (paper §V) — plus the sequential baseline they are
// compared against (§VI, Table I).
//
// All schedulers execute a compiled graph.Plan once per call to Execute.
// Workers are persistent goroutines pinned to OS threads; Execute is
// called from the audio engine once per 2.9 ms audio processing cycle, so
// per-cycle setup must be cheap and allocation-free.
//
// Memory model: a node's buffer writes are published to its successors
// through the per-node done flags / pending counters, which are
// manipulated with sync/atomic operations (sequentially consistent in
// Go); a successor therefore observes all effects of its predecessors.
package sched

import (
	"fmt"
	"runtime"
	"time"

	"djstar/internal/graph"
)

// Observer receives the schedule realization of every cycle: the
// scheduler calls BeginCycle on the Execute caller before any worker is
// released, Record from whichever worker ran each node, and EndCycle on
// the Execute caller after the iteration completes. Record must be cheap,
// allocation-free and safe for concurrent calls from distinct workers
// (one node is recorded by exactly one worker per cycle). An Observer is
// installed at construction through Options and replaced only by a
// topology swap carrying a new one (Swap.Observer), which takes effect
// atomically between two cycles.
type Observer interface {
	// BeginCycle marks the start of an iteration (Execute caller thread).
	BeginCycle()
	// Record stores one node's execution window. Start and end are
	// NowNanos timestamps; worker identifies the executing worker.
	Record(node, worker int32, start, end int64)
	// EndCycle marks the end of the iteration (Execute caller thread,
	// after every node has completed).
	EndCycle()
}

// Options configure scheduler construction; the zero value means
// "1 thread, no observer, default work-stealing configuration".
type Options struct {
	// Threads is the worker count for parallel strategies (the Execute
	// caller participates as one of them). Ignored by NewSequential and
	// Pool.Attach (a pool session's parallelism is the pool's).
	Threads int
	// Observer, when non-nil, receives every cycle's schedule
	// realization. Must not be a typed nil pointer.
	Observer Observer
	// WS tunes the work-stealing strategy (ignored by the others).
	WS WSOptions
}

// withDefaults normalizes an Options value.
func (o Options) withDefaults() Options {
	if o.Threads == 0 {
		o.Threads = 1
	}
	return o
}

// Scheduler executes a compiled task graph, one full iteration per
// Execute call. Implementations are not safe for concurrent Execute
// calls; the audio engine serializes cycles by construction.
//
// All implementations share one lifecycle contract, enforced by the
// conformance tests: Close is idempotent, Execute panics after Close,
// and the construction-time Observer (if any) sees every cycle.
type Scheduler interface {
	// Name returns the strategy identifier ("seq", "busy", "sleep", "ws",
	// "sleepscan", "static", "pool").
	Name() string
	// Threads returns the worker count (1 for the sequential baseline).
	Threads() int
	// Execute runs every node of the plan exactly once, respecting
	// dependencies, and returns when the iteration is complete.
	Execute()
	// Close shuts down the worker pool. Close is idempotent; the
	// scheduler must not be used afterwards (Execute panics).
	Close()

	// Fault tolerance (see faulttol.go). Every scheduler contains node
	// panics: the cycle still completes, the faulted node's output is
	// flushed to silence, and after FaultPolicy.QuarantineAfter
	// consecutive faults the node is quarantined onto its bypass
	// stand-in, probed every FaultPolicy.ProbeEvery cycles.

	// SetFaultPolicy configures quarantine thresholds (zero fields =
	// defaults); call before the first Execute or between cycles.
	SetFaultPolicy(p FaultPolicy)
	// SetFaultHandler installs a callback invoked synchronously from the
	// worker that recovered a node fault. It must be cheap and safe for
	// concurrent use; install before the first Execute or between cycles.
	SetFaultHandler(h func(FaultRecord))
	// Faults returns the cumulative fault-tolerance counters.
	Faults() FaultStats
	// SetNodeShed marks (or unmarks) a node to run its bypass stand-in
	// instead of its kernel — the engine's deadline governor's degraded
	// modes. Takes effect on the next cycle.
	SetNodeShed(id int32, shed bool)
	// Quarantined reports whether a node is currently quarantined.
	Quarantined(id int32) bool
	// Inflight returns 1 + the node worker w is currently executing, or
	// 0 when the worker is idle (the stall watchdog's view).
	Inflight(w int32) int32

	// Live topology swaps (see swap.go). StageSwap stages a new compiled
	// plan; it may be called from any goroutine and a later stage
	// replaces an unadopted earlier one. AdoptStaged adopts the staged
	// swap — workers, fault counters and remapped quarantine/shed state
	// survive — and must be called from the Execute thread with no cycle
	// in flight; Execute also adopts a staged swap at its top. It reports
	// whether a swap was adopted.
	StageSwap(sw Swap) error
	AdoptStaged() bool
}

// Strategy names accepted by New.
const (
	NameSequential = "seq"
	NameBusyWait   = "busy"
	NameSleep      = "sleep"
	NameWorkSteal  = "ws"
)

// Strategies lists the paper's strategy names in presentation order.
// Three additional executors exist beyond the paper's set, all accepted
// by New: NameSleepScan (the improved sleeper §V-B sketches), NameStatic
// (the offline MCFlow-style executor, with a default round-robin worker
// assignment when built through New), and — via NewPool/Pool.Attach
// rather than New — NamePool, the shared-pool multi-session executor.
var Strategies = []string{NameSequential, NameBusyWait, NameSleep, NameWorkSteal}

// AllStrategies lists every strategy name New accepts, paper strategies
// first.
var AllStrategies = []string{
	NameSequential, NameBusyWait, NameSleep, NameWorkSteal,
	NameSleepScan, NameStatic,
}

// New constructs a scheduler by strategy name. NameStatic gets a default
// round-robin assignment of the queue order (use NewStatic directly to
// supply a computed schedule); NamePool sessions need a shared Pool and
// are built with NewPool + Pool.Attach instead.
func New(name string, p *graph.Plan, o Options) (Scheduler, error) {
	o = o.withDefaults()
	switch name {
	case NameSequential:
		return NewSequential(p, o), nil
	case NameBusyWait:
		return NewBusyWait(p, o)
	case NameSleep:
		return NewSleep(p, o)
	case NameWorkSteal:
		return NewWorkSteal(p, o)
	case NameSleepScan:
		return NewSleepScan(p, o)
	case NameStatic:
		if err := checkThreads(p, o.Threads); err != nil {
			return nil, err
		}
		return NewStatic(p, roundRobinLists(p, o.Threads), o)
	default:
		return nil, fmt.Errorf("sched: unknown strategy %q (want one of %v)",
			name, AllStrategies)
	}
}

// checkThreads validates a worker count against the plan.
func checkThreads(p *graph.Plan, threads int) error {
	if p == nil || p.Len() == 0 {
		return fmt.Errorf("sched: empty plan")
	}
	if threads < 1 {
		return fmt.Errorf("sched: threads = %d, want >= 1", threads)
	}
	if threads > p.Len() {
		return fmt.Errorf("sched: threads = %d exceeds node count %d", threads, p.Len())
	}
	return nil
}

// spinYieldEvery is how many failed spin probes a waiter performs before
// yielding the processor once. Pure spinning matches the paper's strategy;
// the occasional Gosched keeps the program live on over-subscribed
// machines (more workers than free cores) without measurably changing
// behaviour when cores are available.
const spinYieldEvery = 2048

// spinWait spins until cond() is true.
func spinWait(cond func() bool) {
	for i := 1; !cond(); i++ {
		if i%spinYieldEvery == 0 {
			runtime.Gosched()
		}
	}
}

// nowNanos returns a monotonic timestamp in nanoseconds.
func nowNanos() int64 { return int64(time.Since(timeBase)) }

// NowNanos exposes the scheduler clock: the monotonic timestamp base all
// Observer.Record start/end values are measured on. Observers that need
// to relate node windows to a cycle epoch of their own read this clock.
func NowNanos() int64 { return nowNanos() }

var timeBase = time.Now()

// TraceEvent is one node execution recorded by a Tracer.
type TraceEvent struct {
	Node   int32
	Worker int32
	// Start and End are nanoseconds relative to the cycle start.
	Start, End int64
}

// Tracer captures one iteration's schedule realization (paper Fig. 11).
// It is preallocated for the plan size and allocation-free while tracing.
// Tracer implements Observer; install it at construction through
// Options{Observer: tr}.
type Tracer struct {
	events []TraceEvent
	base   int64
}

// NewTracer returns a tracer for plans of n nodes.
func NewTracer(n int) *Tracer {
	return &Tracer{events: make([]TraceEvent, n)}
}

// BeginCycle resets the tracer clock; schedulers call it from Execute.
func (t *Tracer) BeginCycle() {
	t.base = nowNanos()
	for i := range t.events {
		t.events[i] = TraceEvent{Node: int32(i), Worker: -1}
	}
}

// Record stores one node's execution window.
func (t *Tracer) Record(node, worker int32, start, end int64) {
	t.events[node] = TraceEvent{
		Node:   node,
		Worker: worker,
		Start:  start - t.base,
		End:    end - t.base,
	}
}

// EndCycle implements Observer; a Tracer has no end-of-cycle work.
func (t *Tracer) EndCycle() {}

// Events returns the recorded events indexed by node ID. Entries with
// Worker == -1 did not execute (only possible on a partial trace).
func (t *Tracer) Events() []TraceEvent { return t.events }

// Makespan returns the latest End across all events.
func (t *Tracer) Makespan() int64 {
	var m int64
	for _, e := range t.events {
		if e.Worker >= 0 && e.End > m {
			m = e.End
		}
	}
	return m
}

// runNode executes node id on worker w, recording its window when an
// observer is installed. Shared by all strategies.
func runNode(p *graph.Plan, o Observer, id, w int32) {
	if o == nil {
		p.Run[id]()
		return
	}
	start := nowNanos()
	p.Run[id]()
	o.Record(id, w, start, nowNanos())
}
