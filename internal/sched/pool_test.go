package sched

import (
	"fmt"
	"sync"
	"testing"

	"djstar/internal/graph"
)

func TestPoolValidation(t *testing.T) {
	if _, err := NewPool(-1, 4); err == nil {
		t.Fatal("negative workers accepted")
	}
	if _, err := NewPool(2, 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	p, err := NewPool(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Attach(nil, Options{}); err == nil {
		t.Fatal("nil plan accepted")
	}
	g, _ := graph.RandomDAG(graph.RandomSpec{Nodes: 5, EdgeProb: 0.2, Seed: 1})
	plan, _ := g.Compile()
	s, err := p.Attach(plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Attach(plan, Options{}); err == nil {
		t.Fatal("attach beyond capacity accepted")
	}
	s.Close()
	// Closing frees the slot for a new session.
	s2, err := p.Attach(plan, Options{})
	if err != nil {
		t.Fatalf("re-attach after Close: %v", err)
	}
	s2.Close()
}

func TestPoolSessionSchedulerContract(t *testing.T) {
	p, err := NewPool(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	g, tr := graph.RandomDAG(graph.RandomSpec{Nodes: 30, EdgeProb: 0.2, Seed: 11})
	plan, _ := g.Compile()
	s, err := p.Attach(plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Name() != NamePool {
		t.Fatalf("Name = %q", s.Name())
	}
	if s.Threads() != 4 {
		t.Fatalf("Threads = %d, want workers+1 = 4", s.Threads())
	}
	for cycle := 0; cycle < 200; cycle++ {
		tr.Reset()
		s.Execute()
		if err := tr.Check(plan); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
}

func TestPoolSessionTracer(t *testing.T) {
	p, err := NewPool(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	cfg := graph.DefaultConfig()
	cfg.TrackBars = 2
	sess, g, err := graph.BuildDJStar(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, _ := g.Compile()
	tr := NewTracer(plan.Len())
	s, err := p.Attach(plan, Options{Observer: tr})
	if err != nil {
		t.Fatal(err)
	}
	sess.Prepare()
	s.Execute()
	for i, e := range tr.Events() {
		if e.Worker < 0 {
			t.Fatalf("node %d untraced", i)
		}
		if int(e.Worker) >= s.Threads() {
			t.Fatalf("node %d traced on worker %d of %d", i, e.Worker, s.Threads())
		}
	}
	if tr.Makespan() <= 0 {
		t.Fatal("no makespan")
	}
	// The observer is fixed at attach time; a fresh session on the freed
	// slot runs unobserved.
	s.Close()
	s2, err := p.Attach(plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	sess.Prepare()
	s2.Execute()
}

// TestPoolConcurrentSessions is the acceptance test for shared-pool
// scheduling: several sessions execute concurrently over one worker
// pool, each from its own goroutine, with per-session dependency
// correctness verified every cycle. Run under -race this also checks the
// cross-session memory-model argument.
func TestPoolConcurrentSessions(t *testing.T) {
	const sessions = 5
	const cycles = 150
	p, err := NewPool(4, sessions)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		g, tr := graph.RandomDAG(graph.RandomSpec{
			Nodes:    20 + 9*i,
			EdgeProb: 0.15,
			Seed:     uint64(100 + i),
		})
		plan, err := g.Compile()
		if err != nil {
			t.Fatal(err)
		}
		s, err := p.Attach(plan, Options{})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, s *PoolSession, plan *graph.Plan, tr *graph.ExecTrace) {
			defer wg.Done()
			defer s.Close()
			for c := 0; c < cycles; c++ {
				tr.Reset()
				s.Execute()
				if err := tr.Check(plan); err != nil {
					errs <- fmt.Errorf("session %d cycle %d: %v", i, c, err)
					return
				}
			}
		}(i, s, plan, tr)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPoolZeroWorkers: a pool without helper workers still executes
// correctly — every session runs on its caller through the claim
// protocol.
func TestPoolZeroWorkers(t *testing.T) {
	p, err := NewPool(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	g, tr := graph.RandomDAG(graph.RandomSpec{Nodes: 25, EdgeProb: 0.2, Seed: 21})
	plan, _ := g.Compile()
	s, err := p.Attach(plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Threads() != 1 {
		t.Fatalf("Threads = %d, want 1", s.Threads())
	}
	for cycle := 0; cycle < 50; cycle++ {
		tr.Reset()
		s.Execute()
		if err := tr.Check(plan); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
}

// TestPoolMatchesSequentialAudio verifies dataflow determinism in shared
// pool mode on the real 67-node graph: master output matches the
// sequential execution bit for bit, while three other sessions churn on
// the same pool.
func TestPoolMatchesSequentialAudio(t *testing.T) {
	const cycles = 60

	run := func(build func(p *graph.Plan) (Scheduler, error)) []float64 {
		cfg := graph.DefaultConfig()
		cfg.TrackBars = 2
		sess, g, err := graph.BuildDJStar(cfg)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := g.Compile()
		if err != nil {
			t.Fatal(err)
		}
		s, err := build(plan)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		var sums []float64
		for c := 0; c < cycles; c++ {
			sess.Prepare()
			s.Execute()
			sum := 0.0
			for _, v := range sess.MasterOut().L {
				sum += v
			}
			sums = append(sums, sum)
		}
		return sums
	}

	ref := run(func(p *graph.Plan) (Scheduler, error) { return NewSequential(p, Options{}), nil })

	pool, err := NewPool(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Background churn: three noisy sessions executing concurrently.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		g, tr := graph.RandomDAG(graph.RandomSpec{Nodes: 30, EdgeProb: 0.1, Seed: uint64(31 + i)})
		plan, err := g.Compile()
		if err != nil {
			t.Fatal(err)
		}
		s, err := pool.Attach(plan, Options{})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(s *PoolSession, tr *graph.ExecTrace) {
			defer wg.Done()
			defer s.Close()
			for {
				select {
				case <-stop:
					return
				default:
					tr.Reset()
					s.Execute()
				}
			}
		}(s, tr)
	}

	got := run(func(p *graph.Plan) (Scheduler, error) { return pool.Attach(p, Options{}) })
	close(stop)
	wg.Wait()

	for c := range ref {
		if got[c] != ref[c] {
			t.Fatalf("cycle %d: pool output %v differs from sequential %v", c, got[c], ref[c])
		}
	}
}
