package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

// both deque implementations under test.
func dequeImpls(capacity int) map[string]dequeIface {
	return map[string]dequeIface{
		"chase-lev": NewDeque(capacity),
		"locked":    NewLockedDeque(capacity),
	}
}

func TestDequeLIFOOwner(t *testing.T) {
	for name, d := range dequeImpls(8) {
		for i := int32(1); i <= 4; i++ {
			d.PushBottom(i)
		}
		for want := int32(4); want >= 1; want-- {
			got, ok := d.PopBottom()
			if !ok || got != want {
				t.Fatalf("%s: PopBottom = %v,%v want %v", name, got, ok, want)
			}
		}
		if _, ok := d.PopBottom(); ok {
			t.Fatalf("%s: pop from empty succeeded", name)
		}
		if !d.Empty() {
			t.Fatalf("%s: not empty after drain", name)
		}
	}
}

func TestDequeFIFOSteal(t *testing.T) {
	for name, d := range dequeImpls(8) {
		for i := int32(1); i <= 4; i++ {
			d.PushBottom(i)
		}
		for want := int32(1); want <= 4; want++ {
			got, ok := d.Steal()
			if !ok || got != want {
				t.Fatalf("%s: Steal = %v,%v want %v", name, got, ok, want)
			}
		}
		if _, ok := d.Steal(); ok {
			t.Fatalf("%s: steal from empty succeeded", name)
		}
	}
}

func TestDequeMixedEnds(t *testing.T) {
	for name, d := range dequeImpls(8) {
		d.PushBottom(1)
		d.PushBottom(2)
		d.PushBottom(3)
		if got, _ := d.Steal(); got != 1 {
			t.Fatalf("%s: steal got %d, want 1", name, got)
		}
		if got, _ := d.PopBottom(); got != 3 {
			t.Fatalf("%s: pop got %d, want 3", name, got)
		}
		if got, _ := d.PopBottom(); got != 2 {
			t.Fatalf("%s: pop got %d, want 2", name, got)
		}
	}
}

func TestDequeCapacityRoundsUp(t *testing.T) {
	if c := NewDeque(67).Cap(); c != 128 {
		t.Fatalf("Cap = %d, want 128", c)
	}
	if c := NewDeque(0).Cap(); c != 1 {
		t.Fatalf("Cap(0) = %d, want 1", c)
	}
}

func TestDequeOverflowPanics(t *testing.T) {
	for name, d := range dequeImpls(2) {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: overflow did not panic", name)
				}
			}()
			for i := int32(0); i < 10; i++ {
				d.PushBottom(i)
			}
		}()
	}
}

func TestDequeWrapAround(t *testing.T) {
	// Exercise index wrapping far past the capacity.
	for name, d := range dequeImpls(4) {
		for round := int32(0); round < 100; round++ {
			d.PushBottom(round)
			d.PushBottom(round + 1000)
			if got, _ := d.Steal(); got != round {
				t.Fatalf("%s round %d: steal %d", name, round, got)
			}
			if got, _ := d.PopBottom(); got != round+1000 {
				t.Fatalf("%s round %d: pop %d", name, round, got)
			}
		}
	}
}

// TestDequeConcurrentConsistency runs an owner pushing/popping against
// several thieves and checks that every pushed element is consumed exactly
// once.
func TestDequeConcurrentConsistency(t *testing.T) {
	for name, d := range dequeImpls(1 << 12) {
		const total = 1 << 12
		const thieves = 4

		consumed := make([]atomic.Int32, total)
		take := func(x int32) {
			if consumed[x].Add(1) != 1 {
				t.Errorf("%s: element %d consumed twice", name, x)
			}
		}

		var wg sync.WaitGroup
		stop := atomic.Bool{}
		for i := 0; i < thieves; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stop.Load() {
					if x, ok := d.Steal(); ok {
						take(x)
					}
				}
				// Final drain.
				for {
					x, ok := d.Steal()
					if !ok {
						return
					}
					take(x)
				}
			}()
		}

		// Owner: push everything, popping a few now and then.
		for i := int32(0); i < total; i++ {
			d.PushBottom(i)
			if i%3 == 0 {
				if x, ok := d.PopBottom(); ok {
					take(x)
				}
			}
		}
		for {
			x, ok := d.PopBottom()
			if !ok {
				break
			}
			take(x)
		}
		stop.Store(true)
		wg.Wait()

		for i := range consumed {
			if consumed[i].Load() != 1 {
				t.Fatalf("%s: element %d consumed %d times", name, i, consumed[i].Load())
			}
		}
	}
}
