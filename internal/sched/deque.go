package sched

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// dequeIface abstracts the two work-queue implementations so the
// work-stealing scheduler can run with either (the locked variant exists
// for the overhead ablation in the evaluation harness).
type dequeIface interface {
	// PushBottom adds a node at the owner's end. Owner-only.
	PushBottom(x int32)
	// PopBottom removes the most recently pushed node (LIFO). Owner-only.
	PopBottom() (int32, bool)
	// Steal removes the oldest node (FIFO) on behalf of a thief. Any
	// thread.
	Steal() (int32, bool)
	// Empty reports whether the deque currently appears empty.
	Empty() bool
}

// Deque is a fixed-capacity Chase–Lev work-stealing deque. The owner
// pushes and pops at the bottom without locks; thieves CAS the top. The
// paper's convention (§V-C): "stealing threads access the queue from the
// top and local executor threads access their queue from the bottom",
// allowing a theft and a local access to proceed concurrently whenever
// the deque holds at least two nodes.
type Deque struct {
	top    atomic.Int64
	bottom atomic.Int64
	mask   int64
	buf    []atomic.Int32
}

// NewDeque returns a deque holding up to capacity elements (rounded up to
// a power of two). The task-graph use never exceeds the node count.
func NewDeque(capacity int) *Deque {
	if capacity < 1 {
		capacity = 1
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &Deque{mask: int64(size - 1), buf: make([]atomic.Int32, size)}
}

// Cap returns the deque's capacity.
func (d *Deque) Cap() int { return len(d.buf) }

// Len returns the approximate number of queued elements.
func (d *Deque) Len() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// Empty implements dequeIface.
func (d *Deque) Empty() bool { return d.Len() == 0 }

// PushBottom implements dequeIface. It panics when the deque is full,
// which for graph execution indicates a scheduler bug (a node enqueued
// more than once per cycle).
func (d *Deque) PushBottom(x int32) {
	b := d.bottom.Load()
	t := d.top.Load()
	if b-t >= int64(len(d.buf)) {
		panic(fmt.Sprintf("sched: deque overflow (cap %d)", len(d.buf)))
	}
	d.buf[b&d.mask].Store(x)
	d.bottom.Store(b + 1)
}

// PopBottom implements dequeIface.
func (d *Deque) PopBottom() (int32, bool) {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore.
		d.bottom.Store(t)
		return 0, false
	}
	x := d.buf[b&d.mask].Load()
	if t == b {
		// Single element: race against thieves for it.
		won := d.top.CompareAndSwap(t, t+1)
		d.bottom.Store(t + 1)
		if !won {
			return 0, false
		}
		return x, true
	}
	return x, true
}

// Steal implements dequeIface.
func (d *Deque) Steal() (int32, bool) {
	for {
		t := d.top.Load()
		b := d.bottom.Load()
		if t >= b {
			return 0, false
		}
		x := d.buf[t&d.mask].Load()
		if d.top.CompareAndSwap(t, t+1) {
			return x, true
		}
		// Lost a race with the owner or another thief; retry.
	}
}

// LockedDeque is a mutex-protected double-ended queue with the same
// access pattern (bottom LIFO for the owner, top FIFO for thieves). It is
// the baseline for the lock-free-ness ablation: same policy, heavier
// synchronization.
type LockedDeque struct {
	mu   sync.Mutex
	buf  []int32
	head int // top index (steal side)
	tail int // bottom index (owner side), exclusive
	mask int
}

// NewLockedDeque returns a locked deque with at least the given capacity.
func NewLockedDeque(capacity int) *LockedDeque {
	if capacity < 1 {
		capacity = 1
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &LockedDeque{buf: make([]int32, size), mask: size - 1}
}

// PushBottom implements dequeIface.
func (d *LockedDeque) PushBottom(x int32) {
	d.mu.Lock()
	if d.tail-d.head >= len(d.buf) {
		d.mu.Unlock()
		panic(fmt.Sprintf("sched: locked deque overflow (cap %d)", len(d.buf)))
	}
	d.buf[d.tail&d.mask] = x
	d.tail++
	d.mu.Unlock()
}

// PopBottom implements dequeIface.
func (d *LockedDeque) PopBottom() (int32, bool) {
	d.mu.Lock()
	if d.tail == d.head {
		d.mu.Unlock()
		return 0, false
	}
	d.tail--
	x := d.buf[d.tail&d.mask]
	d.mu.Unlock()
	return x, true
}

// Steal implements dequeIface.
func (d *LockedDeque) Steal() (int32, bool) {
	d.mu.Lock()
	if d.tail == d.head {
		d.mu.Unlock()
		return 0, false
	}
	x := d.buf[d.head&d.mask]
	d.head++
	d.mu.Unlock()
	return x, true
}

// Empty implements dequeIface.
func (d *LockedDeque) Empty() bool {
	d.mu.Lock()
	e := d.tail == d.head
	d.mu.Unlock()
	return e
}
