package sched

import (
	"fmt"
	"testing"

	"djstar/internal/graph"
)

// noopPlan builds a no-op graph for allocation measurement: the
// trace-recording RandomDAG nodes would panic on re-execution across
// cycles, and allocation measurement needs many cycles.
func noopPlan(t testing.TB, nodes int) *graph.Plan {
	t.Helper()
	g := graph.New()
	var prev int
	for i := 0; i < nodes; i++ {
		id := g.AddNode(fmt.Sprintf("n%d", i), graph.SectionDeckA, nil)
		if i > 0 && i%3 == 0 {
			if err := g.AddEdge(prev, id); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	p, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestExecuteNoAllocSteadyState is the package contract regression test:
// Execute must allocate zero bytes per cycle for EVERY strategy — the
// paper's engine calls it once per 2.9 ms audio packet, so any steady-
// state allocation eventually triggers GC pauses inside the deadline.
func TestExecuteNoAllocSteadyState(t *testing.T) {
	p := noopPlan(t, 67)
	for _, name := range AllStrategies {
		name := name
		t.Run(name, func(t *testing.T) {
			threads := 4
			if name == NameSequential {
				threads = 1
			}
			s, err := New(name, p, Options{Threads: threads})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			s.Execute() // warm up
			allocs := testing.AllocsPerRun(100, func() { s.Execute() })
			if allocs != 0 {
				t.Fatalf("%s: Execute allocates %v per cycle", name, allocs)
			}
		})
	}
}

// TestPoolExecuteNoAllocSteadyState extends the zero-allocation contract
// to shared-pool sessions: per-cycle Execute stays allocation-free even
// with pool workers helping and a second session attached.
func TestPoolExecuteNoAllocSteadyState(t *testing.T) {
	p := noopPlan(t, 67)
	pool, err := NewPool(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	s, err := pool.Attach(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	other, err := pool.Attach(noopPlan(t, 20), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	s.Execute() // warm up
	other.Execute()
	allocs := testing.AllocsPerRun(100, func() { s.Execute() })
	if allocs != 0 {
		t.Fatalf("pool: Execute allocates %v per cycle", allocs)
	}
}
