package sched

import (
	"sync/atomic"

	"djstar/internal/graph"
)

// Fault tolerance.
//
// A DSP node that panics must not take the audio process down, and must
// not wedge the cycle: its successors still depend on its done stamp /
// pending counter, so the recovery path has to retire the node normally.
// Every scheduler in this package therefore routes node execution through
// a shared faultState: the node runs under recover; on panic its Flush
// hook silences the half-written output buffer, the fault is reported,
// and the node is retired so the cycle completes. After QuarantineAfter
// consecutive faults the node is quarantined — subsequent cycles run its
// Bypass stand-in (or skip it) instead of the faulty kernel — and every
// ProbeEvery cycles one guarded probe of the real kernel decides whether
// to lift the quarantine.
//
// The no-fault hot path costs one atomic state load, one inflight store
// and an open-coded defer per node; it allocates nothing, preserving the
// package's zero-allocation steady-state contract.

// FaultPolicy configures the quarantine behaviour of a scheduler.
// The zero value selects the defaults.
type FaultPolicy struct {
	// QuarantineAfter is the number of consecutive faults after which a
	// node is quarantined (default 3).
	QuarantineAfter int
	// ProbeEvery is the cycle interval between guarded probes of a
	// quarantined node's real kernel (default 512).
	ProbeEvery uint64
}

// Default fault policy values.
const (
	DefaultQuarantineAfter = 3
	DefaultProbeEvery      = 512
)

func (p FaultPolicy) withDefaults() FaultPolicy {
	if p.QuarantineAfter <= 0 {
		p.QuarantineAfter = DefaultQuarantineAfter
	}
	if p.ProbeEvery == 0 {
		p.ProbeEvery = DefaultProbeEvery
	}
	return p
}

// FaultRecord describes one recovered node fault.
type FaultRecord struct {
	// Node and Name identify the faulted node.
	Node int32
	Name string
	// Worker is the worker that was running the node.
	Worker int32
	// Cycle is the scheduler's cycle generation at fault time.
	Cycle uint64
	// Err is the recovered panic value.
	Err any
	// Quarantined reports whether this fault tripped the quarantine
	// threshold.
	Quarantined bool
}

// FaultStats are a scheduler's cumulative fault-tolerance counters.
type FaultStats struct {
	// Recovered counts node panics contained by the scheduler.
	Recovered int64
	// Quarantined counts quarantine transitions.
	Quarantined int64
	// Probes counts guarded probe attempts on quarantined nodes.
	Probes int64
	// Restored counts successful probes (quarantines lifted).
	Restored int64
}

// Node state bits in faultState.state.
const (
	stateQuarantined uint32 = 1 << iota
	stateShed
)

// faultArrays is the per-node fault state of one plan epoch: all arrays
// are indexed by BASE node IDs. The whole set swaps atomically when a
// topology edit is adopted (see faultState.adopt), so cross-thread
// readers — Health snapshots calling Quarantined, the governor calling
// SetNodeShed — always see arrays consistent with one plan.
type faultArrays struct {
	// plan is the base plan the arrays are indexed by.
	plan *graph.Plan
	// state[i] holds the quarantine/shed bits of node i.
	state []atomic.Uint32
	// consec[i] counts node i's consecutive faults (reset on success).
	consec []atomic.Int32
	// probeAt[i] is the cycle generation at which a quarantined node i is
	// next probed.
	probeAt []atomic.Uint64
}

// faultState is the per-scheduler fault-tolerance state. It is embedded
// by every Scheduler implementation, promoting the fault-management
// methods of the Scheduler interface.
type faultState struct {
	policy FaultPolicy
	// handler is invoked synchronously from the recovering worker; it
	// must be installed before the first Execute or between cycles, and
	// must be safe to call from any worker thread.
	handler func(FaultRecord)

	// arr holds the per-node arrays of the current plan epoch. Readers
	// load it once per operation and index only within its bounds, so a
	// concurrent adopt (which replaces the whole set) is safe.
	arr atomic.Pointer[faultArrays]

	// running[w] holds 1 + the node worker w is currently executing
	// (0 = idle); the engine's stall watchdog reads it to name the stuck
	// node. Worker count never changes across swaps, so this array stays.
	running []atomic.Int32

	recovered   atomic.Int64
	quarantines atomic.Int64
	probes      atomic.Int64
	restored    atomic.Int64
}

// newFaultArrays sizes per-node fault arrays for a plan. Fault state is
// always indexed by BASE node IDs: on a fused plan (graph.Fuse) each
// member of a fused unit is guarded, counted and quarantined
// individually, so the arrays are sized by BaseLen.
func newFaultArrays(p *graph.Plan) *faultArrays {
	base := p
	if p.Base != nil {
		base = p.Base
	}
	n := p.BaseLen()
	return &faultArrays{
		plan:    base,
		state:   make([]atomic.Uint32, n),
		consec:  make([]atomic.Int32, n),
		probeAt: make([]atomic.Uint64, n),
	}
}

// newFaultState sizes the fault-tolerance state for a plan and worker
// count.
func newFaultState(p *graph.Plan, workers int) *faultState {
	f := &faultState{
		policy:  FaultPolicy{}.withDefaults(),
		running: make([]atomic.Int32, workers),
	}
	f.arr.Store(newFaultArrays(p))
	return f
}

// cloneFor copies the fault-tolerance state for a session migrating to
// a pool with the given worker count: the per-node arrays (quarantine
// and shed bits, consecutive-fault counts, probe deadlines), the policy,
// the handler and the cumulative counters all carry over; only the
// per-worker inflight array is rebuilt at the new pool's width. The
// source must be quiescent (no Execute in flight) — the array pointer is
// shared, which is safe because the source is detached right after.
func (f *faultState) cloneFor(workers int) *faultState {
	nf := &faultState{
		policy:  f.policy,
		handler: f.handler,
		running: make([]atomic.Int32, workers),
	}
	nf.arr.Store(f.arr.Load())
	nf.recovered.Store(f.recovered.Load())
	nf.quarantines.Store(f.quarantines.Load())
	nf.probes.Store(f.probes.Load())
	nf.restored.Store(f.restored.Load())
	return nf
}

// adopt rebinds the fault arrays to a new plan epoch, carrying each
// surviving node's quarantine bit, shed bit, consecutive-fault count and
// probe deadline through the remap — a node quarantined before the edit
// stays quarantined after it, under its new ID. oldToNew == nil means
// the base topology is unchanged (a re-fusion): when the base plan is
// literally the same, the arrays are kept; otherwise state is copied by
// identity index. Runs between cycles on the adoption thread.
func (f *faultState) adopt(p *graph.Plan, oldToNew []int32) {
	f.adoptInto(newFaultArrays(p), oldToNew)
}

// adoptInto is adopt with the destination arrays allocated by the
// caller — schedulers pre-size them at staging time (off the audio
// path) so the adoption boundary only copies surviving state. next must
// be freshly zeroed and sized for the new plan (newFaultArrays).
func (f *faultState) adoptInto(next *faultArrays, oldToNew []int32) {
	old := f.arr.Load()
	if oldToNew == nil && next.plan == old.plan {
		return
	}
	n := len(next.state)
	if oldToNew == nil {
		m := min(n, len(old.state))
		for i := 0; i < m; i++ {
			next.state[i].Store(old.state[i].Load())
			next.consec[i].Store(old.consec[i].Load())
			next.probeAt[i].Store(old.probeAt[i].Load())
		}
	} else {
		for oldID, newID := range oldToNew {
			if newID < 0 || int(newID) >= n || oldID >= len(old.state) {
				continue
			}
			next.state[newID].Store(old.state[oldID].Load())
			next.consec[newID].Store(old.consec[oldID].Load())
			next.probeAt[newID].Store(old.probeAt[oldID].Load())
		}
	}
	f.arr.Store(next)
}

// SetFaultPolicy implements Scheduler. Zero fields select defaults;
// call it before the first Execute or between cycles.
func (f *faultState) SetFaultPolicy(p FaultPolicy) { f.policy = p.withDefaults() }

// SetFaultHandler implements Scheduler: h is invoked synchronously from
// the worker that recovered a fault, so it must be cheap and safe for
// concurrent use. Install it before the first Execute or between cycles.
func (f *faultState) SetFaultHandler(h func(FaultRecord)) { f.handler = h }

// Faults implements Scheduler.
func (f *faultState) Faults() FaultStats {
	return FaultStats{
		Recovered:   f.recovered.Load(),
		Quarantined: f.quarantines.Load(),
		Probes:      f.probes.Load(),
		Restored:    f.restored.Load(),
	}
}

// SetNodeShed implements Scheduler: a shed node runs its Bypass stand-in
// (or is skipped) instead of its kernel until un-shed. The engine's
// deadline governor drives this; it takes effect on the next cycle.
// IDs outside the current plan epoch (a caller racing a topology swap)
// are ignored.
func (f *faultState) SetNodeShed(id int32, shed bool) {
	a := f.arr.Load()
	if id < 0 || int(id) >= len(a.state) {
		return
	}
	for {
		old := a.state[id].Load()
		var next uint32
		if shed {
			next = old | stateShed
		} else {
			next = old &^ stateShed
		}
		if old == next || a.state[id].CompareAndSwap(old, next) {
			return
		}
	}
}

// Quarantined implements Scheduler. IDs outside the current plan epoch
// (a caller racing a topology swap) report false.
func (f *faultState) Quarantined(id int32) bool {
	a := f.arr.Load()
	if id < 0 || int(id) >= len(a.state) {
		return false
	}
	return a.state[id].Load()&stateQuarantined != 0
}

// Inflight implements Scheduler: 1 + the node worker w is currently
// executing, or 0 when idle.
func (f *faultState) Inflight(w int32) int32 {
	if int(w) >= len(f.running) {
		return 0
	}
	return f.running[w].Load()
}

// exec runs node id of plan p on worker w for cycle gen with full fault
// handling. It always returns normally — on a node panic the fault is
// recorded and contained — so callers retire the node and release its
// successors exactly as on success.
//
// On a fused plan, id names a fused unit: its members run back-to-back
// under their BASE plan and base IDs, so per-member observation, shed
// bits, quarantine and inflight reporting are identical to the unfused
// plan. A panicking member is contained without aborting the rest of the
// unit — later members see the same flushed-output state they would see
// in an unfused run.
func (f *faultState) exec(p *graph.Plan, o Observer, id, w int32, gen uint64) {
	if p.Members != nil {
		base := p.Base
		for _, m := range p.Members[id] {
			f.execNode(base, o, m, w, gen)
		}
		return
	}
	f.execNode(p, o, id, w, gen)
}

// execNode is exec for a single unfused node. The fault arrays are
// loaded once per call: a topology swap never happens while a cycle is
// in flight, so the arrays match the plan the caller is executing.
func (f *faultState) execNode(p *graph.Plan, o Observer, id, w int32, gen uint64) {
	a := f.arr.Load()
	st := a.state[id].Load()
	if st == 0 {
		f.running[w].Store(id + 1)
		if err, ok := f.guard(p, o, id, w); ok {
			if a.consec[id].Load() != 0 {
				a.consec[id].Store(0)
			}
		} else {
			f.noteFault(a, p, id, w, gen, err)
		}
		f.running[w].Store(0)
		return
	}
	// Quarantined and due for a probe: one guarded attempt at the real
	// kernel decides whether the quarantine lifts.
	if st&stateQuarantined != 0 && st&stateShed == 0 && gen >= a.probeAt[id].Load() {
		f.probes.Add(1)
		f.running[w].Store(id + 1)
		if err, ok := f.guard(p, o, id, w); ok {
			f.clearQuarantine(a, id)
			a.consec[id].Store(0)
			f.restored.Add(1)
		} else {
			a.probeAt[id].Store(gen + f.policy.ProbeEvery)
			f.noteFault(a, p, id, w, gen, err)
		}
		f.running[w].Store(0)
		return
	}
	// Quarantined or shed: run the stand-in. A nil Bypass means skip —
	// correct for in-place processors, whose input passes through. The
	// zero-length trace event keeps partial-trace checks honest about the
	// node having been scheduled.
	f.alternate(p, o, id, w)
}

// guard runs node id under recover, reporting success or the panic value.
func (f *faultState) guard(p *graph.Plan, o Observer, id, w int32) (err any, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			err = r
			ok = false
		}
	}()
	runNode(p, o, id, w)
	return nil, true
}

// alternate runs the node's bypass stand-in (guarded too — a broken
// bypass must not crash either) and records its window for the observer.
func (f *faultState) alternate(p *graph.Plan, o Observer, id, w int32) {
	b := p.Bypass[id]
	if o == nil {
		if b != nil {
			f.safely(b)
		}
		return
	}
	start := nowNanos()
	if b != nil {
		f.safely(b)
	}
	o.Record(id, w, start, nowNanos())
}

// safely invokes fn, swallowing a panic.
func (f *faultState) safely(fn func()) {
	defer func() { _ = recover() }()
	fn()
}

// noteFault records a contained fault: flush the node's half-written
// output, count towards quarantine, and report to the handler.
func (f *faultState) noteFault(a *faultArrays, p *graph.Plan, id, w int32, gen uint64, err any) {
	f.recovered.Add(1)
	if fl := p.Flush[id]; fl != nil {
		f.safely(fl)
	}
	quarantined := false
	if n := a.consec[id].Add(1); int(n) >= f.policy.QuarantineAfter {
		if f.setQuarantine(a, id) {
			f.quarantines.Add(1)
			a.probeAt[id].Store(gen + f.policy.ProbeEvery)
			quarantined = true
		}
	}
	if h := f.handler; h != nil {
		h(FaultRecord{
			Node:        id,
			Name:        p.Names[id],
			Worker:      w,
			Cycle:       gen,
			Err:         err,
			Quarantined: quarantined,
		})
	}
}

// setQuarantine sets the quarantine bit, reporting whether this call
// performed the transition.
func (f *faultState) setQuarantine(a *faultArrays, id int32) bool {
	for {
		old := a.state[id].Load()
		if old&stateQuarantined != 0 {
			return false
		}
		if a.state[id].CompareAndSwap(old, old|stateQuarantined) {
			return true
		}
	}
}

// clearQuarantine clears the quarantine bit (shed state is preserved).
func (f *faultState) clearQuarantine(a *faultArrays, id int32) {
	for {
		old := a.state[id].Load()
		if old&stateQuarantined == 0 {
			return
		}
		if a.state[id].CompareAndSwap(old, old&^stateQuarantined) {
			return
		}
	}
}
