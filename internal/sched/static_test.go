package sched

import (
	"testing"

	"djstar/internal/graph"
)

func TestStaticValidation(t *testing.T) {
	g, _ := graph.RandomDAG(graph.RandomSpec{Nodes: 5, EdgeProb: 0.2, Seed: 1})
	p, _ := g.Compile()

	if _, err := NewStatic(nil, [][]int32{{0}}, Options{}); err == nil {
		t.Fatal("nil plan accepted")
	}
	if _, err := NewStatic(p, nil, Options{}); err == nil {
		t.Fatal("no lists accepted")
	}
	if _, err := NewStatic(p, [][]int32{{0, 1, 2}}, Options{}); err == nil {
		t.Fatal("incomplete coverage accepted")
	}
	if _, err := NewStatic(p, [][]int32{{0, 1, 2, 3, 3}}, Options{}); err == nil {
		t.Fatal("duplicate assignment accepted")
	}
	if _, err := NewStatic(p, [][]int32{{0, 1, 2, 3, 99}}, Options{}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

func TestStaticExecutesQueueSplit(t *testing.T) {
	g, tr := graph.RandomDAG(graph.RandomSpec{Nodes: 40, EdgeProb: 0.15, Seed: 6})
	p, _ := g.Compile()
	// A round-robin split of the queue order is a valid static schedule.
	lists := roundRobinLists(p, 4)
	s, err := NewStatic(p, lists, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Name() != NameStatic || s.Threads() != 4 {
		t.Fatalf("Name/Threads = %s/%d", s.Name(), s.Threads())
	}
	for cycle := 0; cycle < 50; cycle++ {
		tr.Reset()
		s.Execute()
		if err := tr.Check(p); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
}

func TestStaticWithTracer(t *testing.T) {
	g, trace := graph.RandomDAG(graph.RandomSpec{Nodes: 20, EdgeProb: 0.2, Seed: 8})
	p, _ := g.Compile()
	tr := NewTracer(p.Len())
	s, err := NewStatic(p, roundRobinLists(p, 2), Options{Observer: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	trace.Reset()
	s.Execute()
	for i, e := range tr.Events() {
		if e.Worker < 0 {
			t.Fatalf("node %d untraced", i)
		}
	}
	if tr.Makespan() <= 0 {
		t.Fatal("no makespan")
	}
}

func TestFromScheduleOrder(t *testing.T) {
	g, tr := graph.RandomDAG(graph.RandomSpec{Nodes: 12, EdgeProb: 0.25, Seed: 4})
	p, _ := g.Compile()

	// Fabricate a valid schedule: nodes in queue order, alternating
	// between two processors, start times equal to queue position.
	proc := make([]int32, p.Len())
	start := make([]float64, p.Len())
	for pos, id := range p.Order {
		proc[id] = int32(pos % 2)
		start[id] = float64(pos)
	}
	lists, err := FromScheduleOrder(p, proc, start, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStatic(p, lists, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for cycle := 0; cycle < 20; cycle++ {
		tr.Reset()
		s.Execute()
		if err := tr.Check(p); err != nil {
			t.Fatal(err)
		}
	}

	// Validation paths.
	if _, err := FromScheduleOrder(p, proc[:3], start, 2); err == nil {
		t.Fatal("short proc accepted")
	}
	bad := append([]int32(nil), proc...)
	bad[0] = 9
	if _, err := FromScheduleOrder(p, bad, start, 2); err == nil {
		t.Fatal("out-of-range processor accepted")
	}
}
