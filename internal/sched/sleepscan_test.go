package sched

import (
	"testing"
	"time"

	"djstar/internal/graph"
)

func TestSleepScanRespectsDependencies(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 1234} {
		g, tr := graph.RandomDAG(graph.RandomSpec{Nodes: 40, EdgeProb: 0.15, Seed: seed})
		p, err := g.Compile()
		if err != nil {
			t.Fatal(err)
		}
		for _, threads := range []int{1, 2, 4} {
			s, err := NewSleepScan(p, Options{Threads: threads})
			if err != nil {
				t.Fatal(err)
			}
			for cycle := 0; cycle < 30; cycle++ {
				tr.Reset()
				s.Execute()
				if err := tr.Check(p); err != nil {
					t.Fatalf("seed %d threads %d cycle %d: %v", seed, threads, cycle, err)
				}
			}
			s.Close()
		}
	}
}

func TestSleepScanViaFactory(t *testing.T) {
	g, tr := graph.RandomDAG(graph.RandomSpec{Nodes: 20, EdgeProb: 0.2, Seed: 3})
	p, _ := g.Compile()
	s, err := New(NameSleepScan, p, Options{Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Name() != NameSleepScan || s.Threads() != 3 {
		t.Fatalf("Name/Threads = %s/%d", s.Name(), s.Threads())
	}
	tr.Reset()
	s.Execute()
	if err := tr.Check(p); err != nil {
		t.Fatal(err)
	}
}

// TestSleepScanRunsLaterReadyNodes builds the situation the paper
// describes: a worker's next node is blocked but a later node on its list
// is ready. Plain Sleep sleeps; SleepScan must run the ready node first.
func TestSleepScanRunsLaterReadyNodes(t *testing.T) {
	// Queue layout for 2 threads (round-robin by queue position):
	//   pos 0 (w0): slow source S        pos 1 (w1): source X
	//   pos 2 (w0): B (depends on X)     pos 3 (w1): C (depends on S)
	//   pos 4 (w0): R (ready source)
	// Worker 0 runs S (slow); worker 1 runs X then blocks on C. Worker 0
	// then reaches B (ready once X ran) and R. The assertion: with
	// SleepScan, if B is still blocked when reached, R runs anyway.
	// Scheduling is timing-dependent, so assert the strong invariant
	// instead: every node runs exactly once, deps respected, across many
	// cycles — plus a trace-level check that SleepScan can reorder.
	g := graph.New()
	tr := graph.NewExecTrace(5)
	slow := func(i int) func() {
		return func() {
			time.Sleep(200 * time.Microsecond)
			tr.Record(i)
		}
	}
	fast := func(i int) func() { return func() { tr.Record(i) } }
	s0 := g.AddNode("S", graph.SectionDeckA, slow(0))
	x := g.AddNode("X", graph.SectionDeckA, fast(1))
	b := g.AddNode("B", graph.SectionDeckA, fast(2))
	c := g.AddNode("C", graph.SectionDeckA, fast(3))
	g.AddNode("R", graph.SectionDeckA, fast(4))
	if err := g.AddEdge(x, b); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(s0, c); err != nil {
		t.Fatal(err)
	}
	p, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSleepScan(p, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for cycle := 0; cycle < 50; cycle++ {
		tr.Reset()
		s.Execute()
		if err := tr.Check(p); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSleepScanSoak(t *testing.T) {
	g, tr := graph.RandomDAG(graph.RandomSpec{Nodes: 67, EdgeProb: 0.08, Seed: 9})
	p, _ := g.Compile()
	s, err := NewSleepScan(p, Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for cycle := 0; cycle < 300; cycle++ {
		tr.Reset()
		s.Execute()
		if err := tr.Check(p); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
}
