package sched

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"djstar/internal/graph"
)

// NamePool is the strategy identifier for shared-pool sessions.
const NamePool = "pool"

// Typed Attach failures, so callers (the engine's admission front door,
// multi-session orchestration) can distinguish capacity exhaustion from
// shutdown with errors.Is instead of string matching.
var (
	// ErrPoolFull: every session slot is occupied.
	ErrPoolFull = errors.New("sched: pool is full")
	// ErrPoolClosed: the pool has been shut down.
	ErrPoolClosed = errors.New("sched: pool is closed")
)

// Slot states of a pool session slot.
const (
	slotEmpty   uint32 = iota
	slotIdle           // session attached, no cycle in flight
	slotRunning        // session attached, cycle in flight
)

// Pool is a shared execution runtime: one set of persistent,
// OS-thread-pinned workers serving many concurrently executing sessions.
// Every strategy scheduler in this package owns a private goroutine pool;
// Pool inverts that — N compiled plans attach to one pool and their
// Execute calls run concurrently over the same workers, the
// server-based-scheduling architecture of Nogueira & Pinho ("Supporting
// Parallelism in Server-based Multiprocessor Systems").
//
// Per-session cycle serialization is preserved: a session's Execute must
// not be called concurrently with itself, exactly like every other
// Scheduler, but different sessions may Execute from different
// goroutines at the same time. The Execute caller always participates in
// its own session's cycle, so a cycle completes even with zero pool
// workers or a fully loaded pool.
//
// Memory model: node effects are published across OS threads through the
// per-session pending counters and claim stamps (sync/atomic,
// sequentially consistent in Go); a node's claimant therefore observes
// all buffer writes of the node's predecessors, regardless of which
// worker — or which session's caller — ran them.
type Pool struct {
	workers int
	slots   []poolSlot

	// Parking (same epoch discipline as the work-stealing strategy): an
	// idle worker registers, re-verifies under the lock, and waits;
	// publishers bump pushEpoch and broadcast when idlers are present.
	mu        sync.Mutex
	cond      *sync.Cond
	pushEpoch uint64
	idlers    atomic.Int32

	// onWorkerStart is PoolOptions.OnWorkerStart (nil = none).
	onWorkerStart func(worker int)

	closed atomic.Bool
}

// poolSlot is one attachable session position.
type poolSlot struct {
	state atomic.Uint32
	sess  atomic.Pointer[PoolSession]
}

// PoolOptions tune a Pool beyond its worker/capacity sizing.
type PoolOptions struct {
	// OnWorkerStart, when set, runs once on each helper worker's
	// goroutine after it has locked its OS thread and before it serves
	// any session. Shard layers use it to pin the worker's thread to the
	// shard's CPU set; it must not block indefinitely.
	OnWorkerStart func(worker int)
}

// NewPool starts a shared pool with the given number of persistent
// helper workers and session capacity. Workers may be 0: sessions then
// run entirely on their callers, still through the shared-pool claim
// protocol. Total parallelism available to one session is workers+1 (the
// pool plus its own caller).
func NewPool(workers, capacity int) (*Pool, error) {
	return NewPoolWith(workers, capacity, PoolOptions{})
}

// NewPoolWith is NewPool with explicit options.
func NewPoolWith(workers, capacity int, opts PoolOptions) (*Pool, error) {
	if workers < 0 {
		return nil, fmt.Errorf("sched: pool workers = %d, want >= 0", workers)
	}
	if capacity < 1 {
		return nil, fmt.Errorf("sched: pool capacity = %d, want >= 1", capacity)
	}
	p := &Pool{
		workers:       workers,
		slots:         make([]poolSlot, capacity),
		onWorkerStart: opts.OnWorkerStart,
	}
	p.cond = sync.NewCond(&p.mu)
	for w := 0; w < workers; w++ {
		go p.worker(int32(w))
	}
	return p, nil
}

// Workers returns the helper worker count.
func (p *Pool) Workers() int { return p.workers }

// Capacity returns the maximum number of attached sessions.
func (p *Pool) Capacity() int { return len(p.slots) }

// Attach registers a compiled plan as a new session on the pool. The
// returned session implements Scheduler; its Close detaches it, freeing
// the slot. Attach fails when the pool is full or closed. Only
// o.Observer is honoured: a session's parallelism is the pool's
// (workers+1), not o.Threads.
func (p *Pool) Attach(plan *graph.Plan, o Options) (*PoolSession, error) {
	if plan == nil || plan.Len() == 0 {
		return nil, fmt.Errorf("sched: empty plan")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed.Load() {
		return nil, ErrPoolClosed
	}
	for i := range p.slots {
		if p.slots[i].state.Load() != slotEmpty {
			continue
		}
		s := &PoolSession{
			faultState: newFaultState(plan, p.workers+1),
			pool:       p,
			slot:       int32(i),
		}
		s.topo.Store(&poolTopo{
			plan:    plan,
			obs:     o.Observer,
			pending: make([]atomic.Int32, plan.Len()),
			claimed: make([]atomic.Uint64, plan.Len()),
		})
		p.slots[i].sess.Store(s)
		p.slots[i].state.Store(slotIdle)
		return s, nil
	}
	return nil, fmt.Errorf("%w (%d sessions)", ErrPoolFull, len(p.slots))
}

// AttachMigrated moves a quiescent session from its current pool onto p
// — the shard-drain primitive. The new session continues the old one
// mid-stream: same plan and observer, same fault/quarantine/shed state
// and cumulative fault counters, and the same cycle generation, so no
// cycle is lost or doubled across the move. On success the old session
// is detached (its slot frees for a new Attach); on failure it is left
// attached and untouched.
//
// The caller must guarantee the old session has no Execute in flight —
// fleet drivers migrate strictly between cycles. o.Observer, when set,
// replaces the carried observer (the usual case keeps it nil: the
// engine's collector travels with the engine, not the pool).
func (p *Pool) AttachMigrated(old *PoolSession, o Options) (*PoolSession, error) {
	if old == nil {
		return nil, fmt.Errorf("sched: AttachMigrated of nil session")
	}
	if old.closed.Load() {
		return nil, fmt.Errorf("sched: AttachMigrated of closed session")
	}
	ot := old.topo.Load()
	obs := ot.obs
	if o.Observer != nil {
		obs = o.Observer
	}
	p.mu.Lock()
	if p.closed.Load() {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	var ns *PoolSession
	for i := range p.slots {
		if p.slots[i].state.Load() != slotEmpty {
			continue
		}
		ns = &PoolSession{
			faultState: old.faultState.cloneFor(p.workers + 1),
			pool:       p,
			slot:       int32(i),
		}
		t := &poolTopo{
			plan:    ot.plan,
			obs:     obs,
			pending: make([]atomic.Int32, ot.plan.Len()),
			claimed: make([]atomic.Uint64, ot.plan.Len()),
		}
		// Continue the old session's cycle generation: claim stamps start
		// at the carried generation so the first post-migration cycle
		// (gen+1) claims every node exactly once, and observers keep a
		// monotonic cycle coordinate.
		gen := ot.gen.Load()
		t.gen.Store(gen)
		for j := range t.claimed {
			t.claimed[j].Store(gen)
		}
		ns.topo.Store(t)
		// A swap staged but not yet adopted travels with the session.
		if st := old.staged.Load(); st != nil {
			ns.staged.Store(st)
		}
		p.slots[i].sess.Store(ns)
		p.slots[i].state.Store(slotIdle)
		break
	}
	p.mu.Unlock()
	if ns == nil {
		return nil, fmt.Errorf("%w (%d sessions)", ErrPoolFull, len(p.slots))
	}
	old.Close()
	return ns, nil
}

// Close shuts the pool down. It is idempotent. All sessions must be
// closed (or at least quiescent) first; Execute on any attached session
// panics afterwards.
func (p *Pool) Close() {
	if !p.closed.CompareAndSwap(false, true) {
		return
	}
	p.wakeAll()
}

// worker is one persistent pool worker: it scans the session slots for
// claimable nodes, helping whichever sessions have a cycle in flight,
// and parks when there is nothing to do anywhere.
func (p *Pool) worker(w int32) {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	if p.onWorkerStart != nil {
		p.onWorkerStart(int(w))
	}
	n := len(p.slots)
	next := int(w) % n // stagger scan starts across workers
	failedRounds := 0
	for !p.closed.Load() {
		ran := false
		for i := 0; i < n; i++ {
			slot := &p.slots[(next+i)%n]
			if slot.state.Load() != slotRunning {
				continue
			}
			sess := slot.sess.Load()
			if sess == nil {
				continue
			}
			if sess.help(w) {
				ran = true
				// Keep helping the same session while it has work: the
				// next scan starts here.
				next = (next + i) % n
				break
			}
		}
		if ran {
			failedRounds = 0
			continue
		}
		failedRounds++
		if failedRounds < 256 {
			runtime.Gosched()
			continue
		}
		p.park()
		failedRounds = 0
	}
}

// park sleeps until a session publishes work or the pool closes,
// using the same registration/epoch discipline as the work-stealing
// strategy's mid-cycle parking.
func (p *Pool) park() {
	p.mu.Lock()
	p.idlers.Add(1)
	epoch := p.pushEpoch
	if p.closed.Load() || p.anyClaimable() {
		p.idlers.Add(-1)
		p.mu.Unlock()
		return
	}
	for p.pushEpoch == epoch && !p.closed.Load() {
		p.cond.Wait()
	}
	p.idlers.Add(-1)
	p.mu.Unlock()
}

// anyClaimable reports whether any running session currently has a
// claimable node. Called only on the slow parking path.
func (p *Pool) anyClaimable() bool {
	for i := range p.slots {
		if p.slots[i].state.Load() != slotRunning {
			continue
		}
		sess := p.slots[i].sess.Load()
		if sess == nil {
			continue
		}
		t := sess.topo.Load()
		gen := t.gen.Load()
		for _, id := range t.plan.RankOrder {
			if t.claimed[id].Load() < gen && t.pending[id].Load() == 0 {
				return true
			}
		}
	}
	return false
}

// wakeAll bumps the publish epoch and wakes every parked worker.
func (p *Pool) wakeAll() {
	p.mu.Lock()
	p.pushEpoch++
	p.cond.Broadcast()
	p.mu.Unlock()
}

// wakeIfIdle broadcasts only when parked workers exist — the fast path
// for publishers.
func (p *Pool) wakeIfIdle() {
	if p.idlers.Load() > 0 {
		p.wakeAll()
	}
}

// PoolSession is one compiled plan attached to a shared Pool. It
// implements Scheduler: Execute runs one full graph iteration, with the
// caller participating and pool workers helping. Execute is not safe for
// concurrent calls on the same session (per-session cycles are
// serialized by the caller, like every Scheduler), but distinct sessions
// of one pool may Execute concurrently.
type PoolSession struct {
	// faultState provides panic recovery, quarantine and load shedding
	// (promoted Scheduler methods), per session — a faulty node in one
	// session never affects its siblings on the same pool.
	*faultState

	pool *Pool
	slot int32

	// topo bundles the session's plan with ALL of its per-cycle claim
	// state — including the cycle counter. The bundle swaps atomically
	// on a topology edit (see AdoptStaged); bundling gen with the claim
	// arrays is what makes the swap safe against stale helpers: a pool
	// worker that loaded the old bundle just before a swap reads the OLD
	// bundle's gen, which is frozen at the last completed cycle, and a
	// completed cycle leaves every old claim stamp at that generation —
	// so the stale helper's CAS can never win a node again. Had gen
	// lived on the session, that helper could pair the old arrays with
	// the NEW cycle's generation and re-claim (double-run) an old node.
	topo atomic.Pointer[poolTopo]

	// staged holds a pending topology swap (StageSwap/AdoptStaged).
	staged atomic.Pointer[poolStaged]

	closed atomic.Bool
}

// poolStaged is a staged swap plus the allocations adoption will
// install, pre-sized at staging time on the staging goroutine: the new
// epoch's topo bundle (its gen and claim stamps are filled at adoption,
// when the current generation is known) and the new fault arrays.
type poolStaged struct {
	sw     Swap
	topo   *poolTopo
	faults *faultArrays
}

// poolTopo is one plan epoch of a pool session: the compiled plan, the
// observer recording it, and the claim-protocol state.
type poolTopo struct {
	plan *graph.Plan
	// obs is the epoch's observer (nil = none). Pool workers record
	// their pool worker index; the session's own caller records index
	// Threads()-1. It lives in the bundle because helpers read it from
	// other threads — the bundle pointer load publishes it.
	obs Observer

	// pending[i] counts node i's unfinished dependencies this cycle.
	pending []atomic.Int32
	// claimed[i] is the generation stamp of node i's last claim. A node
	// is claimable when pending[i] == 0 and claimed[i] < the session
	// generation; the winning CAS to the current generation grants the
	// exclusive right to run it. Stamps are monotonic, so a worker
	// holding a stale generation can never claim (and thus never
	// double-run) a node of a later cycle. A freshly adopted epoch's
	// stamps start at the adoption generation (not zero) so helpers
	// still holding the pre-swap generation cannot claim from it.
	claimed []atomic.Uint64
	// gen is the cycle counter of this epoch (continues across swaps).
	gen atomic.Uint64
	// remaining counts nodes not yet completed this cycle; the Execute
	// caller returns when it reaches zero.
	remaining atomic.Int32
}

// Name implements Scheduler.
func (s *PoolSession) Name() string { return NamePool }

// Threads implements Scheduler: the parallelism available to this
// session — the pool's workers plus the Execute caller.
func (s *PoolSession) Threads() int { return s.pool.workers + 1 }

// Execute implements Scheduler: one full iteration of this session's
// plan, concurrent with other sessions on the same pool. Allocation-free
// in steady state.
func (s *PoolSession) Execute() {
	if s.closed.Load() || s.pool.closed.Load() {
		panic("sched: Execute called after Close")
	}
	if s.staged.Load() != nil {
		s.AdoptStaged()
	}
	t := s.topo.Load()
	if t.obs != nil {
		t.obs.BeginCycle()
	}
	// Reset per-cycle state BEFORE publishing the new generation: a
	// worker that observes the new generation therefore also observes
	// the reset counters (sequentially consistent atomics).
	for i := range t.pending {
		t.pending[i].Store(t.plan.Indegree[i])
	}
	t.remaining.Store(int32(t.plan.Len()))
	gen := t.gen.Add(1)
	slot := &s.pool.slots[s.slot]
	slot.state.Store(slotRunning)
	s.pool.wakeIfIdle()

	// Participate as the session's own worker until the cycle is done.
	callerID := int32(s.pool.workers)
	for t.remaining.Load() > 0 {
		id, ok := s.claim(t, gen)
		if !ok {
			// Nothing claimable right now: pool workers hold the rest.
			runtime.Gosched()
			continue
		}
		s.runClaimed(t, id, callerID, gen)
	}
	slot.state.Store(slotIdle)
	// Every node's Record happened before its remaining decrement, so at
	// this point the observer has seen the whole realization.
	if t.obs != nil {
		t.obs.EndCycle()
	}
}

// help lets pool worker w run one claimable node of this session.
// It reports whether a node was executed. The topology bundle and its
// generation are loaded together; a helper racing a swap works entirely
// against the old epoch, whose frozen generation makes every claim CAS
// fail (see PoolSession.topo).
func (s *PoolSession) help(w int32) bool {
	t := s.topo.Load()
	gen := t.gen.Load()
	id, ok := s.claim(t, gen)
	if !ok {
		return false
	}
	s.runClaimed(t, id, w, gen)
	return true
}

// StageSwap implements Scheduler: stage a topology swap for this
// session. Safe from any goroutine.
func (s *PoolSession) StageSwap(sw Swap) error {
	if s.closed.Load() || s.pool.closed.Load() {
		return fmt.Errorf("sched: StageSwap after Close")
	}
	if sw.Plan == nil || sw.Plan.Len() == 0 {
		return fmt.Errorf("sched: swap with empty plan")
	}
	s.staged.Store(&poolStaged{
		sw: sw,
		topo: &poolTopo{
			plan:    sw.Plan,
			pending: make([]atomic.Int32, sw.Plan.Len()),
			claimed: make([]atomic.Uint64, sw.Plan.Len()),
		},
		faults: newFaultArrays(sw.Plan),
	})
	return nil
}

// AdoptStaged implements Scheduler: adopt the staged swap between two of
// this session's cycles (no Execute in flight). Other sessions on the
// pool are unaffected and may be mid-cycle.
func (s *PoolSession) AdoptStaged() bool {
	st := s.staged.Swap(nil)
	if st == nil || s.closed.Load() {
		return false
	}
	sw := st.sw
	old := s.topo.Load()
	gen := old.gen.Load()
	t := st.topo
	t.obs = old.obs
	if sw.Observer != nil {
		t.obs = sw.Observer
	}
	t.gen.Store(gen)
	// Start the new epoch's claim stamps at the current generation:
	// claimable only by generations > gen, i.e. the next cycle — never
	// by a stale helper still holding gen. This must happen here, not at
	// staging time, because gen advances between stage and adoption.
	for i := range t.claimed {
		t.claimed[i].Store(gen)
	}
	s.faultState.adoptInto(st.faults, sw.OldToNew)
	s.topo.Store(t)
	return true
}

// claim finds a ready, unclaimed node and stamps it with gen. The stamp
// CAS is the exclusivity point: exactly one claimant wins each node per
// cycle. A stale gen (from a worker that read the counter just before a
// new cycle) can only ever claim nodes stamped strictly older than it —
// and a completed cycle leaves every stamp at its generation, so stale
// claims are impossible once the cycle that published them finished.
// The scan walks RankOrder, so among ready nodes the claimant prefers
// the one heading the most expensive remaining chain.
func (s *PoolSession) claim(t *poolTopo, gen uint64) (int32, bool) {
	for _, id := range t.plan.RankOrder {
		old := t.claimed[id].Load()
		if old >= gen {
			continue // already claimed this cycle (or claimant is stale)
		}
		if t.pending[id].Load() != 0 {
			continue // dependencies still running
		}
		if t.claimed[id].CompareAndSwap(old, gen) {
			return id, true
		}
	}
	return 0, false
}

// runClaimed executes a claimed node, resolves its successors and
// retires it from the cycle. The remaining decrement comes last so the
// Execute caller cannot observe completion before the node's effects
// (and successor releases) are published.
func (s *PoolSession) runClaimed(t *poolTopo, id, w int32, gen uint64) {
	s.exec(t.plan, t.obs, id, w, gen)
	readied := false
	for _, succ := range t.plan.SuccsOf(id) {
		if t.pending[succ].Add(-1) == 0 {
			readied = true
		}
	}
	t.remaining.Add(-1)
	if readied {
		s.pool.wakeIfIdle()
	}
}

// Close implements Scheduler: it detaches the session from the pool,
// freeing its slot for a new Attach. Idempotent. The session must be
// quiescent (no Execute in flight).
func (s *PoolSession) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	p := s.pool
	p.mu.Lock()
	p.slots[s.slot].state.Store(slotEmpty)
	p.slots[s.slot].sess.Store(nil)
	p.mu.Unlock()
}
