package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

// BenchmarkHotStateContention quantifies the false-sharing fix on the
// scheduler's hot per-node state: four goroutines each hammer their own
// counter, packed (adjacent atomics sharing a cache line — the old
// []atomic.Uint64 done array layout) versus striped (one doneStamp per
// cache line — the current layout). On multicore hardware the packed
// variant ping-pongs the line between cores on every store; the striped
// variant scales linearly.
func BenchmarkHotStateContention(b *testing.B) {
	const workers = 4
	b.Run("packed", func(b *testing.B) {
		var slots [workers]atomic.Uint64
		runContention(b, workers, func(w, n int) {
			for i := 0; i < n; i++ {
				slots[w].Store(uint64(i))
			}
		})
	})
	b.Run("striped", func(b *testing.B) {
		var slots [workers]doneStamp
		runContention(b, workers, func(w, n int) {
			for i := 0; i < n; i++ {
				slots[w].v.Store(uint64(i))
			}
		})
	})
}

// runContention splits b.N stores across the worker goroutines.
func runContention(b *testing.B, workers int, body func(w, n int)) {
	per := b.N/workers + 1
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			body(w, per)
		}(w)
	}
	wg.Wait()
}
