package engine

import (
	"testing"

	"djstar/internal/graph"
	"djstar/internal/sched"
)

func poolConfig(pool *sched.Pool) Config {
	gc := graph.DefaultConfig()
	gc.TrackBars = 2
	return Config{Graph: gc, Pool: pool}
}

// TestRebindExactlyOnce is the migration property test: across a
// cross-pool Rebind, every node executes exactly once per cycle — no
// cycle lost, none doubled — which the per-node observer counts make
// directly checkable.
func TestRebindExactlyOnce(t *testing.T) {
	src, err := sched.NewPool(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dst, err := sched.NewPool(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	e, err := New(poolConfig(src))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const k1, k2 = 37, 23
	for i := 0; i < k1; i++ {
		e.Cycle(nil)
	}
	posBefore := e.Session().Decks[0].Position()
	cyclesBefore := e.Cycles()
	if cyclesBefore != k1 {
		t.Fatalf("cycles before rebind = %d, want %d", cyclesBefore, k1)
	}

	if err := e.Rebind(dst); err != nil {
		t.Fatalf("Rebind: %v", err)
	}
	if e.Scheduler().Name() != sched.NamePool {
		t.Fatalf("strategy after rebind = %q", e.Scheduler().Name())
	}
	for i := 0; i < k2; i++ {
		e.Cycle(nil)
	}

	if got := e.Cycles(); got != k1+k2 {
		t.Fatalf("cycles after rebind = %d, want %d", got, k1+k2)
	}
	// Exactly-once: the observer survived the migration, so every node's
	// count must be the total cycle count.
	for _, ns := range e.Collector().NodeStats() {
		if ns.Count != k1+k2 {
			t.Fatalf("node %s executed %d times over %d cycles", ns.Name, ns.Count, k1+k2)
		}
	}
	// State carry-over: the deck playhead kept advancing from where it
	// was, rather than resetting with a fresh session.
	if pos := e.Session().Decks[0].Position(); pos <= posBefore {
		t.Fatalf("deck position %v after rebind, was %v before — state lost", pos, posBefore)
	}
	if got := int(e.Session().Cycles()); got != k1+k2 {
		t.Fatalf("session cycles = %d, want %d", got, k1+k2)
	}
}

// TestRebindCarriesStagedEditAndSessionID checks that a staged-but-
// unadopted edit survives the pool move and adopts on the first
// post-migration cycle, and that the fleet-scoped session ID is stable.
func TestRebindCarriesStagedEditAndSessionID(t *testing.T) {
	src, err := sched.NewPool(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dst, err := sched.NewPool(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	cfg := poolConfig(src)
	cfg.Telemetry.Session = "mig-7"
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Cycle(nil)

	if err := e.ApplyPatch("insert-delay:B:2"); err != nil {
		t.Fatalf("ApplyPatch: %v", err)
	}
	epochBefore := e.PlanEpoch()
	if err := e.Rebind(dst); err != nil {
		t.Fatalf("Rebind: %v", err)
	}
	e.Cycle(nil) // adoption happens at the cycle boundary, on the new pool
	if got := e.PlanEpoch(); got != epochBefore+1 {
		t.Fatalf("plan epoch after rebind+cycle = %d, want %d (staged edit lost)", got, epochBefore+1)
	}
	if got := e.SessionID(); got != "mig-7" {
		t.Fatalf("session ID = %q, want stable %q", got, "mig-7")
	}
	snap := e.Snapshot()
	if snap.SchemaVersion != SnapshotSchemaVersion || snap.SessionID != "mig-7" {
		t.Fatalf("snapshot v%d session %q", snap.SchemaVersion, snap.SessionID)
	}
}

// TestRebindRejects covers the guarded error paths: nil pool, non-pool
// strategy, oversized destination, closed engine.
func TestRebindRejects(t *testing.T) {
	e, err := New(fastConfig(sched.NameSequential, 1))
	if err != nil {
		t.Fatal(err)
	}
	p, err := sched.NewPool(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := e.Rebind(p); err == nil {
		t.Fatal("Rebind accepted a non-pool engine")
	}
	e.Close()

	src, _ := sched.NewPool(1, 1)
	defer src.Close()
	pe, err := New(poolConfig(src))
	if err != nil {
		t.Fatal(err)
	}
	defer pe.Close()
	if err := pe.Rebind(nil); err == nil {
		t.Fatal("Rebind accepted nil pool")
	}
	big, _ := sched.NewPool(8, 1)
	defer big.Close()
	if err := pe.Rebind(big); err == nil {
		t.Fatal("Rebind accepted a pool wider than the observer")
	}
	pe.Close()
	ok, _ := sched.NewPool(1, 1)
	defer ok.Close()
	if err := pe.Rebind(ok); err == nil {
		t.Fatal("Rebind accepted a closed engine")
	}
}
