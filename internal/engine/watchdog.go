package engine

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"djstar/internal/graph"
	"djstar/internal/sched"
)

// StallRecord describes one detected graph-execution stall.
type StallRecord struct {
	// Cycle is the engine cycle (1-based) that stalled.
	Cycle uint64
	// Node and Name identify the first in-flight node at detection time —
	// the prime suspect for the wedge. Node is -1 when no worker reported
	// an in-flight node (the stall is in the scheduler itself).
	Node int32
	Name string
	// Worker is the worker running Node.
	Worker int32
	// Inflight lists every (worker, node) pair in flight at detection,
	// formatted "w0:FXA2 w3:Mixer" — the full diagnostic.
	Inflight string
	// ElapsedMS is how long the graph execution had been running.
	ElapsedMS float64
}

// watchdog detects cycles stuck inside graph execution. The cycle thread
// arms it around sched.Execute; a monitor goroutine checks the armed
// timestamp and, when an execution exceeds the hard wall, records a
// StallRecord naming the in-flight node(s) and notifies the handler —
// turning a silent hang into an actionable diagnostic. Detection is
// level-triggered once per cycle.
type watchdog struct {
	// sref holds the watched scheduler and the base plan naming its
	// nodes behind one pointer, so the cycle thread can retarget both
	// together after a plan swap while the monitor goroutine reads them
	// concurrently (diagnose needs a plan consistent with the scheduler
	// it polls).
	sref atomic.Pointer[schedBox]
	wall time.Duration

	// startNs is the armed graph-execution start time (0 = not armed).
	startNs atomic.Int64
	// gen is the engine cycle being executed.
	gen atomic.Uint64
	// firedGen is the last cycle a stall was reported for.
	firedGen atomic.Uint64

	stalls atomic.Int64
	last   atomic.Pointer[StallRecord]

	// onStall, when set, is invoked from the monitor goroutine.
	onStall func(StallRecord)

	stop chan struct{}
	done chan struct{}
}

// schedBox wraps the Scheduler interface plus its base plan for
// atomic.Pointer (interfaces with varying concrete types cannot go into
// atomic.Value directly).
type schedBox struct {
	s    sched.Scheduler
	plan *graph.Plan
}

func newWatchdog(s sched.Scheduler, p *graph.Plan, wall time.Duration, onStall func(StallRecord)) *watchdog {
	w := &watchdog{
		wall:    wall,
		onStall: onStall,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	w.sref.Store(&schedBox{s: s, plan: p})
	go w.monitor()
	return w
}

// retarget points the watchdog at a freshly swapped scheduler and plan.
// A mid-poll race at worst diagnoses against the retiring topology once
// (Inflight is bounds-guarded in the scheduler).
func (w *watchdog) retarget(s sched.Scheduler, p *graph.Plan) {
	w.sref.Store(&schedBox{s: s, plan: p})
}

// arm marks the start of a graph execution (cycle thread).
func (w *watchdog) arm(cycle uint64) {
	w.gen.Store(cycle)
	w.startNs.Store(time.Now().UnixNano())
}

// disarm marks the end of the graph execution (cycle thread).
func (w *watchdog) disarm() { w.startNs.Store(0) }

// close stops the monitor goroutine and waits for it to exit.
func (w *watchdog) close() {
	close(w.stop)
	<-w.done
}

// Stalls returns the cumulative stall count.
func (w *watchdog) Stalls() int64 { return w.stalls.Load() }

// Last returns the most recent stall record (nil if none).
func (w *watchdog) Last() *StallRecord { return w.last.Load() }

// monitor polls the armed timestamp at wall/8 granularity; detection
// latency is therefore at most wall*9/8.
func (w *watchdog) monitor() {
	defer close(w.done)
	tick := w.wall / 8
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
		}
		start := w.startNs.Load()
		if start == 0 {
			continue
		}
		elapsed := time.Duration(time.Now().UnixNano() - start)
		if elapsed < w.wall {
			continue
		}
		gen := w.gen.Load()
		if w.firedGen.Load() == gen {
			continue // already reported this cycle's stall
		}
		w.firedGen.Store(gen)
		rec := w.diagnose(gen, elapsed)
		w.stalls.Add(1)
		w.last.Store(&rec)
		if w.onStall != nil {
			w.onStall(rec)
		}
	}
}

// diagnose assembles the stall record from the scheduler's in-flight
// worker state.
func (w *watchdog) diagnose(gen uint64, elapsed time.Duration) StallRecord {
	rec := StallRecord{
		Cycle:     gen,
		Node:      -1,
		Worker:    -1,
		ElapsedMS: float64(elapsed) / 1e6,
	}
	var b strings.Builder
	box := w.sref.Load()
	s := box.s
	for wk := int32(0); wk < int32(s.Threads()); wk++ {
		in := s.Inflight(wk)
		if in == 0 {
			continue
		}
		node := in - 1
		name := "?"
		if int(node) < len(box.plan.Names) {
			name = box.plan.Names[node]
		}
		if rec.Node < 0 {
			rec.Node = node
			rec.Name = name
			rec.Worker = wk
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "w%d:%s", wk, name)
	}
	rec.Inflight = b.String()
	return rec
}
