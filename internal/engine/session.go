package engine

import (
	"djstar/internal/graph"
)

// SessionSpec describes one session to construct over a base Config —
// the per-session knobs that containers (NewMulti, the fleet) compose
// with pool-level defaults. It replaces the previous pattern of every
// call site hand-cloning a shared Config and poking fields: the base
// Config carries what all sessions share (graph shape, telemetry/obs
// tuning, governor policy), the spec carries what distinguishes one
// session, and Resolve merges the two without mutating either.
type SessionSpec struct {
	// ID labels the session's snapshot and metric series (the
	// OpenMetrics "session" label and the /v1 resource ID). Fleet-scoped
	// IDs stay stable across shard migration. Empty = the container
	// assigns a monotonic ID.
	ID string
	// Strategy and Threads override the base scheduling strategy —
	// ignored by pool-attached containers, where the pool's parallelism
	// rules.
	Strategy string
	Threads  int
	// Fuse enables cost-guided chain fusion for this session, with
	// FuseOpts tuning the pass (zero = defaults).
	Fuse     bool
	FuseOpts graph.FuseOptions
	// AdmissionMargin overrides the admission gate's safety margin
	// (margin × (base + graph bound) ≤ period); 0 keeps the base
	// config's margin.
	AdmissionMargin float64
	// Hooks are per-session event hooks; non-nil fields override the
	// base config's.
	Hooks Hooks
	// Graph, when non-nil, replaces the base graph config wholesale
	// (decks, FX chains, scale).
	Graph *graph.Config
}

// Resolve merges the spec over a base Config, returning the effective
// per-session Config. The base is taken by value and never mutated, so
// one base can safely fan out to many sessions.
func (sp SessionSpec) Resolve(base Config) Config {
	c := base
	if sp.Graph != nil {
		c.Graph = *sp.Graph
	}
	if sp.Strategy != "" {
		c.Strategy = sp.Strategy
	}
	if sp.Threads > 0 {
		c.Threads = sp.Threads
	}
	if sp.Fuse {
		c.FusePlan = true
		c.Fuse = sp.FuseOpts
	}
	if sp.AdmissionMargin > 0 {
		c.Admission.Config.Margin = sp.AdmissionMargin
	}
	if sp.ID != "" {
		c.Telemetry.Session = sp.ID
	}
	c.Hooks = mergeHooks(base.Hooks, sp.Hooks)
	return c
}

// NewSession builds an engine from a base Config and a per-session
// spec — New(sp.Resolve(base)).
func NewSession(base Config, sp SessionSpec) (*Engine, error) {
	return New(sp.Resolve(base))
}

// mergeHooks overlays per-session hooks on container defaults: each
// non-nil override wins its field.
func mergeHooks(base, over Hooks) Hooks {
	h := base
	if over.OnFault != nil {
		h.OnFault = over.OnFault
	}
	if over.OnGovChange != nil {
		h.OnGovChange = over.OnGovChange
	}
	if over.OnStall != nil {
		h.OnStall = over.OnStall
	}
	if over.OnCycle != nil {
		h.OnCycle = over.OnCycle
	}
	if over.OnTrace != nil {
		h.OnTrace = over.OnTrace
	}
	if over.OnTopology != nil {
		h.OnTopology = over.OnTopology
	}
	if over.OnAdmission != nil {
		h.OnAdmission = over.OnAdmission
	}
	return h
}
