package engine

import (
	"math"
	"strings"
	"testing"

	"djstar/internal/graph"
	"djstar/internal/sched"
)

// fastConfig returns an engine config with no synthetic load (pure DSP).
func fastConfig(strategy string, threads int) Config {
	gc := graph.DefaultConfig()
	gc.TrackBars = 2
	return Config{
		Graph:          gc,
		Strategy:       strategy,
		Threads:        threads,
		CollectSamples: true,
	}
}

func TestEngineRunCycles(t *testing.T) {
	e, err := New(fastConfig(sched.NameBusyWait, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	m := e.RunCycles(100)
	if m.Cycles != 100 {
		t.Fatalf("cycles = %d", m.Cycles)
	}
	if m.Graph.N() != 100 || m.APC.N() != 100 {
		t.Fatal("summaries incomplete")
	}
	if m.Graph.Mean() <= 0 || m.APC.Mean() <= m.Graph.Mean() {
		t.Fatalf("component means inconsistent: graph %v APC %v",
			m.Graph.Mean(), m.APC.Mean())
	}
	if len(m.GraphSamplesMS) != 100 || len(m.APCSamplesMS) != 100 {
		t.Fatal("samples not collected")
	}
	if !strings.Contains(m.String(), "busy/4") {
		t.Fatalf("String = %q", m.String())
	}
}

func TestEngineComponentsSumToAPC(t *testing.T) {
	e, err := New(fastConfig(sched.NameSequential, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	m := e.RunCycles(50)
	sum := m.TP.Mean() + m.GP.Mean() + m.Graph.Mean() + m.VC.Mean()
	if math.Abs(sum-m.APC.Mean())/m.APC.Mean() > 0.05 {
		t.Fatalf("TP+GP+Graph+VC = %v, APC = %v", sum, m.APC.Mean())
	}
}

func TestEngineAllStrategies(t *testing.T) {
	for _, name := range sched.Strategies {
		e, err := New(fastConfig(name, 4))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		m := e.RunCycles(30)
		if m.Cycles != 30 {
			t.Fatalf("%s: %d cycles", name, m.Cycles)
		}
		if m.Strategy != name {
			t.Fatalf("metrics strategy %q, want %q", m.Strategy, name)
		}
		e.Close()
	}
}

func TestEngineDefaultsApplied(t *testing.T) {
	gc := graph.DefaultConfig()
	gc.TrackBars = 2
	e, err := New(Config{Graph: gc})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Scheduler().Name() != sched.NameBusyWait {
		t.Fatalf("default strategy = %s", e.Scheduler().Name())
	}
	if e.Scheduler().Threads() != 4 {
		t.Fatalf("default threads = %d", e.Scheduler().Threads())
	}
	if e.Plan().Len() != 67 {
		t.Fatalf("plan size = %d", e.Plan().Len())
	}
	if e.Session() == nil {
		t.Fatal("session nil")
	}
}

func TestEngineRejectsBadConfig(t *testing.T) {
	gc := graph.DefaultConfig()
	gc.Decks = 0
	if _, err := New(Config{Graph: gc}); err == nil {
		t.Fatal("bad graph config accepted")
	}
	gc = graph.DefaultConfig()
	gc.TrackBars = 2
	if _, err := New(Config{Graph: gc, Strategy: "bogus"}); err == nil {
		t.Fatal("bad strategy accepted")
	}
}

func TestTimecodeLockAndDVS(t *testing.T) {
	cfg := fastConfig(sched.NameSequential, 1)
	cfg.DVS = true
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.RunCycles(60) // plenty for a 16-bit position lock
	for d := 0; d < 4; d++ {
		if !e.TimecodeLocked(d) {
			t.Fatalf("deck %d decoder not locked after 60 cycles", d)
		}
	}
	// DVS: deck tempo follows the turntable speed (deck B turns at 0.97).
	if got := e.Session().Decks[1].Tempo(); math.Abs(got-0.97) > 0.05 {
		t.Fatalf("deck B tempo %v, want ~0.97 from timecode", got)
	}
	// Scratch: slow turntable A down and verify the deck follows.
	e.SetTurntableSpeed(0, 0.6)
	e.RunCycles(80)
	if got := e.Session().Decks[0].Tempo(); math.Abs(got-0.6) > 0.08 {
		t.Fatalf("deck A tempo %v, want ~0.6 after scratch", got)
	}
	// Out-of-range deck index is a no-op.
	e.SetTurntableSpeed(99, 2)
}

func TestMasterTempoTracksDecks(t *testing.T) {
	e, err := New(fastConfig(sched.NameSequential, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.RunCycles(300)
	// Deck tempos: 1.0, 0.97, 1.03, 0.99 -> mean 0.9975.
	if mt := e.MasterTempo(); math.Abs(mt-0.9975) > 0.01 {
		t.Fatalf("master tempo = %v, want ~0.9975", mt)
	}
}

func TestEngineCycleNilMetrics(t *testing.T) {
	e, err := New(fastConfig(sched.NameSequential, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Cycle(nil) // must not panic
}

func TestEngineCloseIdempotent(t *testing.T) {
	cfg := fastConfig(sched.NameBusyWait, 2)
	cfg.DisableGC = true
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.RunCycles(5)
	e.Close()
	e.Close() // second close is a no-op
}

func TestRunRealtimePacing(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock pacing is meaningless under the race detector's slowdown")
	}
	e, err := New(fastConfig(sched.NameBusyWait, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rep := e.RunRealtime(40)
	if rep.Metrics.Cycles != 40 {
		t.Fatalf("cycles = %d", rep.Metrics.Cycles)
	}
	// At zero synthetic load the machine should keep up comfortably.
	if rep.Late > 5 {
		t.Fatalf("%d of 40 paced cycles late", rep.Late)
	}
}

func TestMeasureNodeDurations(t *testing.T) {
	gc := graph.DefaultConfig()
	gc.TrackBars = 2
	durs, plan, err := MeasureNodeDurations(gc, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(durs) != plan.Len() {
		t.Fatalf("%d durations for %d nodes", len(durs), plan.Len())
	}
	for i, d := range durs {
		if d < 0 || math.IsNaN(d) {
			t.Fatalf("node %d (%s) duration %v", i, plan.Names[i], d)
		}
	}
	// FX nodes must be measurably more expensive than control nodes even
	// at zero synthetic scale (they run real DSP).
	var fxSum, ctrlSum float64
	var fxN, ctrlN int
	for i, name := range plan.Names {
		switch {
		case strings.HasPrefix(name, "FX"):
			fxSum += durs[i]
			fxN++
		case strings.HasPrefix(name, "Ctrl"):
			ctrlSum += durs[i]
			ctrlN++
		}
	}
	if fxSum/float64(fxN) <= ctrlSum/float64(ctrlN) {
		t.Fatalf("FX avg %v not above control avg %v",
			fxSum/float64(fxN), ctrlSum/float64(ctrlN))
	}
	if _, _, err := MeasureNodeDurations(gc, 0); err == nil {
		t.Fatal("0 cycles accepted")
	}
}

func TestEngineHotPathAllocationFree(t *testing.T) {
	e, err := New(fastConfig(sched.NameBusyWait, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.RunCycles(10) // warm up
	allocs := testing.AllocsPerRun(100, func() { e.Cycle(nil) })
	if allocs != 0 {
		t.Fatalf("Cycle allocates %v per run, want 0", allocs)
	}
}
