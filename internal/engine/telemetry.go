package engine

import (
	"djstar/internal/obs"
	"djstar/internal/sched"
	"djstar/internal/telemetry"
)

// Engine ↔ telemetry wiring: the engine owns a telemetry.Collector
// (histograms, SLO budget, per-second ring) and a telemetry.Recorder
// (flight recorder). Fault, governor and stall events flow through the
// wrapper methods below so they are counted and retained before any
// user hook runs; Cycle feeds RecordCycle and triggers the recorder
// when the rolling miss window blows its budget.

// Telemetry exposes the telemetry collector (nil when disabled via
// TelemetryOptions.Disable).
func (e *Engine) Telemetry() *telemetry.Collector { return e.tel }

// FlightRecorder exposes the incident flight recorder (nil when
// telemetry is disabled).
func (e *Engine) FlightRecorder() *telemetry.Recorder { return e.flight }

// onFault is the scheduler's fault handler: count + retain, trigger the
// recorder on quarantine, then forward to the user hook. Runs on the
// worker that recovered the panic.
func (e *Engine) onFault(r sched.FaultRecord) {
	if e.tel != nil {
		e.tel.RecordFault(r.Quarantined)
		if r.Quarantined {
			e.flight.AddEvent(r.Cycle, "quarantine", r.Name)
			e.flight.Trigger(r.Cycle, telemetry.TriggerQuarantine)
		} else {
			e.flight.AddEvent(r.Cycle, "fault", r.Name)
		}
	}
	if e.cfg.Hooks.OnFault != nil {
		e.cfg.Hooks.OnFault(r)
	}
}

// onGovChange is the governor's transition handler (cycle thread).
func (e *Engine) onGovChange(from, to GovLevel) {
	if e.tel != nil {
		e.tel.RecordGovTransition(int32(to))
		e.flight.AddEvent(e.cycleN.Load(), "governor", from.String()+"->"+to.String())
	}
	if e.cfg.Hooks.OnGovChange != nil {
		e.cfg.Hooks.OnGovChange(from, to)
	}
}

// onStall is the watchdog's handler (watchdog goroutine).
func (e *Engine) onStall(r StallRecord) {
	if e.tel != nil {
		e.tel.RecordStall()
		e.flight.AddEvent(r.Cycle, "stall", r.Name)
		e.flight.Trigger(r.Cycle, telemetry.TriggerStall)
	}
	if e.cfg.Hooks.OnStall != nil {
		e.cfg.Hooks.OnStall(r)
	}
}

// fillIncident stamps the engine's side of an incident bundle: identity,
// graph structure, the observed node means, and the live critical path —
// everything the offline analyzer needs to replay the analysis without
// this process. Runs on the dump goroutine.
func (e *Engine) fillIncident(inc *telemetry.Incident) {
	// One topology load: the dump goroutine gets a plan and collector
	// from the same epoch even if an edit lands mid-dump.
	t := e.topo.Load()
	inc.Threads = e.sch().Threads()
	inc.Graph = telemetry.GraphInfo{
		Names: t.plan.Names,
		Order: t.plan.Order,
		Preds: t.plan.PredLists(),
	}
	if t.col == nil {
		return
	}
	means := t.col.NodeMeansUS()
	inc.NodeMeansUS = means
	hasData := false
	for _, m := range means {
		if m > 0 {
			hasData = true
			break
		}
	}
	if hasData {
		ps := obs.CriticalPath(t.plan, means)
		inc.CritPath = &ps
	}
}
