package engine

import (
	"testing"

	"djstar/internal/graph"
	"djstar/internal/sched"
)

// stubSched is a minimal sched.Scheduler for driving the governor state
// machine directly: it only records shed marks.
type stubSched struct {
	shed map[int32]bool
}

func newStubSched() *stubSched { return &stubSched{shed: map[int32]bool{}} }

func (s *stubSched) Name() string                            { return "stub" }
func (s *stubSched) Threads() int                            { return 1 }
func (s *stubSched) Execute()                                {}
func (s *stubSched) Close()                                  {}
func (s *stubSched) SetFaultPolicy(sched.FaultPolicy)        {}
func (s *stubSched) SetFaultHandler(func(sched.FaultRecord)) {}
func (s *stubSched) Faults() sched.FaultStats                { return sched.FaultStats{} }
func (s *stubSched) SetNodeShed(id int32, shed bool)         { s.shed[id] = shed }
func (s *stubSched) Quarantined(int32) bool                  { return false }
func (s *stubSched) Inflight(int32) int32                    { return 0 }
func (s *stubSched) StageSwap(sched.Swap) error              { return nil }
func (s *stubSched) AdoptStaged() bool                       { return false }

// govPlan is a four-node plan with one node of each sheddable kind plus
// one audio node the governor must never touch.
func govPlan() *graph.Plan {
	return &graph.Plan{
		Names: []string{"audio", "meter", "control", "fx"},
		Kinds: []graph.NodeKind{graph.KindAudio, graph.KindMeter, graph.KindControl, graph.KindFX},
	}
}

// govHarness wires a governor to the stub scheduler and records every
// transition and load-factor application.
type govHarness struct {
	g           *governor
	s           *stubSched
	factors     []float64
	transitions []string
}

func newGovHarness(t *testing.T, cfg GovernorConfig) *govHarness {
	t.Helper()
	h := &govHarness{s: newStubSched()}
	h.g = newGovernor(cfg, h.s, govPlan(), func(f float64) {
		h.factors = append(h.factors, f)
	})
	h.g.onChange = func(from, to GovLevel) {
		h.transitions = append(h.transitions, from.String()+"->"+to.String())
	}
	return h
}

// window feeds exactly one evaluation window: misses cycles over the
// deadline, the rest clean, all with a graph time far under budget.
func (h *govHarness) window(misses int) {
	w := h.g.cfg.Window
	for i := 0; i < w; i++ {
		apc := 1.0
		if i < misses {
			apc = 10.0 // past any deadline
		}
		h.g.observe(apc, 0.1)
	}
}

// govTestConfig: window of 8 cycles, escalate when the window miss rate
// exceeds 20 % (i.e. 2+ misses of 8), recover after 3 clean windows.
func govTestConfig() GovernorConfig {
	return GovernorConfig{
		Enabled:          true,
		DeadlineMS:       2.0,
		GraphBudgetMS:    100, // keep the p99 trigger out of these tests
		Window:           8,
		EscalateMissRate: 0.20,
		CleanWindows:     3,
		CriticalFactor:   0.5,
	}
}

func TestGovernorEscalateExactBoundary(t *testing.T) {
	h := newGovHarness(t, govTestConfig())

	// One window one cycle short of completion: no decision yet, however
	// bad the cycles were.
	for i := 0; i < 7; i++ {
		h.g.observe(10.0, 0.1)
	}
	if got := h.g.Level(); got != GovNormal {
		t.Fatalf("level before window completes = %v, want normal", got)
	}
	// The 8th cycle completes the window: rate 1.0 > 0.20 escalates.
	h.g.observe(10.0, 0.1)
	if got := h.g.Level(); got != GovDegraded1 {
		t.Fatalf("level after first bad window = %v, want degraded1", got)
	}
	// Degraded1 sheds meter and control, keeps FX and DSP.
	if !h.s.shed[1] || !h.s.shed[2] {
		t.Fatalf("degraded1 must shed meter+control, shed map = %v", h.s.shed)
	}
	if h.s.shed[0] || h.s.shed[3] {
		t.Fatalf("degraded1 must not shed audio or fx, shed map = %v", h.s.shed)
	}

	// A window at exactly the threshold rate must NOT escalate: the
	// trigger is rate > EscalateMissRate, and 20 % of 8 is 1.6, so 1 miss
	// (12.5 %) holds while 2 misses (25 %) escalates.
	h.window(1)
	if got := h.g.Level(); got != GovDegraded1 {
		t.Fatalf("level after under-threshold window = %v, want degraded1", got)
	}
	h.window(2)
	if got := h.g.Level(); got != GovDegraded2 {
		t.Fatalf("level after over-threshold window = %v, want degraded2", got)
	}
	// Degraded2 additionally sheds FX.
	if !h.s.shed[3] {
		t.Fatalf("degraded2 must shed fx, shed map = %v", h.s.shed)
	}
}

func TestGovernorCriticalHalvesLoadFactor(t *testing.T) {
	h := newGovHarness(t, govTestConfig())

	// Three bad windows walk normal -> degraded1 -> degraded2 -> critical.
	h.window(8)
	h.window(8)
	h.window(8)
	if got := h.g.Level(); got != GovCritical {
		t.Fatalf("level after 3 bad windows = %v, want critical", got)
	}
	// The critical rung applies the configured load-factor multiplier;
	// the two rungs before it applied 1.0.
	if len(h.factors) != 3 || h.factors[2] != 0.5 {
		t.Fatalf("factors = %v, want [1 1 0.5]", h.factors)
	}

	// Critical is the floor: more bad windows hold, no further transition.
	h.window(8)
	if got := h.g.Level(); got != GovCritical {
		t.Fatalf("level after 4th bad window = %v, want critical (floor)", got)
	}
	if len(h.transitions) != 3 {
		t.Fatalf("transitions = %v, want exactly 3", h.transitions)
	}
}

func TestGovernorDeEscalateExactBoundary(t *testing.T) {
	h := newGovHarness(t, govTestConfig())
	h.window(8) // normal -> degraded1

	// CleanWindows-1 clean windows are not enough.
	h.window(0)
	h.window(0)
	if got := h.g.Level(); got != GovDegraded1 {
		t.Fatalf("level after 2 clean windows = %v, want degraded1", got)
	}
	// The 3rd consecutive clean window recovers one level.
	h.window(0)
	if got := h.g.Level(); got != GovNormal {
		t.Fatalf("level after 3 clean windows = %v, want normal", got)
	}
	// Recovery un-sheds everything.
	for id, shed := range h.s.shed {
		if shed {
			t.Fatalf("node %d still shed after recovery", id)
		}
	}
}

func TestGovernorRecoveryFromCriticalRestoresFactor(t *testing.T) {
	h := newGovHarness(t, govTestConfig())
	h.window(8)
	h.window(8)
	h.window(8) // critical, factor 0.5

	// Leaving critical must restore the full load factor immediately,
	// even though the level is still degraded2.
	h.window(0)
	h.window(0)
	h.window(0)
	if got := h.g.Level(); got != GovDegraded2 {
		t.Fatalf("level after recovery step = %v, want degraded2", got)
	}
	if last := h.factors[len(h.factors)-1]; last != 1.0 {
		t.Fatalf("factor after leaving critical = %v, want 1.0", last)
	}

	// Full recovery walks one level per CleanWindows streak.
	for i := 0; i < 2*3; i++ {
		h.window(0)
	}
	if got := h.g.Level(); got != GovNormal {
		t.Fatalf("level after full recovery = %v, want normal", got)
	}
	want := []string{
		"normal->degraded1", "degraded1->degraded2", "degraded2->critical",
		"critical->degraded2", "degraded2->degraded1", "degraded1->normal",
	}
	if len(h.transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", h.transitions, want)
	}
	for i := range want {
		if h.transitions[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q", i, h.transitions[i], want[i])
		}
	}
}

func TestGovernorPartialMissWindowResetsCleanStreak(t *testing.T) {
	h := newGovHarness(t, govTestConfig())
	h.window(8) // -> degraded1

	// Two clean windows, then a window with one miss (under the
	// escalation threshold): holds the level but restarts the streak.
	h.window(0)
	h.window(0)
	h.window(1)
	if got := h.g.Level(); got != GovDegraded1 {
		t.Fatalf("level after partial-miss window = %v, want degraded1", got)
	}
	// Two more clean windows: still short of a fresh streak of 3.
	h.window(0)
	h.window(0)
	if got := h.g.Level(); got != GovDegraded1 {
		t.Fatalf("level after broken streak = %v, want degraded1 (hysteresis)", got)
	}
	h.window(0)
	if got := h.g.Level(); got != GovNormal {
		t.Fatalf("level after fresh 3-window streak = %v, want normal", got)
	}
}

func TestGovernorRecoverMissRateToleratesNoise(t *testing.T) {
	cfg := govTestConfig()
	cfg.EscalateMissRate = 0.30 // 3+ misses of 8 escalate
	cfg.RecoverMissRate = 0.125 // 1 miss of 8 still counts as clean
	h := newGovHarness(t, cfg)
	h.window(8) // -> degraded1

	// Windows dirtied by a single miss (rate 0.125 <= tolerance) count
	// toward the recovery streak exactly like miss-free ones.
	h.window(1)
	h.window(0)
	h.window(1)
	if got := h.g.Level(); got != GovNormal {
		t.Fatalf("level after 3 within-tolerance windows = %v, want normal", got)
	}

	// Above the tolerance but under the escalation threshold: the level
	// holds and the streak restarts, as before.
	h.window(8) // -> degraded1
	h.window(1)
	h.window(1)
	h.window(2) // rate 0.25: hold + reset
	h.window(1)
	h.window(1)
	if got := h.g.Level(); got != GovDegraded1 {
		t.Fatalf("level after broken streak = %v, want degraded1 (hysteresis)", got)
	}
	h.window(1)
	if got := h.g.Level(); got != GovNormal {
		t.Fatalf("level after fresh streak = %v, want normal", got)
	}
}

func TestGovernorGraphBudgetP99Escalates(t *testing.T) {
	cfg := govTestConfig()
	cfg.GraphBudgetMS = 2.1
	h := newGovHarness(t, cfg)

	// No deadline misses, but every graph time over budget: the p99
	// trigger escalates on its own.
	for i := 0; i < cfg.Window; i++ {
		h.g.observe(1.0, 5.0)
	}
	if got := h.g.Level(); got != GovDegraded1 {
		t.Fatalf("level after over-budget graph window = %v, want degraded1", got)
	}
}
