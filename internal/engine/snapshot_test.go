package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"

	"djstar/internal/obs"
	"djstar/internal/sched"
)

func TestSnapshotUnifiesMetricsAndObs(t *testing.T) {
	e, err := New(fastConfig(sched.NameBusyWait, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	s := e.Snapshot()
	if s.SchemaVersion != SnapshotSchemaVersion {
		t.Fatalf("schema = %d, want %d", s.SchemaVersion, SnapshotSchemaVersion)
	}
	if s.Cycles != 0 || s.Nodes != nil || s.CritPath != nil {
		t.Fatalf("fresh engine snapshot not empty: %+v", s)
	}

	const cycles = 60
	for i := 0; i < cycles; i++ {
		e.Cycle(nil)
	}
	s = e.Snapshot()
	if s.Cycles != cycles {
		t.Fatalf("cycles = %d, want %d", s.Cycles, cycles)
	}
	if s.Strategy != sched.NameBusyWait || s.Threads != 2 {
		t.Fatalf("identity wrong: %s/%d", s.Strategy, s.Threads)
	}
	if s.APCMeanMS <= 0 || s.GraphMeanMS <= 0 || s.APCMeanMS < s.GraphMeanMS {
		t.Fatalf("component means inconsistent: %+v", s)
	}
	if len(s.Nodes) != e.Plan().Len() {
		t.Fatalf("%d node stats, want %d", len(s.Nodes), e.Plan().Len())
	}
	for _, n := range s.Nodes {
		if n.Count != cycles {
			t.Fatalf("node %s count = %d, want %d", n.Name, n.Count, cycles)
		}
	}
	if s.CritPath == nil || s.CritPath.LengthUS <= 0 {
		t.Fatal("missing critical path")
	}
	// The critical path under mean durations cannot exceed the mean
	// measured makespan by more than noise; sanity-bound it against the
	// mean graph time.
	if s.CritPath.LengthUS > s.GraphMeanMS*1e3*1.5 {
		t.Fatalf("critical path %.1f µs vs graph mean %.3f ms", s.CritPath.LengthUS, s.GraphMeanMS)
	}
	if s.Health.Level.String() == "" {
		t.Fatal("health missing from snapshot")
	}

	// The snapshot is the wire shape for the HTTP endpoint and bus: it
	// must round-trip JSON.
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.SchemaVersion != s.SchemaVersion || back.Cycles != s.Cycles || len(back.Nodes) != len(s.Nodes) {
		t.Fatalf("round-trip lost data: %+v", back)
	}
}

func TestSnapshotObsDisabled(t *testing.T) {
	cfg := fastConfig(sched.NameSequential, 1)
	cfg.Obs = ObsOptions{Disable: true}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 10; i++ {
		e.Cycle(nil)
	}
	s := e.Snapshot()
	if s.Nodes != nil || s.CritPath != nil {
		t.Fatal("disabled collector leaked node stats into snapshot")
	}
	if s.Cycles != 10 || s.APCMeanMS <= 0 {
		t.Fatalf("live accounting must survive Obs.Disable: %+v", s)
	}
	if _, ok := e.CriticalPath(); ok {
		t.Fatal("CriticalPath ok with collector disabled")
	}
}

func TestDebugServerEndpoints(t *testing.T) {
	e, err := New(fastConfig(sched.NameBusyWait, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 64; i++ {
		e.Cycle(nil)
	}

	srv, err := StartDebugServer("127.0.0.1:0", e)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/api/snapshot"), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.SchemaVersion != SnapshotSchemaVersion || snap.Cycles != 64 {
		t.Fatalf("snapshot over HTTP: %+v", snap)
	}

	var ps obs.PathStat
	if err := json.Unmarshal(get("/api/critpath"), &ps); err != nil {
		t.Fatal(err)
	}
	if ps.LengthUS <= 0 || len(ps.Nodes) == 0 {
		t.Fatalf("critpath over HTTP: %+v", ps)
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(get("/api/trace"), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace endpoint returned no events (64 cycles at default sampling should produce 2 samples)")
	}

	if body := get("/debug/pprof/cmdline"); len(body) == 0 {
		t.Fatal("pprof endpoint empty")
	}
}
