package engine

import (
	"sync"
	"testing"

	"djstar/internal/sched"
)

// TestEngineFusePlan: Config.FusePlan compiles the execution plan
// through chain fusion while the engine's public node-ID space — plan,
// collector, metrics — stays the base graph.
func TestEngineFusePlan(t *testing.T) {
	cfg := fastConfig(sched.NameBusyWait, 4)
	cfg.FusePlan = true
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	base, exec := e.Plan(), e.ExecPlan()
	if !exec.IsFused() || exec.Base != base {
		t.Fatal("ExecPlan is not a fusion of Plan")
	}
	if exec.Len() >= base.Len() {
		t.Fatalf("fusion did not shrink the plan: %d -> %d", base.Len(), exec.Len())
	}
	if e.PlanEpoch() != 0 {
		t.Fatalf("fresh engine epoch = %d", e.PlanEpoch())
	}

	m := e.RunCycles(60)
	if m.Cycles != 60 || m.Graph.Mean() <= 0 {
		t.Fatalf("fused run metrics: %+v", m)
	}
	// The collector observes base nodes: every original node has a
	// measured mean even though the scheduler ran fused units.
	means := e.Collector().NodeMeansUS()
	if len(means) != base.Len() {
		t.Fatalf("collector sized %d, want base %d", len(means), base.Len())
	}
	for i, us := range means {
		if us <= 0 {
			t.Fatalf("base node %d (%s) unobserved under fusion", i, base.Names[i])
		}
	}
}

// TestEngineRecompileFused: staging a fused plan on a live engine swaps
// the scheduler at the next cycle boundary without disturbing the run.
func TestEngineRecompileFused(t *testing.T) {
	cfg := fastConfig(sched.NameWorkSteal, 4)
	cfg.Governor.Enabled = true
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	e.RunCycles(30) // collector now has a measured cost model
	if e.PlanEpoch() != 0 || e.ExecPlan() != e.Plan() {
		t.Fatal("engine fused before RecompileFused")
	}
	if err := e.RecompileFused(nil); err != nil {
		t.Fatal(err)
	}
	// Staged, not yet adopted: the swap waits for the cycle boundary.
	if e.PlanEpoch() != 0 {
		t.Fatal("swap adopted outside a cycle boundary")
	}
	e.Cycle(nil)
	if e.PlanEpoch() != 1 {
		t.Fatalf("epoch after adoption = %d, want 1", e.PlanEpoch())
	}
	exec := e.ExecPlan()
	if !exec.IsFused() || exec.Base != e.Plan() {
		t.Fatal("adopted plan is not a fusion of the base")
	}
	if e.Scheduler().Name() != sched.NameWorkSteal {
		t.Fatalf("strategy changed across swap: %s", e.Scheduler().Name())
	}
	m := e.RunCycles(30)
	if m.Cycles != 30 || m.Graph.Mean() <= 0 {
		t.Fatalf("post-swap metrics: %+v", m)
	}

	// A second recompile (explicit costs) swaps again.
	if err := e.RecompileFused(e.Collector().NodeMeansUS()); err != nil {
		t.Fatal(err)
	}
	e.Cycle(nil)
	if e.PlanEpoch() != 2 {
		t.Fatalf("epoch after second adoption = %d, want 2", e.PlanEpoch())
	}
}

// TestEngineRecompileFusedConcurrent: RecompileFused is documented safe
// from any thread while the cycle loop runs — exercised under -race.
func TestEngineRecompileFusedConcurrent(t *testing.T) {
	e, err := New(fastConfig(sched.NameBusyWait, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.RunCycles(5)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if err := e.RecompileFused(nil); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		e.Cycle(nil)
	}
	wg.Wait()
	e.Cycle(nil) // adopt any last staged swap
	if e.PlanEpoch() == 0 {
		t.Fatal("no swap ever adopted")
	}
	if !e.ExecPlan().IsFused() {
		t.Fatal("exec plan not fused after concurrent recompiles")
	}
}

// TestEngineRecompileFusedPool: pool-attached engines swap plans like
// any other strategy now that swaps go through the scheduler's
// StageSwap instead of rebuilding the scheduler (the pool's workers are
// shared and survive the swap).
func TestEngineRecompileFusedPool(t *testing.T) {
	cfg := fastConfig(sched.NamePool, 2)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.RunCycles(5)
	if err := e.RecompileFused(nil); err != nil {
		t.Fatalf("pool engine rejected RecompileFused: %v", err)
	}
	e.Cycle(nil) // adopt at the boundary
	if e.PlanEpoch() != 1 {
		t.Fatalf("plan epoch = %d, want 1", e.PlanEpoch())
	}
	if !e.ExecPlan().IsFused() {
		t.Fatal("exec plan not fused after pool recompile")
	}
	e.RunCycles(20)
}
