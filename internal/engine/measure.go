package engine

import (
	"fmt"

	"djstar/internal/graph"
	"djstar/internal/sched"
)

// MeasureNodeDurations runs the engine's graph sequentially for the given
// number of cycles with a tracer installed and returns each node's average
// execution time in microseconds — the paper's "average vertex computation
// time using 10k APC executions" (§IV) that feeds the RESCON simulation.
//
// It builds its own sequential scheduler over the engine's plan so the
// engine's configured strategy is untouched.
func MeasureNodeDurations(cfg graph.Config, cycles int) ([]float64, *graph.Plan, error) {
	if cycles < 1 {
		return nil, nil, fmt.Errorf("engine: cycles = %d, want >= 1", cycles)
	}
	session, g, err := graph.BuildDJStar(cfg)
	if err != nil {
		return nil, nil, err
	}
	plan, err := g.Compile()
	if err != nil {
		return nil, nil, err
	}
	tr := sched.NewTracer(plan.Len())
	s := sched.NewSequential(plan, sched.Options{Observer: tr})
	defer s.Close()

	sums := make([]float64, plan.Len())
	for c := 0; c < cycles; c++ {
		session.Prepare()
		s.Execute()
		for _, e := range tr.Events() {
			sums[e.Node] += float64(e.End-e.Start) / 1e3 // ns → µs
		}
	}
	for i := range sums {
		sums[i] /= float64(cycles)
	}
	return sums, plan, nil
}
