package engine

import (
	"fmt"
	"sync"

	"djstar/internal/admission"
	"djstar/internal/sched"
	"djstar/internal/telemetry"
)

// MultiEngine owns N engines attached as sessions to one shared
// sched.Pool worker pool — the "serve many concurrent users from one
// process" direction the single-engine design cannot express, since
// every strategy scheduler owns a private goroutine pool. Each session
// keeps its own graph, decks, mixer and timecode front end; only the
// execution workers are shared. Per-session cycle serialization is
// preserved (each session is driven by exactly one goroutine), while
// sessions execute concurrently over the pool.
//
// With cfg.Admission.Enabled, all sessions share one
// admission.Controller sized for the pool: each AddSession (and each
// construction-time session) is gated on the AGGREGATE bound — its own
// critical path plus its share of every session's work on the shared
// workers — and refused (admission.ErrOverBudget) when any session's
// aggregate bound would leave the envelope.
type MultiEngine struct {
	cfg     Config
	pool    *sched.Pool
	ctl     *admission.Controller
	engines []*Engine
	// seq is the next auto-assigned session ID. Monotonic — IDs are
	// never reused, so metric series and /v1 resources stay stable for a
	// session's whole life.
	seq    int
	closed bool
}

// NewMulti builds sessions engines over a fresh shared pool with the
// given helper worker count. Each engine's Config is resolved from cfg
// as the base of a zero SessionSpec (see AddSession); cfg.Strategy and
// cfg.Threads are ignored. DisableGC is applied at most once (the
// setting is process-wide).
func NewMulti(cfg Config, sessions, workers int) (*MultiEngine, error) {
	if sessions < 1 {
		return nil, fmt.Errorf("engine: sessions = %d, want >= 1", sessions)
	}
	// Slots are cheap; leave headroom so AddSession can grow the group
	// past the boot count without hitting ErrPoolFull.
	capacity := sessions * 2
	if capacity < 8 {
		capacity = 8
	}
	pool, err := sched.NewPool(workers, capacity)
	if err != nil {
		return nil, err
	}
	m := &MultiEngine{cfg: cfg, pool: pool}
	if cfg.Admission.Enabled {
		m.ctl = cfg.Admission.Controller
		if m.ctl == nil {
			acfg := cfg.Admission.Config
			if acfg.BaseUS == 0 {
				acfg.BaseUS = SessionBaseUS(cfg.Graph.Scale)
			}
			// Like the per-session gate, count processors, not workers:
			// the hardware caps the pool's real parallelism.
			m.ctl = admission.NewController(effectiveProcs(workers+1), acfg)
		}
	}
	for i := 0; i < sessions; i++ {
		if _, err := m.AddSession(); err != nil {
			m.Close()
			return nil, err
		}
	}
	return m, nil
}

// AddSession attaches one more session to the shared pool — the dynamic
// growth path the admission gate exists for. The optional spec carries
// the session's knobs (ID, fusion, margin, hooks); omitted, the session
// takes the container defaults with an auto-assigned monotonic ID. With
// admission enabled the session is held against the pool's aggregate
// bound first; the error wraps admission.ErrOverBudget on an analytical
// refusal and sched.ErrPoolFull when the pool's slots are exhausted.
func (m *MultiEngine) AddSession(spec ...SessionSpec) (*Engine, error) {
	if m.closed {
		return nil, fmt.Errorf("engine: AddSession after Close")
	}
	if len(spec) > 1 {
		return nil, fmt.Errorf("engine: AddSession takes at most one spec, got %d", len(spec))
	}
	var sp SessionSpec
	if len(spec) == 1 {
		sp = spec[0]
	}
	if sp.ID == "" {
		sp.ID = fmt.Sprintf("%d", m.seq)
	}
	first := m.seq == 0
	m.seq++
	c := sp.Resolve(m.cfg)
	c.Pool = m.pool
	c.Strategy = sched.NamePool
	c.Admission.Controller = m.ctl
	if !first {
		c.DisableGC = false
	}
	e, err := New(c)
	if err != nil {
		return nil, err
	}
	m.engines = append(m.engines, e)
	return e, nil
}

// Pool exposes the shared worker pool.
func (m *MultiEngine) Pool() *sched.Pool { return m.pool }

// Controller exposes the shared admission controller (nil when the
// gate is disabled).
func (m *MultiEngine) Controller() *admission.Controller { return m.ctl }

// Engines exposes the per-session engines (e.g. for live control of one
// session while others keep running).
func (m *MultiEngine) Engines() []*Engine { return m.engines }

// TelemetryRegistry assembles a registry over every session's telemetry
// collector, for one /metrics endpoint covering the whole pool. Sessions
// with telemetry disabled are skipped.
func (m *MultiEngine) TelemetryRegistry() *telemetry.Registry {
	r := telemetry.NewRegistry()
	for _, e := range m.engines {
		r.Add(e.Telemetry())
	}
	return r
}

// RunCyclesConcurrent executes n audio processing cycles on every
// session concurrently — one driving goroutine per session, all sharing
// the pool's workers — and returns per-session metrics in session order.
func (m *MultiEngine) RunCyclesConcurrent(n int) []*Metrics {
	out := make([]*Metrics, len(m.engines))
	var wg sync.WaitGroup
	for i, e := range m.engines {
		wg.Add(1)
		go func(i int, e *Engine) {
			defer wg.Done()
			out[i] = e.RunCycles(n)
		}(i, e)
	}
	wg.Wait()
	return out
}

// Close shuts down every session and the shared pool. Idempotent.
func (m *MultiEngine) Close() {
	if m.closed {
		return
	}
	m.closed = true
	for _, e := range m.engines {
		e.Close()
	}
	m.pool.Close()
}
