//go:build race

package engine

// raceEnabled reports that this binary was built with the race detector,
// whose 5-20x slowdown invalidates wall-clock pacing assertions.
const raceEnabled = true
