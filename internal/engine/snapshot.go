package engine

import (
	"sync"

	"djstar/internal/obs"
	"djstar/internal/telemetry"
)

// SnapshotSchemaVersion identifies the Snapshot wire shape; consumers
// (HTTP endpoint, middleware bus, UI) check it instead of sniffing
// fields. Bump on any incompatible change.
//
// v2 added PlanEpoch and LastEdit (live topology editing); v1 consumers
// that ignore unknown fields still parse v2 payloads, but node IDs in
// Nodes/CritPath are only stable within one PlanEpoch, which v1 could
// assume process-stable — hence the bump. See DESIGN.md §14.
//
// v3 added Admission (the schedulability gate's verdict, analytical
// bound and predictive-overload flag; nil when the gate is off). See
// DESIGN.md §15.
//
// v4 added SessionID (the fleet-scoped session label, stable across
// shard migration) and Shard (the hosting shard, "" outside a fleet).
// See DESIGN.md §16.
const SnapshotSchemaVersion = 4

// Snapshot is the engine's unified point-in-time observability view:
// whole-run cycle accounting, health/fault/degradation state, per-node
// timing stats and the measured critical path, in one versioned struct.
// It replaces the previous split where Metrics, Health and ad-hoc
// scheduler queries each exposed a different subset. Snapshot allocates
// and takes the collector mutex — call it from UI/telemetry rates, not
// the audio path.
type Snapshot struct {
	SchemaVersion int `json:"schema_version"`

	// SessionID is the engine's stable session label — under a fleet it
	// survives shard migration, so dashboards keyed on it never see a
	// session change identity. Schema v4.
	SessionID string `json:"session_id"`
	// Shard is the shard currently hosting the session ("" outside a
	// fleet). Schema v4.
	Shard string `json:"shard,omitempty"`

	Strategy string `json:"strategy"`
	Threads  int    `json:"threads"`
	// Cycles is the engine's own cycle count (independent of any
	// user-supplied Metrics sink).
	Cycles uint64 `json:"cycles"`

	// PlanEpoch counts adopted topology swaps (0 = construction plan);
	// node IDs in Nodes/CritPath are stable within one epoch. Schema v2.
	PlanEpoch uint64 `json:"plan_epoch"`
	// LastEdit is the most recent live-edit outcome (nil when no edit
	// has been attempted). Schema v2.
	LastEdit *EditOutcome `json:"last_edit,omitempty"`

	// Component means over the whole run, milliseconds.
	TPMeanMS    float64 `json:"tp_mean_ms"`
	GPMeanMS    float64 `json:"gp_mean_ms"`
	GraphMeanMS float64 `json:"graph_mean_ms"`
	VCMeanMS    float64 `json:"vc_mean_ms"`
	APCMeanMS   float64 `json:"apc_mean_ms"`
	GraphMaxMS  float64 `json:"graph_max_ms"`
	APCMaxMS    float64 `json:"apc_max_ms"`

	// DeadlineMisses counts APCs over the 2.902 ms packet period;
	// MissRate is the fraction of all cycles.
	DeadlineMisses uint64  `json:"deadline_misses"`
	MissRate       float64 `json:"miss_rate"`

	// Health is the fault-tolerance and degradation state.
	Health Health `json:"health"`

	// SLO is the deadline-miss budget status (nil when telemetry is
	// disabled).
	SLO *telemetry.SLOStatus `json:"slo,omitempty"`

	// Admission is the schedulability gate's status: verdict, analytical
	// response-time bound vs envelope, predictive-overload flag (nil
	// when the gate is disabled). Schema v3.
	Admission *AdmissionState `json:"admission,omitempty"`

	// Nodes are the collector's per-node timing stats (nil when the
	// collector is disabled).
	Nodes []obs.NodeStat `json:"nodes,omitempty"`
	// CritPath is the critical path under the measured node means (nil
	// when the collector is disabled or no cycle has run).
	CritPath *obs.PathStat `json:"crit_path,omitempty"`
}

// liveStats is the engine's always-on cycle accounting, updated once per
// Cycle under a mutex that only Snapshot contends for.
type liveStats struct {
	mu                                    sync.Mutex
	cycles                                uint64
	tpSum, gpSum, graphSum, vcSum, apcSum float64
	graphMax, apcMax                      float64
	misses                                uint64
}

func (l *liveStats) add(tp, gp, graph, vc, apc float64, missed bool) {
	l.mu.Lock()
	l.cycles++
	l.tpSum += tp
	l.gpSum += gp
	l.graphSum += graph
	l.vcSum += vc
	l.apcSum += apc
	if graph > l.graphMax {
		l.graphMax = graph
	}
	if apc > l.apcMax {
		l.apcMax = apc
	}
	if missed {
		l.misses++
	}
	l.mu.Unlock()
}

// Snapshot assembles the unified observability view.
func (e *Engine) Snapshot() Snapshot {
	s := Snapshot{
		SchemaVersion: SnapshotSchemaVersion,
		SessionID:     e.SessionID(),
		Strategy:      e.sch().Name(),
		Threads:       e.sch().Threads(),
		PlanEpoch:     e.planEpoch.Load(),
		Health:        e.Health(),
	}
	if e.tel != nil {
		s.Shard = e.tel.Shard()
	}
	if le := e.lastEdit.Load(); le != nil {
		cp := *le
		s.LastEdit = &cp
	}
	e.live.mu.Lock()
	s.Cycles = e.live.cycles
	if n := float64(e.live.cycles); n > 0 {
		s.TPMeanMS = e.live.tpSum / n
		s.GPMeanMS = e.live.gpSum / n
		s.GraphMeanMS = e.live.graphSum / n
		s.VCMeanMS = e.live.vcSum / n
		s.APCMeanMS = e.live.apcSum / n
		s.MissRate = float64(e.live.misses) / n
	}
	s.GraphMaxMS = e.live.graphMax
	s.APCMaxMS = e.live.apcMax
	s.DeadlineMisses = e.live.misses
	e.live.mu.Unlock()

	if e.tel != nil {
		slo := e.tel.SLO()
		s.SLO = &slo
	}
	s.Admission = e.AdmissionState()
	// Load the topology bundle once: plan and collector are guaranteed
	// mutually consistent inside it, even mid-edit.
	if t := e.topo.Load(); t.col != nil && t.col.Cycles() > 0 {
		s.Nodes = t.col.NodeStats()
		cp := obs.CriticalPath(t.plan, t.col.NodeMeansUS())
		s.CritPath = &cp
	}
	return s
}

// CriticalPath computes the critical path under the collector's measured
// node means. ok is false when the collector is disabled or no cycle has
// been observed yet.
func (e *Engine) CriticalPath() (ps obs.PathStat, ok bool) {
	t := e.topo.Load()
	if t.col == nil || t.col.Cycles() == 0 {
		return obs.PathStat{}, false
	}
	return obs.CriticalPath(t.plan, t.col.NodeMeansUS()), true
}
