package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"djstar/internal/admission"
	"djstar/internal/graph"
	"djstar/internal/rescon"
	"djstar/internal/sched"
)

// Admission control: the engine's front door. Before a session commits
// scheduler resources, before a staged edit is adopted, and
// periodically against the live cost model, the analytical
// schedulability bound of internal/admission is held against the packet
// period — refusing, pre-degrading or predictively shedding work whose
// bound does not fit, instead of discovering the overload as deadline
// misses. All analysis runs off-cycle (construction, the editor's
// goroutine, the monitor goroutine); the audio hot path is untouched.

// ErrUnschedulableEdit is the sentinel wrapped by ApplyEdits /
// ApplyPatch when the staged plan's analytical bound exceeds the
// deadline envelope: the edit is rejected before the swap is staged and
// the live topology keeps playing. Distinguish with errors.Is.
var ErrUnschedulableEdit = errors.New("engine: edit makes the plan unschedulable")

// AdmissionOptions configure the engine's admission gate.
type AdmissionOptions struct {
	// Enabled turns the gate on: engine.New refuses or pre-degrades
	// sessions whose bound exceeds the envelope, ApplyEdits rejects
	// unschedulable edits, and the predictive monitor feeds the governor.
	Enabled bool
	// Config parameterizes the analysis (zero value: 2.902 ms envelope,
	// 1.25 margin, default overheads; BaseUS is filled from the engine's
	// TP/GP/VC targets at the running scale when zero).
	Config admission.Config
	// Controller, when set, gates this session against the aggregate
	// bound of every session sharing one worker pool (NewMulti wires a
	// shared controller automatically). Nil means per-session analysis
	// only.
	Controller *admission.Controller
	// PredictEvery is the predictive monitor's re-analysis period
	// (default 250 ms; negative disables the monitor, keeping only the
	// construction- and edit-time gates).
	PredictEvery time.Duration
}

// AdmissionState is the engine's published admission status, exposed
// through Snapshot (schema v3) and /api/admission.
type AdmissionState struct {
	// Enabled mirrors AdmissionOptions.Enabled.
	Enabled bool `json:"enabled"`
	// Verdict is the construction-time decision ("admit" or "degraded";
	// refusals never construct an engine).
	Verdict string `json:"verdict"`
	// Reason is the human-readable summary of that decision.
	Reason string `json:"reason"`
	// PreShed names the rung of an admit-degraded session ("" if none).
	PreShed string `json:"pre_shed,omitempty"`
	// Report is the most recent analysis: the construction-time static
	// one until the monitor's first live refresh, then measured-cost.
	Report *admission.Report `json:"report,omitempty"`
	// OverBudget is true while the latest recomputed bound exceeds the
	// envelope (the predictive overload flag).
	OverBudget bool `json:"over_budget"`
	// PredictiveEscalations counts governor escalations taken on the
	// predictive rung (bound blown before misses).
	PredictiveEscalations int64 `json:"predictive_escalations"`
}

// admissionSeq disambiguates controller session IDs when the caller
// did not label the session.
var admissionSeq atomic.Uint64

// effectiveProcs clamps a worker count to the machine's processor
// count. Graham's argument (and the dedicated-processor simulations)
// count processors, not workers: on a machine with fewer cores than
// configured workers the excess time-slice, so the bound is computed at
// the parallelism the hardware actually delivers.
func effectiveProcs(workers int) int {
	if p := runtime.GOMAXPROCS(0); workers > p {
		return p
	}
	return workers
}

// admissionRuntime is the per-engine admission state: the resolved
// analysis config, the construction decision, the optional shared-pool
// controller registration, and the predictive monitor.
type admissionRuntime struct {
	cfg      admission.Config
	strategy string
	threads  int
	scale    float64

	decision *admission.Decision
	ctl      *admission.Controller
	ctlID    string

	state      atomic.Pointer[AdmissionState]
	overBudget atomic.Bool

	every time.Duration
	stop  chan struct{}
	done  chan struct{}
}

// admissionStaticCosts is the static per-node cost table at the
// engine's execution scale: the design-cost table (paper µs) scaled the
// same way graph.NewLoad scales the kernels. Used whenever the live
// collector has no measurements yet.
func admissionStaticCosts(p *graph.Plan, scale float64) []float64 {
	out := rescon.PaperCostsUS(p)
	for i := range out {
		out[i] *= scale
	}
	return out
}

// newAdmissionRuntime resolves the gate's config and decides admission
// for a session about to be constructed: per-session ladder first, then
// the shared pool's aggregate bound. A refusal returns an error
// wrapping admission.ErrOverBudget (after firing Hooks.OnAdmission);
// nothing is registered on the controller in that case.
func newAdmissionRuntime(cfg *Config, plan *graph.Plan, threads int) (*admissionRuntime, error) {
	strategy := cfg.Strategy
	effThreads := threads
	if cfg.Pool != nil {
		strategy = sched.NamePool
		effThreads = cfg.Pool.Workers() + 1
	}
	effThreads = effectiveProcs(effThreads)
	acfg := cfg.Admission.Config
	if acfg.BaseUS == 0 {
		// Non-graph APC work at the running scale: the TP/GP/VC targets.
		acfg.BaseUS = SessionBaseUS(cfg.Graph.Scale)
	}
	a := &admissionRuntime{
		cfg:      acfg,
		strategy: strategy,
		threads:  effThreads,
		scale:    cfg.Graph.Scale,
		ctl:      cfg.Admission.Controller,
		every:    cfg.Admission.PredictEvery,
	}
	if a.every == 0 {
		a.every = 250 * time.Millisecond
	}

	costs := admissionStaticCosts(plan, cfg.Graph.Scale)
	d, err := admission.Decide(plan, costs, strategy, effThreads, "static", acfg)
	if err != nil {
		return nil, err
	}
	a.decision = d
	notify := func(verdict string) {
		if cfg.Hooks.OnAdmission != nil {
			cfg.Hooks.OnAdmission(AdmissionDecision{
				Verdict:    verdict,
				Reason:     d.Reason,
				BoundUS:    d.Admitted.BoundUS,
				EnvelopeUS: d.Admitted.EnvelopeUS,
				PreShed:    d.PreShed(),
			})
		}
	}
	if d.Verdict == admission.VerdictRefuse {
		notify("refuse")
		return nil, fmt.Errorf("engine: session refused: %s: %w", d.Reason, admission.ErrOverBudget)
	}
	if a.ctl != nil {
		a.ctlID = cfg.Telemetry.Session
		if a.ctlID == "" {
			a.ctlID = fmt.Sprintf("s%d", admissionSeq.Add(1))
		}
		if err := a.ctl.TryAdmit(a.ctlID, d.Admitted); err != nil {
			d.Reason = err.Error()
			notify("refuse")
			return nil, fmt.Errorf("engine: session refused: %w", err)
		}
	}
	notify(d.Verdict.String())
	return a, nil
}

// install finishes the gate on a constructed engine: applies the
// admit-degraded pre-shed (through the governor when present, so level
// and shed bits stay consistent), publishes the initial state, seeds
// the telemetry gauges, and starts the predictive monitor.
func (a *admissionRuntime) install(e *Engine) {
	if a.decision.Verdict == admission.VerdictDegraded {
		level := GovDegraded1
		if a.decision.ShedFX {
			level = GovDegraded2
		}
		if e.gov != nil {
			e.gov.force(level)
		} else {
			t := e.topo.Load()
			shedKinds(e.sch(), t.plan, a.decision.ShedUI, a.decision.ShedFX)
		}
	}
	st := &AdmissionState{
		Enabled: true,
		Verdict: a.decision.Verdict.String(),
		Reason:  a.decision.Reason,
		PreShed: a.decision.PreShed(),
		Report:  a.decision.Admitted,
	}
	a.state.Store(st)
	if e.tel != nil {
		e.tel.SetAdmissionBound(st.Report.BoundUS, st.Report.HeadroomUS)
		if a.decision.Verdict == admission.VerdictDegraded {
			e.tel.RecordAdmissionDegrade()
		}
	}
	if e.flight != nil {
		e.flight.AddEvent(0, "admission", a.decision.Verdict.String()+": "+a.decision.Reason)
	}
	if a.every > 0 {
		a.stop = make(chan struct{})
		a.done = make(chan struct{})
		go a.monitor(e)
	}
}

// shedKinds applies the admit-degraded shed bits directly (governor
// disabled): the same kind ladder the governor's applyShed uses.
func shedKinds(s sched.Scheduler, p *graph.Plan, shedUI, shedFX bool) {
	for i, k := range p.Kinds {
		switch k {
		case graph.KindMeter, graph.KindControl:
			s.SetNodeShed(int32(i), shedUI)
		case graph.KindFX:
			s.SetNodeShed(int32(i), shedFX)
		}
	}
}

// close stops the monitor and releases the controller registration.
func (a *admissionRuntime) close() {
	if a.stop != nil {
		close(a.stop)
		<-a.done
	}
	if a.ctl != nil {
		a.ctl.Release(a.ctlID)
	}
}

// monitor is the predictive goroutine: every period it re-analyzes the
// live topology under the collector's measured cost model (static costs
// until one cycle has been observed) and arms the governor's predictive
// rung while the recomputed bound exceeds the envelope. Never runs on
// the audio path.
func (a *admissionRuntime) monitor(e *Engine) {
	defer close(a.done)
	t := time.NewTicker(a.every)
	defer t.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-t.C:
			a.refresh(e)
		}
	}
}

// refresh recomputes the bound against the live topology and publishes
// the result (state, telemetry gauges, controller load, predictive
// flag). Exported to tests via Engine.RefreshAdmission.
func (a *admissionRuntime) refresh(e *Engine) {
	topo := e.topo.Load()
	costs, source := a.liveCosts(topo)
	rep, err := admission.Analyze(topo.plan, costs, a.strategy, a.threads, source, a.cfg)
	if err != nil {
		return
	}
	over := !rep.Fits()

	prev := a.state.Load()
	st := &AdmissionState{Enabled: true, Report: rep, OverBudget: over}
	if prev != nil {
		st.Verdict, st.Reason, st.PreShed = prev.Verdict, prev.Reason, prev.PreShed
	}
	if e.gov != nil {
		st.PredictiveEscalations = e.gov.predictEscalates.Load()
	}
	a.state.Store(st)

	if e.tel != nil {
		e.tel.SetAdmissionBound(rep.BoundUS, rep.HeadroomUS)
	}
	if a.ctl != nil {
		a.ctl.Update(a.ctlID, rep)
	}
	if over {
		if e.gov != nil {
			// Re-armed every over-budget refresh: one predictive
			// escalation per governor window while the overload lasts.
			e.gov.predicted.Store(true)
		}
		if a.overBudget.CompareAndSwap(false, true) {
			// Rising edge: record the prediction once per excursion.
			if e.flight != nil {
				e.flight.AddEvent(e.cycleN.Load(), "admission-predict",
					fmt.Sprintf("bound %.0f µs > envelope %.0f µs (%s costs)", rep.BoundUS, rep.EnvelopeUS, source))
			}
			if e.tel != nil {
				e.tel.RecordPredictedOverload()
			}
			if e.cfg.Hooks.OnAdmission != nil {
				e.cfg.Hooks.OnAdmission(AdmissionDecision{
					Cycle:      e.cycleN.Load(),
					Verdict:    "predict-overload",
					Reason:     fmt.Sprintf("recomputed bound %.0f µs exceeds envelope %.0f µs (%s costs)", rep.BoundUS, rep.EnvelopeUS, source),
					BoundUS:    rep.BoundUS,
					EnvelopeUS: rep.EnvelopeUS,
					Predicted:  true,
				})
			}
		}
	} else {
		a.overBudget.Store(false)
	}
}

// liveCosts returns the best available per-node cost table for the
// given topology: the collector's measured means (real µs at the
// running scale) overlaid on the static table, or the static table
// alone before the first observed cycle.
func (a *admissionRuntime) liveCosts(t *topology) ([]float64, string) {
	out := admissionStaticCosts(t.plan, a.scale)
	if t.col == nil {
		return out, "static"
	}
	m, ok := t.col.CostModel()
	if !ok {
		return out, "static"
	}
	for i := range out {
		if i < len(m) && m[i] > 0 {
			out[i] = m[i]
		}
	}
	return out, "measured"
}

// checkEdit analyzes a staged plan (the result of an edit) under the
// engine's current degradation rung and returns an error wrapping
// ErrUnschedulableEdit when its bound exceeds the envelope. Costs are
// the measured means of surviving nodes through the remap, static for
// fresh ones. Called with editMu held, never on the audio path.
func (a *admissionRuntime) checkEdit(e *Engine, plan *graph.Plan, remap *graph.Remap) error {
	costs := admissionStaticCosts(plan, a.scale)
	live := e.topo.Load()
	if live.col != nil {
		if m, ok := live.col.CostModel(); ok {
			for i := range costs {
				if remap == nil {
					if i < len(m) && m[i] > 0 {
						costs[i] = m[i]
					}
				} else if i < len(remap.NewToOld) {
					if old := remap.NewToOld[i]; old >= 0 && int(old) < len(m) && m[old] > 0 {
						costs[i] = m[old]
					}
				}
			}
		}
	}
	// Judge the edit at the engine's current rung: a degraded session's
	// meters are already shed, so they cost nothing — but an edit must
	// fit WITHOUT help from deeper rungs it has not earned.
	shedUI, shedFX := false, false
	if e.gov != nil {
		level := e.gov.Level()
		shedUI = level >= GovDegraded1
		shedFX = level >= GovDegraded2
	} else if a.decision != nil {
		shedUI, shedFX = a.decision.ShedUI, a.decision.ShedFX
	}
	rep, err := admission.Analyze(plan, admission.ShedCosts(plan, costs, shedUI, shedFX),
		a.strategy, a.threads, "edit", a.cfg)
	if err != nil {
		return err
	}
	if rep.Fits() {
		return nil
	}
	if e.tel != nil {
		e.tel.RecordRefusedEdit()
	}
	if e.cfg.Hooks.OnAdmission != nil {
		e.cfg.Hooks.OnAdmission(AdmissionDecision{
			Cycle:      e.cycleN.Load(),
			Verdict:    "edit-refused",
			Reason:     fmt.Sprintf("staged plan bound %.0f µs exceeds envelope %.0f µs", rep.BoundUS, rep.EnvelopeUS),
			BoundUS:    rep.BoundUS,
			EnvelopeUS: rep.EnvelopeUS,
		})
	}
	return fmt.Errorf("bound %.0f µs > envelope %.0f µs (%d nodes): %w",
		rep.BoundUS, rep.EnvelopeUS, plan.Len(), ErrUnschedulableEdit)
}

// AdmissionState returns the engine's current admission status (nil
// when the gate is disabled). Safe from any thread.
func (e *Engine) AdmissionState() *AdmissionState {
	if e.adm == nil {
		return nil
	}
	st := e.adm.state.Load()
	if st == nil {
		return nil
	}
	cp := *st
	if e.gov != nil {
		cp.PredictiveEscalations = e.gov.predictEscalates.Load()
	}
	return &cp
}

// RefreshAdmission forces one predictive re-analysis immediately (the
// monitor does this periodically). No-op when the gate is disabled.
// Safe from any thread except the audio path.
func (e *Engine) RefreshAdmission() {
	if e.adm != nil {
		e.adm.refresh(e)
	}
}
