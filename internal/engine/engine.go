// Package engine drives the audio processing cycle (APC). Following the
// paper's decomposition (§VI):
//
//	T(APC) = T(TP) + T(GP) + T(Graph) + T(VC)
//
// where TP is timecode processing (decoding the control-vinyl signal of
// each deck), GP is graph preprocessing (pulling one packet per deck
// through the time stretcher and refreshing per-cycle state), Graph is
// the task-graph execution under the selected scheduling strategy, and VC
// is various calculations (master tempo, accounting). The sound card
// requests one packet every 2.902 ms; TP+GP+VC average ~0.8 ms in the
// paper, leaving T(Graph) ≤ 2.1 ms as the real-time budget.
package engine

import (
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"djstar/internal/audio"
	"djstar/internal/graph"
	"djstar/internal/obs"
	"djstar/internal/rescon"
	"djstar/internal/sched"
	"djstar/internal/stats"
	"djstar/internal/telemetry"
	"djstar/internal/timecode"
)

// Paper-scale component cost targets in µs (§III-B profile: of the APC,
// preprocessing 33 %, graph 38 %, timecode 16 %, remainder ~13 %; with
// the graph at ~0.45 ms that puts the APC near 1.2 ms).
const (
	targetTPUS = 190.0
	targetGPUS = 400.0
	targetVCUS = 150.0
)

// DeadlineMS is the hard APC deadline: one packet period, 2.902 ms.
var DeadlineMS = float64(audio.StandardPacketPeriod) / 1e6

// GraphBudgetMS is the paper's derived budget for graph execution alone.
const GraphBudgetMS = 2.1

// Config configures an engine instance.
type Config struct {
	// Graph configures the task graph and session (see graph.Config).
	Graph graph.Config
	// Strategy is the scheduling strategy name (sched.Name*).
	Strategy string
	// Threads is the worker count for parallel strategies.
	Threads int
	// Pool, when set, attaches this engine's plan as a session on a
	// shared worker pool instead of building a private scheduler —
	// several engines then execute concurrently over the same workers
	// (see sched.Pool and NewMulti). Strategy is ignored when Pool is
	// set. With Strategy == sched.NamePool and no Pool, the engine owns
	// a private single-session pool of Threads-1 workers.
	Pool *sched.Pool
	// FusePlan compiles the execution plan through graph.Fuse: linear
	// same-kind chains collapse into fused units that are claimed once
	// and run back-to-back, cutting per-cycle scheduling overhead. The
	// initial fusion uses the static design-cost table
	// (rescon.PaperCostsUS); call RecompileFused once the collector has
	// measured real node costs to re-fuse online. Off by default — the
	// paper-reproduction experiments run the unfused 67-node graph.
	FusePlan bool
	// Fuse tunes the fusion pass when FusePlan is set (zero = defaults).
	Fuse graph.FuseOptions
	// CollectSamples retains per-cycle timing samples in the metrics
	// (needed for histograms; costs 8 bytes × cycles × 2).
	CollectSamples bool
	// DVS couples deck tempos to the decoded timecode signal, exercising
	// the decode → control path end to end.
	DVS bool
	// DisableGC turns the garbage collector off during timed runs
	// (re-enabled on Close), removing GC pauses from the distribution —
	// see DESIGN.md §6 on busy-wait fidelity in Go.
	DisableGC bool

	// FaultPolicy configures node quarantine (zero fields = sched
	// defaults: quarantine after 3 consecutive faults, probe every 512
	// cycles).
	FaultPolicy sched.FaultPolicy

	// Governor configures the deadline governor (graceful degradation
	// under overload); see GovernorConfig.
	Governor GovernorConfig

	// Admission configures the schedulability gate (refuse / pre-degrade
	// sessions and edits whose analytical bound exceeds the deadline
	// envelope, predict overload from the live cost model); see
	// AdmissionOptions. Off by default.
	Admission AdmissionOptions

	// Watchdog enables the stall watchdog: a monitor goroutine that
	// detects a graph execution stuck past the hard wall and reports the
	// offending node instead of letting the process hang silently.
	Watchdog bool
	// WatchdogWallMS is the stall wall in milliseconds (default
	// 50 × DeadlineMS ≈ 145 ms).
	WatchdogWallMS float64

	// Hooks is the consolidated event surface (faults, governor
	// transitions, stalls, per-cycle timings, sampled traces). The zero
	// value is a no-op.
	Hooks Hooks

	// Obs tunes the always-on observability collector (per-node stats,
	// sampled schedule realizations); see ObsOptions.
	Obs ObsOptions

	// Telemetry tunes the always-on production-telemetry collector
	// (latency histograms, SLO budget, flight recorder); see
	// TelemetryOptions.
	Telemetry TelemetryOptions
}

// TelemetryOptions tune the engine's telemetry collector and flight
// recorder. The zero value keeps both on with the paper's SLO budget
// (5 misses per 10,000 cycles); incident bundles are only written when
// IncidentDir is set.
type TelemetryOptions struct {
	// Disable turns telemetry off entirely — no histograms, no SLO
	// tracking, no flight recorder. Meant for overhead A/B measurement.
	Disable bool
	// SLO sets the deadline-miss budget (zero value = 5 per 10k).
	SLO telemetry.SLOConfig
	// IncidentDir, when set, enables incident-bundle dumps: on a budget
	// blow-out, quarantine or stall, the flight recorder writes a
	// self-contained JSON bundle there (replay with djanalyze -incident).
	IncidentDir string
	// FlightTraces / FlightEvents size the recorder's retention rings
	// (defaults 16 / 64).
	FlightTraces int
	FlightEvents int
	// Session labels this engine's metric series under a shared worker
	// pool (NewMulti stamps it automatically; default "0"). Fleet-scoped
	// session IDs stay stable across shard migration.
	Session string
	// Shard labels the metric series with the shard currently hosting
	// the session (fleet mode; empty = label omitted). Migration updates
	// it via Collector.SetShard.
	Shard string
	// OnIncident, when set, is notified after an incident bundle is
	// written (called on the dump goroutine, never the audio path).
	OnIncident func(path string, inc *telemetry.Incident)
}

// ObsOptions tune the engine's observability collector. The zero value
// keeps it on at the default sampling rate.
type ObsOptions struct {
	// Disable turns the collector off entirely — no per-node stats, no
	// traces, no critical path in Snapshot. Meant for overhead A/B
	// measurement, not production use.
	Disable bool
	// TraceEvery samples every Kth cycle's schedule realization
	// (default obs.DefaultTraceEvery = 32; negative disables traces
	// while keeping node stats).
	TraceEvery int
	// TraceRing is the number of retained realizations (default 8).
	TraceRing int
}

// topology is one epoch of the engine's graph world: the editable graph,
// its compiled base plan (the node-ID space of every public API at that
// epoch), the execution plan the scheduler actually runs (the base plan
// itself or its fused compilation), and the observability collector
// sized for it. The bundle is immutable once published; the engine
// replaces the whole bundle atomically at a cycle boundary when an edit
// is adopted, so any thread that Loads it gets a mutually consistent
// (plan, collector) pair.
type topology struct {
	g        *graph.Graph
	plan     *graph.Plan
	execPlan *graph.Plan
	col      *obs.Collector // nil when cfg.Obs.Disable
}

// Engine owns a session, a compiled plan, a scheduler and the timecode
// front end.
type Engine struct {
	cfg     Config
	session *graph.Session
	// topo is the live topology bundle (see topology). Cross-thread
	// readers (Snapshot, Health, incident dumps, the watchdog) Load it;
	// only the cycle thread Stores it, at edit adoption.
	topo atomic.Pointer[topology]
	// sref holds the active scheduler. It is atomic because Rebind (a
	// cross-pool session migration, executed between cycles) replaces the
	// scheduler while Snapshot/Health readers on other threads look at
	// it. Everywhere else it behaves like a plain field: stored at
	// construction, read via sch().
	sref atomic.Pointer[schedRef]
	// editMu serializes edit staging (ApplyEdits / ApplyPatch /
	// RecompileFused); staged holds the topology bundle waiting for the
	// next cycle boundary to adopt it (see edit.go).
	editMu sync.Mutex
	staged atomic.Pointer[stagedTopo]
	// lastEdit is the most recent edit outcome (nil until one is staged).
	lastEdit atomic.Pointer[EditOutcome]
	// planEpoch counts adopted plan swaps (0 = construction plan).
	planEpoch atomic.Uint64
	// obsWorkers is the collector shard count, kept so structural edits
	// can rebuild the collector for the new plan with the same sharding.
	obsWorkers int
	// ownedPool is the private pool behind Strategy == sched.NamePool
	// (nil when a shared Pool was supplied or another strategy is used).
	ownedPool *sched.Pool

	seq     *timecode.Sequence
	tcGen   []*timecode.Generator
	tcDec   []*timecode.Decoder
	tcL     []audio.Buffer
	tcR     []audio.Buffer
	tcSpeed []float64

	tpLoad graph.Load
	gpLoad graph.Load
	vcLoad graph.Load

	// lf is the shared runtime load factor on every node and component
	// load; the effective value is userFactor × the governor's factor.
	lf         *graph.LoadFactor
	userFactor atomic.Uint64 // float64 bits
	govFactor  atomic.Uint64 // float64 bits

	gov *governor
	wd  *watchdog
	// adm is the admission gate's runtime (nil when disabled): the
	// construction decision, the controller registration and the
	// predictive monitor.
	adm *admissionRuntime

	// tel is the telemetry collector and flight its incident recorder
	// (both nil when cfg.Telemetry.Disable).
	tel    *telemetry.Collector
	flight *telemetry.Recorder
	// lastTraceSeq is the collector trace sequence already delivered to
	// Hooks.OnTrace; traceScratch is the reused copy handed to the hook.
	lastTraceSeq uint64
	traceScratch obs.CycleTrace

	// live aggregates the engine's own always-on cycle accounting,
	// independent of any user-supplied Metrics sink (see Snapshot).
	live liveStats

	// cycleN counts Cycle calls (the watchdog's cycle coordinate).
	// Atomic so edit staging on other threads can stamp outcomes with it.
	cycleN atomic.Uint64

	masterTempo float64
	prevGC      int
	closed      atomic.Bool
}

// schedRef wraps the Scheduler interface for atomic.Pointer (interfaces
// with varying concrete types cannot go into atomic.Pointer directly).
type schedRef struct{ s sched.Scheduler }

// sch returns the active scheduler.
func (e *Engine) sch() sched.Scheduler { return e.sref.Load().s }

// sharedSequence is built once per process; it is deterministic and
// read-only after construction.
var sharedSequence = timecode.NewSequence()

// New builds an engine. The graph config's Scale/Calibration also govern
// the TP/GP/VC top-up loads.
func New(cfg Config) (*Engine, error) {
	if cfg.Strategy == "" {
		cfg.Strategy = sched.NameBusyWait
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 4
	}
	// The engine owns the runtime load factor: the governor's critical
	// mode and user overload control (SetLoadFactor) compose through it.
	lf := cfg.Graph.LoadFactor
	if lf == nil {
		lf = graph.NewLoadFactor()
		cfg.Graph.LoadFactor = lf
	}
	session, g, err := graph.BuildDJStar(cfg.Graph)
	if err != nil {
		return nil, err
	}
	plan, err := g.Compile()
	if err != nil {
		return nil, err
	}
	execPlan := plan
	if cfg.FusePlan {
		// Initial fusion from the static design-cost table; once the
		// collector has real measurements, RecompileFused re-fuses from
		// them without stopping the audio.
		execPlan, err = graph.Fuse(plan, rescon.PaperCostsUS(plan), cfg.Fuse)
		if err != nil {
			return nil, err
		}
	}
	threads := cfg.Threads
	if cfg.Strategy == sched.NameSequential {
		threads = 1
	}
	// The collector is the scheduler's construction-time observer, so it
	// must exist first; its shard count is the session's parallelism.
	obsWorkers := threads
	if cfg.Pool != nil {
		obsWorkers = cfg.Pool.Workers() + 1
	}
	var collector *obs.Collector
	var observer sched.Observer
	if !cfg.Obs.Disable {
		collector = obs.NewCollector(plan, obs.Config{
			Workers:    obsWorkers,
			TraceEvery: cfg.Obs.TraceEvery,
			TraceRing:  cfg.Obs.TraceRing,
		})
		observer = collector
	}
	// Admission front door: hold the session's analytical schedulability
	// bound (static design costs — nothing has run yet) against the
	// deadline envelope BEFORE any scheduler resources are committed.
	// Refusals return here wrapping admission.ErrOverBudget; an
	// admit-degraded verdict is applied after the governor exists. The
	// analysis runs on the unfused base plan: fusion preserves total
	// work and only removes per-node dispatches, so the base-plan bound
	// is conservative for the fused execution too.
	var adm *admissionRuntime
	if cfg.Admission.Enabled {
		adm, err = newAdmissionRuntime(&cfg, plan, threads)
		if err != nil {
			return nil, err
		}
	}

	opts := sched.Options{Threads: threads, Observer: observer}
	var (
		scheduler sched.Scheduler
		ownedPool *sched.Pool
		err2      error
	)
	switch {
	case cfg.Pool != nil:
		// Shared-pool mode: this engine is one session among many.
		scheduler, err2 = cfg.Pool.Attach(execPlan, opts)
	case cfg.Strategy == sched.NamePool:
		// Private single-session pool: Threads-1 helper workers plus the
		// cycle caller, matching the parallelism of the other strategies.
		ownedPool, err2 = sched.NewPool(threads-1, 1)
		if err2 == nil {
			scheduler, err2 = ownedPool.Attach(execPlan, opts)
		}
	default:
		scheduler, err2 = sched.New(cfg.Strategy, execPlan, opts)
	}
	if err2 != nil {
		if ownedPool != nil {
			ownedPool.Close()
		}
		if adm != nil {
			adm.close()
		}
		return nil, err2
	}

	e := &Engine{
		cfg:         cfg,
		session:     session,
		ownedPool:   ownedPool,
		obsWorkers:  obsWorkers,
		seq:         sharedSequence,
		lf:          lf,
		masterTempo: 1,
	}
	e.sref.Store(&schedRef{scheduler})
	e.topo.Store(&topology{g: g, plan: plan, execPlan: execPlan, col: collector})
	e.userFactor.Store(math.Float64bits(1))
	e.govFactor.Store(math.Float64bits(1))

	if !cfg.Telemetry.Disable {
		e.tel = telemetry.NewCollector(telemetry.Config{
			Strategy: scheduler.Name(),
			Session:  cfg.Telemetry.Session,
			Shard:    cfg.Telemetry.Shard,
			SLO:      cfg.Telemetry.SLO,
		})
		e.flight = telemetry.NewRecorder(e.tel, telemetry.RecorderConfig{
			Nodes:  plan.Len(),
			Dir:    cfg.Telemetry.IncidentDir,
			Traces: cfg.Telemetry.FlightTraces,
			Events: cfg.Telemetry.FlightEvents,
			OnDump: cfg.Telemetry.OnIncident,
		})
		e.flight.SetBundleFiller(e.fillIncident)
	}

	scheduler.SetFaultPolicy(cfg.FaultPolicy)
	if e.tel != nil || cfg.Hooks.OnFault != nil {
		scheduler.SetFaultHandler(e.onFault)
	}
	if cfg.Governor.Enabled {
		e.gov = newGovernor(cfg.Governor, scheduler, plan, func(f float64) {
			e.govFactor.Store(math.Float64bits(f))
			e.applyLoadFactor()
		})
		e.gov.onChange = e.onGovChange
	}
	if cfg.Watchdog {
		wallMS := cfg.WatchdogWallMS
		if wallMS <= 0 {
			wallMS = 50 * DeadlineMS
		}
		e.wd = newWatchdog(scheduler, plan,
			time.Duration(wallMS*float64(time.Millisecond)), e.onStall)
	}
	if adm != nil {
		// Apply the admit-degraded pre-shed (through the governor when
		// present), publish the initial state and start the predictive
		// monitor. After the governor so forced levels stay consistent.
		e.adm = adm
		adm.install(e)
	}

	// Timecode front end: one virtual turntable per deck, spinning at the
	// deck's nominal tempo.
	speeds := []float64{1.0, 0.97, 1.03, 0.99}
	for d := 0; d < cfg.Graph.Decks; d++ {
		gen := timecode.NewGenerator(e.seq, cfg.Graph.Rate)
		gen.SetSpeed(speeds[d%len(speeds)])
		gen.Seek(float64(1000 * (d + 1)))
		e.tcGen = append(e.tcGen, gen)
		e.tcDec = append(e.tcDec, timecode.NewDecoder(e.seq, cfg.Graph.Rate))
		e.tcL = append(e.tcL, audio.NewBuffer(audio.PacketSize))
		e.tcR = append(e.tcR, audio.NewBuffer(audio.PacketSize))
		e.tcSpeed = append(e.tcSpeed, speeds[d%len(speeds)])
	}

	e.tpLoad = graph.NewLoad(graph.Cost{BaseUS: targetTPUS}, cfg.Graph.Calibration, cfg.Graph.Scale).WithFactor(lf)
	e.gpLoad = graph.NewLoad(graph.Cost{BaseUS: targetGPUS}, cfg.Graph.Calibration, cfg.Graph.Scale).WithFactor(lf)
	e.vcLoad = graph.NewLoad(graph.Cost{BaseUS: targetVCUS}, cfg.Graph.Calibration, cfg.Graph.Scale).WithFactor(lf)

	if cfg.DisableGC {
		runtime.GC()
		e.prevGC = debug.SetGCPercent(-1)
	}
	return e, nil
}

// applyLoadFactor recomputes the effective load factor from the user and
// governor components.
func (e *Engine) applyLoadFactor() {
	user := math.Float64frombits(e.userFactor.Load())
	gov := math.Float64frombits(e.govFactor.Load())
	e.lf.Set(user * gov)
}

// SetLoadFactor scales every node and component cost target at run time
// (1.0 = nominal). Overload experiments inflate it to simulate a machine
// suddenly too slow for the graph; the governor's critical mode composes
// with it multiplicatively. Safe to call from any thread.
func (e *Engine) SetLoadFactor(f float64) {
	if f < 0 {
		f = 0
	}
	e.userFactor.Store(math.Float64bits(f))
	e.applyLoadFactor()
}

// LoadFactor returns the effective (user × governor) load factor.
func (e *Engine) LoadFactor() float64 { return e.lf.Get() }

// GovLevel returns the governor's current degradation level (GovNormal
// when the governor is disabled).
func (e *Engine) GovLevel() GovLevel {
	if e.gov == nil {
		return GovNormal
	}
	return e.gov.Level()
}

// Health is a point-in-time snapshot of the engine's fault-tolerance and
// degradation state.
type Health struct {
	// Level is the governor's degradation level.
	Level GovLevel
	// LoadFactor is the effective (user × governor) load factor.
	LoadFactor float64
	// WindowMissRate and WindowGraphP99MS are the governor's last
	// completed evaluation window (0 when disabled).
	WindowMissRate   float64
	WindowGraphP99MS float64
	// Faults are the scheduler's cumulative fault counters.
	Faults sched.FaultStats
	// Quarantined lists the currently quarantined node names.
	Quarantined []string
	// Stalls is the watchdog's cumulative stall count; LastStall is the
	// most recent record (nil if none, or watchdog disabled).
	Stalls    int64
	LastStall *StallRecord
}

// Health assembles a health snapshot. It allocates (the quarantine list)
// and is meant for UI/telemetry rates, not the audio hot path.
func (e *Engine) Health() Health {
	h := Health{
		Level:      e.GovLevel(),
		LoadFactor: e.lf.Get(),
		Faults:     e.sch().Faults(),
	}
	if e.gov != nil {
		h.WindowMissRate = math.Float64frombits(e.gov.lastRate.Load())
		h.WindowGraphP99MS = math.Float64frombits(e.gov.lastP99.Load())
	}
	t := e.topo.Load()
	for i := range t.plan.Names {
		if e.sch().Quarantined(int32(i)) {
			h.Quarantined = append(h.Quarantined, t.plan.Names[i])
		}
	}
	if e.wd != nil {
		h.Stalls = e.wd.Stalls()
		h.LastStall = e.wd.Last()
	}
	return h
}

// Session exposes the audio session (decks, mixer, FX) for live control.
func (e *Engine) Session() *graph.Session { return e.session }

// SessionID returns the engine's session label — the OpenMetrics
// "session" label and the /v1 resource ID. Containers (NewMulti, fleet)
// stamp it at construction; a standalone engine defaults to "0".
func (e *Engine) SessionID() string {
	if e.cfg.Telemetry.Session != "" {
		return e.cfg.Telemetry.Session
	}
	return "0"
}

// Cycles returns the engine's cycle count (any thread).
func (e *Engine) Cycles() uint64 { return e.cycleN.Load() }

// SessionBaseUS is the analytical per-cycle cost of the non-graph APC
// components (TP+GP+VC) at the given graph scale — the BaseUS term of
// admission envelopes.
func SessionBaseUS(scale float64) float64 {
	return (targetTPUS + targetGPUS + targetVCUS) * scale
}

// Rebind migrates a pool-attached engine onto another shared pool — the
// shard-drain primitive. The session's plan, node state (decks, delay
// lines, FX), observer, fault/quarantine/shed state and cycle count all
// carry over; only the executor changes, via sched.Pool.AttachMigrated,
// so no cycle is lost or doubled. Any staged-but-unadopted topology edit
// survives and adopts at the next cycle on the new pool.
//
// The caller must guarantee no Cycle is in flight (fleet drivers call it
// strictly between cycles). The destination pool must not expose more
// parallelism than the source (workers+1 ≤ the collector's shard count);
// fleet shards are sized symmetrically so this holds by construction.
func (e *Engine) Rebind(dst *sched.Pool) error {
	if e.closed.Load() {
		return fmt.Errorf("engine: Rebind after Close")
	}
	if dst == nil {
		return fmt.Errorf("engine: Rebind needs a pool")
	}
	ps, ok := e.sch().(*sched.PoolSession)
	if !ok {
		return fmt.Errorf("engine: Rebind needs a pool-attached session (strategy %q)", e.sch().Name())
	}
	if dst.Workers()+1 > e.obsWorkers {
		return fmt.Errorf("engine: Rebind target exposes %d workers, observer is sized for %d",
			dst.Workers()+1, e.obsWorkers)
	}
	ns, err := dst.AttachMigrated(ps, sched.Options{})
	if err != nil {
		return err
	}
	e.sref.Store(&schedRef{ns})
	e.cfg.Pool = dst
	t := e.topo.Load()
	if e.gov != nil {
		e.gov.retarget(ns, t.plan)
	}
	if e.wd != nil {
		e.wd.retarget(ns, t.plan)
	}
	return nil
}

// Plan exposes the compiled task graph of the current epoch.
func (e *Engine) Plan() *graph.Plan { return e.topo.Load().plan }

// Graph exposes the live (editable) task graph of the current epoch —
// the base for building EditSets against current node IDs. A staged or
// concurrently adopted edit may obsolete IDs read from it; ApplyEdits
// validates every reference and fails cleanly on stale ones.
func (e *Engine) Graph() *graph.Graph { return e.topo.Load().g }

// Scheduler exposes the active scheduler.
func (e *Engine) Scheduler() sched.Scheduler { return e.sch() }

// Collector exposes the observability collector of the current epoch
// (nil when disabled via ObsOptions.Disable). Structural edits replace
// it — long-lived readers should re-fetch rather than cache it.
func (e *Engine) Collector() *obs.Collector { return e.topo.Load().col }

// ExecPlan exposes the plan the scheduler is actually running: Plan()
// itself, or its fused compilation. The execution plan changes at cycle
// boundaries when an edit or recompilation is adopted.
func (e *Engine) ExecPlan() *graph.Plan { return e.topo.Load().execPlan }

// PlanEpoch counts topology swaps adopted so far (0 = the
// construction-time plan is still live). Safe from any thread.
func (e *Engine) PlanEpoch() uint64 { return e.planEpoch.Load() }

// Close releases the scheduler workers and restores the GC setting.
// Close is idempotent and safe to call while an edit is staged: a
// staged topology holds no running resources, so it is simply dropped.
func (e *Engine) Close() {
	if !e.closed.CompareAndSwap(false, true) {
		return
	}
	if e.adm != nil {
		e.adm.close()
	}
	if e.wd != nil {
		e.wd.close()
	}
	if e.flight != nil {
		e.flight.Flush()
	}
	e.staged.Store(nil)
	e.sch().Close()
	if e.ownedPool != nil {
		e.ownedPool.Close()
	}
	if e.cfg.DisableGC {
		debug.SetGCPercent(e.prevGC)
	}
}

// Metrics aggregates the timing results of a run.
type Metrics struct {
	Strategy string
	Threads  int
	Cycles   int
	// SessionID is the owning engine's stable session label (stamped by
	// StampMetrics) — RunCyclesConcurrent results stay attributable even
	// after sessions migrate between shards.
	SessionID string

	// Per-component timing summaries in milliseconds.
	TP, GP, Graph, VC, APC *stats.Summary

	// Deadline tracks APC times against the 2.9 ms packet period.
	Deadline *stats.DeadlineTracker
	// GraphDeadline tracks graph times against the 2.1 ms budget.
	GraphDeadline *stats.DeadlineTracker

	// GraphSamplesMS and APCSamplesMS hold per-cycle times when sample
	// collection is enabled (for histograms and percentiles).
	GraphSamplesMS []float64
	APCSamplesMS   []float64

	// Fault-tolerance outcome of the run, stamped when RunCycles /
	// RunRealtime return: the scheduler's cumulative fault counters, the
	// watchdog's stall count, and the governor's final level.
	Faults     sched.FaultStats
	Stalls     int64
	FinalLevel GovLevel
}

func newMetrics(strategy string, threads int) *Metrics {
	return &Metrics{
		Strategy:      strategy,
		Threads:       threads,
		TP:            stats.NewSummary(),
		GP:            stats.NewSummary(),
		Graph:         stats.NewSummary(),
		VC:            stats.NewSummary(),
		APC:           stats.NewSummary(),
		Deadline:      stats.NewDeadlineTracker(DeadlineMS),
		GraphDeadline: stats.NewDeadlineTracker(GraphBudgetMS),
	}
}

// String summarizes the run.
func (m *Metrics) String() string {
	return fmt.Sprintf("%s/%d: %d cycles, graph mean %.4f ms (max %.4f), APC mean %.4f ms, misses %d/%d",
		m.Strategy, m.Threads, m.Cycles, m.Graph.Mean(), m.Graph.Max(),
		m.APC.Mean(), m.Deadline.Missed(), m.Deadline.Total())
}

// RunCycles executes n audio processing cycles back to back (as fast as
// the machine allows) and returns the timing metrics. This is the
// evaluation mode: the paper's numbers are execution times per cycle, not
// wall-clock pacing.
func (e *Engine) RunCycles(n int) *Metrics {
	m := newMetrics(e.sch().Name(), e.sch().Threads())
	if e.cfg.CollectSamples {
		m.GraphSamplesMS = make([]float64, 0, n)
		m.APCSamplesMS = make([]float64, 0, n)
	}
	for i := 0; i < n; i++ {
		e.Cycle(m)
	}
	e.StampMetrics(m)
	return m
}

// NewMetrics returns an empty metrics sink for manual Cycle loops (the
// chaos/governor drivers observe per-cycle state between cycles); call
// StampMetrics when the loop finishes.
func (e *Engine) NewMetrics() *Metrics { return newMetrics(e.sch().Name(), e.sch().Threads()) }

// StampMetrics records the run's fault-tolerance outcome (fault counters,
// stall count, final governor level) into m. RunCycles and RunRealtime
// call it automatically.
func (e *Engine) StampMetrics(m *Metrics) {
	m.SessionID = e.SessionID()
	m.Faults = e.sch().Faults()
	if e.wd != nil {
		m.Stalls = e.wd.Stalls()
	}
	m.FinalLevel = e.GovLevel()
}

// Cycle executes one APC, accumulating into m (which may be nil).
func (e *Engine) Cycle(m *Metrics) {
	// Adopt a staged topology edit first, so the whole cycle runs on one
	// plan. The Load on the nil fast path is one uncontended atomic read.
	if e.staged.Load() != nil {
		e.adoptStaged()
	}
	topo := e.topo.Load()
	t0 := time.Now()

	// TP: timecode processing. Generate each turntable's control packet
	// (the hardware substitution) and decode it; when DVS control is on,
	// the decoded speed drives the deck tempo.
	e.timecodeStage()
	t1 := time.Now()

	// GP: graph preprocessing — deck packets through the time stretcher,
	// activity flags, sampler state.
	gpStart := graph.NowNanos()
	e.session.Prepare()
	e.gpLoad.RunSince(gpStart, false)
	t2 := time.Now()

	// Graph: the task graph under the configured scheduling strategy,
	// under the stall watchdog when enabled.
	cyc := e.cycleN.Add(1)
	if e.wd != nil {
		e.wd.arm(cyc)
	}
	e.sch().Execute()
	if e.wd != nil {
		e.wd.disarm()
	}
	t3 := time.Now()

	// VC: various calculations (master tempo smoothing, accounting).
	e.variousCalculations()
	t4 := time.Now()

	if e.gov != nil {
		e.gov.observe(t4.Sub(t0).Seconds()*1e3, t3.Sub(t2).Seconds()*1e3)
	}
	tp := t1.Sub(t0).Seconds() * 1e3
	gp := t2.Sub(t1).Seconds() * 1e3
	gr := t3.Sub(t2).Seconds() * 1e3
	vc := t4.Sub(t3).Seconds() * 1e3
	apc := t4.Sub(t0).Seconds() * 1e3
	missed := apc > DeadlineMS
	e.live.add(tp, gp, gr, vc, apc, missed)
	if e.tel != nil {
		if e.tel.RecordCycle(t4.Unix(), t4.Sub(t0).Nanoseconds(), t3.Sub(t2).Nanoseconds(),
			missed, int32(e.GovLevel())) {
			e.flight.Trigger(cyc, telemetry.TriggerBudget)
		}
	}
	if e.cfg.Hooks.OnCycle != nil {
		e.cfg.Hooks.OnCycle(CycleInfo{
			Cycle: cyc,
			TPMS:  tp, GPMS: gp, GraphMS: gr, VCMS: vc, APCMS: apc,
			DeadlineMiss: missed,
		})
	}
	if topo.col != nil && (e.flight != nil || e.cfg.Hooks.OnTrace != nil) {
		if seq := topo.col.TraceSeq(); seq != e.lastTraceSeq {
			e.lastTraceSeq = seq
			if topo.col.LatestTrace(&e.traceScratch) {
				if e.flight != nil {
					e.flight.AddTrace(&e.traceScratch)
				}
				if e.cfg.Hooks.OnTrace != nil {
					e.cfg.Hooks.OnTrace(&e.traceScratch)
				}
			}
		}
	}
	if m == nil {
		return
	}
	m.Cycles++
	m.TP.Add(tp)
	m.GP.Add(gp)
	m.Graph.Add(gr)
	m.VC.Add(vc)
	m.APC.Add(apc)
	m.Deadline.Add(apc)
	m.GraphDeadline.Add(gr)
	if e.cfg.CollectSamples {
		m.GraphSamplesMS = append(m.GraphSamplesMS, gr)
		m.APCSamplesMS = append(m.APCSamplesMS, apc)
	}
}

// timecodeStage runs the TP component for all decks.
func (e *Engine) timecodeStage() {
	start := graph.NowNanos()
	for d := range e.tcGen {
		e.tcGen[d].Generate(e.tcL[d], e.tcR[d])
		e.tcDec[d].Decode(e.tcL[d], e.tcR[d])
		if e.cfg.DVS && e.tcDec[d].Locked() {
			if sp := e.tcDec[d].Speed(); sp > 0 {
				e.session.Decks[d].SetTempo(sp)
			}
		}
	}
	e.tpLoad.RunSince(start, false)
}

// variousCalculations runs the VC component.
func (e *Engine) variousCalculations() {
	start := graph.NowNanos()
	// Master tempo: smoothed average of the playing decks.
	sum, cnt := 0.0, 0
	for _, d := range e.session.Decks {
		if d.Playing() {
			sum += d.Tempo()
			cnt++
		}
	}
	if cnt > 0 {
		e.masterTempo += 0.05 * (sum/float64(cnt) - e.masterTempo)
	}
	e.vcLoad.RunSince(start, false)
}

// MasterTempo returns the smoothed master tempo.
func (e *Engine) MasterTempo() float64 { return e.masterTempo }

// TimecodeLocked reports whether deck d's decoder has a position fix.
func (e *Engine) TimecodeLocked(d int) bool { return e.tcDec[d].Locked() }

// SetTurntableSpeed changes virtual turntable d's speed (scratching).
func (e *Engine) SetTurntableSpeed(d int, speed float64) {
	if d >= 0 && d < len(e.tcGen) {
		e.tcGen[d].SetSpeed(speed)
	}
}

// RealtimeReport is the outcome of a paced RunRealtime session.
type RealtimeReport struct {
	Metrics *Metrics
	// Late counts packets whose computation finished after the sound
	// card's request time — the glitches a listener would hear.
	Late int
	// MaxLatenessMS is the worst overrun.
	MaxLatenessMS float64
}

// RunRealtime paces cycles against the simulated sound card clock: cycle
// i must complete by (i+1) packet periods after start. It runs for the
// given number of cycles and reports deadline behaviour under real
// pacing. The pacing loop spins (like the audio callback thread of a
// low-latency audio stack) rather than sleeping.
func (e *Engine) RunRealtime(n int) *RealtimeReport {
	m := newMetrics(e.sch().Name(), e.sch().Threads())
	if e.cfg.CollectSamples {
		m.GraphSamplesMS = make([]float64, 0, n)
		m.APCSamplesMS = make([]float64, 0, n)
	}
	rep := &RealtimeReport{Metrics: m}
	period := audio.StandardPacketPeriod
	start := time.Now()
	for i := 0; i < n; i++ {
		due := start.Add(time.Duration(i+1) * period)
		e.Cycle(m)
		now := time.Now()
		if now.After(due) {
			rep.Late++
			if late := now.Sub(due).Seconds() * 1e3; late > rep.MaxLatenessMS {
				rep.MaxLatenessMS = late
			}
		} else {
			// Wait for the next packet request (spin, as an audio callback
			// would effectively do between interrupts).
			for time.Now().Before(due) {
				runtime.Gosched()
			}
		}
	}
	e.StampMetrics(m)
	return rep
}
