// Package engine drives the audio processing cycle (APC). Following the
// paper's decomposition (§VI):
//
//	T(APC) = T(TP) + T(GP) + T(Graph) + T(VC)
//
// where TP is timecode processing (decoding the control-vinyl signal of
// each deck), GP is graph preprocessing (pulling one packet per deck
// through the time stretcher and refreshing per-cycle state), Graph is
// the task-graph execution under the selected scheduling strategy, and VC
// is various calculations (master tempo, accounting). The sound card
// requests one packet every 2.902 ms; TP+GP+VC average ~0.8 ms in the
// paper, leaving T(Graph) ≤ 2.1 ms as the real-time budget.
package engine

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"djstar/internal/audio"
	"djstar/internal/graph"
	"djstar/internal/sched"
	"djstar/internal/stats"
	"djstar/internal/timecode"
)

// Paper-scale component cost targets in µs (§III-B profile: of the APC,
// preprocessing 33 %, graph 38 %, timecode 16 %, remainder ~13 %; with
// the graph at ~0.45 ms that puts the APC near 1.2 ms).
const (
	targetTPUS = 190.0
	targetGPUS = 400.0
	targetVCUS = 150.0
)

// DeadlineMS is the hard APC deadline: one packet period, 2.902 ms.
var DeadlineMS = float64(audio.StandardPacketPeriod) / 1e6

// GraphBudgetMS is the paper's derived budget for graph execution alone.
const GraphBudgetMS = 2.1

// Config configures an engine instance.
type Config struct {
	// Graph configures the task graph and session (see graph.Config).
	Graph graph.Config
	// Strategy is the scheduling strategy name (sched.Name*).
	Strategy string
	// Threads is the worker count for parallel strategies.
	Threads int
	// Pool, when set, attaches this engine's plan as a session on a
	// shared worker pool instead of building a private scheduler —
	// several engines then execute concurrently over the same workers
	// (see sched.Pool and NewMulti). Strategy is ignored when Pool is
	// set. With Strategy == sched.NamePool and no Pool, the engine owns
	// a private single-session pool of Threads-1 workers.
	Pool *sched.Pool
	// CollectSamples retains per-cycle timing samples in the metrics
	// (needed for histograms; costs 8 bytes × cycles × 2).
	CollectSamples bool
	// DVS couples deck tempos to the decoded timecode signal, exercising
	// the decode → control path end to end.
	DVS bool
	// DisableGC turns the garbage collector off during timed runs
	// (re-enabled on Close), removing GC pauses from the distribution —
	// see DESIGN.md §6 on busy-wait fidelity in Go.
	DisableGC bool
}

// Engine owns a session, a compiled plan, a scheduler and the timecode
// front end.
type Engine struct {
	cfg     Config
	session *graph.Session
	plan    *graph.Plan
	sched   sched.Scheduler
	// ownedPool is the private pool behind Strategy == sched.NamePool
	// (nil when a shared Pool was supplied or another strategy is used).
	ownedPool *sched.Pool

	seq     *timecode.Sequence
	tcGen   []*timecode.Generator
	tcDec   []*timecode.Decoder
	tcL     []audio.Buffer
	tcR     []audio.Buffer
	tcSpeed []float64

	tpLoad graph.Load
	gpLoad graph.Load
	vcLoad graph.Load

	masterTempo float64
	prevGC      int
	closed      bool
}

// sharedSequence is built once per process; it is deterministic and
// read-only after construction.
var sharedSequence = timecode.NewSequence()

// New builds an engine. The graph config's Scale/Calibration also govern
// the TP/GP/VC top-up loads.
func New(cfg Config) (*Engine, error) {
	if cfg.Strategy == "" {
		cfg.Strategy = sched.NameBusyWait
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 4
	}
	session, g, err := graph.BuildDJStar(cfg.Graph)
	if err != nil {
		return nil, err
	}
	plan, err := g.Compile()
	if err != nil {
		return nil, err
	}
	threads := cfg.Threads
	if cfg.Strategy == sched.NameSequential {
		threads = 1
	}
	var (
		scheduler sched.Scheduler
		ownedPool *sched.Pool
		err2      error
	)
	switch {
	case cfg.Pool != nil:
		// Shared-pool mode: this engine is one session among many.
		scheduler, err2 = cfg.Pool.Attach(plan)
	case cfg.Strategy == sched.NamePool:
		// Private single-session pool: Threads-1 helper workers plus the
		// cycle caller, matching the parallelism of the other strategies.
		ownedPool, err2 = sched.NewPool(threads-1, 1)
		if err2 == nil {
			scheduler, err2 = ownedPool.Attach(plan)
		}
	default:
		scheduler, err2 = sched.New(cfg.Strategy, plan, threads)
	}
	if err2 != nil {
		if ownedPool != nil {
			ownedPool.Close()
		}
		return nil, err2
	}

	e := &Engine{
		cfg:         cfg,
		session:     session,
		plan:        plan,
		sched:       scheduler,
		ownedPool:   ownedPool,
		seq:         sharedSequence,
		masterTempo: 1,
	}

	// Timecode front end: one virtual turntable per deck, spinning at the
	// deck's nominal tempo.
	speeds := []float64{1.0, 0.97, 1.03, 0.99}
	for d := 0; d < cfg.Graph.Decks; d++ {
		gen := timecode.NewGenerator(e.seq, cfg.Graph.Rate)
		gen.SetSpeed(speeds[d%len(speeds)])
		gen.Seek(float64(1000 * (d + 1)))
		e.tcGen = append(e.tcGen, gen)
		e.tcDec = append(e.tcDec, timecode.NewDecoder(e.seq, cfg.Graph.Rate))
		e.tcL = append(e.tcL, audio.NewBuffer(audio.PacketSize))
		e.tcR = append(e.tcR, audio.NewBuffer(audio.PacketSize))
		e.tcSpeed = append(e.tcSpeed, speeds[d%len(speeds)])
	}

	e.tpLoad = graph.NewLoad(graph.Cost{BaseUS: targetTPUS}, cfg.Graph.Calibration, cfg.Graph.Scale)
	e.gpLoad = graph.NewLoad(graph.Cost{BaseUS: targetGPUS}, cfg.Graph.Calibration, cfg.Graph.Scale)
	e.vcLoad = graph.NewLoad(graph.Cost{BaseUS: targetVCUS}, cfg.Graph.Calibration, cfg.Graph.Scale)

	if cfg.DisableGC {
		runtime.GC()
		e.prevGC = debug.SetGCPercent(-1)
	}
	return e, nil
}

// Session exposes the audio session (decks, mixer, FX) for live control.
func (e *Engine) Session() *graph.Session { return e.session }

// Plan exposes the compiled task graph.
func (e *Engine) Plan() *graph.Plan { return e.plan }

// Scheduler exposes the active scheduler (e.g. to install a tracer).
func (e *Engine) Scheduler() sched.Scheduler { return e.sched }

// Close releases the scheduler workers and restores the GC setting.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	e.sched.Close()
	if e.ownedPool != nil {
		e.ownedPool.Close()
	}
	if e.cfg.DisableGC {
		debug.SetGCPercent(e.prevGC)
	}
}

// Metrics aggregates the timing results of a run.
type Metrics struct {
	Strategy string
	Threads  int
	Cycles   int

	// Per-component timing summaries in milliseconds.
	TP, GP, Graph, VC, APC *stats.Summary

	// Deadline tracks APC times against the 2.9 ms packet period.
	Deadline *stats.DeadlineTracker
	// GraphDeadline tracks graph times against the 2.1 ms budget.
	GraphDeadline *stats.DeadlineTracker

	// GraphSamplesMS and APCSamplesMS hold per-cycle times when sample
	// collection is enabled (for histograms and percentiles).
	GraphSamplesMS []float64
	APCSamplesMS   []float64
}

func newMetrics(strategy string, threads int) *Metrics {
	return &Metrics{
		Strategy:      strategy,
		Threads:       threads,
		TP:            stats.NewSummary(),
		GP:            stats.NewSummary(),
		Graph:         stats.NewSummary(),
		VC:            stats.NewSummary(),
		APC:           stats.NewSummary(),
		Deadline:      stats.NewDeadlineTracker(DeadlineMS),
		GraphDeadline: stats.NewDeadlineTracker(GraphBudgetMS),
	}
}

// String summarizes the run.
func (m *Metrics) String() string {
	return fmt.Sprintf("%s/%d: %d cycles, graph mean %.4f ms (max %.4f), APC mean %.4f ms, misses %d/%d",
		m.Strategy, m.Threads, m.Cycles, m.Graph.Mean(), m.Graph.Max(),
		m.APC.Mean(), m.Deadline.Missed(), m.Deadline.Total())
}

// RunCycles executes n audio processing cycles back to back (as fast as
// the machine allows) and returns the timing metrics. This is the
// evaluation mode: the paper's numbers are execution times per cycle, not
// wall-clock pacing.
func (e *Engine) RunCycles(n int) *Metrics {
	m := newMetrics(e.sched.Name(), e.sched.Threads())
	if e.cfg.CollectSamples {
		m.GraphSamplesMS = make([]float64, 0, n)
		m.APCSamplesMS = make([]float64, 0, n)
	}
	for i := 0; i < n; i++ {
		e.Cycle(m)
	}
	return m
}

// Cycle executes one APC, accumulating into m (which may be nil).
func (e *Engine) Cycle(m *Metrics) {
	t0 := time.Now()

	// TP: timecode processing. Generate each turntable's control packet
	// (the hardware substitution) and decode it; when DVS control is on,
	// the decoded speed drives the deck tempo.
	e.timecodeStage()
	t1 := time.Now()

	// GP: graph preprocessing — deck packets through the time stretcher,
	// activity flags, sampler state.
	gpStart := graph.NowNanos()
	e.session.Prepare()
	e.gpLoad.RunSince(gpStart, false)
	t2 := time.Now()

	// Graph: the task graph under the configured scheduling strategy.
	e.sched.Execute()
	t3 := time.Now()

	// VC: various calculations (master tempo smoothing, accounting).
	e.variousCalculations()
	t4 := time.Now()

	if m == nil {
		return
	}
	tp := t1.Sub(t0).Seconds() * 1e3
	gp := t2.Sub(t1).Seconds() * 1e3
	gr := t3.Sub(t2).Seconds() * 1e3
	vc := t4.Sub(t3).Seconds() * 1e3
	apc := t4.Sub(t0).Seconds() * 1e3
	m.Cycles++
	m.TP.Add(tp)
	m.GP.Add(gp)
	m.Graph.Add(gr)
	m.VC.Add(vc)
	m.APC.Add(apc)
	m.Deadline.Add(apc)
	m.GraphDeadline.Add(gr)
	if e.cfg.CollectSamples {
		m.GraphSamplesMS = append(m.GraphSamplesMS, gr)
		m.APCSamplesMS = append(m.APCSamplesMS, apc)
	}
}

// timecodeStage runs the TP component for all decks.
func (e *Engine) timecodeStage() {
	start := graph.NowNanos()
	for d := range e.tcGen {
		e.tcGen[d].Generate(e.tcL[d], e.tcR[d])
		e.tcDec[d].Decode(e.tcL[d], e.tcR[d])
		if e.cfg.DVS && e.tcDec[d].Locked() {
			if sp := e.tcDec[d].Speed(); sp > 0 {
				e.session.Decks[d].SetTempo(sp)
			}
		}
	}
	e.tpLoad.RunSince(start, false)
}

// variousCalculations runs the VC component.
func (e *Engine) variousCalculations() {
	start := graph.NowNanos()
	// Master tempo: smoothed average of the playing decks.
	sum, cnt := 0.0, 0
	for _, d := range e.session.Decks {
		if d.Playing() {
			sum += d.Tempo()
			cnt++
		}
	}
	if cnt > 0 {
		e.masterTempo += 0.05 * (sum/float64(cnt) - e.masterTempo)
	}
	e.vcLoad.RunSince(start, false)
}

// MasterTempo returns the smoothed master tempo.
func (e *Engine) MasterTempo() float64 { return e.masterTempo }

// TimecodeLocked reports whether deck d's decoder has a position fix.
func (e *Engine) TimecodeLocked(d int) bool { return e.tcDec[d].Locked() }

// SetTurntableSpeed changes virtual turntable d's speed (scratching).
func (e *Engine) SetTurntableSpeed(d int, speed float64) {
	if d >= 0 && d < len(e.tcGen) {
		e.tcGen[d].SetSpeed(speed)
	}
}

// RealtimeReport is the outcome of a paced RunRealtime session.
type RealtimeReport struct {
	Metrics *Metrics
	// Late counts packets whose computation finished after the sound
	// card's request time — the glitches a listener would hear.
	Late int
	// MaxLatenessMS is the worst overrun.
	MaxLatenessMS float64
}

// RunRealtime paces cycles against the simulated sound card clock: cycle
// i must complete by (i+1) packet periods after start. It runs for the
// given number of cycles and reports deadline behaviour under real
// pacing. The pacing loop spins (like the audio callback thread of a
// low-latency audio stack) rather than sleeping.
func (e *Engine) RunRealtime(n int) *RealtimeReport {
	m := newMetrics(e.sched.Name(), e.sched.Threads())
	if e.cfg.CollectSamples {
		m.GraphSamplesMS = make([]float64, 0, n)
		m.APCSamplesMS = make([]float64, 0, n)
	}
	rep := &RealtimeReport{Metrics: m}
	period := audio.StandardPacketPeriod
	start := time.Now()
	for i := 0; i < n; i++ {
		due := start.Add(time.Duration(i+1) * period)
		e.Cycle(m)
		now := time.Now()
		if now.After(due) {
			rep.Late++
			if late := now.Sub(due).Seconds() * 1e3; late > rep.MaxLatenessMS {
				rep.MaxLatenessMS = late
			}
		} else {
			// Wait for the next packet request (spin, as an audio callback
			// would effectively do between interrupts).
			for time.Now().Before(due) {
				runtime.Gosched()
			}
		}
	}
	return rep
}
