package engine

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"djstar/internal/faults"
	"djstar/internal/graph"
	"djstar/internal/sched"
	"djstar/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// seededFaultConfig scripts three consecutive panics on FXA2 starting at
// cycle 10 — exactly the default quarantine threshold — so the flight
// recorder dumps one quarantine incident at a reproducible cycle. The
// SLO budget is set absurdly high to keep the (timing-dependent)
// deadline-budget trigger out of the bundle.
func seededFaultConfig(t *testing.T, dir string) Config {
	t.Helper()
	gc := graph.DefaultConfig()
	gc.TrackBars = 2
	specs, err := faults.Parse("panic:FXA2@10x3")
	if err != nil {
		t.Fatal(err)
	}
	gc.Faults = faults.New(1, specs...)
	return Config{
		Graph:    gc,
		Strategy: sched.NameBusyWait,
		Threads:  4,
		Telemetry: TelemetryOptions{
			IncidentDir: dir,
			SLO:         telemetry.SLOConfig{TargetPer10k: 10000},
		},
	}
}

func runSeededIncident(t *testing.T) *telemetry.Incident {
	t.Helper()
	dir := t.TempDir()
	e, err := New(seededFaultConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	e.RunCycles(100)
	e.Close() // flushes in-flight dumps
	paths, _ := filepath.Glob(filepath.Join(dir, "incident-*.json"))
	if len(paths) != 1 {
		t.Fatalf("seeded faults dumped %d bundles, want 1: %v", len(paths), paths)
	}
	inc, err := telemetry.LoadIncident(paths[0])
	if err != nil {
		t.Fatalf("LoadIncident: %v", err)
	}
	return inc
}

func TestEngineIncidentReplayMatchesLive(t *testing.T) {
	inc := runSeededIncident(t)
	if inc.Reason != telemetry.TriggerQuarantine {
		t.Fatalf("reason = %q, want quarantine", inc.Reason)
	}
	if inc.Strategy != sched.NameBusyWait || inc.Threads != 4 || inc.Session != "0" {
		t.Fatalf("identity = %s/%d/%s, want busy/4/0", inc.Strategy, inc.Threads, inc.Session)
	}
	var faultEvents, quarantineEvents int
	for _, ev := range inc.Events {
		switch ev.Kind {
		case "fault":
			faultEvents++
			if ev.Detail != "FXA2" {
				t.Fatalf("fault event names %q, want FXA2", ev.Detail)
			}
		case "quarantine":
			quarantineEvents++
		}
	}
	// Quarantine fires on the 3rd consecutive fault, so the bundle holds
	// the two recovered faults plus the quarantine (which subsumes the
	// 3rd fault's record).
	if faultEvents < 2 || quarantineEvents == 0 {
		t.Fatalf("events = %+v, want ≥2 faults and a quarantine", inc.Events)
	}
	if inc.Totals.Quarantines != 1 {
		t.Fatalf("quarantines = %d, want 1", inc.Totals.Quarantines)
	}

	// The bundle must be self-contained: replaying the critical-path
	// analysis offline from the embedded graph + node means reproduces
	// the live engine's recorded result exactly.
	if inc.CritPath == nil {
		t.Fatal("bundle has no live critical path")
	}
	ps, err := inc.Replay()
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if ps.LengthUS != inc.CritPath.LengthUS {
		t.Fatalf("replayed critical path %v µs, live %v µs", ps.LengthUS, inc.CritPath.LengthUS)
	}
	if len(ps.Nodes) != len(inc.CritPath.Nodes) {
		t.Fatalf("replayed path has %d nodes, live %d", len(ps.Nodes), len(inc.CritPath.Nodes))
	}
	for i := range ps.Nodes {
		if ps.Nodes[i] != inc.CritPath.Nodes[i] {
			t.Fatalf("replayed path diverges at hop %d: %v vs %v", i, ps.Nodes, inc.CritPath.Nodes)
		}
	}
}

// normalizeIncident zeroes the fields that legitimately vary run to run
// (wall-clock, timing-derived measurements, sampled traces) so the rest
// of the bundle — trigger identity, event sequence, graph structure —
// can be compared against a golden file byte for byte.
func normalizeIncident(inc *telemetry.Incident) *telemetry.Incident {
	n := *inc
	n.UnixNanos = 0
	n.SLO = telemetry.SLOStatus{}
	n.Totals = telemetry.Totals{}
	n.Traces = nil
	n.Series = nil
	n.NodeMeansUS = nil
	n.CritPath = nil
	return &n
}

func TestEngineIncidentGolden(t *testing.T) {
	inc := runSeededIncident(t)
	got, err := json.MarshalIndent(normalizeIncident(inc), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "incident_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if string(got) != string(want) {
		t.Fatalf("incident bundle drifted from golden file (run with -update if intentional)\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestEngineMetricsEndpoint(t *testing.T) {
	e, err := New(fastConfig(sched.NameBusyWait, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.RunCycles(20)
	srv, err := StartDebugServer("127.0.0.1:0", e)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		`djstar_cycles_total{strategy="busy",session="0"} 20`,
		"djstar_apc_seconds_bucket",
		"# EOF",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}

	resp, err = http.Get("http://" + srv.Addr() + "/api/slo")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"target_per_10k"`) {
		t.Fatalf("/api/slo status %d body %s", resp.StatusCode, body)
	}
}

func TestEngineMetricsEndpointDisabledTelemetry(t *testing.T) {
	cfg := fastConfig(sched.NameSequential, 1)
	cfg.Telemetry.Disable = true
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Telemetry() != nil {
		t.Fatal("Telemetry() non-nil with Disable set")
	}
	srv, err := StartDebugServer("127.0.0.1:0", e)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/metrics with telemetry disabled: status = %d, want 503", resp.StatusCode)
	}
}

func TestEngineSnapshotCarriesSLO(t *testing.T) {
	e, err := New(fastConfig(sched.NameBusyWait, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.RunCycles(30)
	snap := e.Snapshot()
	if snap.SLO == nil {
		t.Fatal("snapshot has no SLO status")
	}
	if snap.SLO.TotalCycles != 30 {
		t.Fatalf("SLO total cycles = %d, want 30", snap.SLO.TotalCycles)
	}
	if snap.SLO.TargetPer10k != 5 {
		t.Fatalf("SLO target = %v, want the paper's 5/10k", snap.SLO.TargetPer10k)
	}
}
