package engine

import (
	"errors"
	"sync"
	"testing"

	"djstar/internal/admission"
	"djstar/internal/graph"
	"djstar/internal/sched"
)

// freeCal makes spin bodies effectively free: one spin unit is declared
// to take a full second, so any µs-scale cost target rounds to zero
// units. Execution costs nothing while the admission math still sees
// the full paper cost table at Scale — letting tests pin the gate's
// analytical decisions without burning real CPU time.
var freeCal = graph.Calibration{NanosPerUnit: 1e9}

func admissionGraphConfig() graph.Config {
	gc := graph.DefaultConfig()
	gc.TrackBars = 2
	gc.Scale = 1
	gc.Calibration = freeCal
	return gc
}

// staticReports computes the gate's own construction-time analysis for
// a config: the full-plan report and the rung-1 (meters+control shed)
// report, at the same effective processor count the engine will use.
func staticReports(t *testing.T, gc graph.Config, strategy string, threads int, acfg admission.Config) (full, shed1 *admission.Report) {
	t.Helper()
	_, g, err := graph.BuildDJStar(gc)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	costs := admissionStaticCosts(plan, gc.Scale)
	procs := effectiveProcs(threads)
	full, err = admission.Analyze(plan, costs, strategy, procs, "static", acfg)
	if err != nil {
		t.Fatal(err)
	}
	shed1, err = admission.Analyze(plan, admission.ShedCosts(plan, costs, true, false),
		strategy, procs, "static", acfg)
	if err != nil {
		t.Fatal(err)
	}
	return full, shed1
}

// TestAdmissionRefusesOverBudgetSession: an envelope no rung can meet
// refuses the session at construction — typed sentinel, no engine, and
// the refusal still reaches the OnAdmission hook.
func TestAdmissionRefusesOverBudgetSession(t *testing.T) {
	var decisions []AdmissionDecision
	cfg := fastConfig(sched.NameBusyWait, 4)
	cfg.Graph = admissionGraphConfig()
	cfg.Admission = AdmissionOptions{
		Enabled: true,
		Config:  admission.Config{PeriodUS: 1, Margin: 1, BaseUS: -1},
	}
	cfg.Hooks.OnAdmission = func(d AdmissionDecision) { decisions = append(decisions, d) }
	e, err := New(cfg)
	if err == nil {
		e.Close()
		t.Fatal("over-budget session admitted")
	}
	if !errors.Is(err, admission.ErrOverBudget) {
		t.Fatalf("err = %v, want ErrOverBudget", err)
	}
	if len(decisions) != 1 || decisions[0].Verdict != "refuse" {
		t.Fatalf("decisions = %+v, want one refusal", decisions)
	}
	if decisions[0].BoundUS <= decisions[0].EnvelopeUS {
		t.Fatalf("refusal carries bound %v <= envelope %v", decisions[0].BoundUS, decisions[0].EnvelopeUS)
	}
}

// TestAdmissionAdmitsWithinEnvelope: a roomy envelope admits cleanly;
// the state is published through AdmissionState and Snapshot v3.
func TestAdmissionAdmitsWithinEnvelope(t *testing.T) {
	cfg := fastConfig(sched.NameBusyWait, 4)
	cfg.Graph = admissionGraphConfig()
	cfg.Admission = AdmissionOptions{
		Enabled:      true,
		Config:       admission.Config{PeriodUS: 1e9, Margin: 1, BaseUS: -1},
		PredictEvery: -1,
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	st := e.AdmissionState()
	if st == nil || !st.Enabled || st.Verdict != "admit" || st.PreShed != "" {
		t.Fatalf("state = %+v", st)
	}
	if st.Report == nil || !st.Report.Fits() || st.Report.Source != "static" {
		t.Fatalf("report = %+v", st.Report)
	}
	e.RunCycles(5)
	snap := e.Snapshot()
	if snap.SchemaVersion != 4 || snap.Admission == nil || snap.Admission.Verdict != "admit" {
		t.Fatalf("snapshot admission = %+v (schema %d)", snap.Admission, snap.SchemaVersion)
	}
	b, h := e.Telemetry().AdmissionBound()
	if b != st.Report.BoundUS || h != st.Report.HeadroomUS {
		t.Fatalf("telemetry gauges %v/%v, want %v/%v", b, h, st.Report.BoundUS, st.Report.HeadroomUS)
	}
}

// TestAdmissionDegradedPreSheds: an envelope between the rung-1 bound
// and the full bound admits the session degraded — the governor is
// forced to degraded1 before the first cycle, meters and control
// already shed.
func TestAdmissionDegradedPreSheds(t *testing.T) {
	acfg := admission.Config{Margin: 1, BaseUS: -1}
	full, shed1 := staticReports(t, admissionGraphConfig(), sched.NameBusyWait, 4, acfg)
	if shed1.BoundUS >= full.BoundUS {
		t.Fatalf("shed bound %v not below full bound %v — no degradation window", shed1.BoundUS, full.BoundUS)
	}
	acfg.PeriodUS = (shed1.BoundUS + full.BoundUS) / 2

	var decisions []AdmissionDecision
	cfg := fastConfig(sched.NameBusyWait, 4)
	cfg.Graph = admissionGraphConfig()
	cfg.Governor.Enabled = true
	cfg.Admission = AdmissionOptions{Enabled: true, Config: acfg, PredictEvery: -1}
	cfg.Hooks.OnAdmission = func(d AdmissionDecision) { decisions = append(decisions, d) }
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	st := e.AdmissionState()
	if st == nil || st.Verdict != "degraded" || st.PreShed != "meters+control" {
		t.Fatalf("state = %+v", st)
	}
	if lvl := e.gov.Level(); lvl != GovDegraded1 {
		t.Fatalf("governor at %v, want degraded1", lvl)
	}
	if len(decisions) != 1 || decisions[0].Verdict != "degraded" || decisions[0].PreShed != "meters+control" {
		t.Fatalf("decisions = %+v", decisions)
	}
	if tot := e.Telemetry().Totals(); tot.AdmissionDegrades != 1 {
		t.Fatalf("AdmissionDegrades = %d", tot.AdmissionDegrades)
	}
	e.RunCycles(5)
}

// TestAdmissionPoolAggregate: sessions on one shared pool are gated on
// the AGGREGATE bound — the envelope that fits two sessions refuses the
// third, with the typed sentinel, and the refused session leaves no
// controller registration behind.
func TestAdmissionPoolAggregate(t *testing.T) {
	gc := admissionGraphConfig()
	const workers = 1
	acfg := admission.Config{Margin: 1, BaseUS: -1}
	rep, _ := staticReports(t, gc, sched.NamePool, workers+1, acfg)
	m := float64(effectiveProcs(workers + 1))
	w, cp := rep.TotalWorkUS, rep.CritPathUS
	// Controller bound for k identical sessions: CP + (k·W − CP)/m.
	b2 := cp + (2*w-cp)/m
	b3 := cp + (3*w-cp)/m
	acfg.PeriodUS = (b2 + b3) / 2

	cfg := Config{Graph: gc, Admission: AdmissionOptions{Enabled: true, Config: acfg, PredictEvery: -1}}
	me, err := NewMulti(cfg, 2, workers)
	if err != nil {
		t.Fatalf("two sessions must fit (bound %.0f, envelope %.0f): %v", b2, acfg.PeriodUS, err)
	}
	defer me.Close()
	if _, err := me.AddSession(); !errors.Is(err, admission.ErrOverBudget) {
		t.Fatalf("third session err = %v, want ErrOverBudget", err)
	}
	if got := len(me.Controller().Sessions()); got != 2 {
		t.Fatalf("controller holds %d sessions after refusal, want 2", got)
	}
	if got := len(me.Engines()); got != 2 {
		t.Fatalf("%d engines, want 2", got)
	}
	for _, mm := range me.RunCyclesConcurrent(5) {
		if mm.Cycles != 5 {
			t.Fatalf("cycles = %d", mm.Cycles)
		}
	}
	for _, sb := range me.Controller().Sessions() {
		if !sb.Fits {
			t.Fatalf("admitted session over budget: %+v", sb)
		}
	}
}

// TestAdmissionPoolFullSentinel: when the analysis fits but the pool's
// slots are gone, AddSession surfaces sched.ErrPoolFull — and the
// controller registration made before Attach is released again.
func TestAdmissionPoolFullSentinel(t *testing.T) {
	cfg := Config{
		Graph: admissionGraphConfig(),
		Admission: AdmissionOptions{
			Enabled:      true,
			Config:       admission.Config{PeriodUS: 1e9, Margin: 1, BaseUS: -1},
			PredictEvery: -1,
		},
	}
	me, err := NewMulti(cfg, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer me.Close()
	// NewMulti reserves slot headroom beyond the boot count; fill it.
	capacity := me.Pool().Capacity()
	for i := 2; i < capacity; i++ {
		if _, err := me.AddSession(); err != nil {
			t.Fatalf("session %d/%d refused: %v", i, capacity, err)
		}
	}
	if _, err := me.AddSession(); !errors.Is(err, sched.ErrPoolFull) {
		t.Fatalf("err = %v, want ErrPoolFull", err)
	}
	if got := len(me.Controller().Sessions()); got != capacity {
		t.Fatalf("controller holds %d sessions after failed attach, want %d", got, capacity)
	}
}

// TestAdmissionRejectsUnschedulableEdit: an edit that would push the
// staged plan's bound over the envelope is refused before the swap —
// typed sentinel, epoch untouched, live topology keeps playing — while
// a shrinking edit still lands.
func TestAdmissionRejectsUnschedulableEdit(t *testing.T) {
	acfg := admission.Config{Margin: 1, BaseUS: -1}
	full, _ := staticReports(t, admissionGraphConfig(), sched.NameBusyWait, 4, acfg)
	acfg.PeriodUS = full.BoundUS + 1 // fits, with no room for growth

	var decisions []AdmissionDecision
	cfg := fastConfig(sched.NameBusyWait, 4)
	cfg.Graph = admissionGraphConfig()
	cfg.Admission = AdmissionOptions{Enabled: true, Config: acfg, PredictEvery: -1}
	cfg.Hooks.OnAdmission = func(d AdmissionDecision) { decisions = append(decisions, d) }
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// No cycles run: the edit is judged on static costs, like the
	// construction decision it must stay consistent with.
	base := e.Plan().Len()
	err = e.ApplyPatch("insert-delay:A:8")
	if !errors.Is(err, ErrUnschedulableEdit) {
		t.Fatalf("err = %v, want ErrUnschedulableEdit", err)
	}
	// Refused synchronously: nothing staged, no cycle needed to confirm
	// (and none run — the edit gate must judge on static costs, like the
	// construction decision it stays consistent with).
	if e.PlanEpoch() != 0 || e.Plan().Len() != base {
		t.Fatalf("refused edit changed topology: epoch %d, %d nodes", e.PlanEpoch(), e.Plan().Len())
	}
	le := e.LastEdit()
	if le == nil || le.Applied || le.Err == "" {
		t.Fatalf("LastEdit = %+v", le)
	}
	if tot := e.Telemetry().Totals(); tot.RefusedEdits != 1 {
		t.Fatalf("RefusedEdits = %d", tot.RefusedEdits)
	}
	found := false
	for _, d := range decisions {
		if d.Verdict == "edit-refused" && d.BoundUS > d.EnvelopeUS {
			found = true
		}
	}
	if !found {
		t.Fatalf("no edit-refused decision in %+v", decisions)
	}

	// Shedding work instead: fits, stages, adopts.
	if err := e.ApplyPatch("drop-node:MeterA"); err != nil {
		t.Fatalf("shrinking edit refused: %v", err)
	}
	e.Cycle(nil)
	if e.PlanEpoch() != 1 || e.Plan().Len() != base-1 {
		t.Fatalf("shrinking edit not adopted: epoch %d, %d nodes", e.PlanEpoch(), e.Plan().Len())
	}
	e.RunCycles(5)
}

var admCalOnce sync.Once
var admCal graph.Calibration

// TestAdmissionPredictiveEscalation: with real node costs, cranking the
// load factor pushes the live cost model's recomputed bound over the
// envelope — and the governor escalates on the predictive rung BEFORE
// the reactive triggers (parked out of reach here) see a single miss.
func TestAdmissionPredictiveEscalation(t *testing.T) {
	admCalOnce.Do(func() { admCal = graph.Calibrate() })
	gc := graph.DefaultConfig()
	gc.TrackBars = 2
	// Scale large enough that calibrated spin work dominates the fixed
	// DSP cost even on instrumented builds (-race inflates DSP ~10×, but
	// not calibrated spinning) — so the load factor moves the bound.
	gc.Scale = 0.05
	gc.Calibration = admCal

	acfg := admission.Config{Margin: 1, BaseUS: -1}
	// Calibrate the envelope from a probe engine's MEASURED bound at
	// nominal load (the static table underestimates instrumented builds
	// like -race): nominal fits ×3, a 100× load factor cannot.
	probe, err := New(Config{Graph: gc, Strategy: sched.NameBusyWait, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	probe.RunCycles(20)
	nominal, err := admission.Analyze(probe.Plan(), probe.Collector().NodeMeansUS(),
		sched.NameBusyWait, effectiveProcs(4), "measured", acfg)
	probe.Close()
	if err != nil {
		t.Fatal(err)
	}
	acfg.PeriodUS = nominal.BoundUS * 3

	cfg := Config{
		Graph:    gc,
		Strategy: sched.NameBusyWait,
		Threads:  4,
		Governor: GovernorConfig{
			Enabled: true,
			Window:  8,
			// Park the reactive triggers out of reach: any escalation in
			// this test is the predictive rung's.
			DeadlineMS:    1e6,
			GraphBudgetMS: 1e6,
		},
		Admission: AdmissionOptions{Enabled: true, Config: acfg, PredictEvery: -1},
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.RunCycles(10) // seed the live cost model at nominal load
	e.RefreshAdmission()
	if st := e.AdmissionState(); st.OverBudget {
		t.Fatalf("over budget at nominal load: %+v", st.Report)
	}

	e.SetLoadFactor(100)
	escalated := false
	for i := 0; i < 60 && !escalated; i++ {
		e.RunCycles(8) // lifetime means climb toward 100× nominal
		e.RefreshAdmission()
		e.RunCycles(8) // at least one full governor window after arming
		escalated = e.gov.Level() >= GovDegraded1
	}
	if !escalated {
		t.Fatal("governor never escalated on the predictive rung")
	}
	st := e.AdmissionState()
	if !st.OverBudget {
		t.Fatalf("escalated but not over budget: %+v", st.Report)
	}
	if st.PredictiveEscalations < 1 {
		t.Fatalf("PredictiveEscalations = %d", st.PredictiveEscalations)
	}
	if tot := e.Telemetry().Totals(); tot.PredictedOverloads < 1 {
		t.Fatalf("PredictedOverloads = %d", tot.PredictedOverloads)
	}
	if st.Report.Source != "measured" {
		t.Fatalf("live report source = %q, want measured", st.Report.Source)
	}
}

// TestAdmissionZeroAllocCycle: the gate must add ZERO allocations to
// the audio hot path — all analysis runs off-cycle. Compared against an
// identical engine with the gate disabled, not an absolute zero, so the
// assertion survives unrelated baseline drift.
func TestAdmissionZeroAllocCycle(t *testing.T) {
	cycleAllocs := func(enabled bool) float64 {
		cfg := Config{
			Graph:    admissionGraphConfig(),
			Strategy: sched.NameBusyWait,
			Threads:  4,
		}
		if enabled {
			cfg.Admission = AdmissionOptions{
				Enabled:      true,
				Config:       admission.Config{PeriodUS: 1e9},
				PredictEvery: -1, // no monitor goroutine polluting the count
			}
		}
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		for i := 0; i < 20; i++ {
			e.Cycle(nil)
		}
		return testing.AllocsPerRun(100, func() { e.Cycle(nil) })
	}
	off, on := cycleAllocs(false), cycleAllocs(true)
	if on > off {
		t.Fatalf("admission adds allocations to the hot path: %v/cycle with gate, %v without", on, off)
	}
}
