package engine

import (
	"strings"
	"testing"

	"djstar/internal/graph"
	"djstar/internal/sched"
)

// editStrategies is every execution configuration ApplyEdits must work
// on: the five parallel strategies, the sequential baseline, and a
// pool-backed session.
var editStrategies = []string{
	sched.NameSequential, sched.NameBusyWait, sched.NameSleep,
	sched.NameWorkSteal, sched.NameSleepScan, sched.NameStatic,
	sched.NamePool,
}

// TestEngineApplyPatchAllStrategies inserts and removes a live delay
// chain on every execution configuration, checking epoch advancement,
// node-count round-trip and uninterrupted cycles on either side.
func TestEngineApplyPatchAllStrategies(t *testing.T) {
	for _, name := range editStrategies {
		t.Run(name, func(t *testing.T) {
			threads := 4
			if name == sched.NameSequential {
				threads = 1
			}
			e, err := New(fastConfig(name, threads))
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			baseNodes := e.Plan().Len()
			e.RunCycles(10)

			if err := e.ApplyPatch("insert-delay:B:2"); err != nil {
				t.Fatalf("insert: %v", err)
			}
			// Staged only: nothing adopted until the cycle boundary.
			if e.PlanEpoch() != 0 || e.Plan().Len() != baseNodes {
				t.Fatal("edit adopted outside a cycle boundary")
			}
			e.Cycle(nil)
			if e.PlanEpoch() != 1 {
				t.Fatalf("epoch = %d after insert, want 1", e.PlanEpoch())
			}
			if got := e.Plan().Len(); got != baseNodes+2 {
				t.Fatalf("plan size = %d after insert, want %d", got, baseNodes+2)
			}
			if e.Graph().NodeByName("LiveDelayB1") < 0 || e.Graph().NodeByName("LiveDelayB2") < 0 {
				t.Fatal("delay nodes missing from live graph")
			}
			m := e.RunCycles(20)
			if m.Cycles != 20 {
				t.Fatalf("post-insert cycles = %d", m.Cycles)
			}

			if err := e.ApplyPatch("remove-delay:B"); err != nil {
				t.Fatalf("remove: %v", err)
			}
			e.Cycle(nil)
			if e.PlanEpoch() != 2 || e.Plan().Len() != baseNodes {
				t.Fatalf("after remove: epoch %d, %d nodes, want 2/%d",
					e.PlanEpoch(), e.Plan().Len(), baseNodes)
			}
			le := e.LastEdit()
			if le == nil || !le.Applied || le.Desc != "remove-delay:B" {
				t.Fatalf("LastEdit = %+v", le)
			}
			e.RunCycles(10)
		})
	}
}

// TestEngineApplyEditsStacked: two edits staged before one cycle
// boundary compose and land in a single adoption.
func TestEngineApplyEditsStacked(t *testing.T) {
	e, err := New(fastConfig(sched.NameBusyWait, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	base := e.Plan().Len()
	e.RunCycles(5)
	if err := e.ApplyPatch("insert-delay:A"); err != nil {
		t.Fatal(err)
	}
	if err := e.ApplyPatch("insert-delay:B"); err != nil {
		t.Fatal(err)
	}
	e.Cycle(nil)
	if e.PlanEpoch() != 1 {
		t.Fatalf("stacked edits adopted as %d epochs, want 1", e.PlanEpoch())
	}
	if got := e.Plan().Len(); got != base+2 {
		t.Fatalf("plan size = %d, want %d", got, base+2)
	}
	le := e.LastEdit()
	if le == nil || !le.Applied || !strings.Contains(le.Desc, "insert-delay:A") ||
		!strings.Contains(le.Desc, "insert-delay:B") {
		t.Fatalf("LastEdit = %+v", le)
	}
	e.RunCycles(5)
}

// TestEngineApplyPatchRejected: a bad spec is refused synchronously,
// recorded in LastEdit, and leaves the topology untouched.
func TestEngineApplyPatchRejected(t *testing.T) {
	e, err := New(fastConfig(sched.NameBusyWait, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for _, spec := range []string{"bogus", "insert-delay:Z", "remove-delay:A", "drop-node:Mixer"} {
		if err := e.ApplyPatch(spec); err == nil {
			t.Fatalf("patch %q accepted", spec)
		}
		le := e.LastEdit()
		if le == nil || le.Applied || le.Err == "" {
			t.Fatalf("LastEdit after %q = %+v", spec, le)
		}
	}
	e.Cycle(nil)
	if e.PlanEpoch() != 0 {
		t.Fatal("rejected edits advanced the epoch")
	}
}

// TestEngineEditRollback: an edit that passes graph validation but is
// refused by the scheduler at the swap boundary (here: shrinking the
// plan below the worker count) rolls back — the old topology stays
// live, the epoch does not advance, and the outcome is recorded.
func TestEngineEditRollback(t *testing.T) {
	var changes []TopologyChange
	cfg := fastConfig(sched.NameBusyWait, 4)
	cfg.Hooks.OnTopology = func(tc TopologyChange) { changes = append(changes, tc) }
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.RunCycles(5)

	// Remove every node but the first two: a valid 2-node graph, but a
	// 4-worker scheduler cannot run it.
	es := &graph.EditSet{}
	for i := 2; i < e.Plan().Len(); i++ {
		es.RemoveNode(graph.NodeRef(i))
	}
	if err := e.ApplyEdits(es); err != nil {
		t.Fatalf("staging should succeed (graph-valid): %v", err)
	}
	before := e.Plan().Len()
	e.Cycle(nil) // adoption refused here
	if e.PlanEpoch() != 0 {
		t.Fatalf("rollback advanced the epoch to %d", e.PlanEpoch())
	}
	if e.Plan().Len() != before {
		t.Fatal("rollback changed the live plan")
	}
	le := e.LastEdit()
	if le == nil || le.Applied || le.Err == "" {
		t.Fatalf("LastEdit = %+v", le)
	}
	if len(changes) != 1 || changes[0].Applied {
		t.Fatalf("OnTopology changes = %+v, want one rollback", changes)
	}
	// The engine keeps running on the old topology.
	m := e.RunCycles(10)
	if m.Cycles != 10 {
		t.Fatalf("post-rollback cycles = %d", m.Cycles)
	}
}

// TestEngineEditMigratesState: replacing a live delay node hands its
// delay-line state to the replacement's Migrate hook.
func TestEngineEditMigratesState(t *testing.T) {
	e, err := New(fastConfig(sched.NameBusyWait, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.ApplyPatch("insert-delay:B"); err != nil {
		t.Fatal(err)
	}
	e.RunCycles(30) // let the delay line fill

	var migrated any
	id := e.Graph().NodeByName("LiveDelayB1")
	if id < 0 {
		t.Fatal("LiveDelayB1 missing")
	}
	es := &graph.EditSet{}
	es.ReplaceChain([]graph.NodeRef{graph.NodeRef(id)}, graph.NodeSpec{
		Name:    "ReplacementDelay",
		Migrate: func(prev any) { migrated = prev },
	})
	if err := e.ApplyEdits(es); err != nil {
		t.Fatal(err)
	}
	e.Cycle(nil)
	if e.PlanEpoch() != 2 {
		t.Fatalf("epoch = %d, want 2", e.PlanEpoch())
	}
	if migrated == nil {
		t.Fatal("Migrate hook did not receive the predecessor's state")
	}
}

// TestEngineTopologyHookOnAdoption: OnTopology fires once per adopted
// edit with the post-adoption epoch and node count.
func TestEngineTopologyHookOnAdoption(t *testing.T) {
	var changes []TopologyChange
	cfg := fastConfig(sched.NameWorkSteal, 4)
	cfg.Hooks.OnTopology = func(tc TopologyChange) { changes = append(changes, tc) }
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	base := e.Plan().Len()
	if err := e.ApplyPatch("insert-delay:A:3"); err != nil {
		t.Fatal(err)
	}
	e.Cycle(nil)
	e.Cycle(nil) // no second event without a new edit
	if len(changes) != 1 {
		t.Fatalf("%d topology events, want 1", len(changes))
	}
	tc := changes[0]
	if !tc.Applied || tc.Epoch != 1 || tc.Nodes != base+3 || tc.Desc != "insert-delay:A:3" {
		t.Fatalf("event = %+v", tc)
	}
}

// TestEngineSnapshotReportsEdits: Snapshot v2 carries the epoch and the
// last edit outcome.
func TestEngineSnapshotReportsEdits(t *testing.T) {
	e, err := New(fastConfig(sched.NameBusyWait, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.RunCycles(5)
	if err := e.ApplyPatch("insert-delay:C"); err != nil {
		t.Fatal(err)
	}
	e.Cycle(nil)
	snap := e.Snapshot()
	if snap.SchemaVersion != 4 {
		t.Fatalf("schema = %d, want 4", snap.SchemaVersion)
	}
	if snap.PlanEpoch != 1 {
		t.Fatalf("snapshot epoch = %d", snap.PlanEpoch)
	}
	if snap.LastEdit == nil || !snap.LastEdit.Applied || snap.LastEdit.Desc != "insert-delay:C" {
		t.Fatalf("snapshot LastEdit = %+v", snap.LastEdit)
	}
}

// TestEngineCloseWhileEditStaged: Close with a staged, never-adopted
// edit must not adopt, leak or wedge — and stays idempotent; edits after
// Close are refused.
func TestEngineCloseWhileEditStaged(t *testing.T) {
	e, err := New(fastConfig(sched.NameBusyWait, 4))
	if err != nil {
		t.Fatal(err)
	}
	e.RunCycles(5)
	if err := e.ApplyPatch("insert-delay:B"); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close() // idempotent
	if err := e.ApplyPatch("insert-delay:A"); err == nil {
		t.Fatal("ApplyPatch after Close accepted")
	}
	if err := e.RecompileFused(nil); err == nil {
		t.Fatal("RecompileFused after Close accepted")
	}
}

// TestEngineEditWithFusionAndGovernor: structural edits compose with
// plan fusion and an enabled governor/watchdog — the fused exec plan is
// rebuilt over the edited base plan at adoption.
func TestEngineEditWithFusionAndGovernor(t *testing.T) {
	cfg := fastConfig(sched.NameBusyWait, 4)
	cfg.FusePlan = true
	cfg.Governor.Enabled = true
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.RunCycles(20)
	base := e.Plan().Len()
	if err := e.ApplyPatch("insert-delay:B:2"); err != nil {
		t.Fatal(err)
	}
	e.Cycle(nil)
	if e.PlanEpoch() != 1 {
		t.Fatalf("epoch = %d", e.PlanEpoch())
	}
	if e.Plan().Len() != base+2 {
		t.Fatalf("base plan = %d nodes, want %d", e.Plan().Len(), base+2)
	}
	exec := e.ExecPlan()
	if !exec.IsFused() || exec.Base != e.Plan() {
		t.Fatal("exec plan is not a fusion of the edited base plan")
	}
	m := e.RunCycles(30)
	if m.Cycles != 30 {
		t.Fatalf("cycles = %d", m.Cycles)
	}
	// The new collector observes the edited base plan.
	if got := len(e.Collector().NodeMeansUS()); got != base+2 {
		t.Fatalf("collector sized %d, want %d", got, base+2)
	}
}
