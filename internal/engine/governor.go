package engine

import (
	"math"
	"sync/atomic"

	"djstar/internal/graph"
	"djstar/internal/sched"
	"djstar/internal/stats"
)

// GovLevel is the deadline governor's degradation level. Levels are
// ordered: each one sheds strictly more work than the previous.
type GovLevel int32

const (
	// GovNormal runs the full graph.
	GovNormal GovLevel = iota
	// GovDegraded1 sheds the meter and control nodes — UI-only work that
	// is invisible to the audio path.
	GovDegraded1
	// GovDegraded2 additionally bypasses the FX nodes: the mix stays
	// intact, just dry.
	GovDegraded2
	// GovCritical additionally scales the load factor down (cheaper
	// kernels at reduced quality) — the last stop before audible drops.
	GovCritical
)

// String returns the level label.
func (l GovLevel) String() string {
	switch l {
	case GovNormal:
		return "normal"
	case GovDegraded1:
		return "degraded1"
	case GovDegraded2:
		return "degraded2"
	case GovCritical:
		return "critical"
	default:
		return "unknown"
	}
}

// GovernorConfig tunes the deadline governor. Zero fields take defaults.
type GovernorConfig struct {
	// Enabled turns the governor on.
	Enabled bool
	// DeadlineMS is the APC deadline whose misses drive escalation
	// (default DeadlineMS, the 2.902 ms packet period).
	DeadlineMS float64
	// GraphBudgetMS is the graph-time budget whose p99 drives escalation
	// (default GraphBudgetMS, 2.1 ms).
	GraphBudgetMS float64
	// Window is the evaluation window in cycles (default 128): miss rate
	// and p99 are assessed once per window.
	Window int
	// EscalateMissRate escalates one level when the window's APC miss
	// rate exceeds it (default 0.05).
	EscalateMissRate float64
	// CleanWindows is how many consecutive miss-free windows trigger
	// de-escalation by one level (default 4) — the hysteresis that stops
	// the governor from oscillating at a load boundary.
	CleanWindows int
	// RecoverMissRate is the highest window miss rate that still counts
	// toward the CleanWindows recovery streak (default 0: strictly
	// miss-free). On hosts with ambient scheduling noise a stray OS
	// preemption dirties an occasional window forever, making rate == 0
	// unreachable and pinning the governor at a degraded level after the
	// overload is gone; a small tolerance (well under EscalateMissRate)
	// lets recovery distinguish noise from load.
	RecoverMissRate float64
	// CriticalFactor is the load-factor multiplier applied at GovCritical
	// (default 0.5).
	CriticalFactor float64
}

func (c GovernorConfig) withDefaults() GovernorConfig {
	if c.DeadlineMS <= 0 {
		c.DeadlineMS = DeadlineMS
	}
	if c.GraphBudgetMS <= 0 {
		c.GraphBudgetMS = GraphBudgetMS
	}
	if c.Window <= 0 {
		c.Window = 128
	}
	if c.EscalateMissRate <= 0 {
		c.EscalateMissRate = 0.05
	}
	if c.CleanWindows <= 0 {
		c.CleanWindows = 4
	}
	if c.CriticalFactor <= 0 || c.CriticalFactor >= 1 {
		c.CriticalFactor = 0.5
	}
	if c.RecoverMissRate < 0 {
		c.RecoverMissRate = 0
	}
	return c
}

// governor is the engine's graceful-degradation state machine. It runs
// entirely on the cycle thread (observe is called once per cycle between
// graph executions); only the level is published atomically for Health
// readers on other threads.
type governor struct {
	cfg   GovernorConfig
	sched sched.Scheduler
	plan  *graph.Plan

	level atomic.Int32

	// Window accounting (cycle thread only).
	cycles  int
	misses  int
	graphMS []float64 // window's graph times, for the p99 trigger
	clean   int       // consecutive miss-free windows
	// Last completed window's miss rate / p99, published for Health
	// readers on other threads (float64 bits).
	lastRate    atomic.Uint64
	lastP99     atomic.Uint64
	escalates   atomic.Int64
	deescalates atomic.Int64

	// predicted is set by the admission monitor (another goroutine) when
	// the live cost model pushes the recomputed schedulability bound over
	// the envelope; the next window boundary escalates on it even with a
	// clean miss record — degradation BEFORE the first audible miss.
	// Swap(false) at the window boundary makes it one escalation per
	// over-budget signal; the monitor re-arms it while the overload lasts.
	predicted        atomic.Bool
	predictEscalates atomic.Int64

	// onChange, when set, is notified of level transitions (cycle thread).
	onChange func(from, to GovLevel)
	// setFactor applies the governor's load-factor multiplier (the engine
	// composes it with the user's overload factor).
	setFactor func(float64)
}

func newGovernor(cfg GovernorConfig, s sched.Scheduler, p *graph.Plan, setFactor func(float64)) *governor {
	cfg = cfg.withDefaults()
	return &governor{
		cfg:       cfg,
		sched:     s,
		plan:      p,
		graphMS:   make([]float64, 0, cfg.Window),
		setFactor: setFactor,
	}
}

// Level returns the current degradation level (any thread).
func (g *governor) Level() GovLevel { return GovLevel(g.level.Load()) }

// observe feeds one cycle's APC and graph times; once per window it
// decides whether to escalate or recover.
func (g *governor) observe(apcMS, graphMS float64) {
	g.cycles++
	if apcMS > g.cfg.DeadlineMS {
		g.misses++
	}
	g.graphMS = append(g.graphMS, graphMS)
	if g.cycles < g.cfg.Window {
		return
	}
	rate := float64(g.misses) / float64(g.cycles)
	p99 := stats.Percentiles(g.graphMS, 0.99)[0]
	g.lastRate.Store(math.Float64bits(rate))
	g.lastP99.Store(math.Float64bits(p99))
	g.cycles = 0
	g.misses = 0
	g.graphMS = g.graphMS[:0]

	level := g.Level()
	predicted := g.predicted.Swap(false)
	switch {
	case rate > g.cfg.EscalateMissRate || p99 > g.cfg.GraphBudgetMS:
		g.clean = 0
		if level < GovCritical {
			g.transition(level, level+1)
			g.escalates.Add(1)
		}
	case predicted:
		// Predictive rung: the admission monitor's recomputed bound says
		// the envelope will blow even though this window was clean. Shed
		// ahead of the miss; the ordinary CleanWindows hysteresis recovers
		// once the bound (and the misses it predicted) stay away.
		g.clean = 0
		if level < GovCritical {
			g.transition(level, level+1)
			g.escalates.Add(1)
			g.predictEscalates.Add(1)
		}
	case rate <= g.cfg.RecoverMissRate:
		g.clean++
		if g.clean >= g.cfg.CleanWindows && level > GovNormal {
			g.transition(level, level-1)
			g.deescalates.Add(1)
			g.clean = 0
		}
	default:
		// Some misses, above the recovery tolerance but under the
		// escalation threshold: hold the level and restart the clean
		// streak.
		g.clean = 0
	}
}

// transition applies a level change: shedding by node kind, the critical
// load factor, and the change notification.
func (g *governor) transition(from, to GovLevel) {
	g.level.Store(int32(to))
	g.applyShed(to)
	f := 1.0
	if to >= GovCritical {
		f = g.cfg.CriticalFactor
	}
	g.setFactor(f)
	if g.onChange != nil {
		g.onChange(from, to)
	}
}

// applyShed pushes the shed bits implied by a level into the scheduler.
// The plan here is always the BASE plan — shed bits are per base node,
// which the fault state honours on fused plans too.
func (g *governor) applyShed(level GovLevel) {
	shedUI := level >= GovDegraded1
	shedFX := level >= GovDegraded2
	for i, k := range g.plan.Kinds {
		switch k {
		case graph.KindMeter, graph.KindControl:
			g.sched.SetNodeShed(int32(i), shedUI)
		case graph.KindFX:
			g.sched.SetNodeShed(int32(i), shedFX)
		}
	}
}

// force jumps the governor straight to a level (admission's
// admit-degraded rung pre-sheds through it so the level, the shed bits
// and the hysteresis state stay consistent). Construction time or cycle
// thread only, like transition.
func (g *governor) force(to GovLevel) {
	if from := g.Level(); from != to {
		g.transition(from, to)
	}
}

// retarget points the governor at a freshly swapped scheduler and base
// plan, replaying the current level's shed bits — nodes that joined in
// the edit pick up the level's shedding, removed ones vanish with their
// bits. Cycle thread only (like observe/transition), after the
// scheduler has adopted the new plan.
func (g *governor) retarget(s sched.Scheduler, p *graph.Plan) {
	g.sched = s
	g.plan = p
	g.applyShed(g.Level())
}
