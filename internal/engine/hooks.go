package engine

import (
	"djstar/internal/obs"
	"djstar/internal/sched"
)

// Hooks is the engine's consolidated event surface: every callback the
// engine can emit lives here, replacing the ad-hoc per-event Config
// fields that accumulated one by one (OnFault, OnGovChange, OnStall).
// The zero value is a valid no-op; set only the events you consume. New
// event kinds join this struct instead of growing Config.
type Hooks struct {
	// OnFault is invoked synchronously from the worker that recovered a
	// node panic; it must be cheap and concurrency-safe.
	OnFault func(sched.FaultRecord)
	// OnGovChange is notified of governor level transitions (called on
	// the cycle thread).
	OnGovChange func(from, to GovLevel)
	// OnStall is invoked from the watchdog goroutine when a graph
	// execution stuck past the hard wall is detected.
	OnStall func(StallRecord)
	// OnCycle is invoked on the cycle thread after every completed APC
	// with that cycle's component timings. It is on the audio path: keep
	// it cheap and allocation-free.
	OnCycle func(CycleInfo)
	// OnTrace is invoked on the cycle thread whenever the observability
	// collector samples a fresh schedule realization (every
	// ObsOptions.TraceEvery cycles). The pointed-to trace is only valid
	// during the call — copy it (obs-side slices are reused) to retain.
	OnTrace func(*obs.CycleTrace)
	// OnTopology is invoked on the cycle thread when a staged topology
	// edit (ApplyEdits / ApplyPatch / RecompileFused) is adopted — or
	// refused and rolled back — at a cycle boundary.
	OnTopology func(TopologyChange)
	// OnAdmission is invoked for every admission decision: the
	// construction-time gate (including refusals — the hook fires before
	// New returns the error), edit-time schedulability rejections, and
	// the predictive monitor's over-budget flags. Called from the
	// admitting goroutine (construction, editor or monitor — never the
	// audio path).
	OnAdmission func(AdmissionDecision)
}

// AdmissionDecision is one admission-control outcome, delivered to
// Hooks.OnAdmission.
type AdmissionDecision struct {
	// Cycle is the engine cycle at decision time (0 at construction).
	Cycle uint64
	// Verdict is "admit", "degraded", "refuse", "edit-refused" or
	// "predict-overload".
	Verdict string
	// Reason is the human-readable summary of the analysis.
	Reason string
	// BoundUS is the analytical response-time bound of the decided
	// configuration and EnvelopeUS the deadline it was held against (µs).
	BoundUS    float64
	EnvelopeUS float64
	// PreShed names the degradation rung of an admit-degraded decision
	// ("" when nothing was shed).
	PreShed string
	// Predicted is true for the monitor's over-budget flags (bound blown
	// by live cost drift, before misses occur).
	Predicted bool
}

// TopologyChange is one adoption decision on a staged topology edit,
// delivered to Hooks.OnTopology.
type TopologyChange struct {
	// Cycle is the engine cycle at the adoption boundary.
	Cycle uint64
	// Epoch is the plan epoch after the decision (unchanged on a
	// rollback).
	Epoch uint64
	// Nodes is the live base plan's node count after the decision.
	Nodes int
	// Ops counts the edit operations in the staged set.
	Ops int
	// Desc describes the edit ("insert-delay:A:2", "refuse", "3 ops").
	Desc string
	// Applied is false when the scheduler refused the swap and the old
	// topology stayed live.
	Applied bool
}

// CycleInfo is one completed APC's timing breakdown, delivered to
// Hooks.OnCycle.
type CycleInfo struct {
	// Cycle is the engine cycle count (1-based).
	Cycle uint64
	// Component times in milliseconds (TP + GP + Graph + VC = APC).
	TPMS, GPMS, GraphMS, VCMS, APCMS float64
	// DeadlineMiss reports APCMS exceeded the 2.902 ms packet period.
	DeadlineMiss bool
}
