package engine

import (
	"testing"

	"djstar/internal/sched"
)

func TestMultiEngineValidation(t *testing.T) {
	if _, err := NewMulti(fastConfig("", 0), 0, 2); err == nil {
		t.Fatal("zero sessions accepted")
	}
	if _, err := NewMulti(fastConfig("", 0), 2, -1); err == nil {
		t.Fatal("negative workers accepted")
	}
}

// TestMultiEngineConcurrentSessions is the engine-level acceptance test
// for shared-pool scheduling: four full DJ sessions (decks, mixer,
// timecode) execute concurrently over one worker pool, each producing
// audio and metrics independently.
func TestMultiEngineConcurrentSessions(t *testing.T) {
	const sessions = 4
	m, err := NewMulti(fastConfig("", 0), sessions, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if got := len(m.Engines()); got != sessions {
		t.Fatalf("%d engines, want %d", got, sessions)
	}
	if m.Pool().Workers() != 3 {
		t.Fatalf("pool workers = %d, want 3", m.Pool().Workers())
	}
	for _, e := range m.Engines() {
		if e.Scheduler().Name() != sched.NamePool {
			t.Fatalf("scheduler = %q, want %q", e.Scheduler().Name(), sched.NamePool)
		}
	}

	metrics := m.RunCyclesConcurrent(120)
	if len(metrics) != sessions {
		t.Fatalf("%d metric sets, want %d", len(metrics), sessions)
	}
	for i, mm := range metrics {
		if mm.Cycles != 120 {
			t.Fatalf("session %d ran %d cycles, want 120", i, mm.Cycles)
		}
		if mm.Graph.Mean() <= 0 {
			t.Fatalf("session %d has zero graph time", i)
		}
	}
	// Every session must produce real audio independently.
	for i, e := range m.Engines() {
		if e.Session().MasterOut().Peak() == 0 {
			t.Fatalf("session %d produced silence", i)
		}
	}
}

// TestMultiEngineMatchesSingle: a session executing on a shared pool
// produces bit-identical audio to a sequential engine with the same
// config, even while sibling sessions churn concurrently.
func TestMultiEngineMatchesSingle(t *testing.T) {
	const cycles = 80

	ref, err := New(fastConfig(sched.NameSequential, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	m, err := NewMulti(fastConfig("", 0), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	refSums := make([]float64, cycles)
	gotSums := make([]float64, cycles)
	for c := 0; c < cycles; c++ {
		ref.Cycle(nil)
		refSums[c] = ref.Session().MasterOut().Peak()
	}

	done := make(chan struct{})
	go func() {
		// Churn the sibling sessions while session 0 is measured.
		for i := 0; i < cycles; i++ {
			m.Engines()[1].Cycle(nil)
			m.Engines()[2].Cycle(nil)
		}
		close(done)
	}()
	e0 := m.Engines()[0]
	for c := 0; c < cycles; c++ {
		e0.Cycle(nil)
		gotSums[c] = e0.Session().MasterOut().Peak()
	}
	<-done

	for c := 0; c < cycles; c++ {
		if refSums[c] != gotSums[c] {
			t.Fatalf("cycle %d: pool session peak %v differs from sequential %v",
				c, gotSums[c], refSums[c])
		}
	}
}

// TestEnginePrivatePoolStrategy: Strategy == "pool" without a shared
// Pool builds a private single-session pool and behaves like any other
// parallel strategy.
func TestEnginePrivatePoolStrategy(t *testing.T) {
	e, err := New(fastConfig(sched.NamePool, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Scheduler().Name() != sched.NamePool {
		t.Fatalf("scheduler = %q", e.Scheduler().Name())
	}
	if e.Scheduler().Threads() != 4 {
		t.Fatalf("threads = %d, want 4 (3 workers + caller)", e.Scheduler().Threads())
	}
	m := e.RunCycles(60)
	if m.Cycles != 60 || m.Graph.Mean() <= 0 {
		t.Fatalf("bad metrics: %+v", m)
	}
	if e.Session().MasterOut().Peak() == 0 {
		t.Fatal("silence from pool-strategy engine")
	}
}
