package engine

import (
	"fmt"

	"djstar/internal/graph"
	"djstar/internal/obs"
	"djstar/internal/rescon"
	"djstar/internal/sched"
)

// Live graph editing. An EditSet is applied against the current
// topology's graph, compiled into a fresh plan, and staged; the next
// cycle boundary adopts it without stopping the audio: the scheduler
// keeps its workers, fault/quarantine/shed state is remapped onto the
// surviving nodes, node state carries over through the Migrate hooks,
// and the observability collector is replaced by one sized for the new
// plan. A failed adoption rolls back to the old topology and is
// retained as a flight-recorder event. The engine's public node-ID
// space advances with each adopted edit (PlanEpoch counts them);
// cross-thread readers always see a consistent (plan, collector) pair
// through the topology bundle.

// EditOutcome records the result of the most recent topology edit:
// staged-then-adopted, rejected at validation, or rolled back at the
// swap boundary. Exposed through Snapshot (schema v2) and LastEdit.
type EditOutcome struct {
	// Cycle is the engine cycle at which the outcome was decided
	// (staging cycle for rejections, adoption cycle otherwise).
	Cycle uint64 `json:"cycle"`
	// Epoch is the plan epoch after the outcome.
	Epoch uint64 `json:"epoch"`
	// Ops counts the edit operations in the set.
	Ops int `json:"ops"`
	// Applied is true when the edit was adopted into the live topology.
	Applied bool `json:"applied"`
	// Err is the rejection or rollback error ("" on success).
	Err string `json:"err,omitempty"`
	// Desc describes the edit (a patch spec, or "<n> ops").
	Desc string `json:"desc,omitempty"`
}

// LastEdit returns the most recent edit outcome (nil when no edit has
// been attempted). Safe from any thread.
func (e *Engine) LastEdit() *EditOutcome { return e.lastEdit.Load() }

// stagedTopo is a compiled topology parked until the next cycle
// boundary adopts it. remap composes every edit staged since the live
// topology (nil for a pure execution-plan recompilation, which keeps
// the base ID space).
type stagedTopo struct {
	topo  *topology
	remap *graph.Remap
	ops   int
	desc  string
}

// ApplyEdits validates and compiles an edit set against the current
// topology (including any not-yet-adopted staged edit — stacked edits
// compose) and stages the result for adoption at the next cycle
// boundary. The error reports validation/compilation failures
// (graph.ErrBadEdit, graph.ErrCycle); the audio is untouched on error.
// Safe from any thread; the edit itself takes effect on the cycle
// thread, observable via PlanEpoch, LastEdit and Hooks.OnTopology.
func (e *Engine) ApplyEdits(es *graph.EditSet) error {
	e.editMu.Lock()
	defer e.editMu.Unlock()
	return e.applyEditsLocked(es, fmt.Sprintf("%d ops", es.Len()))
}

// ApplyPatch builds an edit set from a live-patch spec (see
// graph.Session.BuildPatch: "insert-delay:A:2", "remove-delay:A",
// "drop-node:MeterA") and stages it like ApplyEdits.
func (e *Engine) ApplyPatch(spec string) error {
	e.editMu.Lock()
	defer e.editMu.Unlock()
	base, _ := e.editBase()
	es, err := e.session.BuildPatch(base.g, spec)
	if err != nil {
		e.recordEdit(EditOutcome{
			Cycle: e.cycleN.Load(), Epoch: e.planEpoch.Load(),
			Err: err.Error(), Desc: spec,
		})
		return err
	}
	return e.applyEditsLocked(es, spec)
}

// editBase returns the topology new edits apply against — the staged
// one when present (stacked edits), else the live one — plus the
// staged wrapper itself (nil when none). editMu must be held.
func (e *Engine) editBase() (*topology, *stagedTopo) {
	if st := e.staged.Load(); st != nil {
		return st.topo, st
	}
	return e.topo.Load(), nil
}

// applyEditsLocked compiles and stages one edit set. editMu held.
func (e *Engine) applyEditsLocked(es *graph.EditSet, desc string) error {
	if e.closed.Load() {
		return fmt.Errorf("engine: ApplyEdits after Close")
	}
	base, prev := e.editBase()
	fail := func(err error) error {
		e.recordEdit(EditOutcome{
			Cycle: e.cycleN.Load(), Epoch: e.planEpoch.Load(),
			Ops: es.Len(), Err: err.Error(), Desc: desc,
		})
		if e.flight != nil {
			e.flight.AddEvent(e.cycleN.Load(), "edit-rejected", desc+": "+err.Error())
		}
		return err
	}
	g2, plan2, remap, err := base.g.Apply(es)
	if err != nil {
		return fail(err)
	}
	if prev != nil && prev.remap != nil {
		remap = prev.remap.Compose(remap)
	}
	if e.adm != nil {
		// Admission re-check: the staged plan's analytical bound must
		// still fit the envelope at the session's current degradation
		// rung, or the edit is rejected here — before fusion, before the
		// swap, with the live topology untouched (ErrUnschedulableEdit).
		if err := e.adm.checkEdit(e, plan2, remap); err != nil {
			return fail(err)
		}
	}
	execPlan := plan2
	if e.cfg.FusePlan {
		execPlan, err = graph.Fuse(plan2, e.editCosts(remap, plan2), e.cfg.Fuse)
		if err != nil {
			return fail(err)
		}
	}
	var col *obs.Collector
	if !e.cfg.Obs.Disable {
		col = obs.NewCollector(plan2, obs.Config{
			Workers:    e.obsWorkers,
			TraceEvery: e.cfg.Obs.TraceEvery,
			TraceRing:  e.cfg.Obs.TraceRing,
		})
	}
	ops, d := es.Len(), desc
	if prev != nil {
		ops += prev.ops
		d = prev.desc + "; " + desc
	}
	e.staged.Store(&stagedTopo{
		topo:  &topology{g: g2, plan: plan2, execPlan: execPlan, col: col},
		remap: remap,
		ops:   ops,
		desc:  d,
	})
	return nil
}

// RecompileFused compiles a new fused execution plan over the current
// base plan and stages it for adoption at the next cycle boundary — the
// audio never stops: the current cycle finishes on the old plan, the
// next starts on the new one, on the same scheduler workers. costsUS
// supplies per-node cost estimates in µs (base-plan IDs); nil means
// "best available" — the collector's measured means when at least one
// cycle has been observed, else the static design table.
//
// The engine's public node-ID space is unchanged: the collector,
// governor, watchdog, telemetry and Health still see base nodes. Safe
// to call from any thread, including for engines attached to a worker
// pool. A staged structural edit is preserved: the recompilation fuses
// the staged plan and both land together.
func (e *Engine) RecompileFused(costsUS []float64) error {
	e.editMu.Lock()
	defer e.editMu.Unlock()
	if e.closed.Load() {
		return fmt.Errorf("engine: RecompileFused after Close")
	}
	base, prev := e.editBase()
	var remap *graph.Remap
	ops, desc := 0, "refuse"
	if prev != nil {
		remap, ops, desc = prev.remap, prev.ops, prev.desc+"; refuse"
	}
	if costsUS == nil {
		costsUS = e.editCosts(remap, base.plan)
	}
	fused, err := graph.Fuse(base.plan, costsUS, e.cfg.Fuse)
	if err != nil {
		return err
	}
	e.staged.Store(&stagedTopo{
		topo:  &topology{g: base.g, plan: base.plan, execPlan: fused, col: base.col},
		remap: remap,
		ops:   ops,
		desc:  desc,
	})
	if e.adm != nil {
		// A recompilation keeps the topology (and so the conservative
		// base-plan bound); refresh the published analysis against the
		// supplied costs rather than gating — flag, don't reject.
		e.adm.refresh(e)
	}
	return nil
}

// editCosts produces a per-node µs cost table for plan (the target plan
// of a staged edit). Measured means from the live collector are carried
// through remap when one exists; nodes without a measurement (including
// freshly added ones) fall back to the static design table.
func (e *Engine) editCosts(remap *graph.Remap, plan *graph.Plan) []float64 {
	out := rescon.PaperCostsUS(plan)
	live := e.topo.Load()
	if live.col == nil {
		return out
	}
	m, ok := live.col.CostModel()
	if !ok {
		return out
	}
	if remap == nil {
		// Same ID space: take any measured (non-zero) mean directly.
		for i := range out {
			if i < len(m) && m[i] > 0 {
				out[i] = m[i]
			}
		}
		return out
	}
	for i := range out {
		if i < len(remap.NewToOld) {
			if old := remap.NewToOld[i]; old >= 0 && int(old) < len(m) && m[old] > 0 {
				out[i] = m[old]
			}
		}
	}
	return out
}

// adoptStaged installs the staged topology at the cycle boundary: the
// scheduler swaps plans in place (workers, fault counters, quarantine
// and shed state survive through the remap), node state migrates via
// the Migrate hooks, the governor and watchdog are retargeted, and the
// epoch advances. On a refused swap the old topology stays live and the
// rollback is retained as a flight-recorder event. Cycle thread only.
func (e *Engine) adoptStaged() {
	st := e.staged.Swap(nil)
	if st == nil {
		return
	}
	old := e.topo.Load()
	sw := sched.Swap{Plan: st.topo.execPlan}
	if st.remap != nil {
		sw.OldToNew = st.remap.OldToNew
	}
	if st.topo.col != old.col {
		sw.Observer = st.topo.col
	}
	cyc := e.cycleN.Load()
	if err := e.sch().StageSwap(sw); err != nil {
		e.recordEdit(EditOutcome{
			Cycle: cyc, Epoch: e.planEpoch.Load(),
			Ops: st.ops, Err: err.Error(), Desc: st.desc,
		})
		if e.flight != nil {
			e.flight.AddEvent(cyc, "edit-rollback", st.desc+": "+err.Error())
		}
		e.notifyTopology(TopologyChange{
			Cycle: cyc, Epoch: e.planEpoch.Load(),
			Nodes: old.plan.Len(), Ops: st.ops, Desc: st.desc,
		})
		return
	}
	e.sch().AdoptStaged()
	if st.remap != nil {
		migrateStates(old.plan, st.topo.plan, st.remap)
	}
	e.topo.Store(st.topo)
	epoch := e.planEpoch.Add(1)
	if e.gov != nil {
		e.gov.retarget(e.sch(), st.topo.plan)
	}
	if e.wd != nil {
		e.wd.retarget(e.sch(), st.topo.plan)
	}
	e.recordEdit(EditOutcome{
		Cycle: cyc, Epoch: epoch, Ops: st.ops, Applied: true, Desc: st.desc,
	})
	if e.flight != nil {
		e.flight.AddEvent(cyc, "plan-swap", fmt.Sprintf("%s (epoch %d)", st.desc, epoch))
	}
	e.notifyTopology(TopologyChange{
		Cycle: cyc, Epoch: epoch, Nodes: st.topo.plan.Len(),
		Ops: st.ops, Desc: st.desc, Applied: true,
	})
}

// migrateStates runs the new plan's Migrate hooks with the state of the
// node each one descends from in the old plan (nil for fresh nodes).
// Runs on the cycle thread after scheduler adoption, before the new
// plan's first cycle.
func migrateStates(oldPlan, newPlan *graph.Plan, r *graph.Remap) {
	for i, fn := range newPlan.Migrate {
		if fn == nil {
			continue
		}
		var prev any
		if src := r.StateSrc[i]; src >= 0 && int(src) < len(oldPlan.States) {
			prev = oldPlan.States[src]
		}
		fn(prev)
	}
}

// recordEdit publishes one edit outcome for LastEdit / Snapshot readers.
func (e *Engine) recordEdit(o EditOutcome) { e.lastEdit.Store(&o) }

// notifyTopology fires the OnTopology hook when installed.
func (e *Engine) notifyTopology(tc TopologyChange) {
	if e.cfg.Hooks.OnTopology != nil {
		e.cfg.Hooks.OnTopology(tc)
	}
}
