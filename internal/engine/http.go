package engine

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"djstar/internal/obs"
	"djstar/internal/telemetry"
)

// DebugServer is the optional live-observability HTTP endpoint
// (djstar/djbench -http): net/http/pprof under /debug/pprof/, plus
// JSON views of the engine Snapshot, the latest critical path and the
// latest sampled schedule realization (as Chrome trace_event JSON).
// It reads engine state through Snapshot/Collector only, so serving
// never touches the audio path.
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// StartDebugServer listens on addr (e.g. ":6060") and serves:
//
//	/debug/pprof/     – the standard pprof index and profiles
//	/api/snapshot     – engine.Snapshot JSON (versioned)
//	/api/critpath     – the measured critical path JSON
//	/api/trace        – latest sampled cycles as Chrome trace JSON
//	/api/admission    – schedulability gate status JSON (verdict, bound)
//	/api/edit         – POST {"patch":"<spec>"}: stage a live graph edit
//	/metrics          – telemetry in OpenMetrics/Prometheus text format
//	/api/slo          – deadline-miss budget status JSON
//
// snapshot supplies the engine view per request; for a multi-session
// process pass a closure over the session of interest.
func StartDebugServer(addr string, e *Engine) (*DebugServer, error) {
	if e == nil {
		return nil, fmt.Errorf("engine: debug server needs an engine")
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/api/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, e.Snapshot())
	})
	mux.HandleFunc("/api/critpath", func(w http.ResponseWriter, _ *http.Request) {
		ps, ok := e.CriticalPath()
		if !ok {
			http.Error(w, `{"error":"no observability data yet"}`, http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, ps)
	})
	mux.HandleFunc("/api/trace", func(w http.ResponseWriter, _ *http.Request) {
		// One topology load keeps the plan and collector from one epoch.
		t := e.topo.Load()
		if t.col == nil {
			http.Error(w, `{"error":"observability disabled"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = obs.WriteChromeTrace(w, t.plan, t.col.Traces())
	})
	mux.HandleFunc("/api/admission", func(w http.ResponseWriter, _ *http.Request) {
		st := e.AdmissionState()
		if st == nil {
			http.Error(w, `{"error":"admission gate disabled"}`, http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("/api/edit", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, `{"error":"POST only"}`, http.StatusMethodNotAllowed)
			return
		}
		var req struct {
			Patch string `json:"patch"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Patch == "" {
			http.Error(w, `{"error":"body must be {\"patch\":\"<spec>\"}"}`, http.StatusBadRequest)
			return
		}
		type editResp struct {
			OK     bool   `json:"ok"`
			Staged bool   `json:"staged"`
			Epoch  uint64 `json:"epoch"`
			Error  string `json:"error,omitempty"`
		}
		if err := e.ApplyPatch(req.Patch); err != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusUnprocessableEntity)
			_ = json.NewEncoder(w).Encode(editResp{Epoch: e.PlanEpoch(), Error: err.Error()})
			return
		}
		// The edit is staged; adoption happens at the next cycle boundary
		// (watch plan_epoch in /api/snapshot).
		writeJSON(w, editResp{OK: true, Staged: true, Epoch: e.PlanEpoch()})
	})
	if tel := e.Telemetry(); tel != nil {
		reg := telemetry.NewRegistry(tel)
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/api/slo", reg.Handler())
	} else {
		disabled := func(w http.ResponseWriter, _ *http.Request) {
			http.Error(w, `{"error":"telemetry disabled"}`, http.StatusServiceUnavailable)
		}
		mux.HandleFunc("/metrics", disabled)
		mux.HandleFunc("/api/slo", disabled)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &DebugServer{
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:  ln,
	}
	go func() { _ = d.srv.Serve(ln) }()
	return d, nil
}

// Addr returns the bound listen address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the server down.
func (d *DebugServer) Close() error { return d.srv.Close() }

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
