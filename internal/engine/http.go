package engine

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"djstar/internal/apiv1"
	"djstar/internal/obs"
	"djstar/internal/telemetry"
)

// DebugServer is the optional live-observability HTTP endpoint
// (djstar/djbench -http): net/http/pprof under /debug/pprof/, plus the
// versioned /v1 resource API over the engine's one session. It reads
// engine state through Snapshot/Collector only, so serving never
// touches the audio path.
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// StartDebugServer listens on addr (e.g. ":6060") and serves:
//
//	/debug/pprof/                – the standard pprof index and profiles
//	GET  /v1/sessions            – list (always exactly one session here)
//	GET  /v1/sessions/{id}           – session summary
//	GET  /v1/sessions/{id}/snapshot  – full engine.Snapshot JSON (versioned)
//	GET  /v1/sessions/{id}/critpath  – measured critical path JSON
//	GET  /v1/sessions/{id}/trace     – sampled cycles as Chrome trace JSON
//	GET  /v1/sessions/{id}/slo       – deadline-miss budget status JSON
//	POST /v1/sessions/{id}/edits     – stage a live graph edit {"patch":...}
//	POST /v1/sessions/{id}/retune    – live knobs {"load_factor":...}
//	/metrics                     – telemetry in OpenMetrics text format
//
// {id} must be the engine's session ID (GET /v1/sessions to discover
// it); anything else is 404 — the path names a resource, and this
// server hosts exactly one.
//
// Deprecated flat aliases remain for one release and answer with a
// "Deprecation: true" header plus a successor Link: /api/snapshot,
// /api/critpath, /api/trace, /api/admission, /api/edit, /api/slo.
func StartDebugServer(addr string, e *Engine) (*DebugServer, error) {
	if e == nil {
		return nil, fmt.Errorf("engine: debug server needs an engine")
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	// checkID 404s requests addressing a session this server does not
	// host. Returns false after writing the error.
	checkID := func(w http.ResponseWriter, r *http.Request) bool {
		if id := r.PathValue("id"); id != e.SessionID() {
			writeJSONStatus(w, http.StatusNotFound,
				apiv1.Error{Error: fmt.Sprintf("no session %q (this server hosts session %q)", id, e.SessionID())})
			return false
		}
		return true
	}

	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, apiv1.SessionList{Sessions: []apiv1.Session{V1Session(e)}})
	})
	mux.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if checkID(w, r) {
			writeJSON(w, V1Session(e))
		}
	})
	handleSnapshot := func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, e.Snapshot())
	}
	handleCritpath := func(w http.ResponseWriter, _ *http.Request) {
		ps, ok := e.CriticalPath()
		if !ok {
			writeJSONStatus(w, http.StatusServiceUnavailable, apiv1.Error{Error: "no observability data yet"})
			return
		}
		writeJSON(w, ps)
	}
	handleTrace := func(w http.ResponseWriter, _ *http.Request) {
		// One topology load keeps the plan and collector from one epoch.
		t := e.topo.Load()
		if t.col == nil {
			writeJSONStatus(w, http.StatusServiceUnavailable, apiv1.Error{Error: "observability disabled"})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = obs.WriteChromeTrace(w, t.plan, t.col.Traces())
	}
	handleEdit := func(w http.ResponseWriter, r *http.Request) {
		var req apiv1.EditRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Patch == "" {
			writeJSONStatus(w, http.StatusBadRequest, apiv1.Error{Error: `body must be {"patch":"<spec>"}`})
			return
		}
		if err := e.ApplyPatch(req.Patch); err != nil {
			writeJSONStatus(w, http.StatusUnprocessableEntity,
				apiv1.EditResponse{Epoch: e.PlanEpoch(), Error: err.Error()})
			return
		}
		// The edit is staged; adoption happens at the next cycle boundary
		// (watch plan_epoch in the snapshot).
		writeJSON(w, apiv1.EditResponse{OK: true, Staged: true, Epoch: e.PlanEpoch()})
	}
	mux.HandleFunc("GET /v1/sessions/{id}/snapshot", guard(checkID, handleSnapshot))
	mux.HandleFunc("GET /v1/sessions/{id}/critpath", guard(checkID, handleCritpath))
	mux.HandleFunc("GET /v1/sessions/{id}/trace", guard(checkID, handleTrace))
	mux.HandleFunc("POST /v1/sessions/{id}/edits", guard(checkID, handleEdit))
	mux.HandleFunc("POST /v1/sessions/{id}/retune", guard(checkID, func(w http.ResponseWriter, r *http.Request) {
		RetuneHandler(e, w, r)
	}))

	handleSLO := func(w http.ResponseWriter, _ *http.Request) {
		writeJSONStatus(w, http.StatusServiceUnavailable, apiv1.Error{Error: "telemetry disabled"})
	}
	if tel := e.Telemetry(); tel != nil {
		reg := telemetry.NewRegistry(tel)
		mux.Handle("/metrics", reg.Handler())
		h := reg.Handler()
		handleSLO = func(w http.ResponseWriter, r *http.Request) { h.ServeHTTP(w, r) }
	} else {
		mux.HandleFunc("/metrics", handleSLO)
	}
	mux.HandleFunc("GET /v1/sessions/{id}/slo", guard(checkID, handleSLO))

	// Legacy flat endpoints: thin shims over the /v1 handlers, kept for
	// one deprecation cycle so existing scripts/dashboards keep working.
	mux.HandleFunc("GET /api/snapshot", deprecated("/v1/sessions/{id}/snapshot", handleSnapshot))
	mux.HandleFunc("GET /api/critpath", deprecated("/v1/sessions/{id}/critpath", handleCritpath))
	mux.HandleFunc("GET /api/trace", deprecated("/v1/sessions/{id}/trace", handleTrace))
	mux.HandleFunc("GET /api/admission", deprecated("/v1/sessions/{id}/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		st := e.AdmissionState()
		if st == nil {
			writeJSONStatus(w, http.StatusServiceUnavailable, apiv1.Error{Error: "admission gate disabled"})
			return
		}
		writeJSON(w, st)
	}))
	mux.HandleFunc("POST /api/edit", deprecated("/v1/sessions/{id}/edits", handleEdit))
	mux.HandleFunc("GET /api/slo", deprecated("/v1/sessions/{id}/slo", handleSLO))

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &DebugServer{
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:  ln,
	}
	go func() { _ = d.srv.Serve(ln) }()
	return d, nil
}

// V1Session assembles the /v1 session summary for one engine. Fleet
// servers use it too, filling in the shard afterwards.
func V1Session(e *Engine) apiv1.Session {
	snap := e.Snapshot()
	s := apiv1.Session{
		ID:        snap.SessionID,
		Shard:     -1,
		Strategy:  snap.Strategy,
		Threads:   snap.Threads,
		Cycles:    snap.Cycles,
		PlanEpoch: snap.PlanEpoch,
		APCMeanMS: snap.APCMeanMS,
		MissRate:  snap.MissRate,
		GovLevel:  snap.Health.Level.String(),
		SLO:       snap.SLO,
	}
	if sh, err := strconv.Atoi(snap.Shard); err == nil {
		s.Shard = sh
	}
	if a := snap.Admission; a != nil {
		s.Verdict = a.Verdict
		if a.Report != nil {
			s.BoundUS = a.Report.BoundUS
			s.HeadroomUS = a.Report.HeadroomUS
		}
	}
	return s
}

// RetuneHandler applies a /v1 retune request to one engine — shared by
// the single-engine debug server and the fleet control plane.
func RetuneHandler(e *Engine, w http.ResponseWriter, r *http.Request) {
	var req apiv1.RetuneRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSONStatus(w, http.StatusBadRequest, apiv1.Error{Error: "malformed retune body: " + err.Error()})
		return
	}
	if req.LoadFactor != nil {
		if *req.LoadFactor <= 0 {
			writeJSONStatus(w, http.StatusUnprocessableEntity, apiv1.Error{Error: "load_factor must be > 0"})
			return
		}
		e.SetLoadFactor(*req.LoadFactor)
	}
	for d, speed := range req.TurntableSpeed {
		e.SetTurntableSpeed(d, speed)
	}
	writeJSON(w, apiv1.RetuneResponse{OK: true, LoadFactor: e.LoadFactor()})
}

// guard chains the {id} check in front of a handler.
func guard(check func(http.ResponseWriter, *http.Request) bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if check(w, r) {
			h(w, r)
		}
	}
}

// deprecated marks a legacy endpoint per RFC 9745 (Deprecation header)
// with a Link to its /v1 successor, then serves the same data.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		h(w, r)
	}
}

// Addr returns the bound listen address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the server down.
func (d *DebugServer) Close() error { return d.srv.Close() }

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
