// Package faults provides seeded, deterministic fault injection for the
// DJ Star runtime. The fault-tolerance claim of the engine — a panicking
// or stalling DSP node is contained, quarantined and degraded around
// instead of taking the process down — is only testable if failures can
// be scripted cycle-reproducibly. An Injector wraps node run functions
// and, driven by a per-cycle counter the session advances, fires the
// configured faults at exact (node, cycle) coordinates:
//
//	panic  — the node panics before doing any work (a crashed kernel)
//	stall  — the node busy-spins for a duration (a wedged loop), long
//	         enough to trip the engine's stall watchdog
//	slow   — the node takes an extra fixed delay each armed cycle (a
//	         degraded kernel, for governor tests)
//	jitter — the node takes a random extra delay with probability Prob,
//	         derived deterministically from (seed, node, cycle)
//
// The package has no dependencies inside the repository, so both the
// graph builder (production wiring via graph.Config) and the scheduler
// tests (wrapping raw plan functions) can use it.
package faults

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Kind selects the failure mode of a Spec.
type Kind int

const (
	// KindPanic makes the node panic with an Injected value.
	KindPanic Kind = iota
	// KindStall busy-spins inside the node for Delay.
	KindStall
	// KindSlow adds Delay of busy work to every armed cycle.
	KindSlow
	// KindJitter adds up to Delay of busy work with probability Prob.
	KindJitter
)

// String returns the spec-grammar name of the kind.
func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindStall:
		return "stall"
	case KindSlow:
		return "slow"
	case KindJitter:
		return "jitter"
	default:
		return "unknown"
	}
}

// NodeWildcard matches every node name.
const NodeWildcard = "*"

// Spec is one scripted fault.
type Spec struct {
	// Kind is the failure mode.
	Kind Kind
	// Node is the target node name, or NodeWildcard for all nodes.
	Node string
	// Cycle is the first armed cycle (1-based: the first BeginCycle call
	// starts cycle 1). Cycle 0 means armed from the very first cycle.
	Cycle uint64
	// Count is how many consecutive cycles the fault stays armed
	// (0 = one cycle).
	Count uint64
	// Delay is the stall/slow/jitter magnitude.
	Delay time.Duration
	// Prob is the per-(node, cycle) firing probability for KindJitter
	// (0 = always fire while armed).
	Prob float64
}

// armed reports whether the spec fires on the given cycle.
func (sp *Spec) armed(cycle uint64) bool {
	if cycle < sp.Cycle {
		return false
	}
	n := sp.Count
	if n == 0 {
		n = 1
	}
	return cycle-sp.Cycle < n
}

// String renders the spec in the Parse grammar.
func (sp Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:%s@%d", sp.Kind, sp.Node, sp.Cycle)
	if sp.Count > 1 {
		fmt.Fprintf(&b, "x%d", sp.Count)
	}
	if sp.Delay > 0 {
		fmt.Fprintf(&b, ":%s", sp.Delay)
	}
	if sp.Prob > 0 {
		fmt.Fprintf(&b, "~%g", sp.Prob)
	}
	return b.String()
}

// Injected is the panic value of an injected node panic, so recovery
// paths and tests can tell scripted faults from genuine bugs.
type Injected struct {
	Node  string
	Cycle uint64
}

// Error makes Injected usable as an error value too.
func (i Injected) Error() string {
	return fmt.Sprintf("faults: injected panic in %s at cycle %d", i.Node, i.Cycle)
}

// String implements fmt.Stringer.
func (i Injected) String() string { return i.Error() }

// Stats are the cumulative injection counters.
type Stats struct {
	Panics  int64
	Stalls  int64
	Slows   int64
	Jitters int64
}

// Injector fires the configured specs as wrapped nodes execute. It is
// safe for concurrent use from scheduler workers; BeginCycle must be
// called from the (single) cycle driver.
type Injector struct {
	seed  uint64
	specs []Spec
	cycle atomic.Uint64

	panics  atomic.Int64
	stalls  atomic.Int64
	slows   atomic.Int64
	jitters atomic.Int64
}

// New returns an injector firing the given specs. The seed drives the
// jitter randomness; runs with equal seeds and specs inject identically.
func New(seed uint64, specs ...Spec) *Injector {
	return &Injector{seed: seed, specs: append([]Spec(nil), specs...)}
}

// BeginCycle advances the injector's cycle counter; the session calls it
// once per audio processing cycle, before graph execution.
func (in *Injector) BeginCycle() { in.cycle.Add(1) }

// Cycle returns the current 1-based cycle number.
func (in *Injector) Cycle() uint64 { return in.cycle.Load() }

// Specs returns the configured specs (do not modify).
func (in *Injector) Specs() []Spec { return in.specs }

// Stats returns the cumulative injection counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Panics:  in.panics.Load(),
		Stalls:  in.stalls.Load(),
		Slows:   in.slows.Load(),
		Jitters: in.jitters.Load(),
	}
}

// Wrap instruments a node run function with this injector. Nodes no spec
// targets are returned unchanged, so an injector only costs the nodes it
// can actually fault.
func (in *Injector) Wrap(node string, run func()) func() {
	var mine []Spec
	for _, sp := range in.specs {
		if sp.Node == node || sp.Node == NodeWildcard {
			mine = append(mine, sp)
		}
	}
	if len(mine) == 0 {
		return run
	}
	return func() {
		cycle := in.cycle.Load()
		for i := range mine {
			sp := &mine[i]
			if !sp.armed(cycle) {
				continue
			}
			switch sp.Kind {
			case KindStall:
				in.stalls.Add(1)
				spinFor(sp.Delay)
			case KindSlow:
				in.slows.Add(1)
				spinFor(sp.Delay)
			case KindJitter:
				if sp.Prob <= 0 || in.roll(node, cycle, uint64(i)) < sp.Prob {
					in.jitters.Add(1)
					frac := in.roll(node, cycle, uint64(i)+0x9E37)
					spinFor(time.Duration(float64(sp.Delay) * frac))
				}
			case KindPanic:
				in.panics.Add(1)
				panic(Injected{Node: node, Cycle: cycle})
			}
		}
		run()
	}
}

// roll returns a deterministic pseudo-random float64 in [0, 1) for the
// (seed, node, cycle, salt) coordinate.
func (in *Injector) roll(node string, cycle, salt uint64) float64 {
	h := in.seed ^ 0x9E3779B97F4A7C15
	for i := 0; i < len(node); i++ {
		h = (h ^ uint64(node[i])) * 0x100000001B3
	}
	h ^= cycle * 0xBF58476D1CE4E5B9
	h ^= salt * 0x94D049BB133111EB
	// splitmix64 finalizer
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return float64(h>>11) / float64(1<<53)
}

// spinFor burns CPU for d, like a wedged or overrunning kernel would —
// it keeps the worker's OS thread busy rather than yielding it, which is
// the failure mode the stall watchdog exists for.
func spinFor(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

// Parse reads a comma-separated fault script, one spec per entry:
//
//	kind:node@cycle[xCount][:duration][~prob]
//
// Examples:
//
//	panic:FXA2@100x3            panic in FXA2 on cycles 100..102
//	stall:Mixer@5000:150ms      one 150 ms stall in Mixer at cycle 5000
//	slow:SPA1@1x1000:100us      100 µs extra in SPA1 for 1000 cycles
//	jitter:*@1x10000:50us~0.01  ≤50 µs on 1% of all node runs
func Parse(script string) ([]Spec, error) {
	var specs []Spec
	for _, entry := range strings.Split(script, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		sp, err := parseOne(entry)
		if err != nil {
			return nil, err
		}
		specs = append(specs, sp)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("faults: empty fault script")
	}
	return specs, nil
}

// MustParse is Parse that panics on error (for tests and examples).
func MustParse(script string) []Spec {
	specs, err := Parse(script)
	if err != nil {
		panic(err)
	}
	return specs
}

func parseOne(entry string) (Spec, error) {
	var sp Spec
	kind, rest, ok := strings.Cut(entry, ":")
	if !ok {
		return sp, fmt.Errorf("faults: %q: want kind:node@cycle[xCount][:duration][~prob]", entry)
	}
	switch kind {
	case "panic":
		sp.Kind = KindPanic
	case "stall":
		sp.Kind = KindStall
	case "slow":
		sp.Kind = KindSlow
	case "jitter":
		sp.Kind = KindJitter
	default:
		return sp, fmt.Errorf("faults: %q: unknown kind %q (want panic, stall, slow, jitter)", entry, kind)
	}
	if rest, ok = cutTail(rest, "~", func(s string) error {
		p, err := strconv.ParseFloat(s, 64)
		if err != nil || p < 0 || p > 1 {
			return fmt.Errorf("probability %q not in [0,1]", s)
		}
		sp.Prob = p
		return nil
	}); !ok {
		return sp, fmt.Errorf("faults: %q: bad probability", entry)
	}
	node, at, ok := strings.Cut(rest, "@")
	if !ok || node == "" {
		return sp, fmt.Errorf("faults: %q: missing node@cycle", entry)
	}
	sp.Node = node
	// Optional :duration suffix after the cycle spec.
	if at, ok = cutTail(at, ":", func(s string) error {
		d, err := time.ParseDuration(s)
		if err != nil || d < 0 {
			return fmt.Errorf("duration %q", s)
		}
		sp.Delay = d
		return nil
	}); !ok {
		return sp, fmt.Errorf("faults: %q: bad duration", entry)
	}
	cycleStr, countStr, hasCount := strings.Cut(at, "x")
	cycle, err := strconv.ParseUint(cycleStr, 10, 64)
	if err != nil {
		return sp, fmt.Errorf("faults: %q: bad cycle %q", entry, cycleStr)
	}
	sp.Cycle = cycle
	if hasCount {
		count, err := strconv.ParseUint(countStr, 10, 64)
		if err != nil || count == 0 {
			return sp, fmt.Errorf("faults: %q: bad count %q", entry, countStr)
		}
		sp.Count = count
	}
	if (sp.Kind == KindStall || sp.Kind == KindSlow || sp.Kind == KindJitter) && sp.Delay <= 0 {
		return sp, fmt.Errorf("faults: %q: %s needs a :duration", entry, sp.Kind)
	}
	return sp, nil
}

// cutTail splits off an optional "sep<value>" suffix and parses it.
func cutTail(s, sep string, parse func(string) error) (string, bool) {
	head, tail, found := strings.Cut(s, sep)
	if !found {
		return s, true
	}
	if err := parse(tail); err != nil {
		return head, false
	}
	return head, true
}
