package faults

import (
	"testing"
	"time"
)

func TestPanicInjectionDeterministic(t *testing.T) {
	run := func() []uint64 {
		in := New(7, Spec{Kind: KindPanic, Node: "FX", Cycle: 3, Count: 2})
		var ran []uint64
		wrapped := in.Wrap("FX", func() { ran = append(ran, in.Cycle()) })
		for c := 1; c <= 6; c++ {
			in.BeginCycle()
			func() {
				defer func() {
					if r := recover(); r != nil {
						inj, ok := r.(Injected)
						if !ok {
							t.Fatalf("cycle %d: panic value %v, want Injected", c, r)
						}
						if inj.Node != "FX" || inj.Cycle != uint64(c) {
							t.Fatalf("bad Injected %+v at cycle %d", inj, c)
						}
					}
				}()
				wrapped()
			}()
		}
		return ran
	}
	a, b := run(), run()
	want := []uint64{1, 2, 5, 6} // cycles 3 and 4 panic
	if len(a) != len(want) {
		t.Fatalf("ran on cycles %v, want %v", a, want)
	}
	for i := range want {
		if a[i] != want[i] || b[i] != want[i] {
			t.Fatalf("runs diverge or mis-armed: %v / %v, want %v", a, b, want)
		}
	}
}

func TestWrapUntargetedNodeUnchanged(t *testing.T) {
	in := New(1, Spec{Kind: KindPanic, Node: "FX", Cycle: 1})
	base := func() {}
	if got := in.Wrap("Mixer", base); got == nil {
		t.Fatal("nil wrap")
	} else {
		in.BeginCycle()
		got() // must not panic
	}
	if in.Stats().Panics != 0 {
		t.Fatal("untargeted node injected")
	}
}

func TestStallAndSlowBurnTime(t *testing.T) {
	in := New(1,
		Spec{Kind: KindStall, Node: "A", Cycle: 1, Delay: 5 * time.Millisecond},
		Spec{Kind: KindSlow, Node: "A", Cycle: 2, Count: 2, Delay: 2 * time.Millisecond},
	)
	wrapped := in.Wrap("A", func() {})
	in.BeginCycle()
	start := time.Now()
	wrapped()
	if el := time.Since(start); el < 4*time.Millisecond {
		t.Fatalf("stall burned only %v", el)
	}
	in.BeginCycle()
	start = time.Now()
	wrapped()
	if el := time.Since(start); el < 1500*time.Microsecond {
		t.Fatalf("slow burned only %v", el)
	}
	st := in.Stats()
	if st.Stalls != 1 || st.Slows != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestJitterDeterministicAcrossRuns(t *testing.T) {
	fire := func(seed uint64) []uint64 {
		in := New(seed, Spec{Kind: KindJitter, Node: NodeWildcard, Cycle: 1, Count: 200,
			Delay: time.Microsecond, Prob: 0.3})
		wrapped := in.Wrap("N", func() {})
		var fired []uint64
		for c := 0; c < 200; c++ {
			in.BeginCycle()
			before := in.Stats().Jitters
			wrapped()
			if in.Stats().Jitters != before {
				fired = append(fired, in.Cycle())
			}
		}
		return fired
	}
	a, b := fire(42), fire(42)
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("jitter fired %d/200 times, want a strict subset", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed diverged: %d vs %d firings", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at firing %d", i)
		}
	}
	if c := fire(43); len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical jitter")
		}
	}
}

func TestParse(t *testing.T) {
	specs, err := Parse("panic:FXA2@100x3, stall:Mixer@5000:150ms, jitter:*@1x10000:50us~0.01")
	if err != nil {
		t.Fatal(err)
	}
	want := []Spec{
		{Kind: KindPanic, Node: "FXA2", Cycle: 100, Count: 3},
		{Kind: KindStall, Node: "Mixer", Cycle: 5000, Delay: 150 * time.Millisecond},
		{Kind: KindJitter, Node: "*", Cycle: 1, Count: 10000, Delay: 50 * time.Microsecond, Prob: 0.01},
	}
	if len(specs) != len(want) {
		t.Fatalf("got %d specs, want %d", len(specs), len(want))
	}
	for i := range want {
		if specs[i] != want[i] {
			t.Fatalf("spec %d = %+v, want %+v", i, specs[i], want[i])
		}
	}
	// Round trip through String.
	again, err := Parse(specs[0].String() + "," + specs[1].String() + "," + specs[2].String())
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if again[i] != want[i] {
			t.Fatalf("round-trip spec %d = %+v, want %+v", i, again[i], want[i])
		}
	}
	for _, bad := range []string{
		"", "panic", "explode:FX@1", "panic:FX", "panic:FX@x", "stall:FX@1",
		"slow:FX@1", "panic:FX@1x0", "jitter:FX@1:1ms~2",
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}

func TestArmedWindow(t *testing.T) {
	sp := Spec{Cycle: 10, Count: 3}
	for c, want := range map[uint64]bool{9: false, 10: true, 12: true, 13: false} {
		if sp.armed(c) != want {
			t.Fatalf("armed(%d) = %v", c, !want)
		}
	}
	one := Spec{Cycle: 5}
	if !one.armed(5) || one.armed(6) {
		t.Fatal("Count=0 must arm exactly one cycle")
	}
}
