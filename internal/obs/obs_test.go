package obs

import (
	"fmt"
	"testing"

	"djstar/internal/graph"
	"djstar/internal/sched"
)

// chainPlan compiles a 4-node chain a→b→c→d.
func chainPlan(t testing.TB) *graph.Plan {
	t.Helper()
	g := graph.New()
	prev := -1
	for i := 0; i < 4; i++ {
		id := g.AddNode(fmt.Sprintf("n%d", i), graph.SectionDeckA, nil)
		if prev >= 0 {
			if err := g.AddEdge(prev, id); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	p, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// feed pushes one synthetic cycle into the collector: node i runs on
// worker i%workers over [base+starts[i], base+ends[i]] (µs offsets).
func feed(c *Collector, workers int, startsUS, endsUS []int64) {
	c.BeginCycle()
	base := c.base
	for i := range startsUS {
		c.Record(int32(i), int32(i%workers), base+startsUS[i]*1e3, base+endsUS[i]*1e3)
	}
	c.EndCycle()
}

func TestCollectorNodeStats(t *testing.T) {
	p := chainPlan(t)
	c := NewCollector(p, Config{Workers: 2, TraceEvery: -1})

	// Three identical cycles: node i runs [10*i, 10*i+5] µs — back to
	// back along the chain with a 5 µs wait after each predecessor.
	starts := []int64{0, 10, 20, 30}
	ends := []int64{5, 15, 25, 35}
	for cyc := 0; cyc < 3; cyc++ {
		feed(c, 2, starts, ends)
	}

	if got := c.Cycles(); got != 3 {
		t.Fatalf("Cycles = %d, want 3", got)
	}
	stats := c.NodeStats()
	if len(stats) != p.Len() {
		t.Fatalf("%d node stats, want %d", len(stats), p.Len())
	}
	for i, s := range stats {
		if s.Node != int32(i) || s.Name != p.Names[i] {
			t.Fatalf("stat %d misidentified: %+v", i, s)
		}
		if s.Count != 3 {
			t.Fatalf("node %d count = %d, want 3", i, s.Count)
		}
		for what, got := range map[string]float64{
			"min": s.MinUS, "mean": s.MeanUS, "max": s.MaxUS, "p99": s.P99US,
		} {
			if got != 5 {
				t.Fatalf("node %d %s = %v µs, want 5", i, what, got)
			}
		}
	}
	// Source node: ready at cycle base, started at 0 → no wait. Chain
	// nodes: predecessor ends at 10i-5, start at 10i → 5 µs wait.
	if stats[0].WaitMeanUS != 0 {
		t.Fatalf("source wait = %v, want 0", stats[0].WaitMeanUS)
	}
	for i := 1; i < len(stats); i++ {
		if stats[i].WaitMeanUS != 5 {
			t.Fatalf("node %d wait = %v µs, want 5", i, stats[i].WaitMeanUS)
		}
	}

	means := c.NodeMeansUS()
	for i, m := range means {
		if m != 5 {
			t.Fatalf("mean[%d] = %v, want 5", i, m)
		}
	}
}

func TestCollectorMinMax(t *testing.T) {
	p := chainPlan(t)
	c := NewCollector(p, Config{Workers: 1, TraceEvery: -1})
	feed(c, 1, []int64{0, 10, 20, 30}, []int64{2, 15, 25, 35}) // n0: 2 µs
	feed(c, 1, []int64{0, 10, 20, 30}, []int64{8, 15, 25, 35}) // n0: 8 µs
	s := c.NodeStats()[0]
	if s.MinUS != 2 || s.MaxUS != 8 || s.MeanUS != 5 {
		t.Fatalf("min/mean/max = %v/%v/%v, want 2/5/8", s.MinUS, s.MeanUS, s.MaxUS)
	}
}

func TestCollectorTraceRing(t *testing.T) {
	p := chainPlan(t)
	c := NewCollector(p, Config{Workers: 2, TraceEvery: 2, TraceRing: 3})
	var ct CycleTrace
	if c.LatestTrace(&ct) {
		t.Fatal("trace before any cycle")
	}
	starts := []int64{0, 10, 20, 30}
	ends := []int64{5, 15, 25, 35}
	for cyc := 0; cyc < 10; cyc++ {
		feed(c, 2, starts, ends)
	}
	// 10 cycles at TraceEvery=2 → 5 samples (cycles 2,4,6,8,10).
	if got := c.TraceSeq(); got != 5 {
		t.Fatalf("TraceSeq = %d, want 5", got)
	}
	if !c.LatestTrace(&ct) {
		t.Fatal("no latest trace")
	}
	if ct.Cycle != 10 || ct.Workers != 2 {
		t.Fatalf("latest trace cycle/workers = %d/%d, want 10/2", ct.Cycle, ct.Workers)
	}
	if ct.MakespanNS() != 35*1e3 {
		t.Fatalf("makespan = %d ns, want 35000", ct.MakespanNS())
	}
	for i := range starts {
		if ct.StartNS[i] != starts[i]*1e3 || ct.EndNS[i] != ends[i]*1e3 {
			t.Fatalf("node %d window [%d,%d], want [%d,%d]",
				i, ct.StartNS[i], ct.EndNS[i], starts[i]*1e3, ends[i]*1e3)
		}
		if ct.Worker[i] != int32(i%2) {
			t.Fatalf("node %d worker %d, want %d", i, ct.Worker[i], i%2)
		}
	}
	// Ring depth 3 → the export holds the 3 newest samples, oldest first.
	traces := c.Traces()
	if len(traces) != 3 {
		t.Fatalf("%d traces, want 3", len(traces))
	}
	for i, want := range []uint64{6, 8, 10} {
		if traces[i].Cycle != want {
			t.Fatalf("trace %d from cycle %d, want %d", i, traces[i].Cycle, want)
		}
	}

	// Gantt conversion drops nothing here (every node ran).
	tasks := ct.GanttTasks(p.Names)
	if len(tasks) != p.Len() {
		t.Fatalf("%d gantt tasks, want %d", len(tasks), p.Len())
	}
	if tasks[1].Start != 10 || tasks[1].End != 15 {
		t.Fatalf("task 1 window [%v,%v] µs, want [10,15]", tasks[1].Start, tasks[1].End)
	}
}

func TestCollectorTracesDisabled(t *testing.T) {
	p := chainPlan(t)
	c := NewCollector(p, Config{Workers: 1, TraceEvery: -1})
	feed(c, 1, []int64{0, 1, 2, 3}, []int64{1, 2, 3, 4})
	var ct CycleTrace
	if c.LatestTrace(&ct) {
		t.Fatal("trace captured with TraceEvery < 0")
	}
	if got := c.Traces(); len(got) != 0 {
		t.Fatalf("%d traces with capture disabled", len(got))
	}
}

// TestCollectorHotPathNoAlloc pins the collector's steady-state contract:
// the full observer cycle (BeginCycle, one Record per node, EndCycle,
// including a sampled-trace cycle) allocates nothing.
func TestCollectorHotPathNoAlloc(t *testing.T) {
	p := chainPlan(t)
	c := NewCollector(p, Config{Workers: 2, TraceEvery: 1, TraceRing: 2})
	starts := []int64{0, 10, 20, 30}
	ends := []int64{5, 15, 25, 35}
	feed(c, 2, starts, ends) // warm up
	allocs := testing.AllocsPerRun(100, func() { feed(c, 2, starts, ends) })
	if allocs != 0 {
		t.Fatalf("observer cycle allocates %v", allocs)
	}
}

// TestCollectorAsObserver wires a collector into a real scheduler and
// checks every node of every cycle lands in the stats.
func TestCollectorAsObserver(t *testing.T) {
	p := randomPlan(t, 25, 0.2, 3)
	c := NewCollector(p, Config{Workers: 3, TraceEvery: 1, TraceRing: 4})
	s, err := sched.New(sched.NameBusyWait, p, sched.Options{Threads: 3, Observer: c})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const cycles = 20
	for i := 0; i < cycles; i++ {
		s.Execute()
	}
	if got := c.Cycles(); got != cycles {
		t.Fatalf("Cycles = %d, want %d", got, cycles)
	}
	for _, st := range c.NodeStats() {
		if st.Count != cycles {
			t.Fatalf("node %s count = %d, want %d", st.Name, st.Count, cycles)
		}
		if st.MaxUS < st.MinUS || st.MeanUS < st.MinUS || st.MeanUS > st.MaxUS {
			t.Fatalf("node %s stats inconsistent: %+v", st.Name, st)
		}
	}
	var ct CycleTrace
	if !c.LatestTrace(&ct) {
		t.Fatal("no trace sampled")
	}
	if ct.MakespanNS() <= 0 {
		t.Fatal("empty makespan")
	}
}
