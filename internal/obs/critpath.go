package obs

import (
	"fmt"
	"strings"

	"djstar/internal/graph"
)

// Critical-path analysis: the longest dependency-weighted path through
// the plan under measured node durations. Its length is the
// infinite-processor makespan (the paper's 295 µs bound for the 67-node
// graph); TotalWork/Length is the average parallelism — the RESCON-style
// resource-unconstrained bound every strategy's measured makespan is
// judged against.

// PathStat describes the critical path of a plan under a set of node
// durations.
type PathStat struct {
	// Nodes is the path's node chain in execution order, Names the
	// corresponding node names.
	Nodes []int32  `json:"nodes"`
	Names []string `json:"names"`
	// LengthUS is the path length — the infinite-processor makespan.
	LengthUS float64 `json:"length_us"`
	// TotalWorkUS is the sum of all node durations.
	TotalWorkUS float64 `json:"total_work_us"`
	// Parallelism is TotalWorkUS / LengthUS, the graph's average
	// parallelism under these durations.
	Parallelism float64 `json:"parallelism"`
}

// CriticalPath computes the longest weighted path through the plan with
// durUS (microseconds, indexed by node ID) as node weights. Zero-weight
// nodes are legal; dependencies still route the path through them.
func CriticalPath(p *graph.Plan, durUS []float64) PathStat {
	n := p.Len()
	finish := make([]float64, n)
	via := make([]int32, n)
	var ps PathStat
	last := int32(-1)
	for _, id := range p.Order {
		via[id] = -1
		start := 0.0
		for _, pr := range p.PredsOf(id) {
			if finish[pr] > start {
				start = finish[pr]
				via[id] = pr
			}
		}
		finish[id] = start + durUS[id]
		ps.TotalWorkUS += durUS[id]
		if last < 0 || finish[id] > finish[last] {
			last = id
		}
	}
	if last >= 0 {
		ps.LengthUS = finish[last]
		for at := last; at >= 0; at = via[at] {
			ps.Nodes = append(ps.Nodes, at)
		}
		// Reverse into execution order.
		for i, j := 0, len(ps.Nodes)-1; i < j; i, j = i+1, j-1 {
			ps.Nodes[i], ps.Nodes[j] = ps.Nodes[j], ps.Nodes[i]
		}
		ps.Names = make([]string, len(ps.Nodes))
		for i, id := range ps.Nodes {
			ps.Names[i] = p.Names[id]
		}
	}
	if ps.LengthUS > 0 {
		ps.Parallelism = ps.TotalWorkUS / ps.LengthUS
	}
	return ps
}

// Bound returns the lower bound on the makespan achievable with the
// given thread count: max(critical path, total work / threads) — the
// RESCON-style resource-constrained bound.
func (ps PathStat) Bound(threads int) float64 {
	if threads < 1 {
		threads = 1
	}
	b := ps.TotalWorkUS / float64(threads)
	if ps.LengthUS > b {
		b = ps.LengthUS
	}
	return b
}

// Efficiency returns Bound(threads)/measuredUS — 1.0 means the measured
// makespan achieves the theoretical bound (the paper reports 99 % for
// BUSY at 4 threads).
func (ps PathStat) Efficiency(measuredUS float64, threads int) float64 {
	if measuredUS <= 0 {
		return 0
	}
	return ps.Bound(threads) / measuredUS
}

// String renders the chain compactly: length, parallelism and the node
// names joined by arrows.
func (ps PathStat) String() string {
	return fmt.Sprintf("critical path %.1f µs, total work %.1f µs, parallelism %.1f: %s",
		ps.LengthUS, ps.TotalWorkUS, ps.Parallelism, strings.Join(ps.Names, " → "))
}
