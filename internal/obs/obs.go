// Package obs is the engine's observability layer: always-on per-node
// timing statistics, schedule-realization capture, and critical-path
// analysis over a compiled task graph.
//
// The paper's headline results are measurements of the schedule itself —
// the 295 µs infinite-processor makespan, the 327 µs simulated BUSY
// schedule, the Fig. 11 realization — so the collector is designed to
// observe every audio processing cycle without perturbing it: each
// worker appends its node executions to a private preallocated shard
// (no atomics, no locks, no allocation on the hot path), and the
// Execute caller merges the shards into the aggregates at cycle end.
// Readers (UI, HTTP endpoint, analyzers) take a mutex that the merge
// holds only briefly, once per cycle, off the node hot path.
package obs

import (
	"sync"

	"djstar/internal/graph"
	"djstar/internal/sched"
)

// Config tunes a Collector. The zero value (plus Workers) selects the
// defaults: a 256-sample p99 window and a trace sample every 32nd cycle
// kept in an 8-deep ring.
type Config struct {
	// Workers is the shard count — the scheduler's Threads(). Required.
	Workers int
	// TraceEvery samples every Kth cycle's full realization into the
	// trace ring (default 32; negative disables trace capture).
	TraceEvery int
	// TraceRing is the number of retained sampled realizations
	// (default 8).
	TraceRing int
	// P99Window is the per-node sample window for the p99 estimate
	// (default 256).
	P99Window int
}

// Defaults for Config fields.
const (
	DefaultTraceEvery = 32
	DefaultTraceRing  = 8
	DefaultP99Window  = 256
)

func (c Config) withDefaults() Config {
	if c.TraceEvery == 0 {
		c.TraceEvery = DefaultTraceEvery
	}
	if c.TraceRing <= 0 {
		c.TraceRing = DefaultTraceRing
	}
	if c.P99Window <= 0 {
		c.P99Window = DefaultP99Window
	}
	return c
}

// shard is one worker's private event buffer for the current cycle.
// Only that worker writes it mid-cycle; the merge reads it at cycle end,
// ordered by the scheduler's completion signaling. The pad keeps the
// write-hot n counters of adjacent shards on separate cache lines.
type shard struct {
	n     int
	node  []int32
	start []int64
	end   []int64
	_     [64]byte
}

// nodeAgg is one node's running aggregate (guarded by Collector.mu).
type nodeAgg struct {
	count   uint64
	sumNS   int64
	minNS   int64
	maxNS   int64
	waitSum int64
	// win is the sliding sample window backing the p99 estimate.
	win  []int64
	wpos int
	wlen int
}

// Collector implements sched.Observer: it captures every cycle's
// schedule realization into per-worker shards and folds them into
// per-node aggregates and a sampled trace ring at cycle end. The
// BeginCycle/Record/EndCycle path is allocation-free.
type Collector struct {
	plan   *graph.Plan
	cfg    Config
	shards []shard

	// Merge scratch, touched only by the EndCycle caller: this cycle's
	// per-node worker assignment and absolute start/end timestamps.
	worker []int32
	start  []int64
	end    []int64
	base   int64

	// mu guards everything below: taken once per cycle by the merge and
	// by snapshot readers, never on the per-node path.
	mu     sync.Mutex
	cycles uint64
	agg    []nodeAgg
	ring   []CycleTrace
	seq    uint64 // sampled traces ever stored
}

var _ sched.Observer = (*Collector)(nil)

// NewCollector sizes a collector for the plan and worker count.
func NewCollector(p *graph.Plan, cfg Config) *Collector {
	cfg = cfg.withDefaults()
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	n := p.Len()
	c := &Collector{
		plan:   p,
		cfg:    cfg,
		shards: make([]shard, cfg.Workers),
		worker: make([]int32, n),
		start:  make([]int64, n),
		end:    make([]int64, n),
		agg:    make([]nodeAgg, n),
	}
	for i := range c.shards {
		c.shards[i].node = make([]int32, n)
		c.shards[i].start = make([]int64, n)
		c.shards[i].end = make([]int64, n)
	}
	for i := range c.agg {
		c.agg[i].minNS = int64(1) << 62
		c.agg[i].win = make([]int64, cfg.P99Window)
	}
	if cfg.TraceEvery > 0 {
		c.ring = make([]CycleTrace, cfg.TraceRing)
		for i := range c.ring {
			c.ring[i] = CycleTrace{
				Worker:  make([]int32, n),
				StartNS: make([]int64, n),
				EndNS:   make([]int64, n),
			}
		}
	}
	return c
}

// BeginCycle implements sched.Observer (Execute caller thread; the
// scheduler guarantees all workers are quiescent).
func (c *Collector) BeginCycle() {
	c.base = sched.NowNanos()
	for i := range c.shards {
		c.shards[i].n = 0
	}
}

// Record implements sched.Observer: worker-private shard append, no
// synchronization, no allocation.
func (c *Collector) Record(node, worker int32, start, end int64) {
	s := &c.shards[worker]
	i := s.n
	if i >= len(s.node) {
		return // cannot happen (every node runs once per cycle); stay safe
	}
	s.node[i] = node
	s.start[i] = start
	s.end[i] = end
	s.n = i + 1
}

// EndCycle implements sched.Observer: merge the shards into the
// aggregates on the Execute caller thread. Allocation-free; the mutex it
// takes is uncontended except against snapshot readers.
func (c *Collector) EndCycle() {
	for i := range c.worker {
		c.worker[i] = -1
	}
	for si := range c.shards {
		sh := &c.shards[si]
		for i := 0; i < sh.n; i++ {
			id := sh.node[i]
			c.worker[id] = int32(si)
			c.start[id] = sh.start[i]
			c.end[id] = sh.end[i]
		}
	}

	c.mu.Lock()
	c.cycles++
	for id := range c.agg {
		if c.worker[id] < 0 {
			continue
		}
		a := &c.agg[id]
		dur := c.end[id] - c.start[id]
		// Wait-before-start: gap between the node becoming runnable (its
		// last predecessor finishing; cycle start for sources) and its
		// actual start — the scheduling + blocking overhead the paper's
		// strategy comparison is about.
		ready := c.base
		for _, pr := range c.plan.PredsOf(int32(id)) {
			if c.worker[pr] >= 0 && c.end[pr] > ready {
				ready = c.end[pr]
			}
		}
		wait := c.start[id] - ready
		if wait < 0 {
			wait = 0
		}
		a.count++
		a.sumNS += dur
		a.waitSum += wait
		if dur < a.minNS {
			a.minNS = dur
		}
		if dur > a.maxNS {
			a.maxNS = dur
		}
		a.win[a.wpos] = dur
		a.wpos = (a.wpos + 1) % len(a.win)
		if a.wlen < len(a.win) {
			a.wlen++
		}
	}
	if c.cfg.TraceEvery > 0 && c.cycles%uint64(c.cfg.TraceEvery) == 0 {
		t := &c.ring[c.seq%uint64(len(c.ring))]
		t.Cycle = c.cycles
		t.BaseNS = c.base
		t.Workers = len(c.shards)
		copy(t.Worker, c.worker)
		for id := range c.worker {
			if c.worker[id] < 0 {
				t.StartNS[id], t.EndNS[id] = 0, 0
				continue
			}
			t.StartNS[id] = c.start[id] - c.base
			t.EndNS[id] = c.end[id] - c.base
		}
		c.seq++
	}
	c.mu.Unlock()
}

// Cycles returns the number of merged cycles.
func (c *Collector) Cycles() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cycles
}

// TraceSeq returns the number of realizations sampled into the trace
// ring so far; a caller polling for fresh traces compares it to the last
// value it saw.
func (c *Collector) TraceSeq() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seq
}

// NodeStat is one node's aggregated timing snapshot.
type NodeStat struct {
	Node  int32  `json:"node"`
	Name  string `json:"name"`
	Count uint64 `json:"count"`
	// Exec-time stats in microseconds.
	MinUS  float64 `json:"min_us"`
	MeanUS float64 `json:"mean_us"`
	MaxUS  float64 `json:"max_us"`
	P99US  float64 `json:"p99_us"`
	// WaitMeanUS is the mean wait-before-start in microseconds.
	WaitMeanUS float64 `json:"wait_mean_us"`
}

// NodeStats returns the per-node aggregates. It allocates (snapshot
// path, not the audio path); the p99 is computed from the node's sample
// window on demand.
func (c *Collector) NodeStats() []NodeStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]NodeStat, 0, len(c.agg))
	scratch := make([]int64, 0, c.cfg.P99Window)
	for id := range c.agg {
		a := &c.agg[id]
		s := NodeStat{Node: int32(id), Name: c.plan.Names[id], Count: a.count}
		if a.count > 0 {
			s.MinUS = float64(a.minNS) / 1e3
			s.MaxUS = float64(a.maxNS) / 1e3
			s.MeanUS = float64(a.sumNS) / float64(a.count) / 1e3
			s.WaitMeanUS = float64(a.waitSum) / float64(a.count) / 1e3
			scratch = append(scratch[:0], a.win[:a.wlen]...)
			s.P99US = float64(percentileNS(scratch, 0.99)) / 1e3
		}
		out = append(out, s)
	}
	return out
}

// NodeMeansUS returns the mean measured duration of every node in
// microseconds, indexed by node ID — the critical-path analyzer's
// weights. Nodes never observed get 0.
func (c *Collector) NodeMeansUS() []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]float64, len(c.agg))
	for id := range c.agg {
		if a := &c.agg[id]; a.count > 0 {
			out[id] = float64(a.sumNS) / float64(a.count) / 1e3
		}
	}
	return out
}

// CostModel exports the collector's per-node mean durations in µs as a
// cost table for plan compilation (graph.Fuse and upward ranks). Nodes
// never observed running report 0 — chain fusion treats them as free. ok
// is false until at least one full cycle has been merged, so callers can
// fall back to static design costs before any measurement exists.
func (c *Collector) CostModel() (costUS []float64, ok bool) {
	c.mu.Lock()
	cycles := c.cycles
	c.mu.Unlock()
	if cycles == 0 {
		return nil, false
	}
	return c.NodeMeansUS(), true
}

// percentileNS returns the q-quantile of the (unsorted, clobbered)
// sample set using an insertion sort — windows are small.
func percentileNS(v []int64, q float64) int64 {
	if len(v) == 0 {
		return 0
	}
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
	idx := int(q * float64(len(v)-1))
	return v[idx]
}

// LatestTrace copies the most recently sampled realization into dst,
// reporting whether one exists. dst's slices are resized as needed, so a
// reused dst makes the copy allocation-free after the first call.
func (c *Collector) LatestTrace(dst *CycleTrace) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.seq == 0 || len(c.ring) == 0 {
		return false
	}
	src := &c.ring[(c.seq-1)%uint64(len(c.ring))]
	copyTrace(dst, src)
	return true
}

// Traces returns copies of every valid ring entry, oldest first.
func (c *Collector) Traces() []CycleTrace {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.seq
	if n > uint64(len(c.ring)) {
		n = uint64(len(c.ring))
	}
	out := make([]CycleTrace, 0, n)
	for i := uint64(0); i < n; i++ {
		src := &c.ring[(c.seq-n+i)%uint64(len(c.ring))]
		var dst CycleTrace
		copyTrace(&dst, src)
		out = append(out, dst)
	}
	return out
}

func copyTrace(dst *CycleTrace, src *CycleTrace) {
	dst.Cycle = src.Cycle
	dst.BaseNS = src.BaseNS
	dst.Workers = src.Workers
	dst.Worker = append(dst.Worker[:0], src.Worker...)
	dst.StartNS = append(dst.StartNS[:0], src.StartNS...)
	dst.EndNS = append(dst.EndNS[:0], src.EndNS...)
}
