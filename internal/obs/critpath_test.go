package obs

import (
	"math"
	"strings"
	"testing"

	"djstar/internal/graph"
)

// diamondPlan builds a diamond with a long arm:
//
//	     ┌→ b(30) ┐
//	a(10)┤        ├→ d(20)
//	     └→ c(5)  ┘
//
// Critical path a→b→d = 60 µs, total work 65 µs.
func diamondPlan(t *testing.T) *graph.Plan {
	t.Helper()
	g := graph.New()
	a := g.AddNode("a", graph.SectionDeckA, nil)
	b := g.AddNode("b", graph.SectionDeckA, nil)
	c := g.AddNode("c", graph.SectionDeckA, nil)
	d := g.AddNode("d", graph.SectionDeckA, nil)
	for _, e := range [][2]int{{a, b}, {a, c}, {b, d}, {c, d}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	p, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCriticalPathDiamond(t *testing.T) {
	p := diamondPlan(t)
	ps := CriticalPath(p, []float64{10, 30, 5, 20})
	if ps.LengthUS != 60 {
		t.Fatalf("length = %v, want 60", ps.LengthUS)
	}
	if ps.TotalWorkUS != 65 {
		t.Fatalf("total work = %v, want 65", ps.TotalWorkUS)
	}
	if want := []string{"a", "b", "d"}; strings.Join(ps.Names, ",") != strings.Join(want, ",") {
		t.Fatalf("path = %v, want %v", ps.Names, want)
	}
	if math.Abs(ps.Parallelism-65.0/60.0) > 1e-12 {
		t.Fatalf("parallelism = %v, want %v", ps.Parallelism, 65.0/60.0)
	}
	if got := ps.String(); !strings.Contains(got, "a → b → d") {
		t.Fatalf("String() = %q, missing chain", got)
	}
}

func TestCriticalPathSwitchesArms(t *testing.T) {
	p := diamondPlan(t)
	// Make the c arm the long one.
	ps := CriticalPath(p, []float64{10, 5, 30, 20})
	if want := "a,c,d"; strings.Join(ps.Names, ",") != want {
		t.Fatalf("path = %v, want %v", ps.Names, want)
	}
	if ps.LengthUS != 60 {
		t.Fatalf("length = %v, want 60", ps.LengthUS)
	}
}

func TestCriticalPathZeroWeights(t *testing.T) {
	p := diamondPlan(t)
	ps := CriticalPath(p, make([]float64, p.Len()))
	if ps.LengthUS != 0 || ps.TotalWorkUS != 0 || ps.Parallelism != 0 {
		t.Fatalf("zero-weight stats: %+v", ps)
	}
	if len(ps.Nodes) == 0 {
		t.Fatal("zero-weight path empty — dependencies should still route it")
	}
}

func TestBoundAndEfficiency(t *testing.T) {
	ps := PathStat{LengthUS: 60, TotalWorkUS: 240}
	// Work-limited below 4 threads, path-limited beyond.
	for threads, want := range map[int]float64{1: 240, 2: 120, 4: 60, 8: 60} {
		if got := ps.Bound(threads); got != want {
			t.Fatalf("Bound(%d) = %v, want %v", threads, got, want)
		}
	}
	if got := ps.Bound(0); got != 240 {
		t.Fatalf("Bound(0) = %v, want 240 (clamped to 1 thread)", got)
	}
	if got := ps.Efficiency(120, 4); got != 0.5 {
		t.Fatalf("Efficiency(120, 4) = %v, want 0.5", got)
	}
	if got := ps.Efficiency(0, 4); got != 0 {
		t.Fatalf("Efficiency(0, 4) = %v, want 0", got)
	}
	// Efficiency of an optimal schedule is 1.
	if got := ps.Efficiency(60, 4); got != 1 {
		t.Fatalf("Efficiency(60, 4) = %v, want 1", got)
	}
}
