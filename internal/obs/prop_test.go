package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"djstar/internal/graph"
	"djstar/internal/sched"
	"djstar/internal/synth"
)

// randomPlan compiles a reproducible random DAG whose nodes are safe to
// re-execute across cycles (graph.RandomDAG's nodes panic on re-run —
// they exist for single-cycle exactly-once property tests).
func randomPlan(t testing.TB, nodes int, edgeProb float64, seed uint64) *graph.Plan {
	t.Helper()
	rng := synth.NewRand(seed)
	g := graph.New()
	for i := 0; i < nodes; i++ {
		g.AddNode(fmt.Sprintf("n%d", i), graph.DeckSection(i%4), func() {})
	}
	for to := 1; to < nodes; to++ {
		for from := 0; from < to; from++ {
			if rng.Float64() < edgeProb {
				if err := g.AddEdge(from, to); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	p, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// spinPlan builds a layered DAG (width parallel chains joined at a sink)
// whose nodes busy-spin for spinUS microseconds — real work with a known
// cost, so schedule-theory invariants can be checked against wall time.
func spinPlan(t testing.TB, width, depth int, spinUS int) *graph.Plan {
	t.Helper()
	spin := func() {
		end := time.Now().Add(time.Duration(spinUS) * time.Microsecond)
		for time.Now().Before(end) {
		}
	}
	g := graph.New()
	src := g.AddNode("src", graph.SectionDeckA, spin)
	var heads []int
	for w := 0; w < width; w++ {
		prev := src
		for d := 0; d < depth; d++ {
			id := g.AddNode(fmt.Sprintf("c%dn%d", w, d), graph.DeckSection(w), spin)
			if err := g.AddEdge(prev, id); err != nil {
				t.Fatal(err)
			}
			prev = id
		}
		heads = append(heads, prev)
	}
	sink := g.AddNode("sink", graph.SectionMaster, spin)
	for _, h := range heads {
		if err := g.AddEdge(h, sink); err != nil {
			t.Fatal(err)
		}
	}
	p, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCriticalPathBoundsMakespan is the schedule-theory property test:
// for every parallel strategy, on every sampled cycle, the critical path
// under that cycle's MEASURED node durations is a lower bound on the
// cycle's makespan, and the makespan never exceeds the serialized sum of
// node durations plus a scheduling-overhead margin.
func TestCriticalPathBoundsMakespan(t *testing.T) {
	// 3 chains × 3 nodes × 100 µs + src + sink ≈ 1.1 ms of work per
	// cycle — large against wake-up and observer costs.
	p := spinPlan(t, 3, 3, 100)
	for _, name := range []string{
		sched.NameBusyWait, sched.NameSleep, sched.NameWorkSteal,
		sched.NameSleepScan, sched.NameStatic,
	} {
		t.Run(name, func(t *testing.T) {
			col := NewCollector(p, Config{Workers: 2, TraceEvery: 1, TraceRing: 1})
			s, err := sched.New(name, p, sched.Options{Threads: 2, Observer: col})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			durUS := make([]float64, p.Len())
			var ct CycleTrace
			for cyc := 0; cyc < 10; cyc++ {
				s.Execute()
				if !col.LatestTrace(&ct) {
					t.Fatal("no trace")
				}
				sum := 0.0
				for id := range durUS {
					if ct.Worker[id] < 0 {
						t.Fatalf("cycle %d: node %d unobserved", cyc, id)
					}
					durUS[id] = float64(ct.EndNS[id]-ct.StartNS[id]) / 1e3
					sum += durUS[id]
				}
				makespan := float64(ct.MakespanNS()) / 1e3
				cp := CriticalPath(p, durUS)
				// Lower bound: a dependency chain cannot finish faster
				// than the sum of its own nodes. Exact, no tolerance —
				// start/end stamps come from one monotonic clock and every
				// node starts after its predecessors end.
				if cp.LengthUS > makespan+1e-9 {
					t.Fatalf("cycle %d: critical path %.1f µs > makespan %.1f µs",
						cyc, cp.LengthUS, makespan)
				}
				// Upper bound: even serialized, the work sums to `sum`.
				// This is a sanity check (catches unit mix-ups), so the
				// margin is generous: sleepers pay a wake-up per handoff
				// and the race detector multiplies every gap.
				if makespan > sum+5000 {
					t.Fatalf("cycle %d: makespan %.1f µs > serialized sum %.1f µs + margin",
						cyc, makespan, sum)
				}
				// The RESCON-style bound is itself below the makespan.
				if b := cp.Bound(s.Threads()); b > makespan+1e-9 {
					t.Fatalf("cycle %d: Bound(%d) %.1f µs > makespan %.1f µs",
						cyc, s.Threads(), b, makespan)
				}
			}
		})
	}
}

// TestPoolShardMergeRace exercises the collector's shard-merge path under
// the shared worker pool with three concurrently executing sessions, each
// with its own collector, while readers poll stats and traces — the
// -race acceptance test for the one-writer-per-shard design.
func TestPoolShardMergeRace(t *testing.T) {
	const sessions = 3
	const cycles = 120
	pool, err := sched.NewPool(3, sessions)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	type bundle struct {
		s   *sched.PoolSession
		col *Collector
		p   *graph.Plan
	}
	var bs []bundle
	for i := 0; i < sessions; i++ {
		p := randomPlan(t, 20+7*i, 0.15, uint64(50+i))
		// Shards = pool workers + the session caller.
		col := NewCollector(p, Config{Workers: pool.Workers() + 1, TraceEvery: 4, TraceRing: 4})
		s, err := pool.Attach(p, sched.Options{Observer: col})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		bs = append(bs, bundle{s, col, p})
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers hammer the snapshot paths while the sessions run.
	for i := range bs {
		b := bs[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			var ct CycleTrace
			for {
				select {
				case <-stop:
					return
				default:
					_ = b.col.NodeStats()
					_ = b.col.NodeMeansUS()
					b.col.LatestTrace(&ct)
				}
			}
		}()
	}
	var execWG sync.WaitGroup
	for i := range bs {
		b := bs[i]
		execWG.Add(1)
		go func() {
			defer execWG.Done()
			for c := 0; c < cycles; c++ {
				b.s.Execute()
			}
		}()
	}
	execWG.Wait()
	close(stop)
	wg.Wait()

	for i, b := range bs {
		if got := b.col.Cycles(); got != cycles {
			t.Fatalf("session %d merged %d cycles, want %d", i, got, cycles)
		}
		for _, st := range b.col.NodeStats() {
			if st.Count != cycles {
				t.Fatalf("session %d node %s count = %d, want %d", i, st.Name, st.Count, cycles)
			}
		}
		if got := b.col.TraceSeq(); got != cycles/4 {
			t.Fatalf("session %d sampled %d traces, want %d", i, got, cycles/4)
		}
	}
}
