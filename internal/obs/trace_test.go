package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// goldenTraces is a fixed pair of sampled realizations over the 4-node
// chain: deterministic input for the golden-file comparison.
func goldenTraces() []CycleTrace {
	return []CycleTrace{
		{
			Cycle: 32, BaseNS: 1_000_000, Workers: 2,
			Worker:  []int32{0, 1, 0, 1},
			StartNS: []int64{0, 5_000, 12_000, 20_000},
			EndNS:   []int64{4_000, 11_000, 19_000, 27_500},
		},
		{
			Cycle: 64, BaseNS: 4_000_000, Workers: 2,
			Worker:  []int32{1, 0, -1, 0}, // node 2 shed this cycle
			StartNS: []int64{0, 4_500, 0, 21_000},
			EndNS:   []int64{4_200, 10_900, 0, 28_000},
		},
	}
}

// TestChromeTraceGolden locks the exported trace_event JSON byte for
// byte. Regenerate with `go test ./internal/obs -run Golden -update-golden`
// after an intentional format change, and re-validate the new file in
// chrome://tracing.
func TestChromeTraceGolden(t *testing.T) {
	p := chainPlan(t)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, p, goldenTraces()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-golden)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace JSON diverged from golden file\ngot:  %s\nwant: %s", buf.Bytes(), want)
	}
}

// TestChromeTraceShape validates the document structure the way a trace
// viewer would read it.
func TestChromeTraceShape(t *testing.T) {
	p := chainPlan(t)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, p, goldenTraces()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export does not parse: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var meta, complete int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Name != "thread_name" {
				t.Fatalf("metadata event %q", ev.Name)
			}
		case "X":
			complete++
			if ev.Dur < 0 || ev.TS < 0 {
				t.Fatalf("negative window: %+v", ev)
			}
			if ev.PID != 1 || ev.TID < 0 || ev.TID >= 2 {
				t.Fatalf("bad pid/tid: %+v", ev)
			}
			if _, ok := ev.Args["cycle"]; !ok {
				t.Fatalf("complete event missing cycle arg: %+v", ev)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	// 2 worker tracks; 4 + 3 node executions (one node shed in cycle 2).
	if meta != 2 || complete != 7 {
		t.Fatalf("meta/complete = %d/%d, want 2/7", meta, complete)
	}
	// The second sampled cycle keeps its true wall offset: 3 ms after the
	// first, so its first event starts at ts 3000 µs.
	var minSecond float64 = -1
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Args["cycle"].(float64) == 64 {
			if minSecond < 0 || ev.TS < minSecond {
				minSecond = ev.TS
			}
		}
	}
	if minSecond != 3000 {
		t.Fatalf("second cycle starts at ts %v µs, want 3000", minSecond)
	}
}

// TestChromeTraceEmpty: no samples still yields a valid document.
func TestChromeTraceEmpty(t *testing.T) {
	p := chainPlan(t)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, p, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty export does not parse: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatal("missing traceEvents key")
	}
}
