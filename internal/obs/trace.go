package obs

import (
	"encoding/json"
	"io"

	"djstar/internal/graph"
	"djstar/internal/stats"
)

// CycleTrace is one sampled schedule realization: for every node, the
// worker that ran it and its execution window relative to the cycle
// start. It is the collector's equivalent of the paper's Fig. 11.
type CycleTrace struct {
	// Cycle is the collector cycle count at capture (1-based).
	Cycle uint64 `json:"cycle"`
	// BaseNS is the cycle-start timestamp on the scheduler clock.
	BaseNS int64 `json:"base_ns"`
	// Workers is the scheduler's worker count.
	Workers int `json:"workers"`
	// Worker[i] ran node i this cycle (-1 = not executed).
	Worker []int32 `json:"worker"`
	// StartNS and EndNS are node i's window relative to BaseNS.
	StartNS []int64 `json:"start_ns"`
	EndNS   []int64 `json:"end_ns"`
}

// Clone returns an independent deep copy (hook callers that want to
// retain a trace past the callback copy it with this).
func (t *CycleTrace) Clone() CycleTrace {
	var dst CycleTrace
	copyTrace(&dst, t)
	return dst
}

// MakespanNS returns the latest node end in the realization.
func (t *CycleTrace) MakespanNS() int64 {
	var m int64
	for i, w := range t.Worker {
		if w >= 0 && t.EndNS[i] > m {
			m = t.EndNS[i]
		}
	}
	return m
}

// GanttTasks converts the realization into renderable tasks (times in
// microseconds) for stats.RenderGantt — the UI's textual Fig. 11.
func (t *CycleTrace) GanttTasks(names []string) []stats.GanttTask {
	out := make([]stats.GanttTask, 0, len(t.Worker))
	for i, w := range t.Worker {
		if w < 0 {
			continue
		}
		out = append(out, stats.GanttTask{
			Name:   names[i],
			Worker: int(w),
			Start:  float64(t.StartNS[i]) / 1e3,
			End:    float64(t.EndNS[i]) / 1e3,
		})
	}
	return out
}

// Chrome trace_event JSON (the "JSON Array Format" with metadata):
// loadable in chrome://tracing and https://ui.perfetto.dev. One process,
// one thread track per worker, one complete ("X") event per node
// execution. Timestamps are microseconds; successive sampled cycles keep
// their true wall offsets, so the inter-cycle gaps are visible.

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports sampled realizations as Chrome trace_event
// JSON. Traces must be in capture order (Collector.Traces delivers
// that); an empty slice still produces a valid, loadable document.
func WriteChromeTrace(w io.Writer, p *graph.Plan, traces []CycleTrace) error {
	doc := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	workers := 0
	for i := range traces {
		if traces[i].Workers > workers {
			workers = traces[i].Workers
		}
	}
	for tid := 0; tid < workers; tid++ {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name",
			Ph:   "M",
			PID:  1,
			TID:  tid,
			Args: map[string]any{"name": workerLabel(tid)},
		})
	}
	var origin int64
	if len(traces) > 0 {
		origin = traces[0].BaseNS
	}
	for ti := range traces {
		t := &traces[ti]
		offsetNS := t.BaseNS - origin
		for id, wk := range t.Worker {
			if wk < 0 {
				continue
			}
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: p.Names[id],
				Cat:  "node",
				Ph:   "X",
				TS:   float64(offsetNS+t.StartNS[id]) / 1e3,
				Dur:  float64(t.EndNS[id]-t.StartNS[id]) / 1e3,
				PID:  1,
				TID:  int(wk),
				Args: map[string]any{"cycle": t.Cycle, "node": id},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

func workerLabel(w int) string {
	const digits = "0123456789"
	if w < 10 {
		return "worker " + string(digits[w])
	}
	return "worker " + string(digits[w/10]) + string(digits[w%10])
}
