package app

import (
	"fmt"

	"djstar/internal/audio"
	"djstar/internal/library"
	"djstar/internal/mixer"
)

// Autopilot plays an automatic set on two decks: when the live track
// reaches its mix-out point, it picks the most compatible next track from
// the library (tempo + harmonic key), loads it on the idle deck, beat
// syncs it and crossfades over a configurable number of beats. It is the
// integration feature that exercises the whole stack — library analysis,
// deck control, sync, mixer — from one place.
type Autopilot struct {
	app *App
	// CrossfadeBeats is the transition length (default 32).
	CrossfadeBeats float64
	// BPMTolerancePct bounds the track selection (default 8).
	BPMTolerancePct float64

	liveDeck    int
	fading      bool
	fadePos     float64 // 0..1 crossfader progress
	fadeStep    float64 // per-cycle progress during a transition
	mixOut      int     // frame at which to start the next transition
	history     []string
	transitions int
}

// NewAutopilot returns an autopilot driving decks 0 and 1 of the app.
// The app's library must contain analyzed tracks (Config.AnalyzeLibrary
// or explicit Library.Add calls).
func NewAutopilot(a *App) *Autopilot {
	return &Autopilot{
		app:             a,
		CrossfadeBeats:  32,
		BPMTolerancePct: 8,
		liveDeck:        0,
	}
}

// LiveDeck returns the deck currently carrying the set (0 or 1).
func (ap *Autopilot) LiveDeck() int { return ap.liveDeck }

// Transitions returns how many track changes the autopilot has performed.
func (ap *Autopilot) Transitions() int { return ap.transitions }

// History returns the names of tracks played, in order.
func (ap *Autopilot) History() []string { return ap.history }

// Start begins the set with the named track on deck 0.
func (ap *Autopilot) Start(trackName string) error {
	e := ap.app.Library.Get(trackName)
	if e == nil {
		return fmt.Errorf("app: autopilot start track %q not in library", trackName)
	}
	s := ap.app.Engine.Session()
	s.Decks[0].Load(e.Track)
	s.Decks[0].Play()
	s.Decks[1].Pause()
	s.Strips[0].SetCrossfadeSide(mixer.CrossfadeA)
	s.Strips[1].SetCrossfadeSide(mixer.CrossfadeB)
	s.Mix.SetCrossfade(0)
	ap.liveDeck = 0
	ap.fading = false
	ap.history = append(ap.history[:0], trackName)
	ap.computeMixOut(e)
	return nil
}

// Cycle advances the autopilot one audio cycle; call it after app.Cycle.
// It returns true while a transition is in progress.
func (ap *Autopilot) Cycle() bool {
	s := ap.app.Engine.Session()
	live := s.Decks[ap.liveDeck]

	if !ap.fading {
		if live.Track() == nil || !live.Playing() {
			return false
		}
		if int(live.Position()) >= ap.mixOut {
			if err := ap.beginTransition(); err != nil {
				// No compatible next track: let the current one ride.
				ap.mixOut = int(float64(live.Track().Len()) * 2) // never again
				return false
			}
		}
		return ap.fading
	}

	// Advance the crossfade.
	ap.fadePos += ap.fadeStep
	x := audio.Clamp(ap.fadePos, 0, 1)
	if ap.liveDeck == 0 {
		s.Mix.SetCrossfade(x)
	} else {
		s.Mix.SetCrossfade(1 - x)
	}
	if ap.fadePos >= 1 {
		// Transition complete: stop the old deck, swap live.
		old := ap.liveDeck
		ap.liveDeck = 1 - ap.liveDeck
		s.Decks[old].Pause()
		ap.fading = false
		ap.transitions++
		ap.computeMixOut(ap.app.Library.Get(ap.history[len(ap.history)-1]))
	}
	return true
}

// beginTransition selects, loads, syncs and starts the next track.
func (ap *Autopilot) beginTransition() error {
	liveName := ap.history[len(ap.history)-1]
	liveEntry := ap.app.Library.Get(liveName)
	candidates := ap.app.Library.CompatibleTracks(liveEntry, ap.BPMTolerancePct)
	// Avoid immediate repeats of recently played tracks.
	var next *library.Entry
	for _, c := range candidates {
		if !ap.recentlyPlayed(c.Track.Name) {
			next = c
			break
		}
	}
	if next == nil && len(candidates) > 0 {
		next = candidates[0]
	}
	if next == nil {
		return fmt.Errorf("app: no compatible next track for %q", liveName)
	}

	s := ap.app.Engine.Session()
	idle := 1 - ap.liveDeck
	s.Decks[idle].Load(next.Track)
	s.Decks[idle].Play()
	if err := ap.app.SyncDeck(idle, ap.liveDeck); err != nil {
		return err
	}

	// Fade duration: CrossfadeBeats at the live tempo, in cycles.
	live := s.Decks[ap.liveDeck]
	bpm := live.Track().BPM * live.Tempo()
	beats := ap.CrossfadeBeats
	if bpm <= 0 {
		bpm = 120
	}
	seconds := beats * 60 / bpm
	cycles := seconds / audio.StandardPacketPeriod.Seconds()
	ap.fadeStep = 1 / cycles
	ap.fadePos = 0
	ap.fading = true
	ap.history = append(ap.history, next.Track.Name)
	return nil
}

// recentlyPlayed checks the last two set entries.
func (ap *Autopilot) recentlyPlayed(name string) bool {
	n := len(ap.history)
	for i := max(0, n-2); i < n; i++ {
		if ap.history[i] == name {
			return true
		}
	}
	return false
}

// computeMixOut derives the next transition point for the live entry.
func (ap *Autopilot) computeMixOut(e *library.Entry) {
	if e == nil || e.Analysis == nil {
		ap.mixOut = 0
		return
	}
	sections := library.DetectSections(e.Analysis.Overview, e.Track.Len(), 0.4)
	ap.mixOut = library.MixOutPoint(sections, e.Track.Len())
}
