package app

import (
	"math"
	"testing"
)

func TestSyncDeckMatchesTempoAndPhase(t *testing.T) {
	a, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	s := a.Engine.Session()

	// Let the decks drift apart first.
	a.RunCycles(400)

	// Sync deck B (128 BPM track) to deck A (126 BPM track).
	if err := a.SyncDeck(1, 0); err != nil {
		t.Fatal(err)
	}

	// Effective BPMs equal.
	effA := s.Decks[0].Track().BPM * s.Decks[0].Tempo()
	effB := s.Decks[1].Track().BPM * s.Decks[1].Tempo()
	if math.Abs(effA-effB) > 0.01 {
		t.Fatalf("effective BPM %v vs %v", effA, effB)
	}

	// Beat phases aligned immediately after sync.
	off, err := a.BeatOffset(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(off) > 0.02 {
		t.Fatalf("beat offset after sync = %v beats", off)
	}

	// And they stay aligned over the next few seconds (tempo-matched).
	a.RunCycles(1000)
	off, _ = a.BeatOffset(0, 1)
	if math.Abs(off) > 0.1 {
		t.Fatalf("decks drifted to %v beats after sync", off)
	}
}

func TestSyncDeckValidation(t *testing.T) {
	a, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.SyncDeck(0, 0); err == nil {
		t.Fatal("self-sync accepted")
	}
	if err := a.SyncDeck(-1, 0); err == nil {
		t.Fatal("negative deck accepted")
	}
	if err := a.SyncDeck(0, 99); err == nil {
		t.Fatal("out-of-range master accepted")
	}
	if _, err := a.BeatOffset(0, 99); err == nil {
		t.Fatal("BeatOffset out of range accepted")
	}
}
