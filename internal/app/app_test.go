package app

import (
	"math"
	"testing"

	"djstar/internal/audio"
	"djstar/internal/engine"
	"djstar/internal/faults"
	"djstar/internal/graph"
	"djstar/internal/middleware"
	"djstar/internal/sched"
)

func testConfig() Config {
	gc := graph.DefaultConfig()
	gc.TrackBars = 2
	return Config{
		Engine: engine.Config{
			Graph:    gc,
			Strategy: sched.NameBusyWait,
			Threads:  2,
		},
	}
}

func TestAppCyclePublishesPositionAndMeters(t *testing.T) {
	a, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	pos, _ := a.Bus.Subscribe(middleware.TopicDeckPosition, 64)
	meter, _ := a.Bus.Subscribe(middleware.TopicMeterMaster, 64)

	a.RunCycles(64)

	// 64 cycles at the default throttle of 16 -> 4 rounds × 4 decks.
	gotPos := len(pos.Events())
	if gotPos < 8 {
		t.Fatalf("position events = %d, want >= 8", gotPos)
	}
	ev := <-pos.Events()
	dp, ok := ev.Payload.(middleware.DeckPosition)
	if !ok || dp.Deck < 0 || dp.Deck > 3 {
		t.Fatalf("bad position payload %+v", ev.Payload)
	}
	if len(meter.Events()) < 2 {
		t.Fatalf("meter events = %d", len(meter.Events()))
	}
}

func TestAppBeatEventsMatchTempo(t *testing.T) {
	a, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	beats, _ := a.Bus.Subscribe(middleware.TopicBeat, 4096)
	// ~5 seconds of audio.
	cycles := int(5 / audio.StandardPacketPeriod.Seconds())
	a.RunCycles(cycles)

	// Count deck-0 beats: deck A plays at ~126 BPM, so ~10.5 beats in 5 s.
	count := 0
	for {
		select {
		case ev := <-beats.Events():
			if ev.Payload.(middleware.Beat).Deck == 0 {
				count++
			}
			continue
		default:
		}
		break
	}
	want := 126.0 / 60 * 5
	if math.Abs(float64(count)-want) > want/2 {
		t.Fatalf("deck 0 beats in 5 s = %d, want ~%.0f", count, want)
	}
}

func TestAppPerformerDrivesSession(t *testing.T) {
	cfg := testConfig()
	cfg.PerformerSeed = 1234
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	ctrl, _ := a.Bus.Subscribe(middleware.TopicControl, 1024)
	a.RunCycles(2000)
	if a.Mapping.Applied() == 0 {
		t.Fatal("performer applied nothing")
	}
	if len(ctrl.Events()) == 0 {
		t.Fatal("no control events published")
	}
	if a.Mapping.Unknown() != 0 {
		t.Fatalf("unknown controls: %d", a.Mapping.Unknown())
	}
}

func TestAppLibraryAnalysis(t *testing.T) {
	cfg := testConfig()
	cfg.AnalyzeLibrary = true
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.Library.Len() != 4 {
		t.Fatalf("library has %d tracks, want 4", a.Library.Len())
	}
	e := a.Library.Get("deck-a")
	if e == nil || e.Analysis == nil {
		t.Fatal("deck-a not analyzed")
	}
	// Ground truth: deck-a is generated at 126 BPM.
	if math.Abs(e.Analysis.BPM-126) > 4 {
		t.Fatalf("deck-a BPM = %v, want ~126", e.Analysis.BPM)
	}
}

func TestAppRejectsBadEngineConfig(t *testing.T) {
	cfg := testConfig()
	cfg.Engine.Strategy = "bogus"
	if _, err := New(cfg); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestAppMetricsAccumulate(t *testing.T) {
	a, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	m := a.RunCycles(50)
	if m.Cycles != 50 {
		t.Fatalf("cycles = %d", m.Cycles)
	}
	if m.Graph.Mean() <= 0 {
		t.Fatal("no graph timing")
	}
}

func TestAppPublishesHealthAndFaultEvents(t *testing.T) {
	cfg := testConfig()
	// Inject three consecutive panics into an FX node: the facade must
	// surface each contained fault and the quarantine in bus events.
	cfg.Engine.Graph.Faults = faults.New(1, faults.MustParse("panic:FXA2@5x3")...)
	cfg.HealthEvery = 16
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	health, _ := a.Bus.Subscribe(middleware.TopicHealth, 64)
	fault, _ := a.Bus.Subscribe(middleware.TopicFault, 64)
	a.RunCycles(64)

	if got := len(fault.Events()); got != 3 {
		t.Fatalf("fault events = %d, want 3", got)
	}
	sawQuarantine := false
	for i := 0; i < 3; i++ {
		ev := (<-fault.Events()).Payload.(middleware.FaultEvent)
		if ev.Node != "FXA2" || ev.Err == "" {
			t.Fatalf("bad fault event %+v", ev)
		}
		sawQuarantine = sawQuarantine || ev.Quarantined
	}
	if !sawQuarantine {
		t.Fatal("no fault event reported the quarantine trip")
	}

	if len(health.Events()) == 0 {
		t.Fatal("no health events published")
	}
	var last middleware.HealthReport
	for len(health.Events()) > 0 {
		last = (<-health.Events()).Payload.(middleware.HealthReport)
	}
	if last.FaultsRecovered != 3 {
		t.Fatalf("health FaultsRecovered = %d, want 3", last.FaultsRecovered)
	}
	if len(last.Quarantined) != 1 || last.Quarantined[0] != "FXA2" {
		t.Fatalf("health Quarantined = %v, want [FXA2]", last.Quarantined)
	}
	if last.Level != "normal" {
		t.Fatalf("health Level = %q, want normal (no governor)", last.Level)
	}
}
