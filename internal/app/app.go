// Package app is the Application Facade of the paper's Fig. 2: it wires
// the four layers together — the Core (audio engine + task graph), the
// Event Middleware (UI-facing publish/subscribe bus), the Hardware Access
// layer (control surface mapping + simulated performer) and the track
// library — into one runnable application the UI layer (or a terminal
// front end like cmd/djstar) drives.
package app

import (
	"fmt"

	"djstar/internal/audio"
	"djstar/internal/engine"
	"djstar/internal/hardware"
	"djstar/internal/library"
	"djstar/internal/middleware"
	"djstar/internal/obs"
	"djstar/internal/sched"
)

// Config configures the application.
type Config struct {
	// Engine configures the audio core (graph, strategy, threads).
	Engine engine.Config
	// PerformerSeed, when nonzero, attaches a simulated performer that
	// works the controls (the stand-in for a human DJ on USB hardware).
	PerformerSeed uint64
	// AnalyzeLibrary runs offline track analysis on the loaded deck
	// tracks at startup (BPM, key, beat grid). Costs ~0.1 s per track.
	AnalyzeLibrary bool
	// PositionEvery throttles deck-position events to every n-th cycle
	// (default 16 ≈ 21 updates/s, a typical UI refresh budget).
	PositionEvery int
	// HealthEvery throttles engine-health events to every n-th cycle
	// (default 128 ≈ 2.7 updates/s).
	HealthEvery int
}

// App owns the wired-up application.
type App struct {
	// Engine is the audio core.
	Engine *engine.Engine
	// Bus is the event middleware the UI subscribes to.
	Bus *middleware.Bus
	// Library indexes the analyzed tracks.
	Library *library.Library
	// Mapping routes control events into the session.
	Mapping *hardware.Mapping

	performer     *hardware.Performer
	positionEvery int
	healthEvery   int
	cycle         int64
	lastPhase     []float64
}

// New builds the application.
func New(cfg Config) (*App, error) {
	// The bus exists before the engine so the engine's fault, governor
	// and trace hooks can publish onto it; user-supplied hooks still run.
	// The hooks capture `a` (assigned below) for the cycle stamp; they
	// can only fire from Cycle, long after New has returned.
	var a *App
	bus := middleware.New()
	ecfg := cfg.Engine
	userHooks := ecfg.Hooks
	ecfg.Hooks.OnFault = func(r sched.FaultRecord) {
		// Fires on whichever worker ran the node; Publish is thread-safe.
		bus.Publish(middleware.TopicFault, middleware.FaultEvent{
			Cycle:       r.Cycle,
			Node:        r.Name,
			Worker:      int(r.Worker),
			Err:         fmt.Sprint(r.Err),
			Quarantined: r.Quarantined,
		})
		if userHooks.OnFault != nil {
			userHooks.OnFault(r)
		}
	}
	ecfg.Hooks.OnGovChange = func(from, to engine.GovLevel) {
		// Fires on the cycle thread, like the a.cycle increment.
		var cycle int64
		if a != nil {
			cycle = a.cycle
		}
		bus.Publish(middleware.TopicDegrade, middleware.DegradeEvent{
			Cycle: cycle,
			From:  from.String(),
			To:    to.String(),
		})
		if userHooks.OnGovChange != nil {
			userHooks.OnGovChange(from, to)
		}
	}
	ecfg.Hooks.OnTopology = func(tc engine.TopologyChange) {
		// Fires on the cycle thread when a live graph edit is adopted or
		// rolled back.
		bus.Publish(middleware.TopicTopology, middleware.TopologyEvent{
			Cycle:   tc.Cycle,
			Epoch:   tc.Epoch,
			Nodes:   tc.Nodes,
			Desc:    tc.Desc,
			Applied: tc.Applied,
		})
		if userHooks.OnTopology != nil {
			userHooks.OnTopology(tc)
		}
	}
	ecfg.Hooks.OnAdmission = func(d engine.AdmissionDecision) {
		// Fires from the admission gate (construction goroutine, the
		// editor, or the predictive monitor) — including for refusals,
		// where the event lands on the bus before engine.New errors out.
		bus.Publish(middleware.TopicAdmission, middleware.AdmissionEvent{
			Cycle:      d.Cycle,
			Verdict:    d.Verdict,
			Reason:     d.Reason,
			BoundUS:    d.BoundUS,
			EnvelopeUS: d.EnvelopeUS,
			PreShed:    d.PreShed,
			Predicted:  d.Predicted,
		})
		if userHooks.OnAdmission != nil {
			userHooks.OnAdmission(d)
		}
	}
	ecfg.Hooks.OnTrace = func(t *obs.CycleTrace) {
		// Fires on the cycle thread every sampled cycle. The engine's
		// trace buffers are reused, so copy into a fresh ScheduleTrace —
		// subscribers own the payload.
		if a == nil {
			return
		}
		st := middleware.ScheduleTrace{
			Cycle:      t.Cycle,
			Workers:    t.Workers,
			MakespanUS: float64(t.MakespanNS()) / 1e3,
			Nodes:      make([]middleware.TraceNode, 0, len(t.Worker)),
		}
		names := a.Engine.Plan().Names
		for id, w := range t.Worker {
			if w < 0 || id >= len(names) {
				continue
			}
			st.Nodes = append(st.Nodes, middleware.TraceNode{
				Name:    names[id],
				Worker:  int(w),
				StartUS: float64(t.StartNS[id]) / 1e3,
				EndUS:   float64(t.EndNS[id]) / 1e3,
			})
		}
		bus.Publish(middleware.TopicTrace, st)
		if userHooks.OnTrace != nil {
			userHooks.OnTrace(t)
		}
	}
	e, err := engine.New(ecfg)
	if err != nil {
		return nil, fmt.Errorf("app: %w", err)
	}
	a = &App{
		Engine:        e,
		Bus:           bus,
		Library:       library.New(cfg.Engine.Graph.Rate),
		Mapping:       hardware.NewMapping(e.Session()),
		positionEvery: cfg.PositionEvery,
		healthEvery:   cfg.HealthEvery,
	}
	if a.positionEvery <= 0 {
		a.positionEvery = 16
	}
	if a.healthEvery <= 0 {
		a.healthEvery = 128
	}
	if cfg.PerformerSeed != 0 {
		a.performer = hardware.NewPerformer(cfg.PerformerSeed, len(e.Session().Decks))
	}
	a.lastPhase = make([]float64, len(e.Session().Decks))

	if cfg.AnalyzeLibrary {
		for _, d := range e.Session().Decks {
			if tr := d.Track(); tr != nil {
				if _, err := a.Library.Add(tr); err != nil {
					e.Close()
					return nil, fmt.Errorf("app: %w", err)
				}
			}
		}
	}
	return a, nil
}

// Close shuts the engine down.
func (a *App) Close() { a.Engine.Close() }

// Cycle runs one audio processing cycle: apply pending control input,
// compute the packet, publish UI events. Metrics may be nil.
func (a *App) Cycle(m *engine.Metrics) {
	// Hardware input is applied between cycles, like the real app's
	// control thread handing parameter changes to the audio thread.
	if a.performer != nil {
		for _, ev := range a.performer.Next() {
			a.Mapping.Apply(ev)
			a.Bus.Publish(middleware.TopicControl, ev)
		}
	}

	before := 0.0
	if m != nil {
		before = m.APC.Max()
	}
	a.Engine.Cycle(m)
	a.cycle++

	s := a.Engine.Session()
	// Beat events: detect beat-phase wrap per deck.
	for d, dk := range s.Decks {
		phase := dk.BeatPhase() * 4 // bars -> beats (4/4)
		beatFrac := phase - float64(int(phase))
		if beatFrac < a.lastPhase[d] && dk.Playing() {
			a.Bus.Publish(middleware.TopicBeat, middleware.Beat{Deck: d, Phase: beatFrac})
		}
		a.lastPhase[d] = beatFrac
	}

	// Throttled position + meter updates.
	if a.cycle%int64(a.positionEvery) == 0 {
		for d, dk := range s.Decks {
			a.Bus.Publish(middleware.TopicDeckPosition, middleware.DeckPosition{
				Deck:    d,
				Frames:  dk.Position(),
				Seconds: dk.Position() / float64(audio.SampleRate),
				Tempo:   dk.Tempo(),
				Playing: dk.Playing(),
			})
		}
		out := s.MasterOut()
		a.Bus.Publish(middleware.TopicMeterMaster, middleware.MeterLevels{
			Source: "master",
			Peak:   out.Peak(),
			RMS:    out.RMS(),
		})
	}

	// Throttled health report, fed from the engine's unified Snapshot:
	// governor level, fault counters, watchdog stalls, whole-run cycle
	// means, the measured critical path, and the bus's own drop totals
	// (the middleware reporting on itself — a slow consumer shows up
	// here, not as audio jitter).
	if a.cycle%int64(a.healthEvery) == 0 {
		snap := a.Engine.Snapshot()
		h := snap.Health
		drops := a.Bus.TopicDrops()
		var total int64
		for _, d := range drops {
			total += d
		}
		// Feed the bus drop total into telemetry so /metrics exposes it.
		if tel := a.Engine.Telemetry(); tel != nil {
			tel.SetBusDrops(total)
		}
		lastEdit := ""
		if le := snap.LastEdit; le != nil {
			if le.Applied {
				lastEdit = "ok " + le.Desc
			} else {
				lastEdit = "failed " + le.Desc + ": " + le.Err
			}
		}
		rep := middleware.HealthReport{
			Cycle:           a.cycle,
			PlanEpoch:       snap.PlanEpoch,
			LastEdit:        lastEdit,
			Level:           h.Level.String(),
			LoadFactor:      h.LoadFactor,
			WindowMissRate:  h.WindowMissRate,
			FaultsRecovered: h.Faults.Recovered,
			Quarantined:     h.Quarantined,
			Stalls:          h.Stalls,
			GraphMeanMS:     snap.GraphMeanMS,
			APCMeanMS:       snap.APCMeanMS,
			MissRate:        snap.MissRate,
			BusDrops:        total,
			DropsByTopic:    drops,
		}
		if snap.CritPath != nil {
			rep.CritPathUS = snap.CritPath.LengthUS
			rep.Parallelism = snap.CritPath.Parallelism
		}
		if snap.SLO != nil {
			rep.SLOBudgetRemaining = snap.SLO.BudgetRemaining
			rep.SLOBurnRate1m = snap.SLO.BurnRate1m
			rep.SLOExhausted = snap.SLO.Exhausted
		}
		if adm := snap.Admission; adm != nil {
			rep.AdmissionVerdict = adm.Verdict
			if adm.Report != nil {
				rep.AdmissionBoundUS = adm.Report.BoundUS
				rep.AdmissionHeadroomUS = adm.Report.HeadroomUS
			}
		}
		a.Bus.Publish(middleware.TopicHealth, rep)
	}

	// Deadline misses surface immediately.
	if m != nil && m.APC.Max() > engine.DeadlineMS && m.APC.Max() != before {
		a.Bus.Publish(middleware.TopicDeadlineMiss, middleware.DeadlineMiss{
			Cycle:      a.cycle,
			DurationMS: m.APC.Max(),
			DeadlineMS: engine.DeadlineMS,
		})
	}
}

// RunCycles runs n cycles and returns the metrics.
func (a *App) RunCycles(n int) *engine.Metrics {
	m := a.Engine.RunCycles(0) // empty initialized container
	for i := 0; i < n; i++ {
		a.Cycle(m)
	}
	return m
}
