package app

import (
	"testing"

	"djstar/internal/audio"
	"djstar/internal/engine"
	"djstar/internal/graph"
	"djstar/internal/sched"
	"djstar/internal/synth"
)

// autopilotApp builds an app with a library of mutually compatible
// tracks (same key family, close tempos) so the autopilot always has a
// next track.
func autopilotApp(t *testing.T) *App {
	t.Helper()
	gc := graph.DefaultConfig()
	gc.TrackBars = 4 // ~7.6 s per track: transitions happen quickly
	a, err := New(Config{
		Engine: engine.Config{
			Graph:    gc,
			Strategy: sched.NameBusyWait,
			Threads:  2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	specs := []synth.TrackSpec{
		{Name: "one", BPM: 126, Bars: 4, Seed: 1, Key: 0},
		{Name: "two", BPM: 127, Bars: 4, Seed: 2, Key: 7},
		{Name: "three", BPM: 125, Bars: 4, Seed: 3, Key: 0},
	}
	for _, sp := range specs {
		if _, err := a.Library.Add(synth.GenerateTrack(sp)); err != nil {
			a.Close()
			t.Fatal(err)
		}
	}
	return a
}

func TestAutopilotPlaysASet(t *testing.T) {
	a := autopilotApp(t)
	defer a.Close()
	ap := NewAutopilot(a)
	ap.CrossfadeBeats = 8 // quick transitions for the test
	if err := ap.Start("one"); err != nil {
		t.Fatal(err)
	}
	if ap.LiveDeck() != 0 {
		t.Fatal("live deck not 0 at start")
	}

	// Run ~25 s of audio: with ~7.6 s tracks and outro-triggered mixes,
	// at least two transitions must happen.
	cycles := int(25 / audio.StandardPacketPeriod.Seconds())
	m := a.Engine.RunCycles(0)
	for i := 0; i < cycles; i++ {
		a.Cycle(m)
		ap.Cycle()
	}

	if ap.Transitions() < 2 {
		t.Fatalf("only %d transitions in 25 s set (history %v)",
			ap.Transitions(), ap.History())
	}
	if len(ap.History()) < 3 {
		t.Fatalf("history too short: %v", ap.History())
	}
	// No immediate repeats.
	h := ap.History()
	for i := 1; i < len(h); i++ {
		if h[i] == h[i-1] {
			t.Fatalf("immediate repeat in set: %v", h)
		}
	}
	// The live deck must be playing and audible.
	s := a.Engine.Session()
	if !s.Decks[ap.LiveDeck()].Playing() {
		t.Fatal("live deck stopped")
	}
}

func TestAutopilotSyncsDuringTransition(t *testing.T) {
	a := autopilotApp(t)
	defer a.Close()
	ap := NewAutopilot(a)
	ap.CrossfadeBeats = 16
	if err := ap.Start("one"); err != nil {
		t.Fatal(err)
	}
	m := a.Engine.RunCycles(0)
	// Run until the first transition starts.
	var inFade bool
	for i := 0; i < 20000 && !inFade; i++ {
		a.Cycle(m)
		inFade = ap.Cycle()
	}
	if !inFade {
		t.Fatal("no transition ever started")
	}
	// During the fade both decks play at matched effective BPM.
	s := a.Engine.Session()
	d0, d1 := s.Decks[0], s.Decks[1]
	if !d0.Playing() || !d1.Playing() {
		t.Fatal("both decks should play during the fade")
	}
	eff0 := d0.Track().BPM * d0.Tempo()
	eff1 := d1.Track().BPM * d1.Tempo()
	if diff := eff0 - eff1; diff > 0.05 || diff < -0.05 {
		t.Fatalf("decks not tempo-matched during fade: %v vs %v", eff0, eff1)
	}
}

func TestAutopilotStartValidation(t *testing.T) {
	a := autopilotApp(t)
	defer a.Close()
	ap := NewAutopilot(a)
	if err := ap.Start("missing"); err == nil {
		t.Fatal("unknown track accepted")
	}
}
