package app

import (
	"fmt"
	"math"
)

// SyncDeck beat-matches the slave deck to the master deck — the "sync
// button" of every modern DJ application: it sets the slave's tempo so
// both decks play at the same effective BPM and nudges the slave's
// playhead so the beats line up.
//
// BPM comes from the tracks' metadata (synthetic tracks know their tempo;
// imported tracks carry the analyzer's estimate).
func (a *App) SyncDeck(slave, master int) error {
	s := a.Engine.Session()
	if slave < 0 || slave >= len(s.Decks) || master < 0 || master >= len(s.Decks) {
		return fmt.Errorf("app: sync decks %d->%d out of range [0,%d)", slave, master, len(s.Decks))
	}
	if slave == master {
		return fmt.Errorf("app: cannot sync deck %d to itself", slave)
	}
	sd, md := s.Decks[slave], s.Decks[master]
	if sd.Track() == nil || md.Track() == nil {
		return fmt.Errorf("app: sync needs tracks on both decks")
	}
	slaveBPM, masterBPM := sd.Track().BPM, md.Track().BPM
	if slaveBPM <= 0 || masterBPM <= 0 {
		return fmt.Errorf("app: sync needs known BPMs (slave %v, master %v)", slaveBPM, masterBPM)
	}

	// Tempo: make effective BPMs equal.
	// effBPM = trackBPM * tempo  =>  tempo_s = effBPM_m / trackBPM_s.
	effMaster := masterBPM * md.Tempo()
	sd.SetTempo(effMaster / slaveBPM)

	// Phase: shift the slave playhead to the master's beat phase. Both
	// phases are expressed as a fraction of a beat (quarter bar).
	masterBeat := md.BeatPhase() * 4
	slaveBeat := sd.BeatPhase() * 4
	masterFrac := masterBeat - math.Floor(masterBeat)
	slaveFrac := slaveBeat - math.Floor(slaveBeat)
	diff := masterFrac - slaveFrac
	// Take the shorter way around the beat.
	if diff > 0.5 {
		diff -= 1
	} else if diff < -0.5 {
		diff += 1
	}
	framesPerBeat := float64(sd.Track().FramesPerBar) / 4
	sd.Seek(sd.Position() + diff*framesPerBeat)
	return nil
}

// BeatOffset returns the current beat-phase difference between two decks
// in beats, in [-0.5, 0.5). Zero means beat-aligned.
func (a *App) BeatOffset(d1, d2 int) (float64, error) {
	s := a.Engine.Session()
	if d1 < 0 || d1 >= len(s.Decks) || d2 < 0 || d2 >= len(s.Decks) {
		return 0, fmt.Errorf("app: decks %d/%d out of range", d1, d2)
	}
	b1 := s.Decks[d1].BeatPhase() * 4
	b2 := s.Decks[d2].BeatPhase() * 4
	diff := (b1 - math.Floor(b1)) - (b2 - math.Floor(b2))
	if diff >= 0.5 {
		diff -= 1
	} else if diff < -0.5 {
		diff += 1
	}
	return diff, nil
}
