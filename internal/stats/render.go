package stats

import (
	"fmt"
	"sort"
	"strings"
)

// ASCII rendering for the harness output: histograms (Fig. 9), cumulative
// histograms (Fig. 10), Gantt charts of schedule realizations (Fig. 11)
// and concurrency profiles (Fig. 4). All renderers return a string ending
// in a newline.

// RenderHistogram draws h as horizontal bars, one row per bin, labeled
// with the bin center.
func RenderHistogram(h *Histogram, title string, width int) string {
	if width < 10 {
		width = 10
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d)\n", title, h.Total())
	maxBin := h.MaxBin()
	if maxBin == 0 {
		maxBin = 1
	}
	for i, c := range h.Bins() {
		bar := int(float64(c) / float64(maxBin) * float64(width))
		fmt.Fprintf(&b, "%9.4f | %-*s %d\n", h.BinCenter(i), width,
			strings.Repeat("#", bar), c)
	}
	under, over := h.OutOfRange()
	if under > 0 || over > 0 {
		fmt.Fprintf(&b, "   (out of range: %d below, %d above)\n", under, over)
	}
	return b.String()
}

// RenderCumulative draws the cumulative histogram of h.
func RenderCumulative(h *Histogram, title string, width int) string {
	if width < 10 {
		width = 10
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s cumulative (n=%d)\n", title, h.Total())
	cum := h.Cumulative()
	total := h.Total()
	if total == 0 {
		total = 1
	}
	for i, c := range cum {
		bar := int(float64(c) / float64(total) * float64(width))
		fmt.Fprintf(&b, "%9.4f | %-*s %5.1f%%\n", h.BinCenter(i), width,
			strings.Repeat("#", bar), 100*float64(c)/float64(total))
	}
	return b.String()
}

// GanttTask is one scheduled execution for RenderGantt.
type GanttTask struct {
	Name       string
	Worker     int
	Start, End float64
}

// RenderGantt draws a schedule realization as one row per worker, with
// '#' for executing time, '.' for waiting/idle gaps between executions,
// and node labels above their bars where space allows — a textual Fig. 11.
func RenderGantt(tasks []GanttTask, title string, width int) string {
	if width < 20 {
		width = 20
	}
	var b strings.Builder
	var makespan float64
	workers := 0
	for _, t := range tasks {
		if t.End > makespan {
			makespan = t.End
		}
		if t.Worker+1 > workers {
			workers = t.Worker + 1
		}
	}
	fmt.Fprintf(&b, "%s (makespan %.1f, %d workers)\n", title, makespan, workers)
	if makespan <= 0 || workers == 0 {
		return b.String()
	}
	scale := float64(width) / makespan

	byWorker := make([][]GanttTask, workers)
	for _, t := range tasks {
		byWorker[t.Worker] = append(byWorker[t.Worker], t)
	}
	for w := range byWorker {
		sort.Slice(byWorker[w], func(a, b int) bool {
			return byWorker[w][a].Start < byWorker[w][b].Start
		})
	}

	for w := workers - 1; w >= 0; w-- {
		row := make([]byte, width)
		labels := make([]byte, width)
		for i := range row {
			row[i] = ' '
			labels[i] = ' '
		}
		cursor := 0.0
		for _, t := range byWorker[w] {
			s := int(t.Start * scale)
			e := int(t.End * scale)
			if e >= width {
				e = width - 1
			}
			// Waiting gap before this node.
			g := int(cursor * scale)
			for i := g; i < s && i < width; i++ {
				row[i] = '.'
			}
			for i := s; i <= e && i < width; i++ {
				row[i] = '#'
			}
			// Label if it fits above the bar.
			if e-s >= len(t.Name) {
				copy(labels[s:], t.Name)
			}
			cursor = t.End
		}
		fmt.Fprintf(&b, "      %s\n", string(labels))
		fmt.Fprintf(&b, "T%-3d |%s|\n", w, string(row))
	}
	fmt.Fprintf(&b, "      %-*s%.1f\n", width-4, "0", makespan)
	return b.String()
}

// RenderProfile draws a concurrency-over-time profile (Fig. 4): one column
// per sample, height proportional to the concurrency level.
func RenderProfile(profile []int, title string, height int) string {
	if height < 4 {
		height = 4
	}
	var b strings.Builder
	peak := 0
	for _, c := range profile {
		if c > peak {
			peak = c
		}
	}
	fmt.Fprintf(&b, "%s (peak %d)\n", title, peak)
	if peak == 0 || len(profile) == 0 {
		return b.String()
	}
	for row := height; row >= 1; row-- {
		threshold := float64(row) / float64(height) * float64(peak)
		line := make([]byte, len(profile))
		for i, c := range profile {
			if float64(c) >= threshold {
				line[i] = '#'
			} else {
				line[i] = ' '
			}
		}
		fmt.Fprintf(&b, "%4.0f |%s\n", threshold, string(line))
	}
	fmt.Fprintf(&b, "     +%s\n", strings.Repeat("-", len(profile)))
	return b.String()
}

// RenderTable formats rows as a fixed-width table with a header.
func RenderTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
